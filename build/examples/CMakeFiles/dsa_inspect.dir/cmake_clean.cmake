file(REMOVE_RECURSE
  "CMakeFiles/dsa_inspect.dir/dsa_inspect.cpp.o"
  "CMakeFiles/dsa_inspect.dir/dsa_inspect.cpp.o.d"
  "dsa_inspect"
  "dsa_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsa_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
