# Empty dependencies file for dsa_inspect.
# This may be replaced when dependencies are built.
