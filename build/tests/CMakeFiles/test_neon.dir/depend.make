# Empty dependencies file for test_neon.
# This may be replaced when dependencies are built.
