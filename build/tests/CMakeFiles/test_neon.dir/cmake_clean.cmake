file(REMOVE_RECURSE
  "CMakeFiles/test_neon.dir/test_neon.cc.o"
  "CMakeFiles/test_neon.dir/test_neon.cc.o.d"
  "test_neon"
  "test_neon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_neon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
