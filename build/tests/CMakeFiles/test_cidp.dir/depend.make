# Empty dependencies file for test_cidp.
# This may be replaced when dependencies are built.
