file(REMOVE_RECURSE
  "CMakeFiles/test_cidp.dir/test_cidp.cc.o"
  "CMakeFiles/test_cidp.dir/test_cidp.cc.o.d"
  "test_cidp"
  "test_cidp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cidp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
