file(REMOVE_RECURSE
  "CMakeFiles/test_reguse.dir/test_reguse.cc.o"
  "CMakeFiles/test_reguse.dir/test_reguse.cc.o.d"
  "test_reguse"
  "test_reguse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reguse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
