# Empty compiler generated dependencies file for test_reguse.
# This may be replaced when dependencies are built.
