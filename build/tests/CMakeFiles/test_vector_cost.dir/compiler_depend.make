# Empty compiler generated dependencies file for test_vector_cost.
# This may be replaced when dependencies are built.
