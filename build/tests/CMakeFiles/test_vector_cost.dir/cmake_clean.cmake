file(REMOVE_RECURSE
  "CMakeFiles/test_vector_cost.dir/test_vector_cost.cc.o"
  "CMakeFiles/test_vector_cost.dir/test_vector_cost.cc.o.d"
  "test_vector_cost"
  "test_vector_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vector_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
