# Empty dependencies file for test_extended_workloads.
# This may be replaced when dependencies are built.
