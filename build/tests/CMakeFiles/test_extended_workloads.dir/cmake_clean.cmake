file(REMOVE_RECURSE
  "CMakeFiles/test_extended_workloads.dir/test_extended_workloads.cc.o"
  "CMakeFiles/test_extended_workloads.dir/test_extended_workloads.cc.o.d"
  "test_extended_workloads"
  "test_extended_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extended_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
