file(REMOVE_RECURSE
  "CMakeFiles/test_dsa_cache.dir/test_dsa_cache.cc.o"
  "CMakeFiles/test_dsa_cache.dir/test_dsa_cache.cc.o.d"
  "test_dsa_cache"
  "test_dsa_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsa_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
