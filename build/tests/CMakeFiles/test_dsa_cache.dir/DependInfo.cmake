
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_dsa_cache.cc" "tests/CMakeFiles/test_dsa_cache.dir/test_dsa_cache.cc.o" "gcc" "tests/CMakeFiles/test_dsa_cache.dir/test_dsa_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/dsa_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dsa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/dsa_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/vectorizer/CMakeFiles/dsa_vectorizer.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/dsa_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/dsa_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/neon/CMakeFiles/dsa_neon.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dsa_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/prog/CMakeFiles/dsa_prog.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/dsa_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
