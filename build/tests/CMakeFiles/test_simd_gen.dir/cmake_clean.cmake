file(REMOVE_RECURSE
  "CMakeFiles/test_simd_gen.dir/test_simd_gen.cc.o"
  "CMakeFiles/test_simd_gen.dir/test_simd_gen.cc.o.d"
  "test_simd_gen"
  "test_simd_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simd_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
