# Empty dependencies file for test_simd_gen.
# This may be replaced when dependencies are built.
