# Empty dependencies file for bench_a3_tab3_dsa_energy.
# This may be replaced when dependencies are built.
