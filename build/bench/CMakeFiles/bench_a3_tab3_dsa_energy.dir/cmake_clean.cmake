file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_tab3_dsa_energy.dir/bench_a3_tab3_dsa_energy.cc.o"
  "CMakeFiles/bench_a3_tab3_dsa_energy.dir/bench_a3_tab3_dsa_energy.cc.o.d"
  "bench_a3_tab3_dsa_energy"
  "bench_a3_tab3_dsa_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_tab3_dsa_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
