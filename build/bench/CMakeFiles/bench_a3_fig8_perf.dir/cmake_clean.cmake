file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_fig8_perf.dir/bench_a3_fig8_perf.cc.o"
  "CMakeFiles/bench_a3_fig8_perf.dir/bench_a3_fig8_perf.cc.o.d"
  "bench_a3_fig8_perf"
  "bench_a3_fig8_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_fig8_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
