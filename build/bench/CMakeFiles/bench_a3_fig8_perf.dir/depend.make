# Empty dependencies file for bench_a3_fig8_perf.
# This may be replaced when dependencies are built.
