# Empty dependencies file for bench_a1_tab3_area.
# This may be replaced when dependencies are built.
