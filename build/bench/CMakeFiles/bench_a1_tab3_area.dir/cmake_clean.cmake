file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_tab3_area.dir/bench_a1_tab3_area.cc.o"
  "CMakeFiles/bench_a1_tab3_area.dir/bench_a1_tab3_area.cc.o.d"
  "bench_a1_tab3_area"
  "bench_a1_tab3_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_tab3_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
