file(REMOVE_RECURSE
  "CMakeFiles/bench_extended_suite.dir/bench_extended_suite.cc.o"
  "CMakeFiles/bench_extended_suite.dir/bench_extended_suite.cc.o.d"
  "bench_extended_suite"
  "bench_extended_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extended_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
