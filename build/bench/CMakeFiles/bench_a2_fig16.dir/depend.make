# Empty dependencies file for bench_a2_fig16.
# This may be replaced when dependencies are built.
