# Empty dependencies file for bench_a1_fig12.
# This may be replaced when dependencies are built.
