file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_fig7_looptypes.dir/bench_a3_fig7_looptypes.cc.o"
  "CMakeFiles/bench_a3_fig7_looptypes.dir/bench_a3_fig7_looptypes.cc.o.d"
  "bench_a3_fig7_looptypes"
  "bench_a3_fig7_looptypes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_fig7_looptypes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
