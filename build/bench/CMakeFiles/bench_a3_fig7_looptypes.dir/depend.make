# Empty dependencies file for bench_a3_fig7_looptypes.
# This may be replaced when dependencies are built.
