file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_tab3_latency.dir/bench_a2_tab3_latency.cc.o"
  "CMakeFiles/bench_a2_tab3_latency.dir/bench_a2_tab3_latency.cc.o.d"
  "bench_a2_tab3_latency"
  "bench_a2_tab3_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_tab3_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
