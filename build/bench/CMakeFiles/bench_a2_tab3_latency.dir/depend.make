# Empty dependencies file for bench_a2_tab3_latency.
# This may be replaced when dependencies are built.
