file(REMOVE_RECURSE
  "libdsa_isa.a"
)
