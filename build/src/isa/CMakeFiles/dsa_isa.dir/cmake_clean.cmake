file(REMOVE_RECURSE
  "CMakeFiles/dsa_isa.dir/isa.cc.o"
  "CMakeFiles/dsa_isa.dir/isa.cc.o.d"
  "libdsa_isa.a"
  "libdsa_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsa_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
