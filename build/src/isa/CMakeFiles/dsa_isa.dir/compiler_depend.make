# Empty compiler generated dependencies file for dsa_isa.
# This may be replaced when dependencies are built.
