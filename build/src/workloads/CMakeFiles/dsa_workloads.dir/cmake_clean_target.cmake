file(REMOVE_RECURSE
  "libdsa_workloads.a"
)
