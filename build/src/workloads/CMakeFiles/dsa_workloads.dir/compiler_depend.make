# Empty compiler generated dependencies file for dsa_workloads.
# This may be replaced when dependencies are built.
