
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/bitcount.cc" "src/workloads/CMakeFiles/dsa_workloads.dir/bitcount.cc.o" "gcc" "src/workloads/CMakeFiles/dsa_workloads.dir/bitcount.cc.o.d"
  "/root/repo/src/workloads/dijkstra.cc" "src/workloads/CMakeFiles/dsa_workloads.dir/dijkstra.cc.o" "gcc" "src/workloads/CMakeFiles/dsa_workloads.dir/dijkstra.cc.o.d"
  "/root/repo/src/workloads/extended.cc" "src/workloads/CMakeFiles/dsa_workloads.dir/extended.cc.o" "gcc" "src/workloads/CMakeFiles/dsa_workloads.dir/extended.cc.o.d"
  "/root/repo/src/workloads/gaussian.cc" "src/workloads/CMakeFiles/dsa_workloads.dir/gaussian.cc.o" "gcc" "src/workloads/CMakeFiles/dsa_workloads.dir/gaussian.cc.o.d"
  "/root/repo/src/workloads/matmul.cc" "src/workloads/CMakeFiles/dsa_workloads.dir/matmul.cc.o" "gcc" "src/workloads/CMakeFiles/dsa_workloads.dir/matmul.cc.o.d"
  "/root/repo/src/workloads/qsort.cc" "src/workloads/CMakeFiles/dsa_workloads.dir/qsort.cc.o" "gcc" "src/workloads/CMakeFiles/dsa_workloads.dir/qsort.cc.o.d"
  "/root/repo/src/workloads/rgb_gray.cc" "src/workloads/CMakeFiles/dsa_workloads.dir/rgb_gray.cc.o" "gcc" "src/workloads/CMakeFiles/dsa_workloads.dir/rgb_gray.cc.o.d"
  "/root/repo/src/workloads/sets.cc" "src/workloads/CMakeFiles/dsa_workloads.dir/sets.cc.o" "gcc" "src/workloads/CMakeFiles/dsa_workloads.dir/sets.cc.o.d"
  "/root/repo/src/workloads/shiftadd.cc" "src/workloads/CMakeFiles/dsa_workloads.dir/shiftadd.cc.o" "gcc" "src/workloads/CMakeFiles/dsa_workloads.dir/shiftadd.cc.o.d"
  "/root/repo/src/workloads/strcopy.cc" "src/workloads/CMakeFiles/dsa_workloads.dir/strcopy.cc.o" "gcc" "src/workloads/CMakeFiles/dsa_workloads.dir/strcopy.cc.o.d"
  "/root/repo/src/workloads/susan.cc" "src/workloads/CMakeFiles/dsa_workloads.dir/susan.cc.o" "gcc" "src/workloads/CMakeFiles/dsa_workloads.dir/susan.cc.o.d"
  "/root/repo/src/workloads/vec_add.cc" "src/workloads/CMakeFiles/dsa_workloads.dir/vec_add.cc.o" "gcc" "src/workloads/CMakeFiles/dsa_workloads.dir/vec_add.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dsa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vectorizer/CMakeFiles/dsa_vectorizer.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/dsa_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/dsa_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/dsa_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dsa_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/neon/CMakeFiles/dsa_neon.dir/DependInfo.cmake"
  "/root/repo/build/src/prog/CMakeFiles/dsa_prog.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/dsa_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
