file(REMOVE_RECURSE
  "CMakeFiles/dsa_workloads.dir/bitcount.cc.o"
  "CMakeFiles/dsa_workloads.dir/bitcount.cc.o.d"
  "CMakeFiles/dsa_workloads.dir/dijkstra.cc.o"
  "CMakeFiles/dsa_workloads.dir/dijkstra.cc.o.d"
  "CMakeFiles/dsa_workloads.dir/extended.cc.o"
  "CMakeFiles/dsa_workloads.dir/extended.cc.o.d"
  "CMakeFiles/dsa_workloads.dir/gaussian.cc.o"
  "CMakeFiles/dsa_workloads.dir/gaussian.cc.o.d"
  "CMakeFiles/dsa_workloads.dir/matmul.cc.o"
  "CMakeFiles/dsa_workloads.dir/matmul.cc.o.d"
  "CMakeFiles/dsa_workloads.dir/qsort.cc.o"
  "CMakeFiles/dsa_workloads.dir/qsort.cc.o.d"
  "CMakeFiles/dsa_workloads.dir/rgb_gray.cc.o"
  "CMakeFiles/dsa_workloads.dir/rgb_gray.cc.o.d"
  "CMakeFiles/dsa_workloads.dir/sets.cc.o"
  "CMakeFiles/dsa_workloads.dir/sets.cc.o.d"
  "CMakeFiles/dsa_workloads.dir/shiftadd.cc.o"
  "CMakeFiles/dsa_workloads.dir/shiftadd.cc.o.d"
  "CMakeFiles/dsa_workloads.dir/strcopy.cc.o"
  "CMakeFiles/dsa_workloads.dir/strcopy.cc.o.d"
  "CMakeFiles/dsa_workloads.dir/susan.cc.o"
  "CMakeFiles/dsa_workloads.dir/susan.cc.o.d"
  "CMakeFiles/dsa_workloads.dir/vec_add.cc.o"
  "CMakeFiles/dsa_workloads.dir/vec_add.cc.o.d"
  "libdsa_workloads.a"
  "libdsa_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsa_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
