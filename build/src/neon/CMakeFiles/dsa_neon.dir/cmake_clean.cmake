file(REMOVE_RECURSE
  "CMakeFiles/dsa_neon.dir/vector_unit.cc.o"
  "CMakeFiles/dsa_neon.dir/vector_unit.cc.o.d"
  "libdsa_neon.a"
  "libdsa_neon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsa_neon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
