# Empty dependencies file for dsa_neon.
# This may be replaced when dependencies are built.
