file(REMOVE_RECURSE
  "libdsa_neon.a"
)
