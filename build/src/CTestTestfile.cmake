# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("isa")
subdirs("mem")
subdirs("prog")
subdirs("neon")
subdirs("cpu")
subdirs("engine")
subdirs("vectorizer")
subdirs("energy")
subdirs("workloads")
subdirs("sim")
