file(REMOVE_RECURSE
  "CMakeFiles/dsa_engine.dir/cidp.cc.o"
  "CMakeFiles/dsa_engine.dir/cidp.cc.o.d"
  "CMakeFiles/dsa_engine.dir/dsa_cache.cc.o"
  "CMakeFiles/dsa_engine.dir/dsa_cache.cc.o.d"
  "CMakeFiles/dsa_engine.dir/engine.cc.o"
  "CMakeFiles/dsa_engine.dir/engine.cc.o.d"
  "CMakeFiles/dsa_engine.dir/reguse.cc.o"
  "CMakeFiles/dsa_engine.dir/reguse.cc.o.d"
  "CMakeFiles/dsa_engine.dir/simd_gen.cc.o"
  "CMakeFiles/dsa_engine.dir/simd_gen.cc.o.d"
  "CMakeFiles/dsa_engine.dir/tracker.cc.o"
  "CMakeFiles/dsa_engine.dir/tracker.cc.o.d"
  "CMakeFiles/dsa_engine.dir/vector_cost.cc.o"
  "CMakeFiles/dsa_engine.dir/vector_cost.cc.o.d"
  "libdsa_engine.a"
  "libdsa_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsa_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
