
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/cidp.cc" "src/engine/CMakeFiles/dsa_engine.dir/cidp.cc.o" "gcc" "src/engine/CMakeFiles/dsa_engine.dir/cidp.cc.o.d"
  "/root/repo/src/engine/dsa_cache.cc" "src/engine/CMakeFiles/dsa_engine.dir/dsa_cache.cc.o" "gcc" "src/engine/CMakeFiles/dsa_engine.dir/dsa_cache.cc.o.d"
  "/root/repo/src/engine/engine.cc" "src/engine/CMakeFiles/dsa_engine.dir/engine.cc.o" "gcc" "src/engine/CMakeFiles/dsa_engine.dir/engine.cc.o.d"
  "/root/repo/src/engine/reguse.cc" "src/engine/CMakeFiles/dsa_engine.dir/reguse.cc.o" "gcc" "src/engine/CMakeFiles/dsa_engine.dir/reguse.cc.o.d"
  "/root/repo/src/engine/simd_gen.cc" "src/engine/CMakeFiles/dsa_engine.dir/simd_gen.cc.o" "gcc" "src/engine/CMakeFiles/dsa_engine.dir/simd_gen.cc.o.d"
  "/root/repo/src/engine/tracker.cc" "src/engine/CMakeFiles/dsa_engine.dir/tracker.cc.o" "gcc" "src/engine/CMakeFiles/dsa_engine.dir/tracker.cc.o.d"
  "/root/repo/src/engine/vector_cost.cc" "src/engine/CMakeFiles/dsa_engine.dir/vector_cost.cc.o" "gcc" "src/engine/CMakeFiles/dsa_engine.dir/vector_cost.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/dsa_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/dsa_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/neon/CMakeFiles/dsa_neon.dir/DependInfo.cmake"
  "/root/repo/build/src/prog/CMakeFiles/dsa_prog.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dsa_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
