file(REMOVE_RECURSE
  "libdsa_engine.a"
)
