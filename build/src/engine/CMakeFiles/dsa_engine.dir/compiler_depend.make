# Empty compiler generated dependencies file for dsa_engine.
# This may be replaced when dependencies are built.
