file(REMOVE_RECURSE
  "CMakeFiles/dsa_sim.dir/report.cc.o"
  "CMakeFiles/dsa_sim.dir/report.cc.o.d"
  "CMakeFiles/dsa_sim.dir/system.cc.o"
  "CMakeFiles/dsa_sim.dir/system.cc.o.d"
  "libdsa_sim.a"
  "libdsa_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsa_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
