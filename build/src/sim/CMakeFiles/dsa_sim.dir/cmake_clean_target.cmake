file(REMOVE_RECURSE
  "libdsa_sim.a"
)
