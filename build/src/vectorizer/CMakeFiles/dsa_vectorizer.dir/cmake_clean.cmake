file(REMOVE_RECURSE
  "CMakeFiles/dsa_vectorizer.dir/static_vectorizer.cc.o"
  "CMakeFiles/dsa_vectorizer.dir/static_vectorizer.cc.o.d"
  "libdsa_vectorizer.a"
  "libdsa_vectorizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsa_vectorizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
