file(REMOVE_RECURSE
  "libdsa_vectorizer.a"
)
