# Empty compiler generated dependencies file for dsa_vectorizer.
# This may be replaced when dependencies are built.
