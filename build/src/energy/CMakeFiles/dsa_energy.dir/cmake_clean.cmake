file(REMOVE_RECURSE
  "CMakeFiles/dsa_energy.dir/energy_model.cc.o"
  "CMakeFiles/dsa_energy.dir/energy_model.cc.o.d"
  "libdsa_energy.a"
  "libdsa_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsa_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
