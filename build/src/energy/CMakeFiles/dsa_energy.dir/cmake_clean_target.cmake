file(REMOVE_RECURSE
  "libdsa_energy.a"
)
