# Empty compiler generated dependencies file for dsa_energy.
# This may be replaced when dependencies are built.
