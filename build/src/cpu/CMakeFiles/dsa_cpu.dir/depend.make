# Empty dependencies file for dsa_cpu.
# This may be replaced when dependencies are built.
