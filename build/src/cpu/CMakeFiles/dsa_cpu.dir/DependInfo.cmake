
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/cpu.cc" "src/cpu/CMakeFiles/dsa_cpu.dir/cpu.cc.o" "gcc" "src/cpu/CMakeFiles/dsa_cpu.dir/cpu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/dsa_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dsa_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/prog/CMakeFiles/dsa_prog.dir/DependInfo.cmake"
  "/root/repo/build/src/neon/CMakeFiles/dsa_neon.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
