file(REMOVE_RECURSE
  "libdsa_cpu.a"
)
