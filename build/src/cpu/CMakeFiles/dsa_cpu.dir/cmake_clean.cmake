file(REMOVE_RECURSE
  "CMakeFiles/dsa_cpu.dir/cpu.cc.o"
  "CMakeFiles/dsa_cpu.dir/cpu.cc.o.d"
  "libdsa_cpu.a"
  "libdsa_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsa_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
