file(REMOVE_RECURSE
  "libdsa_prog.a"
)
