# Empty dependencies file for dsa_prog.
# This may be replaced when dependencies are built.
