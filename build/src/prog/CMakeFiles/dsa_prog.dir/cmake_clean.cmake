file(REMOVE_RECURSE
  "CMakeFiles/dsa_prog.dir/assembler.cc.o"
  "CMakeFiles/dsa_prog.dir/assembler.cc.o.d"
  "libdsa_prog.a"
  "libdsa_prog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsa_prog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
