file(REMOVE_RECURSE
  "libdsa_mem.a"
)
