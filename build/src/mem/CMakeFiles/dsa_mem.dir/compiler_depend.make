# Empty compiler generated dependencies file for dsa_mem.
# This may be replaced when dependencies are built.
