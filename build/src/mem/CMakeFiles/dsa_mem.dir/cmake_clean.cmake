file(REMOVE_RECURSE
  "CMakeFiles/dsa_mem.dir/cache.cc.o"
  "CMakeFiles/dsa_mem.dir/cache.cc.o.d"
  "libdsa_mem.a"
  "libdsa_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsa_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
