// Article 3 (DATE), Fig. 9: energy savings over the ARM original
// execution. The event-based energy model (Section 5.2 stand-in) charges
// core/NEON dynamic energy per instruction, cache/DRAM energy per access,
// leakage per cycle, and the DSA's own analysis energy.
//
// Paper shape: the DSA saves ~45% energy on average over the ARM original
// execution on the DLP-rich benchmarks (shorter runtime cuts leakage; one
// NEON op replaces `lanes` scalar fetch/decode/execute rounds).
#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "workloads/workloads.h"

int main(int argc, char** argv) {
  using dsa::sim::RunMode;
  const dsa::bench::BenchOptions opts = dsa::bench::ParseBenchArgs(argc, argv);
  const dsa::sim::SystemConfig cfg = dsa::bench::BaseConfig(opts);
  dsa::bench::PrintSetupHeader(cfg);

  dsa::sim::BatchRunner runner(opts.runner);
  struct Row {
    std::string name;
    std::array<std::string, 4> keys;  // scalar, autovec, handvec, dsa
  };
  std::vector<Row> rows;
  for (const dsa::sim::Workload& wl : dsa::workloads::Article3Set()) {
    if (!dsa::bench::KeepWorkload(opts, wl.name)) continue;
    rows.push_back(Row{wl.name, runner.SubmitMatrix(wl, cfg)});
  }
  // The RGB-Gray breakdown cells below come from the same memo: RGB-Gray
  // is part of the Article 3 set, so these submissions are deduplicated.
  const dsa::sim::Workload rgb = dsa::workloads::MakeRgbGray();
  const std::string rgb_base = runner.Submit(rgb, RunMode::kScalar, cfg);
  const std::string rgb_dsa = runner.Submit(rgb, RunMode::kDsa, cfg);

  std::printf("Article 3 Fig. 9 — energy savings over ARM original (%%)\n");
  std::printf("%-12s %12s %12s %12s\n", "benchmark", "AutoVec", "Hand-coded",
              "DSA");
  double dsa_savings_sum = 0;
  int dlp_count = 0;
  for (const Row& row : rows) {
    const auto& base = dsa::bench::ResultOrEmpty(runner, row.keys[0]);
    const auto& a = dsa::bench::ResultOrEmpty(runner, row.keys[1]);
    const auto& h = dsa::bench::ResultOrEmpty(runner, row.keys[2]);
    const auto& d = dsa::bench::ResultOrEmpty(runner, row.keys[3]);
    const double ds = dsa::bench::EnergySavingsPct(base, d);
    std::printf("%-12s %+11.1f%% %+11.1f%% %+11.1f%%\n", row.name.c_str(),
                dsa::bench::EnergySavingsPct(base, a),
                dsa::bench::EnergySavingsPct(base, h), ds);
    if (d.dsa->takeovers > 0) {
      dsa_savings_sum += ds;
      ++dlp_count;
    }
  }
  std::printf("\nDSA mean savings on vectorized benchmarks: %.1f%%  "
              "(paper: ~45%%)\n",
              dlp_count ? dsa_savings_sum / dlp_count : 0.0);

  // Energy breakdown for one representative benchmark.
  const auto& base = dsa::bench::ResultOrEmpty(runner, rgb_base);
  const auto& d = dsa::bench::ResultOrEmpty(runner, rgb_dsa);
  std::printf("\nRGB-Gray breakdown (nJ):  %-18s %12s %12s\n", "",
              "ARM original", "DSA");
  auto row = [](const char* name, double a, double b) {
    std::printf("%26s %12.1f %12.1f\n", name, a, b);
  };
  row("core dynamic", base.energy.core_dynamic, d.energy.core_dynamic);
  row("core static", base.energy.core_static, d.energy.core_static);
  row("NEON dynamic", base.energy.neon_dynamic, d.energy.neon_dynamic);
  row("NEON static", base.energy.neon_static, d.energy.neon_static);
  row("caches + DRAM", base.energy.cache_dram, d.energy.cache_dram);
  row("DSA", base.energy.dsa_dynamic + base.energy.dsa_static,
      d.energy.dsa_dynamic + d.energy.dsa_static);
  row("total", base.energy.total(), d.energy.total());
  return dsa::bench::FinishBench(runner, opts, "a3_fig9_energy");
}
