// Article 2 Table 3 / Article 3 (DATE) Table 2: DSA detection latency —
// the share of the execution during which the DSA logic was busy
// analyzing loops. Because the DSA runs in parallel with the ARM core,
// this never appears as a slowdown (asserted by the test suite); the
// table quantifies how long the detection hardware is active.
//
// Paper shape: ~1.5% for benchmarks with only statically-ranged loops,
// more for conditional/dynamic-range-heavy ones (Dijkstra, BitCounts),
// Q Sort ~1.02% spent analyzing loops that are never vectorizable.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "workloads/workloads.h"

int main(int argc, char** argv) {
  using dsa::sim::RunMode;
  const dsa::bench::BenchOptions opts = dsa::bench::ParseBenchArgs(argc, argv);
  const dsa::sim::SystemConfig cfg = dsa::bench::BaseConfig(opts);
  dsa::bench::PrintSetupHeader(cfg);

  dsa::sim::BatchRunner runner(opts.runner);
  std::vector<std::pair<std::string, std::string>> rows;  // name, key
  for (const dsa::sim::Workload& wl : dsa::workloads::Article3Set()) {
    if (!dsa::bench::KeepWorkload(opts, wl.name)) continue;
    // The scalar baseline rides along so the oracle can cross-check the
    // DSA run's outputs against the unaccelerated execution.
    runner.Submit(wl, RunMode::kScalar, cfg);
    rows.emplace_back(wl.name, runner.Submit(wl, RunMode::kDsa, cfg));
  }

  std::printf("DSA detection latency (%% of total execution)\n");
  std::printf("%-12s %12s %16s %12s\n", "benchmark", "latency %",
              "analysis cycles", "takeovers");
  for (const auto& [name, key] : rows) {
    const auto& r = dsa::bench::ResultOrEmpty(runner, key);
    std::printf("%-12s %11.2f%% %16llu %12llu\n", name.c_str(),
                r.detection_latency_pct(),
                static_cast<unsigned long long>(r.dsa->analysis_cycles),
                static_cast<unsigned long long>(r.dsa->takeovers));
  }
  return dsa::bench::FinishBench(runner, opts, "a2_tab3_latency");
}
