// dsa_submit — client for the dsa_serve daemon (docs/SERVING.md).
// Submits one sweep (or ping) and maps the typed response onto exit
// codes scripts can branch on: 0 all cells ok, 1 cell failures or an
// interrupted sweep, 2 usage, 4 admission refused, 5 transport failure.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "serve/client.h"
#include "serve/flags.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: dsa_submit --socket PATH [options]\n"
               "  --socket PATH       daemon socket (required)\n"
               "  --filter SUBSTR     only cells whose JobKey contains "
               "SUBSTR (case-insensitive)\n"
               "  --client NAME       admission-quota identity (default "
               "dsa_submit)\n"
               "  --deadline-ms N     give up on the request after N ms\n"
               "  --json PATH         dump the raw response JSON to PATH\n"
               "  --ping              liveness probe (no cells)\n"
               "  --health            health census probe (no cells)\n"
               "  --retries N         retry transport transients up to N "
               "times with doubling backoff (default 0)\n"
               "  --recv-timeout-ms N give up on a wedged response read "
               "after N ms per read (default none)\n"
               "  --quiet             suppress the failed-cell listing\n");
}

}  // namespace

int main(int argc, char** argv) {
  dsa::serve::ClientOptions opts;
  const auto value = [&](int& i, const std::string& flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", flag.c_str());
      Usage();
      std::exit(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket") {
      opts.socket_path = value(i, arg);
    } else if (arg == "--filter") {
      opts.filter = value(i, arg);
    } else if (arg == "--client") {
      opts.client_name = value(i, arg);
    } else if (arg == "--deadline-ms") {
      std::string err;
      if (!dsa::serve::ParseU64Text(value(i, arg), opts.deadline_ms, &err)) {
        std::fprintf(stderr, "--deadline-ms %s\n", err.c_str());
        return 2;
      }
    } else if (arg == "--json") {
      opts.json_path = value(i, arg);
    } else if (arg == "--ping") {
      opts.ping = true;
    } else if (arg == "--health") {
      opts.health = true;
    } else if (arg == "--retries") {
      long v = 0;
      std::string err;
      if (!dsa::serve::ParseCountText(value(i, arg), v, &err) || v < 0) {
        std::fprintf(stderr, "--retries %s\n",
                     err.empty() ? "expects a count >= 0" : err.c_str());
        return 2;
      }
      opts.retries = static_cast<int>(v);
    } else if (arg == "--recv-timeout-ms") {
      std::string err;
      if (!dsa::serve::ParseU64Text(value(i, arg), opts.recv_timeout_ms,
                                    &err)) {
        std::fprintf(stderr, "--recv-timeout-ms %s\n", err.c_str());
        return 2;
      }
    } else if (arg == "--quiet") {
      opts.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      Usage();
      return 2;
    }
  }
  if (opts.socket_path.empty()) {
    Usage();
    return 2;
  }
  return dsa::serve::Submit(opts);
}
