// Soak driver for the resilience layer (docs/RESILIENCE.md): proves the
// crash-safe journal's headline guarantee end to end. One invocation
//
//   1. runs a seeded randomized sweep uninterrupted and keeps its bench
//      JSON as the reference,
//   2. re-runs the same sweep in a worker process that SIGKILLs itself
//      at a seeded point mid-batch (after K journal appends, K chosen
//      from the seed), leaving a partial journal behind,
//   3. resumes that journal in a fresh worker and writes its bench JSON,
//   4. gates on the resumed JSON being bit-identical to the reference
//      after stripping host-volatile fields (wall clock, host MIPS,
//      journal/restored bookkeeping) — every digest, cycle count, cache
//      and energy number must match exactly.
//
// The worker re-executes this same binary (--worker) so the kill lands
// in a real process mid-run, not in a simulated harness. Exits 0 only if
// the kill happened, the resume restored at least one cell, and the
// reports match bit-for-bit.
//
// Usage: bench_soak [--steps small|full] [--seed N] [--jobs N]
//                   [--dir PATH] [--keep]
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "resilience/mini_json.h"
#include "resilience/supervisor.h"
#include "workloads/workloads.h"

namespace {

using dsa::resilience::JsonValue;

struct SoakArgs {
  bool worker = false;
  std::string steps = "small";
  std::uint64_t seed = 7;
  int jobs = 2;
  std::string dir = "bench_soak.tmp";
  bool keep = false;
  // Worker-only:
  std::string json_path;
  std::string journal_path;
  std::string resume_path;
  std::uint64_t kill_after = 0;  // SIGKILL self after K journal appends
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--steps small|full] [--seed N] [--jobs N] "
               "[--dir PATH] [--keep]\n",
               argv0);
  std::exit(2);
}

SoakArgs ParseArgs(int argc, char** argv) {
  SoakArgs a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--worker") {
      a.worker = true;
    } else if (arg == "--steps") {
      a.steps = value();
      if (a.steps != "small" && a.steps != "full") Usage(argv[0]);
    } else if (arg == "--seed") {
      a.seed = static_cast<std::uint64_t>(
          dsa::bench::ParseCountArg(arg, value()));
    } else if (arg == "--jobs") {
      a.jobs = static_cast<int>(dsa::bench::ParseCountArg(arg, value()));
    } else if (arg == "--dir") {
      a.dir = value();
    } else if (arg == "--keep") {
      a.keep = true;
    } else if (arg == "--json") {
      a.json_path = value();
    } else if (arg == "--journal") {
      a.journal_path = value();
    } else if (arg == "--resume") {
      a.resume_path = value();
    } else if (arg == "--kill-after") {
      a.kill_after = static_cast<std::uint64_t>(
          dsa::bench::ParseCountArg(arg, value()));
    } else {
      Usage(argv[0]);
    }
  }
  return a;
}

// The seeded sweep both the reference and the killed/resumed runs
// execute: a few size-randomized workloads across three run modes. The
// same (seed, steps) always builds the same sweep — that determinism is
// what makes the bit-identical gate meaningful.
std::vector<dsa::sim::Workload> BuildSweep(const SoakArgs& a) {
  std::mt19937_64 rng(a.seed);
  auto pick = [&rng](int lo, int hi) {
    return lo + static_cast<int>(rng() % static_cast<std::uint64_t>(
                                             hi - lo + 1));
  };
  std::vector<dsa::sim::Workload> sweep;
  sweep.push_back(dsa::workloads::MakeVecAdd(256 * pick(2, 8)));
  sweep.push_back(dsa::workloads::MakeBitCount(512 * pick(2, 6)));
  sweep.push_back(dsa::workloads::MakeShiftAdd(256 * pick(2, 8), pick(4, 16)));
  sweep.push_back(dsa::workloads::MakeStrCopy(500 * pick(2, 6)));
  if (a.steps == "full") {
    sweep.push_back(dsa::workloads::MakeRgbGray(1024 * pick(4, 16)));
    sweep.push_back(dsa::workloads::MakeSusanE(1024 * pick(4, 12), 48));
    sweep.push_back(dsa::workloads::MakeMatMul(8 * pick(3, 6)));
    sweep.push_back(dsa::workloads::MakeQSort(256 * pick(2, 6)));
  }
  return sweep;
}

constexpr dsa::sim::RunMode kModes[] = {dsa::sim::RunMode::kScalar,
                                        dsa::sim::RunMode::kAutoVec,
                                        dsa::sim::RunMode::kDsa};

std::size_t SweepCells(const SoakArgs& a) {
  return BuildSweep(a).size() * (sizeof(kModes) / sizeof(kModes[0]));
}

// ---------------------------------------------------------------------------
// Worker: one sweep through the BatchRunner under the supervisor, with an
// optional self-SIGKILL after `kill_after` journal appends.

int WorkerMain(const SoakArgs& a) {
  dsa::resilience::SupervisorOptions so;
  so.journal_path = a.journal_path;
  so.resume_path = a.resume_path;
  // Durability on every append: the kill point must not be able to
  // outrun the journal, or the equivalence gate would race the disk.
  so.journal.fsync = dsa::resilience::FsyncPolicy::kAlways;
  dsa::resilience::Supervisor sup(so);
  std::string err;
  if (!sup.Init(&err)) {
    std::fprintf(stderr, "soak worker: %s\n", err.c_str());
    return 2;
  }

  dsa::sim::RunnerOptions ro;
  ro.jobs = a.jobs;
  ro.repeats = 2;  // give the determinism oracle two samples per cell
  sup.Attach(ro);

  std::atomic<std::uint64_t> appended{0};
  if (a.kill_after > 0) {
    ro.on_outcome = [inner = ro.on_outcome, &appended,
                     kill_after = a.kill_after](
                        const dsa::sim::JobOutcome& out) {
      if (inner) inner(out);
      if (out.cell_status == "ok" && !out.restored &&
          appended.fetch_add(1) + 1 == kill_after) {
        // The fsync-per-append policy already made the journal durable;
        // die the hard way, mid-batch, like a real OOM-kill would.
        ::raise(SIGKILL);
      }
    };
  }

  dsa::sim::BatchRunner runner(ro);
  const dsa::sim::SystemConfig cfg;
  for (const dsa::sim::Workload& wl : BuildSweep(a)) {
    for (const dsa::sim::RunMode mode : kModes) {
      runner.Submit(wl, mode, cfg);
    }
  }
  const dsa::sim::BatchReport report = runner.Finish();
  const dsa::sim::BenchJsonExtras extras = sup.Extras(report);
  if (!dsa::sim::WriteBenchJson(a.json_path, "soak", runner, report,
                                &extras)) {
    std::fprintf(stderr, "soak worker: could not write %s\n",
                 a.json_path.c_str());
    return 1;
  }
  std::printf("soak worker: %" PRIu64 " distinct job(s), %" PRIu64
              " restored, journal %s\n",
              report.distinct_jobs, report.restored_cells,
              a.journal_path.empty() ? "off" : a.journal_path.c_str());
  return report.ok() ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Orchestrator: reference run, killed run, resumed run, canonical diff.

std::string SelfPath(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0;
}

struct WorkerExit {
  bool signalled = false;
  int signal = 0;
  int code = -1;
};

WorkerExit RunWorker(const std::string& self,
                     const std::vector<std::string>& extra) {
  std::vector<std::string> args = {self, "--worker"};
  args.insert(args.end(), extra.begin(), extra.end());
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& s : args) argv.push_back(s.data());
  argv.push_back(nullptr);

  WorkerExit we;
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    return we;
  }
  if (pid == 0) {
    ::execv(self.c_str(), argv.data());
    std::perror("execv");
    ::_exit(127);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (WIFSIGNALED(status)) {
    we.signalled = true;
    we.signal = WTERMSIG(status);
  } else if (WIFEXITED(status)) {
    we.code = WEXITSTATUS(status);
  }
  return we;
}

bool LoadJson(const std::string& path, JsonValue& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string err;
  if (!ParseJson(ss.str(), out, &err)) {
    std::fprintf(stderr, "soak: %s: %s\n", path.c_str(), err.c_str());
    return false;
  }
  return true;
}

// Strips the host-volatile fields from a bench report, leaving only what
// must reproduce bit-identically across a kill/resume: per-result keys
// wall_ms/host (timing) and restored (bookkeeping), plus the top-level
// run bookkeeping (jobs, wall_ms, memo/restored/journal counters).
JsonValue Canonicalize(const JsonValue& report) {
  static const char* kTopLevel[] = {"schema",        "bench",
                                    "repeats",       "distinct_jobs",
                                    "executed_runs", "faulted_cells",
                                    "oracle",        "results"};
  JsonValue out;
  out.type = JsonValue::Type::kObject;
  for (const char* keep : kTopLevel) {
    const JsonValue* v = report.Find(keep);
    if (v == nullptr) continue;
    if (std::strcmp(keep, "results") == 0) {
      JsonValue results;
      results.type = JsonValue::Type::kArray;
      for (const JsonValue& cell : v->array) {
        JsonValue c;
        c.type = JsonValue::Type::kObject;
        for (const auto& [k, cv] : cell.object) {
          if (k == "wall_ms" || k == "host" || k == "restored") continue;
          c.object.emplace_back(k, cv);
        }
        results.array.push_back(std::move(c));
      }
      out.object.emplace_back(keep, std::move(results));
    } else {
      out.object.emplace_back(keep, *v);
    }
  }
  return out;
}

int OrchestratorMain(const SoakArgs& a, const char* argv0) {
  const std::string self = SelfPath(argv0);
  const std::string dir = a.dir;
  std::string cmd = "mkdir -p '" + dir + "'";
  if (std::system(cmd.c_str()) != 0) {
    std::fprintf(stderr, "soak: cannot create %s\n", dir.c_str());
    return 1;
  }
  const std::string ref_json = dir + "/reference.json";
  const std::string soak_json = dir + "/resumed.json";
  const std::string journal = dir + "/run.jnl";
  std::remove(soak_json.c_str());
  std::remove(journal.c_str());

  const std::size_t cells = SweepCells(a);
  const std::uint64_t kill_after = 1 + a.seed % (cells - 1);
  const std::string seed_s = std::to_string(a.seed);
  const std::string jobs_s = std::to_string(a.jobs);
  std::printf("soak: steps=%s seed=%" PRIu64 " (%zu cells, kill after %" PRIu64
              " journal append(s))\n",
              a.steps.c_str(), a.seed, cells, kill_after);

  // 1. Reference: the uninterrupted sweep.
  WorkerExit ref = RunWorker(self, {"--steps", a.steps, "--seed", seed_s,
                                    "--jobs", jobs_s, "--json", ref_json});
  if (ref.signalled || ref.code != 0) {
    std::fprintf(stderr, "soak: reference run failed (exit %d)\n", ref.code);
    return 1;
  }

  // 2. The same sweep, SIGKILLed mid-batch after `kill_after` appends.
  WorkerExit killed = RunWorker(
      self, {"--steps", a.steps, "--seed", seed_s, "--jobs", jobs_s, "--json",
             soak_json, "--journal", journal, "--kill-after",
             std::to_string(kill_after)});
  if (!killed.signalled || killed.signal != SIGKILL) {
    std::fprintf(stderr,
                 "soak: kill run was supposed to die on SIGKILL, got "
                 "%s %d\n",
                 killed.signalled ? "signal" : "exit",
                 killed.signalled ? killed.signal : killed.code);
    return 1;
  }

  // 3. Resume from the partial journal.
  WorkerExit resumed = RunWorker(
      self, {"--steps", a.steps, "--seed", seed_s, "--jobs", jobs_s, "--json",
             soak_json, "--journal", journal, "--resume", journal});
  if (resumed.signalled || resumed.code != 0) {
    std::fprintf(stderr, "soak: resume run failed (exit %d)\n", resumed.code);
    return 1;
  }

  // 4. Bit-identical equivalence gate.
  JsonValue ref_report, soak_report;
  if (!LoadJson(ref_json, ref_report) || !LoadJson(soak_json, soak_report)) {
    return 1;
  }
  const JsonValue* restored = soak_report.Find("restored_cells");
  if (restored == nullptr || restored->AsU64() == 0) {
    std::fprintf(stderr,
                 "soak: resumed run restored no cells — the journal replay "
                 "never happened\n");
    return 1;
  }
  const std::string canon_ref = DumpJson(Canonicalize(ref_report));
  const std::string canon_soak = DumpJson(Canonicalize(soak_report));
  if (canon_ref != canon_soak) {
    const std::string diff_ref = dir + "/reference.canonical.json";
    const std::string diff_soak = dir + "/resumed.canonical.json";
    std::ofstream(diff_ref) << canon_ref << "\n";
    std::ofstream(diff_soak) << canon_soak << "\n";
    std::fprintf(stderr,
                 "soak FAILED: resumed report diverges from the reference "
                 "(diff %s %s)\n",
                 diff_ref.c_str(), diff_soak.c_str());
    return 1;
  }
  std::printf("soak PASSED: killed-and-resumed sweep is bit-identical to "
              "the uninterrupted run (%" PRIu64 " cell(s) restored, %zu "
              "canonical byte(s) compared)\n",
              restored->AsU64(), canon_ref.size());
  if (!a.keep) {
    cmd = "rm -rf '" + dir + "'";
    (void)std::system(cmd.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const SoakArgs a = ParseArgs(argc, argv);
  if (a.worker) return WorkerMain(a);
  return OrchestratorMain(a, argv[0]);
}
