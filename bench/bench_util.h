// Shared reporting helpers for the benchmark harness: each bench binary
// regenerates one table or figure of the paper and prints the measured
// series next to the paper's reported values where applicable. All
// drivers run their workload×mode matrix through the parallel
// BatchRunner (sim/runner.h) and are gated by the differential-
// consistency oracle: a driver exits non-zero if any output-equivalence,
// determinism or invariant check fails, instead of silently printing a
// wrong table. Common CLI: --jobs N, --json PATH, --filter SUBSTR,
// --repeats K, --no-oracle, --dispatch switch|threaded, plus the
// resilience flags --isolate,
// --journal/--resume, --deadline-ms, --mem-limit-mb, --breaker and
// --fsync (docs/RESILIENCE.md).
#pragma once

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.h"
#include "resilience/supervisor.h"
#include "sim/report.h"
#include "sim/runner.h"
#include "sim/system.h"
#include "trace/chrome_export.h"

namespace dsa::bench {

struct BenchOptions {
  sim::RunnerOptions runner;  // --jobs, --repeats, --no-oracle
  std::string json_path;      // --json <path>; empty = no JSON emitted
  std::string filter;         // --filter <substr> on workload names
  std::string trace_path;     // --trace <path>; empty = tracing disabled
  // --faults <spec>: deterministic fault injection for DSA cells, e.g.
  // "cidp@0,bitflip@2+3;seed=7" (grammar in docs/FAULTS.md).
  fault::FaultPlan faults;
  // Resilience layer (docs/RESILIENCE.md): --isolate, --journal PATH,
  // --resume PATH, --deadline-ms N, --mem-limit-mb N, --breaker N,
  // --fsync none|interval|always.
  resilience::SupervisorOptions resilience;
  // Built (and attached to `runner`) by ParseBenchArgs when any
  // resilience flag is given; FinishBench reads its census for the JSON.
  std::shared_ptr<resilience::Supervisor> supervisor;
  bool serial = false;        // --serial: seed-style direct Run() loop
  bool compare = false;       // --compare: time serial vs. runner paths
  bool reference = false;     // --reference: pre-optimization sim paths
  // --interleave N (bench_throughput): load-immune A/B measurement — per
  // cell, N back-to-back fast/--reference pairs on the same binary, with
  // the median of the per-pair host-MIPS ratios reported. Host load hits
  // both arms of a pair alike, so the ratio survives the ±30% wall-clock
  // swings documented in docs/PERF.md.
  int interleave = 0;
  // --assert-ratio X: with --interleave, exit non-zero unless every cell's
  // median fast/reference ratio is >= X (the scripts/check.sh perf gate).
  double assert_ratio = 0.0;
  // --dispatch switch|threaded: interpreter core for the batched run
  // loops (docs/DISPATCH.md). Bit-identical simulated results either way;
  // only host MIPS differs.
  cpu::DispatchMode dispatch = cpu::DispatchMode::kThreaded;
  // Seeded loop-nest generator (workloads/gen): --gen-seed is the base
  // seed of the sweep, --gen-count the number of generated programs
  // (0 = the driver's default population).
  std::uint64_t gen_seed = 1;
  int gen_count = 0;
};

// Strict numeric flag parsing: the whole token must be a decimal number,
// so `--jobs 4x` or `--jobs ""` is a usage error instead of whatever
// atoi() would silently make of it. Out-of-range values are refused too —
// strtol saturates silently on ERANGE, which would turn an overflowed
// `--deadline-ms 99999999999999999999` into LONG_MAX instead of an error.
inline long ParseCountArg(const std::string& flag, const char* text) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "%s expects a decimal number, got \"%s\"\n",
                 flag.c_str(), text);
    std::exit(2);
  }
  if (errno == ERANGE) {
    std::fprintf(stderr, "%s value \"%s\" is out of range\n", flag.c_str(),
                 text);
    std::exit(2);
  }
  return v;
}

// Strict uint64 flag parsing for `--gen-seed`: any 64-bit seed is legal,
// but a leading '-' or an overflowing token is refused instead of letting
// strtoull wrap it around into a different (silently valid) seed.
inline std::uint64_t ParseU64Arg(const std::string& flag, const char* text) {
  const char* p = text;
  while (std::isspace(static_cast<unsigned char>(*p))) ++p;
  if (*p == '-' || *p == '+') {
    std::fprintf(stderr, "%s expects an unsigned decimal number, got \"%s\"\n",
                 flag.c_str(), text);
    std::exit(2);
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "%s expects an unsigned decimal number, got \"%s\"\n",
                 flag.c_str(), text);
    std::exit(2);
  }
  if (errno == ERANGE) {
    std::fprintf(stderr,
                 "%s value \"%s\" overflows 64 bits; refusing to wrap it\n",
                 flag.c_str(), text);
    std::exit(2);
  }
  return static_cast<std::uint64_t>(v);
}

// Strict double parsing for `--assert-ratio`: whole token must be a
// finite non-negative number.
inline double ParseRatioArg(const std::string& flag, const char* text) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE || !(v >= 0.0) ||
      !std::isfinite(v)) {
    std::fprintf(stderr, "%s expects a non-negative number, got \"%s\"\n",
                 flag.c_str(), text);
    std::exit(2);
  }
  return v;
}

// Largest generated-program population one sweep may request. Far above
// any useful sweep, but low enough that a typo'd count fails fast instead
// of allocating for hours.
inline constexpr long kMaxGenCount = 1'000'000;

// Parses the shared harness flags; unknown flags abort with usage so a
// typo cannot silently fall back to defaults.
inline BenchOptions ParseBenchArgs(int argc, char** argv) {
  BenchOptions o;
  bool jobs_given = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--jobs") {
      o.runner.jobs = static_cast<int>(ParseCountArg(arg, value()));
      jobs_given = true;
    } else if (arg == "--repeats") {
      o.runner.repeats = static_cast<int>(ParseCountArg(arg, value()));
    } else if (arg == "--json") {
      o.json_path = value();
    } else if (arg == "--filter") {
      o.filter = value();
    } else if (arg == "--no-oracle") {
      o.runner.oracle = false;
    } else if (arg == "--trace") {
      o.trace_path = value();
    } else if (arg == "--faults") {
      try {
        o.faults = fault::ParseFaultPlan(value());
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s\n", e.what());
        std::exit(2);
      }
    } else if (arg == "--gen-seed") {
      o.gen_seed = ParseU64Arg(arg, value());
    } else if (arg == "--gen-count") {
      const long n = ParseCountArg(arg, value());
      if (n < 0 || n > kMaxGenCount) {
        std::fprintf(stderr, "--gen-count must be in [0, %ld], got %ld\n",
                     kMaxGenCount, n);
        std::exit(2);
      }
      o.gen_count = static_cast<int>(n);
    } else if (arg == "--interleave") {
      const long n = ParseCountArg(arg, value());
      if (n < 1 || n > 999) {
        std::fprintf(stderr, "--interleave must be in [1, 999], got %ld\n", n);
        std::exit(2);
      }
      o.interleave = static_cast<int>(n);
    } else if (arg == "--assert-ratio") {
      o.assert_ratio = ParseRatioArg(arg, value());
    } else if (arg == "--serial") {
      o.serial = true;
    } else if (arg == "--compare") {
      o.compare = true;
    } else if (arg == "--reference") {
      o.reference = true;
    } else if (arg == "--dispatch") {
      const char* mode = value();
      if (!cpu::ParseDispatchMode(mode, o.dispatch)) {
        std::fprintf(stderr, "--dispatch expects switch|threaded, got \"%s\"\n",
                     mode);
        std::exit(2);
      }
    } else if (arg == "--isolate") {
      o.resilience.isolate = true;
    } else if (arg == "--journal") {
      o.resilience.journal_path = value();
    } else if (arg == "--resume") {
      o.resilience.resume_path = value();
    } else if (arg == "--deadline-ms") {
      o.resilience.deadline_ms =
          static_cast<std::uint64_t>(ParseCountArg(arg, value()));
    } else if (arg == "--mem-limit-mb") {
      o.resilience.mem_limit_mb =
          static_cast<std::uint64_t>(ParseCountArg(arg, value()));
    } else if (arg == "--breaker") {
      o.resilience.breaker_threshold =
          static_cast<int>(ParseCountArg(arg, value()));
    } else if (arg == "--fsync") {
      const char* mode = value();
      if (!resilience::ParseFsyncPolicy(mode, o.resilience.journal.fsync)) {
        std::fprintf(stderr,
                     "--fsync expects none|interval|always, got \"%s\"\n",
                     mode);
        std::exit(2);
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--jobs N] [--repeats K] [--json PATH] "
                   "[--filter SUBSTR] [--trace PATH] [--faults SPEC] "
                   "[--no-oracle] [--serial] [--compare] [--reference] "
                   "[--interleave N] [--assert-ratio X] "
                   "[--dispatch switch|threaded] "
                   "[--gen-seed S] [--gen-count N] "
                   "[--isolate] [--journal PATH] [--resume PATH] "
                   "[--deadline-ms N] [--mem-limit-mb N] [--breaker N] "
                   "[--fsync none|interval|always]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  if (jobs_given) {
    // Clamp to [1, hardware_concurrency]: more workers than cores only
    // adds contention, and 0/negative would silently re-enable the
    // autodetect the user just tried to override.
    int hw = static_cast<int>(std::thread::hardware_concurrency());
    if (hw <= 0) hw = 1;
    if (o.runner.jobs < 1) {
      std::fprintf(stderr, "warning: --jobs %d clamped to 1\n",
                   o.runner.jobs);
      o.runner.jobs = 1;
    } else if (o.runner.jobs > hw) {
      std::fprintf(stderr,
                   "warning: --jobs %d exceeds the %d available hardware "
                   "thread(s); clamped to %d\n",
                   o.runner.jobs, hw, hw);
      o.runner.jobs = hw;
    }
  }
  if ((o.resilience.deadline_ms > 0 || o.resilience.mem_limit_mb > 0) &&
      !o.resilience.isolate) {
    std::fprintf(stderr,
                 "--deadline-ms/--mem-limit-mb enforce limits on a forked "
                 "child; add --isolate\n");
    std::exit(2);
  }
  if (o.resilience.isolate && !o.trace_path.empty()) {
    // The child's structured trace is not shipped across the isolation
    // pipe, so --trace would end with "no job produced a trace".
    std::fprintf(stderr, "--trace is not supported with --isolate\n");
    std::exit(2);
  }
  if (o.interleave > 0 &&
      (o.reference || o.serial || o.compare || !o.json_path.empty() ||
       !o.trace_path.empty() || o.faults.enabled() || o.resilience.any())) {
    // The interleave loop runs its own reference arm and bypasses the
    // batch runner entirely, so the runner-side flags have nothing to
    // attach to; refuse instead of silently ignoring them.
    std::fprintf(stderr,
                 "--interleave is a standalone fast-vs-reference A/B loop; "
                 "drop --reference/--serial/--compare/--json/--trace/"
                 "--faults and the resilience flags\n");
    std::exit(2);
  }
  if (o.assert_ratio > 0.0 && o.interleave == 0) {
    std::fprintf(stderr, "--assert-ratio requires --interleave\n");
    std::exit(2);
  }
  if ((o.serial || o.compare) && o.resilience.any()) {
    std::fprintf(stderr,
                 "resilience flags apply to the batch runner; drop "
                 "--serial/--compare\n");
    std::exit(2);
  }
  if (o.faults.enabled() && o.runner.oracle && o.runner.repeats < 2 &&
      !o.faults.seed_explicit) {
    // With one sample per cell the determinism oracle cannot prove the
    // injector replayed identically, and an unpinned seed leaves nothing
    // to reproduce a report against. Refuse instead of emitting numbers
    // the harness cannot vouch for.
    std::fprintf(stderr,
                 "--faults with --repeats %d and no explicit seed leaves the "
                 "determinism oracle blind; pin the seed (\"...;seed=N\"), "
                 "use --repeats 2, or pass --no-oracle\n",
                 o.runner.repeats);
    std::exit(2);
  }
  if (o.runner.oracle && o.runner.repeats < 2) {
    // The determinism layer of the oracle diffs repeated executions of the
    // same job; with a single sample it silently has nothing to compare.
    std::fprintf(stderr,
                 "warning: --repeats %d leaves the determinism oracle with "
                 "<2 samples per job; only invariant and equivalence checks "
                 "will run (use --repeats 2 or --no-oracle)\n",
                 o.runner.repeats);
  }
  if (o.resilience.any()) {
    o.supervisor = std::make_shared<resilience::Supervisor>(o.resilience);
    std::string err;
    if (!o.supervisor->Init(&err)) {
      std::fprintf(stderr, "%s\n", err.c_str());
      std::exit(2);
    }
    o.supervisor->Attach(o.runner);
    if (o.resilience.isolate && !resilience::IsolationAvailable()) {
      std::fprintf(stderr,
                   "warning: fork() unavailable on this platform; --isolate "
                   "falls back to in-process execution\n");
    }
    if (!o.resilience.resume_path.empty()) {
      std::printf("resume: %llu completed cell(s) replayed from %s",
                  static_cast<unsigned long long>(
                      o.supervisor->replay().cells.size()),
                  o.resilience.resume_path.c_str());
      if (o.supervisor->replay().torn_bytes > 0) {
        std::printf(" (%llu torn byte(s) truncated)",
                    static_cast<unsigned long long>(
                        o.supervisor->replay().torn_bytes));
      }
      std::printf("\n");
    }
  }
  return o;
}

// The driver's base SystemConfig: defaults plus everything the shared
// flags configure (event tracing, fault injection, reference paths).
// Drivers derive their per-table config variations from this instead of
// a bare `SystemConfig cfg;`.
[[nodiscard]] inline sim::SystemConfig BaseConfig(const BenchOptions& o) {
  sim::SystemConfig cfg;
  cfg.trace.enabled = !o.trace_path.empty();
  cfg.reference_path = o.reference;
  cfg.dispatch = o.dispatch;
  cfg.faults = o.faults;
  return cfg;
}

[[nodiscard]] inline bool KeepWorkload(const BenchOptions& o,
                                       const std::string& name) {
  if (o.filter.empty()) return true;
  auto lower = [](std::string s) {
    for (char& c : s) c = static_cast<char>(std::tolower(c));
    return s;
  };
  return lower(name).find(lower(o.filter)) != std::string::npos;
}

// Rendering accessor used by the table loops instead of the throwing
// BatchRunner::Result(): a cell that crashed, timed out, was skipped by
// the circuit breaker or was cancelled by a graceful drain yields a
// zeroed placeholder row (with a stderr note) so the driver still
// renders its table and reaches FinishBench, which reports the failure
// in the JSON and the exit code. Without resilience flags every such
// failure still fails the run — the oracle records a run.exception
// violation for any cell with an error.
inline const sim::RunResult& ResultOrEmpty(sim::BatchRunner& runner,
                                           const std::string& key) {
  // The placeholder carries zeroed DSA stats, not an empty optional: the
  // DSA-table printers dereference r.dsa unconditionally.
  static const sim::RunResult kEmpty = [] {
    sim::RunResult r;
    r.dsa.emplace();
    return r;
  }();
  const sim::JobOutcome& out = runner.Outcome(key);
  if (out.cell_status != "ok" || out.runs.empty()) {
    std::fprintf(stderr, "note: cell %s unavailable (%s); table row zeroed\n",
                 key.c_str(), out.cell_status.c_str());
    return kEmpty;
  }
  return out.result();
}

// Oracle summary + JSON emission + exit code for a runner-based driver.
// Call after rendering the tables; returns the process exit code:
// 0 complete, 1 oracle violation or write failure, 3 interrupted by a
// graceful drain (SIGINT/SIGTERM) with partial results emitted.
inline int FinishBench(sim::BatchRunner& runner, const BenchOptions& o,
                       const char* bench_name) {
  const sim::BatchReport report = runner.Finish();
  std::printf(
      "\n[%s] %llu distinct jobs (%llu runs, %llu memoized submissions) "
      "in %.0f ms with %d worker(s)\n",
      bench_name, static_cast<unsigned long long>(report.distinct_jobs),
      static_cast<unsigned long long>(report.executed_runs),
      static_cast<unsigned long long>(report.memo_hits), report.wall_ms,
      runner.options().jobs);
  sim::BenchJsonExtras extras;
  if (o.supervisor) {
    extras = o.supervisor->Extras(report);
  } else if (report.interrupted) {
    extras.run_status = "interrupted";
  }
  if (report.restored_cells > 0) {
    std::printf("[%s] %llu cell(s) restored from the resume journal\n",
                bench_name,
                static_cast<unsigned long long>(report.restored_cells));
  }
  if (extras.run_status == "interrupted") {
    std::fprintf(stderr,
                 "[%s] interrupted: %llu queued cell(s) cancelled by the "
                 "graceful drain; emitting partial results\n",
                 bench_name,
                 static_cast<unsigned long long>(report.cancelled_cells));
  }
  if (extras.breaker_enabled) {
    for (const auto& b : extras.breaker) {
      if (b.trips == 0 && b.skipped == 0) continue;
      std::printf("[%s] breaker %s: state=%s trips=%llu skipped=%llu\n",
                  bench_name, b.workload.c_str(), b.state.c_str(),
                  static_cast<unsigned long long>(b.trips),
                  static_cast<unsigned long long>(b.skipped));
    }
  }
  if (runner.options().oracle) {
    if (report.ok()) {
      std::printf("[%s] oracle: all equivalence/determinism/invariant "
                  "checks passed\n",
                  bench_name);
    } else {
      std::fputs(sim::oracle::FormatViolations(report.violations).c_str(),
                 stderr);
      std::fprintf(stderr, "[%s] oracle: %zu violation(s)\n", bench_name,
                   report.violations.size());
    }
  }
  if (!o.json_path.empty()) {
    if (sim::WriteBenchJson(o.json_path, bench_name, runner, report,
                            &extras)) {
      std::printf("[%s] wrote %s\n", bench_name, o.json_path.c_str());
    } else {
      std::fprintf(stderr, "[%s] could not write %s\n", bench_name,
                   o.json_path.c_str());
      return 1;
    }
  }
  if (!o.trace_path.empty()) {
    // One Chrome process per traced job; DSA jobs additionally get the
    // per-loop text profile on stdout.
    std::vector<trace::ChromeProcess> procs;
    for (const auto& [key, out] : runner.outcomes()) {
      if (out.runs.empty() || out.result().trace == nullptr) continue;
      procs.push_back(trace::ChromeProcess{key, out.result().trace.get()});
      if (out.result().dsa.has_value()) {
        std::fputs(sim::FormatTraceProfile(out.result()).c_str(), stdout);
      }
    }
    if (procs.empty()) {
      std::fprintf(stderr, "[%s] --trace given but no job produced a trace\n",
                   bench_name);
      return 1;
    }
    if (trace::WriteChromeTrace(o.trace_path, procs)) {
      std::printf("[%s] wrote %s (%zu traced job(s); open in "
                  "chrome://tracing or ui.perfetto.dev)\n",
                  bench_name, o.trace_path.c_str(), procs.size());
    } else {
      std::fprintf(stderr, "[%s] could not write %s\n", bench_name,
                   o.trace_path.c_str());
      return 1;
    }
  }
  if (!report.ok()) return 1;
  return extras.run_status == "interrupted" ? 3 : 0;
}

// Prints the Table 4 "Systems Setup" header so every bench is
// self-describing.
inline void PrintSetupHeader(const sim::SystemConfig& cfg = {}) {
  std::printf(
      "systems setup (Table 4): O3-style ARMv7 core, %u-wide, 1 GHz | "
      "L1 %u kB / L2 %u kB LRU | NEON 128-bit, 16 Q regs | DSA cache %u kB, "
      "VC %u kB, %u array maps\n\n",
      cfg.timing.superscalar_width, cfg.memory.l1.size_bytes / 1024,
      cfg.memory.l2.size_bytes / 1024, cfg.dsa.dsa_cache_bytes / 1024,
      cfg.dsa.verification_cache_bytes / 1024, cfg.dsa.array_maps);
}

// Performance improvement (%) over a baseline, the paper's reporting unit:
// +31 means 31% faster (speedup 1.31).
inline double ImprovementPct(const sim::RunResult& base,
                             const sim::RunResult& x) {
  return (sim::SpeedupOver(base, x) - 1.0) * 100.0;
}

// Energy savings (%) over a baseline.
inline double EnergySavingsPct(const sim::RunResult& base,
                               const sim::RunResult& x) {
  if (base.energy.total() <= 0) return 0;
  return (1.0 - x.energy.total() / base.energy.total()) * 100.0;
}

inline double GeoMeanSpeedup(const std::vector<double>& speedups) {
  double log_sum = 0;
  for (const double s : speedups) log_sum += std::log(s);
  return std::exp(log_sum / static_cast<double>(speedups.size()));
}

}  // namespace dsa::bench
