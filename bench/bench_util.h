// Shared reporting helpers for the benchmark harness: each bench binary
// regenerates one table or figure of the paper and prints the measured
// series next to the paper's reported values where applicable. All
// drivers run their workload×mode matrix through the parallel
// BatchRunner (sim/runner.h) and are gated by the differential-
// consistency oracle: a driver exits non-zero if any output-equivalence,
// determinism or invariant check fails, instead of silently printing a
// wrong table. Common CLI: --jobs N, --json PATH, --filter SUBSTR,
// --repeats K, --no-oracle.
#pragma once

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "sim/report.h"
#include "sim/runner.h"
#include "sim/system.h"
#include "trace/chrome_export.h"

namespace dsa::bench {

struct BenchOptions {
  sim::RunnerOptions runner;  // --jobs, --repeats, --no-oracle
  std::string json_path;      // --json <path>; empty = no JSON emitted
  std::string filter;         // --filter <substr> on workload names
  std::string trace_path;     // --trace <path>; empty = tracing disabled
  // --faults <spec>: deterministic fault injection for DSA cells, e.g.
  // "cidp@0,bitflip@2+3;seed=7" (grammar in docs/FAULTS.md).
  fault::FaultPlan faults;
  bool serial = false;        // --serial: seed-style direct Run() loop
  bool compare = false;       // --compare: time serial vs. runner paths
  bool reference = false;     // --reference: pre-optimization sim paths
};

// Parses the shared harness flags; unknown flags abort with usage so a
// typo cannot silently fall back to defaults.
inline BenchOptions ParseBenchArgs(int argc, char** argv) {
  BenchOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--jobs") {
      o.runner.jobs = std::atoi(value());
    } else if (arg == "--repeats") {
      o.runner.repeats = std::atoi(value());
    } else if (arg == "--json") {
      o.json_path = value();
    } else if (arg == "--filter") {
      o.filter = value();
    } else if (arg == "--no-oracle") {
      o.runner.oracle = false;
    } else if (arg == "--trace") {
      o.trace_path = value();
    } else if (arg == "--faults") {
      try {
        o.faults = fault::ParseFaultPlan(value());
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s\n", e.what());
        std::exit(2);
      }
    } else if (arg == "--serial") {
      o.serial = true;
    } else if (arg == "--compare") {
      o.compare = true;
    } else if (arg == "--reference") {
      o.reference = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--jobs N] [--repeats K] [--json PATH] "
                   "[--filter SUBSTR] [--trace PATH] [--faults SPEC] "
                   "[--no-oracle] [--serial] [--compare] [--reference]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  if (o.faults.enabled() && o.runner.oracle && o.runner.repeats < 2 &&
      !o.faults.seed_explicit) {
    // With one sample per cell the determinism oracle cannot prove the
    // injector replayed identically, and an unpinned seed leaves nothing
    // to reproduce a report against. Refuse instead of emitting numbers
    // the harness cannot vouch for.
    std::fprintf(stderr,
                 "--faults with --repeats %d and no explicit seed leaves the "
                 "determinism oracle blind; pin the seed (\"...;seed=N\"), "
                 "use --repeats 2, or pass --no-oracle\n",
                 o.runner.repeats);
    std::exit(2);
  }
  if (o.runner.oracle && o.runner.repeats < 2) {
    // The determinism layer of the oracle diffs repeated executions of the
    // same job; with a single sample it silently has nothing to compare.
    std::fprintf(stderr,
                 "warning: --repeats %d leaves the determinism oracle with "
                 "<2 samples per job; only invariant and equivalence checks "
                 "will run (use --repeats 2 or --no-oracle)\n",
                 o.runner.repeats);
  }
  return o;
}

// The driver's base SystemConfig: defaults plus everything the shared
// flags configure (event tracing, fault injection, reference paths).
// Drivers derive their per-table config variations from this instead of
// a bare `SystemConfig cfg;`.
[[nodiscard]] inline sim::SystemConfig BaseConfig(const BenchOptions& o) {
  sim::SystemConfig cfg;
  cfg.trace.enabled = !o.trace_path.empty();
  cfg.reference_path = o.reference;
  cfg.faults = o.faults;
  return cfg;
}

[[nodiscard]] inline bool KeepWorkload(const BenchOptions& o,
                                       const std::string& name) {
  if (o.filter.empty()) return true;
  auto lower = [](std::string s) {
    for (char& c : s) c = static_cast<char>(std::tolower(c));
    return s;
  };
  return lower(name).find(lower(o.filter)) != std::string::npos;
}

// Oracle summary + JSON emission + exit code for a runner-based driver.
// Call after rendering the tables; returns the process exit code.
inline int FinishBench(sim::BatchRunner& runner, const BenchOptions& o,
                       const char* bench_name) {
  const sim::BatchReport report = runner.Finish();
  std::printf(
      "\n[%s] %llu distinct jobs (%llu runs, %llu memoized submissions) "
      "in %.0f ms with %d worker(s)\n",
      bench_name, static_cast<unsigned long long>(report.distinct_jobs),
      static_cast<unsigned long long>(report.executed_runs),
      static_cast<unsigned long long>(report.memo_hits), report.wall_ms,
      runner.options().jobs);
  if (runner.options().oracle) {
    if (report.ok()) {
      std::printf("[%s] oracle: all equivalence/determinism/invariant "
                  "checks passed\n",
                  bench_name);
    } else {
      std::fputs(sim::oracle::FormatViolations(report.violations).c_str(),
                 stderr);
      std::fprintf(stderr, "[%s] oracle: %zu violation(s)\n", bench_name,
                   report.violations.size());
    }
  }
  if (!o.json_path.empty()) {
    if (sim::WriteBenchJson(o.json_path, bench_name, runner, report)) {
      std::printf("[%s] wrote %s\n", bench_name, o.json_path.c_str());
    } else {
      std::fprintf(stderr, "[%s] could not write %s\n", bench_name,
                   o.json_path.c_str());
      return 1;
    }
  }
  if (!o.trace_path.empty()) {
    // One Chrome process per traced job; DSA jobs additionally get the
    // per-loop text profile on stdout.
    std::vector<trace::ChromeProcess> procs;
    for (const auto& [key, out] : runner.outcomes()) {
      if (out.runs.empty() || out.result().trace == nullptr) continue;
      procs.push_back(trace::ChromeProcess{key, out.result().trace.get()});
      if (out.result().dsa.has_value()) {
        std::fputs(sim::FormatTraceProfile(out.result()).c_str(), stdout);
      }
    }
    if (procs.empty()) {
      std::fprintf(stderr, "[%s] --trace given but no job produced a trace\n",
                   bench_name);
      return 1;
    }
    if (trace::WriteChromeTrace(o.trace_path, procs)) {
      std::printf("[%s] wrote %s (%zu traced job(s); open in "
                  "chrome://tracing or ui.perfetto.dev)\n",
                  bench_name, o.trace_path.c_str(), procs.size());
    } else {
      std::fprintf(stderr, "[%s] could not write %s\n", bench_name,
                   o.trace_path.c_str());
      return 1;
    }
  }
  return report.ok() ? 0 : 1;
}

// Prints the Table 4 "Systems Setup" header so every bench is
// self-describing.
inline void PrintSetupHeader(const sim::SystemConfig& cfg = {}) {
  std::printf(
      "systems setup (Table 4): O3-style ARMv7 core, %u-wide, 1 GHz | "
      "L1 %u kB / L2 %u kB LRU | NEON 128-bit, 16 Q regs | DSA cache %u kB, "
      "VC %u kB, %u array maps\n\n",
      cfg.timing.superscalar_width, cfg.memory.l1.size_bytes / 1024,
      cfg.memory.l2.size_bytes / 1024, cfg.dsa.dsa_cache_bytes / 1024,
      cfg.dsa.verification_cache_bytes / 1024, cfg.dsa.array_maps);
}

// Performance improvement (%) over a baseline, the paper's reporting unit:
// +31 means 31% faster (speedup 1.31).
inline double ImprovementPct(const sim::RunResult& base,
                             const sim::RunResult& x) {
  return (sim::SpeedupOver(base, x) - 1.0) * 100.0;
}

// Energy savings (%) over a baseline.
inline double EnergySavingsPct(const sim::RunResult& base,
                               const sim::RunResult& x) {
  if (base.energy.total() <= 0) return 0;
  return (1.0 - x.energy.total() / base.energy.total()) * 100.0;
}

inline double GeoMeanSpeedup(const std::vector<double>& speedups) {
  double log_sum = 0;
  for (const double s : speedups) log_sum += std::log(s);
  return std::exp(log_sum / static_cast<double>(speedups.size()));
}

}  // namespace dsa::bench
