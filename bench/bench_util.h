// Shared reporting helpers for the benchmark harness: each bench binary
// regenerates one table or figure of the paper and prints the measured
// series next to the paper's reported values where applicable.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/system.h"

namespace dsa::bench {

// Prints the Table 4 "Systems Setup" header so every bench is
// self-describing.
inline void PrintSetupHeader(const sim::SystemConfig& cfg = {}) {
  std::printf(
      "systems setup (Table 4): O3-style ARMv7 core, %u-wide, 1 GHz | "
      "L1 %u kB / L2 %u kB LRU | NEON 128-bit, 16 Q regs | DSA cache %u kB, "
      "VC %u kB, %u array maps\n\n",
      cfg.timing.superscalar_width, cfg.memory.l1.size_bytes / 1024,
      cfg.memory.l2.size_bytes / 1024, cfg.dsa.dsa_cache_bytes / 1024,
      cfg.dsa.verification_cache_bytes / 1024, cfg.dsa.array_maps);
}

// Performance improvement (%) over a baseline, the paper's reporting unit:
// +31 means 31% faster (speedup 1.31).
inline double ImprovementPct(const sim::RunResult& base,
                             const sim::RunResult& x) {
  return (sim::SpeedupOver(base, x) - 1.0) * 100.0;
}

// Energy savings (%) over a baseline.
inline double EnergySavingsPct(const sim::RunResult& base,
                               const sim::RunResult& x) {
  if (base.energy.total() <= 0) return 0;
  return (1.0 - x.energy.total() / base.energy.total()) * 100.0;
}

inline double GeoMeanSpeedup(const std::vector<double>& speedups) {
  double log_sum = 0;
  for (const double s : speedups) log_sum += std::log(s);
  return std::exp(log_sum / static_cast<double>(speedups.size()));
}

}  // namespace dsa::bench
