// dsa_serve — the crash-tolerant simulation daemon (docs/SERVING.md).
// Binds a Unix-domain socket, answers sweep requests from the persistent
// result cache, simulates misses on a respawning worker pool with fork
// isolation and a per-workload circuit breaker, and drains gracefully on
// SIGINT/SIGTERM (exit 3). All flag values are parsed strictly: a typo
// is a usage error (exit 2), never a silent default.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "serve/daemon.h"
#include "serve/flags.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: dsa_serve --socket PATH [options]\n"
               "  --socket PATH            Unix-domain socket to serve on "
               "(required)\n"
               "  --cache DIR              persistent result cache directory\n"
               "  --workers N              simulation worker threads "
               "(default 2)\n"
               "  --queue N                admission: max queued+in-flight "
               "requests (default 8)\n"
               "  --client-quota N         admission: max in-flight per "
               "client (default 4)\n"
               "  --default-deadline-ms N  deadline for requests without "
               "one (default none)\n"
               "  --isolate                fork isolation per cell\n"
               "  --cell-deadline-ms N     per-cell wall-clock deadline "
               "(needs --isolate)\n"
               "  --mem-limit-mb N         per-cell address-space cap "
               "(needs --isolate)\n"
               "  --breaker N              circuit breaker: open after N "
               "consecutive failures\n"
               "  --probe-after N          half-open probe after N skips "
               "(default 2)\n"
               "  --repeats K              executions per simulated cell "
               "(default 1)\n"
               "  --io-faults SPEC         inject host-I/O faults, e.g. "
               "\"fsync-fail@0+;seed=7\" (docs/FAULTS.md)\n"
               "  --read-deadline-ms N     per-read deadline on client "
               "connections (default 5000; 0 = none)\n"
               "  --no-scrub               skip the boot-time cache "
               "integrity scrub\n"
               "  --kill-after N           crash drill: SIGKILL self after "
               "N executed cells\n"
               "  --crash-cell SUBSTR      crash drill: abort cells whose "
               "JobKey contains SUBSTR (needs --isolate)\n");
}

}  // namespace

int main(int argc, char** argv) {
  dsa::serve::DaemonOptions opts;
  const auto value = [&](int& i, const std::string& flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", flag.c_str());
      Usage();
      std::exit(2);
    }
    return argv[++i];
  };
  const auto u64_value = [&](int& i, const std::string& flag) {
    std::uint64_t v = 0;
    std::string err;
    if (!dsa::serve::ParseU64Text(value(i, flag), v, &err)) {
      std::fprintf(stderr, "%s %s\n", flag.c_str(), err.c_str());
      std::exit(2);
    }
    return v;
  };
  const auto count_value = [&](int& i, const std::string& flag) {
    long v = 0;
    std::string err;
    if (!dsa::serve::ParseCountText(value(i, flag), v, &err)) {
      std::fprintf(stderr, "%s %s\n", flag.c_str(), err.c_str());
      std::exit(2);
    }
    if (v < 1) {
      std::fprintf(stderr, "%s expects a positive count, got %ld\n",
                   flag.c_str(), v);
      std::exit(2);
    }
    return static_cast<int>(v);
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket") {
      opts.socket_path = value(i, arg);
    } else if (arg == "--cache") {
      opts.cache_dir = value(i, arg);
    } else if (arg == "--workers") {
      opts.workers = count_value(i, arg);
    } else if (arg == "--queue") {
      opts.queue_limit = count_value(i, arg);
    } else if (arg == "--client-quota") {
      opts.client_quota = count_value(i, arg);
    } else if (arg == "--default-deadline-ms") {
      opts.default_deadline_ms = u64_value(i, arg);
    } else if (arg == "--isolate") {
      opts.isolate = true;
    } else if (arg == "--cell-deadline-ms") {
      opts.cell_deadline_ms = u64_value(i, arg);
    } else if (arg == "--mem-limit-mb") {
      opts.mem_limit_mb = u64_value(i, arg);
    } else if (arg == "--breaker") {
      opts.breaker_threshold = count_value(i, arg);
    } else if (arg == "--probe-after") {
      opts.breaker_probe_after = count_value(i, arg);
    } else if (arg == "--repeats") {
      opts.repeats = count_value(i, arg);
    } else if (arg == "--io-faults") {
      opts.io_fault_plan = value(i, arg);
    } else if (arg == "--read-deadline-ms") {
      opts.read_deadline_ms = u64_value(i, arg);
    } else if (arg == "--no-scrub") {
      opts.scrub = false;
    } else if (arg == "--kill-after") {
      opts.kill_after = u64_value(i, arg);
    } else if (arg == "--crash-cell") {
      opts.crash_cell = value(i, arg);
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      Usage();
      return 2;
    }
  }
  if (opts.socket_path.empty()) {
    Usage();
    return 2;
  }

  dsa::serve::Daemon daemon(std::move(opts));
  std::string error;
  if (!daemon.Init(&error)) {
    std::fprintf(stderr, "[dsa_serve] %s\n", error.c_str());
    return 1;
  }
  return daemon.Serve();
}
