// Ablation benches for the design choices DESIGN.md calls out:
//   1. CIDP on/off (prediction vs. exact-match-only dependency check)
//   2. partial vectorization on/off (ShiftAdd)
//   3. inner/outer loop fusion on/off (MM, Gaussian)
//   4. DSA cache size sweep (capacity pressure with many distinct loops)
//   5. stream prefetcher on/off (memory-bound ceiling)
#include <cstdio>

#include "bench/bench_util.h"
#include "workloads/workloads.h"

namespace {

using dsa::sim::RunMode;
using dsa::sim::RunResult;
using dsa::sim::SystemConfig;
using dsa::sim::Workload;

void Compare(const char* title, const Workload& wl, const SystemConfig& a,
             const char* name_a, const SystemConfig& b, const char* name_b) {
  const RunResult ra = Run(wl, RunMode::kDsa, a);
  const RunResult rb = Run(wl, RunMode::kDsa, b);
  std::printf("%-38s %-10s: %10llu cycles | %-10s: %10llu cycles (%+.1f%%)\n",
              title, name_a, static_cast<unsigned long long>(ra.cycles),
              name_b, static_cast<unsigned long long>(rb.cycles),
              100.0 * (static_cast<double>(rb.cycles) / ra.cycles - 1.0));
}

}  // namespace

int main() {
  dsa::bench::PrintSetupHeader();

  SystemConfig base;

  {
    SystemConfig no_cidp = base;
    no_cidp.dsa.enable_cidp = false;
    Compare("CIDP off (VecAdd, no dependency)", dsa::workloads::MakeVecAdd(),
            base, "cidp", no_cidp, "no-cidp");
    // On ShiftAdd the prediction is what *finds* the distance-8 dependency:
    // without it the exact-match check sees no conflict in iterations 2-3
    // and would vectorize the whole loop — fast but unsafe on real
    // hardware. The simulator stays functionally correct (scalar covered
    // execution), so this row quantifies how much performance the unsafe
    // full vectorization would claim vs. the safe partial one.
    Compare("CIDP off (ShiftAdd, hidden dependency)",
            dsa::workloads::MakeShiftAdd(), base, "cidp(safe)", no_cidp,
            "no-cidp(!)");
  }
  {
    SystemConfig no_partial = base;
    no_partial.dsa.enable_partial_vectorization = false;
    Compare("partial vectorization off (ShiftAdd)",
            dsa::workloads::MakeShiftAdd(), base, "partial", no_partial,
            "scalar");
  }
  {
    SystemConfig no_fusion = base;
    no_fusion.dsa.enable_loop_fusion = false;
    Compare("loop fusion off (MM 64x64)", dsa::workloads::MakeMatMul(), base,
            "fused", no_fusion, "per-entry");
    Compare("loop fusion off (Gaussian)", dsa::workloads::MakeGaussian(),
            base, "fused", no_fusion, "per-entry");
  }
  {
    std::printf("\nDSA cache size sweep (MM 64x64):\n");
    for (const std::uint32_t bytes : {64u, 256u, 8192u}) {
      SystemConfig cfg = base;
      cfg.dsa.dsa_cache_bytes = bytes;
      const RunResult r = Run(dsa::workloads::MakeMatMul(), RunMode::kDsa,
                              cfg);
      std::printf("  %5u B (%3u entries): %10llu cycles, %llu cache-hit "
                  "takeovers\n",
                  bytes, cfg.dsa.dsa_cache_entries(),
                  static_cast<unsigned long long>(r.cycles),
                  static_cast<unsigned long long>(
                      r.dsa->cache_hit_takeovers));
    }
  }
  {
    std::printf("\nleftover handling (RGB-Gray with a non-multiple size):\n");
    // 8191 elements: 1023 full i16 chunks + 7 leftovers per entry.
    const Workload wl = dsa::workloads::MakeRgbGray(8191);
    const RunResult scalar = Run(wl, RunMode::kScalar, base);
    const RunResult ds = Run(wl, RunMode::kDsa, base);
    std::printf("  scalar %llu cycles, DSA %llu cycles (x%.2f), outputs %s\n",
                static_cast<unsigned long long>(scalar.cycles),
                static_cast<unsigned long long>(ds.cycles),
                SpeedupOver(scalar, ds), ds.output_ok ? "OK" : "MISMATCH");
  }
  {
    SystemConfig no_pf = base;
    no_pf.memory.next_line_prefetch = false;
    std::printf("\nstream prefetch off (RGB-Gray):\n");
    const Workload wl = dsa::workloads::MakeRgbGray();
    for (const auto& [name, cfg] :
         std::initializer_list<std::pair<const char*, SystemConfig>>{
             {"prefetch", base}, {"no-prefetch", no_pf}}) {
      const RunResult s = Run(wl, RunMode::kScalar, cfg);
      const RunResult d = Run(wl, RunMode::kDsa, cfg);
      std::printf("  %-12s scalar %10llu | DSA %10llu (x%.2f)\n", name,
                  static_cast<unsigned long long>(s.cycles),
                  static_cast<unsigned long long>(d.cycles),
                  SpeedupOver(s, d));
    }
  }
  return 0;
}
