// Ablation benches for the design choices DESIGN.md calls out:
//   1. CIDP on/off (prediction vs. exact-match-only dependency check)
//   2. partial vectorization on/off (ShiftAdd)
//   3. inner/outer loop fusion on/off (MM, Gaussian)
//   4. DSA cache size sweep (capacity pressure with many distinct loops)
//   5. stream prefetcher on/off (memory-bound ceiling)
//
// Every ablation varies the SystemConfig, so each cell carries a config
// tag — the runner memoizes by {workload, mode, config_tag} and would
// otherwise merge distinct configurations.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "workloads/workloads.h"

namespace {

using dsa::sim::BatchRunner;
using dsa::sim::RunMode;
using dsa::sim::RunResult;
using dsa::sim::SystemConfig;
using dsa::sim::Workload;

struct ComparePair {
  const char* title;
  const char* name_a;
  const char* name_b;
  std::string key_a;
  std::string key_b;
};

ComparePair SubmitCompare(BatchRunner& runner, const char* title,
                          const Workload& wl, const SystemConfig& a,
                          const char* name_a, const SystemConfig& b,
                          const char* name_b) {
  ComparePair p{title, name_a, name_b, {}, {}};
  p.key_a = runner.Submit(wl, RunMode::kDsa, a, name_a);
  p.key_b = runner.Submit(wl, RunMode::kDsa, b, name_b);
  return p;
}

void PrintCompare(BatchRunner& runner, const ComparePair& p) {
  const RunResult& ra = dsa::bench::ResultOrEmpty(runner, p.key_a);
  const RunResult& rb = dsa::bench::ResultOrEmpty(runner, p.key_b);
  std::printf("%-38s %-10s: %10llu cycles | %-10s: %10llu cycles (%+.1f%%)\n",
              p.title, p.name_a, static_cast<unsigned long long>(ra.cycles),
              p.name_b, static_cast<unsigned long long>(rb.cycles),
              100.0 * (static_cast<double>(rb.cycles) / ra.cycles - 1.0));
}

}  // namespace

int main(int argc, char** argv) {
  const dsa::bench::BenchOptions opts = dsa::bench::ParseBenchArgs(argc, argv);
  dsa::bench::PrintSetupHeader();

  SystemConfig base = dsa::bench::BaseConfig(opts);
  BatchRunner runner(opts.runner);
  std::vector<ComparePair> pairs;

  {
    SystemConfig no_cidp = base;
    no_cidp.dsa.enable_cidp = false;
    pairs.push_back(SubmitCompare(runner, "CIDP off (VecAdd, no dependency)",
                                  dsa::workloads::MakeVecAdd(), base, "cidp",
                                  no_cidp, "no-cidp"));
    // On ShiftAdd the prediction is what *finds* the distance-8 dependency:
    // without it the exact-match check sees no conflict in iterations 2-3
    // and would vectorize the whole loop — fast but unsafe on real
    // hardware. The simulator stays functionally correct (scalar covered
    // execution), so this row quantifies how much performance the unsafe
    // full vectorization would claim vs. the safe partial one.
    pairs.push_back(SubmitCompare(
        runner, "CIDP off (ShiftAdd, hidden dependency)",
        dsa::workloads::MakeShiftAdd(), base, "cidp(safe)", no_cidp,
        "no-cidp(!)"));
  }
  {
    SystemConfig no_partial = base;
    no_partial.dsa.enable_partial_vectorization = false;
    pairs.push_back(SubmitCompare(runner,
                                  "partial vectorization off (ShiftAdd)",
                                  dsa::workloads::MakeShiftAdd(), base,
                                  "partial", no_partial, "scalar"));
  }
  {
    SystemConfig no_fusion = base;
    no_fusion.dsa.enable_loop_fusion = false;
    pairs.push_back(SubmitCompare(runner, "loop fusion off (MM 64x64)",
                                  dsa::workloads::MakeMatMul(), base, "fused",
                                  no_fusion, "per-entry"));
    pairs.push_back(SubmitCompare(runner, "loop fusion off (Gaussian)",
                                  dsa::workloads::MakeGaussian(), base,
                                  "fused", no_fusion, "per-entry"));
  }

  struct SweepCell {
    std::uint32_t bytes;
    std::uint32_t entries;
    std::string key;
  };
  std::vector<SweepCell> sweep;
  for (const std::uint32_t bytes : {64u, 256u, 8192u}) {
    SystemConfig cfg = base;
    cfg.dsa.dsa_cache_bytes = bytes;
    sweep.push_back(SweepCell{
        bytes, cfg.dsa.dsa_cache_entries(),
        runner.Submit(dsa::workloads::MakeMatMul(), RunMode::kDsa, cfg,
                      "cache" + std::to_string(bytes))});
  }

  // 8191 elements: 1023 full i16 chunks + 7 leftovers per entry. The
  // non-default size gets a workload tag so it cannot be memo-merged with
  // the default RGB-Gray cells.
  const Workload rgb_odd = dsa::workloads::MakeRgbGray(8191);
  const std::string odd_scalar =
      runner.Submit(rgb_odd, RunMode::kScalar, base, "", "n8191");
  const std::string odd_dsa =
      runner.Submit(rgb_odd, RunMode::kDsa, base, "", "n8191");

  SystemConfig no_pf = base;
  no_pf.memory.next_line_prefetch = false;
  struct PfCell {
    const char* name;
    std::string scalar_key;
    std::string dsa_key;
  };
  std::vector<PfCell> pf_cells;
  {
    const Workload wl = dsa::workloads::MakeRgbGray();
    for (const auto& [name, cfg] :
         std::initializer_list<std::pair<const char*, SystemConfig>>{
             {"prefetch", base}, {"no-prefetch", no_pf}}) {
      pf_cells.push_back(PfCell{
          name, runner.Submit(wl, RunMode::kScalar, cfg, name),
          runner.Submit(wl, RunMode::kDsa, cfg, name)});
    }
  }

  for (const ComparePair& p : pairs) PrintCompare(runner, p);

  std::printf("\nDSA cache size sweep (MM 64x64):\n");
  for (const SweepCell& cell : sweep) {
    const RunResult& r = dsa::bench::ResultOrEmpty(runner, cell.key);
    std::printf("  %5u B (%3u entries): %10llu cycles, %llu cache-hit "
                "takeovers\n",
                cell.bytes, cell.entries,
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.dsa->cache_hit_takeovers));
  }

  std::printf("\nleftover handling (RGB-Gray with a non-multiple size):\n");
  {
    const RunResult& scalar = dsa::bench::ResultOrEmpty(runner, odd_scalar);
    const RunResult& ds = dsa::bench::ResultOrEmpty(runner, odd_dsa);
    std::printf("  scalar %llu cycles, DSA %llu cycles (x%.2f), outputs %s\n",
                static_cast<unsigned long long>(scalar.cycles),
                static_cast<unsigned long long>(ds.cycles),
                SpeedupOver(scalar, ds), ds.output_ok ? "OK" : "MISMATCH");
  }

  std::printf("\nstream prefetch off (RGB-Gray):\n");
  for (const PfCell& cell : pf_cells) {
    const RunResult& s = dsa::bench::ResultOrEmpty(runner, cell.scalar_key);
    const RunResult& d = dsa::bench::ResultOrEmpty(runner, cell.dsa_key);
    std::printf("  %-12s scalar %10llu | DSA %10llu (x%.2f)\n", cell.name,
                static_cast<unsigned long long>(s.cycles),
                static_cast<unsigned long long>(d.cycles), SpeedupOver(s, d));
  }
  return dsa::bench::FinishBench(runner, opts, "ablations");
}
