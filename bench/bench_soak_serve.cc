// bench_soak_serve — the kill-and-chaos drill for the dsa_serve daemon
// (docs/SERVING.md): proves that a daemon which is being SIGKILLed,
// fed hostile protocol streams and injected with host-I/O faults still
// never serves a corrupt result. One invocation
//
//   1. computes the reference truth in-process: the daemon's own sweep
//      space (serve::SweepJobs) through the BatchRunner, written as a
//      bench JSON (validate_serve.py --ref consumes the same file);
//   2. runs several chaos rounds, each spawning a real daemon process
//      (this binary, --worker-daemon) with a rotated io-fault plan,
//      firing a seeded dsa_chaos_client at it concurrently with a real
//      sweep, then killing it — alternating a self-inflicted SIGKILL
//      mid-sweep (--kill-after) with an orchestrator kill -9 — and
//      corrupting a seeded cache entry between rounds so the boot scrub
//      has real work;
//   3. runs a final clean round (no faults, no kill): the sweep must
//      complete with every cell ok, the health census must report the
//      hostile traffic, and the daemon must drain on SIGTERM (exit 3);
//   4. gates on bit-identity: every ok cell served in ANY round must
//      match the reference's cycles + output_digest exactly, and the
//      daemon process must not leak fds across the chaos barrage.
//
// Usage: bench_soak_serve [--filter SUBSTR] [--seed N] [--rounds N]
//                         [--jobs N] [--dir PATH] [--keep]
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "resilience/mini_json.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/flags.h"
#include "sim/runner.h"

namespace {

using dsa::resilience::JsonValue;

struct SoakArgs {
  bool worker_daemon = false;
  std::string filter = "BitCount";
  std::uint64_t seed = 7;
  std::uint64_t rounds = 3;
  int jobs = 2;
  std::string dir = "bench_soak_serve.tmp";
  bool keep = false;
  // Worker-daemon passthrough:
  std::string socket_path;
  std::string cache_dir;
  std::string io_faults;
  std::uint64_t kill_after = 0;
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--filter SUBSTR] [--seed N] [--rounds N] "
               "[--jobs N] [--dir PATH] [--keep]\n",
               argv0);
  std::exit(2);
}

SoakArgs ParseArgs(int argc, char** argv) {
  SoakArgs a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    auto u64 = [&](const std::string& flag) {
      std::uint64_t v = 0;
      std::string err;
      if (!dsa::serve::ParseU64Text(value(), v, &err)) {
        std::fprintf(stderr, "%s %s\n", flag.c_str(), err.c_str());
        std::exit(2);
      }
      return v;
    };
    if (arg == "--worker-daemon") {
      a.worker_daemon = true;
    } else if (arg == "--filter") {
      a.filter = value();
    } else if (arg == "--seed") {
      a.seed = u64(arg);
    } else if (arg == "--rounds") {
      a.rounds = u64(arg);
    } else if (arg == "--jobs") {
      a.jobs = static_cast<int>(u64(arg));
    } else if (arg == "--dir") {
      a.dir = value();
    } else if (arg == "--keep") {
      a.keep = true;
    } else if (arg == "--socket") {
      a.socket_path = value();
    } else if (arg == "--cache") {
      a.cache_dir = value();
    } else if (arg == "--io-faults") {
      a.io_faults = value();
    } else if (arg == "--kill-after") {
      a.kill_after = u64(arg);
    } else {
      Usage(argv[0]);
    }
  }
  return a;
}

// ---------------------------------------------------------------------------
// Worker-daemon mode: a real Daemon in a real process, so kill -9 and
// --kill-after land exactly like they would in production.

int WorkerDaemonMain(const SoakArgs& a) {
  dsa::serve::DaemonOptions opts;
  opts.socket_path = a.socket_path;
  opts.cache_dir = a.cache_dir;
  opts.workers = 2;
  opts.queue_limit = 16;
  opts.client_quota = 8;
  opts.io_fault_plan = a.io_faults;
  opts.read_deadline_ms = 1000;  // slow-loris is cut off fast in the drill
  opts.kill_after = a.kill_after;
  dsa::serve::Daemon daemon(std::move(opts));
  std::string error;
  if (!daemon.Init(&error)) {
    std::fprintf(stderr, "[soak_serve worker] %s\n", error.c_str());
    return 1;
  }
  return daemon.Serve();
}

// ---------------------------------------------------------------------------
// Orchestrator helpers.

std::string SelfPath(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0;
}

pid_t Spawn(const std::string& exe, const std::vector<std::string>& extra) {
  std::vector<std::string> args = {exe};
  args.insert(args.end(), extra.begin(), extra.end());
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& s : args) argv.push_back(s.data());
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    return -1;
  }
  if (pid == 0) {
    ::execv(exe.c_str(), argv.data());
    std::perror("execv");
    ::_exit(127);
  }
  return pid;
}

struct WorkerExit {
  bool signalled = false;
  int signal = 0;
  int code = -1;
};

WorkerExit WaitExit(pid_t pid) {
  WorkerExit we;
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (WIFSIGNALED(status)) {
    we.signalled = true;
    we.signal = WTERMSIG(status);
  } else if (WIFEXITED(status)) {
    we.code = WEXITSTATUS(status);
  }
  return we;
}

bool WaitForDaemon(const std::string& socket_path) {
  dsa::serve::ClientOptions po;
  po.socket_path = socket_path;
  po.client_name = "soak-orchestrator";
  po.ping = true;
  po.quiet = true;
  po.recv_timeout_ms = 5000;
  for (int i = 0; i < 250; ++i) {
    if (dsa::serve::Submit(po) == 0) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

// Open fds of a live process — the leak gate. -1 when unreadable.
int CountFds(pid_t pid) {
  const std::string path = "/proc/" + std::to_string(pid) + "/fd";
  DIR* d = ::opendir(path.c_str());
  if (d == nullptr) return -1;
  int n = 0;
  while (const dirent* e = ::readdir(d)) {
    if (e->d_name[0] != '.') ++n;
  }
  ::closedir(d);
  return n;
}

bool LoadJson(const std::string& path, JsonValue& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string err;
  if (!ParseJson(ss.str(), out, &err)) {
    std::fprintf(stderr, "soak_serve: %s: %s\n", path.c_str(), err.c_str());
    return false;
  }
  return true;
}

std::string Field(const JsonValue& obj, std::string_view name) {
  const JsonValue* v = obj.Find(name);
  return v != nullptr ? v->AsString() : std::string();
}

struct RefCell {
  std::uint64_t cycles = 0;
  std::string digest;
};

// The truth table: job key -> {cycles, output_digest} from the in-process
// reference sweep's bench JSON.
bool LoadReference(const std::string& path,
                   std::map<std::string, RefCell>& out) {
  JsonValue report;
  if (!LoadJson(path, report)) return false;
  const JsonValue* results = report.Find("results");
  if (results == nullptr || !results->is_array()) return false;
  for (const JsonValue& cell : results->array) {
    if (!cell.is_object() || Field(cell, "cell_status") != "ok") continue;
    RefCell rc;
    const JsonValue* cycles = cell.Find("cycles");
    if (cycles != nullptr) rc.cycles = cycles->AsU64();
    rc.digest = Field(cell, "output_digest");
    out[Field(cell, "job")] = rc;
  }
  return !out.empty();
}

// The headline gate: every ok cell the daemon served this round must be
// bit-identical (cycles + output digest) to the reference truth. A
// failed/refused cell is fine — a *wrong* cell never is.
bool CellsMatchReference(const std::string& round_json,
                         const std::map<std::string, RefCell>& ref,
                         std::uint64_t& checked) {
  JsonValue resp;
  if (!LoadJson(round_json, resp)) return true;  // no response captured
  const JsonValue* cells = resp.Find("cells");
  if (cells == nullptr || !cells->is_array()) return true;
  for (const JsonValue& cell : cells->array) {
    if (!cell.is_object() || Field(cell, "cell_status") != "ok") continue;
    const std::string job = Field(cell, "job");
    const auto it = ref.find(job);
    if (it == ref.end()) {
      std::fprintf(stderr,
                   "soak_serve: served cell \"%s\" has no reference truth\n",
                   job.c_str());
      return false;
    }
    const JsonValue* cycles = cell.Find("cycles");
    const std::string digest = Field(cell, "output_digest");
    if (cycles == nullptr || cycles->AsU64() != it->second.cycles ||
        digest != it->second.digest) {
      std::fprintf(stderr,
                   "soak_serve: CORRUPT RESULT served for \"%s\": got "
                   "cycles=%" PRIu64 " digest=%s, want cycles=%" PRIu64
                   " digest=%s\n",
                   job.c_str(), cycles != nullptr ? cycles->AsU64() : 0,
                   digest.c_str(), it->second.cycles,
                   it->second.digest.c_str());
      return false;
    }
    ++checked;
  }
  return true;
}

// Flip one byte in the middle of a seeded cache entry, so the next boot
// scrub has a real torn entry to quarantine.
void CorruptOneEntry(const std::string& cache_dir, std::uint64_t seed) {
  std::vector<std::string> entries;
  if (DIR* d = ::opendir(cache_dir.c_str())) {
    while (const dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name.size() > 5 && name.compare(name.size() - 5, 5, ".cell") == 0)
        entries.push_back(name);
    }
    ::closedir(d);
  }
  if (entries.empty()) return;
  std::sort(entries.begin(), entries.end());
  const std::string path =
      cache_dir + "/" + entries[seed % entries.size()];
  struct stat st = {};
  if (::stat(path.c_str(), &st) != 0 || st.st_size < 2) return;
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) return;
  const off_t off = st.st_size / 2;
  char b = 0;
  if (::pread(fd, &b, 1, off) == 1) {
    b = static_cast<char>(b ^ 0x5A);
    (void)::pwrite(fd, &b, 1, off);
  }
  ::close(fd);
  std::printf("soak_serve: corrupted one byte of %s for the boot scrub\n",
              path.c_str());
}

// In-process reference truth over exactly the cells the daemon serves.
bool WriteReference(const SoakArgs& a, const std::string& ref_json) {
  const std::vector<dsa::sim::BatchJob> jobs =
      dsa::serve::SweepJobs(a.filter);
  if (jobs.empty()) {
    std::fprintf(stderr, "soak_serve: filter \"%s\" matches no cells\n",
                 a.filter.c_str());
    return false;
  }
  dsa::sim::RunnerOptions ro;
  ro.jobs = a.jobs;
  ro.repeats = 2;
  dsa::sim::BatchRunner runner(ro);
  for (const dsa::sim::BatchJob& job : jobs) runner.Submit(job);
  const dsa::sim::BatchReport report = runner.Finish();
  if (!report.ok()) {
    std::fprintf(stderr, "soak_serve: reference sweep failed the oracle\n");
    return false;
  }
  if (!dsa::sim::WriteBenchJson(ref_json, "soak_serve_ref", runner, report,
                                nullptr)) {
    std::fprintf(stderr, "soak_serve: could not write %s\n",
                 ref_json.c_str());
    return false;
  }
  std::printf("soak_serve: reference truth: %zu cell(s) -> %s\n",
              jobs.size(), ref_json.c_str());
  return true;
}

// The io-fault plans the chaos rounds rotate through: finite counts, so
// the daemon degrades typed and then recovers within the same round.
std::string PlanForRound(std::uint64_t round, std::uint64_t seed) {
  static const char* const kPlans[] = {
      "fsync-fail@0+2",
      "enospc@1+2",
      "short-write@0+4",
      "rename-fail@0+1,eio@2+1",
  };
  const std::string base = kPlans[round % 4];
  return base + ";seed=" + std::to_string(seed + round);
}

int OrchestratorMain(const SoakArgs& a, const char* argv0) {
  const std::string self = SelfPath(argv0);
  // dsa_chaos_client is built next to this binary (bench/).
  std::string chaos = self;
  const std::size_t slash = chaos.rfind('/');
  chaos = (slash == std::string::npos ? std::string(".")
                                      : chaos.substr(0, slash)) +
          "/dsa_chaos_client";
  const std::string dir = a.dir;
  std::string cmd = "mkdir -p '" + dir + "'";
  if (std::system(cmd.c_str()) != 0) {
    std::fprintf(stderr, "soak_serve: cannot create %s\n", dir.c_str());
    return 1;
  }
  const std::string cache_dir = dir + "/cache";
  const std::string ref_json = dir + "/reference.json";
  const std::string socket_path = dir + "/soak.sock";

  if (!WriteReference(a, ref_json)) return 1;
  std::map<std::string, RefCell> ref;
  if (!LoadReference(ref_json, ref)) {
    std::fprintf(stderr, "soak_serve: reference JSON is unusable\n");
    return 1;
  }

  std::uint64_t identical_cells = 0;
  for (std::uint64_t round = 0; round < a.rounds; ++round) {
    const bool suicide = (round % 2) == 0;  // alternate kill mechanisms
    const std::string plan = PlanForRound(round, a.seed);
    std::vector<std::string> daemon_args = {
        "--worker-daemon", "--socket", socket_path, "--cache", cache_dir,
        "--io-faults", plan};
    if (suicide) {
      // Die on the first executed (non-cached) cell: with a warm cache a
      // higher threshold might never be reached and the round would hang
      // waiting on a suicide that cannot happen.
      daemon_args.push_back("--kill-after");
      daemon_args.push_back("1");
    }
    std::printf("soak_serve: round %" PRIu64 "/%" PRIu64
                ": io-faults \"%s\", kill=%s\n",
                round + 1, a.rounds, plan.c_str(),
                suicide ? "self (--kill-after)" : "orchestrator SIGKILL");
    const pid_t daemon_pid = Spawn(self, daemon_args);
    if (daemon_pid < 0) return 1;
    if (!WaitForDaemon(socket_path)) {
      std::fprintf(stderr, "soak_serve: daemon never came up\n");
      (void)::kill(daemon_pid, SIGKILL);
      (void)WaitExit(daemon_pid);
      return 1;
    }
    const int fds_before = CountFds(daemon_pid);

    // Hostile traffic concurrent with a real sweep.
    const pid_t chaos_pid =
        Spawn(chaos, {"--socket", socket_path, "--seed",
                      std::to_string(a.seed * 1000 + round), "--rounds", "6",
                      "--slow-ms", "20"});
    dsa::serve::ClientOptions so;
    so.socket_path = socket_path;
    so.client_name = "soak-sweep";
    so.filter = a.filter;
    so.quiet = true;
    so.retries = 4;
    so.recv_timeout_ms = 60000;
    so.json_path = dir + "/round_" + std::to_string(round) + ".json";
    const int sweep_rc = dsa::serve::Submit(so);
    // A suicide round may take the daemon down mid-exchange: transport
    // failure (5) and interrupted/failed cells (1) are expected there.
    // A non-kill phase must produce a well-formed verdict (0/1).
    if (!suicide && sweep_rc != 0 && sweep_rc != 1) {
      std::fprintf(stderr, "soak_serve: sweep exit %d in a live round\n",
                   sweep_rc);
      (void)::kill(daemon_pid, SIGKILL);
      (void)WaitExit(daemon_pid);
      (void)WaitExit(chaos_pid);
      return 1;
    }
    const WorkerExit chaos_exit = WaitExit(chaos_pid);
    // The chaos client's own gate only binds while the daemon is meant
    // to stay alive; suicide rounds legitimately strand it.
    if (!suicide && (chaos_exit.signalled || chaos_exit.code != 0)) {
      std::fprintf(stderr,
                   "soak_serve: chaos client found the daemon unresponsive "
                   "(exit %d)\n",
                   chaos_exit.code);
      (void)::kill(daemon_pid, SIGKILL);
      (void)WaitExit(daemon_pid);
      return 1;
    }
    if (!suicide) {
      // fd-leak gate: the hostile barrage must not grow the fd table.
      const int fds_after = CountFds(daemon_pid);
      if (fds_before > 0 && fds_after > fds_before + 8) {
        std::fprintf(stderr,
                     "soak_serve: fd leak: %d fds before chaos, %d after\n",
                     fds_before, fds_after);
        (void)::kill(daemon_pid, SIGKILL);
        (void)WaitExit(daemon_pid);
        return 1;
      }
    }
    // kill -9 either way: in a suicide round the daemon normally already
    // died by its own SIGKILL mid-sweep, but a fully-warm cache can make
    // the drill execute zero cells — the backstop keeps the round from
    // hanging, and the observed termination signal is SIGKILL in both
    // cases.
    (void)::kill(daemon_pid, SIGKILL);
    const WorkerExit de = WaitExit(daemon_pid);
    if (!de.signalled || de.signal != SIGKILL) {
      std::fprintf(stderr,
                   "soak_serve: daemon was supposed to die on SIGKILL, got "
                   "%s %d\n",
                   de.signalled ? "signal" : "exit",
                   de.signalled ? de.signal : de.code);
      return 1;
    }
    if (!CellsMatchReference(so.json_path, ref, identical_cells)) return 1;
    // Give the NEXT boot scrub something real to quarantine.
    CorruptOneEntry(cache_dir, a.seed + round);
  }

  // Final clean round: no faults, no kill — everything must work.
  std::printf("soak_serve: final clean round\n");
  const pid_t daemon_pid =
      Spawn(self, {"--worker-daemon", "--socket", socket_path, "--cache",
                   cache_dir});
  if (daemon_pid < 0) return 1;
  if (!WaitForDaemon(socket_path)) {
    std::fprintf(stderr, "soak_serve: final daemon never came up\n");
    (void)::kill(daemon_pid, SIGKILL);
    (void)WaitExit(daemon_pid);
    return 1;
  }
  dsa::serve::ClientOptions fo;
  fo.socket_path = socket_path;
  fo.client_name = "soak-final";
  fo.filter = a.filter;
  fo.quiet = true;
  fo.retries = 2;
  fo.recv_timeout_ms = 120000;
  fo.json_path = dir + "/final.json";
  const int final_rc = dsa::serve::Submit(fo);
  if (final_rc != 0) {
    std::fprintf(stderr, "soak_serve: final clean sweep exited %d\n",
                 final_rc);
    (void)::kill(daemon_pid, SIGKILL);
    (void)WaitExit(daemon_pid);
    return 1;
  }
  if (!CellsMatchReference(fo.json_path, ref, identical_cells)) {
    (void)::kill(daemon_pid, SIGKILL);
    (void)WaitExit(daemon_pid);
    return 1;
  }
  // Health census: the scrub must have quarantined the corruption the
  // rounds planted (the cache dir carried at least one flipped entry).
  dsa::serve::ClientOptions ho = fo;
  ho.filter.clear();
  ho.health = true;
  ho.json_path = dir + "/health.json";
  if (dsa::serve::Submit(ho) != 0) {
    std::fprintf(stderr, "soak_serve: health probe failed\n");
    (void)::kill(daemon_pid, SIGKILL);
    (void)WaitExit(daemon_pid);
    return 1;
  }
  JsonValue health_resp;
  bool scrub_worked = false;
  if (LoadJson(ho.json_path, health_resp)) {
    if (const JsonValue* h = health_resp.Find("health")) {
      if (const JsonValue* scrub = h->Find("scrub")) {
        const JsonValue* q = scrub->Find("quarantined");
        scrub_worked = a.rounds == 0 || (q != nullptr && q->AsU64() > 0);
      }
    }
  }
  if (!scrub_worked) {
    std::fprintf(stderr,
                 "soak_serve: boot scrub reported no quarantined entries "
                 "despite planted corruption\n");
    (void)::kill(daemon_pid, SIGKILL);
    (void)WaitExit(daemon_pid);
    return 1;
  }
  // Graceful drain: SIGTERM -> exit 3, the daemon's documented contract.
  (void)::kill(daemon_pid, SIGTERM);
  const WorkerExit fe = WaitExit(daemon_pid);
  if (fe.signalled || fe.code != 3) {
    std::fprintf(stderr,
                 "soak_serve: drained daemon was supposed to exit 3, got "
                 "%s %d\n",
                 fe.signalled ? "signal" : "exit",
                 fe.signalled ? fe.signal : fe.code);
    return 1;
  }

  std::printf("soak_serve PASSED: %" PRIu64 " chaos round(s) + clean "
              "round, %" PRIu64 " served cell(s) bit-identical to the "
              "reference, scrub quarantined planted corruption, drain "
              "exit 3\n",
              a.rounds, identical_cells);
  if (!a.keep) {
    cmd = "rm -rf '" + dir + "'";
    (void)std::system(cmd.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const SoakArgs a = ParseArgs(argc, argv);
  if (a.worker_daemon) return WorkerDaemonMain(a);
  return OrchestratorMain(a, argv[0]);
}
