// Article 1 (SBCCI), Fig. 12: performance of NEON auto-vectorization vs.
// the (original) DSA over the ARM original execution, on MM 64x64,
// RGB-Gray, Gaussian, Susan E, Q Sort and Dijkstra.
//
// Paper shape: DSA ~ +31% over original on average and +6% over AutoVec;
// AutoVec wins slightly on MM; AutoVec shows small *losses* on Dijkstra
// (-3%) and Q Sort (-1%).
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "workloads/workloads.h"

int main() {
  using dsa::sim::RunMode;
  dsa::sim::SystemConfig cfg;
  cfg.dsa = dsa::engine::DsaConfig::Original();
  dsa::bench::PrintSetupHeader(cfg);

  std::printf("Article 1 Fig. 12 — improvement over ARM original (%%)\n");
  std::printf("%-12s %12s %14s\n", "benchmark", "NEON AutoVec",
              "DSA (original)");
  std::vector<double> av_speedups;
  std::vector<double> dsa_speedups;
  for (const dsa::sim::Workload& wl : dsa::workloads::Article1Set()) {
    const auto base = Run(wl, RunMode::kScalar, cfg);
    const auto av = Run(wl, RunMode::kAutoVec, cfg);
    const auto ds = Run(wl, RunMode::kDsa, cfg);
    av_speedups.push_back(SpeedupOver(base, av));
    dsa_speedups.push_back(SpeedupOver(base, ds));
    std::printf("%-12s %+11.1f%% %+13.1f%%\n", wl.name.c_str(),
                dsa::bench::ImprovementPct(base, av),
                dsa::bench::ImprovementPct(base, ds));
  }
  const double av_g = dsa::bench::GeoMeanSpeedup(av_speedups);
  const double ds_g = dsa::bench::GeoMeanSpeedup(dsa_speedups);
  std::printf("%-12s %+11.1f%% %+13.1f%%\n", "geomean", (av_g - 1) * 100,
              (ds_g - 1) * 100);
  std::printf("\nDSA vs AutoVec: %+.1f%%   (paper: DSA +31%% over original, "
              "+6%% over AutoVec)\n",
              (ds_g / av_g - 1) * 100);
  return 0;
}
