// Article 1 (SBCCI), Fig. 12: performance of NEON auto-vectorization vs.
// the (original) DSA over the ARM original execution, on MM 64x64,
// RGB-Gray, Gaussian, Susan E, Q Sort and Dijkstra.
//
// Paper shape: DSA ~ +31% over original on average and +6% over AutoVec;
// AutoVec wins slightly on MM; AutoVec shows small *losses* on Dijkstra
// (-3%) and Q Sort (-1%).
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "workloads/workloads.h"

int main(int argc, char** argv) {
  using dsa::sim::RunMode;
  const dsa::bench::BenchOptions opts = dsa::bench::ParseBenchArgs(argc, argv);
  dsa::sim::SystemConfig cfg = dsa::bench::BaseConfig(opts);
  cfg.dsa = dsa::engine::DsaConfig::Original();
  dsa::bench::PrintSetupHeader(cfg);

  dsa::sim::BatchRunner runner(opts.runner);
  struct Row {
    std::string name;
    std::string base, av, ds;
  };
  std::vector<Row> rows;
  for (const dsa::sim::Workload& wl : dsa::workloads::Article1Set()) {
    if (!dsa::bench::KeepWorkload(opts, wl.name)) continue;
    Row row;
    row.name = wl.name;
    row.base = runner.Submit(wl, RunMode::kScalar, cfg, "orig");
    row.av = runner.Submit(wl, RunMode::kAutoVec, cfg, "orig");
    row.ds = runner.Submit(wl, RunMode::kDsa, cfg, "orig");
    rows.push_back(row);
  }

  std::printf("Article 1 Fig. 12 — improvement over ARM original (%%)\n");
  std::printf("%-12s %12s %14s\n", "benchmark", "NEON AutoVec",
              "DSA (original)");
  std::vector<double> av_speedups;
  std::vector<double> dsa_speedups;
  for (const Row& row : rows) {
    const auto& base = dsa::bench::ResultOrEmpty(runner, row.base);
    const auto& av = dsa::bench::ResultOrEmpty(runner, row.av);
    const auto& ds = dsa::bench::ResultOrEmpty(runner, row.ds);
    av_speedups.push_back(SpeedupOver(base, av));
    dsa_speedups.push_back(SpeedupOver(base, ds));
    std::printf("%-12s %+11.1f%% %+13.1f%%\n", row.name.c_str(),
                dsa::bench::ImprovementPct(base, av),
                dsa::bench::ImprovementPct(base, ds));
  }
  if (!rows.empty()) {
    const double av_g = dsa::bench::GeoMeanSpeedup(av_speedups);
    const double ds_g = dsa::bench::GeoMeanSpeedup(dsa_speedups);
    std::printf("%-12s %+11.1f%% %+13.1f%%\n", "geomean", (av_g - 1) * 100,
                (ds_g - 1) * 100);
    std::printf("\nDSA vs AutoVec: %+.1f%%   (paper: DSA +31%% over original, "
                "+6%% over AutoVec)\n",
                (ds_g / av_g - 1) * 100);
  }
  return dsa::bench::FinishBench(runner, opts, "a1_fig12");
}
