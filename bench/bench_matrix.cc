// Full-matrix driver: regenerates the performance (Fig. 8), energy
// (Fig. 9), detection-latency (Table 2/3), loop-type (Fig. 7) and
// Extended-vs-Original (Fig. 16) views from ONE batch of runs. The
// seed-style serial path (--serial) re-executes every cell each time a
// table needs it, the way the standalone drivers do; the runner path
// submits the whole matrix once and renders every table from the memo,
// with the oracle cross-checking all modes against the scalar outputs.
// --compare times both paths and prints the wall-clock win.
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "workloads/workloads.h"

namespace {

using dsa::sim::BatchRunner;
using dsa::sim::RunMode;
using dsa::sim::RunResult;
using dsa::sim::SystemConfig;
using dsa::sim::Workload;

// A table renders through this: the serial path executes the cell on the
// spot (possibly again), the runner path answers from the batch memo.
using Getter = std::function<RunResult(const Workload&, RunMode,
                                       const SystemConfig&,
                                       const std::string& ctag)>;

void PrintPerf(const std::vector<Workload>& set, const SystemConfig& cfg,
               const Getter& get) {
  std::printf("perf — improvement over ARM original (%%)\n");
  std::printf("%-12s %12s %12s %12s\n", "benchmark", "AutoVec", "Hand-coded",
              "DSA");
  std::vector<double> ds;
  for (const Workload& wl : set) {
    const RunResult base = get(wl, RunMode::kScalar, cfg, "");
    const RunResult a = get(wl, RunMode::kAutoVec, cfg, "");
    const RunResult h = get(wl, RunMode::kHandVec, cfg, "");
    const RunResult d = get(wl, RunMode::kDsa, cfg, "");
    ds.push_back(SpeedupOver(base, d));
    std::printf("%-12s %+11.1f%% %+11.1f%% %+11.1f%%\n", wl.name.c_str(),
                dsa::bench::ImprovementPct(base, a),
                dsa::bench::ImprovementPct(base, h),
                dsa::bench::ImprovementPct(base, d));
  }
  std::printf("%-12s DSA geomean %+.1f%%\n\n", "",
              (dsa::bench::GeoMeanSpeedup(ds) - 1) * 100);
}

void PrintEnergy(const std::vector<Workload>& set, const SystemConfig& cfg,
                 const Getter& get) {
  std::printf("energy — savings over ARM original (%%)\n");
  std::printf("%-12s %12s %12s %12s\n", "benchmark", "AutoVec", "Hand-coded",
              "DSA");
  for (const Workload& wl : set) {
    const RunResult base = get(wl, RunMode::kScalar, cfg, "");
    const RunResult a = get(wl, RunMode::kAutoVec, cfg, "");
    const RunResult h = get(wl, RunMode::kHandVec, cfg, "");
    const RunResult d = get(wl, RunMode::kDsa, cfg, "");
    std::printf("%-12s %+11.1f%% %+11.1f%% %+11.1f%%\n", wl.name.c_str(),
                dsa::bench::EnergySavingsPct(base, a),
                dsa::bench::EnergySavingsPct(base, h),
                dsa::bench::EnergySavingsPct(base, d));
  }
  std::printf("\n");
}

void PrintLatency(const std::vector<Workload>& set, const SystemConfig& cfg,
                  const Getter& get) {
  std::printf("DSA detection latency (%% of total execution)\n");
  for (const Workload& wl : set) {
    const RunResult r = get(wl, RunMode::kDsa, cfg, "");
    std::printf("%-12s %6.2f%%  (%llu analysis cycles, %llu takeovers)\n",
                wl.name.c_str(), r.detection_latency_pct(),
                static_cast<unsigned long long>(r.dsa->analysis_cycles),
                static_cast<unsigned long long>(r.dsa->takeovers));
  }
  std::printf("\n");
}

void PrintLoopTypes(const std::vector<Workload>& set, const SystemConfig& cfg,
                    const Getter& get) {
  std::printf("DSA runtime loop classification\n");
  for (const Workload& wl : set) {
    const RunResult r = get(wl, RunMode::kDsa, cfg, "");
    std::printf("%-12s", wl.name.c_str());
    for (const auto& [cls, n] : r.dsa->loops_by_class) {
      std::printf("  %s x%llu", std::string(ToString(cls)).c_str(),
                  static_cast<unsigned long long>(n));
    }
    std::printf("\n");
  }
  std::printf("\n");
}

void PrintStream(const std::vector<Workload>& set, const SystemConfig& cfg,
                 const Getter& get) {
  std::printf("streaming suite — GB/s at 1 GHz (bytes/cycle)\n");
  std::printf("%-14s %10s %10s %12s\n", "kernel", "scalar", "DSA",
              "DSA impr.");
  for (const Workload& wl : set) {
    const RunResult base = get(wl, RunMode::kScalar, cfg, "");
    const RunResult d = get(wl, RunMode::kDsa, cfg, "");
    std::printf("%-14s %10.3f %10.3f %+11.1f%%\n", wl.name.c_str(),
                base.stream_gbps(), d.stream_gbps(),
                dsa::bench::ImprovementPct(base, d));
  }
  std::printf("\n");
}

void PrintFig16(const std::vector<Workload>& set, const SystemConfig& ext_cfg,
                const SystemConfig& orig_cfg, const Getter& get) {
  std::printf("Extended vs Original DSA — improvement over ARM original "
              "(%%)\n");
  std::printf("%-12s %12s %14s %14s\n", "benchmark", "NEON AutoVec",
              "Original DSA", "Extended DSA");
  for (const Workload& wl : set) {
    const RunResult base = get(wl, RunMode::kScalar, ext_cfg, "");
    const RunResult a = get(wl, RunMode::kAutoVec, ext_cfg, "");
    const RunResult o = get(wl, RunMode::kDsa, orig_cfg, "orig");
    const RunResult e = get(wl, RunMode::kDsa, ext_cfg, "");
    std::printf("%-12s %+11.1f%% %+13.1f%% %+13.1f%%\n", wl.name.c_str(),
                dsa::bench::ImprovementPct(base, a),
                dsa::bench::ImprovementPct(base, o),
                dsa::bench::ImprovementPct(base, e));
  }
  std::printf("\n");
}

struct TableRun {
  double wall_ms = 0;
  std::uint64_t executions = 0;  // serial path: actual sim::Run calls
};

TableRun RenderAllTables(const Getter& get, const SystemConfig& cfg,
                         const SystemConfig& orig_cfg) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<Workload> a3 = dsa::workloads::Article3Set();
  const std::vector<Workload> a2 = dsa::workloads::Article2Set();
  const std::vector<Workload> stream = dsa::workloads::StreamingSet();
  PrintPerf(a3, cfg, get);
  PrintEnergy(a3, cfg, get);
  PrintLatency(a3, cfg, get);
  PrintLoopTypes(a3, cfg, get);
  PrintFig16(a2, cfg, orig_cfg, get);
  PrintStream(stream, cfg, get);
  TableRun tr;
  tr.wall_ms = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
  return tr;
}

}  // namespace

int main(int argc, char** argv) {
  const dsa::bench::BenchOptions opts = dsa::bench::ParseBenchArgs(argc, argv);
  const SystemConfig cfg = dsa::bench::BaseConfig(opts);
  SystemConfig orig_cfg = dsa::bench::BaseConfig(opts);
  orig_cfg.dsa = dsa::engine::DsaConfig::Original();
  dsa::bench::PrintSetupHeader(cfg);

  // Seed-style serial path: every table cell is a fresh sim::Run call,
  // shared cells (the Fig. 8 matrix reappears in the energy table, the
  // DSA column in latency and loop-type views, most of Fig. 16) are
  // recomputed from scratch each time.
  std::uint64_t serial_runs = 0;
  double serial_ms = 0;
  if (opts.serial || opts.compare) {
    const Getter serial_get = [&serial_runs](const Workload& wl, RunMode mode,
                                             const SystemConfig& c,
                                             const std::string&) {
      ++serial_runs;
      return Run(wl, mode, c);
    };
    TableRun tr = RenderAllTables(serial_get, cfg, orig_cfg);
    serial_ms = tr.wall_ms;
    std::printf("[matrix/serial] %llu sim runs in %.0f ms\n",
                static_cast<unsigned long long>(serial_runs), serial_ms);
    if (!opts.compare) return 0;
    std::printf("\n==== runner path ====\n\n");
  }

  const auto runner_t0 = std::chrono::steady_clock::now();
  BatchRunner runner(opts.runner);
  // Submit the whole matrix up front so the workers stream through it;
  // rendering then reads every cell from the memo.
  for (const Workload& wl : dsa::workloads::Article3Set()) {
    runner.SubmitMatrix(wl, cfg);
  }
  for (const Workload& wl : dsa::workloads::Article2Set()) {
    runner.Submit(wl, RunMode::kDsa, orig_cfg, "orig");
  }
  for (const Workload& wl : dsa::workloads::StreamingSet()) {
    runner.Submit(wl, RunMode::kScalar, cfg);
    runner.Submit(wl, RunMode::kDsa, cfg);
  }
  const Getter memo_get = [&runner](const Workload& wl, RunMode mode,
                                    const SystemConfig& c,
                                    const std::string& ctag) {
    return dsa::bench::ResultOrEmpty(runner, runner.Submit(wl, mode, c, ctag));
  };
  RenderAllTables(memo_get, cfg, orig_cfg);
  const int rc = dsa::bench::FinishBench(runner, opts, "matrix");
  if (opts.compare && rc == 0) {
    const double runner_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - runner_t0)
                                 .count();
    std::printf("[matrix/compare] serial %.0f ms (%llu runs) vs runner "
                "%.0f ms (incl. oracle) -> %.2fx\n",
                serial_ms, static_cast<unsigned long long>(serial_runs),
                runner_ms, serial_ms / runner_ms);
  }
  return rc;
}
