// Article 2 (SBESC), Fig. 16: ARM NEON compiler auto-vectorization vs. the
// Original DSA vs. the Extended DSA (conditional-code + dynamic-range loop
// support), improvement over the ARM original execution.
//
// Paper shape: the Extended DSA gains ~+38.5% over the Original DSA on the
// dynamic-behaviour benchmarks (BitCounts, Dijkstra), +4% on Susan E, and
// nothing on the purely static benchmarks; overall it beats AutoVec by
// ~12%; AutoVec loses slightly on Q Sort (-1%) and Dijkstra (-3%).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "workloads/workloads.h"

int main() {
  using dsa::sim::RunMode;
  dsa::sim::SystemConfig ext_cfg;
  dsa::sim::SystemConfig orig_cfg;
  orig_cfg.dsa = dsa::engine::DsaConfig::Original();
  dsa::bench::PrintSetupHeader(ext_cfg);

  std::printf(
      "Article 2 Fig. 16 — improvement over ARM original (%%)\n");
  std::printf("%-12s %12s %14s %14s\n", "benchmark", "NEON AutoVec",
              "Original DSA", "Extended DSA");
  std::vector<double> av;
  std::vector<double> orig;
  std::vector<double> ext;
  for (const dsa::sim::Workload& wl : dsa::workloads::Article2Set()) {
    const auto base = Run(wl, RunMode::kScalar, ext_cfg);
    const auto a = Run(wl, RunMode::kAutoVec, ext_cfg);
    const auto o = Run(wl, RunMode::kDsa, orig_cfg);
    const auto e = Run(wl, RunMode::kDsa, ext_cfg);
    av.push_back(SpeedupOver(base, a));
    orig.push_back(SpeedupOver(base, o));
    ext.push_back(SpeedupOver(base, e));
    std::printf("%-12s %+11.1f%% %+13.1f%% %+13.1f%%\n", wl.name.c_str(),
                dsa::bench::ImprovementPct(base, a),
                dsa::bench::ImprovementPct(base, o),
                dsa::bench::ImprovementPct(base, e));
  }
  const double ga = dsa::bench::GeoMeanSpeedup(av);
  const double go = dsa::bench::GeoMeanSpeedup(orig);
  const double ge = dsa::bench::GeoMeanSpeedup(ext);
  std::printf("%-12s %+11.1f%% %+13.1f%% %+13.1f%%\n", "geomean",
              (ga - 1) * 100, (go - 1) * 100, (ge - 1) * 100);
  // The paper quotes the Extended-vs-Original gain over the benchmarks
  // with conditional-code / dynamic-range loops (Susan E, Dijkstra,
  // BitCounts) — indices 3, 5, 6 of the Article 2 set.
  std::vector<double> dyn_ratio;
  for (const int i : {3, 5, 6}) dyn_ratio.push_back(ext[i] / orig[i]);
  std::printf("\nExtended vs Original DSA (all):          %+.1f%%\n",
              (ge / go - 1) * 100);
  std::printf("Extended vs Original DSA (dynamic-loop): %+.1f%%   "
              "(paper: +38.5%%)\n",
              (dsa::bench::GeoMeanSpeedup(dyn_ratio) - 1) * 100);
  std::printf("Extended DSA vs AutoVec:                 %+.1f%%   "
              "(paper: +12%%)\n",
              (ge / ga - 1) * 100);
  return 0;
}
