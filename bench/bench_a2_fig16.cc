// Article 2 (SBESC), Fig. 16: ARM NEON compiler auto-vectorization vs. the
// Original DSA vs. the Extended DSA (conditional-code + dynamic-range loop
// support), improvement over the ARM original execution.
//
// Paper shape: the Extended DSA gains ~+38.5% over the Original DSA on the
// dynamic-behaviour benchmarks (BitCounts, Dijkstra), +4% on Susan E, and
// nothing on the purely static benchmarks; overall it beats AutoVec by
// ~12%; AutoVec loses slightly on Q Sort (-1%) and Dijkstra (-3%).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "workloads/workloads.h"

int main(int argc, char** argv) {
  using dsa::sim::RunMode;
  const dsa::bench::BenchOptions opts = dsa::bench::ParseBenchArgs(argc, argv);
  dsa::sim::SystemConfig ext_cfg = dsa::bench::BaseConfig(opts);
  dsa::sim::SystemConfig orig_cfg = dsa::bench::BaseConfig(opts);
  orig_cfg.dsa = dsa::engine::DsaConfig::Original();
  dsa::bench::PrintSetupHeader(ext_cfg);

  // Two DSA configs in one batch: the config_tag keeps the original-DSA
  // cells from being memo-merged with the extended-DSA cells.
  dsa::sim::BatchRunner runner(opts.runner);
  struct Row {
    std::string name;
    std::string base, av, orig, ext;
  };
  std::vector<Row> rows;
  for (const dsa::sim::Workload& wl : dsa::workloads::Article2Set()) {
    if (!dsa::bench::KeepWorkload(opts, wl.name)) continue;
    Row row;
    row.name = wl.name;
    row.base = runner.Submit(wl, RunMode::kScalar, ext_cfg, "ext");
    row.av = runner.Submit(wl, RunMode::kAutoVec, ext_cfg, "ext");
    row.orig = runner.Submit(wl, RunMode::kDsa, orig_cfg, "orig");
    row.ext = runner.Submit(wl, RunMode::kDsa, ext_cfg, "ext");
    rows.push_back(row);
  }

  std::printf(
      "Article 2 Fig. 16 — improvement over ARM original (%%)\n");
  std::printf("%-12s %12s %14s %14s\n", "benchmark", "NEON AutoVec",
              "Original DSA", "Extended DSA");
  std::vector<double> av;
  std::vector<double> orig;
  std::vector<double> ext;
  std::vector<double> dyn_ratio;
  for (const Row& row : rows) {
    const auto& base = dsa::bench::ResultOrEmpty(runner, row.base);
    const auto& a = dsa::bench::ResultOrEmpty(runner, row.av);
    const auto& o = dsa::bench::ResultOrEmpty(runner, row.orig);
    const auto& e = dsa::bench::ResultOrEmpty(runner, row.ext);
    av.push_back(SpeedupOver(base, a));
    orig.push_back(SpeedupOver(base, o));
    ext.push_back(SpeedupOver(base, e));
    // The paper quotes the Extended-vs-Original gain over the benchmarks
    // with conditional-code / dynamic-range loops.
    if (row.name == "Susan E" || row.name == "Dijkstra" ||
        row.name == "BitCounts") {
      dyn_ratio.push_back(ext.back() / orig.back());
    }
    std::printf("%-12s %+11.1f%% %+13.1f%% %+13.1f%%\n", row.name.c_str(),
                dsa::bench::ImprovementPct(base, a),
                dsa::bench::ImprovementPct(base, o),
                dsa::bench::ImprovementPct(base, e));
  }
  if (!rows.empty()) {
    const double ga = dsa::bench::GeoMeanSpeedup(av);
    const double go = dsa::bench::GeoMeanSpeedup(orig);
    const double ge = dsa::bench::GeoMeanSpeedup(ext);
    std::printf("%-12s %+11.1f%% %+13.1f%% %+13.1f%%\n", "geomean",
                (ga - 1) * 100, (go - 1) * 100, (ge - 1) * 100);
    std::printf("\nExtended vs Original DSA (all):          %+.1f%%\n",
                (ge / go - 1) * 100);
    if (!dyn_ratio.empty()) {
      std::printf("Extended vs Original DSA (dynamic-loop): %+.1f%%   "
                  "(paper: +38.5%%)\n",
                  (dsa::bench::GeoMeanSpeedup(dyn_ratio) - 1) * 100);
    }
    std::printf("Extended DSA vs AutoVec:                 %+.1f%%   "
                "(paper: +12%%)\n",
                (ge / ga - 1) * 100);
  }
  return dsa::bench::FinishBench(runner, opts, "a2_fig16");
}
