// Google-benchmark microbenchmarks of the simulator substrate itself:
// interpreter step rate, DSA observer overhead, cache model throughput and
// NEON lane-op evaluation. These measure the *reproduction's* performance
// (simulation speed), not the modeled hardware.
#include <benchmark/benchmark.h>

#include "engine/engine.h"
#include "mem/cache.h"
#include "neon/vector_unit.h"
#include "prog/assembler.h"
#include "sim/runner.h"
#include "sim/system.h"
#include "workloads/workloads.h"

namespace {

using dsa::isa::Cond;
using dsa::isa::Opcode;

// An effectively endless loop over fixed addresses: a steady-state
// instruction stream for measuring per-step costs without ever halting
// within a benchmark run (~2^31 iterations available).
dsa::prog::Program SteadyLoop() {
  dsa::prog::Assembler as;
  as.Movi(0, 0x10000);
  as.Movi(2, 0x20000);
  as.Movi(5, 0);
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Ldr(4, 0);
  as.Str(4, 2);
  as.AluImm(Opcode::kAddi, 5, 5, 1);
  as.Cmpi(5, 0);
  as.B(Cond::kGe, loop);
  as.Halt();
  return as.Finish();
}

void BM_InterpreterStep(benchmark::State& state) {
  const dsa::prog::Program p = SteadyLoop();
  dsa::mem::Memory mem(1 << 18);
  dsa::mem::Hierarchy h{dsa::mem::Hierarchy::Config{}};
  dsa::cpu::Cpu cpu(p, mem, h);
  std::uint64_t steps = 0;
  for (auto _ : state) {
    if (cpu.halted()) state.SkipWithError("program ended");
    benchmark::DoNotOptimize(cpu.Step());
    ++steps;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_InterpreterStep);

void BM_DsaObserve(benchmark::State& state) {
  const dsa::prog::Program p = SteadyLoop();
  dsa::mem::Memory mem(1 << 18);
  dsa::mem::Hierarchy h{dsa::mem::Hierarchy::Config{}};
  dsa::cpu::Cpu cpu(p, mem, h);
  dsa::engine::DsaEngine engine{dsa::engine::DsaConfig{},
                                dsa::cpu::TimingConfig{}};
  std::uint64_t steps = 0;
  for (auto _ : state) {
    if (cpu.halted()) state.SkipWithError("program ended");
    const dsa::cpu::Retired r = cpu.Step();
    benchmark::DoNotOptimize(engine.Observe(r, cpu.state()));
    ++steps;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_DsaObserve);

void BM_CacheAccess(benchmark::State& state) {
  dsa::mem::Hierarchy h{dsa::mem::Hierarchy::Config{}};
  std::uint32_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.Access(addr));
    addr = (addr + 64) & 0xFFFFF;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void BM_NeonLaneOp(benchmark::State& state) {
  dsa::neon::QReg a;
  dsa::neon::QReg b;
  for (int i = 0; i < 16; ++i) {
    a.bytes[i] = static_cast<std::uint8_t>(i * 7);
    b.bytes[i] = static_cast<std::uint8_t>(i * 13);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsa::neon::ExecuteLaneOp(
        Opcode::kVmla, dsa::isa::VecType::kI16, a, b, a));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NeonLaneOp);

// One full-matrix batch through the BatchRunner (4 modes, oracle on,
// second SubmitMatrix answered from the memo): measures the harness
// overhead the bench drivers pay on top of the raw Run() calls.
void BM_BatchRunnerMatrix(benchmark::State& state) {
  const dsa::sim::Workload wl = dsa::workloads::MakeVecAdd(1024);
  for (auto _ : state) {
    dsa::sim::RunnerOptions o;
    o.jobs = 1;
    o.repeats = 1;
    dsa::sim::BatchRunner runner(o);
    runner.SubmitMatrix(wl);
    runner.SubmitMatrix(wl);  // fully memoized — no extra runs
    const dsa::sim::BatchReport report = runner.Finish();
    if (!report.ok()) state.SkipWithError("oracle violation");
    benchmark::DoNotOptimize(report.distinct_jobs);
  }
}
BENCHMARK(BM_BatchRunnerMatrix);

void BM_FullWorkloadDsa(benchmark::State& state) {
  const dsa::sim::Workload wl = dsa::workloads::MakeSusanE(2048, 48);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Run(wl, dsa::sim::RunMode::kDsa, dsa::sim::SystemConfig{}));
  }
}
BENCHMARK(BM_FullWorkloadDsa);

}  // namespace

BENCHMARK_MAIN();
