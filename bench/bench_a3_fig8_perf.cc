// Article 3 (DATE), Fig. 8: performance improvements over the ARM original
// execution for NEON AutoVec, hand-vectorized ARM-library code, and the
// (extended) DSA.
//
// Paper shape: DSA outperforms the auto-vectorization compiler by ~32%
// (partial vectorization + dynamic-behaviour loop coverage) and the
// hand-vectorized code by ~26%; AutoVec wins only on MM.
#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "workloads/workloads.h"

int main(int argc, char** argv) {
  const dsa::bench::BenchOptions opts = dsa::bench::ParseBenchArgs(argc, argv);
  const dsa::sim::SystemConfig cfg = dsa::bench::BaseConfig(opts);
  dsa::bench::PrintSetupHeader(cfg);

  dsa::sim::BatchRunner runner(opts.runner);
  struct Row {
    std::string name;
    std::array<std::string, 4> keys;  // scalar, autovec, handvec, dsa
  };
  std::vector<Row> rows;
  for (const dsa::sim::Workload& wl : dsa::workloads::Article3Set()) {
    if (!dsa::bench::KeepWorkload(opts, wl.name)) continue;
    rows.push_back(Row{wl.name, runner.SubmitMatrix(wl, cfg)});
  }

  std::printf("Article 3 Fig. 8 — improvement over ARM original (%%)\n");
  std::printf("%-12s %12s %12s %12s\n", "benchmark", "AutoVec", "Hand-coded",
              "DSA");
  std::vector<double> av;
  std::vector<double> hv;
  std::vector<double> ds;
  for (const Row& row : rows) {
    const auto& base = dsa::bench::ResultOrEmpty(runner, row.keys[0]);
    const auto& a = dsa::bench::ResultOrEmpty(runner, row.keys[1]);
    const auto& h = dsa::bench::ResultOrEmpty(runner, row.keys[2]);
    const auto& d = dsa::bench::ResultOrEmpty(runner, row.keys[3]);
    av.push_back(SpeedupOver(base, a));
    hv.push_back(SpeedupOver(base, h));
    ds.push_back(SpeedupOver(base, d));
    std::printf("%-12s %+11.1f%% %+11.1f%% %+11.1f%%\n", row.name.c_str(),
                dsa::bench::ImprovementPct(base, a),
                dsa::bench::ImprovementPct(base, h),
                dsa::bench::ImprovementPct(base, d));
  }
  if (!rows.empty()) {
    const double ga = dsa::bench::GeoMeanSpeedup(av);
    const double gh = dsa::bench::GeoMeanSpeedup(hv);
    const double gd = dsa::bench::GeoMeanSpeedup(ds);
    std::printf("%-12s %+11.1f%% %+11.1f%% %+11.1f%%\n", "geomean",
                (ga - 1) * 100, (gh - 1) * 100, (gd - 1) * 100);
    std::printf("\nDSA vs AutoVec:    %+.1f%%   (paper: +32%%)\n",
                (gd / ga - 1) * 100);
    std::printf("DSA vs Hand-coded: %+.1f%%   (paper: +26%%)\n",
                (gd / gh - 1) * 100);
  }
  return dsa::bench::FinishBench(runner, opts, "a3_fig8_perf");
}
