// Article 3 (DATE), Fig. 8: performance improvements over the ARM original
// execution for NEON AutoVec, hand-vectorized ARM-library code, and the
// (extended) DSA.
//
// Paper shape: DSA outperforms the auto-vectorization compiler by ~32%
// (partial vectorization + dynamic-behaviour loop coverage) and the
// hand-vectorized code by ~26%; AutoVec wins only on MM.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "workloads/workloads.h"

int main() {
  using dsa::sim::RunMode;
  const dsa::sim::SystemConfig cfg;
  dsa::bench::PrintSetupHeader(cfg);

  std::printf("Article 3 Fig. 8 — improvement over ARM original (%%)\n");
  std::printf("%-12s %12s %12s %12s\n", "benchmark", "AutoVec", "Hand-coded",
              "DSA");
  std::vector<double> av;
  std::vector<double> hv;
  std::vector<double> ds;
  for (const dsa::sim::Workload& wl : dsa::workloads::Article3Set()) {
    const auto base = Run(wl, RunMode::kScalar, cfg);
    const auto a = Run(wl, RunMode::kAutoVec, cfg);
    const auto h = Run(wl, RunMode::kHandVec, cfg);
    const auto d = Run(wl, RunMode::kDsa, cfg);
    av.push_back(SpeedupOver(base, a));
    hv.push_back(SpeedupOver(base, h));
    ds.push_back(SpeedupOver(base, d));
    std::printf("%-12s %+11.1f%% %+11.1f%% %+11.1f%%\n", wl.name.c_str(),
                dsa::bench::ImprovementPct(base, a),
                dsa::bench::ImprovementPct(base, h),
                dsa::bench::ImprovementPct(base, d));
  }
  const double ga = dsa::bench::GeoMeanSpeedup(av);
  const double gh = dsa::bench::GeoMeanSpeedup(hv);
  const double gd = dsa::bench::GeoMeanSpeedup(ds);
  std::printf("%-12s %+11.1f%% %+11.1f%% %+11.1f%%\n", "geomean",
              (ga - 1) * 100, (gh - 1) * 100, (gd - 1) * 100);
  std::printf("\nDSA vs AutoVec:    %+.1f%%   (paper: +32%%)\n",
              (gd / ga - 1) * 100);
  std::printf("DSA vs Hand-coded: %+.1f%%   (paper: +26%%)\n",
              (gd / gh - 1) * 100);
  return 0;
}
