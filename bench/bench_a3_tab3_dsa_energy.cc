// Article 3 (DATE), Table 3: DSA energy consumption — the energy the DSA
// logic itself burns, broken down by analysis activity and structure
// accesses, per benchmark, plus its share of total system energy. The
// methodology mirrors Fig. 32: different loop types activate different
// state-machine paths, so stage activations are reported alongside.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "workloads/workloads.h"

int main(int argc, char** argv) {
  using dsa::sim::RunMode;
  const dsa::bench::BenchOptions opts = dsa::bench::ParseBenchArgs(argc, argv);
  const dsa::sim::SystemConfig cfg = dsa::bench::BaseConfig(opts);
  dsa::bench::PrintSetupHeader(cfg);

  dsa::sim::BatchRunner runner(opts.runner);
  std::vector<std::pair<std::string, std::string>> rows;  // name, key
  for (const dsa::sim::Workload& wl : dsa::workloads::Article3Set()) {
    if (!dsa::bench::KeepWorkload(opts, wl.name)) continue;
    runner.Submit(wl, RunMode::kScalar, cfg);
    rows.emplace_back(wl.name, runner.Submit(wl, RunMode::kDsa, cfg));
  }

  std::printf("Article 3 Table 3 — DSA energy consumption\n");
  std::printf("%-12s %12s %12s %10s | stage activations "
              "(det/col/dep/exec/map/spec)\n",
              "benchmark", "DSA nJ", "system nJ", "share");
  for (const auto& [name, key] : rows) {
    const auto& r = dsa::bench::ResultOrEmpty(runner, key);
    const double dsa_nj = r.energy.dsa_dynamic + r.energy.dsa_static;
    std::printf("%-12s %12.1f %12.1f %9.2f%% |", name.c_str(), dsa_nj,
                r.energy.total(), 100.0 * dsa_nj / r.energy.total());
    for (int s = 0; s < dsa::engine::kNumStages; ++s) {
      std::printf(" %llu",
                  static_cast<unsigned long long>(
                      r.dsa->stage_activations[s]));
    }
    std::printf("\n");
  }
  std::printf("\n(The DSA's own energy stays a small share of system "
              "energy; its savings come from the cycles and instructions "
              "it removes — see bench_a3_fig9_energy.)\n");
  return dsa::bench::FinishBench(runner, opts, "a3_tab3_dsa_energy");
}
