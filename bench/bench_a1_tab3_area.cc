// Article 1 (SBCCI), Table 3: area overhead of the DSA relative to the ARM
// core, from the component area model (calibrated to the paper's Cadence
// RTL Compiler synthesis results).
//
// Paper values: DSA logic = 2.18% of the core; DSA + caches = 10.37% of
// core + caches.
#include <cstdio>
#include <cstring>
#include <string>

#include "energy/energy_model.h"
#include "engine/config.h"

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json PATH]\n", argv[0]);
      return 2;
    }
  }
  const dsa::energy::AreaParams p;
  const dsa::engine::DsaConfig cfg;
  const dsa::energy::AreaReport r = dsa::energy::ComputeArea(
      p, cfg.dsa_cache_bytes, cfg.verification_cache_bytes, cfg.array_maps);

  std::printf("Article 1 Table 3 — area overhead of DSA (um^2)\n\n");
  std::printf("%-22s %14s\n", "component", "total area");
  std::printf("%-22s %14.0f\n", "ARM core", r.arm_core);
  std::printf("%-22s %14.0f\n", "DSA logic", r.dsa_logic);
  std::printf("%-22s %13.2f%%  (paper: 2.18%%)\n", "logic overhead",
              r.logic_overhead_pct);
  std::printf("\n%-22s %14.0f\n", "ARM core + caches", r.arm_with_caches);
  std::printf("%-22s %14.0f\n", "DSA + caches", r.dsa_with_caches);
  std::printf("%-22s %13.2f%%  (paper: 10.37%%)\n", "total overhead",
              r.total_overhead_pct);

  std::printf("\nsweep: DSA cache size vs. total overhead\n");
  for (const std::uint32_t kb : {2u, 4u, 8u, 16u, 32u}) {
    const auto s = dsa::energy::ComputeArea(
        p, kb * 1024, cfg.verification_cache_bytes, cfg.array_maps);
    std::printf("  %2u kB DSA cache -> %.2f%%\n", kb, s.total_overhead_pct);
  }

  // The area model is closed-form (no simulation runs), so this driver
  // emits its own flat JSON rather than going through the BatchRunner.
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "could not write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\"schema\": \"dsa-bench-json/1\", \"bench\": "
                 "\"a1_tab3_area\", \"area_um2\": {\"arm_core\": %.1f, "
                 "\"dsa_logic\": %.1f, \"arm_with_caches\": %.1f, "
                 "\"dsa_with_caches\": %.1f}, \"logic_overhead_pct\": %.4f, "
                 "\"total_overhead_pct\": %.4f}\n",
                 r.arm_core, r.dsa_logic, r.arm_with_caches, r.dsa_with_caches,
                 r.logic_overhead_pct, r.total_overhead_pct);
    std::fclose(f);
    std::printf("\n[a1_tab3_area] wrote %s\n", json_path.c_str());
  }
  return 0;
}
