// Chaos suite: sweeps every fault kind across every workload and asserts
// that the speculation guard recovers bit-identically — the final output
// digest of a fault-injected DSA run must equal both the fault-free DSA
// run and the scalar baseline (the equivalence oracle enforces the same
// thing independently). Prints, per cell, how many faults actually fired
// and what the guard did about them (rollbacks, blacklisted loops,
// detected cache corruptions).
//
// Each fault kind runs under a fixed two-burst plan (fire at the first
// opportunity, then twice more starting at the third) with a pinned seed,
// so the sweep is reproducible; pass --faults to replace the sweep with a
// single custom plan. Exits non-zero on any digest divergence or oracle
// violation.
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "fault/fault.h"
#include "workloads/workloads.h"

namespace {

struct Column {
  std::string tag;          // config_tag for the runner memo
  dsa::fault::FaultPlan plan;
};

std::vector<Column> SweepColumns(const dsa::bench::BenchOptions& opts) {
  std::vector<Column> cols;
  if (opts.faults.enabled()) {
    cols.push_back(Column{"custom", opts.faults});
    return cols;
  }
  for (int k = 0; k < dsa::fault::kNumFaultKinds; ++k) {
    const std::string kind =
        std::string(ToString(static_cast<dsa::fault::FaultKind>(k)));
    Column c;
    c.tag = kind;
    c.plan = dsa::fault::ParseFaultPlan(kind + "@0," + kind + "@2+2;seed=7");
    cols.push_back(c);
  }
  return cols;
}

}  // namespace

int main(int argc, char** argv) {
  const dsa::bench::BenchOptions opts = dsa::bench::ParseBenchArgs(argc, argv);
  const dsa::sim::SystemConfig base = dsa::bench::BaseConfig(opts);
  dsa::bench::PrintSetupHeader(base);

  const std::vector<Column> cols = SweepColumns(opts);
  dsa::sim::BatchRunner runner(opts.runner);

  struct Row {
    std::string name;
    std::string scalar_key;
    std::string clean_key;                // fault-free DSA
    std::vector<std::string> fault_keys;  // one per column
  };
  // The full Article 3 set plus the VecAdd micro-kernel, which doubles as
  // the cheap smoke target for scripts/check.sh (--filter VecAdd).
  std::vector<dsa::sim::Workload> suite;
  suite.push_back(dsa::workloads::MakeVecAdd());
  for (dsa::sim::Workload& wl : dsa::workloads::Article3Set()) {
    suite.push_back(std::move(wl));
  }

  std::vector<Row> rows;
  for (const dsa::sim::Workload& wl : suite) {
    if (!dsa::bench::KeepWorkload(opts, wl.name)) continue;
    Row row;
    row.name = wl.name;
    row.scalar_key = runner.Submit(wl, dsa::sim::RunMode::kScalar, base);
    dsa::sim::SystemConfig clean = base;
    clean.faults = {};  // the fault-free reference twin of every column
    row.clean_key =
        runner.Submit(wl, dsa::sim::RunMode::kDsa, clean, "clean");
    for (const Column& c : cols) {
      dsa::sim::SystemConfig cfg = base;
      cfg.faults = c.plan;
      row.fault_keys.push_back(
          runner.Submit(wl, dsa::sim::RunMode::kDsa, cfg, "fault-" + c.tag));
    }
    rows.push_back(std::move(row));
  }

  std::printf("Chaos sweep — fault kind x workload, guard recovery\n");
  std::printf("(cell: fired/rollbacks/blacklisted, '=' digest matches the "
              "fault-free run, '!' diverged)\n\n");
  std::printf("%-12s", "benchmark");
  for (const Column& c : cols) std::printf(" %14s", c.tag.c_str());
  std::printf("\n");

  bool all_identical = true;
  for (const Row& row : rows) {
    const dsa::sim::RunResult& clean = dsa::bench::ResultOrEmpty(runner, row.clean_key);
    const dsa::sim::RunResult& scalar = dsa::bench::ResultOrEmpty(runner, row.scalar_key);
    if (clean.output_digest != scalar.output_digest) all_identical = false;
    std::printf("%-12s", row.name.c_str());
    for (const std::string& key : row.fault_keys) {
      const dsa::sim::RunResult& r = dsa::bench::ResultOrEmpty(runner, key);
      const bool same = r.output_digest == clean.output_digest;
      if (!same) all_identical = false;
      char cell[32];
      std::snprintf(cell, sizeof(cell), "%" PRIu64 "/%" PRIu64 "/%" PRIu64
                    "%s",
                    r.faults.has_value() ? r.faults->total_fired() : 0,
                    r.dsa.has_value() ? r.dsa->rollbacks : 0,
                    r.dsa.has_value() ? r.dsa->blacklisted_loops : 0,
                    same ? "=" : "!");
      std::printf(" %14s", cell);
    }
    std::printf("\n");
  }

  if (all_identical) {
    std::printf("\nrecovery: every fault-injected run reproduced the "
                "fault-free digest bit-identically\n");
  } else {
    std::fprintf(stderr, "\nrecovery FAILED: at least one fault-injected run "
                         "diverged from its fault-free digest\n");
  }

  const int rc = dsa::bench::FinishBench(runner, opts, "chaos");
  return all_identical ? rc : 1;
}
