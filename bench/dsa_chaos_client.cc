// dsa_chaos_client — seeded hostile-protocol client for the dsa_serve
// daemon (docs/SERVING.md). Each round draws one attack from a seeded
// stream — random garbage bytes, a truncated frame, a bad magic, an
// oversize length header, a mid-frame disconnect, a slow-loris header
// drip, a CRC-valid frame whose payload is not JSON, a frame with the
// wrong record type — fires it at the socket, and then proves the daemon
// is still answering well-behaved requests with a deadline-bounded ping.
// The same --seed replays the same attack sequence byte-for-byte.
//
// Exit codes: 0 — the daemon survived every round responsive;
//             1 — a post-attack ping failed (daemon hung, died or
//                 stopped answering);
//             2 — usage.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "resilience/journal.h"
#include "serve/client.h"
#include "serve/flags.h"
#include "serve/proto.h"

namespace {

struct ChaosArgs {
  std::string socket_path;
  std::uint64_t seed = 1;
  std::uint64_t rounds = 16;
  std::uint64_t slow_ms = 40;  // inter-byte delay of the slow-loris drip
  bool verbose = false;
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--seed N] [--rounds N] "
               "[--slow-ms N] [--verbose]\n",
               argv0);
  std::exit(2);
}

ChaosArgs ParseArgs(int argc, char** argv) {
  ChaosArgs a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    auto u64 = [&](const std::string& flag) {
      std::uint64_t v = 0;
      std::string err;
      if (!dsa::serve::ParseU64Text(value(), v, &err)) {
        std::fprintf(stderr, "%s %s\n", flag.c_str(), err.c_str());
        std::exit(2);
      }
      return v;
    };
    if (arg == "--socket") {
      a.socket_path = value();
    } else if (arg == "--seed") {
      a.seed = u64(arg);
    } else if (arg == "--rounds") {
      a.rounds = u64(arg);
    } else if (arg == "--slow-ms") {
      a.slow_ms = u64(arg);
    } else if (arg == "--verbose") {
      a.verbose = true;
    } else {
      Usage(argv[0]);
    }
  }
  if (a.socket_path.empty()) Usage(argv[0]);
  return a;
}

// splitmix64 — the repo's standard deterministic stream (fault.cc uses
// the same), so one seed reproduces one attack byte sequence exactly.
struct SplitMix64 {
  std::uint64_t state;
  std::uint64_t Next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
};

int ConnectTo(const std::string& path) {
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) return -1;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void BlindWrite(int fd, const void* data, std::size_t len) {
  // The daemon is allowed (encouraged!) to slam the door mid-attack;
  // EPIPE/ECONNRESET here is its defense working, not our failure.
  const char* p = static_cast<const char*>(data);
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, p + off, len - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

void PutU32(std::string& s, std::uint32_t v) {
  s.push_back(static_cast<char>(v & 0xFF));
  s.push_back(static_cast<char>((v >> 8) & 0xFF));
  s.push_back(static_cast<char>((v >> 16) & 0xFF));
  s.push_back(static_cast<char>((v >> 24) & 0xFF));
}

// A wire-correct frame (magic, length, CRC) around an arbitrary payload
// — used to deliver hostile *content* through an honest envelope.
std::string ValidFrame(const std::string& payload) {
  std::string frame;
  frame.append(dsa::serve::kProtoMagic, 4);
  PutU32(frame, static_cast<std::uint32_t>(payload.size()));
  PutU32(frame, dsa::resilience::Crc32(payload.data(), payload.size()));
  frame += payload;
  return frame;
}

const char* const kAttackNames[] = {
    "random-bytes",   "truncated-frame", "bad-magic",
    "oversize-header", "mid-frame-disconnect", "slow-loris",
    "non-json-payload", "wrong-type",
};
constexpr int kNumAttacks = 8;

void Attack(int which, SplitMix64& rng, const ChaosArgs& a) {
  const int fd = ConnectTo(a.socket_path);
  if (fd < 0) return;  // the post-attack ping decides responsiveness
  switch (which) {
    case 0: {  // random-bytes: pure garbage, no framing at all
      std::string junk(16 + rng.Next() % 240, '\0');
      for (char& c : junk) c = static_cast<char>(rng.Next() & 0xFF);
      BlindWrite(fd, junk.data(), junk.size());
      break;
    }
    case 1: {  // truncated-frame: honest header, half the payload, hangup
      const std::string payload =
          std::string(1, dsa::serve::kFrameRequest) +
          "{\"schema\":\"dsa-serve/1\",\"kind\":\"ping\"}";
      const std::string frame = ValidFrame(payload);
      BlindWrite(fd, frame.data(), frame.size() / 2);
      break;
    }
    case 2: {  // bad-magic
      std::string frame = "XSAD";
      PutU32(frame, 32);
      PutU32(frame, 0);
      frame.append(32, 'x');
      BlindWrite(fd, frame.data(), frame.size());
      break;
    }
    case 3: {  // oversize-header: a length no allocation should honor
      std::string frame;
      frame.append(dsa::serve::kProtoMagic, 4);
      PutU32(frame, dsa::serve::kMaxFrameBytes + 1 +
                        static_cast<std::uint32_t>(rng.Next() % 1024));
      PutU32(frame, static_cast<std::uint32_t>(rng.Next()));
      BlindWrite(fd, frame.data(), frame.size());
      break;
    }
    case 4: {  // mid-frame-disconnect: a few header bytes, then vanish
      const std::string frame = ValidFrame(
          std::string(1, dsa::serve::kFrameRequest) + "{}");
      BlindWrite(fd, frame.data(), 3 + rng.Next() % 8);
      break;
    }
    case 5: {  // slow-loris: drip the header one byte at a time
      const std::string frame = ValidFrame(
          std::string(1, dsa::serve::kFrameRequest) +
          "{\"schema\":\"dsa-serve/1\",\"kind\":\"ping\"}");
      const std::size_t drip = 6 + rng.Next() % 6;  // never a whole header
      for (std::size_t i = 0; i < drip; ++i) {
        BlindWrite(fd, frame.data() + i, 1);
        std::this_thread::sleep_for(std::chrono::milliseconds(a.slow_ms));
      }
      break;
    }
    case 6: {  // non-json-payload inside a CRC-valid frame
      const std::string frame = ValidFrame(
          std::string(1, dsa::serve::kFrameRequest) + "not json at all {{{");
      BlindWrite(fd, frame.data(), frame.size());
      break;
    }
    case 7:
    default: {  // wrong record type in a CRC-valid frame
      const std::string frame = ValidFrame(
          std::string(1, 'Z') + "{\"schema\":\"dsa-serve/1\"}");
      BlindWrite(fd, frame.data(), frame.size());
      break;
    }
  }
  ::close(fd);
}

bool PingOk(const ChaosArgs& a) {
  dsa::serve::ClientOptions po;
  po.socket_path = a.socket_path;
  po.client_name = "dsa_chaos_client";
  po.ping = true;
  po.quiet = true;
  po.recv_timeout_ms = 5000;
  po.retries = 2;  // the daemon may be mid-accept-burst; transport only
  return dsa::serve::Submit(po) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  const ChaosArgs a = ParseArgs(argc, argv);
  if (!PingOk(a)) {
    std::fprintf(stderr, "[dsa_chaos_client] daemon not answering before "
                         "round 1 — nothing to attack\n");
    return 1;
  }
  SplitMix64 rng{a.seed * 0x9e3779b97f4a7c15ull + 0xd1b54a32d192ed03ull};
  for (std::uint64_t round = 0; round < a.rounds; ++round) {
    const int which = static_cast<int>(rng.Next() % kNumAttacks);
    if (a.verbose) {
      std::printf("[dsa_chaos_client] round %" PRIu64 "/%" PRIu64 ": %s\n",
                  round + 1, a.rounds, kAttackNames[which]);
      std::fflush(stdout);
    }
    Attack(which, rng, a);
    if (!PingOk(a)) {
      std::fprintf(stderr,
                   "[dsa_chaos_client] FAILED: daemon unresponsive after "
                   "round %" PRIu64 " (%s)\n",
                   round + 1, kAttackNames[which]);
      return 1;
    }
  }
  std::printf("[dsa_chaos_client] daemon survived %" PRIu64
              " hostile round(s), still responsive\n",
              a.rounds);
  return 0;
}
