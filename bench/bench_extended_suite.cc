// Extended-suite grid (beyond the paper's benchmark list): the same
// four-system comparison over FIR, MemCopy, AlphaBlend and Histogram,
// stressing multi-stream offsets, 16-lane kernels, runtime-invariant
// coefficients and the indirect-addressing rejection.
#include <cstdio>

#include "bench/bench_util.h"
#include "workloads/extended.h"

int main() {
  using dsa::sim::RunMode;
  const dsa::sim::SystemConfig cfg;
  dsa::bench::PrintSetupHeader(cfg);

  std::printf("extended suite — improvement over ARM original (%%)\n");
  std::printf("%-12s %12s %12s %12s | %s\n", "benchmark", "AutoVec",
              "Hand-coded", "DSA", "DSA energy savings");
  for (const dsa::sim::Workload& wl : dsa::workloads::ExtendedSet()) {
    const auto base = Run(wl, RunMode::kScalar, cfg);
    const auto a = Run(wl, RunMode::kAutoVec, cfg);
    const auto h = Run(wl, RunMode::kHandVec, cfg);
    const auto d = Run(wl, RunMode::kDsa, cfg);
    std::printf("%-12s %+11.1f%% %+11.1f%% %+11.1f%% | %+11.1f%%\n",
                wl.name.c_str(), dsa::bench::ImprovementPct(base, a),
                dsa::bench::ImprovementPct(base, h),
                dsa::bench::ImprovementPct(base, d),
                dsa::bench::EnergySavingsPct(base, d));
  }
  return 0;
}
