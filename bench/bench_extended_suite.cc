// Extended-suite grid (beyond the paper's benchmark list): the same
// four-system comparison over FIR, MemCopy, AlphaBlend and Histogram —
// stressing multi-stream offsets, 16-lane kernels, runtime-invariant
// coefficients and the indirect-addressing rejection — plus the streaming
// suite (scanners, bulk memory ops; bench_stream adds the GB/s view).
#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "workloads/extended.h"
#include "workloads/workloads.h"

int main(int argc, char** argv) {
  const dsa::bench::BenchOptions opts = dsa::bench::ParseBenchArgs(argc, argv);
  const dsa::sim::SystemConfig cfg = dsa::bench::BaseConfig(opts);
  dsa::bench::PrintSetupHeader(cfg);

  dsa::sim::BatchRunner runner(opts.runner);
  struct Row {
    std::string name;
    std::array<std::string, 4> keys;  // scalar, autovec, handvec, dsa
  };
  std::vector<Row> rows;
  std::vector<dsa::sim::Workload> suite = dsa::workloads::ExtendedSet();
  for (auto& wl : dsa::workloads::StreamingSet()) {
    suite.push_back(std::move(wl));
  }
  for (const dsa::sim::Workload& wl : suite) {
    if (!dsa::bench::KeepWorkload(opts, wl.name)) continue;
    rows.push_back(Row{wl.name, runner.SubmitMatrix(wl, cfg)});
  }

  std::printf("extended suite — improvement over ARM original (%%)\n");
  std::printf("%-12s %12s %12s %12s | %s\n", "benchmark", "AutoVec",
              "Hand-coded", "DSA", "DSA energy savings");
  for (const Row& row : rows) {
    const auto& base = dsa::bench::ResultOrEmpty(runner, row.keys[0]);
    const auto& a = dsa::bench::ResultOrEmpty(runner, row.keys[1]);
    const auto& h = dsa::bench::ResultOrEmpty(runner, row.keys[2]);
    const auto& d = dsa::bench::ResultOrEmpty(runner, row.keys[3]);
    std::printf("%-12s %+11.1f%% %+11.1f%% %+11.1f%% | %+11.1f%%\n",
                row.name.c_str(), dsa::bench::ImprovementPct(base, a),
                dsa::bench::ImprovementPct(base, h),
                dsa::bench::ImprovementPct(base, d),
                dsa::bench::EnergySavingsPct(base, d));
  }
  return dsa::bench::FinishBench(runner, opts, "extended_suite");
}
