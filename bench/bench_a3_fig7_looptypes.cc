// Article 3 (DATE), Fig. 7: percentage of loop types in the selected
// applications. Two views:
//  - the static census annotated by the workload authors (the figure's
//    ground truth), and
//  - the DSA's own runtime classification (loops_by_class), which must
//    agree on which classes appear.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "workloads/workloads.h"

int main(int argc, char** argv) {
  using dsa::sim::RunMode;
  const dsa::bench::BenchOptions opts = dsa::bench::ParseBenchArgs(argc, argv);
  const dsa::sim::SystemConfig cfg = dsa::bench::BaseConfig(opts);
  dsa::bench::PrintSetupHeader(cfg);

  dsa::sim::BatchRunner runner(opts.runner);
  struct Row {
    dsa::sim::Workload wl;
    std::string key;
  };
  std::vector<Row> rows;
  for (const dsa::sim::Workload& wl : dsa::workloads::Article3Set()) {
    if (!dsa::bench::KeepWorkload(opts, wl.name)) continue;
    runner.Submit(wl, RunMode::kScalar, cfg);
    rows.push_back(Row{wl, runner.Submit(wl, RunMode::kDsa, cfg)});
  }

  std::printf("Article 3 Fig. 7 — loop types per application\n\n");
  for (const Row& row : rows) {
    std::printf("%-12s static census:", row.wl.name.c_str());
    for (const auto& [type, frac] : row.wl.loop_type_fractions) {
      std::printf("  %s %.0f%%", type.c_str(), frac * 100);
    }
    const auto& r = dsa::bench::ResultOrEmpty(runner, row.key);
    std::printf("\n%-12s DSA runtime classification:", "");
    for (const auto& [cls, n] : r.dsa->loops_by_class) {
      std::printf("  %s x%llu", std::string(ToString(cls)).c_str(),
                  static_cast<unsigned long long>(n));
    }
    std::printf("\n\n");
  }
  return dsa::bench::FinishBench(runner, opts, "a3_fig7_looptypes");
}
