// Article 3 (DATE), Fig. 7: percentage of loop types in the selected
// applications. Two views:
//  - the static census annotated by the workload authors (the figure's
//    ground truth), and
//  - the DSA's own runtime classification (loops_by_class), which must
//    agree on which classes appear.
#include <cstdio>
#include <map>
#include <string>

#include "bench/bench_util.h"
#include "workloads/workloads.h"

int main() {
  using dsa::sim::RunMode;
  const dsa::sim::SystemConfig cfg;
  dsa::bench::PrintSetupHeader(cfg);

  std::printf("Article 3 Fig. 7 — loop types per application\n\n");
  for (const dsa::sim::Workload& wl : dsa::workloads::Article3Set()) {
    std::printf("%-12s static census:", wl.name.c_str());
    for (const auto& [type, frac] : wl.loop_type_fractions) {
      std::printf("  %s %.0f%%", type.c_str(), frac * 100);
    }
    const auto r = Run(wl, RunMode::kDsa, cfg);
    std::printf("\n%-12s DSA runtime classification:", "");
    for (const auto& [cls, n] : r.dsa->loops_by_class) {
      std::printf("  %s x%llu", std::string(ToString(cls)).c_str(),
                  static_cast<unsigned long long>(n));
    }
    std::printf("\n\n");
  }
  return 0;
}
