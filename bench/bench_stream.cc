// Streaming-throughput and generator-sweep driver. Part 1 runs the
// streaming suite (workloads/streaming plus the byte kernels MemCopy and
// StrCopy) through the four-system matrix and reports GB/s at the modeled
// 1 GHz clock next to the usual improvement/energy columns. Part 2 is the
// standing differential-fuzz harness: every generated program
// (workloads/gen, population set by --gen-seed/--gen-count) runs scalar,
// through the DSA fast path, and through the DSA `--reference` twin; the
// oracle gates the digests of all three and the driver additionally
// requires the fast and reference twins to agree cycle-for-cycle,
// exiting non-zero on any divergence.
#include <array>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "workloads/extended.h"
#include "workloads/workloads.h"

namespace {

// GB/s of one run at 1 GHz (bytes/cycle), or 0 when not applicable.
double Gbps(const dsa::sim::RunResult& r) { return r.stream_gbps(); }

}  // namespace

int main(int argc, char** argv) {
  const dsa::bench::BenchOptions opts = dsa::bench::ParseBenchArgs(argc, argv);
  const dsa::sim::SystemConfig cfg = dsa::bench::BaseConfig(opts);
  dsa::sim::SystemConfig cfg_ref = cfg;
  cfg_ref.reference_path = true;
  dsa::bench::PrintSetupHeader(cfg);

  dsa::sim::BatchRunner runner(opts.runner);

  // --- part 1: streaming suite, four-system matrix -------------------------
  struct Row {
    std::string name;
    std::uint64_t bytes = 0;
    std::array<std::string, 4> keys;  // scalar, autovec, handvec, dsa
  };
  std::vector<Row> rows;
  std::vector<dsa::sim::Workload> suite = dsa::workloads::StreamingSet();
  suite.push_back(dsa::workloads::MakeMemCopy());
  suite.push_back(dsa::workloads::MakeStrCopy());
  for (const dsa::sim::Workload& wl : suite) {
    if (!dsa::bench::KeepWorkload(opts, wl.name)) continue;
    rows.push_back(Row{wl.name, wl.stream_bytes, runner.SubmitMatrix(wl, cfg)});
  }

  // --- part 2: generated-program differential sweep ------------------------
  const int gen_count = opts.gen_count > 0 ? opts.gen_count : 24;
  struct GenJob {
    std::string name;
    std::string cls;
    std::string scalar_key;
    std::string dsa_key;
    std::string ref_key;  // DSA through the pre-optimization twin
  };
  std::vector<GenJob> gen_jobs;
  for (dsa::sim::Workload& wl :
       dsa::workloads::gen::GeneratedSet(opts.gen_seed, gen_count)) {
    if (!dsa::bench::KeepWorkload(opts, wl.name)) continue;
    GenJob j;
    j.name = wl.name;
    j.cls = wl.gen->loop_class;
    j.scalar_key = runner.Submit(wl, dsa::sim::RunMode::kScalar, cfg);
    j.dsa_key = runner.Submit(wl, dsa::sim::RunMode::kDsa, cfg);
    // Same workload key, different config tag: the oracle's equivalence
    // group now spans fast path and reference twin.
    j.ref_key = runner.Submit(wl, dsa::sim::RunMode::kDsa, cfg_ref, "ref");
    gen_jobs.push_back(std::move(j));
  }

  std::printf("streaming suite — GB/s at 1 GHz (bytes/cycle)\n");
  std::printf("%-14s %10s %8s %8s %8s %8s | %9s %8s\n", "kernel", "bytes",
              "scalar", "autovec", "hand", "DSA", "DSA impr.", "energy");
  for (const Row& row : rows) {
    const auto& base = dsa::bench::ResultOrEmpty(runner, row.keys[0]);
    const auto& a = dsa::bench::ResultOrEmpty(runner, row.keys[1]);
    const auto& h = dsa::bench::ResultOrEmpty(runner, row.keys[2]);
    const auto& d = dsa::bench::ResultOrEmpty(runner, row.keys[3]);
    std::printf(
        "%-14s %10llu %8.3f %8.3f %8.3f %8.3f | %+8.1f%% %+7.1f%%\n",
        row.name.c_str(), static_cast<unsigned long long>(row.bytes),
        Gbps(base), Gbps(a), Gbps(h), Gbps(d),
        dsa::bench::ImprovementPct(base, d),
        dsa::bench::EnergySavingsPct(base, d));
  }

  // Fast-vs-reference divergence check: the reference twin must reproduce
  // every simulated stat bit-identically, so cycles and digests are
  // compared exactly — any mismatch is an engine/CPU/cache bug surfaced
  // by a generated program.
  struct ClassAgg {
    int programs = 0;
    int takeovers = 0;
    double speedup_sum = 0;
  };
  std::map<std::string, ClassAgg> by_class;
  int divergences = 0;
  for (const GenJob& j : gen_jobs) {
    const auto& s = dsa::bench::ResultOrEmpty(runner, j.scalar_key);
    const auto& d = dsa::bench::ResultOrEmpty(runner, j.dsa_key);
    const auto& ref = dsa::bench::ResultOrEmpty(runner, j.ref_key);
    ClassAgg& agg = by_class[j.cls];
    ++agg.programs;
    if (d.dsa.has_value() && d.dsa->takeovers > 0) ++agg.takeovers;
    if (s.cycles > 0 && d.cycles > 0) {
      agg.speedup_sum += dsa::sim::SpeedupOver(s, d);
    }
    if (d.cycles != ref.cycles || d.output_digest != ref.output_digest) {
      ++divergences;
      std::fprintf(stderr,
                   "DIVERGENCE %s: fast cycles=%llu digest=%016llx vs "
                   "reference cycles=%llu digest=%016llx\n",
                   j.name.c_str(), static_cast<unsigned long long>(d.cycles),
                   static_cast<unsigned long long>(d.output_digest),
                   static_cast<unsigned long long>(ref.cycles),
                   static_cast<unsigned long long>(ref.output_digest));
    }
  }

  std::printf(
      "\ngenerated sweep — %d program(s), base seed %llu (fast vs "
      "reference twin)\n",
      gen_count, static_cast<unsigned long long>(opts.gen_seed));
  std::printf("%-16s %9s %10s %12s\n", "class", "programs", "takeovers",
              "avg speedup");
  for (const auto& [cls, agg] : by_class) {
    std::printf("%-16s %9d %10d %11.2fx\n", cls.c_str(), agg.programs,
                agg.takeovers,
                agg.programs > 0 ? agg.speedup_sum / agg.programs : 0.0);
  }
  std::printf("fast-vs-reference divergences: %d\n", divergences);

  const int rc = dsa::bench::FinishBench(runner, opts, "stream");
  return divergences > 0 ? 1 : rc;
}
