// Host-throughput driver: runs the same workload x mode matrix as
// bench_matrix (Article 3 full matrix + Article 2 Original-DSA column,
// plus the VecAdd microbenchmark as a cheap smoke slice) and
// reports how fast the simulator itself executes — millions of simulated
// instructions per host second (MIPS), per job and in aggregate. Tracks
// the interpreter hot-path work documented in docs/PERF.md; --reference
// forces the pre-optimization code paths and --dispatch switch the PR-3
// decode-switch core (docs/DISPATCH.md), so fast-vs-reference and
// threaded-vs-switch throughput are one-flag A/Bs. The differential
// oracle still gates the exit code, so a throughput run doubles as a
// correctness sweep.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "workloads/workloads.h"

int main(int argc, char** argv) {
  using dsa::sim::BatchRunner;
  using dsa::sim::RunMode;
  using dsa::sim::RunResult;
  using dsa::sim::SystemConfig;
  using dsa::sim::Workload;

  const dsa::bench::BenchOptions opts = dsa::bench::ParseBenchArgs(argc, argv);
  const SystemConfig cfg = dsa::bench::BaseConfig(opts);
  SystemConfig orig_cfg = cfg;
  orig_cfg.dsa = dsa::engine::DsaConfig::Original();
  dsa::bench::PrintSetupHeader(cfg);
  std::printf("simulator path: %s | dispatch: %s\n\n",
              cfg.reference_path ? "reference (pre-optimization)" : "fast",
              std::string(dsa::cpu::ToString(cfg.dispatch)).c_str());

  BatchRunner runner(opts.runner);
  std::vector<std::string> keys;
  // VecAdd first: the cheap microbenchmark that `--filter VecAdd` selects
  // as the CI smoke slice (scripts/check.sh).
  std::vector<Workload> sweep;
  sweep.push_back(dsa::workloads::MakeVecAdd());
  for (Workload& wl : dsa::workloads::Article3Set()) {
    sweep.push_back(std::move(wl));
  }
  for (const Workload& wl : sweep) {
    if (!dsa::bench::KeepWorkload(opts, wl.name)) continue;
    for (std::string& k : runner.SubmitMatrix(wl, cfg)) {
      keys.push_back(std::move(k));
    }
  }
  for (const Workload& wl : dsa::workloads::Article2Set()) {
    if (!dsa::bench::KeepWorkload(opts, wl.name)) continue;
    keys.push_back(runner.Submit(wl, RunMode::kDsa, orig_cfg, "orig"));
  }
  if (keys.empty()) {
    std::fprintf(stderr, "[throughput] no workload matches --filter %s\n",
                 opts.filter.c_str());
    return 2;
  }

  std::printf("%-28s %14s %10s %10s\n", "job", "sim instrs", "wall ms",
              "MIPS");
  std::uint64_t total_steps = 0;
  double total_ms = 0.0;
  for (const std::string& key : keys) {
    const RunResult& r = dsa::bench::ResultOrEmpty(runner, key);
    total_steps += r.host_steps;
    total_ms += r.host_wall_ms;
    std::printf("%-28s %14llu %10.2f %10.1f\n", key.c_str(),
                static_cast<unsigned long long>(r.host_steps), r.host_wall_ms,
                r.host_mips());
  }
  const double aggregate =
      total_ms > 0.0 ? static_cast<double>(total_steps) / (1000.0 * total_ms)
                     : 0.0;
  std::printf("\n[throughput] aggregate %.1f MIPS "
              "(%llu simulated instrs in %.0f ms of run-loop time, "
              "%zu jobs)\n",
              aggregate, static_cast<unsigned long long>(total_steps),
              total_ms, keys.size());

  return dsa::bench::FinishBench(runner, opts, "throughput");
}
