// Host-throughput driver: runs the same workload x mode matrix as
// bench_matrix (Article 3 full matrix + Article 2 Original-DSA column,
// plus the VecAdd and DispatchMicro microbenchmarks as cheap smoke
// slices) and reports how fast the simulator itself executes — millions
// of simulated instructions per host second (MIPS), per job and in
// aggregate. Tracks the interpreter hot-path work documented in
// docs/PERF.md; --reference forces the pre-optimization code paths and
// --dispatch switch the PR-3 decode-switch core (docs/DISPATCH.md), so
// fast-vs-reference and threaded-vs-switch throughput are one-flag A/Bs.
// The differential oracle still gates the exit code, so a throughput run
// doubles as a correctness sweep.
//
// --interleave N replaces the batch run with a load-immune A/B loop: per
// cell, N back-to-back fast/--reference pairs on the same binary, median
// of the per-pair MIPS ratios reported (and gated by --assert-ratio).
// Both arms of a pair see the same host load, so the ratio is stable
// where absolute MIPS swing ±30% with machine load; it is the
// measurement the perf numbers in docs/PERF.md are quoted from.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "workloads/workloads.h"

namespace {

using dsa::sim::Run;
using dsa::sim::RunMode;
using dsa::sim::RunResult;
using dsa::sim::SystemConfig;
using dsa::sim::Workload;

double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 != 0 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

int RunInterleaved(const dsa::bench::BenchOptions& opts,
                   const SystemConfig& cfg, const SystemConfig& orig_cfg,
                   const std::vector<Workload>& sweep,
                   const std::vector<Workload>& article2) {
  SystemConfig ref_cfg = cfg;
  ref_cfg.reference_path = true;
  SystemConfig ref_orig = orig_cfg;
  ref_orig.reference_path = true;

  struct Cell {
    const Workload* wl = nullptr;
    RunMode mode = RunMode::kScalar;
    const SystemConfig* fast = nullptr;
    const SystemConfig* ref = nullptr;
    std::string key;
    std::vector<double> fast_mips;
    std::vector<double> ref_mips;
    std::vector<double> ratios;
  };
  std::vector<Cell> cells;
  for (const Workload& wl : sweep) {
    if (!dsa::bench::KeepWorkload(opts, wl.name)) continue;
    for (const RunMode m : {RunMode::kScalar, RunMode::kAutoVec,
                            RunMode::kHandVec, RunMode::kDsa}) {
      Cell c;
      c.wl = &wl;
      c.mode = m;
      c.fast = &cfg;
      c.ref = &ref_cfg;
      c.key = wl.name + "@" + std::string(dsa::sim::ToString(m));
      cells.push_back(std::move(c));
    }
  }
  for (const Workload& wl : article2) {
    if (!dsa::bench::KeepWorkload(opts, wl.name)) continue;
    Cell c;
    c.wl = &wl;
    c.mode = RunMode::kDsa;
    c.fast = &orig_cfg;
    c.ref = &ref_orig;
    c.key = wl.name + "@neon-dsa/orig";
    cells.push_back(std::move(c));
  }
  if (cells.empty()) {
    std::fprintf(stderr, "[interleave] no workload matches --filter %s\n",
                 opts.filter.c_str());
    return 2;
  }

  // Round-robin over cells inside each round, fast arm immediately
  // followed by its reference twin: the two runs of a pair share whatever
  // the host is doing at that moment, which is the whole point.
  std::vector<double> agg_ratios;
  for (int round = 0; round < opts.interleave; ++round) {
    std::uint64_t fast_steps = 0;
    std::uint64_t ref_steps = 0;
    double fast_ms = 0.0;
    double ref_ms = 0.0;
    for (Cell& c : cells) {
      const RunResult f = Run(*c.wl, c.mode, *c.fast);
      const RunResult r = Run(*c.wl, c.mode, *c.ref);
      if (f.output_digest != r.output_digest || f.cycles != r.cycles) {
        // The A/B is only meaningful between bit-identical simulations;
        // a divergence here is a correctness bug, not a perf result.
        std::fprintf(stderr,
                     "[interleave] %s: fast and --reference diverged "
                     "(digest 0x%llx vs 0x%llx, cycles %llu vs %llu)\n",
                     c.key.c_str(),
                     static_cast<unsigned long long>(f.output_digest),
                     static_cast<unsigned long long>(r.output_digest),
                     static_cast<unsigned long long>(f.cycles),
                     static_cast<unsigned long long>(r.cycles));
        return 1;
      }
      c.fast_mips.push_back(f.host_mips());
      c.ref_mips.push_back(r.host_mips());
      c.ratios.push_back(r.host_mips() > 0.0 ? f.host_mips() / r.host_mips()
                                             : 0.0);
      fast_steps += f.host_steps;
      fast_ms += f.host_wall_ms;
      ref_steps += r.host_steps;
      ref_ms += r.host_wall_ms;
    }
    const double fa =
        fast_ms > 0.0
            ? static_cast<double>(fast_steps) / (1000.0 * fast_ms)
            : 0.0;
    const double ra =
        ref_ms > 0.0 ? static_cast<double>(ref_steps) / (1000.0 * ref_ms)
                     : 0.0;
    agg_ratios.push_back(ra > 0.0 ? fa / ra : 0.0);
  }

  std::printf("%-28s %10s %10s %10s\n", "job", "fast MIPS", "ref MIPS",
              "ratio");
  bool below_floor = false;
  for (Cell& c : cells) {
    const double ratio = Median(c.ratios);
    const bool bad = opts.assert_ratio > 0.0 && ratio < opts.assert_ratio;
    below_floor = below_floor || bad;
    std::printf("%-28s %10.1f %10.1f %9.2fx%s\n", c.key.c_str(),
                Median(c.fast_mips), Median(c.ref_mips), ratio,
                bad ? "  << below floor" : "");
  }
  std::printf("\n[interleave] %d pair(s)/cell, medians; aggregate "
              "fast/reference ratio %.2fx over %zu cell(s)\n",
              opts.interleave, Median(agg_ratios), cells.size());
  if (opts.assert_ratio > 0.0) {
    if (below_floor) {
      std::fprintf(stderr,
                   "[interleave] FAIL: cell(s) below the --assert-ratio "
                   "%.2f floor\n",
                   opts.assert_ratio);
      return 1;
    }
    std::printf("[interleave] assert-ratio %.2f: ok\n", opts.assert_ratio);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using dsa::sim::BatchRunner;

  const dsa::bench::BenchOptions opts = dsa::bench::ParseBenchArgs(argc, argv);
  const SystemConfig cfg = dsa::bench::BaseConfig(opts);
  SystemConfig orig_cfg = cfg;
  orig_cfg.dsa = dsa::engine::DsaConfig::Original();
  dsa::bench::PrintSetupHeader(cfg);
  std::printf("simulator path: %s | dispatch: %s\n\n",
              cfg.reference_path ? "reference (pre-optimization)" : "fast",
              std::string(dsa::cpu::ToString(cfg.dispatch)).c_str());

  // VecAdd and DispatchMicro first: the cheap microbenchmarks that
  // `--filter VecAdd` / `--filter DispatchMicro` select as the CI smoke
  // and perf-gate slices (scripts/check.sh).
  std::vector<Workload> sweep;
  sweep.push_back(dsa::workloads::MakeVecAdd());
  sweep.push_back(dsa::workloads::MakeDispatchMicro());
  for (Workload& wl : dsa::workloads::Article3Set()) {
    sweep.push_back(std::move(wl));
  }
  const std::vector<Workload> article2 = dsa::workloads::Article2Set();

  if (opts.interleave > 0) {
    return RunInterleaved(opts, cfg, orig_cfg, sweep, article2);
  }

  BatchRunner runner(opts.runner);
  std::vector<std::string> keys;
  for (const Workload& wl : sweep) {
    if (!dsa::bench::KeepWorkload(opts, wl.name)) continue;
    for (std::string& k : runner.SubmitMatrix(wl, cfg)) {
      keys.push_back(std::move(k));
    }
  }
  for (const Workload& wl : article2) {
    if (!dsa::bench::KeepWorkload(opts, wl.name)) continue;
    keys.push_back(runner.Submit(wl, dsa::sim::RunMode::kDsa, orig_cfg,
                                 "orig"));
  }
  if (keys.empty()) {
    std::fprintf(stderr, "[throughput] no workload matches --filter %s\n",
                 opts.filter.c_str());
    return 2;
  }

  std::printf("%-28s %14s %10s %10s\n", "job", "sim instrs", "wall ms",
              "MIPS");
  std::uint64_t total_steps = 0;
  double total_ms = 0.0;
  for (const std::string& key : keys) {
    const RunResult& r = dsa::bench::ResultOrEmpty(runner, key);
    total_steps += r.host_steps;
    total_ms += r.host_wall_ms;
    std::printf("%-28s %14llu %10.2f %10.1f\n", key.c_str(),
                static_cast<unsigned long long>(r.host_steps), r.host_wall_ms,
                r.host_mips());
  }
  const double aggregate =
      total_ms > 0.0 ? static_cast<double>(total_steps) / (1000.0 * total_ms)
                     : 0.0;
  std::printf("\n[throughput] aggregate %.1f MIPS "
              "(%llu simulated instrs in %.0f ms of run-loop time, "
              "%zu jobs)\n",
              aggregate, static_cast<unsigned long long>(total_steps),
              total_ms, keys.size());

  return dsa::bench::FinishBench(runner, opts, "throughput");
}
