#include <gtest/gtest.h>

#include <stdexcept>

#include "prog/assembler.h"

namespace dsa::prog {
namespace {

using isa::Cond;
using isa::Opcode;

TEST(Assembler, BackwardBranchResolves) {
  Assembler as;
  const auto top = as.NewLabel();
  as.Bind(top);
  as.Nop();
  as.B(Cond::kAl, top);
  const Program p = as.Finish();
  EXPECT_EQ(p.at(1).op, Opcode::kB);
  EXPECT_EQ(p.at(1).imm, 0);
}

TEST(Assembler, ForwardBranchFixup) {
  Assembler as;
  const auto skip = as.NewLabel();
  as.B(Cond::kAl, skip);
  as.Nop();
  as.Nop();
  as.Bind(skip);
  as.Halt();
  const Program p = as.Finish();
  EXPECT_EQ(p.at(0).imm, 3);
}

TEST(Assembler, MultipleBranchesToSameLabel) {
  Assembler as;
  const auto l = as.NewLabel();
  as.B(Cond::kEq, l);
  as.B(Cond::kNe, l);
  as.Bind(l);
  as.Halt();
  const Program p = as.Finish();
  EXPECT_EQ(p.at(0).imm, 2);
  EXPECT_EQ(p.at(1).imm, 2);
}

TEST(Assembler, UnboundLabelThrows) {
  Assembler as;
  const auto l = as.NewLabel();
  as.B(Cond::kAl, l);
  EXPECT_THROW(as.Finish(), std::logic_error);
}

TEST(Assembler, DoubleBindThrows) {
  Assembler as;
  const auto l = as.NewLabel();
  as.Bind(l);
  EXPECT_THROW(as.Bind(l), std::logic_error);
}

TEST(Assembler, UnknownLabelThrows) {
  Assembler as;
  EXPECT_THROW(as.Bind(42), std::out_of_range);
}

TEST(Assembler, BlUsesFixups) {
  Assembler as;
  as.Movi(0, 1);
  const auto fn = as.NewLabel();
  as.Bl(fn);
  as.Halt();
  as.Bind(fn);
  as.Ret();
  const Program p = as.Finish();
  EXPECT_EQ(p.at(1).op, Opcode::kBl);
  EXPECT_EQ(p.at(1).imm, 3);
}

TEST(Assembler, VectorHelpersSetWriteback) {
  Assembler as;
  as.Vld1(isa::VecType::kI16, 1, 0);
  as.Vld1(isa::VecType::kI16, 2, 0, /*writeback=*/false);
  as.VldLane(isa::VecType::kI8, 3, 5, 0);
  const Program p = as.Finish();
  EXPECT_EQ(p.at(0).post_inc, 16);
  EXPECT_EQ(p.at(1).post_inc, 0);
  EXPECT_EQ(p.at(2).post_inc, 1);  // one i8 lane
  EXPECT_EQ(p.at(2).imm, 5);      // lane index
}

TEST(Assembler, MlaCarriesAccumulator) {
  Assembler as;
  as.Mla(3, 4, 5, 6);
  const Program p = as.Finish();
  EXPECT_EQ(p.at(0).ra, 6);
}

TEST(Assembler, VmlaAccumulatesIntoDestination) {
  Assembler as;
  as.Vmla(isa::VecType::kI32, 8, 1, 2);
  const Program p = as.Finish();
  EXPECT_EQ(p.at(0).ra, 8);
}

TEST(Program, DisassembleListsEveryPc) {
  Assembler as;
  as.Movi(0, 7);
  as.Halt();
  const Program p = as.Finish();
  const std::string d = p.Disassemble();
  EXPECT_NE(d.find("0:\tmovi r0, #7"), std::string::npos);
  EXPECT_NE(d.find("1:\thalt"), std::string::npos);
}

TEST(Program, AtThrowsPastEnd) {
  Program p;
  EXPECT_THROW(static_cast<void>(p.at(0)), std::out_of_range);
}

}  // namespace
}  // namespace dsa::prog
