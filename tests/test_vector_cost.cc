#include <gtest/gtest.h>

#include "engine/vector_cost.h"

namespace dsa::engine {
namespace {

BodySummary SimpleBody(isa::VecType t = isa::VecType::kI32) {
  BodySummary b;
  b.vec_type = t;
  b.loads = {MemStream{1, false, 4, 0x100, 4, false, 0, 0},
             MemStream{2, false, 4, 0x1000, 4, false, 1, 0}};
  b.stores = {MemStream{3, true, 4, 0x2000, 4, false, 2, 0}};
  b.alu_ops = 1;
  b.body_instrs = 7;
  return b;
}

TEST(Leftover, ExactMultipleNeedsNone) {
  EXPECT_EQ(ChooseLeftover(SimpleBody(), 64), LeftoverKind::kNone);
}

TEST(Leftover, OverlappingWhenNoAlias) {
  EXPECT_EQ(ChooseLeftover(SimpleBody(), 63), LeftoverKind::kOverlapping);
}

TEST(Leftover, SingleElementsWhenStoreAliasesLoad) {
  BodySummary b = SimpleBody();
  b.stores[0].base_addr = b.loads[0].base_addr;  // in-place update
  EXPECT_EQ(ChooseLeftover(b, 63), LeftoverKind::kSingleElements);
}

TEST(Leftover, SingleElementsBelowOneVector) {
  EXPECT_EQ(ChooseLeftover(SimpleBody(), 3), LeftoverKind::kSingleElements);
}

TEST(Leftover, LargerArraysWhenPadded) {
  EXPECT_EQ(ChooseLeftover(SimpleBody(), 63, /*padded_buffers=*/true),
            LeftoverKind::kLargerArrays);
}

TEST(ChunkModel, CountsStreamsAndOps) {
  const BodySummary b = SimpleBody();
  neon::NeonTiming t;
  EXPECT_EQ(ChunkInstrs(b), 4u);  // 2 loads + 1 alu + 1 store
  EXPECT_EQ(ChunkCycles(b, t), 2 * t.mem_latency + t.alu_latency +
                                   t.mem_latency);
}

TEST(ChunkModel, InvariantLoadsBecomeFree) {
  BodySummary b = SimpleBody();
  b.loads[0].loop_invariant = true;
  EXPECT_EQ(ChunkInstrs(b), 3u);
}

TEST(CountLoopCost, ScalesWithIterations) {
  const BodySummary b = SimpleBody();
  DsaConfig cfg;
  neon::NeonTiming t;
  const RegionCost small = CostCountLoop(b, 64, cfg, t, 2);
  const RegionCost big = CostCountLoop(b, 640, cfg, t, 2);
  EXPECT_GT(big.neon_busy_cycles, small.neon_busy_cycles);
  EXPECT_GT(big.vector_instrs, small.vector_instrs);
  // Fixed overhead identical.
  EXPECT_EQ(big.overhead_cycles, small.overhead_cycles);
}

TEST(CountLoopCost, BeatsScalarForWideTypes) {
  BodySummary b = SimpleBody(isa::VecType::kI8);
  for (auto& s : b.loads) s.elem_bytes = 1;
  for (auto& s : b.stores) s.elem_bytes = 1;
  DsaConfig cfg;
  neon::NeonTiming t;
  const std::uint64_t n = 4096;
  const RegionCost c = CostCountLoop(b, n, cfg, t, 2);
  // Scalar issue alone would be ~ n*body_instrs/2.
  EXPECT_LT(c.total_cycles(), n * b.body_instrs / 2);
}

TEST(CountLoopCost, OverheadIncludesFlushAndFill) {
  const BodySummary b = SimpleBody();
  DsaConfig cfg;
  neon::NeonTiming t;
  const RegionCost c = CostCountLoop(b, 16, cfg, t, 2);
  EXPECT_GE(c.overhead_cycles, cfg.pipeline_flush_latency + t.pipeline_fill);
}

TEST(ConditionalCost, ChargesPerIterationMapping) {
  BodySummary b = SimpleBody();
  b.conditions = {CondRegion{10, 12, 1, 1, true},
                  CondRegion{13, 14, 0, 1, true}};
  b.scalar_per_iter = 4;
  DsaConfig cfg;
  neon::NeonTiming t;
  const RegionCost c = CostConditionalLoop(b, 100, cfg, t, 2);
  // 100 iterations * 4 residual instrs / width 2 = 200 cycles minimum.
  EXPECT_GE(c.scalar_addback_cycles, 200u);
  EXPECT_GT(c.array_map_accesses, 100u);
}

TEST(ConditionalCost, MoreConditionsCostMore) {
  BodySummary one = SimpleBody();
  one.conditions = {CondRegion{10, 12, 1, 1, true}};
  BodySummary two = one;
  two.conditions.push_back(CondRegion{13, 15, 2, 1, true});
  DsaConfig cfg;
  neon::NeonTiming t;
  EXPECT_GT(CostConditionalLoop(two, 64, cfg, t, 2).neon_busy_cycles,
            CostConditionalLoop(one, 64, cfg, t, 2).neon_busy_cycles);
}

TEST(SentinelCost, ChargesFullSpeculativeRangeOnEarlyExit) {
  const BodySummary b = SimpleBody();
  DsaConfig cfg;
  neon::NeonTiming t;
  // Loop stopped after 10 iterations but 64 were speculated.
  const RegionCost early = CostSentinelLoop(b, 10, 64, cfg, t, 2);
  const RegionCost exact = CostSentinelLoop(b, 64, 64, cfg, t, 2);
  EXPECT_EQ(early.neon_busy_cycles, exact.neon_busy_cycles);
  // But the per-iteration scalar stop-condition cost differs.
  EXPECT_LT(early.scalar_addback_cycles, exact.scalar_addback_cycles);
}

TEST(PartialCost, MoreWindowsMoreResync) {
  const BodySummary b = SimpleBody();
  DsaConfig cfg;
  neon::NeonTiming t;
  const RegionCost narrow = CostPartialLoop(b, 256, 8, cfg, t, 2);
  const RegionCost wide = CostPartialLoop(b, 256, 64, cfg, t, 2);
  EXPECT_GT(narrow.overhead_cycles, wide.overhead_cycles);
}

TEST(PartialCost, ZeroWindowIsEmpty) {
  const BodySummary b = SimpleBody();
  DsaConfig cfg;
  neon::NeonTiming t;
  EXPECT_EQ(CostPartialLoop(b, 100, 0, cfg, t, 2).total_cycles(), 0u);
}

TEST(RegionCost, AccumulationOperator) {
  RegionCost a;
  a.neon_busy_cycles = 5;
  a.vector_instrs = 2;
  RegionCost b;
  b.neon_busy_cycles = 7;
  b.scalar_instrs = 3;
  a += b;
  EXPECT_EQ(a.neon_busy_cycles, 12u);
  EXPECT_EQ(a.vector_instrs, 2u);
  EXPECT_EQ(a.scalar_instrs, 3u);
}

}  // namespace
}  // namespace dsa::engine
