// Fast-path vs reference-path identity: SystemConfig::reference_path
// forces the pre-optimization code paths through the whole stack (per-step
// opcode re-derivation, map branch predictor, per-byte cache walks,
// ungated engine observation, per-step run loop). Every simulated result
// must be bit-identical to the default fast path — this suite is the
// fine-grained companion to the bench oracle's differential gate.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/config.h"
#include "sim/report.h"
#include "sim/system.h"
#include "workloads/workloads.h"

namespace dsa::sim {
namespace {

using workloads::MakeBitCount;
using workloads::MakeDijkstra;
using workloads::MakeGaussian;
using workloads::MakeMatMul;
using workloads::MakeQSort;
using workloads::MakeRgbGray;
using workloads::MakeShiftAdd;
using workloads::MakeStrCopy;
using workloads::MakeSusanE;
using workloads::MakeVecAdd;

void ExpectIdentical(const Workload& wl, RunMode mode,
                     const SystemConfig& base_cfg = {}) {
  SystemConfig fast_cfg = base_cfg;
  fast_cfg.reference_path = false;
  SystemConfig ref_cfg = base_cfg;
  ref_cfg.reference_path = true;

  const RunResult fast = Run(wl, mode, fast_cfg);
  const RunResult ref = Run(wl, mode, ref_cfg);

  const std::string tag =
      wl.name + " in " + std::string(ToString(mode));
  EXPECT_EQ(fast.output_ok, ref.output_ok) << tag;
  EXPECT_EQ(fast.cycles, ref.cycles) << tag;
  EXPECT_EQ(fast.output_digest, ref.output_digest) << tag;
  // FormatReport covers every simulated stat the report surfaces (CPU
  // counters, cache hits/misses, DRAM, DSA, energy) in one comparison.
  EXPECT_EQ(FormatReport(fast), FormatReport(ref)) << tag;
}

std::vector<Workload> SmallMatrix() {
  // Small sizes keep the doubled (fast + reference) runs cheap while
  // still exercising vector leftovers, takeovers and cooldowns.
  std::vector<Workload> wls;
  wls.push_back(MakeVecAdd(257));
  wls.push_back(MakeMatMul(16));
  wls.push_back(MakeRgbGray(1000));
  wls.push_back(MakeGaussian(32, 24));
  wls.push_back(MakeSusanE(2048));
  wls.push_back(MakeQSort(512));
  wls.push_back(MakeDijkstra(24));
  wls.push_back(MakeBitCount(1024));
  wls.push_back(MakeStrCopy(500));
  wls.push_back(MakeShiftAdd(512, 4));
  return wls;
}

TEST(ReferencePath, AllWorkloadsAllModesBitIdentical) {
  for (const Workload& wl : SmallMatrix()) {
    for (const RunMode m : {RunMode::kScalar, RunMode::kAutoVec,
                            RunMode::kHandVec, RunMode::kDsa}) {
      ExpectIdentical(wl, m);
    }
  }
}

TEST(ReferencePath, DsaOriginalConfigBitIdentical) {
  // The Article-2 "Original" DSA parameterization takes different
  // detection/cooldown paths than the extended default; the identity must
  // hold there too.
  SystemConfig cfg;
  cfg.dsa = engine::DsaConfig::Original();
  for (const Workload& wl :
       {MakeVecAdd(257), MakeMatMul(16), MakeRgbGray(1000)}) {
    ExpectIdentical(wl, RunMode::kDsa, cfg);
  }
}

TEST(ReferencePath, HostCountersExistButAreNotCompared) {
  // host_steps must agree (same instruction stream); host wall time is
  // host-dependent and explicitly outside the identity contract.
  const Workload wl = MakeVecAdd(257);
  SystemConfig ref_cfg;
  ref_cfg.reference_path = true;
  const RunResult fast = sim::Run(wl, RunMode::kScalar, {});
  const RunResult ref = sim::Run(wl, RunMode::kScalar, ref_cfg);
  EXPECT_EQ(fast.host_steps, ref.host_steps);
  EXPECT_GT(fast.host_steps, 0u);
}

}  // namespace
}  // namespace dsa::sim
