// SIMD instruction generation tests (Section 4.7, Fig. 25): capture the
// takeover plan the engine produces for a loop, generate the NEON code,
// execute it on a fresh machine, and require bit-identical memory with the
// scalar loop's own execution.
#include <gtest/gtest.h>

#include <optional>

#include "cpu/cpu.h"
#include "engine/engine.h"
#include "engine/simd_gen.h"
#include "prog/assembler.h"

namespace dsa::engine {
namespace {

using isa::Cond;
using isa::Opcode;
using prog::Assembler;

struct Captured {
  TakeoverPlan plan;
  std::array<std::uint32_t, isa::kNumScalarRegs> regs_at_takeover{};
  std::vector<std::uint8_t> memory_after_scalar;
};

// Runs `p` (scalar) with the engine attached until the first takeover
// plan; records the register file at that point, then finishes the program
// *scalar* and snapshots memory.
std::optional<Captured> Capture(const prog::Program& p,
                                const std::function<void(mem::Memory&)>& init,
                                std::size_t mem_bytes = 1 << 17) {
  mem::Memory memory(mem_bytes);
  if (init) init(memory);
  mem::Hierarchy h{mem::Hierarchy::Config{}};
  cpu::Cpu cpu(p, memory, h);
  DsaEngine engine{DsaConfig{}, cpu::TimingConfig{}};

  std::optional<Captured> cap;
  int steps = 0;
  while (!cpu.halted() && ++steps < 1000000) {
    const cpu::Retired r = cpu.Step();
    if (r.instr == nullptr) break;
    if (!cap.has_value()) {
      const auto plan = engine.Observe(r, cpu.state());
      if (plan.has_value()) {
        Captured c;
        c.plan = *plan;
        c.regs_at_takeover = cpu.state().regs;
        cap = c;
      }
    }
  }
  if (!cap.has_value()) return std::nullopt;
  cap->memory_after_scalar = memory.raw();
  return cap;
}

// Executes the generated SIMD loop over `iterations` elements starting
// from the captured register state and initial memory; returns memory.
std::vector<std::uint8_t> RunGenerated(const SimdProgram& gen,
                                       const Captured& cap,
                                       const std::function<void(mem::Memory&)>& init,
                                       std::uint64_t iterations,
                                       std::size_t mem_bytes = 1 << 17) {
  const int count_reg = 9;  // free in the test loops below
  const prog::Program loop = gen.AsLoop(count_reg);
  mem::Memory memory(mem_bytes);
  if (init) init(memory);
  mem::Hierarchy h{mem::Hierarchy::Config{}};
  cpu::Cpu cpu(loop, memory, h);
  cpu.state().regs = cap.regs_at_takeover;
  cpu.state().regs[count_reg] = static_cast<std::uint32_t>(iterations);
  int steps = 0;
  while (!cpu.halted() && ++steps < 1000000) cpu.Step();
  return memory.raw();
}

void InitWords(mem::Memory& m) {
  std::uint32_t s = 0xA5A5A5A5u;
  for (std::uint32_t a = 0x1000; a < 0x9000; a += 4) {
    s ^= s << 13;
    s ^= s >> 17;
    s ^= s << 5;
    m.Write32(a, s % 1000);
  }
}

// The running-example loop: v[i] = a[i] + b[i] over 100 int32 elements.
prog::Program AddLoop(int n) {
  Assembler as;
  as.Movi(0, 0x1000);
  as.Movi(1, 0x3000);
  as.Movi(2, 0x10000);
  as.Movi(3, n);
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Ldr(4, 0, 4);
  as.Ldr(5, 1, 4);
  as.Alu(Opcode::kAdd, 6, 4, 5);
  as.Str(6, 2, 4);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, loop);
  as.Halt();
  return as.Finish();
}

TEST(SimdGen, AddLoopShapeMatchesFig25) {
  // 100-iteration loop; takeover after 3 analysis iterations.
  const auto cap = Capture(AddLoop(100), InitWords);
  ASSERT_TRUE(cap.has_value());
  SimdGenError err;
  const auto gen = GenerateSimd(cap->plan.record.body, cap->regs_at_takeover,
                                {11, 12}, &err);
  ASSERT_TRUE(gen.has_value()) << err.reason;
  // Fig. 25: two vector loads, one vadd, one vector store per chunk.
  ASSERT_EQ(gen->chunk.size(), 4u);
  EXPECT_EQ(gen->chunk[0].op, Opcode::kVld1);
  EXPECT_EQ(gen->chunk[1].op, Opcode::kVld1);
  EXPECT_EQ(gen->chunk[2].op, Opcode::kVadd);
  EXPECT_EQ(gen->chunk[3].op, Opcode::kVst1);
  EXPECT_TRUE(gen->setup.empty());
}

TEST(SimdGen, GeneratedCodeMatchesScalarExecution) {
  const int n = 100;
  const auto cap = Capture(AddLoop(n), InitWords);
  ASSERT_TRUE(cap.has_value());
  const auto gen = GenerateSimd(cap->plan.record.body, cap->regs_at_takeover,
                                {11, 12});
  ASSERT_TRUE(gen.has_value());
  // 96 of the remaining 97 iterations are a lane multiple; the generated
  // chunk loop covers those, so compare that region only.
  const std::uint64_t covered = 96;
  const auto vec_mem = RunGenerated(*gen, *cap, InitWords, covered);
  // Scalar output: v[3..98] must match (iterations 4..99 cover them).
  for (std::uint64_t i = 3; i < 3 + covered; ++i) {
    const std::size_t addr = 0x10000 + 4 * i;
    EXPECT_EQ(vec_mem[addr], cap->memory_after_scalar[addr]) << i;
  }
}

// Multiply-accumulate with an invariant multiplier (the MM inner loop).
TEST(SimdGen, MlaWithInvariantBroadcast) {
  Assembler as;
  as.Movi(0, 0x1000);  // B row
  as.Movi(2, 0x10000); // C row
  as.Movi(4, 7);       // a_ik
  as.Movi(3, 64);
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Ldr(8, 0, 4);
  as.Ldr(9, 2);
  as.Mla(9, 8, 4, 9);
  as.Str(9, 2, 4);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, loop);
  as.Halt();
  const auto cap = Capture(as.Finish(), InitWords);
  ASSERT_TRUE(cap.has_value());
  SimdGenError err;
  const auto gen = GenerateSimd(cap->plan.record.body, cap->regs_at_takeover,
                                {11, 12}, &err);
  ASSERT_TRUE(gen.has_value()) << err.reason;
  // The invariant multiplier becomes one vdup in the setup code.
  ASSERT_EQ(gen->setup.size(), 1u);
  EXPECT_EQ(gen->setup[0].op, Opcode::kVdup);

  const auto vec_mem = RunGenerated(*gen, *cap, InitWords, 60);
  for (std::uint64_t i = 3; i < 63; ++i) {
    const std::size_t addr = 0x10000 + 4 * i;
    EXPECT_EQ(vec_mem[addr], cap->memory_after_scalar[addr]) << i;
  }
}

// Shift amounts are baked in from the live register file.
TEST(SimdGen, RuntimeShiftBecomesImmediate) {
  Assembler as;
  as.Movi(0, 0x1000);
  as.Movi(2, 0x10000);
  as.Movi(7, 3);  // runtime shift amount
  as.Movi(3, 64);
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Ldrh(4, 0, 2);
  as.Alu(Opcode::kLsr, 5, 4, 7);
  as.Strh(5, 2, 2);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, loop);
  as.Halt();
  const auto cap = Capture(as.Finish(), InitWords);
  ASSERT_TRUE(cap.has_value());
  const auto gen = GenerateSimd(cap->plan.record.body, cap->regs_at_takeover,
                                {11, 12});
  ASSERT_TRUE(gen.has_value());
  bool found_shift = false;
  for (const auto& i : gen->chunk) {
    if (i.op == Opcode::kVshr) {
      found_shift = true;
      EXPECT_EQ(i.imm, 3);
    }
  }
  EXPECT_TRUE(found_shift);
  const auto vec_mem = RunGenerated(*gen, *cap, InitWords, 56);
  for (std::uint64_t i = 3; i < 3 + 56; ++i) {
    const std::size_t addr = 0x10000 + 2 * i;
    EXPECT_EQ(vec_mem[addr], cap->memory_after_scalar[addr]) << i;
  }
}

// Immediate ALU operands become broadcast constants.
TEST(SimdGen, ImmediateOperandBroadcast) {
  Assembler as;
  as.Movi(0, 0x1000);
  as.Movi(2, 0x10000);
  as.Movi(3, 64);
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Ldr(4, 0, 4);
  as.AluImm(Opcode::kAddi, 5, 4, 1000);
  as.Str(5, 2, 4);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, loop);
  as.Halt();
  const auto cap = Capture(as.Finish(), InitWords);
  ASSERT_TRUE(cap.has_value());
  const auto gen = GenerateSimd(cap->plan.record.body, cap->regs_at_takeover,
                                {11, 12});
  ASSERT_TRUE(gen.has_value());
  // setup: movi scratch, #1000 + vdup.
  ASSERT_EQ(gen->setup.size(), 2u);
  EXPECT_EQ(gen->setup[0].op, Opcode::kMovi);
  EXPECT_EQ(gen->setup[0].imm, 1000);
  EXPECT_EQ(gen->setup[1].op, Opcode::kVdup);
  const auto vec_mem = RunGenerated(*gen, *cap, InitWords, 60);
  for (std::uint64_t i = 3; i < 63; ++i) {
    const std::size_t addr = 0x10000 + 4 * i;
    EXPECT_EQ(vec_mem[addr], cap->memory_after_scalar[addr]) << i;
  }
}

TEST(SimdGen, ConditionalBodiesRefused) {
  BodySummary body;
  body.conditions.push_back(CondRegion{});
  SimdGenError err;
  EXPECT_FALSE(GenerateSimd(body, {}, {11}, &err).has_value());
  EXPECT_FALSE(err.reason.empty());
}

TEST(SimdGen, AsrRefused) {
  BodySummary body;
  body.vec_type = isa::VecType::kI32;
  isa::Instruction i;
  i.op = Opcode::kAsr;
  i.rd = 5;
  i.rn = 4;
  i.rm = 7;
  body.code.push_back(i);
  SimdGenError err;
  EXPECT_FALSE(GenerateSimd(body, {}, {11}, &err).has_value());
}

TEST(SimdGen, AsLoopIsRunnableAndBounded) {
  const auto cap = Capture(AddLoop(64), InitWords);
  ASSERT_TRUE(cap.has_value());
  const auto gen = GenerateSimd(cap->plan.record.body, cap->regs_at_takeover,
                                {11, 12});
  ASSERT_TRUE(gen.has_value());
  const prog::Program p = gen->AsLoop(9);
  EXPECT_GT(p.size(), gen->chunk.size());
  EXPECT_EQ(p.at(p.size() - 1).op, Opcode::kHalt);
}

}  // namespace
}  // namespace dsa::engine
