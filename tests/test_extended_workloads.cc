// Extended-suite tests: functional matrix, DSA classification expectations
// and size sweeps for the kernels beyond the paper's benchmark list.
#include <gtest/gtest.h>

#include "sim/system.h"
#include "workloads/extended.h"

namespace dsa::workloads {
namespace {

using sim::RunMode;
using sim::RunResult;
using sim::Workload;

void ExpectAllModesCorrect(const Workload& wl) {
  for (const RunMode m : {RunMode::kScalar, RunMode::kAutoVec,
                          RunMode::kHandVec, RunMode::kDsa}) {
    const RunResult r = sim::Run(wl, m, {});
    EXPECT_TRUE(r.output_ok)
        << wl.name << " in " << std::string(ToString(m));
  }
}

TEST(ExtendedSuite, EveryKernelEveryModeCorrect) {
  for (const Workload& wl : ExtendedSet()) {
    ExpectAllModesCorrect(wl);
  }
}

class FirSizes : public ::testing::TestWithParam<int> {};
TEST_P(FirSizes, AllModesCorrect) {
  ExpectAllModesCorrect(MakeFir(GetParam()));
}
INSTANTIATE_TEST_SUITE_P(Sweep, FirSizes,
                         ::testing::Values(4, 5, 7, 64, 129, 1000));

class MemCopySizes : public ::testing::TestWithParam<int> {};
TEST_P(MemCopySizes, AllModesCorrect) {
  ExpectAllModesCorrect(MakeMemCopy(GetParam()));
}
INSTANTIATE_TEST_SUITE_P(Sweep, MemCopySizes,
                         ::testing::Values(15, 16, 17, 31, 256, 1000));

class AlphaValues : public ::testing::TestWithParam<int> {};
TEST_P(AlphaValues, AllModesCorrect) {
  ExpectAllModesCorrect(MakeAlphaBlend(2048, GetParam()));
}
INSTANTIATE_TEST_SUITE_P(Sweep, AlphaValues,
                         ::testing::Values(0, 1, 96, 128, 255, 256));

TEST(Fir, VectorizedByDsaWithFourLoadStreams) {
  const RunResult r = sim::Run(MakeFir(1024), RunMode::kDsa, {});
  ASSERT_TRUE(r.dsa.has_value());
  EXPECT_EQ(r.dsa->takeovers, 1u);
  EXPECT_EQ(r.dsa->loops_by_class.count(engine::LoopClass::kCount), 1u);
  EXPECT_TRUE(r.output_ok);
}

TEST(MemCopy, SixteenLanesGiveTheBiggestSpeedup) {
  const Workload wl = MakeMemCopy(32768);
  const RunResult scalar = sim::Run(wl, RunMode::kScalar, {});
  const RunResult ds = sim::Run(wl, RunMode::kDsa, {});
  EXPECT_GT(SpeedupOver(scalar, ds), 2.0);
}

TEST(AlphaBlend, RuntimeAlphaIsInvariantNotDynamicRange) {
  // The runtime-loaded alpha must not stop vectorization: it is a
  // loop-invariant operand, not a trip-count property.
  const RunResult r = sim::Run(MakeAlphaBlend(), RunMode::kDsa, {});
  EXPECT_GE(r.dsa->takeovers, 1u);
}

TEST(Histogram, IndirectAddressingRejectedEverywhere) {
  const Workload wl = MakeHistogram();
  const RunResult r = sim::Run(wl, RunMode::kDsa, {});
  EXPECT_EQ(r.dsa->takeovers, 0u);
  EXPECT_EQ(r.dsa->rejects_by_reason.count(
                engine::RejectReason::kNonUnitStride),
            1u);
  EXPECT_TRUE(r.output_ok);
  // And the DSA must not slow it down.
  const RunResult scalar = sim::Run(wl, RunMode::kScalar, {});
  EXPECT_LE(r.cycles, scalar.cycles + scalar.cycles / 100);
}

TEST(Histogram, SkewedDataStillCorrect) {
  ExpectAllModesCorrect(MakeHistogram(4096, 2));
  ExpectAllModesCorrect(MakeHistogram(512, 256));
}

}  // namespace
}  // namespace dsa::workloads
