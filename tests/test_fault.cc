// Fault-injection + speculation-guard tests: the --faults grammar, the
// deterministic injector, bit-identical rollback recovery for every fault
// kind at the first / middle / last opportunity on the fast and reference
// paths, loop blacklisting after repeated misspeculation, DSA-cache
// corruption detection, the BatchRunner watchdog + retry policy, and the
// DsaError context that the harness attaches at the System boundary.
#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "prog/assembler.h"
#include "sim/error.h"
#include "sim/oracle.h"
#include "sim/runner.h"
#include "sim/system.h"
#include "trace/trace.h"
#include "workloads/workloads.h"

namespace dsa::sim {
namespace {

using fault::FaultKind;
using fault::FaultPlan;
using fault::ParseFaultPlan;

// ---------------------------------------------------------------------------
// Grammar.

TEST(FaultPlanGrammar, EmptySpecDisablesInjection) {
  const FaultPlan plan = ParseFaultPlan("");
  EXPECT_FALSE(plan.enabled());
  EXPECT_TRUE(plan.specs.empty());
}

TEST(FaultPlanGrammar, RoundTripsThroughFormat) {
  const char* spec = "cidp@0,bitflip@2+3,mem@5+;seed=9";
  const FaultPlan plan = ParseFaultPlan(spec);
  ASSERT_EQ(plan.specs.size(), 3u);
  EXPECT_EQ(plan.specs[0].kind, FaultKind::kCidpMispredict);
  EXPECT_EQ(plan.specs[0].trigger, 0u);
  EXPECT_EQ(plan.specs[0].count, 1u);
  EXPECT_EQ(plan.specs[1].kind, FaultKind::kLaneBitflip);
  EXPECT_EQ(plan.specs[1].trigger, 2u);
  EXPECT_EQ(plan.specs[1].count, 3u);
  EXPECT_EQ(plan.specs[2].kind, FaultKind::kMemFault);
  EXPECT_EQ(plan.specs[2].count, UINT64_MAX);
  EXPECT_TRUE(plan.seed_explicit);
  EXPECT_EQ(plan.seed, 9u);
  EXPECT_EQ(fault::FormatFaultPlan(plan), spec);
}

TEST(FaultPlanGrammar, RejectsMalformedSpecs) {
  for (const char* bad : {"bogus@1", "cidp", "cidp@", "cidp@x", "cidp@1+0",
                          "cidp@1,", ",cidp@1", "cidp@1;sd=3",
                          "cidp@1;seed=", "cidp@1;seed=x"}) {
    EXPECT_THROW(ParseFaultPlan(bad), std::invalid_argument) << bad;
  }
}

// ---------------------------------------------------------------------------
// Injector determinism.

TEST(FaultInjector, SamePlanReplaysIdentically) {
  const FaultPlan plan = ParseFaultPlan("cidp@1+2,mem@0;seed=42");
  fault::FaultInjector a(plan);
  fault::FaultInjector b(plan);
  for (int i = 0; i < 16; ++i) {
    for (int k = 0; k < fault::kNumFaultKinds; ++k) {
      const FaultKind kind = static_cast<FaultKind>(k);
      EXPECT_EQ(a.Fire(kind), b.Fire(kind));
      EXPECT_EQ(a.Rand(kind), b.Rand(kind));
    }
  }
  EXPECT_EQ(a.fired(), b.fired());
  EXPECT_EQ(a.opportunities(), b.opportunities());
}

TEST(FaultInjector, SeedSelectsDistinctRandStreams) {
  fault::FaultInjector a(ParseFaultPlan("cidp@0;seed=1"));
  fault::FaultInjector b(ParseFaultPlan("cidp@0;seed=2"));
  EXPECT_NE(a.Rand(FaultKind::kCidpMispredict),
            b.Rand(FaultKind::kCidpMispredict));
  // Per-kind streams of one injector differ too.
  EXPECT_NE(a.Rand(FaultKind::kLaneBitflip), a.Rand(FaultKind::kMemFault));
}

TEST(FaultInjector, FireMatchesTriggerWindow) {
  fault::FaultInjector inj(ParseFaultPlan("lane@2+2"));
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(inj.Fire(FaultKind::kWrongLane));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, true, false, false}));
  EXPECT_EQ(inj.total_fired(), 2u);
}

// ---------------------------------------------------------------------------
// Bit-identical recovery: every workload x every fault kind x triggers
// {first, middle, last opportunity}, on the fast path and --reference.

const std::vector<Workload>& RecoverySuite() {
  // Small instances keep the full sweep quick; every builder is exercised.
  static const std::vector<Workload> wls = [] {
    std::vector<Workload> v;
    v.push_back(workloads::MakeVecAdd(1024));
    v.push_back(workloads::MakeMatMul(24));
    v.push_back(workloads::MakeRgbGray(4096));
    v.push_back(workloads::MakeGaussian(48, 32));
    v.push_back(workloads::MakeSusanE(4096));
    v.push_back(workloads::MakeQSort(512));
    v.push_back(workloads::MakeDijkstra(32));
    v.push_back(workloads::MakeBitCount(2048));
    v.push_back(workloads::MakeStrCopy(1500));
    v.push_back(workloads::MakeShiftAdd(1024, 8));
    return v;
  }();
  return wls;
}

using RecoveryCase = std::tuple<int, bool>;  // workload index, reference path

class RecoveryIsBitIdentical : public ::testing::TestWithParam<RecoveryCase> {};

TEST_P(RecoveryIsBitIdentical, EveryKindEveryTrigger) {
  const auto [idx, reference] = GetParam();
  const Workload& wl = RecoverySuite().at(idx);
  SystemConfig cfg;
  cfg.reference_path = reference;

  const RunResult base = ::dsa::sim::Run(wl, RunMode::kDsa, cfg);
  ASSERT_TRUE(base.output_ok);

  // Probe run: every kind armed with an unreachable trigger counts the
  // opportunities without firing anything — and must be invisible.
  SystemConfig probe = cfg;
  probe.faults = ParseFaultPlan(
      "cidp@999999999,cache@999999999,lane@999999999,sentinel@999999999,"
      "bitflip@999999999,mem@999999999;seed=11");
  const RunResult pr = ::dsa::sim::Run(wl, RunMode::kDsa, probe);
  ASSERT_TRUE(pr.faults.has_value());
  EXPECT_EQ(pr.faults->total_fired(), 0u);
  EXPECT_EQ(pr.output_digest, base.output_digest)
      << "armed-but-silent injector perturbed " << wl.name;

  for (int k = 0; k < fault::kNumFaultKinds; ++k) {
    const std::uint64_t opp = pr.faults->opportunities[k];
    if (opp == 0) continue;  // kind never applicable to this workload
    const std::string kind =
        std::string(ToString(static_cast<FaultKind>(k)));
    const std::set<std::uint64_t> triggers = {0, opp / 2, opp - 1};
    for (const std::uint64_t t : triggers) {
      SystemConfig fcfg = cfg;
      fcfg.faults =
          ParseFaultPlan(kind + "@" + std::to_string(t) + ";seed=11");
      const RunResult fr = ::dsa::sim::Run(wl, RunMode::kDsa, fcfg);
      ASSERT_TRUE(fr.faults.has_value());
      EXPECT_TRUE(fr.output_ok)
          << wl.name << " " << kind << "@" << t << " broke the golden check";
      EXPECT_EQ(fr.output_digest, base.output_digest)
          << wl.name << " " << kind << "@" << t
          << " diverged from the fault-free digest (fired "
          << fr.faults->total_fired() << ")";
    }
  }
}

std::string RecoveryCaseName(
    const ::testing::TestParamInfo<RecoveryCase>& info) {
  const auto [idx, reference] = info.param;
  std::string n = RecoverySuite().at(idx).name +
                  (reference ? "_reference" : "_fast");
  for (char& c : n) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return n;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RecoveryIsBitIdentical,
    ::testing::Combine(::testing::Range(0, 10), ::testing::Bool()),
    RecoveryCaseName);

// ---------------------------------------------------------------------------
// Rollback, blacklisting, cache corruption.

TEST(SpeculationGuard, RepeatedMisspeculationBlacklistsTheLoop) {
  const Workload wl = workloads::MakeDijkstra(64);
  const RunResult base = ::dsa::sim::Run(wl, RunMode::kDsa, {});
  SystemConfig cfg;
  cfg.faults = ParseFaultPlan("cidp@0+;seed=3");  // misspeculate every plan
  const RunResult r = ::dsa::sim::Run(wl, RunMode::kDsa, cfg);
  ASSERT_TRUE(r.dsa.has_value());
  EXPECT_GE(r.dsa->rollbacks, cfg.dsa.blacklist_strikes);
  EXPECT_GE(r.dsa->blacklisted_loops, 1u);
  EXPECT_LE(r.dsa->blacklisted_loops, r.dsa->rollbacks);
  // The run still completes and still produces the scalar-exact output.
  EXPECT_TRUE(r.output_ok);
  EXPECT_EQ(r.output_digest, base.output_digest);
}

TEST(SpeculationGuard, CacheCorruptionIsDetectedAndDiscarded) {
  const Workload wl = workloads::MakeMatMul(32);
  const RunResult base = ::dsa::sim::Run(wl, RunMode::kDsa, {});
  SystemConfig cfg;
  cfg.faults = ParseFaultPlan("cache@0+;seed=5");
  const RunResult r = ::dsa::sim::Run(wl, RunMode::kDsa, cfg);
  ASSERT_TRUE(r.dsa.has_value());
  ASSERT_TRUE(r.faults.has_value());
  EXPECT_GT(r.faults->fired[static_cast<int>(FaultKind::kCacheCorrupt)], 0u);
  EXPECT_GT(r.dsa->cache_corruptions_detected, 0u);
  EXPECT_TRUE(r.output_ok);
  EXPECT_EQ(r.output_digest, base.output_digest);
}

TEST(SpeculationGuard, RollbackEmitsTraceEventsAndPassesOracle) {
  const Workload wl = workloads::MakeVecAdd(1024);
  SystemConfig cfg;
  cfg.trace.enabled = true;
  cfg.faults = ParseFaultPlan("bitflip@0;seed=7");
  const RunResult r = ::dsa::sim::Run(wl, RunMode::kDsa, cfg);
  ASSERT_TRUE(r.dsa.has_value());
  ASSERT_TRUE(r.trace != nullptr);
  EXPECT_EQ(r.dsa->rollbacks, 1u);
  EXPECT_EQ(r.trace->kind_counts[static_cast<int>(
                trace::EventKind::kFaultInjected)],
            1u);
  EXPECT_EQ(r.trace->kind_counts[static_cast<int>(
                trace::EventKind::kMisspecRollback)],
            1u);
  // The oracle's trace cross-checks must hold with rollbacks in play.
  EXPECT_TRUE(oracle::CheckInvariants(r, "rollback-trace").empty());
}

// ---------------------------------------------------------------------------
// BatchRunner hardening: watchdog, retry policy, faulted-cell JSON.

Workload InfiniteLoopWorkload() {
  // r0 = 1; while (r0 > 0) {} — never halts, so only the step budget can
  // end the run.
  prog::Assembler as;
  as.Movi(0, 1);
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Cmpi(0, 0);
  as.B(isa::Cond::kGt, loop);
  as.Halt();
  Workload wl;
  wl.name = "InfiniteLoop";
  wl.mem_bytes = 1 << 16;
  wl.scalar = as.Finish();
  wl.check = [](const mem::Memory&) { return true; };
  return wl;
}

TEST(BatchRunnerWatchdog, StepBudgetFaultsTheCellAndSparesSiblings) {
  RunnerOptions opts;
  opts.jobs = 2;
  opts.repeats = 1;
  opts.oracle = false;
  opts.max_cell_steps = 20000;
  BatchRunner runner(opts);
  const std::string bad =
      runner.Submit(InfiniteLoopWorkload(), RunMode::kScalar);
  const std::string good =
      runner.Submit(workloads::MakeVecAdd(512), RunMode::kScalar);
  const BatchReport report = runner.Finish();

  EXPECT_EQ(report.faulted_cells, 1u);
  const JobOutcome& sick = runner.outcomes().at(bad);
  EXPECT_EQ(sick.cell_status, "faulted");
  EXPECT_TRUE(sick.runs.empty());
  EXPECT_NE(sick.error.find("step-limit"), std::string::npos) << sick.error;
  // kStepLimit is deterministic: no retry was attempted.
  EXPECT_EQ(sick.attempts, 1u);
  const JobOutcome& healthy = runner.outcomes().at(good);
  EXPECT_EQ(healthy.cell_status, "ok");
  ASSERT_EQ(healthy.runs.size(), 1u);
  EXPECT_TRUE(healthy.result().output_ok);

  // The poisoned cell is visible in the JSON, not silently dropped.
  const std::string path = ::testing::TempDir() + "BENCH_watchdog_test.json";
  ASSERT_TRUE(WriteBenchJson(path, "watchdog_test", runner, report));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  std::remove(path.c_str());
  EXPECT_NE(json.find("\"faulted_cells\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"cell_status\": \"faulted\""), std::string::npos);
  EXPECT_NE(json.find("\"cell_status\": \"ok\""), std::string::npos);
  EXPECT_NE(json.find("step-limit"), std::string::npos);
}

TEST(BatchRunnerRetry, TransientErrorsGetBoundedRetries) {
  std::atomic<int> calls{0};
  RunnerOptions opts;
  opts.jobs = 1;
  opts.repeats = 1;
  opts.oracle = false;
  opts.max_retries = 2;
  opts.retry_backoff_ms = 0;
  opts.run_fn = [&](const Workload& wl, RunMode mode,
                    const SystemConfig& cfg) {
    if (calls.fetch_add(1) == 0) {
      throw DsaError(DsaErrorCode::kTransient, "flaky harness hiccup");
    }
    return ::dsa::sim::Run(wl, mode, cfg);
  };
  BatchRunner runner(opts);
  const std::string key =
      runner.Submit(workloads::MakeVecAdd(256), RunMode::kScalar);
  (void)runner.Finish();
  const JobOutcome& out = runner.outcomes().at(key);
  EXPECT_EQ(out.cell_status, "ok");
  EXPECT_EQ(out.attempts, 2u);
  ASSERT_EQ(out.runs.size(), 1u);
  EXPECT_TRUE(out.result().output_ok);
}

TEST(BatchRunnerRetry, RetriesExhaustToFaultedCell) {
  RunnerOptions opts;
  opts.jobs = 1;
  opts.repeats = 1;
  opts.oracle = false;
  opts.max_retries = 1;
  opts.retry_backoff_ms = 0;
  opts.run_fn = [](const Workload&, RunMode,
                   const SystemConfig&) -> RunResult {
    throw DsaError(DsaErrorCode::kTransient, "never recovers");
  };
  BatchRunner runner(opts);
  const std::string key =
      runner.Submit(workloads::MakeVecAdd(256), RunMode::kScalar);
  const BatchReport report = runner.Finish();
  const JobOutcome& out = runner.outcomes().at(key);
  EXPECT_EQ(out.cell_status, "faulted");
  EXPECT_EQ(out.attempts, 2u);  // first try + one retry
  EXPECT_EQ(report.faulted_cells, 1u);
}

// ---------------------------------------------------------------------------
// DsaError context at the System boundary.

TEST(DsaErrorBoundary, StepLimitCarriesWorkloadAndStepContext) {
  const Workload wl = workloads::MakeVecAdd(4096);
  SystemConfig cfg;
  cfg.max_steps = 1000;
  try {
    (void)::dsa::sim::Run(wl, RunMode::kScalar, cfg);
    FAIL() << "expected DsaError";
  } catch (const DsaError& e) {
    EXPECT_EQ(e.code(), DsaErrorCode::kStepLimit);
    EXPECT_FALSE(e.transient());
    EXPECT_EQ(e.workload(), "VecAdd");
    EXPECT_GT(e.step(), 1000u);
    EXPECT_NE(std::string(e.what()).find("[step-limit]"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("workload=VecAdd"),
              std::string::npos);
  }
}

TEST(DsaErrorBoundary, OutOfRangeAccessIsWrappedWithContext) {
  prog::Assembler as;
  as.Movi(0, 0x7ffffff0);  // far outside the 64 kB image
  as.Ldr(1, 0, 4);
  as.Halt();
  Workload wl;
  wl.name = "oob";
  wl.mem_bytes = 1 << 16;
  wl.scalar = as.Finish();
  wl.check = [](const mem::Memory&) { return true; };
  try {
    (void)::dsa::sim::Run(wl, RunMode::kScalar, {});
    FAIL() << "expected DsaError";
  } catch (const DsaError& e) {
    EXPECT_EQ(e.code(), DsaErrorCode::kMemOutOfRange);
    EXPECT_EQ(e.workload(), "oob");
    EXPECT_NE(std::string(e.what()).find("[mem-out-of-range]"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace dsa::sim
