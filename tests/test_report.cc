#include <gtest/gtest.h>

#include "sim/report.h"
#include "workloads/workloads.h"

namespace dsa::sim {
namespace {

TEST(Report, ContainsCoreCounters) {
  const RunResult r = sim::Run(workloads::MakeVecAdd(256), RunMode::kScalar, {});
  const std::string s = FormatReport(r);
  EXPECT_NE(s.find("sim.cycles "), std::string::npos);
  EXPECT_NE(s.find("cpu.retired_total "), std::string::npos);
  EXPECT_NE(s.find("l1.hits "), std::string::npos);
  EXPECT_NE(s.find("energy.total "), std::string::npos);
  EXPECT_NE(s.find("VecAdd"), std::string::npos);
  EXPECT_NE(s.find("arm-original"), std::string::npos);
}

TEST(Report, DsaSectionOnlyInDsaMode) {
  const Workload wl = workloads::MakeVecAdd(256);
  const std::string scalar = FormatReport(sim::Run(wl, RunMode::kScalar, {}));
  const std::string dsa = FormatReport(sim::Run(wl, RunMode::kDsa, {}));
  EXPECT_EQ(scalar.find("dsa.takeovers"), std::string::npos);
  EXPECT_NE(dsa.find("dsa.takeovers 1"), std::string::npos);
  EXPECT_NE(dsa.find("dsa.loops.count 1"), std::string::npos);
}

TEST(Report, OutputFlagReflected) {
  const RunResult r = sim::Run(workloads::MakeVecAdd(64), RunMode::kDsa, {});
  EXPECT_NE(FormatReport(r).find("sim.output_ok 1"), std::string::npos);
}

TEST(Report, StableAcrossIdenticalRuns) {
  const Workload wl = workloads::MakeBitCount(512);
  const std::string a = FormatReport(sim::Run(wl, RunMode::kDsa, {}));
  const std::string b = FormatReport(sim::Run(wl, RunMode::kDsa, {}));
  EXPECT_EQ(a, b);  // the whole pipeline is deterministic
}

TEST(SimUtils, SpeedupOverIsRatio) {
  RunResult base;
  base.cycles = 200;
  RunResult x;
  x.cycles = 100;
  EXPECT_DOUBLE_EQ(SpeedupOver(base, x), 2.0);
  RunResult zero;
  EXPECT_DOUBLE_EQ(SpeedupOver(base, zero), 0.0);
}

TEST(SimUtils, ModeNames) {
  EXPECT_EQ(ToString(RunMode::kScalar), "arm-original");
  EXPECT_EQ(ToString(RunMode::kAutoVec), "neon-autovec");
  EXPECT_EQ(ToString(RunMode::kHandVec), "neon-handvec");
  EXPECT_EQ(ToString(RunMode::kDsa), "neon-dsa");
}

TEST(SimUtils, DetectionLatencyZeroWithoutDsa) {
  const RunResult r = sim::Run(workloads::MakeVecAdd(64), RunMode::kScalar, {});
  EXPECT_DOUBLE_EQ(r.detection_latency_pct(), 0.0);
}

}  // namespace
}  // namespace dsa::sim
