// Latch trip-count estimation: closed form vs. brute-force evaluation of
// the affine latch condition across every condition code.
#include <gtest/gtest.h>

#include <optional>
#include <tuple>

#include "engine/tracker.h"

namespace dsa::engine {
namespace {

bool CondHolds(isa::Cond c, std::int64_t diff) {
  switch (c) {
    case isa::Cond::kAl: return true;
    case isa::Cond::kEq: return diff == 0;
    case isa::Cond::kNe: return diff != 0;
    case isa::Cond::kLt: return diff < 0;
    case isa::Cond::kGe: return diff >= 0;
    case isa::Cond::kGt: return diff > 0;
    case isa::Cond::kLe: return diff <= 0;
  }
  return false;
}

std::optional<std::int64_t> BruteForce(std::int64_t a, std::int64_t b,
                                       isa::Cond cond, int cap = 100000) {
  for (int k = 1; k <= cap; ++k) {
    if (!CondHolds(cond, a + k * b)) return k - 1;
  }
  return std::nullopt;  // did not terminate within cap
}

class EstimateSweep
    : public ::testing::TestWithParam<
          std::tuple<isa::Cond, std::int64_t, std::int64_t>> {};

TEST_P(EstimateSweep, MatchesBruteForce) {
  const auto [cond, a, b] = GetParam();
  const auto expect = BruteForce(a, b, cond);
  const auto got = EstimateRemainingIterations(a, b, cond);
  if (expect.has_value()) {
    ASSERT_TRUE(got.has_value())
        << "cond=" << static_cast<int>(cond) << " a=" << a << " b=" << b;
    EXPECT_EQ(*got, *expect);
  } else {
    // Non-terminating (or kNe-divergent): the estimator must refuse.
    EXPECT_FALSE(got.has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EstimateSweep,
    ::testing::Combine(
        ::testing::Values(isa::Cond::kLt, isa::Cond::kLe, isa::Cond::kGt,
                          isa::Cond::kGe, isa::Cond::kNe),
        ::testing::Values<std::int64_t>(-400, -63, -17, -4, -1, 0, 1, 5, 64,
                                        399),
        ::testing::Values<std::int64_t>(-16, -4, -3, -1, 1, 2, 4, 16)));

TEST(Estimate, ZeroDeltaNeverTerminatesUnlessAlreadyFalse) {
  EXPECT_FALSE(EstimateRemainingIterations(-5, 0, isa::Cond::kLt).has_value());
  EXPECT_EQ(EstimateRemainingIterations(5, 0, isa::Cond::kLt), 0);
  EXPECT_FALSE(EstimateRemainingIterations(3, 0, isa::Cond::kNe).has_value());
}

TEST(Estimate, UnconditionalBackwardBranchIsUnbounded) {
  EXPECT_FALSE(EstimateRemainingIterations(0, 1, isa::Cond::kAl).has_value());
}

TEST(Estimate, NeRequiresExactHit) {
  // diff -10 advancing by 3 never equals zero: unknown.
  EXPECT_FALSE(EstimateRemainingIterations(-10, 3, isa::Cond::kNe).has_value());
  // diff -9 advancing by 3 hits zero after 3 evaluations -> 2 more takens.
  EXPECT_EQ(EstimateRemainingIterations(-9, 3, isa::Cond::kNe), 2);
}

TEST(Estimate, CountdownLoopShape) {
  // subi r3,#1; cmpi r3,0; bgt -> diff = r3, delta -1. With r3 = 61 at the
  // latch, 60 more taken latches remain (the evaluation at r3 == 0 falls
  // through).
  EXPECT_EQ(EstimateRemainingIterations(61, -1, isa::Cond::kGt), 60);
}

TEST(Estimate, CountupLoopShape) {
  // addi r6,#1; cmp r6,r3(=N); blt -> diff = i - N.
  EXPECT_EQ(EstimateRemainingIterations(-100, 1, isa::Cond::kLt), 99);
}

}  // namespace
}  // namespace dsa::engine
