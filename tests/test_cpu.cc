#include <gtest/gtest.h>

#include "cpu/cpu.h"
#include "prog/assembler.h"

namespace dsa::cpu {
namespace {

using isa::Cond;
using isa::Opcode;
using prog::Assembler;

struct Rig {
  explicit Rig(prog::Program p, std::size_t mem = 1 << 16)
      : program(std::move(p)),
        memory(mem),
        hierarchy(mem::Hierarchy::Config{}),
        cpu(program, memory, hierarchy) {}

  void RunToHalt(int max_steps = 100000) {
    int n = 0;
    while (!cpu.halted() && ++n < max_steps) cpu.Step();
    ASSERT_TRUE(cpu.halted()) << "program did not halt";
  }

  prog::Program program;
  mem::Memory memory;
  mem::Hierarchy hierarchy;
  Cpu cpu;
};

TEST(CpuAlu, BasicArithmetic) {
  Assembler as;
  as.Movi(1, 20);
  as.Movi(2, 22);
  as.Alu(Opcode::kAdd, 0, 1, 2);
  as.Alu(Opcode::kSub, 3, 1, 2);
  as.Alu(Opcode::kMul, 4, 1, 2);
  as.AluImm(Opcode::kRsb, 5, 1, 100);
  as.Halt();
  Rig rig(as.Finish());
  rig.RunToHalt();
  EXPECT_EQ(rig.cpu.state().regs[0], 42u);
  EXPECT_EQ(rig.cpu.state().regs[3], static_cast<std::uint32_t>(-2));
  EXPECT_EQ(rig.cpu.state().regs[4], 440u);
  EXPECT_EQ(rig.cpu.state().regs[5], 80u);
}

TEST(CpuAlu, DivisionByZeroYieldsZero) {
  Assembler as;
  as.Movi(1, 7);
  as.Movi(2, 0);
  as.Alu(Opcode::kSdiv, 0, 1, 2);
  as.Halt();
  Rig rig(as.Finish());
  rig.RunToHalt();
  EXPECT_EQ(rig.cpu.state().regs[0], 0u);
}

TEST(CpuAlu, SignedDivisionAndShifts) {
  Assembler as;
  as.Movi(1, -20);
  as.Movi(2, 4);
  as.Alu(Opcode::kSdiv, 0, 1, 2);
  as.Alu(Opcode::kAsr, 3, 1, 2);
  as.Alu(Opcode::kLsr, 4, 1, 2);
  as.Halt();
  Rig rig(as.Finish());
  rig.RunToHalt();
  EXPECT_EQ(static_cast<std::int32_t>(rig.cpu.state().regs[0]), -5);
  EXPECT_EQ(static_cast<std::int32_t>(rig.cpu.state().regs[3]), -2);
  EXPECT_EQ(rig.cpu.state().regs[4], 0x0FFFFFFEu);
}

TEST(CpuAlu, MinMaxAreSigned) {
  Assembler as;
  as.Movi(1, -5);
  as.Movi(2, 3);
  as.Alu(Opcode::kMin, 0, 1, 2);
  as.Alu(Opcode::kMax, 3, 1, 2);
  as.Halt();
  Rig rig(as.Finish());
  rig.RunToHalt();
  EXPECT_EQ(static_cast<std::int32_t>(rig.cpu.state().regs[0]), -5);
  EXPECT_EQ(rig.cpu.state().regs[3], 3u);
}

TEST(CpuFloat, ArithmeticOnScalarRegs) {
  Assembler as;
  as.Movi(1, 0x40490FDB);  // ~pi
  as.Movi(2, 0x40000000);  // 2.0
  as.Alu(Opcode::kFmul, 0, 1, 2);
  as.Alu(Opcode::kFdiv, 3, 1, 2);
  as.Halt();
  Rig rig(as.Finish());
  rig.RunToHalt();
  float f;
  std::uint32_t bits = rig.cpu.state().regs[0];
  std::memcpy(&f, &bits, 4);
  EXPECT_NEAR(f, 6.2831f, 1e-3);
  bits = rig.cpu.state().regs[3];
  std::memcpy(&f, &bits, 4);
  EXPECT_NEAR(f, 1.5708f, 1e-3);
}

TEST(CpuMemory, LoadStoreAllWidthsWithPostIncrement) {
  Assembler as;
  as.Movi(0, 0x100);
  as.Movi(1, 0xAB);
  as.Strb(1, 0, 1);
  as.Movi(1, 0x1234);
  as.Strh(1, 0, 2);
  as.Movi(1, 0xDEADBEEF);
  as.Str(1, 0, 4);
  as.Movi(0, 0x100);
  as.Ldrb(2, 0, 1);
  as.Ldrh(3, 0, 2);
  as.Ldr(4, 0, 4);
  as.Halt();
  Rig rig(as.Finish());
  rig.RunToHalt();
  EXPECT_EQ(rig.cpu.state().regs[2], 0xABu);
  EXPECT_EQ(rig.cpu.state().regs[3], 0x1234u);
  EXPECT_EQ(rig.cpu.state().regs[4], 0xDEADBEEFu);
  EXPECT_EQ(rig.cpu.state().regs[0], 0x107u);
}

TEST(CpuMemory, LoadWithOffsetDoesNotMoveBase) {
  Assembler as;
  as.Movi(0, 0x100);
  as.Movi(1, 77);
  as.Str(1, 0, 0, 8);  // mem[0x108] = 77
  as.Ldr(2, 0, 0, 8);
  as.Halt();
  Rig rig(as.Finish());
  rig.RunToHalt();
  EXPECT_EQ(rig.cpu.state().regs[2], 77u);
  EXPECT_EQ(rig.cpu.state().regs[0], 0x100u);
}

class CondBranch : public ::testing::TestWithParam<
                       std::tuple<Cond, int, int, bool>> {};

TEST_P(CondBranch, TakenMatchesComparison) {
  const auto [cond, lhs, rhs, expect_taken] = GetParam();
  Assembler as;
  as.Movi(1, lhs);
  as.Movi(2, rhs);
  as.Cmp(1, 2);
  const auto taken = as.NewLabel();
  as.B(cond, taken);
  as.Movi(0, 1);  // fall-through marker
  as.Halt();
  as.Bind(taken);
  as.Movi(0, 2);  // taken marker
  as.Halt();
  Rig rig(as.Finish());
  rig.RunToHalt();
  EXPECT_EQ(rig.cpu.state().regs[0], expect_taken ? 2u : 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CondBranch,
    ::testing::Values(
        std::make_tuple(Cond::kEq, 5, 5, true),
        std::make_tuple(Cond::kEq, 5, 6, false),
        std::make_tuple(Cond::kNe, 5, 6, true),
        std::make_tuple(Cond::kNe, 5, 5, false),
        std::make_tuple(Cond::kLt, -1, 0, true),
        std::make_tuple(Cond::kLt, 0, 0, false),
        std::make_tuple(Cond::kGe, 0, 0, true),
        std::make_tuple(Cond::kGe, -2, -1, false),
        std::make_tuple(Cond::kGt, 7, 3, true),
        std::make_tuple(Cond::kGt, 3, 3, false),
        std::make_tuple(Cond::kLe, 3, 3, true),
        std::make_tuple(Cond::kLe, 4, 3, false),
        std::make_tuple(Cond::kAl, 0, 9, true)));

TEST(CpuControl, CallAndReturn) {
  Assembler as;
  const auto fn = as.NewLabel();
  as.Movi(0, 1);
  as.Bl(fn);
  as.Movi(2, 3);  // after return
  as.Halt();
  as.Bind(fn);
  as.Movi(1, 2);
  as.Ret();
  Rig rig(as.Finish());
  rig.RunToHalt();
  EXPECT_EQ(rig.cpu.state().regs[0], 1u);
  EXPECT_EQ(rig.cpu.state().regs[1], 2u);
  EXPECT_EQ(rig.cpu.state().regs[2], 3u);
}

TEST(CpuControl, LoopRunsExactCount) {
  Assembler as;
  as.Movi(0, 0);
  as.Movi(3, 10);
  const auto top = as.NewLabel();
  as.Bind(top);
  as.AluImm(Opcode::kAddi, 0, 0, 1);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, top);
  as.Halt();
  Rig rig(as.Finish());
  rig.RunToHalt();
  EXPECT_EQ(rig.cpu.state().regs[0], 10u);
}

TEST(CpuVector, InlineVectorAddRoundTrip) {
  Assembler as;
  as.Movi(0, 0x100);
  as.Movi(1, 0x200);
  as.Movi(2, 0x300);
  as.Vld1(isa::VecType::kI32, 1, 0);
  as.Vld1(isa::VecType::kI32, 2, 1);
  as.Vop(Opcode::kVadd, isa::VecType::kI32, 8, 1, 2);
  as.Vst1(isa::VecType::kI32, 8, 2);
  as.Halt();
  Rig rig(as.Finish());
  for (int i = 0; i < 4; ++i) {
    rig.memory.Write32(0x100 + 4 * i, 10 + i);
    rig.memory.Write32(0x200 + 4 * i, 100 * i);
  }
  rig.RunToHalt();
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(rig.memory.Read32(0x300 + 4 * i),
              static_cast<std::uint32_t>(10 + i + 100 * i));
  }
  EXPECT_EQ(rig.cpu.state().regs[0], 0x110u);  // post-incremented
}

TEST(CpuVector, LaneMovesBetweenFiles) {
  Assembler as;
  as.Movi(1, 0xCAFE);
  as.VmovFromScalar(isa::VecType::kI32, 5, 2, 1);
  as.VmovToScalar(isa::VecType::kI32, 3, 5, 2);
  as.Halt();
  Rig rig(as.Finish());
  rig.RunToHalt();
  EXPECT_EQ(rig.cpu.state().regs[3], 0xCAFEu);
}

TEST(CpuTiming, CyclesGrowWithWork) {
  Assembler as;
  for (int i = 0; i < 100; ++i) as.Nop();
  as.Halt();
  Rig rig(as.Finish());
  rig.RunToHalt();
  // 2-wide: 101 instructions need at least 51 issue cycles.
  EXPECT_GE(rig.cpu.Cycles(), 50u);
  EXPECT_EQ(rig.cpu.stats().retired_total, 101u);
}

TEST(CpuTiming, MispredictsAreCounted) {
  // Alternating taken/not-taken data-dependent branch.
  Assembler as;
  as.Movi(0, 0);
  as.Movi(3, 64);
  const auto top = as.NewLabel();
  const auto skip = as.NewLabel();
  as.Bind(top);
  as.AluImm(Opcode::kAndi, 1, 0, 1);
  as.Cmpi(1, 0);
  as.B(Cond::kEq, skip);
  as.Nop();
  as.Bind(skip);
  as.AluImm(Opcode::kAddi, 0, 0, 1);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, top);
  as.Halt();
  Rig rig(as.Finish());
  rig.RunToHalt();
  EXPECT_GT(rig.cpu.stats().mispredicts, 10u);
  EXPECT_GT(rig.cpu.stats().branches, 64u);
}

TEST(CpuTiming, MemStallsSeparateFromOtherStalls) {
  Assembler as;
  as.Movi(0, 0x4000);
  as.Ldr(1, 0);  // cold miss
  as.Halt();
  Rig rig(as.Finish());
  rig.RunToHalt();
  EXPECT_GT(rig.cpu.stats().mem_stall_cycles, 0u);
}

TEST(CpuLifecycle, HaltsAtProgramEnd) {
  Assembler as;
  as.Nop();
  Rig rig(as.Finish());
  rig.cpu.Step();
  EXPECT_TRUE(rig.cpu.halted());
  // Further steps are no-ops.
  const auto r = rig.cpu.Step();
  EXPECT_EQ(r.instr, nullptr);
}

}  // namespace
}  // namespace dsa::cpu
