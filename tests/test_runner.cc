// BatchRunner tests: thread-pool scheduling, baseline memoization (the
// scalar run of a workload executes once per batch no matter how many
// tables ask for it), JSON emission round-trip, and determinism of the
// batch results across worker counts.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sim/runner.h"
#include "workloads/workloads.h"

namespace dsa::sim {
namespace {

Workload SmallVecAdd() { return workloads::MakeVecAdd(512); }

// run_fn seam that counts real executions per job key.
RunnerOptions CountingOptions(std::atomic<int>& counter, int jobs = 2,
                              int repeats = 1) {
  RunnerOptions o;
  o.jobs = jobs;
  o.repeats = repeats;
  o.run_fn = [&counter](const Workload& wl, RunMode mode,
                        const SystemConfig& cfg) {
    ++counter;
    return Run(wl, mode, cfg);
  };
  return o;
}

TEST(BatchRunner, ExecutesAllModesAndReportsCleanOracle) {
  RunnerOptions o;
  o.jobs = 4;
  BatchRunner runner(o);
  const Workload wl = SmallVecAdd();
  const auto keys = runner.SubmitMatrix(wl);
  const BatchReport report = runner.Finish();
  EXPECT_TRUE(report.ok()) << oracle::FormatViolations(report.violations);
  EXPECT_EQ(report.distinct_jobs, 4u);
  EXPECT_EQ(report.executed_runs, 4u * 2u);  // default repeats = 2
  for (const std::string& k : keys) {
    EXPECT_GT(runner.Result(k).cycles, 0u) << k;
    EXPECT_TRUE(runner.Result(k).output_ok) << k;
  }
  // All four modes computed the same output buffers.
  const std::uint64_t digest = runner.Result(keys[0]).output_digest;
  for (const std::string& k : keys) {
    EXPECT_EQ(runner.Result(k).output_digest, digest) << k;
  }
}

TEST(BatchRunner, MemoizesRepeatedSubmissions) {
  std::atomic<int> executions{0};
  BatchRunner runner(CountingOptions(executions));
  const Workload wl = SmallVecAdd();
  const std::string k1 = runner.Submit(wl, RunMode::kScalar);
  // The same experiment, submitted as if by three more tables.
  const std::string k2 = runner.Submit(wl, RunMode::kScalar);
  const std::string k3 = runner.Submit(wl, RunMode::kScalar);
  runner.SubmitMatrix(wl);  // scalar cell memoized, 3 new cells
  EXPECT_EQ(k1, k2);
  EXPECT_EQ(k2, k3);
  const BatchReport report = runner.Finish();
  EXPECT_EQ(executions.load(), 4);  // scalar once + autovec/handvec/dsa
  EXPECT_EQ(report.distinct_jobs, 4u);
  EXPECT_EQ(report.memo_hits, 3u);
}

TEST(BatchRunner, TagsKeepDistinctConfigsApart) {
  std::atomic<int> executions{0};
  BatchRunner runner(CountingOptions(executions));
  const Workload wl = SmallVecAdd();
  SystemConfig a;
  SystemConfig b;
  b.dsa = engine::DsaConfig::Original();
  const std::string ka = runner.Submit(wl, RunMode::kDsa, a, "ext");
  const std::string kb = runner.Submit(wl, RunMode::kDsa, b, "orig");
  EXPECT_NE(ka, kb);
  (void)runner.Finish();
  EXPECT_EQ(executions.load(), 2);
}

TEST(BatchRunner, RepeatsFeedDeterminismOracle) {
  std::atomic<int> executions{0};
  BatchRunner runner(CountingOptions(executions, /*jobs=*/2, /*repeats=*/3));
  runner.Submit(SmallVecAdd(), RunMode::kDsa);
  const BatchReport report = runner.Finish();
  EXPECT_TRUE(report.ok()) << oracle::FormatViolations(report.violations);
  EXPECT_EQ(executions.load(), 3);
  EXPECT_EQ(report.executed_runs, 3u);
  EXPECT_EQ(report.distinct_jobs, 1u);
}

TEST(BatchRunner, JobErrorSurfacesOnGet) {
  RunnerOptions o;
  o.jobs = 1;
  o.repeats = 1;
  o.run_fn = [](const Workload&, RunMode, const SystemConfig&) -> RunResult {
    throw std::runtime_error("injected failure");
  };
  BatchRunner runner(o);
  const std::string key = runner.Submit(SmallVecAdd(), RunMode::kScalar);
  EXPECT_THROW(runner.Get(key), std::runtime_error);
  const BatchReport report = runner.Finish();
  EXPECT_FALSE(report.ok());
}

// The batch result must not depend on how many workers executed it.
TEST(BatchRunner, WorkerCountDoesNotChangeResults) {
  std::map<std::string, std::uint64_t> cycles_by_key[2];
  const int worker_counts[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    RunnerOptions o;
    o.jobs = worker_counts[i];
    o.repeats = 1;
    BatchRunner runner(o);
    for (const Workload& wl : workloads::Article1Set()) {
      runner.SubmitMatrix(wl);
    }
    const BatchReport report = runner.Finish();
    ASSERT_TRUE(report.ok()) << oracle::FormatViolations(report.violations);
    for (const auto& [key, outcome] : runner.outcomes()) {
      cycles_by_key[i][key] = outcome.result().cycles;
    }
  }
  EXPECT_EQ(cycles_by_key[0], cycles_by_key[1]);
}

TEST(BatchRunner, WritesWellFormedJson) {
  RunnerOptions o;
  o.jobs = 2;
  BatchRunner runner(o);
  runner.SubmitMatrix(SmallVecAdd());
  const BatchReport report = runner.Finish();
  const std::string path = ::testing::TempDir() + "BENCH_runner_test.json";
  ASSERT_TRUE(WriteBenchJson(path, "runner_test", runner, report));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();

  // Structural sanity without a JSON library: balanced braces/brackets
  // and the schema fields the tooling greps for.
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
  for (const char* needle :
       {"\"schema\": \"dsa-bench-json/6\"", "\"bench\": \"runner_test\"",
        "\"oracle\"", "\"ok\": true", "\"results\"", "\"cycles\"",
        "\"speedup_vs_scalar\"", "\"energy\"", "\"output_digest\"",
        "\"host\"", "\"mips\"", "\"dsa\"", "\"takeovers\"",
        "\"phases\"", "\"dispatch_ms\"", "\"observe_ms\"", "\"mem_ms\"",
        "\"neon_ms\"",
        "\"cell_status\": \"ok\"", "\"faulted_cells\": 0",
        "\"restored_cells\": 0", "\"cancelled_cells\": 0",
        "\"run_status\": \"complete\"", "\"rollbacks\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
  std::remove(path.c_str());
}

// The scalar cell doubles as the equivalence reference: its speedup in
// the JSON is 1 and every other mode reports a speedup relative to it.
TEST(BatchRunner, JsonSpeedupsAreRelativeToScalarBaseline) {
  RunnerOptions o;
  o.jobs = 1;
  o.repeats = 1;
  BatchRunner runner(o);
  const Workload wl = SmallVecAdd();
  const auto keys = runner.SubmitMatrix(wl);
  const BatchReport report = runner.Finish();
  const std::string path = ::testing::TempDir() + "BENCH_speedup_test.json";
  ASSERT_TRUE(WriteBenchJson(path, "speedup_test", runner, report));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  std::remove(path.c_str());

  const double expected =
      SpeedupOver(runner.Result(keys[0]), runner.Result(keys[3]));
  // Find the DSA result object and its speedup value.
  const size_t pos = json.find("\"mode\": \"neon-dsa\"");
  ASSERT_NE(pos, std::string::npos);
  const size_t sp = json.find("\"speedup_vs_scalar\":", pos);
  ASSERT_NE(sp, std::string::npos);
  const size_t colon = json.find(':', sp);
  const double got = std::atof(json.c_str() + colon + 1);
  EXPECT_NEAR(got, expected, 1e-3);
}

}  // namespace
}  // namespace dsa::sim
