// Randomized property tests: generated elementwise loops — random element
// type, stream count, op mix, trip count, optional aliasing (dependency
// injection) and optional conditional arms — must leave memory in exactly
// the state the plain scalar run leaves it, whatever the DSA decides to
// vectorize. This is the reproduction's core invariant: the DSA is
// architecturally transparent.
#include <gtest/gtest.h>

#include <vector>

#include "prog/assembler.h"
#include "sim/oracle.h"
#include "sim/system.h"
#include "workloads/gen/generator.h"

namespace dsa::engine {
namespace {

using isa::Cond;
using isa::Opcode;
using isa::VecType;
using prog::Assembler;

std::uint32_t Rng(std::uint32_t& s) {
  s ^= s << 13;
  s ^= s >> 17;
  s ^= s << 5;
  return s;
}

struct GeneratedLoop {
  prog::Program program;
  std::uint32_t out_base = 0;
  std::uint32_t out_bytes = 0;
};

// Emits a random elementwise loop:
//   for i in 0..n-1: out[i+alias_off] = f(a[i], b[i], consts...)
// with f a random chain of vectorizable ops, optionally guarded by a
// data-dependent if/else.
GeneratedLoop Generate(std::uint32_t seed) {
  std::uint32_t s = seed;
  const VecType types[3] = {VecType::kI8, VecType::kI16, VecType::kI32};
  const VecType vt = types[Rng(s) % 3];
  const int elem = isa::LaneBytes(vt);
  const Opcode ld = elem == 1 ? Opcode::kLdrb
                              : (elem == 2 ? Opcode::kLdrh : Opcode::kLdr);
  const Opcode st = elem == 1 ? Opcode::kStrb
                              : (elem == 2 ? Opcode::kStrh : Opcode::kStr);
  const int n = 3 + static_cast<int>(Rng(s) % 200);
  const int n_loads = 1 + static_cast<int>(Rng(s) % 2);
  const bool conditional = (Rng(s) % 4) == 0;
  // Sometimes make the store alias the first load with a small offset,
  // injecting a genuine cross-iteration dependency (forward or backward).
  const bool alias = (Rng(s) % 3) == 0;
  const int alias_off =
      alias ? (1 + static_cast<int>(Rng(s) % 12)) * elem : 0;

  const std::uint32_t base_a = 0x4000;
  const std::uint32_t base_b = 0x8000;
  const std::uint32_t out_base =
      alias ? base_a + alias_off : 0xC000;

  Assembler as;
  as.Movi(0, base_a);
  if (n_loads > 1) as.Movi(1, base_b);
  as.Movi(2, out_base);
  as.Movi(3, n);
  as.Movi(10, 1 + Rng(s) % 100);  // invariant operand
  as.Movi(11, 1 + Rng(s) % 3);    // shift amount
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Emit(isa::MakeLoad(ld, 4, 0, elem));
  if (n_loads > 1) as.Emit(isa::MakeLoad(ld, 5, 1, elem));

  auto emit_ops = [&](std::uint32_t& rs) {
    const int n_ops = 1 + static_cast<int>(Rng(rs) % 3);
    const Opcode pool[] = {Opcode::kAdd, Opcode::kSub, Opcode::kAnd,
                           Opcode::kOrr, Opcode::kEor, Opcode::kMul,
                           Opcode::kMin, Opcode::kMax, Opcode::kLsr};
    int acc = 4;
    for (int i = 0; i < n_ops; ++i) {
      const Opcode op = pool[Rng(rs) % (sizeof(pool) / sizeof(pool[0]))];
      const int rhs = (op == Opcode::kLsr) ? 11
                      : (n_loads > 1 && (Rng(rs) % 2) ? 5 : 10);
      as.Alu(op, 6, acc, rhs);
      acc = 6;
    }
    if (acc != 6) as.Mov(6, acc);
  };

  if (conditional) {
    const auto els = as.NewLabel();
    const auto nxt = as.NewLabel();
    as.Cmpi(4, 64);
    as.B(Cond::kLe, els);
    emit_ops(s);
    as.Emit(isa::MakeStore(st, 6, 2, elem));
    as.B(Cond::kAl, nxt);
    as.Bind(els);
    std::uint32_t s2 = s ^ 0x9E3779B9u;
    emit_ops(s2);
    as.Emit(isa::MakeStore(st, 6, 2, elem));
    as.Bind(nxt);
  } else {
    emit_ops(s);
    as.Emit(isa::MakeStore(st, 6, 2, elem));
  }
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, loop);
  as.Halt();

  GeneratedLoop g;
  g.program = as.Finish();
  g.out_base = out_base;
  g.out_bytes = static_cast<std::uint32_t>(n * elem);
  return g;
}

void FillInputs(mem::Memory& m, std::uint32_t seed) {
  std::uint32_t s = seed ^ 0xDEADBEEFu;
  for (std::uint32_t a = 0x4000; a < 0xA000; a += 4) {
    m.Write32(a, Rng(s));
  }
}

class RandomLoops : public ::testing::TestWithParam<int> {};

TEST_P(RandomLoops, DsaMatchesScalarBitForBit) {
  const std::uint32_t seed = 0xBEE5u + GetParam() * 2654435761u;
  const GeneratedLoop g = Generate(seed);

  sim::Workload wl;
  wl.name = "random-" + std::to_string(GetParam());
  wl.mem_bytes = 1 << 17;
  wl.scalar = g.program;
  wl.init = [seed](mem::Memory& m) { FillInputs(m, seed); };

  std::vector<std::uint8_t> scalar_out(g.out_bytes);
  std::vector<std::uint8_t> dsa_out(g.out_bytes);
  {
    sim::Workload a = wl;
    a.check = [&](const mem::Memory& m) {
      m.ReadBlock(g.out_base, scalar_out.data(), scalar_out.size());
      return true;
    };
    (void)sim::Run(a, sim::RunMode::kScalar, {});
  }
  {
    sim::Workload b = wl;
    b.check = [&](const mem::Memory& m) {
      m.ReadBlock(g.out_base, dsa_out.data(), dsa_out.size());
      return true;
    };
    const sim::RunResult r = sim::Run(b, sim::RunMode::kDsa, {});
    ASSERT_TRUE(r.dsa.has_value());
  }
  EXPECT_EQ(scalar_out, dsa_out) << "seed " << seed << "\n"
                                 << g.program.Disassemble();
}

TEST_P(RandomLoops, OriginalDsaAlsoTransparent) {
  const std::uint32_t seed = 0xFACEu + GetParam() * 2246822519u;
  const GeneratedLoop g = Generate(seed);
  sim::Workload wl;
  wl.name = "random-orig";
  wl.mem_bytes = 1 << 17;
  wl.scalar = g.program;
  wl.init = [seed](mem::Memory& m) { FillInputs(m, seed); };

  std::vector<std::uint8_t> scalar_out(g.out_bytes);
  std::vector<std::uint8_t> dsa_out(g.out_bytes);
  sim::Workload a = wl;
  a.check = [&](const mem::Memory& m) {
    m.ReadBlock(g.out_base, scalar_out.data(), scalar_out.size());
    return true;
  };
  (void)sim::Run(a, sim::RunMode::kScalar, {});
  sim::SystemConfig orig;
  orig.dsa = DsaConfig::Original();
  sim::Workload b = wl;
  b.check = [&](const mem::Memory& m) {
    m.ReadBlock(g.out_base, dsa_out.data(), dsa_out.size());
    return true;
  };
  (void)sim::Run(b, sim::RunMode::kDsa, orig);
  EXPECT_EQ(scalar_out, dsa_out) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Fuzz, RandomLoops, ::testing::Range(0, 60));

// Programs drawn from the seeded loop-nest generator (workloads/gen) must
// satisfy the runner oracle's per-run invariants with tracing on: the
// traced takeover-begin count balances against takeovers + rollbacks, and
// every trace stage aggregate matches the engine's counters. This runs the
// same CheckInvariants the batch runner applies, so a generator grammar
// that drives the tracker into an inconsistent state fails here first.
class GeneratedLoopInvariants : public ::testing::TestWithParam<int> {};

TEST_P(GeneratedLoopInvariants, OracleInvariantsHoldUnderTracing) {
  const std::uint64_t base_seed = 0x5EEDull + GetParam() * 97ull;
  sim::SystemConfig cfg;
  cfg.trace.enabled = true;
  for (const sim::Workload& wl :
       dsa::workloads::gen::GeneratedSet(base_seed, 6)) {
    const sim::RunResult r = sim::Run(wl, sim::RunMode::kDsa, cfg);
    EXPECT_TRUE(r.output_ok) << wl.name;
    ASSERT_TRUE(r.dsa.has_value()) << wl.name;
    ASSERT_NE(r.trace, nullptr) << wl.name;
    const auto violations = sim::oracle::CheckInvariants(r, wl.name);
    EXPECT_TRUE(violations.empty())
        << wl.name << ":\n" << sim::oracle::FormatViolations(violations);
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, GeneratedLoopInvariants,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace dsa::engine
