#include <gtest/gtest.h>

#include <cstring>
#include <tuple>

#include "neon/vector_unit.h"

namespace dsa::neon {
namespace {

using isa::Opcode;
using isa::VecType;

std::uint32_t Rng(std::uint32_t& s) {
  s ^= s << 13;
  s ^= s >> 17;
  s ^= s << 5;
  return s;
}

QReg RandomReg(std::uint32_t& seed) {
  QReg r;
  for (auto& b : r.bytes) b = static_cast<std::uint8_t>(Rng(seed));
  return r;
}

std::uint32_t Mask(VecType t) {
  switch (t) {
    case VecType::kI8: return 0xFFu;
    case VecType::kI16: return 0xFFFFu;
    default: return 0xFFFFFFFFu;
  }
}

std::int32_t Sext(VecType t, std::uint32_t v) {
  switch (t) {
    case VecType::kI8: return static_cast<std::int8_t>(v);
    case VecType::kI16: return static_cast<std::int16_t>(v);
    default: return static_cast<std::int32_t>(v);
  }
}

// Scalar reference for one integer lane.
std::uint32_t RefLane(Opcode op, VecType t, std::uint32_t a, std::uint32_t b,
                      std::uint32_t acc) {
  const std::uint32_t m = Mask(t);
  switch (op) {
    case Opcode::kVadd: return (a + b) & m;
    case Opcode::kVsub: return (a - b) & m;
    case Opcode::kVmul: return (a * b) & m;
    case Opcode::kVmla: return (acc + a * b) & m;
    case Opcode::kVmin:
      return static_cast<std::uint32_t>(std::min(Sext(t, a), Sext(t, b))) & m;
    case Opcode::kVmax:
      return static_cast<std::uint32_t>(std::max(Sext(t, a), Sext(t, b))) & m;
    case Opcode::kVand: return a & b;
    case Opcode::kVorr: return a | b;
    case Opcode::kVeor: return a ^ b;
    case Opcode::kVcge: return Sext(t, a) >= Sext(t, b) ? m : 0;
    case Opcode::kVcgt: return Sext(t, a) > Sext(t, b) ? m : 0;
    case Opcode::kVceq: return a == b ? m : 0;
    default: return 0;
  }
}

using LaneCase = std::tuple<Opcode, VecType>;

class IntLaneOps : public ::testing::TestWithParam<LaneCase> {};

TEST_P(IntLaneOps, MatchesScalarReferencePerLane) {
  const auto [op, t] = GetParam();
  std::uint32_t seed = 0x12345u + static_cast<int>(op) * 977 +
                       static_cast<int>(t);
  for (int trial = 0; trial < 32; ++trial) {
    const QReg a = RandomReg(seed);
    const QReg b = RandomReg(seed);
    const QReg acc = RandomReg(seed);
    const QReg out = ExecuteLaneOp(op, t, a, b, acc);
    for (int l = 0; l < isa::LaneCount(t); ++l) {
      EXPECT_EQ(out.Lane(t, l),
                RefLane(op, t, a.Lane(t, l), b.Lane(t, l), acc.Lane(t, l)))
          << ToString(op) << std::string(ToString(t)) << " lane " << l;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IntLaneOps,
    ::testing::Combine(
        ::testing::Values(Opcode::kVadd, Opcode::kVsub, Opcode::kVmul,
                          Opcode::kVmla, Opcode::kVmin, Opcode::kVmax,
                          Opcode::kVand, Opcode::kVorr, Opcode::kVeor,
                          Opcode::kVcge, Opcode::kVcgt, Opcode::kVceq),
        ::testing::Values(VecType::kI8, VecType::kI16, VecType::kI32)));

TEST(FloatLanes, AddMulMatchScalar) {
  QReg a;
  QReg b;
  const float av[4] = {1.5f, -2.0f, 3.25f, 100.0f};
  const float bv[4] = {0.5f, 4.0f, -1.25f, 0.125f};
  for (int l = 0; l < 4; ++l) {
    std::uint32_t bits;
    std::memcpy(&bits, &av[l], 4);
    a.SetLane32(l, bits);
    std::memcpy(&bits, &bv[l], 4);
    b.SetLane32(l, bits);
  }
  const QReg sum = ExecuteLaneOp(Opcode::kVadd, VecType::kF32, a, b, QReg{});
  const QReg prod = ExecuteLaneOp(Opcode::kVmul, VecType::kF32, a, b, QReg{});
  for (int l = 0; l < 4; ++l) {
    float fs;
    std::uint32_t bits = sum.Lane32(l);
    std::memcpy(&fs, &bits, 4);
    EXPECT_FLOAT_EQ(fs, av[l] + bv[l]);
    bits = prod.Lane32(l);
    std::memcpy(&fs, &bits, 4);
    EXPECT_FLOAT_EQ(fs, av[l] * bv[l]);
  }
}

TEST(Shift, LogicalPerLane) {
  std::uint32_t seed = 99;
  const QReg a = RandomReg(seed);
  for (const VecType t : {VecType::kI8, VecType::kI16, VecType::kI32}) {
    const QReg l1 = ExecuteShift(Opcode::kVshl, t, a, 1);
    const QReg r2 = ExecuteShift(Opcode::kVshr, t, a, 2);
    for (int l = 0; l < isa::LaneCount(t); ++l) {
      EXPECT_EQ(l1.Lane(t, l), (a.Lane(t, l) << 1) & Mask(t));
      EXPECT_EQ(r2.Lane(t, l), (a.Lane(t, l) & Mask(t)) >> 2);
    }
  }
}

TEST(Bsl, SelectsPerBit) {
  QReg mask;
  QReg a;
  QReg b;
  for (int i = 0; i < 16; ++i) {
    mask.bytes[i] = (i % 2) ? 0xFF : 0x0F;
    a.bytes[i] = 0xAA;
    b.bytes[i] = 0x55;
  }
  const QReg out = ExecuteBsl(mask, a, b);
  for (int i = 0; i < 16; ++i) {
    const std::uint8_t expect =
        (mask.bytes[i] & 0xAA) | (~mask.bytes[i] & 0x55);
    EXPECT_EQ(out.bytes[i], expect);
  }
}

TEST(Broadcast, FillsAllLanes) {
  const QReg r8 = Broadcast(VecType::kI8, 0x7F);
  const QReg r16 = Broadcast(VecType::kI16, 0xBEEF);
  const QReg r32 = Broadcast(VecType::kI32, 0x12345678);
  for (int l = 0; l < 16; ++l) EXPECT_EQ(r8.Lane8(l), 0x7F);
  for (int l = 0; l < 8; ++l) EXPECT_EQ(r16.Lane16(l), 0xBEEF);
  for (int l = 0; l < 4; ++l) EXPECT_EQ(r32.Lane32(l), 0x12345678u);
}

TEST(LaneAccessors, NarrowWritesTruncate) {
  QReg r;
  r.SetLane(VecType::kI8, 0, 0x1FF);
  EXPECT_EQ(r.Lane8(0), 0xFF);
  r.SetLane(VecType::kI16, 1, 0x12345);
  EXPECT_EQ(r.Lane16(1), 0x2345);
}

TEST(Timing, MultiplySlowerThanAlu) {
  NeonTiming t;
  EXPECT_GT(t.LatencyOf(Opcode::kVmul), t.LatencyOf(Opcode::kVadd));
  EXPECT_EQ(t.LatencyOf(Opcode::kVmla), t.mul_latency);
  EXPECT_EQ(t.LatencyOf(Opcode::kVld1), t.mem_latency);
  EXPECT_EQ(t.LatencyOf(Opcode::kVmovToScalar), t.lane_move);
}

TEST(RegFile, ResetClears) {
  VectorRegFile rf;
  rf.q(3).SetLane32(0, 42);
  rf.Reset();
  EXPECT_EQ(rf.q(3).Lane32(0), 0u);
}

}  // namespace
}  // namespace dsa::neon
