// Seeded loop-nest generator tests: determinism (same seed => byte-identical
// program and golden digest), one test per grammar class asserting the
// tracker state-machine path it was built to exercise, and a 64-seed mini
// differential sweep comparing the fast DSA path against the --reference
// twin bit-for-bit (cycles and output digest).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "engine/loop_info.h"
#include "sim/system.h"
#include "workloads/gen/generator.h"

namespace dsa::workloads::gen {
namespace {

using sim::RunMode;
using sim::RunResult;
using sim::SystemConfig;
using sim::Workload;

constexpr LoopClass kAllClasses[] = {
    LoopClass::kCounted,      LoopClass::kSentinel,
    LoopClass::kConditional,  LoopClass::kNested,
    LoopClass::kStrideVariant, LoopClass::kEarlyExit,
};

TEST(Generator, SameSeedSameProgramBytesAndDigest) {
  for (const LoopClass cls : kAllClasses) {
    for (const std::uint64_t seed : {1ull, 7ull, 1234567ull}) {
      const Workload a = MakeGenerated(seed, cls);
      const Workload b = MakeGenerated(seed, cls);
      EXPECT_EQ(a.name, b.name);
      EXPECT_EQ(a.scalar.Disassemble(), b.scalar.Disassemble())
          << a.name << ": program bytes differ across factory calls";
      const RunResult ra = sim::Run(a, RunMode::kScalar, {});
      const RunResult rb = sim::Run(b, RunMode::kScalar, {});
      EXPECT_TRUE(ra.output_ok) << a.name;
      EXPECT_EQ(ra.output_digest, rb.output_digest)
          << a.name << ": golden digest differs across factory calls";
    }
  }
}

TEST(Generator, DifferentSeedsDifferentPrograms) {
  // Trip counts, constants and op chains are all drawn from the seed, so
  // distinct seeds should essentially never collide.
  for (const LoopClass cls : kAllClasses) {
    std::set<std::string> programs;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      programs.insert(MakeGenerated(seed, cls).scalar.Disassemble());
    }
    EXPECT_GT(programs.size(), 6u)
        << "class " << std::string(ToString(cls))
        << ": seeds 1..8 produced too many identical programs";
  }
}

TEST(Generator, CarriesProvenanceAndStreamBytes) {
  for (const LoopClass cls : kAllClasses) {
    const Workload wl = MakeGenerated(42, cls);
    ASSERT_TRUE(wl.gen.has_value()) << wl.name;
    EXPECT_EQ(wl.gen->seed, 42u);
    EXPECT_EQ(wl.gen->loop_class, std::string(ToString(cls)));
    EXPECT_GT(wl.gen->count, 0u);
    EXPECT_GT(wl.stream_bytes, 0u) << wl.name;
    EXPECT_FALSE(wl.outputs.empty()) << wl.name;
  }
}

TEST(Generator, GeneratedSetRoundRobinsClassesAndSeeds) {
  const auto set = GeneratedSet(100, 13);
  ASSERT_EQ(set.size(), 13u);
  for (int i = 0; i < 13; ++i) {
    ASSERT_TRUE(set[i].gen.has_value());
    EXPECT_EQ(set[i].gen->seed, 100u + i);
    EXPECT_EQ(set[i].gen->loop_class,
              std::string(ToString(static_cast<LoopClass>(i % 6))));
  }
}

// --- one test per grammar class: the tracker path it must exercise ------

RunResult RunDsa(std::uint64_t seed, LoopClass cls) {
  const Workload wl = MakeGenerated(seed, cls);
  const RunResult r = sim::Run(wl, RunMode::kDsa, {});
  EXPECT_TRUE(r.output_ok) << wl.name;
  EXPECT_TRUE(r.dsa.has_value()) << wl.name;
  return r;
}

TEST(GeneratorClasses, CountedTakesTheCountPath) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const RunResult r = RunDsa(seed, LoopClass::kCounted);
    EXPECT_GE(r.dsa->loops_by_class.at(engine::LoopClass::kCount), 1u);
    EXPECT_GE(r.dsa->takeovers, 1u);
  }
}

TEST(GeneratorClasses, SentinelTakesTheSentinelPath) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const RunResult r = RunDsa(seed, LoopClass::kSentinel);
    EXPECT_GE(r.dsa->loops_by_class.at(engine::LoopClass::kSentinel), 1u);
    EXPECT_GE(r.dsa->takeovers, 1u);
  }
}

TEST(GeneratorClasses, ConditionalTakesTheMappingPath) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const RunResult r = RunDsa(seed, LoopClass::kConditional);
    EXPECT_GE(r.dsa->loops_by_class.at(engine::LoopClass::kConditional), 1u);
    EXPECT_GE(r.dsa->takeovers, 1u);
  }
}

TEST(GeneratorClasses, NestedClassifiesInnerCountAndOuterLoop) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const RunResult r = RunDsa(seed, LoopClass::kNested);
    EXPECT_GE(r.dsa->loops_by_class.at(engine::LoopClass::kCount), 1u);
    EXPECT_GE(r.dsa->loops_by_class.at(engine::LoopClass::kOuter), 1u);
    EXPECT_GE(r.dsa->takeovers, 1u);
  }
}

TEST(GeneratorClasses, StrideVariantRejectsOnNonUnitStride) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const RunResult r = RunDsa(seed, LoopClass::kStrideVariant);
    EXPECT_EQ(r.dsa->takeovers, 0u);
    EXPECT_GE(
        r.dsa->rejects_by_reason.at(engine::RejectReason::kNonUnitStride), 1u);
  }
}

TEST(GeneratorClasses, EarlyExitTakesTheConditionalExitPath) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const RunResult r = RunDsa(seed, LoopClass::kEarlyExit);
    EXPECT_GE(r.dsa->loops_by_class.at(engine::LoopClass::kConditional), 1u);
    EXPECT_GE(r.dsa->takeovers, 1u);
  }
}

// --- 64-seed mini differential sweep: fast path vs --reference twin ----

class DifferentialSweep : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialSweep, FastAndReferenceTwinAgreeBitForBit) {
  const std::uint64_t seed = 1000 + GetParam();
  const LoopClass cls = static_cast<LoopClass>(GetParam() % kNumLoopClasses);
  const Workload wl = MakeGenerated(seed, cls);

  const RunResult fast = sim::Run(wl, RunMode::kDsa, {});
  SystemConfig ref_cfg;
  ref_cfg.reference_path = true;
  const RunResult ref = sim::Run(wl, RunMode::kDsa, ref_cfg);

  EXPECT_TRUE(fast.output_ok) << wl.name;
  EXPECT_TRUE(ref.output_ok) << wl.name;
  EXPECT_EQ(fast.cycles, ref.cycles)
      << wl.name << ": fast path and reference twin disagree on cycles";
  EXPECT_EQ(fast.output_digest, ref.output_digest)
      << wl.name << ": fast path and reference twin disagree on outputs";
  ASSERT_TRUE(fast.dsa.has_value());
  ASSERT_TRUE(ref.dsa.has_value());
  EXPECT_EQ(fast.dsa->takeovers, ref.dsa->takeovers) << wl.name;
  EXPECT_EQ(fast.dsa->rollbacks, ref.dsa->rollbacks) << wl.name;
}

INSTANTIATE_TEST_SUITE_P(Seeds64, DifferentialSweep, ::testing::Range(0, 64));

}  // namespace
}  // namespace dsa::workloads::gen
