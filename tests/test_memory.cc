#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "mem/memory.h"

namespace dsa::mem {
namespace {

TEST(Memory, StartsZeroed) {
  Memory m(64);
  for (std::uint32_t a = 0; a < 64; ++a) EXPECT_EQ(m.Read8(a), 0u);
}

TEST(Memory, ByteRoundTrip) {
  Memory m(16);
  m.Write8(3, 0xAB);
  EXPECT_EQ(m.Read8(3), 0xAB);
}

TEST(Memory, HalfwordLittleEndian) {
  Memory m(16);
  m.Write16(4, 0x1234);
  EXPECT_EQ(m.Read8(4), 0x34);
  EXPECT_EQ(m.Read8(5), 0x12);
  EXPECT_EQ(m.Read16(4), 0x1234);
}

TEST(Memory, WordLittleEndian) {
  Memory m(16);
  m.Write32(8, 0xDEADBEEF);
  EXPECT_EQ(m.Read8(8), 0xEF);
  EXPECT_EQ(m.Read8(11), 0xDE);
  EXPECT_EQ(m.Read32(8), 0xDEADBEEFu);
}

TEST(Memory, FloatRoundTrip) {
  Memory m(16);
  m.WriteF32(0, 3.25f);
  EXPECT_FLOAT_EQ(m.ReadF32(0), 3.25f);
}

TEST(Memory, UnalignedAccessAllowed) {
  Memory m(16);
  m.Write32(1, 0x01020304);
  EXPECT_EQ(m.Read32(1), 0x01020304u);
  EXPECT_EQ(m.Read16(2), 0x0203u);
}

TEST(Memory, BlockRoundTrip) {
  Memory m(64);
  const std::uint8_t src[5] = {1, 2, 3, 4, 5};
  m.WriteBlock(10, src, 5);
  std::uint8_t dst[5] = {};
  m.ReadBlock(10, dst, 5);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(dst[i], src[i]);
}

TEST(Memory, OutOfRangeByteThrows) {
  Memory m(8);
  EXPECT_THROW(static_cast<void>(m.Read8(8)), std::out_of_range);
  EXPECT_THROW(m.Write8(100, 1), std::out_of_range);
}

TEST(Memory, OutOfRangeWordStraddleThrows) {
  Memory m(8);
  EXPECT_THROW(static_cast<void>(m.Read32(6)), std::out_of_range);  // 6..9
  EXPECT_THROW(m.Write32(5, 1), std::out_of_range);
  EXPECT_NO_THROW(static_cast<void>(m.Read32(4)));
}

TEST(Memory, NearUint32MaxDoesNotWrap) {
  // Regression: the old `addr + n - 1` probe computed its upper bound in
  // 32 bits, so an access near UINT32_MAX wrapped around and passed the
  // bounds check. The size_t rewrite must reject it.
  Memory m(16);
  EXPECT_THROW(static_cast<void>(m.Read32(0xFFFFFFFEu)), std::out_of_range);
  EXPECT_THROW(m.Write32(0xFFFFFFFFu, 1), std::out_of_range);
  EXPECT_THROW(static_cast<void>(m.Read8(0xFFFFFFFFu)), std::out_of_range);
  try {
    static_cast<void>(m.Read32(0xFFFFFFFEu));
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("0xfffffffe"), std::string::npos) << msg;
    EXPECT_NE(msg.find("size=4"), std::string::npos) << msg;
    EXPECT_NE(msg.find("16 bytes"), std::string::npos) << msg;
  }
}

TEST(Memory, FailRangeMatchesAccessorException) {
  // FailRange is the out-of-line throw used by the interpreter's hoisted
  // bounds check; it must produce exactly the accessor exception.
  Memory m(8);
  std::string via_accessor, via_failrange;
  try {
    static_cast<void>(m.Read32(6));
  } catch (const std::out_of_range& e) {
    via_accessor = e.what();
  }
  try {
    m.FailRange(6, 4);
  } catch (const std::out_of_range& e) {
    via_failrange = e.what();
  }
  EXPECT_FALSE(via_accessor.empty());
  EXPECT_EQ(via_accessor, via_failrange);
}

TEST(Memory, OverlappingWritesLastWins) {
  Memory m(16);
  m.Write32(0, 0x11111111);
  m.Write16(2, 0xFFFF);
  EXPECT_EQ(m.Read32(0), 0xFFFF1111u);
}

}  // namespace
}  // namespace dsa::mem
