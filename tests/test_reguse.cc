#include <gtest/gtest.h>

#include <algorithm>

#include "engine/reguse.h"

namespace dsa::engine {
namespace {

using isa::Instruction;
using isa::Opcode;

bool HasSrc(const RegUse& u, int r) {
  return std::find(u.srcs.begin(), u.srcs.begin() + u.n_srcs, r) !=
         u.srcs.begin() + u.n_srcs;
}

TEST(RegUse, LoadReadsBaseWritesDest) {
  const RegUse u = UsesOf(isa::MakeLoad(Opcode::kLdr, 3, 5, 4));
  EXPECT_TRUE(HasSrc(u, 5));
  EXPECT_EQ(u.dst, 3);
  EXPECT_EQ(u.post_inc_reg, 5);
}

TEST(RegUse, LoadWithoutWritebackHasNoPostInc) {
  const RegUse u = UsesOf(isa::MakeLoad(Opcode::kLdr, 3, 5, 0));
  EXPECT_EQ(u.post_inc_reg, -1);
}

TEST(RegUse, StoreReadsValueAndBase) {
  const RegUse u = UsesOf(isa::MakeStore(Opcode::kStr, 3, 5, 4));
  EXPECT_TRUE(HasSrc(u, 3));
  EXPECT_TRUE(HasSrc(u, 5));
  EXPECT_EQ(u.dst, -1);
  EXPECT_EQ(u.post_inc_reg, 5);
}

TEST(RegUse, AluThreeOperand) {
  const RegUse u = UsesOf(isa::MakeAlu(Opcode::kAdd, 1, 2, 3));
  EXPECT_TRUE(HasSrc(u, 2));
  EXPECT_TRUE(HasSrc(u, 3));
  EXPECT_EQ(u.dst, 1);
}

TEST(RegUse, AluImmediateSingleSource) {
  const RegUse u = UsesOf(isa::MakeAluImm(Opcode::kAddi, 1, 2, 5));
  EXPECT_TRUE(HasSrc(u, 2));
  EXPECT_FALSE(HasSrc(u, 1));
  EXPECT_EQ(u.n_srcs, 1);
}

TEST(RegUse, MlaReadsThree) {
  Instruction i;
  i.op = Opcode::kMla;
  i.rd = 0;
  i.rn = 1;
  i.rm = 2;
  i.ra = 3;
  const RegUse u = UsesOf(i);
  EXPECT_EQ(u.n_srcs, 3);
  EXPECT_TRUE(HasSrc(u, 1));
  EXPECT_TRUE(HasSrc(u, 2));
  EXPECT_TRUE(HasSrc(u, 3));
}

TEST(RegUse, MovReadsOnlyRm) {
  Instruction i;
  i.op = Opcode::kMov;
  i.rd = 4;
  i.rm = 9;
  const RegUse u = UsesOf(i);
  EXPECT_EQ(u.n_srcs, 1);
  EXPECT_TRUE(HasSrc(u, 9));
}

TEST(RegUse, MoviReadsNothing) {
  const RegUse u = UsesOf(isa::MakeMovi(4, 7));
  EXPECT_EQ(u.n_srcs, 0);
  EXPECT_EQ(u.dst, 4);
}

TEST(RegUse, CompareVariants) {
  const RegUse c1 = UsesOf(isa::MakeCmp(1, 2));
  EXPECT_EQ(c1.n_srcs, 2);
  const RegUse c2 = UsesOf(isa::MakeCmpi(1, 42));
  EXPECT_EQ(c2.n_srcs, 1);
  EXPECT_EQ(c2.dst, -1);
}

TEST(RegUse, CallWritesLinkRegister) {
  Instruction i;
  i.op = Opcode::kBl;
  EXPECT_EQ(UsesOf(i).dst, isa::kLr);
}

TEST(RegUse, RetReadsLinkRegister) {
  Instruction i;
  i.op = Opcode::kRet;
  EXPECT_TRUE(HasSrc(UsesOf(i), isa::kLr));
}

TEST(RegUse, BranchTouchesNothing) {
  const RegUse u = UsesOf(isa::MakeBranch(isa::Cond::kAl, 0));
  EXPECT_EQ(u.n_srcs, 0);
  EXPECT_EQ(u.dst, -1);
}

}  // namespace
}  // namespace dsa::engine
