// Serving-layer tests (src/serve, docs/SERVING.md): strict flag-value
// parsing, wire-protocol framing over a socketpair, workload/config
// digests, the persistent result cache (round trip, corruption
// quarantine, version invalidation), the respawning worker pool,
// admission control, and the daemon end to end over a real Unix-domain
// socket — submit, cache-hit resubmit with bit-identical results,
// malformed requests, request deadlines and the graceful drain.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "resilience/mini_json.h"
#include "resilience/supervisor.h"
#include "serve/cache.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/flags.h"
#include "serve/pool.h"
#include "serve/proto.h"
#include "sim/runner.h"
#include "workloads/workloads.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define DSA_SERVE_E2E 1
#else
#define DSA_SERVE_E2E 0
#endif

// Forking the isolate out of the daemon's multi-threaded process is fine
// under ASan (glibc's atfork handlers serialize malloc) but not under
// TSan, whose runtime does not support multi-threaded fork.
#if defined(__SANITIZE_THREAD__)
#define DSA_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DSA_UNDER_TSAN 1
#endif
#endif
#ifndef DSA_UNDER_TSAN
#define DSA_UNDER_TSAN 0
#endif

namespace dsa::serve {
namespace {

using sim::BatchJob;
using sim::JobOutcome;
using sim::RunMode;
using sim::RunResult;
using sim::SystemConfig;
using sim::Workload;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "serve_" + name + "_" +
         std::to_string(::getpid());
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void Spew(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << data;
}

// ---------------------------------------------------------------------------
// Strict flag-value parsing (satellite: no silent defaults).

TEST(ServeFlags, ParsesWellFormedValues) {
  std::uint64_t u = 0;
  EXPECT_TRUE(ParseU64Text("0", u));
  EXPECT_EQ(u, 0u);
  EXPECT_TRUE(ParseU64Text("18446744073709551615", u));
  EXPECT_EQ(u, UINT64_MAX);
  long c = 0;
  EXPECT_TRUE(ParseCountText("42", c));
  EXPECT_EQ(c, 42);
  EXPECT_TRUE(ParseCountText("-3", c));
  EXPECT_EQ(c, -3);
}

TEST(ServeFlags, RefusesMalformedU64) {
  std::uint64_t u = 0;
  std::string err;
  EXPECT_FALSE(ParseU64Text("", u, &err));
  EXPECT_FALSE(ParseU64Text("12abc", u, &err));
  EXPECT_NE(err.find("12abc"), std::string::npos);
  EXPECT_FALSE(ParseU64Text("abc", u, &err));
  // A sign must not sneak through strtoull's wrap-around.
  EXPECT_FALSE(ParseU64Text("-1", u, &err));
  EXPECT_FALSE(ParseU64Text("+1", u, &err));
  // One past UINT64_MAX.
  EXPECT_FALSE(ParseU64Text("18446744073709551616", u, &err));
  EXPECT_NE(err.find("overflows"), std::string::npos);
}

TEST(ServeFlags, RefusesMalformedCount) {
  long c = 0;
  std::string err;
  EXPECT_FALSE(ParseCountText("", c, &err));
  EXPECT_FALSE(ParseCountText("7x", c, &err));
  EXPECT_FALSE(ParseCountText("999999999999999999999999", c, &err));
  EXPECT_NE(err.find("out of range"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Wire protocol framing.

#if DSA_SERVE_E2E

struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

TEST(Proto, FrameRoundTripsTypeAndPayload) {
  SocketPair sp;
  const std::string payload = "{\"x\":1}";
  ASSERT_TRUE(SendFrame(sp.a, kFrameRequest, payload));
  char type = 0;
  std::string got;
  EXPECT_EQ(RecvFrame(sp.b, type, got), RecvStatus::kOk);
  EXPECT_EQ(type, kFrameRequest);
  EXPECT_EQ(got, payload);
}

TEST(Proto, CleanEofIsClosedNotCorrupt) {
  SocketPair sp;
  ::close(sp.a);
  sp.a = -1;
  char type = 0;
  std::string got;
  EXPECT_EQ(RecvFrame(sp.b, type, got), RecvStatus::kClosed);
}

TEST(Proto, TornHeaderAndTornPayloadAreCorrupt) {
  {
    SocketPair sp;
    // Half a header, then hangup.
    ASSERT_EQ(::write(sp.a, "DSAS\x05", 5), 5);
    ::close(sp.a);
    sp.a = -1;
    char type = 0;
    std::string got;
    EXPECT_EQ(RecvFrame(sp.b, type, got), RecvStatus::kCorrupt);
  }
  {
    SocketPair sp;
    // A valid frame cut off mid-payload (peer died mid-send).
    std::string frame;
    {
      SocketPair full;
      ASSERT_TRUE(SendFrame(full.a, kFrameRequest, "{\"k\":\"v\"}"));
      char buf[64];
      const ssize_t n = ::read(full.b, buf, sizeof(buf));
      ASSERT_GT(n, 12);
      frame.assign(buf, static_cast<std::size_t>(n));
    }
    ASSERT_EQ(::write(sp.a, frame.data(), frame.size() - 3),
              static_cast<ssize_t>(frame.size() - 3));
    ::close(sp.a);
    sp.a = -1;
    char type = 0;
    std::string got;
    EXPECT_EQ(RecvFrame(sp.b, type, got), RecvStatus::kCorrupt);
  }
}

TEST(Proto, CrcMismatchAndBadMagicAreCorrupt) {
  {
    SocketPair sp;
    std::string frame;
    {
      SocketPair full;
      ASSERT_TRUE(SendFrame(full.a, kFrameResponse, "{\"ok\":true}"));
      char buf[64];
      const ssize_t n = ::read(full.b, buf, sizeof(buf));
      ASSERT_GT(n, 12);
      frame.assign(buf, static_cast<std::size_t>(n));
    }
    frame.back() ^= 0x40;  // flip a payload bit; CRC must catch it
    ASSERT_EQ(::write(sp.a, frame.data(), frame.size()),
              static_cast<ssize_t>(frame.size()));
    char type = 0;
    std::string got;
    EXPECT_EQ(RecvFrame(sp.b, type, got), RecvStatus::kCorrupt);
  }
  {
    SocketPair sp;
    const char junk[12] = {'J', 'U', 'N', 'K', 1, 0, 0, 0, 0, 0, 0, 0};
    ASSERT_EQ(::write(sp.a, junk, sizeof(junk)), 12);
    char type = 0;
    std::string got;
    EXPECT_EQ(RecvFrame(sp.b, type, got), RecvStatus::kCorrupt);
  }
}

TEST(Proto, OversizeLengthIsRefusedWithoutAllocation) {
  SocketPair sp;
  // Header claiming a 2 GB payload: must be classified, not allocated.
  std::string header = "DSAS";
  const std::uint32_t len = 0x80000000u;
  for (int i = 0; i < 4; ++i) {
    header.push_back(static_cast<char>((len >> (8 * i)) & 0xFF));
  }
  header.append(4, '\0');
  ASSERT_EQ(::write(sp.a, header.data(), header.size()), 12);
  char type = 0;
  std::string got;
  EXPECT_EQ(RecvFrame(sp.b, type, got), RecvStatus::kCorrupt);
  // And the sender refuses to build such a frame in the first place.
  const std::string huge(kMaxFrameBytes, 'x');
  EXPECT_FALSE(SendFrame(sp.a, kFrameRequest, huge));
}

#endif  // DSA_SERVE_E2E

// ---------------------------------------------------------------------------
// Cache keys: digests are stable and sensitive.

TEST(CacheKeyDigests, WorkloadDigestIsStableAcrossConstructions) {
  const Workload a = workloads::MakeVecAdd(512);
  const Workload b = workloads::MakeVecAdd(512);
  EXPECT_EQ(WorkloadDigest(a), WorkloadDigest(b));
}

TEST(CacheKeyDigests, WorkloadDigestSeesProgramAndDataChanges) {
  const Workload base = workloads::MakeVecAdd(512);
  const std::uint64_t d0 = WorkloadDigest(base);

  // A different element count changes program constants and init data.
  EXPECT_NE(WorkloadDigest(workloads::MakeVecAdd(256)), d0);

  Workload renamed = base;
  renamed.name = "VecAddRenamed";
  EXPECT_NE(WorkloadDigest(renamed), d0);

  Workload patched = base;
  ASSERT_FALSE(patched.scalar.code().empty());
  patched.scalar.code()[0].imm ^= 1;
  EXPECT_NE(WorkloadDigest(patched), d0);

  Workload different_data = base;
  auto inner = base.init;
  different_data.init = [inner](mem::Memory& m) {
    if (inner) inner(m);
    m.data()[0] ^= 0xFF;  // same programs, different input image
  };
  EXPECT_NE(WorkloadDigest(different_data), d0);
}

TEST(CacheKeyDigests, ConfigDigestSeesEveryLayer) {
  const SystemConfig base;
  const std::uint64_t d0 = ConfigDigest(base);
  EXPECT_EQ(ConfigDigest(SystemConfig{}), d0);

  SystemConfig timing = base;
  timing.timing.superscalar_width += 1;
  EXPECT_NE(ConfigDigest(timing), d0);

  SystemConfig memcfg = base;
  memcfg.memory.dram_latency += 10;
  EXPECT_NE(ConfigDigest(memcfg), d0);

  SystemConfig dsa = base;
  dsa.dsa = engine::DsaConfig::Original();
  EXPECT_NE(ConfigDigest(dsa), d0);

  SystemConfig energy = base;
  energy.energy.scalar_instr *= 2;
  EXPECT_NE(ConfigDigest(energy), d0);

  SystemConfig steps = base;
  steps.max_steps += 1;
  EXPECT_NE(ConfigDigest(steps), d0);
}

TEST(CacheKeyDigests, FileNameEncodesEveryKeyField) {
  CacheKey key;
  key.job_key = "VecAdd@arm-original";
  key.workload_digest = 0x1111;
  key.config_digest = 0x2222;
  const std::string name = key.FileName();
  EXPECT_EQ(name.size(), 16u + 5u);
  EXPECT_NE(name.find(".cell"), std::string::npos);

  // Any key-field change addresses a different file — version bumps
  // invalidate the whole cache by construction.
  CacheKey other = key;
  other.engine_version = "dsa-engine/0";
  EXPECT_NE(other.FileName(), name);
  other = key;
  other.bench_schema = "dsa-bench-json/0";
  EXPECT_NE(other.FileName(), name);
  other = key;
  other.job_key = "VecAdd@neon-dsa";
  EXPECT_NE(other.FileName(), name);
  other = key;
  other.workload_digest ^= 1;
  EXPECT_NE(other.FileName(), name);
  other = key;
  other.config_digest ^= 1;
  EXPECT_NE(other.FileName(), name);
}

// ---------------------------------------------------------------------------
// Persistent result cache.

JobOutcome FakeOutcome(const std::string& key) {
  JobOutcome out;
  out.key = key;
  out.workload_key = "VecAdd";
  out.mode = RunMode::kScalar;
  out.cell_status = "ok";
  out.attempts = 1;
  RunResult r;
  r.workload = "VecAdd";
  r.mode = RunMode::kScalar;
  r.output_ok = true;
  r.cycles = 123456;
  r.output_digest = 0xDEADBEEFCAFEF00Dull;
  out.runs.push_back(r);
  return out;
}

CacheKey FakeKey(const std::string& job_key) {
  CacheKey key;
  key.job_key = job_key;
  key.workload_digest = 0xAAAA;
  key.config_digest = 0xBBBB;
  return key;
}

TEST(ResultCacheTest, StoreLoadRoundTripsTheOutcome) {
  ResultCache cache;
  std::string err;
  ASSERT_TRUE(cache.Open(TempPath("roundtrip"), &err)) << err;
  const CacheKey key = FakeKey("VecAdd@arm-original");
  const JobOutcome out = FakeOutcome("VecAdd@arm-original");

  JobOutcome in;
  EXPECT_FALSE(cache.Load(key, in));  // cold
  ASSERT_TRUE(cache.Store(key, out));
  ASSERT_TRUE(cache.Load(key, in));
  EXPECT_EQ(in.key, out.key);
  EXPECT_EQ(in.cell_status, "ok");
  ASSERT_FALSE(in.runs.empty());
  EXPECT_EQ(in.result().cycles, out.result().cycles);
  EXPECT_EQ(in.result().output_digest, out.result().output_digest);

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.stores, 1u);
  EXPECT_EQ(stats.quarantined, 0u);
}

TEST(ResultCacheTest, CorruptEntryIsQuarantinedNotTrusted) {
  ResultCache cache;
  const std::string dir = TempPath("corrupt");
  ASSERT_TRUE(cache.Open(dir));
  const CacheKey key = FakeKey("VecAdd@arm-original");
  ASSERT_TRUE(cache.Store(key, FakeOutcome("VecAdd@arm-original")));

  const std::string path = dir + "/" + key.FileName();
  std::string raw = Slurp(path);
  ASSERT_GT(raw.size(), 20u);
  raw[15] ^= 0x20;  // flip one payload byte under the CRC
  Spew(path, raw);

  JobOutcome in;
  EXPECT_FALSE(cache.Load(key, in));
  EXPECT_EQ(cache.stats().quarantined, 1u);
  // The corrupt entry was moved aside, not deleted (forensics) and not
  // served; a fresh Store repopulates the slot.
  EXPECT_FALSE(Slurp(path + ".quarantine").empty());
  ASSERT_TRUE(cache.Store(key, FakeOutcome("VecAdd@arm-original")));
  EXPECT_TRUE(cache.Load(key, in));
}

TEST(ResultCacheTest, TruncatedEntryIsQuarantined) {
  ResultCache cache;
  const std::string dir = TempPath("trunc");
  ASSERT_TRUE(cache.Open(dir));
  const CacheKey key = FakeKey("VecAdd@neon-dsa");
  ASSERT_TRUE(cache.Store(key, FakeOutcome("VecAdd@neon-dsa")));
  const std::string path = dir + "/" + key.FileName();
  const std::string raw = Slurp(path);
  Spew(path, raw.substr(0, raw.size() / 2));  // torn write, no newline
  JobOutcome in;
  EXPECT_FALSE(cache.Load(key, in));
  EXPECT_EQ(cache.stats().quarantined, 1u);
}

TEST(ResultCacheTest, EntryForADifferentKeyIsAMissNotCorruption) {
  ResultCache cache;
  const std::string dir = TempPath("mismatch");
  ASSERT_TRUE(cache.Open(dir));
  const CacheKey stored = FakeKey("VecAdd@arm-original");
  ASSERT_TRUE(cache.Store(stored, FakeOutcome("VecAdd@arm-original")));

  // Plant the (valid) entry under the name a different key addresses —
  // a hash collision in effigy. Load must verify the stored key fields
  // and miss, leaving the file alone.
  CacheKey other = stored;
  other.job_key = "VecAdd@neon-dsa";
  ASSERT_EQ(::rename((dir + "/" + stored.FileName()).c_str(),
                     (dir + "/" + other.FileName()).c_str()),
            0);
  JobOutcome in;
  EXPECT_FALSE(cache.Load(other, in));
  EXPECT_EQ(cache.stats().quarantined, 0u);
  EXPECT_FALSE(Slurp(dir + "/" + other.FileName()).empty());
}

TEST(ResultCacheTest, VersionBumpInvalidatesByConstruction) {
  ResultCache cache;
  ASSERT_TRUE(cache.Open(TempPath("version")));
  CacheKey key = FakeKey("VecAdd@arm-original");
  ASSERT_TRUE(cache.Store(key, FakeOutcome("VecAdd@arm-original")));

  CacheKey bumped = key;
  bumped.engine_version = "dsa-engine/next";
  JobOutcome in;
  EXPECT_FALSE(cache.Load(bumped, in));  // different address: plain miss
  EXPECT_EQ(cache.stats().quarantined, 0u);
  EXPECT_TRUE(cache.Load(key, in));  // old entry still serves its version
}

// ---------------------------------------------------------------------------
// Worker pool: respawn with backoff, retirement, drain.

TEST(WorkerPoolTest, ExecutesSubmittedTasks) {
  WorkerPool pool(PoolOptions{.workers = 2});
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(pool.Submit([&ran] { ++ran; }));
  }
  pool.Drain();
  EXPECT_EQ(ran.load(), 16);
  EXPECT_EQ(pool.stats().executed, 16u);
  EXPECT_EQ(pool.stats().escaped, 0u);
}

TEST(WorkerPoolTest, EscapedTaskKillsOnlyItsWorkerAndRespawns) {
  WorkerPool pool(
      PoolOptions{.workers = 1, .backoff_base_ms = 1, .max_strikes = 5});
  ASSERT_TRUE(pool.Submit([] { throw std::runtime_error("poison"); }));
  // Wait for the respawn, then prove the pool still executes.
  std::atomic<bool> ran{false};
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pool.stats().live_workers > 0 &&
        pool.Submit([&ran] { ran = true; })) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  pool.Drain();
  EXPECT_TRUE(ran.load());
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.escaped, 1u);
  EXPECT_GE(stats.respawns, 1u);
  EXPECT_EQ(stats.executed, 1u);
}

TEST(WorkerPoolTest, RepeatOffenderIsRetiredAndSubmitRefuses) {
  WorkerPool pool(
      PoolOptions{.workers = 1, .backoff_base_ms = 1, .max_strikes = 2});
  for (int i = 0; i < 2; ++i) {
    // Serialize the escapes so both strikes land on the same worker.
    ASSERT_TRUE(pool.Submit([] { throw std::runtime_error("poison"); }));
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (pool.stats().escaped != static_cast<std::uint64_t>(i + 1) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  // After max_strikes consecutive escapes the slot retires for good.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (pool.stats().live_workers != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(pool.stats().live_workers, 0);
  EXPECT_FALSE(pool.Submit([] {}));
  pool.Drain();  // must not hang with every worker gone
}

// ---------------------------------------------------------------------------
// Admission control.

TEST(AdmissionControlTest, BoundsTotalQueueDepth) {
  AdmissionControl ac(/*queue_limit=*/2, /*client_quota=*/2);
  EXPECT_EQ(ac.Admit("a"), "");
  EXPECT_EQ(ac.Admit("b"), "");
  const std::string refused = ac.Admit("c");
  EXPECT_NE(refused.find("overload"), std::string::npos);
  EXPECT_NE(refused.find("queue full"), std::string::npos);
  ac.Done("a");
  EXPECT_EQ(ac.Admit("c"), "");
  EXPECT_EQ(ac.depth(), 2);
}

TEST(AdmissionControlTest, EnforcesPerClientQuota) {
  AdmissionControl ac(/*queue_limit=*/8, /*client_quota=*/1);
  EXPECT_EQ(ac.Admit("greedy"), "");
  const std::string refused = ac.Admit("greedy");
  EXPECT_NE(refused.find("over quota"), std::string::npos);
  EXPECT_EQ(ac.Admit("other"), "");  // siblings unaffected
  ac.Done("greedy");
  EXPECT_EQ(ac.Admit("greedy"), "");
}

// ---------------------------------------------------------------------------
// Daemon end to end over a real socket.

#if DSA_SERVE_E2E

class DaemonE2E : public ::testing::Test {
 protected:
  void SetUp() override {
    resilience::Supervisor::DrainFlag().store(false);
  }

  void TearDown() override {
    if (daemon_ != nullptr) {
      resilience::Supervisor::DrainFlag().store(true);
      if (serve_thread_.joinable()) serve_thread_.join();
      EXPECT_EQ(exit_code_, 3);  // graceful drain is exit 3, always
    }
    resilience::Supervisor::DrainFlag().store(false);
  }

  // Short socket path: sun_path is ~108 bytes and TempDir can be long.
  std::string SocketPath(const char* tag) {
    return "/tmp/dsa_serve_t" + std::to_string(::getpid()) + "_" + tag +
           ".sock";
  }

  void Start(DaemonOptions opts) {
    socket_path_ = opts.socket_path;
    daemon_ = std::make_unique<Daemon>(std::move(opts));
    std::string err;
    ASSERT_TRUE(daemon_->Init(&err)) << err;
    serve_thread_ = std::thread([this] { exit_code_ = daemon_->Serve(); });
    ClientOptions ping;
    ping.socket_path = socket_path_;
    ping.ping = true;
    ping.quiet = true;
    for (int i = 0; i < 250; ++i) {
      if (Submit(ping) == 0) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    FAIL() << "daemon never answered the ping";
  }

  resilience::JsonValue SubmitAndParse(const std::string& filter,
                                       int expect_exit,
                                       const char* tag) {
    ClientOptions c;
    c.socket_path = socket_path_;
    c.filter = filter;
    c.json_path = TempPath(std::string("resp_") + tag) + ".json";
    EXPECT_EQ(Submit(c), expect_exit);
    resilience::JsonValue resp;
    EXPECT_TRUE(resilience::ParseJson(Slurp(c.json_path), resp));
    return resp;
  }

  static std::string Field(const resilience::JsonValue& obj,
                           std::string_view name) {
    const resilience::JsonValue* v = obj.Find(name);
    return v != nullptr ? v->AsString() : std::string();
  }

  static bool FieldBool(const resilience::JsonValue& obj,
                        std::string_view name) {
    const resilience::JsonValue* v = obj.Find(name);
    return v != nullptr && v->AsBool();
  }

  std::string socket_path_;
  std::unique_ptr<Daemon> daemon_;
  std::thread serve_thread_;
  int exit_code_ = -1;
};

TEST_F(DaemonE2E, CacheHitResubmitIsBitIdentical) {
  DaemonOptions opts;
  opts.socket_path = SocketPath("cache");
  opts.cache_dir = TempPath("daemon_cache");
  opts.workers = 2;
  Start(std::move(opts));

  // One small cell: the scalar BitCount run of the bench_matrix space.
  const resilience::JsonValue first =
      SubmitAndParse("BitCount@arm-original", 0, "first");
  EXPECT_EQ(Field(first, "status"), "ok");
  EXPECT_EQ(Field(first, "cells_cached"), "0");
  ASSERT_TRUE(first.Find("cells") != nullptr &&
              first.Find("cells")->is_array());
  ASSERT_EQ(first.Find("cells")->array.size(), 1u);
  const resilience::JsonValue& cell0 = first.Find("cells")->array[0];
  EXPECT_EQ(Field(cell0, "cell_status"), "ok");
  EXPECT_FALSE(FieldBool(cell0, "cached"));

  const resilience::JsonValue second =
      SubmitAndParse("BitCount@arm-original", 0, "second");
  EXPECT_EQ(Field(second, "cells_cached"), "1");
  const resilience::JsonValue& cell1 = second.Find("cells")->array[0];
  EXPECT_TRUE(FieldBool(cell1, "cached"));
  // The promise of the persistent cache: bit-identical cycles + digest.
  EXPECT_EQ(Field(cell1, "cycles"), Field(cell0, "cycles"));
  EXPECT_EQ(Field(cell1, "output_digest"), Field(cell0, "output_digest"));
  EXPECT_NE(Field(cell1, "output_digest"), "");
}

TEST_F(DaemonE2E, MalformedRequestsGetTypedRefusals) {
  DaemonOptions opts;
  opts.socket_path = SocketPath("bad");
  Start(std::move(opts));

  // A filter matching nothing is a bad request, not an empty sweep.
  ClientOptions c;
  c.socket_path = socket_path_;
  c.filter = "no-such-workload-xyz";
  c.quiet = true;
  EXPECT_EQ(Submit(c), 4);

  // Hand-rolled connection: a frame that is not JSON.
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  ASSERT_TRUE(SendFrame(fd, kFrameRequest, "this is not json"));
  char type = 0;
  std::string json;
  ASSERT_EQ(RecvFrame(fd, type, json), RecvStatus::kOk);
  ::close(fd);
  resilience::JsonValue resp;
  ASSERT_TRUE(resilience::ParseJson(json, resp));
  EXPECT_EQ(Field(resp, "status"), "bad-request");

  // Raw garbage bytes (corrupt frame): the daemon hangs up without a
  // response and must survive to answer the next request.
  fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  ASSERT_EQ(::write(fd, "garbage-bytes", 13), 13);
  ::close(fd);
  ClientOptions ping;
  ping.socket_path = socket_path_;
  ping.ping = true;
  ping.quiet = true;
  int rc = -1;
  for (int i = 0; i < 100; ++i) {
    rc = Submit(ping);
    if (rc == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(rc, 0);

  // An unknown request schema is refused with a typed bad-request.
  ClientOptions unknown = c;
  unknown.filter.clear();
  // (Covered above via raw frame; the client always sends the right
  // schema, so exercise the deadline refusal here instead.)
  unknown.deadline_ms = 1;
  unknown.quiet = true;
  EXPECT_EQ(Submit(unknown), 4);  // expires before any cell completes
}

TEST_F(DaemonE2E, IsolatedCrashCellPoisonsOnlyItself) {
#if DSA_UNDER_TSAN
  GTEST_SKIP() << "fork from the daemon's threaded process is unsupported "
                  "under TSan";
#endif
  DaemonOptions opts;
  opts.socket_path = SocketPath("crash");
  opts.isolate = true;
  // The Fig-16 "orig" DSA cell crashes; the extended sibling completes.
  opts.crash_cell = "BitCount@neon-dsa/orig";
  Start(std::move(opts));

  const resilience::JsonValue resp =
      SubmitAndParse("BitCount@neon-dsa", 1, "crash");
  EXPECT_EQ(Field(resp, "status"), "ok");
  ASSERT_TRUE(resp.Find("cells") != nullptr && resp.Find("cells")->is_array());
  ASSERT_EQ(resp.Find("cells")->array.size(), 2u);
  int crashed = 0;
  int ok = 0;
  for (const resilience::JsonValue& cell : resp.Find("cells")->array) {
    const std::string status = Field(cell, "cell_status");
    if (Field(cell, "job") == "BitCount@neon-dsa/orig") {
      EXPECT_EQ(status, "crashed");
      ++crashed;
    } else {
      EXPECT_EQ(status, "ok");
      ++ok;
    }
  }
  EXPECT_EQ(crashed, 1);
  EXPECT_EQ(ok, 1);
}

#endif  // DSA_SERVE_E2E

}  // namespace
}  // namespace dsa::serve
