// Serving-layer tests (src/serve, docs/SERVING.md): strict flag-value
// parsing, wire-protocol framing over a socketpair, workload/config
// digests, the persistent result cache (round trip, corruption
// quarantine, version invalidation), the respawning worker pool,
// admission control, and the daemon end to end over a real Unix-domain
// socket — submit, cache-hit resubmit with bit-identical results,
// malformed requests, request deadlines and the graceful drain.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "resilience/iofault.h"
#include "resilience/mini_json.h"
#include "resilience/supervisor.h"
#include "serve/cache.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/flags.h"
#include "serve/pool.h"
#include "serve/proto.h"
#include "sim/runner.h"
#include "workloads/workloads.h"

#if defined(__unix__) || defined(__APPLE__)
#include <dirent.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define DSA_SERVE_E2E 1
#else
#define DSA_SERVE_E2E 0
#endif

// Forking the isolate out of the daemon's multi-threaded process is fine
// under ASan (glibc's atfork handlers serialize malloc) but not under
// TSan, whose runtime does not support multi-threaded fork.
#if defined(__SANITIZE_THREAD__)
#define DSA_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DSA_UNDER_TSAN 1
#endif
#endif
#ifndef DSA_UNDER_TSAN
#define DSA_UNDER_TSAN 0
#endif

namespace dsa::serve {
namespace {

using sim::BatchJob;
using sim::JobOutcome;
using sim::RunMode;
using sim::RunResult;
using sim::SystemConfig;
using sim::Workload;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "serve_" + name + "_" +
         std::to_string(::getpid());
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void Spew(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << data;
}

// ---------------------------------------------------------------------------
// Strict flag-value parsing (satellite: no silent defaults).

TEST(ServeFlags, ParsesWellFormedValues) {
  std::uint64_t u = 0;
  EXPECT_TRUE(ParseU64Text("0", u));
  EXPECT_EQ(u, 0u);
  EXPECT_TRUE(ParseU64Text("18446744073709551615", u));
  EXPECT_EQ(u, UINT64_MAX);
  long c = 0;
  EXPECT_TRUE(ParseCountText("42", c));
  EXPECT_EQ(c, 42);
  EXPECT_TRUE(ParseCountText("-3", c));
  EXPECT_EQ(c, -3);
}

TEST(ServeFlags, RefusesMalformedU64) {
  std::uint64_t u = 0;
  std::string err;
  EXPECT_FALSE(ParseU64Text("", u, &err));
  EXPECT_FALSE(ParseU64Text("12abc", u, &err));
  EXPECT_NE(err.find("12abc"), std::string::npos);
  EXPECT_FALSE(ParseU64Text("abc", u, &err));
  // A sign must not sneak through strtoull's wrap-around.
  EXPECT_FALSE(ParseU64Text("-1", u, &err));
  EXPECT_FALSE(ParseU64Text("+1", u, &err));
  // One past UINT64_MAX.
  EXPECT_FALSE(ParseU64Text("18446744073709551616", u, &err));
  EXPECT_NE(err.find("overflows"), std::string::npos);
}

TEST(ServeFlags, RefusesMalformedCount) {
  long c = 0;
  std::string err;
  EXPECT_FALSE(ParseCountText("", c, &err));
  EXPECT_FALSE(ParseCountText("7x", c, &err));
  EXPECT_FALSE(ParseCountText("999999999999999999999999", c, &err));
  EXPECT_NE(err.find("out of range"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Wire protocol framing.

#if DSA_SERVE_E2E

struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

TEST(Proto, FrameRoundTripsTypeAndPayload) {
  SocketPair sp;
  const std::string payload = "{\"x\":1}";
  ASSERT_TRUE(SendFrame(sp.a, kFrameRequest, payload));
  char type = 0;
  std::string got;
  EXPECT_EQ(RecvFrame(sp.b, type, got), RecvStatus::kOk);
  EXPECT_EQ(type, kFrameRequest);
  EXPECT_EQ(got, payload);
}

TEST(Proto, CleanEofIsClosedNotCorrupt) {
  SocketPair sp;
  ::close(sp.a);
  sp.a = -1;
  char type = 0;
  std::string got;
  EXPECT_EQ(RecvFrame(sp.b, type, got), RecvStatus::kClosed);
}

TEST(Proto, TornHeaderAndTornPayloadAreCorrupt) {
  {
    SocketPair sp;
    // Half a header, then hangup.
    ASSERT_EQ(::write(sp.a, "DSAS\x05", 5), 5);
    ::close(sp.a);
    sp.a = -1;
    char type = 0;
    std::string got;
    EXPECT_EQ(RecvFrame(sp.b, type, got), RecvStatus::kCorrupt);
  }
  {
    SocketPair sp;
    // A valid frame cut off mid-payload (peer died mid-send).
    std::string frame;
    {
      SocketPair full;
      ASSERT_TRUE(SendFrame(full.a, kFrameRequest, "{\"k\":\"v\"}"));
      char buf[64];
      const ssize_t n = ::read(full.b, buf, sizeof(buf));
      ASSERT_GT(n, 12);
      frame.assign(buf, static_cast<std::size_t>(n));
    }
    ASSERT_EQ(::write(sp.a, frame.data(), frame.size() - 3),
              static_cast<ssize_t>(frame.size() - 3));
    ::close(sp.a);
    sp.a = -1;
    char type = 0;
    std::string got;
    EXPECT_EQ(RecvFrame(sp.b, type, got), RecvStatus::kCorrupt);
  }
}

TEST(Proto, CrcMismatchAndBadMagicAreCorrupt) {
  {
    SocketPair sp;
    std::string frame;
    {
      SocketPair full;
      ASSERT_TRUE(SendFrame(full.a, kFrameResponse, "{\"ok\":true}"));
      char buf[64];
      const ssize_t n = ::read(full.b, buf, sizeof(buf));
      ASSERT_GT(n, 12);
      frame.assign(buf, static_cast<std::size_t>(n));
    }
    frame.back() ^= 0x40;  // flip a payload bit; CRC must catch it
    ASSERT_EQ(::write(sp.a, frame.data(), frame.size()),
              static_cast<ssize_t>(frame.size()));
    char type = 0;
    std::string got;
    EXPECT_EQ(RecvFrame(sp.b, type, got), RecvStatus::kCorrupt);
  }
  {
    SocketPair sp;
    const char junk[12] = {'J', 'U', 'N', 'K', 1, 0, 0, 0, 0, 0, 0, 0};
    ASSERT_EQ(::write(sp.a, junk, sizeof(junk)), 12);
    char type = 0;
    std::string got;
    EXPECT_EQ(RecvFrame(sp.b, type, got), RecvStatus::kCorrupt);
  }
}

TEST(Proto, OversizeLengthIsRefusedWithoutAllocation) {
  SocketPair sp;
  // Header claiming a 2 GB payload: must be classified, not allocated.
  std::string header = "DSAS";
  const std::uint32_t len = 0x80000000u;
  for (int i = 0; i < 4; ++i) {
    header.push_back(static_cast<char>((len >> (8 * i)) & 0xFF));
  }
  header.append(4, '\0');
  ASSERT_EQ(::write(sp.a, header.data(), header.size()), 12);
  char type = 0;
  std::string got;
  EXPECT_EQ(RecvFrame(sp.b, type, got), RecvStatus::kCorrupt);
  // And the sender refuses to build such a frame in the first place.
  const std::string huge(kMaxFrameBytes, 'x');
  EXPECT_FALSE(SendFrame(sp.a, kFrameRequest, huge));
}

#endif  // DSA_SERVE_E2E

// ---------------------------------------------------------------------------
// Cache keys: digests are stable and sensitive.

TEST(CacheKeyDigests, WorkloadDigestIsStableAcrossConstructions) {
  const Workload a = workloads::MakeVecAdd(512);
  const Workload b = workloads::MakeVecAdd(512);
  EXPECT_EQ(WorkloadDigest(a), WorkloadDigest(b));
}

TEST(CacheKeyDigests, WorkloadDigestSeesProgramAndDataChanges) {
  const Workload base = workloads::MakeVecAdd(512);
  const std::uint64_t d0 = WorkloadDigest(base);

  // A different element count changes program constants and init data.
  EXPECT_NE(WorkloadDigest(workloads::MakeVecAdd(256)), d0);

  Workload renamed = base;
  renamed.name = "VecAddRenamed";
  EXPECT_NE(WorkloadDigest(renamed), d0);

  Workload patched = base;
  ASSERT_FALSE(patched.scalar.code().empty());
  patched.scalar.code()[0].imm ^= 1;
  EXPECT_NE(WorkloadDigest(patched), d0);

  Workload different_data = base;
  auto inner = base.init;
  different_data.init = [inner](mem::Memory& m) {
    if (inner) inner(m);
    m.data()[0] ^= 0xFF;  // same programs, different input image
  };
  EXPECT_NE(WorkloadDigest(different_data), d0);
}

TEST(CacheKeyDigests, ConfigDigestSeesEveryLayer) {
  const SystemConfig base;
  const std::uint64_t d0 = ConfigDigest(base);
  EXPECT_EQ(ConfigDigest(SystemConfig{}), d0);

  SystemConfig timing = base;
  timing.timing.superscalar_width += 1;
  EXPECT_NE(ConfigDigest(timing), d0);

  SystemConfig memcfg = base;
  memcfg.memory.dram_latency += 10;
  EXPECT_NE(ConfigDigest(memcfg), d0);

  SystemConfig dsa = base;
  dsa.dsa = engine::DsaConfig::Original();
  EXPECT_NE(ConfigDigest(dsa), d0);

  SystemConfig energy = base;
  energy.energy.scalar_instr *= 2;
  EXPECT_NE(ConfigDigest(energy), d0);

  SystemConfig steps = base;
  steps.max_steps += 1;
  EXPECT_NE(ConfigDigest(steps), d0);
}

TEST(CacheKeyDigests, FileNameEncodesEveryKeyField) {
  CacheKey key;
  key.job_key = "VecAdd@arm-original";
  key.workload_digest = 0x1111;
  key.config_digest = 0x2222;
  const std::string name = key.FileName();
  EXPECT_EQ(name.size(), 16u + 5u);
  EXPECT_NE(name.find(".cell"), std::string::npos);

  // Any key-field change addresses a different file — version bumps
  // invalidate the whole cache by construction.
  CacheKey other = key;
  other.engine_version = "dsa-engine/0";
  EXPECT_NE(other.FileName(), name);
  other = key;
  other.bench_schema = "dsa-bench-json/0";
  EXPECT_NE(other.FileName(), name);
  other = key;
  other.job_key = "VecAdd@neon-dsa";
  EXPECT_NE(other.FileName(), name);
  other = key;
  other.workload_digest ^= 1;
  EXPECT_NE(other.FileName(), name);
  other = key;
  other.config_digest ^= 1;
  EXPECT_NE(other.FileName(), name);
}

// ---------------------------------------------------------------------------
// Persistent result cache.

JobOutcome FakeOutcome(const std::string& key) {
  JobOutcome out;
  out.key = key;
  out.workload_key = "VecAdd";
  out.mode = RunMode::kScalar;
  out.cell_status = "ok";
  out.attempts = 1;
  RunResult r;
  r.workload = "VecAdd";
  r.mode = RunMode::kScalar;
  r.output_ok = true;
  r.cycles = 123456;
  r.output_digest = 0xDEADBEEFCAFEF00Dull;
  out.runs.push_back(r);
  return out;
}

CacheKey FakeKey(const std::string& job_key) {
  CacheKey key;
  key.job_key = job_key;
  key.workload_digest = 0xAAAA;
  key.config_digest = 0xBBBB;
  return key;
}

TEST(ResultCacheTest, StoreLoadRoundTripsTheOutcome) {
  ResultCache cache;
  std::string err;
  ASSERT_TRUE(cache.Open(TempPath("roundtrip"), &err)) << err;
  const CacheKey key = FakeKey("VecAdd@arm-original");
  const JobOutcome out = FakeOutcome("VecAdd@arm-original");

  JobOutcome in;
  EXPECT_FALSE(cache.Load(key, in));  // cold
  ASSERT_TRUE(cache.Store(key, out));
  ASSERT_TRUE(cache.Load(key, in));
  EXPECT_EQ(in.key, out.key);
  EXPECT_EQ(in.cell_status, "ok");
  ASSERT_FALSE(in.runs.empty());
  EXPECT_EQ(in.result().cycles, out.result().cycles);
  EXPECT_EQ(in.result().output_digest, out.result().output_digest);

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.stores, 1u);
  EXPECT_EQ(stats.quarantined, 0u);
}

TEST(ResultCacheTest, CorruptEntryIsQuarantinedNotTrusted) {
  ResultCache cache;
  const std::string dir = TempPath("corrupt");
  ASSERT_TRUE(cache.Open(dir));
  const CacheKey key = FakeKey("VecAdd@arm-original");
  ASSERT_TRUE(cache.Store(key, FakeOutcome("VecAdd@arm-original")));

  const std::string path = dir + "/" + key.FileName();
  std::string raw = Slurp(path);
  ASSERT_GT(raw.size(), 20u);
  raw[15] ^= 0x20;  // flip one payload byte under the CRC
  Spew(path, raw);

  JobOutcome in;
  EXPECT_FALSE(cache.Load(key, in));
  EXPECT_EQ(cache.stats().quarantined, 1u);
  // The corrupt entry was moved aside, not deleted (forensics) and not
  // served; a fresh Store repopulates the slot.
  EXPECT_FALSE(Slurp(path + ".quarantine").empty());
  ASSERT_TRUE(cache.Store(key, FakeOutcome("VecAdd@arm-original")));
  EXPECT_TRUE(cache.Load(key, in));
}

TEST(ResultCacheTest, TruncatedEntryIsQuarantined) {
  ResultCache cache;
  const std::string dir = TempPath("trunc");
  ASSERT_TRUE(cache.Open(dir));
  const CacheKey key = FakeKey("VecAdd@neon-dsa");
  ASSERT_TRUE(cache.Store(key, FakeOutcome("VecAdd@neon-dsa")));
  const std::string path = dir + "/" + key.FileName();
  const std::string raw = Slurp(path);
  Spew(path, raw.substr(0, raw.size() / 2));  // torn write, no newline
  JobOutcome in;
  EXPECT_FALSE(cache.Load(key, in));
  EXPECT_EQ(cache.stats().quarantined, 1u);
}

TEST(ResultCacheTest, EntryForADifferentKeyIsAMissNotCorruption) {
  ResultCache cache;
  const std::string dir = TempPath("mismatch");
  ASSERT_TRUE(cache.Open(dir));
  const CacheKey stored = FakeKey("VecAdd@arm-original");
  ASSERT_TRUE(cache.Store(stored, FakeOutcome("VecAdd@arm-original")));

  // Plant the (valid) entry under the name a different key addresses —
  // a hash collision in effigy. Load must verify the stored key fields
  // and miss, leaving the file alone.
  CacheKey other = stored;
  other.job_key = "VecAdd@neon-dsa";
  ASSERT_EQ(::rename((dir + "/" + stored.FileName()).c_str(),
                     (dir + "/" + other.FileName()).c_str()),
            0);
  JobOutcome in;
  EXPECT_FALSE(cache.Load(other, in));
  EXPECT_EQ(cache.stats().quarantined, 0u);
  EXPECT_FALSE(Slurp(dir + "/" + other.FileName()).empty());
}

TEST(ResultCacheTest, VersionBumpInvalidatesByConstruction) {
  ResultCache cache;
  ASSERT_TRUE(cache.Open(TempPath("version")));
  CacheKey key = FakeKey("VecAdd@arm-original");
  ASSERT_TRUE(cache.Store(key, FakeOutcome("VecAdd@arm-original")));

  CacheKey bumped = key;
  bumped.engine_version = "dsa-engine/next";
  JobOutcome in;
  EXPECT_FALSE(cache.Load(bumped, in));  // different address: plain miss
  EXPECT_EQ(cache.stats().quarantined, 0u);
  EXPECT_TRUE(cache.Load(key, in));  // old entry still serves its version
}

// ---------------------------------------------------------------------------
// Typed degradation under injected host-I/O faults (resilience/iofault.h):
// every fault kind must surface as a counted store failure — never a
// published-but-torn entry, never a silent success.

struct IoFaultPlanGuard {
  ~IoFaultPlanGuard() { resilience::ClearIoFaultPlan(); }
};

class ResultCacheIoFault : public ::testing::TestWithParam<const char*> {};

TEST_P(ResultCacheIoFault, StoreFailsTypedAndNothingTornIsServed) {
  IoFaultPlanGuard guard;
  ResultCache cache;
  const std::string dir = TempPath(std::string("iofault_") + GetParam());
  ASSERT_TRUE(cache.Open(dir));
  const CacheKey key = FakeKey("VecAdd@arm-original");

  resilience::InstallIoFaultPlan(resilience::ParseIoFaultPlan(GetParam()));
  EXPECT_FALSE(cache.Store(key, FakeOutcome("VecAdd@arm-original")));
  EXPECT_EQ(cache.stats().store_failures, 1u);
  EXPECT_EQ(cache.stats().stores, 0u);
  // Nothing was published under the final name, and nothing torn can be
  // loaded — the failed store is a clean miss, not corruption.
  JobOutcome in;
  EXPECT_FALSE(cache.Load(key, in));
  EXPECT_EQ(cache.stats().quarantined, 0u);

  // Degradation is recompute-without-promote: once the fault plan is
  // exhausted (count=1), the same store succeeds and round-trips.
  resilience::ClearIoFaultPlan();
  EXPECT_TRUE(cache.Store(key, FakeOutcome("VecAdd@arm-original")));
  EXPECT_TRUE(cache.Load(key, in));
  EXPECT_EQ(in.result().output_digest, 0xDEADBEEFCAFEF00Dull);
}

INSTANTIATE_TEST_SUITE_P(EveryFailingKind, ResultCacheIoFault,
                         ::testing::Values("enospc@0", "eio@0", "open-fail@0",
                                           "fsync-fail@0", "rename-fail@0"));

TEST(ResultCacheIoFaultDetail, TmpFsyncRefusalCountsBothCensusFields) {
  IoFaultPlanGuard guard;
  ResultCache cache;
  ASSERT_TRUE(cache.Open(TempPath("iofault_fsync_census")));
  resilience::InstallIoFaultPlan(resilience::ParseIoFaultPlan("fsync-fail@0"));
  EXPECT_FALSE(cache.Store(FakeKey("VecAdd@arm-original"),
                           FakeOutcome("VecAdd@arm-original")));
  // A refused tmp fsync means the entry was never durable: counted as a
  // store failure AND as a refused fsync.
  EXPECT_EQ(cache.stats().store_failures, 1u);
  EXPECT_EQ(cache.stats().fsync_failures, 1u);
}

TEST(ResultCacheIoFaultDetail, ShortWritesAreRetriedToAnIntactEntry) {
  IoFaultPlanGuard guard;
  ResultCache cache;
  ASSERT_TRUE(cache.Open(TempPath("iofault_short")));
  const CacheKey key = FakeKey("VecAdd@arm-original");
  // Every write is shortened, but Store's retry loop finishes the line;
  // the published entry must be byte-perfect (the CRC proves it).
  resilience::InstallIoFaultPlan(
      resilience::ParseIoFaultPlan("short-write@0+;seed=5"));
  ASSERT_TRUE(cache.Store(key, FakeOutcome("VecAdd@arm-original")));
  const resilience::IoFaultCensus census = resilience::GetIoFaultCensus();
  EXPECT_GT(census.fired[static_cast<int>(
                resilience::IoFaultKind::kShortWrite)],
            0u);
  JobOutcome in;
  EXPECT_TRUE(cache.Load(key, in));
  EXPECT_EQ(cache.stats().quarantined, 0u);
  EXPECT_EQ(in.result().cycles, 123456u);
}

// ---------------------------------------------------------------------------
// Boot-time cache scrub.

TEST(ResultCacheScrub, QuarantinesCorruptEntriesBeforeServing) {
  ResultCache cache;
  const std::string dir = TempPath("scrub");
  ASSERT_TRUE(cache.Open(dir));
  const CacheKey good = FakeKey("VecAdd@arm-original");
  const CacheKey bad = FakeKey("VecAdd@neon-dsa");
  ASSERT_TRUE(cache.Store(good, FakeOutcome("VecAdd@arm-original")));
  ASSERT_TRUE(cache.Store(bad, FakeOutcome("VecAdd@neon-dsa")));

  // Bit-rot one entry on disk, then scrub as a fresh boot would.
  const std::string victim = dir + "/" + bad.FileName();
  std::string raw = Slurp(victim);
  ASSERT_GT(raw.size(), 24u);
  raw[raw.size() / 2] ^= 0x5A;
  Spew(victim, raw);

  const ScrubStats stats = cache.Scrub();
  EXPECT_EQ(stats.checked, 2u);
  EXPECT_EQ(stats.ok, 1u);
  EXPECT_EQ(stats.quarantined, 1u);
  EXPECT_EQ(cache.scrub_stats().quarantined, 1u);
  // The corrupt entry was moved aside (forensics), the good one kept.
  EXPECT_FALSE(Slurp(victim + ".quarantine").empty());
  EXPECT_TRUE(Slurp(victim).empty());
  JobOutcome in;
  EXPECT_TRUE(cache.Load(good, in));
  EXPECT_FALSE(cache.Load(bad, in));
}

TEST(ResultCacheScrub, CleanDirectoryScrubsGreen) {
  ResultCache cache;
  ASSERT_TRUE(cache.Open(TempPath("scrub_clean")));
  ASSERT_TRUE(cache.Store(FakeKey("VecAdd@arm-original"),
                          FakeOutcome("VecAdd@arm-original")));
  const ScrubStats stats = cache.Scrub();
  EXPECT_EQ(stats.checked, 1u);
  EXPECT_EQ(stats.ok, 1u);
  EXPECT_EQ(stats.quarantined, 0u);
}

// ---------------------------------------------------------------------------
// Two cache instances sharing one directory (two daemons in the soak
// drill): concurrent stores of the same keys must never publish a torn
// entry — every load sees either nothing or a complete CRC-valid cell.

TEST(SharedCacheDir, ConcurrentStoresNeverTearEntries) {
  const std::string dir = TempPath("shared");
  ResultCache a;
  ResultCache b;
  ASSERT_TRUE(a.Open(dir));
  ASSERT_TRUE(b.Open(dir));

  constexpr int kKeys = 8;
  constexpr int kRounds = 25;
  std::atomic<bool> torn{false};
  const auto hammer = [&](ResultCache& cache) {
    for (int r = 0; r < kRounds; ++r) {
      for (int k = 0; k < kKeys; ++k) {
        const std::string jk = "VecAdd@key" + std::to_string(k);
        (void)cache.Store(FakeKey(jk), FakeOutcome(jk));
        JobOutcome in;
        if (cache.Load(FakeKey(jk), in) &&
            in.result().output_digest != 0xDEADBEEFCAFEF00Dull) {
          torn = true;  // served bytes that match no store ever issued
        }
      }
    }
  };
  std::thread ta([&] { hammer(a); });
  std::thread tb([&] { hammer(b); });
  ta.join();
  tb.join();
  EXPECT_FALSE(torn.load());
  // Nobody quarantined anything: rename is atomic, so no reader ever saw
  // a half-written entry under a final name.
  EXPECT_EQ(a.stats().quarantined, 0u);
  EXPECT_EQ(b.stats().quarantined, 0u);
  // And no tmp litter survived the races.
  const ScrubStats stats = a.Scrub();
  EXPECT_EQ(stats.checked, static_cast<std::uint64_t>(kKeys));
  EXPECT_EQ(stats.quarantined, 0u);
}

// ---------------------------------------------------------------------------
// Worker pool: respawn with backoff, retirement, drain.

TEST(WorkerPoolTest, ExecutesSubmittedTasks) {
  WorkerPool pool(PoolOptions{.workers = 2});
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(pool.Submit([&ran] { ++ran; }));
  }
  pool.Drain();
  EXPECT_EQ(ran.load(), 16);
  EXPECT_EQ(pool.stats().executed, 16u);
  EXPECT_EQ(pool.stats().escaped, 0u);
}

TEST(WorkerPoolTest, EscapedTaskKillsOnlyItsWorkerAndRespawns) {
  WorkerPool pool(
      PoolOptions{.workers = 1, .backoff_base_ms = 1, .max_strikes = 5});
  ASSERT_TRUE(pool.Submit([] { throw std::runtime_error("poison"); }));
  // Wait for the respawn, then prove the pool still executes.
  std::atomic<bool> ran{false};
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pool.stats().live_workers > 0 &&
        pool.Submit([&ran] { ran = true; })) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  pool.Drain();
  EXPECT_TRUE(ran.load());
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.escaped, 1u);
  EXPECT_GE(stats.respawns, 1u);
  EXPECT_EQ(stats.executed, 1u);
}

TEST(WorkerPoolTest, RepeatOffenderIsRetiredAndSubmitRefuses) {
  WorkerPool pool(
      PoolOptions{.workers = 1, .backoff_base_ms = 1, .max_strikes = 2});
  for (int i = 0; i < 2; ++i) {
    // Serialize the escapes so both strikes land on the same worker.
    ASSERT_TRUE(pool.Submit([] { throw std::runtime_error("poison"); }));
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (pool.stats().escaped != static_cast<std::uint64_t>(i + 1) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  // After max_strikes consecutive escapes the slot retires for good.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (pool.stats().live_workers != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(pool.stats().live_workers, 0);
  EXPECT_FALSE(pool.Submit([] {}));
  pool.Drain();  // must not hang with every worker gone
}

// ---------------------------------------------------------------------------
// Admission control.

TEST(AdmissionControlTest, BoundsTotalQueueDepth) {
  AdmissionControl ac(/*queue_limit=*/2, /*client_quota=*/2);
  EXPECT_EQ(ac.Admit("a"), "");
  EXPECT_EQ(ac.Admit("b"), "");
  const std::string refused = ac.Admit("c");
  EXPECT_NE(refused.find("overload"), std::string::npos);
  EXPECT_NE(refused.find("queue full"), std::string::npos);
  ac.Done("a");
  EXPECT_EQ(ac.Admit("c"), "");
  EXPECT_EQ(ac.depth(), 2);
}

TEST(AdmissionControlTest, EnforcesPerClientQuota) {
  AdmissionControl ac(/*queue_limit=*/8, /*client_quota=*/1);
  EXPECT_EQ(ac.Admit("greedy"), "");
  const std::string refused = ac.Admit("greedy");
  EXPECT_NE(refused.find("over quota"), std::string::npos);
  EXPECT_EQ(ac.Admit("other"), "");  // siblings unaffected
  ac.Done("greedy");
  EXPECT_EQ(ac.Admit("greedy"), "");
}

// ---------------------------------------------------------------------------
// Daemon end to end over a real socket.

#if DSA_SERVE_E2E

class DaemonE2E : public ::testing::Test {
 protected:
  void SetUp() override {
    resilience::Supervisor::DrainFlag().store(false);
  }

  void TearDown() override {
    if (daemon_ != nullptr) {
      resilience::Supervisor::DrainFlag().store(true);
      if (serve_thread_.joinable()) serve_thread_.join();
      EXPECT_EQ(exit_code_, 3);  // graceful drain is exit 3, always
    }
    resilience::Supervisor::DrainFlag().store(false);
  }

  // Short socket path: sun_path is ~108 bytes and TempDir can be long.
  std::string SocketPath(const char* tag) {
    return "/tmp/dsa_serve_t" + std::to_string(::getpid()) + "_" + tag +
           ".sock";
  }

  void Start(DaemonOptions opts) {
    socket_path_ = opts.socket_path;
    daemon_ = std::make_unique<Daemon>(std::move(opts));
    std::string err;
    ASSERT_TRUE(daemon_->Init(&err)) << err;
    serve_thread_ = std::thread([this] { exit_code_ = daemon_->Serve(); });
    ClientOptions ping;
    ping.socket_path = socket_path_;
    ping.ping = true;
    ping.quiet = true;
    for (int i = 0; i < 250; ++i) {
      if (Submit(ping) == 0) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    FAIL() << "daemon never answered the ping";
  }

  resilience::JsonValue SubmitAndParse(const std::string& filter,
                                       int expect_exit,
                                       const char* tag) {
    ClientOptions c;
    c.socket_path = socket_path_;
    c.filter = filter;
    c.json_path = TempPath(std::string("resp_") + tag) + ".json";
    EXPECT_EQ(Submit(c), expect_exit);
    resilience::JsonValue resp;
    EXPECT_TRUE(resilience::ParseJson(Slurp(c.json_path), resp));
    return resp;
  }

  static std::string Field(const resilience::JsonValue& obj,
                           std::string_view name) {
    const resilience::JsonValue* v = obj.Find(name);
    return v != nullptr ? v->AsString() : std::string();
  }

  static bool FieldBool(const resilience::JsonValue& obj,
                        std::string_view name) {
    const resilience::JsonValue* v = obj.Find(name);
    return v != nullptr && v->AsBool();
  }

  std::string socket_path_;
  std::unique_ptr<Daemon> daemon_;
  std::thread serve_thread_;
  int exit_code_ = -1;
};

TEST_F(DaemonE2E, CacheHitResubmitIsBitIdentical) {
  DaemonOptions opts;
  opts.socket_path = SocketPath("cache");
  opts.cache_dir = TempPath("daemon_cache");
  opts.workers = 2;
  Start(std::move(opts));

  // One small cell: the scalar BitCount run of the bench_matrix space.
  const resilience::JsonValue first =
      SubmitAndParse("BitCount@arm-original", 0, "first");
  EXPECT_EQ(Field(first, "status"), "ok");
  EXPECT_EQ(Field(first, "cells_cached"), "0");
  ASSERT_TRUE(first.Find("cells") != nullptr &&
              first.Find("cells")->is_array());
  ASSERT_EQ(first.Find("cells")->array.size(), 1u);
  const resilience::JsonValue& cell0 = first.Find("cells")->array[0];
  EXPECT_EQ(Field(cell0, "cell_status"), "ok");
  EXPECT_FALSE(FieldBool(cell0, "cached"));

  const resilience::JsonValue second =
      SubmitAndParse("BitCount@arm-original", 0, "second");
  EXPECT_EQ(Field(second, "cells_cached"), "1");
  const resilience::JsonValue& cell1 = second.Find("cells")->array[0];
  EXPECT_TRUE(FieldBool(cell1, "cached"));
  // The promise of the persistent cache: bit-identical cycles + digest.
  EXPECT_EQ(Field(cell1, "cycles"), Field(cell0, "cycles"));
  EXPECT_EQ(Field(cell1, "output_digest"), Field(cell0, "output_digest"));
  EXPECT_NE(Field(cell1, "output_digest"), "");
}

TEST_F(DaemonE2E, MalformedRequestsGetTypedRefusals) {
  DaemonOptions opts;
  opts.socket_path = SocketPath("bad");
  Start(std::move(opts));

  // A filter matching nothing is a bad request, not an empty sweep.
  ClientOptions c;
  c.socket_path = socket_path_;
  c.filter = "no-such-workload-xyz";
  c.quiet = true;
  EXPECT_EQ(Submit(c), 4);

  // Hand-rolled connection: a frame that is not JSON.
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  ASSERT_TRUE(SendFrame(fd, kFrameRequest, "this is not json"));
  char type = 0;
  std::string json;
  ASSERT_EQ(RecvFrame(fd, type, json), RecvStatus::kOk);
  ::close(fd);
  resilience::JsonValue resp;
  ASSERT_TRUE(resilience::ParseJson(json, resp));
  EXPECT_EQ(Field(resp, "status"), "bad-request");

  // Raw garbage bytes (corrupt frame): the daemon hangs up without a
  // response and must survive to answer the next request.
  fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  ASSERT_EQ(::write(fd, "garbage-bytes", 13), 13);
  ::close(fd);
  ClientOptions ping;
  ping.socket_path = socket_path_;
  ping.ping = true;
  ping.quiet = true;
  int rc = -1;
  for (int i = 0; i < 100; ++i) {
    rc = Submit(ping);
    if (rc == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(rc, 0);

  // An unknown request schema is refused with a typed bad-request.
  ClientOptions unknown = c;
  unknown.filter.clear();
  // (Covered above via raw frame; the client always sends the right
  // schema, so exercise the deadline refusal here instead.)
  unknown.deadline_ms = 1;
  unknown.quiet = true;
  EXPECT_EQ(Submit(unknown), 4);  // expires before any cell completes
}

TEST_F(DaemonE2E, IsolatedCrashCellPoisonsOnlyItself) {
#if DSA_UNDER_TSAN
  GTEST_SKIP() << "fork from the daemon's threaded process is unsupported "
                  "under TSan";
#endif
  DaemonOptions opts;
  opts.socket_path = SocketPath("crash");
  opts.isolate = true;
  // The Fig-16 "orig" DSA cell crashes; the extended sibling completes.
  opts.crash_cell = "BitCount@neon-dsa/orig";
  Start(std::move(opts));

  const resilience::JsonValue resp =
      SubmitAndParse("BitCount@neon-dsa", 1, "crash");
  EXPECT_EQ(Field(resp, "status"), "ok");
  ASSERT_TRUE(resp.Find("cells") != nullptr && resp.Find("cells")->is_array());
  ASSERT_EQ(resp.Find("cells")->array.size(), 2u);
  int crashed = 0;
  int ok = 0;
  for (const resilience::JsonValue& cell : resp.Find("cells")->array) {
    const std::string status = Field(cell, "cell_status");
    if (Field(cell, "job") == "BitCount@neon-dsa/orig") {
      EXPECT_EQ(status, "crashed");
      ++crashed;
    } else {
      EXPECT_EQ(status, "ok");
      ++ok;
    }
  }
  EXPECT_EQ(crashed, 1);
  EXPECT_EQ(ok, 1);
}

// ---------------------------------------------------------------------------
// Hostile-environment hardening (docs/SERVING.md failure matrix).

int CountOpenFds() {
  int n = 0;
  DIR* d = ::opendir("/proc/self/fd");
  if (d == nullptr) return -1;
  while (::readdir(d) != nullptr) ++n;
  ::closedir(d);
  return n;
}

int RawConnect(const std::string& socket_path) {
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST_F(DaemonE2E, FsyncRefusalDegradesToRecomputeWithoutPromote) {
  IoFaultPlanGuard guard;
  DaemonOptions opts;
  opts.socket_path = SocketPath("iofault");
  opts.cache_dir = TempPath("daemon_iofault_cache");
  // Every tmp-file fsync refuses: no cell is ever durable, so nothing
  // may be promoted — and nothing may pretend to be.
  opts.io_fault_plan = "fsync-fail@0+";
  Start(std::move(opts));

  const resilience::JsonValue first =
      SubmitAndParse("BitCount@arm-original", 0, "iofault_first");
  EXPECT_EQ(Field(first, "status"), "ok");  // the cell itself is healthy
  const resilience::JsonValue second =
      SubmitAndParse("BitCount@arm-original", 0, "iofault_second");
  // Degraded mode: recomputed, not served from a cache that never
  // accepted the entry.
  EXPECT_EQ(Field(second, "cells_cached"), "0");
  const resilience::JsonValue* cache = second.Find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_NE(Field(*cache, "store_failures"), "0");
  EXPECT_NE(Field(*cache, "fsync_failures"), "0");

  // The health census names the armed plan and its fired faults.
  ClientOptions h;
  h.socket_path = socket_path_;
  h.health = true;
  h.quiet = true;
  h.json_path = TempPath("resp_iofault_health") + ".json";
  ASSERT_EQ(Submit(h), 0);
  resilience::JsonValue resp;
  ASSERT_TRUE(resilience::ParseJson(Slurp(h.json_path), resp));
  const resilience::JsonValue* health = resp.Find("health");
  ASSERT_NE(health, nullptr);
  const resilience::JsonValue* io = health->Find("io_faults");
  ASSERT_NE(io, nullptr);
  EXPECT_TRUE(FieldBool(*io, "active"));
  EXPECT_NE(Field(*io, "plan").find("fsync-fail@0+"), std::string::npos);
}

TEST_F(DaemonE2E, BootScrubQuarantinesPlantedCorruption) {
  const std::string cache_dir = TempPath("daemon_scrub_cache");
  const std::string socket = SocketPath("scrub");
  // Seed the cache with one completed cell, then corrupt it on disk the
  // way bit-rot (or a torn non-atomic writer) would.
  {
    DaemonOptions opts;
    opts.socket_path = socket;
    opts.cache_dir = cache_dir;
    Start(std::move(opts));
    SubmitAndParse("BitCount@arm-original", 0, "scrub_seed");
    resilience::Supervisor::DrainFlag().store(true);
    serve_thread_.join();
    EXPECT_EQ(exit_code_, 3);
    daemon_.reset();
    resilience::Supervisor::DrainFlag().store(false);
  }
  std::string victim;
  {
    DIR* d = ::opendir(cache_dir.c_str());
    ASSERT_NE(d, nullptr);
    while (dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name.size() > 5 && name.rfind(".cell") == name.size() - 5) {
        victim = cache_dir + "/" + name;
      }
    }
    ::closedir(d);
  }
  ASSERT_FALSE(victim.empty());
  std::string raw = Slurp(victim);
  ASSERT_GT(raw.size(), 24u);
  raw[raw.size() / 2] ^= 0x5A;
  Spew(victim, raw);

  // A restarting daemon scrubs on boot: the corrupt entry is quarantined
  // before serving, the resubmit recomputes, and health reports it.
  DaemonOptions opts;
  opts.socket_path = socket;
  opts.cache_dir = cache_dir;
  Start(std::move(opts));
  const resilience::JsonValue resp =
      SubmitAndParse("BitCount@arm-original", 0, "scrub_recompute");
  EXPECT_EQ(Field(resp, "status"), "ok");
  EXPECT_EQ(Field(resp, "cells_cached"), "0");

  ClientOptions h;
  h.socket_path = socket;
  h.health = true;
  h.quiet = true;
  h.json_path = TempPath("resp_scrub_health") + ".json";
  ASSERT_EQ(Submit(h), 0);
  resilience::JsonValue hv;
  ASSERT_TRUE(resilience::ParseJson(Slurp(h.json_path), hv));
  const resilience::JsonValue* health = hv.Find("health");
  ASSERT_NE(health, nullptr);
  const resilience::JsonValue* scrub = health->Find("scrub");
  ASSERT_NE(scrub, nullptr);
  EXPECT_EQ(Field(*scrub, "quarantined"), "1");
  EXPECT_FALSE(Slurp(victim + ".quarantine").empty());
}

TEST_F(DaemonE2E, SeededProtocolFuzzNoHangNoFdLeak) {
  DaemonOptions opts;
  opts.socket_path = SocketPath("fuzz");
  opts.read_deadline_ms = 400;
  Start(std::move(opts));
  const int baseline = CountOpenFds();
  ASSERT_GT(baseline, 0);

  // splitmix64 — one seed, one reproducible hostile byte stream.
  std::uint64_t state = 0x9e3779b97f4a7c15ull * 17;
  const auto next = [&state] {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  ClientOptions ping;
  ping.socket_path = socket_path_;
  ping.ping = true;
  ping.quiet = true;
  ping.recv_timeout_ms = 5000;
  ping.retries = 2;
  for (int round = 0; round < 24; ++round) {
    const int fd = RawConnect(socket_path_);
    ASSERT_GE(fd, 0);
    switch (next() % 4) {
      case 0: {  // pure garbage
        std::string junk(1 + next() % 128, '\0');
        for (char& c : junk) c = static_cast<char>(next() & 0xFF);
        (void)!::write(fd, junk.data(), junk.size());
        break;
      }
      case 1:  // torn header
        (void)!::write(fd, "DSAS\x10\x00", 2 + next() % 4);
        break;
      case 2: {  // oversize length claim
        std::string hdr = "DSAS\xff\xff\xff\x7f";
        hdr.append(4, '\0');
        (void)!::write(fd, hdr.data(), hdr.size());
        break;
      }
      case 3:  // connect-and-vanish
      default:
        break;
    }
    ::close(fd);
    // After every attack the daemon still answers a well-behaved ping
    // within its deadline: no hang, no wedged reader.
    ASSERT_EQ(Submit(ping), 0) << "daemon unresponsive after round "
                               << round;
  }
  // Reader teardown is asynchronous; poll until every hostile fd is
  // returned. A leak shows as a persistently raised count.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  int fds = -1;
  while (std::chrono::steady_clock::now() < deadline) {
    fds = CountOpenFds();
    if (fds <= baseline + 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_LE(fds, baseline + 2) << "fd leak after hostile traffic";
}

TEST_F(DaemonE2E, SlowLorisCannotStallOtherClients) {
  DaemonOptions opts;
  opts.socket_path = SocketPath("loris");
  opts.read_deadline_ms = 300;
  Start(std::move(opts));

  // A client that sends three header bytes and then just... holds.
  const int loris = RawConnect(socket_path_);
  ASSERT_GE(loris, 0);
  ASSERT_EQ(::write(loris, "DSA", 3), 3);

  // Well-behaved traffic is answered immediately — the drip lives on its
  // own reader thread, not in the accept loop.
  ClientOptions ping;
  ping.socket_path = socket_path_;
  ping.ping = true;
  ping.quiet = true;
  ping.recv_timeout_ms = 2000;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(Submit(ping), 0);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(2));

  // The reader's deadline reaps the drip and counts it.
  ClientOptions h;
  h.socket_path = socket_path_;
  h.health = true;
  h.quiet = true;
  bool timed_out = false;
  for (int i = 0; i < 100 && !timed_out; ++i) {
    h.json_path = TempPath("resp_loris_" + std::to_string(i)) + ".json";
    ASSERT_EQ(Submit(h), 0);
    resilience::JsonValue hv;
    ASSERT_TRUE(resilience::ParseJson(Slurp(h.json_path), hv));
    const resilience::JsonValue* health = hv.Find("health");
    ASSERT_NE(health, nullptr);
    timed_out = Field(*health, "read_timeouts") != "0";
    if (!timed_out) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  EXPECT_TRUE(timed_out) << "read deadline never reaped the slow-loris";
  ::close(loris);
}

TEST(ClientRetry, BoundedBackoffRidesOutALateBindingDaemon) {
  resilience::Supervisor::DrainFlag().store(false);
  const std::string socket =
      "/tmp/dsa_serve_t" + std::to_string(::getpid()) + "_retry.sock";
  DaemonOptions opts;
  opts.socket_path = socket;
  auto daemon = std::make_unique<Daemon>(opts);
  int exit_code = -1;
  std::thread late([&] {
    // The daemon binds ~300 ms after the client's first attempt: attempt
    // 0 and likely attempt 1 get ECONNREFUSED, a later retry lands.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    std::string err;
    ASSERT_TRUE(daemon->Init(&err)) << err;
    exit_code = daemon->Serve();
  });

  ClientOptions c;
  c.socket_path = socket;
  c.ping = true;
  c.quiet = true;
  c.recv_timeout_ms = 5000;
  c.retries = 8;  // 50+100+200+... ms of budget, plenty for 300 ms
  EXPECT_EQ(Submit(c), 0);

  // And with retries exhausted against a dead socket, the typed
  // transport exit code (5) comes back instead of a hang.
  ClientOptions dead = c;
  dead.socket_path = socket + ".nobody";
  dead.retries = 1;
  EXPECT_EQ(Submit(dead), 5);

  resilience::Supervisor::DrainFlag().store(true);
  late.join();
  EXPECT_EQ(exit_code, 3);
  resilience::Supervisor::DrainFlag().store(false);
}

#endif  // DSA_SERVE_E2E

}  // namespace
}  // namespace dsa::serve
