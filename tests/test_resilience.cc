// Resilience-layer tests (src/resilience, docs/RESILIENCE.md): journal
// framing and torn-tail truncation, kill-and-resume bit-equivalence,
// crash/deadline/OOM classification of isolated cells, circuit-breaker
// state transitions, and the graceful drain. Everything runs against the
// real BatchRunner — the same seams the bench drivers use.
#include <gtest/gtest.h>
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "resilience/breaker.h"
#include "resilience/iofault.h"
#include "resilience/isolate.h"
#include "resilience/journal.h"
#include "resilience/mini_json.h"
#include "resilience/supervisor.h"
#include "sim/error.h"
#include "sim/runner.h"
#include "workloads/workloads.h"

// RLIMIT_AS-based OOM containment cannot run under ASan/TSan: the
// sanitizers reserve terabyte-scale shadow mappings that any address-
// space cap breaks.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define DSA_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define DSA_UNDER_SANITIZER 1
#endif
#endif
#ifndef DSA_UNDER_SANITIZER
#define DSA_UNDER_SANITIZER 0
#endif

namespace dsa::resilience {
namespace {

using sim::BatchReport;
using sim::BatchRunner;
using sim::JobOutcome;
using sim::RunMode;
using sim::RunnerOptions;
using sim::SystemConfig;
using sim::Workload;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "resilience_" + name + "_" +
         std::to_string(::getpid());
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void Spew(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << data;
}

// ---------------------------------------------------------------------------
// CRC and mini_json plumbing.

TEST(Crc32, MatchesIeeeReferenceVector) {
  // The canonical IEEE 802.3 check value for "123456789".
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(MiniJson, PreservesNumberTextExactly) {
  JsonValue v;
  ASSERT_TRUE(ParseJson(
      R"({"u": 18446744073709551615, "d": 0.71384199999999998, "s": "a\"b"})",
      v));
  EXPECT_EQ(v.Find("u")->AsU64(), 18446744073709551615ull);
  EXPECT_EQ(v.Find("u")->raw, "18446744073709551615");
  EXPECT_EQ(v.Find("d")->raw, "0.71384199999999998");
  EXPECT_EQ(v.Find("s")->AsString(), "a\"b");
  // Dump re-emits numbers verbatim: no precision loss through a
  // parse -> dump round trip.
  const std::string dumped = DumpJson(v);
  EXPECT_NE(dumped.find("18446744073709551615"), std::string::npos);
  EXPECT_NE(dumped.find("0.71384199999999998"), std::string::npos);
}

TEST(MiniJson, RejectsMalformedInput) {
  JsonValue v;
  std::string err;
  EXPECT_FALSE(ParseJson("{\"a\": 1", v, &err));
  EXPECT_FALSE(ParseJson("{\"a\": 1} trailing", v, &err));
  EXPECT_FALSE(ParseJson("", v, &err));
}

// ---------------------------------------------------------------------------
// Journal: round trip, torn tails, CRC corruption.

JobOutcome RunOneCell(const Workload& wl, RunMode mode) {
  RunnerOptions o;
  o.jobs = 1;
  o.repeats = 2;
  BatchRunner runner(o);
  const std::string key = runner.Submit(wl, mode, SystemConfig{});
  (void)runner.Finish();
  return runner.outcomes().at(key);
}

TEST(Journal, RoundTripsACompletedCell) {
  const JobOutcome out = RunOneCell(workloads::MakeVecAdd(512), RunMode::kDsa);
  const std::string path = TempPath("roundtrip");
  std::remove(path.c_str());
  {
    Journal j;
    ASSERT_TRUE(j.Open(path, JournalOptions{}));
    j.Append(out);
    EXPECT_EQ(j.appended(), 1u);
  }
  ReplayResult replay;
  ASSERT_TRUE(ReplayJournal(path, replay));
  EXPECT_EQ(replay.records, 2u);  // header + one cell
  EXPECT_EQ(replay.torn_bytes, 0u);
  ASSERT_EQ(replay.cells.count(out.key), 1u);
  const JobOutcome& back = replay.cells.at(out.key);
  // Bit-identical round trip of every deterministic field.
  EXPECT_EQ(SerializeOutcome(back), SerializeOutcome(out));
  EXPECT_EQ(back.runs.size(), out.runs.size());
  EXPECT_EQ(back.result().output_digest, out.result().output_digest);
  EXPECT_EQ(back.result().cycles, out.result().cycles);
  EXPECT_EQ(back.result().energy.total(), out.result().energy.total());
  std::remove(path.c_str());
}

TEST(Journal, ReplayTruncatesTornTailAndReopenDropsIt) {
  const JobOutcome out = RunOneCell(workloads::MakeVecAdd(512), RunMode::kDsa);
  const std::string path = TempPath("torn");
  std::remove(path.c_str());
  {
    Journal j;
    ASSERT_TRUE(j.Open(path, JournalOptions{}));
    j.Append(out);
  }
  const std::string intact = Slurp(path);
  // A half-written record (no trailing newline) is a torn tail.
  Spew(path, intact + "12345678 {\"kind\":\"cell\",\"key\":\"half");
  ReplayResult replay;
  ASSERT_TRUE(ReplayJournal(path, replay));
  EXPECT_EQ(replay.cells.size(), 1u);
  EXPECT_EQ(replay.valid_bytes, intact.size());
  EXPECT_GT(replay.torn_bytes, 0u);
  // Re-opening for append truncates the tear so new records start on a
  // clean frame boundary.
  {
    Journal j;
    ASSERT_TRUE(j.Open(path, JournalOptions{}));
    JobOutcome second = out;
    second.key = "second-cell";
    j.Append(second);
  }
  ReplayResult after;
  ASSERT_TRUE(ReplayJournal(path, after));
  EXPECT_EQ(after.torn_bytes, 0u);
  EXPECT_EQ(after.cells.size(), 2u);
  EXPECT_EQ(after.cells.count("second-cell"), 1u);
  std::remove(path.c_str());
}

TEST(Journal, CrcCorruptionInvalidatesTheRecordAndEverythingAfter) {
  const JobOutcome out = RunOneCell(workloads::MakeVecAdd(512), RunMode::kDsa);
  const std::string path = TempPath("crc");
  std::remove(path.c_str());
  {
    Journal j;
    ASSERT_TRUE(j.Open(path, JournalOptions{}));
    j.Append(out);
    JobOutcome second = out;
    second.key = "second-cell";
    j.Append(second);
  }
  std::string data = Slurp(path);
  // Flip one payload byte of the first cell record (line 2).
  const std::size_t line2 = data.find('\n') + 1;
  data[line2 + 15] ^= 0x01;
  Spew(path, data);
  ReplayResult replay;
  ASSERT_TRUE(ReplayJournal(path, replay));
  // Replay must stop at the corrupted record: trusting anything after an
  // invalid frame would resurrect records with no integrity anchor.
  EXPECT_EQ(replay.cells.size(), 0u);
  EXPECT_EQ(replay.records, 1u);  // header only
  EXPECT_GT(replay.torn_bytes, 0u);
  std::remove(path.c_str());
}

TEST(Journal, MissingFileReplaysEmptyAndBadHeaderFails) {
  ReplayResult replay;
  ASSERT_TRUE(ReplayJournal(TempPath("nonexistent"), replay));
  EXPECT_EQ(replay.records, 0u);

  const std::string path = TempPath("badheader");
  Spew(path, "41414141 {\"kind\":\"meta\",\"schema\":\"other/9\"}\n");
  // Wrong CRC -> the header is torn -> treated as an empty journal.
  ReplayResult torn;
  ASSERT_TRUE(ReplayJournal(path, torn));
  EXPECT_EQ(torn.records, 0u);
  // Valid CRC but wrong schema -> explicit failure.
  const std::string payload = "{\"kind\":\"meta\",\"schema\":\"other/9\"}";
  char crc[16];
  std::snprintf(crc, sizeof(crc), "%08x ", Crc32(payload.data(),
                                                 payload.size()));
  Spew(path, std::string(crc) + payload + "\n");
  std::string err;
  ReplayResult bad;
  EXPECT_FALSE(ReplayJournal(path, bad, &err));
  EXPECT_NE(err.find("schema"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Journal, ParsesFsyncPolicyNames) {
  FsyncPolicy p = FsyncPolicy::kNone;
  EXPECT_TRUE(ParseFsyncPolicy("always", p));
  EXPECT_EQ(p, FsyncPolicy::kAlways);
  EXPECT_TRUE(ParseFsyncPolicy("interval", p));
  EXPECT_EQ(p, FsyncPolicy::kInterval);
  EXPECT_TRUE(ParseFsyncPolicy("none", p));
  EXPECT_EQ(p, FsyncPolicy::kNone);
  EXPECT_FALSE(ParseFsyncPolicy("sometimes", p));
}

// ---------------------------------------------------------------------------
// Resume: a journaled batch replays with zero re-executions and
// bit-identical outcomes.

TEST(Resume, RestoresJournaledCellsWithoutReexecution) {
  const std::string path = TempPath("resume");
  std::remove(path.c_str());
  const Workload wl = workloads::MakeVecAdd(512);

  // Pass 1: execute and journal the full matrix.
  std::vector<std::string> keys;
  std::map<std::string, std::string> serialized;
  {
    Journal journal;
    ASSERT_TRUE(journal.Open(path, JournalOptions{}));
    RunnerOptions o;
    o.jobs = 2;
    o.repeats = 2;
    o.on_outcome = [&journal](const JobOutcome& out) {
      if (out.cell_status == "ok") journal.Append(out);
    };
    BatchRunner runner(o);
    const auto ks = runner.SubmitMatrix(wl);
    keys.assign(ks.begin(), ks.end());
    const BatchReport report = runner.Finish();
    ASSERT_TRUE(report.ok());
    for (const std::string& k : keys) {
      serialized[k] = SerializeOutcome(runner.outcomes().at(k));
    }
  }

  // Pass 2: resume through the supervisor; nothing may execute.
  SupervisorOptions so;
  so.resume_path = path;
  so.install_signal_drain = false;
  Supervisor sup(so);
  ASSERT_TRUE(sup.Init());
  std::atomic<int> executions{0};
  RunnerOptions o2;
  o2.jobs = 2;
  o2.repeats = 2;
  o2.run_fn = [&executions](const Workload& w, RunMode m,
                            const SystemConfig& c) {
    ++executions;
    return sim::Run(w, m, c);
  };
  sup.Attach(o2);
  BatchRunner runner2(o2);
  (void)runner2.SubmitMatrix(wl);
  const BatchReport report2 = runner2.Finish();
  EXPECT_TRUE(report2.ok());
  EXPECT_EQ(executions.load(), 0);
  EXPECT_EQ(report2.restored_cells, 4u);
  // Restored cells keep their recorded run count, so the report
  // reconciles exactly like the uninterrupted batch.
  EXPECT_EQ(report2.executed_runs, 4u * 2u);
  for (const std::string& k : keys) {
    const JobOutcome& out = runner2.outcomes().at(k);
    EXPECT_TRUE(out.restored) << k;
    EXPECT_EQ(out.cell_status, "ok") << k;
    EXPECT_EQ(SerializeOutcome(out), serialized[k]) << k;
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Isolation: crash/deadline/OOM classification with surviving siblings.

#if defined(__unix__) || defined(__APPLE__)

TEST(Isolate, ClassifiesSignalDeathAsCrashedWhileSiblingsComplete) {
  ASSERT_TRUE(IsolationAvailable());
  SupervisorOptions so;
  so.isolate = true;
  so.install_signal_drain = false;
  Supervisor sup(so);
  ASSERT_TRUE(sup.Init());
  RunnerOptions o;
  o.jobs = 2;
  o.repeats = 1;
  o.oracle = false;  // failed cells on purpose; no equivalence sweep
  o.retry_backoff_ms = 0;
  // Install the crashing run_fn before Attach so the isolation wrapper
  // executes it inside the forked child.
  o.run_fn = [](const Workload& wl, RunMode m, const SystemConfig& c) {
    if (m == RunMode::kDsa) ::raise(SIGKILL);  // dies inside the child
    return sim::Run(wl, m, c);
  };
  sup.Attach(o);
  BatchRunner runner(o);
  const Workload wl = workloads::MakeVecAdd(512);
  const std::string crashed = runner.Submit(wl, RunMode::kDsa, {});
  const std::string ok = runner.Submit(wl, RunMode::kScalar, {});
  const BatchReport report = runner.Finish();
  EXPECT_EQ(runner.outcomes().at(crashed).cell_status, "crashed");
  EXPECT_NE(runner.outcomes().at(crashed).error.find("signal"),
            std::string::npos);
  EXPECT_EQ(runner.outcomes().at(ok).cell_status, "ok");
  EXPECT_GT(runner.outcomes().at(ok).result().cycles, 0u);
  EXPECT_EQ(report.faulted_cells, 1u);
}

TEST(Isolate, ClassifiesSegfaultAsCrashed) {
  ASSERT_TRUE(IsolationAvailable());
  SupervisorOptions so;
  so.isolate = true;
  so.install_signal_drain = false;
  Supervisor sup(so);
  ASSERT_TRUE(sup.Init());
  RunnerOptions o;
  o.jobs = 1;
  o.repeats = 1;
  o.oracle = false;
  o.retry_backoff_ms = 0;
  o.run_fn = [](const Workload& wl, RunMode m,
                const SystemConfig& c) -> sim::RunResult {
    if (m == RunMode::kDsa) {
      // A real wild access. Under ASan the child exits non-zero with a
      // report instead of dying on SIGSEGV; both classify as "crashed".
      volatile int* p = nullptr;
      *p = 42;  // NOLINT
    }
    return sim::Run(wl, m, c);
  };
  sup.Attach(o);
  BatchRunner runner(o);
  const Workload wl = workloads::MakeVecAdd(512);
  const std::string crashed = runner.Submit(wl, RunMode::kDsa, {});
  const std::string ok = runner.Submit(wl, RunMode::kScalar, {});
  (void)runner.Finish();
  EXPECT_EQ(runner.outcomes().at(crashed).cell_status, "crashed");
  EXPECT_EQ(runner.outcomes().at(ok).cell_status, "ok");
}

TEST(Isolate, KillsCellsPastTheirDeadline) {
  ASSERT_TRUE(IsolationAvailable());
  SupervisorOptions so;
  so.isolate = true;
  so.deadline_ms = 150;
  so.install_signal_drain = false;
  Supervisor sup(so);
  ASSERT_TRUE(sup.Init());
  RunnerOptions o;
  o.jobs = 2;
  o.repeats = 1;
  o.oracle = false;
  o.retry_backoff_ms = 0;
  o.run_fn = [](const Workload& wl, RunMode m, const SystemConfig& c) {
    if (m == RunMode::kDsa) {
      std::this_thread::sleep_for(std::chrono::seconds(30));
    }
    return sim::Run(wl, m, c);
  };
  sup.Attach(o);
  BatchRunner runner(o);
  const Workload wl = workloads::MakeVecAdd(512);
  const auto t0 = std::chrono::steady_clock::now();
  const std::string hung = runner.Submit(wl, RunMode::kDsa, {});
  const std::string ok = runner.Submit(wl, RunMode::kScalar, {});
  (void)runner.Finish();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_EQ(runner.outcomes().at(hung).cell_status, "timeout");
  EXPECT_NE(runner.outcomes().at(hung).error.find("deadline"),
            std::string::npos);
  EXPECT_EQ(runner.outcomes().at(ok).cell_status, "ok");
  // The deadline kill must fire in deadline time, not sleep time.
  EXPECT_LT(elapsed.count(), 10000);
}

#if !DSA_UNDER_SANITIZER
TEST(Isolate, ClassifiesAllocationBeyondTheMemoryCapAsOom) {
  ASSERT_TRUE(IsolationAvailable());
  SupervisorOptions so;
  so.isolate = true;
  so.mem_limit_mb = 128;
  so.install_signal_drain = false;
  Supervisor sup(so);
  ASSERT_TRUE(sup.Init());
  RunnerOptions o;
  o.jobs = 1;
  o.repeats = 1;
  o.oracle = false;
  o.retry_backoff_ms = 0;
  o.run_fn = [](const Workload& wl, RunMode m, const SystemConfig& c) {
    if (m == RunMode::kDsa) {
      // Far beyond the 128 MB cap; throws bad_alloc inside the child.
      std::vector<char> big(1ull << 31, 1);
      if (big[12345] == 0) std::abort();
    }
    return sim::Run(wl, m, c);
  };
  sup.Attach(o);
  BatchRunner runner(o);
  const Workload wl = workloads::MakeVecAdd(512);
  const std::string oom = runner.Submit(wl, RunMode::kDsa, {});
  const std::string ok = runner.Submit(wl, RunMode::kScalar, {});
  (void)runner.Finish();
  EXPECT_EQ(runner.outcomes().at(oom).cell_status, "oom");
  EXPECT_EQ(runner.outcomes().at(ok).cell_status, "ok");
}
#endif  // !DSA_UNDER_SANITIZER

TEST(Isolate, PreservesDeterministicChildErrors) {
  // A DsaError raised inside the child must cross the pipe with its code
  // intact so retry/status policy matches in-process behavior.
  IsolateOptions opts;
  try {
    (void)RunIsolated(
        []() -> sim::RunResult {
          throw sim::DsaError(sim::DsaErrorCode::kStepLimit, "over budget");
        },
        opts, "unit");
    FAIL() << "expected DsaError";
  } catch (const sim::DsaError& e) {
    EXPECT_EQ(e.code(), sim::DsaErrorCode::kStepLimit);
    EXPECT_NE(std::string(e.what()).find("over budget"), std::string::npos);
  }
}

TEST(Isolate, ReturnsIdenticalResultsToInProcessExecution) {
  const Workload wl = workloads::MakeVecAdd(512);
  const SystemConfig cfg;
  sim::RunResult in_process = sim::Run(wl, RunMode::kDsa, cfg);
  IsolateOptions opts;
  sim::RunResult isolated = RunIsolated(
      [&] { return sim::Run(wl, RunMode::kDsa, cfg); }, opts, "unit");
  // Host wall time is the one legitimately volatile field.
  in_process.host_wall_ms = 0;
  isolated.host_wall_ms = 0;
  EXPECT_EQ(SerializeRunResult(isolated), SerializeRunResult(in_process));
}

#endif  // __unix__ || __APPLE__

// ---------------------------------------------------------------------------
// Circuit breaker.

TEST(Breaker, OpensAfterThresholdAndRecoversThroughHalfOpen) {
  CircuitBreaker b(/*threshold=*/2, /*probe_after=*/2);
  ASSERT_TRUE(b.enabled());
  // Two consecutive failures trip the breaker.
  ASSERT_TRUE(b.Allow("wl"));
  b.Record("wl", false);
  ASSERT_TRUE(b.Allow("wl"));
  b.Record("wl", false);
  // Open: refuses cells, counts skips, half-opens after probe_after.
  EXPECT_FALSE(b.Allow("wl"));
  EXPECT_FALSE(b.Allow("wl"));
  // Half-open: exactly one probe is admitted; siblings keep skipping.
  EXPECT_TRUE(b.Allow("wl"));
  EXPECT_FALSE(b.Allow("wl"));
  // Probe failure goes straight back to open (second trip).
  b.Record("wl", false);
  EXPECT_FALSE(b.Allow("wl"));
  EXPECT_FALSE(b.Allow("wl"));
  // Next probe succeeds: closed again, cells flow.
  EXPECT_TRUE(b.Allow("wl"));
  b.Record("wl", true);
  EXPECT_TRUE(b.Allow("wl"));

  const auto census = b.Census();
  ASSERT_EQ(census.size(), 1u);
  EXPECT_EQ(census[0].workload, "wl");
  EXPECT_EQ(census[0].state, "closed");
  EXPECT_EQ(census[0].trips, 2u);
  EXPECT_EQ(census[0].skipped, 5u);
}

TEST(Breaker, DisabledBreakerAdmitsEverything) {
  CircuitBreaker b(/*threshold=*/0, /*probe_after=*/2);
  EXPECT_FALSE(b.enabled());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(b.Allow("wl"));
    b.Record("wl", false);
  }
  EXPECT_TRUE(b.Census().empty());
}

TEST(Breaker, SkipsCellsOfAFailingWorkloadInTheRunner) {
  SupervisorOptions so;
  so.breaker_threshold = 2;
  so.breaker_probe_after = 2;
  so.install_signal_drain = false;
  Supervisor sup(so);
  ASSERT_TRUE(sup.Init());
  RunnerOptions o;
  o.jobs = 1;  // serialize so the transition sequence is deterministic
  o.repeats = 1;
  o.oracle = false;
  o.max_retries = 0;
  o.retry_backoff_ms = 0;
  o.run_fn = [](const Workload& wl, RunMode m,
                const SystemConfig& c) -> sim::RunResult {
    (void)wl;
    (void)m;
    (void)c;
    throw sim::DsaError(sim::DsaErrorCode::kInternal, "always broken");
  };
  sup.Attach(o);
  BatchRunner runner(o);
  const Workload wl = workloads::MakeVecAdd(512);
  std::vector<std::string> keys;
  for (int i = 0; i < 6; ++i) {
    keys.push_back(
        runner.Submit(wl, RunMode::kDsa, {}, "cfg" + std::to_string(i)));
  }
  (void)runner.Finish();
  // Cells 0-1 execute and fail (threshold 2 -> open), 2-3 are skipped
  // (then half-open), 4 is the probe (fails -> open), 5 is skipped.
  EXPECT_EQ(runner.outcomes().at(keys[0]).cell_status, "faulted");
  EXPECT_EQ(runner.outcomes().at(keys[1]).cell_status, "faulted");
  EXPECT_EQ(runner.outcomes().at(keys[2]).cell_status, "skipped");
  EXPECT_EQ(runner.outcomes().at(keys[3]).cell_status, "skipped");
  EXPECT_EQ(runner.outcomes().at(keys[4]).cell_status, "faulted");
  EXPECT_EQ(runner.outcomes().at(keys[5]).cell_status, "skipped");
  const auto census = sup.breaker().Census();
  ASSERT_EQ(census.size(), 1u);
  EXPECT_EQ(census[0].trips, 2u);
  EXPECT_EQ(census[0].skipped, 3u);
}

// ---------------------------------------------------------------------------
// Graceful drain.

TEST(Drain, CancelsQueuedCellsAndMarksTheBatchInterrupted) {
  std::atomic<bool> drain{false};
  RunnerOptions o;
  o.jobs = 1;  // serialize: first cell executes, then the flag is up
  o.repeats = 1;
  o.drain = &drain;
  o.run_fn = [&drain](const Workload& wl, RunMode m, const SystemConfig& c) {
    drain.store(true);  // as if SIGINT arrived mid-cell
    return sim::Run(wl, m, c);
  };
  BatchRunner runner(o);
  const Workload wl = workloads::MakeVecAdd(512);
  const auto keys = runner.SubmitMatrix(wl);
  const BatchReport report = runner.Finish();
  EXPECT_TRUE(report.interrupted);
  EXPECT_EQ(report.cancelled_cells, 3u);
  EXPECT_EQ(runner.outcomes().at(keys[0]).cell_status, "ok");
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(runner.outcomes().at(keys[i]).cell_status, "cancelled") << i;
  }
  // Cancelled cells are an interruption, not a correctness violation:
  // the partial report still validates.
  EXPECT_TRUE(report.ok());
}

TEST(Drain, SupervisorReportsInterruptedRunStatus) {
  Supervisor::DrainFlag().store(false);
  SupervisorOptions so;
  so.install_signal_drain = false;
  so.breaker_threshold = 0;
  Supervisor sup(so);
  ASSERT_TRUE(sup.Init());
  RunnerOptions o;
  o.jobs = 1;
  o.repeats = 1;
  sup.Attach(o);
  EXPECT_EQ(o.drain, &Supervisor::DrainFlag());
  BatchRunner runner(o);
  (void)runner.Submit(workloads::MakeVecAdd(512), RunMode::kScalar, {});
  const BatchReport report = runner.Finish();
  EXPECT_EQ(sup.Extras(report).run_status, "complete");
  Supervisor::DrainFlag().store(true);
  EXPECT_EQ(sup.Extras(report).run_status, "interrupted");
  Supervisor::DrainFlag().store(false);
}

// ---------------------------------------------------------------------------
// mini_json binary-safety: JsonEscape -> ParseJson is byte-exact for
// arbitrary (including non-UTF-8) input — the serving daemon embeds
// simulation error strings in its responses and relies on this.

TEST(MiniJson, EverySingleByteRoundTripsThroughEscapeAndParse) {
  for (int b = 0; b < 256; ++b) {
    const std::string original(1, static_cast<char>(b));
    std::string text = "\"";
    text += JsonEscape(original);
    text += '"';
    JsonValue v;
    std::string err;
    ASSERT_TRUE(ParseJson(text, v, &err)) << "byte " << b << ": " << err;
    ASSERT_TRUE(v.is_string()) << "byte " << b;
    EXPECT_EQ(v.AsString(), original) << "byte " << b;
  }
}

TEST(MiniJson, FullBinaryStringRoundTripsByteExactly) {
  std::string original;
  for (int b = 0; b < 256; ++b) original.push_back(static_cast<char>(b));
  // Stress the validator's resynchronization: valid UTF-8 islands between
  // stretches of garbage.
  original += "\xC3\xA9 plain \xF0\x9F\x99\x82 text \xFF\xFE";
  std::string text = "\"";
  text += JsonEscape(original);
  text += '"';
  JsonValue v;
  ASSERT_TRUE(ParseJson(text, v));
  EXPECT_EQ(v.AsString(), original);
}

TEST(MiniJson, MalformedUtf8IsEscapedToPureAscii) {
  // Lone continuation byte, truncated two-byte sequence, overlong
  // encoding of '/': each must come out as \u00XX escapes, never as raw
  // high bytes that would make the emitted JSON invalid UTF-8.
  const std::vector<std::string> cases = {"\xFF", "\xC3", "\xC0\xAF",
                                          "ok\x80stray"};
  for (const std::string& bad : cases) {
    const std::string escaped = JsonEscape(bad);
    for (const char c : escaped) {
      EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
      EXPECT_LT(static_cast<unsigned char>(c), 0x7Fu);
    }
    std::string text = "\"";
    text += escaped;
    text += '"';
    JsonValue v;
    ASSERT_TRUE(ParseJson(text, v));
    EXPECT_EQ(v.AsString(), bad);
  }
}

TEST(MiniJson, WellFormedUtf8PassesThroughUnescaped) {
  const std::string utf8 = "caf\xC3\xA9 \xE2\x82\xAC \xF0\x9F\x99\x82";
  EXPECT_EQ(JsonEscape(utf8), utf8);
}

// ---------------------------------------------------------------------------
// Breaker half-open wedge (regression): a probe cell that dies with a
// *non*-DsaError used to escape the supervisor's wrapper without a
// Record(false), leaving probe_in_flight latched — the breaker sat in
// half-open forever, admitting nothing and never re-opening. The fix
// records the probe failure on any escape path.

TEST(Breaker, ProbeDyingWithNonDsaErrorReopensInsteadOfWedging) {
  SupervisorOptions so;
  so.breaker_threshold = 2;
  so.breaker_probe_after = 2;
  so.install_signal_drain = false;
  Supervisor sup(so);
  ASSERT_TRUE(sup.Init());
  RunnerOptions o;
  o.jobs = 1;  // serialize so the transition sequence is deterministic
  o.repeats = 1;
  o.oracle = false;
  o.max_retries = 0;
  o.retry_backoff_ms = 0;
  // Not a DsaError: the class of escape that used to bypass Record().
  o.run_fn = [](const Workload&, RunMode,
                const SystemConfig&) -> sim::RunResult {
    throw std::runtime_error("probe dies outside the DsaError taxonomy");
  };
  sup.Attach(o);
  BatchRunner runner(o);
  const Workload wl = workloads::MakeVecAdd(512);
  std::vector<std::string> keys;
  for (int i = 0; i < 6; ++i) {
    keys.push_back(
        runner.Submit(wl, RunMode::kDsa, {}, "cfg" + std::to_string(i)));
  }
  (void)runner.Finish();
  // Cells 0-1 fail (-> open, trip 1), 2-3 are skipped (-> half-open),
  // cell 4 is the probe: its runtime_error must count as a probe failure
  // and re-open the breaker (trip 2), so cell 5 is skipped — not wedged
  // behind a probe_in_flight that never clears.
  EXPECT_EQ(runner.outcomes().at(keys[0]).cell_status, "faulted");
  EXPECT_EQ(runner.outcomes().at(keys[1]).cell_status, "faulted");
  EXPECT_EQ(runner.outcomes().at(keys[2]).cell_status, "skipped");
  EXPECT_EQ(runner.outcomes().at(keys[3]).cell_status, "skipped");
  EXPECT_EQ(runner.outcomes().at(keys[4]).cell_status, "faulted");
  EXPECT_EQ(runner.outcomes().at(keys[5]).cell_status, "skipped");
  const auto census = sup.breaker().Census();
  ASSERT_EQ(census.size(), 1u);
  EXPECT_EQ(census[0].state, "open");  // wedged would read "half-open"
  EXPECT_EQ(census[0].trips, 2u);
  EXPECT_EQ(census[0].skipped, 3u);
}

// ---------------------------------------------------------------------------
// Interval-fsync kill drill: a journal cut off at *any* byte (the disk
// image a kill -9 between fsyncs can leave) must replay only complete,
// bit-identical records — the torn tail is dropped, never resurrected as
// a partial cell.

TEST(Journal, TruncationAtEveryByteNeverResurrectsAPartialCell) {
  const Workload wl = workloads::MakeVecAdd(256);
  std::vector<JobOutcome> appended;
  appended.push_back(RunOneCell(wl, RunMode::kScalar));
  appended.push_back(RunOneCell(wl, RunMode::kAutoVec));
  appended.push_back(RunOneCell(wl, RunMode::kDsa));

  const std::string path = TempPath("killdrill");
  std::remove(path.c_str());
  {
    Journal j;
    JournalOptions jo;
    jo.fsync = FsyncPolicy::kInterval;
    jo.fsync_interval = 2;  // a crash window of up to one record
    ASSERT_TRUE(j.Open(path, jo));
    for (const JobOutcome& out : appended) j.Append(out);
    EXPECT_EQ(j.appended(), appended.size());
  }
  const std::string intact = Slurp(path);
  ASSERT_GT(intact.size(), 0u);
  std::map<std::string, std::string> expected;
  for (const JobOutcome& out : appended) {
    expected[out.key] = SerializeOutcome(out);
  }

  const std::string cut = path + ".cut";
  // Every byte under sanitizers is slow; a stride still crosses every
  // record boundary because record lengths are not multiples of it.
  const std::size_t stride = intact.size() > 4096 ? 3 : 1;
  std::size_t max_cells = 0;
  for (std::size_t len = 0; len <= intact.size();
       len = (len + stride <= intact.size() ? len + stride
                                            : len + 1)) {
    Spew(cut, intact.substr(0, len));
    ReplayResult replay;
    std::string err;
    ASSERT_TRUE(ReplayJournal(cut, replay, &err)) << "len " << len << ": "
                                                  << err;
    EXPECT_LE(replay.valid_bytes, len) << "len " << len;
    // Only a prefix of the appended records may replay, each bit-equal
    // to what was appended — a torn record yields nothing, not a
    // half-filled cell.
    EXPECT_LE(replay.cells.size(), appended.size());
    for (std::size_t i = 0; i < appended.size(); ++i) {
      const bool present = replay.cells.count(appended[i].key) > 0;
      const bool prefix_holds = i < replay.cells.size();
      EXPECT_EQ(present, prefix_holds)
          << "len " << len << " cell " << appended[i].key;
    }
    for (const auto& [key, cell] : replay.cells) {
      ASSERT_EQ(expected.count(key), 1u) << "len " << len;
      EXPECT_EQ(SerializeOutcome(cell), expected.at(key))
          << "len " << len << " cell " << key;
    }
    if (replay.cells.size() > max_cells) max_cells = replay.cells.size();
  }
  EXPECT_EQ(max_cells, appended.size());  // the full file replays fully

  // And re-opening a torn journal for append keeps working: the tail is
  // truncated, new records land on a clean frame boundary.
  Spew(cut, intact.substr(0, intact.size() - 7));
  {
    Journal j;
    ASSERT_TRUE(j.Open(cut, JournalOptions{}));
    JobOutcome extra = appended[0];
    extra.key = "post-truncation-cell";
    j.Append(extra);
  }
  ReplayResult after;
  ASSERT_TRUE(ReplayJournal(cut, after));
  EXPECT_EQ(after.torn_bytes, 0u);
  EXPECT_EQ(after.cells.count("post-truncation-cell"), 1u);
  std::remove(cut.c_str());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Host-I/O fault injection (iofault.h, docs/FAULTS.md).

// The injector is process-global; every test must leave it disarmed.
struct IoFaultPlanGuard {
  ~IoFaultPlanGuard() { ClearIoFaultPlan(); }
};

TEST(IoFaultPlan, KindTokensRoundTrip) {
  for (int k = 0; k < kNumIoFaultKinds; ++k) {
    const auto kind = static_cast<IoFaultKind>(k);
    IoFaultKind parsed;
    ASSERT_TRUE(ParseIoFaultKind(ToString(kind), parsed)) << ToString(kind);
    EXPECT_EQ(parsed, kind);
  }
  IoFaultKind out;
  EXPECT_FALSE(ParseIoFaultKind("sigbus", out));
  EXPECT_FALSE(ParseIoFaultKind("", out));
}

TEST(IoFaultPlan, GrammarRoundTripsThroughFormat) {
  for (const char* spec :
       {"enospc@0", "fsync-fail@0+", "short-write@2+3;seed=42",
        "eio@1,rename-fail@0+2", "open-fail@7;seed=1"}) {
    const IoFaultPlan plan = ParseIoFaultPlan(spec);
    ASSERT_TRUE(plan.enabled()) << spec;
    const std::string canonical = FormatIoFaultPlan(plan);
    const IoFaultPlan again = ParseIoFaultPlan(canonical);
    EXPECT_EQ(FormatIoFaultPlan(again), canonical) << spec;
    EXPECT_EQ(again.specs.size(), plan.specs.size());
    EXPECT_EQ(again.seed, plan.seed);
  }
  EXPECT_EQ(ParseIoFaultPlan("short-write@2+3;seed=42").seed, 42u);
  EXPECT_TRUE(ParseIoFaultPlan("fsync-fail@0+").specs[0].count == UINT64_MAX);
}

TEST(IoFaultPlan, RefusesMalformedSpecs) {
  for (const char* bad :
       {"enospc", "enospc@", "@3", "frobnicate@0", "enospc@x",
        "enospc@0+x", "enospc@0;seed=", "enospc@0;seed=12x", ","}) {
    EXPECT_THROW((void)ParseIoFaultPlan(bad), std::invalid_argument) << bad;
  }
}

TEST(IoFaultInjector, PassthroughWhenDisarmed) {
  IoFaultPlanGuard guard;
  ClearIoFaultPlan();
  EXPECT_FALSE(IoFaultsActive());
  const std::string path = TempPath("iofault_passthrough");
  const int fd = IoOpen(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0666);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(IoWrite(fd, "abc", 3), 3);
  EXPECT_EQ(IoFsync(fd), 0);
  ::close(fd);
  const std::string moved = path + ".moved";
  EXPECT_EQ(IoRename(path.c_str(), moved.c_str()), 0);
  std::remove(moved.c_str());
}

// Replays one fixed syscall script against the installed plan and
// records which calls failed — the determinism contract is that the
// same (plan, seed) yields the same verdict sequence every time.
std::string RunFaultScript() {
  const std::string path = TempPath("iofault_script");
  std::string verdicts;
  for (int i = 0; i < 6; ++i) {
    const int fd = IoOpen(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0666);
    if (fd < 0) {
      verdicts += 'O';  // open refused
      continue;
    }
    const ssize_t n = IoWrite(fd, "0123456789", 10);
    verdicts += n == 10 ? '.' : (n > 0 ? 'S' : 'W');
    verdicts += IoFsync(fd) == 0 ? '.' : 'F';
    ::close(fd);
    const std::string to = path + ".pub";
    verdicts += IoRename(path.c_str(), to.c_str()) == 0 ? '.' : 'R';
    std::remove(to.c_str());
  }
  std::remove(path.c_str());
  return verdicts;
}

TEST(IoFaultInjector, SamePlanSameSeedSameSequence) {
  IoFaultPlanGuard guard;
  const char* spec =
      "eio@1+2,short-write@0+,fsync-fail@2,rename-fail@4+;seed=99";
  InstallIoFaultPlan(ParseIoFaultPlan(spec));
  ASSERT_TRUE(IoFaultsActive());
  const std::string first = RunFaultScript();
  const IoFaultCensus census1 = GetIoFaultCensus();

  InstallIoFaultPlan(ParseIoFaultPlan(spec));  // reinstall resets counters
  const std::string second = RunFaultScript();
  const IoFaultCensus census2 = GetIoFaultCensus();

  EXPECT_EQ(first, second);
  EXPECT_EQ(census1.opportunities, census2.opportunities);
  EXPECT_EQ(census1.fired, census2.fired);
  EXPECT_GT(census1.total_fired(), 0u);
  // The armed kinds actually fired: eio twice, fsync once, renames from
  // opportunity 4 on.
  EXPECT_EQ(census1.fired[static_cast<int>(IoFaultKind::kEio)], 2u);
  EXPECT_EQ(census1.fired[static_cast<int>(IoFaultKind::kFsyncFail)], 1u);
  EXPECT_GE(census1.fired[static_cast<int>(IoFaultKind::kRenameFail)], 1u);
}

TEST(IoFaultInjector, ShortWriteAlwaysMakesProgress) {
  IoFaultPlanGuard guard;
  InstallIoFaultPlan(ParseIoFaultPlan("short-write@0+;seed=3"));
  const std::string path = TempPath("iofault_short");
  const int fd = IoOpen(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0666);
  ASSERT_GE(fd, 0);
  // Every shortened write still lands >= 1 byte, so a standard retry
  // loop terminates with the full payload on disk.
  const std::string payload(64, 'z');
  std::size_t off = 0;
  int calls = 0;
  while (off < payload.size()) {
    const ssize_t n = IoWrite(fd, payload.data() + off, payload.size() - off);
    ASSERT_GT(n, 0);
    ASSERT_LE(static_cast<std::size_t>(n), payload.size() - off);
    off += static_cast<std::size_t>(n);
    ++calls;
  }
  ::close(fd);
  EXPECT_GT(calls, 1);  // at least one write actually got shortened
  EXPECT_EQ(Slurp(path), payload);
  std::remove(path.c_str());
}

TEST(IoFaultInjector, ErrnoMatchesTheRealSyscall) {
  IoFaultPlanGuard guard;
  InstallIoFaultPlan(ParseIoFaultPlan("enospc@0"));
  const std::string path = TempPath("iofault_errno");
  const int fd = IoOpen(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0666);
  ASSERT_GE(fd, 0);
  errno = 0;
  EXPECT_EQ(IoWrite(fd, "x", 1), -1);
  EXPECT_EQ(errno, ENOSPC);
  EXPECT_EQ(IoWrite(fd, "x", 1), 1);  // count exhausted: passthrough
  ::close(fd);
  std::remove(path.c_str());

  InstallIoFaultPlan(ParseIoFaultPlan("open-fail@0"));
  errno = 0;
  EXPECT_LT(IoOpen(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0666), 0);
  EXPECT_EQ(errno, EMFILE);
  std::remove(path.c_str());
}

// Satellite: the journal counts refused writes/fsyncs instead of
// swallowing them — the bench JSON surfaces them as a typed warning.
TEST(JournalTest, CountsWriteAndFsyncFailures) {
  IoFaultPlanGuard guard;
  const std::string path = TempPath("iofault_journal");
  Journal j;
  JournalOptions opts;
  opts.fsync = FsyncPolicy::kAlways;
  ASSERT_TRUE(j.Open(path, opts));
  EXPECT_EQ(j.write_failures(), 0u);
  EXPECT_EQ(j.fsync_failures(), 0u);

  JobOutcome out;
  out.key = "cell-a";
  out.cell_status = "ok";

  InstallIoFaultPlan(ParseIoFaultPlan("fsync-fail@0+"));
  j.Append(out);
  EXPECT_EQ(j.write_failures(), 0u);
  EXPECT_GE(j.fsync_failures(), 1u);

  InstallIoFaultPlan(ParseIoFaultPlan("eio@0+"));
  j.Append(out);
  EXPECT_GE(j.write_failures(), 1u);

  ClearIoFaultPlan();
  j.Append(out);  // recovered: clean appends still land
  j.Close();
  ReplayResult replay;
  ASSERT_TRUE(ReplayJournal(path, replay));
  EXPECT_GE(replay.cells.count("cell-a"), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dsa::resilience
