// Branch predictor unit tests: static fallback on the first execution,
// 2-bit saturating counter dynamics (including the seed-then-update
// first-training quirk inherited from the reference map predictor), and
// fast-path vs reference-path identity of every prediction outcome.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cpu/cpu.h"
#include "prog/assembler.h"

namespace dsa::cpu {
namespace {

using isa::Cond;
using isa::Opcode;
using prog::Assembler;

struct Rig {
  explicit Rig(prog::Program p, bool reference_path = false,
               std::size_t mem = 1 << 16)
      : program(std::move(p)),
        memory(mem),
        hierarchy(mem::Hierarchy::Config{}),
        cpu(program, memory, hierarchy, TimingConfig{}, reference_path) {}

  void RunToHalt(int max_steps = 100000) {
    int n = 0;
    while (!cpu.halted() && ++n < max_steps) cpu.Step();
    ASSERT_TRUE(cpu.halted()) << "program did not halt";
  }

  prog::Program program;
  mem::Memory memory;
  mem::Hierarchy hierarchy;
  Cpu cpu;
};

// Counts down r2 from `iters` with a backward latch. The latch is taken
// iters-1 times, then falls through once.
prog::Program CountdownLoop(int iters) {
  Assembler as;
  as.Movi(2, iters);
  const Assembler::Label loop = as.NewLabel();
  as.Bind(loop);
  as.AluImm(Opcode::kSubi, 2, 2, 1);
  as.Cmpi(2, 0);
  as.B(Cond::kNe, loop);
  as.Halt();
  return as.Finish();
}

// Walks a 9-entry byte table; a FORWARD branch skips a nop exactly when
// the table byte is non-zero, so the table spells the branch's
// taken/not-taken history. A backward latch drives the 9 iterations.
prog::Program FlagTableLoop(std::uint32_t table_base, int iters) {
  Assembler as;
  as.Movi(1, static_cast<std::int32_t>(table_base));
  as.Movi(2, iters);
  const Assembler::Label loop = as.NewLabel();
  const Assembler::Label skip = as.NewLabel();
  as.Bind(loop);
  as.Ldrb(3, 1, /*post_inc=*/1);
  as.Cmpi(3, 0);
  as.B(Cond::kNe, skip);  // forward: static fallback predicts not-taken
  as.Nop();
  as.Bind(skip);
  as.AluImm(Opcode::kSubi, 2, 2, 1);
  as.Cmpi(2, 0);
  as.B(Cond::kNe, loop);  // backward: static fallback predicts taken
  as.Halt();
  return as.Finish();
}

TEST(CpuPredict, StaticFallbackBackwardLoopMispredictsOnlyExit) {
  // 10 executions of the backward latch: the static fallback predicts
  // taken on the cold first execution (correct), the trained counter
  // stays at strongly-taken through the body, and only the final
  // fall-through mispredicts.
  Rig rig(CountdownLoop(10));
  rig.RunToHalt();
  EXPECT_EQ(rig.cpu.stats().branches, 10u);
  EXPECT_EQ(rig.cpu.stats().mispredicts, 1u);
}

TEST(CpuPredict, StaticFallbackForwardPredictsNotTaken) {
  // A forward branch taken on its very first execution must mispredict
  // (static fallback: forward => not-taken).
  Assembler as;
  as.Movi(1, 1);
  as.Cmpi(1, 0);
  const Assembler::Label skip = as.NewLabel();
  as.B(Cond::kNe, skip);  // forward, taken
  as.Nop();
  as.Bind(skip);
  as.Halt();
  Rig rig(as.Finish());
  rig.RunToHalt();
  EXPECT_EQ(rig.cpu.stats().branches, 1u);
  EXPECT_EQ(rig.cpu.stats().mispredicts, 1u);
}

TEST(CpuPredict, TwoBitCounterSaturatesAndRetrains) {
  // Forward-branch history T,T,T,N,N,N,T,T,T. With the seed-then-update
  // first training (first taken lands the counter at 3):
  //   exec1 T: pred N (static)  -> miss, ctr 2->3
  //   exec2 T: pred T           -> hit,  ctr 3
  //   exec3 T: pred T           -> hit,  ctr 3
  //   exec4 N: pred T           -> miss, ctr 2
  //   exec5 N: pred T           -> miss, ctr 1
  //   exec6 N: pred N           -> hit,  ctr 0
  //   exec7 T: pred N           -> miss, ctr 1
  //   exec8 T: pred N           -> miss, ctr 2
  //   exec9 T: pred T           -> hit,  ctr 3
  // => 5 mispredicts on the forward branch. The backward latch runs 9
  // times (taken x8, fall-through x1) and contributes exactly 1 more.
  const std::uint32_t base = 0x100;
  Rig rig(FlagTableLoop(base, 9));
  const std::uint8_t flags[9] = {1, 1, 1, 0, 0, 0, 1, 1, 1};
  for (int i = 0; i < 9; ++i) {
    rig.memory.Write8(base + static_cast<std::uint32_t>(i), flags[i]);
  }
  rig.RunToHalt();
  EXPECT_EQ(rig.cpu.stats().branches, 18u);
  EXPECT_EQ(rig.cpu.stats().mispredicts, 6u);
}

TEST(CpuPredict, FastAndReferencePredictorsAgree) {
  // The flat-array predictor (fast path) and the unordered_map predictor
  // (reference path) must produce identical mispredict streams, hence
  // identical stall cycles, on a history that exercises cold branches,
  // saturation in both directions, and retraining.
  const std::uint32_t base = 0x100;
  const std::uint8_t flags[9] = {0, 1, 1, 1, 1, 0, 0, 1, 0};
  Rig fast(FlagTableLoop(base, 9), /*reference_path=*/false);
  Rig ref(FlagTableLoop(base, 9), /*reference_path=*/true);
  for (int i = 0; i < 9; ++i) {
    fast.memory.Write8(base + static_cast<std::uint32_t>(i), flags[i]);
    ref.memory.Write8(base + static_cast<std::uint32_t>(i), flags[i]);
  }
  fast.RunToHalt();
  ref.RunToHalt();
  EXPECT_EQ(fast.cpu.stats().branches, ref.cpu.stats().branches);
  EXPECT_EQ(fast.cpu.stats().mispredicts, ref.cpu.stats().mispredicts);
  EXPECT_EQ(fast.cpu.Cycles(), ref.cpu.Cycles());
  EXPECT_GT(fast.cpu.stats().mispredicts, 0u);
}

}  // namespace
}  // namespace dsa::cpu
