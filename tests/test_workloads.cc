// Per-workload tests: golden correctness of the scalar binaries at several
// problem sizes (exercising leftover paths), program well-formedness, and
// workload-specific properties.
#include <gtest/gtest.h>

#include "sim/system.h"
#include "workloads/workloads.h"

namespace dsa::workloads {
namespace {

using sim::RunMode;
using sim::RunResult;
using sim::Workload;

void ExpectAllModesCorrect(const Workload& wl) {
  for (const RunMode m : {RunMode::kScalar, RunMode::kAutoVec,
                          RunMode::kHandVec, RunMode::kDsa}) {
    const RunResult r = sim::Run(wl, m, {});
    EXPECT_TRUE(r.output_ok)
        << wl.name << " in " << std::string(ToString(m));
  }
}

// Sizes that are not lane multiples force every leftover path.
class VecAddSizes : public ::testing::TestWithParam<int> {};
TEST_P(VecAddSizes, AllModesCorrect) {
  ExpectAllModesCorrect(MakeVecAdd(GetParam()));
}
INSTANTIATE_TEST_SUITE_P(Sweep, VecAddSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 15, 16, 17,
                                           63, 100, 1023));

class RgbGraySizes : public ::testing::TestWithParam<int> {};
TEST_P(RgbGraySizes, AllModesCorrect) {
  ExpectAllModesCorrect(MakeRgbGray(GetParam()));
}
INSTANTIATE_TEST_SUITE_P(Sweep, RgbGraySizes,
                         ::testing::Values(5, 8, 9, 255, 256, 1000));

class MatMulSizes : public ::testing::TestWithParam<int> {};
TEST_P(MatMulSizes, AllModesCorrect) {
  ExpectAllModesCorrect(MakeMatMul(GetParam()));
}
INSTANTIATE_TEST_SUITE_P(Sweep, MatMulSizes, ::testing::Values(5, 8, 16, 33));

class BitCountSizes : public ::testing::TestWithParam<int> {};
TEST_P(BitCountSizes, AllModesCorrect) {
  ExpectAllModesCorrect(MakeBitCount(GetParam()));
}
INSTANTIATE_TEST_SUITE_P(Sweep, BitCountSizes,
                         ::testing::Values(6, 64, 129, 1000));

class StrCopyLengths : public ::testing::TestWithParam<int> {};
TEST_P(StrCopyLengths, AllModesCorrect) {
  ExpectAllModesCorrect(MakeStrCopy(GetParam()));
}
INSTANTIATE_TEST_SUITE_P(Sweep, StrCopyLengths,
                         ::testing::Values(1, 5, 15, 16, 17, 100, 2000));

class ShiftAddDistances : public ::testing::TestWithParam<int> {};
TEST_P(ShiftAddDistances, AllModesCorrect) {
  ExpectAllModesCorrect(MakeShiftAdd(512, GetParam()));
}
INSTANTIATE_TEST_SUITE_P(Sweep, ShiftAddDistances,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 16, 100));

TEST(ShiftAdd, LargeDistanceBehavesLikeCountLoop) {
  // Distance beyond the loop range: no dependency inside the window.
  const Workload wl = MakeShiftAdd(256, 1000);
  const RunResult r = sim::Run(wl, RunMode::kDsa, {});
  EXPECT_TRUE(r.output_ok);
  EXPECT_EQ(r.dsa->takeovers, 1u);
}

TEST(ShiftAdd, SmallDistanceUsesPartialVectorization) {
  const Workload wl = MakeShiftAdd(512, 8);
  const RunResult r = sim::Run(wl, RunMode::kDsa, {});
  EXPECT_TRUE(r.output_ok);
  EXPECT_EQ(r.dsa->loops_by_class.count(engine::LoopClass::kPartial), 1u);
}

TEST(Dijkstra, SmallGraphsCorrect) {
  for (const int v : {8, 16, 32}) {
    ExpectAllModesCorrect(MakeDijkstra(v));
  }
}

TEST(QSort, SortsVariousSizes) {
  for (const int n : {2, 3, 17, 100, 511}) {
    const RunResult r = sim::Run(MakeQSort(n), RunMode::kScalar, {});
    EXPECT_TRUE(r.output_ok) << n;
  }
}

TEST(QSort, DsaClassifiesEverythingUnvectorizable) {
  const RunResult r = sim::Run(MakeQSort(256), RunMode::kDsa, {});
  EXPECT_EQ(r.dsa->takeovers, 0u);
  EXPECT_TRUE(r.output_ok);
}

TEST(SusanE, ThresholdSweepCorrect) {
  for (const int t : {0, 48, 255}) {
    ExpectAllModesCorrect(MakeSusanE(2048, t));
  }
}

TEST(SusanE, ExtremeThresholdSinglePathStillCorrectUnderDsa) {
  // t=0: the "else" arm never runs -> mapping can never complete, and the
  // loop must simply execute scalar.
  const RunResult r = sim::Run(MakeSusanE(2048, /*threshold=*/-1), RunMode::kDsa,
                          {});
  EXPECT_TRUE(r.output_ok);
}

TEST(Gaussian, OddWidthsCorrect) {
  ExpectAllModesCorrect(MakeGaussian(37, 11));
  ExpectAllModesCorrect(MakeGaussian(130, 5));
}

// Streaming suite: every kernel must hold its golden digest in all four
// modes at edge sizes — empty buffer, single element, and the non-lane
// multiples around one NEON chunk that force every leftover path.
class StreamingSizes : public ::testing::TestWithParam<int> {};

TEST_P(StreamingSizes, WsScanAllModesCorrect) {
  ExpectAllModesCorrect(MakeWsScan(GetParam()));
}
TEST_P(StreamingSizes, HtmlScanAllModesCorrect) {
  ExpectAllModesCorrect(MakeHtmlScan(GetParam()));
}
TEST_P(StreamingSizes, CharClassLutAllModesCorrect) {
  ExpectAllModesCorrect(MakeCharClassLut(GetParam()));
}
TEST_P(StreamingSizes, MemFillAllModesCorrect) {
  ExpectAllModesCorrect(MakeMemFill(GetParam()));
}
TEST_P(StreamingSizes, MemCmpAllModesCorrect) {
  ExpectAllModesCorrect(MakeMemCmp(GetParam()));
}
TEST_P(StreamingSizes, Crc32AllModesCorrect) {
  ExpectAllModesCorrect(MakeCrc32(GetParam()));
}
INSTANTIATE_TEST_SUITE_P(EdgeSweep, StreamingSizes,
                         ::testing::Values(0, 1, 15, 16, 17, 255, 4096));

TEST(Streaming, SuiteDeclaresStreamBytesAndGoldens) {
  const auto suite = StreamingSet();
  EXPECT_EQ(suite.size(), 6u);
  for (const Workload& wl : suite) {
    EXPECT_GT(wl.stream_bytes, 0u) << wl.name;
    EXPECT_FALSE(wl.outputs.empty()) << wl.name;
    EXPECT_FALSE(wl.loop_type_fractions.empty()) << wl.name;
  }
}

TEST(Streaming, CharClassLutIsTheNegativeControl) {
  const RunResult r = sim::Run(MakeCharClassLut(4096), RunMode::kDsa, {});
  EXPECT_TRUE(r.output_ok);
  EXPECT_EQ(r.dsa->takeovers, 0u);
}

TEST(Streaming, MemCmpFindsThePlantedMismatch) {
  // The builder plants a[n-7] != b[n-7] for n >= 8; the golden check
  // in all modes asserts the loop reported exactly that index.
  ExpectAllModesCorrect(MakeMemCmp(64));
  const RunResult r = sim::Run(MakeMemCmp(64), RunMode::kDsa, {});
  EXPECT_TRUE(r.output_ok);
  EXPECT_GE(r.dsa->takeovers, 1u);
}

TEST(Workloads, ProgramsAreWellFormed) {
  for (const Workload& wl : Article3Set()) {
    EXPECT_FALSE(wl.scalar.empty()) << wl.name;
    EXPECT_FALSE(wl.autovec.empty()) << wl.name;
    EXPECT_FALSE(wl.handvec.empty()) << wl.name;
    EXPECT_FALSE(wl.scalar.Disassemble().empty()) << wl.name;
    // Every program ends reachably: last instruction is a halt.
    EXPECT_EQ(wl.scalar.at(wl.scalar.size() - 1).op, isa::Opcode::kHalt)
        << wl.name;
  }
}

TEST(Workloads, ArticleSetsNest) {
  EXPECT_EQ(Article1Set().size(), 6u);
  EXPECT_EQ(Article2Set().size(), 7u);
  EXPECT_EQ(Article3Set().size(), 9u);
}

TEST(Workloads, ScalarBinaryIdenticalAcrossCalls) {
  // Deterministic builders: same factory twice gives identical programs
  // (the golden data is seeded too).
  const Workload a = MakeRgbGray(128);
  const Workload b = MakeRgbGray(128);
  ASSERT_EQ(a.scalar.size(), b.scalar.size());
  for (std::size_t i = 0; i < a.scalar.size(); ++i) {
    EXPECT_EQ(a.scalar.at(i).ToAsm(), b.scalar.at(i).ToAsm()) << i;
  }
}

}  // namespace
}  // namespace dsa::workloads
