// Oracle tests: the golden-stats regression suite. Positive direction —
// scalar/AutoVec/HandVec/DSA agree bit-for-bit on every paper workload
// and repeated runs are cycle-deterministic. Negative direction — a
// deliberately corrupted RunResult is rejected by each invariant, so the
// oracle is known to actually *look* at every field it claims to check.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sim/oracle.h"
#include "sim/system.h"
#include "workloads/workloads.h"

namespace dsa::sim {
namespace {

bool HasCheck(const std::vector<oracle::Violation>& v, const char* check) {
  return std::any_of(v.begin(), v.end(), [check](const oracle::Violation& x) {
    return x.check == check;
  });
}

void ExpectMatrixConsistent(const std::vector<Workload>& set) {
  const SystemConfig cfg;
  for (const Workload& wl : set) {
    const RunResult scalar = Run(wl, RunMode::kScalar, cfg);
    for (const RunMode mode :
         {RunMode::kAutoVec, RunMode::kHandVec, RunMode::kDsa}) {
      const RunResult r = Run(wl, mode, cfg);
      const std::string job = wl.name + "@" + std::string(ToString(mode));
      EXPECT_TRUE(oracle::CheckInvariants(r, job).empty()) << job;
      EXPECT_TRUE(oracle::CheckEquivalence(scalar, r, job).empty())
          << job << ": outputs diverge from the scalar execution";
      // The simulator is a pure function: a second run must be identical
      // down to every reported counter.
      const RunResult again = Run(wl, mode, cfg);
      EXPECT_TRUE(oracle::CheckDeterminism(r, again, job).empty()) << job;
    }
  }
}

TEST(OracleGolden, Article1SetConsistentAcrossAllModes) {
  ExpectMatrixConsistent(workloads::Article1Set());
}

TEST(OracleGolden, Article3SetConsistentAcrossAllModes) {
  ExpectMatrixConsistent(workloads::Article3Set());
}

// ---- negative direction: every invariant must fire on corrupted data ----

RunResult DsaResult() {
  static const RunResult r =
      Run(workloads::MakeVecAdd(512), RunMode::kDsa, SystemConfig{});
  return r;
}

TEST(OracleInvariants, CleanRunPasses) {
  EXPECT_TRUE(oracle::CheckInvariants(DsaResult(), "clean").empty());
}

TEST(OracleInvariants, RejectsFailedOutputCheck) {
  RunResult r = DsaResult();
  r.output_ok = false;
  EXPECT_TRUE(HasCheck(oracle::CheckInvariants(r, "j"),
                       "invariant.output_ok"));
}

TEST(OracleInvariants, RejectsZeroCycles) {
  RunResult r = DsaResult();
  r.cycles = 0;
  EXPECT_TRUE(HasCheck(oracle::CheckInvariants(r, "j"), "invariant.cycles"));
}

TEST(OracleInvariants, RejectsInconsistentRetiredSplit) {
  RunResult r = DsaResult();
  r.cpu.retired_scalar += 7;
  EXPECT_TRUE(HasCheck(oracle::CheckInvariants(r, "j"),
                       "invariant.retired_split"));
}

TEST(OracleInvariants, RejectsOutOfRangeDetectionLatency) {
  RunResult r = DsaResult();
  // More analysis ticks than retired instructions pushes the percentage
  // over 100.
  r.dsa->analysis_cycles = 2 * r.cpu.retired_total;
  r.dsa->observed_instructions = 4 * r.cpu.retired_total;  // keep dsa_analysis quiet
  EXPECT_TRUE(HasCheck(oracle::CheckInvariants(r, "j"),
                       "invariant.detection_latency"));
}

TEST(OracleInvariants, RejectsNegativeEnergyTerm) {
  RunResult r = DsaResult();
  r.energy.cache_dram = -1.0;
  EXPECT_TRUE(HasCheck(oracle::CheckInvariants(r, "j"),
                       "invariant.energy_term"));
}

TEST(OracleInvariants, RejectsDsaStatsOnScalarRun) {
  RunResult r = DsaResult();
  r.mode = RunMode::kScalar;  // stats still attached
  EXPECT_TRUE(HasCheck(oracle::CheckInvariants(r, "j"),
                       "invariant.dsa_presence"));
}

TEST(OracleInvariants, RejectsMissingDsaStatsOnDsaRun) {
  RunResult r = DsaResult();
  r.dsa.reset();
  EXPECT_TRUE(HasCheck(oracle::CheckInvariants(r, "j"),
                       "invariant.dsa_presence"));
}

TEST(OracleInvariants, RejectsImpossibleCacheHitCount) {
  RunResult r = DsaResult();
  r.dsa->cache_hit_takeovers = r.dsa->takeovers + 1;
  EXPECT_TRUE(HasCheck(oracle::CheckInvariants(r, "j"),
                       "invariant.dsa_cache_hits"));
}

TEST(OracleInvariants, RejectsEntryCensusMismatch) {
  RunResult r = DsaResult();
  r.dsa->takeovers += 1;
  r.dsa->cache_hit_takeovers = 0;
  EXPECT_TRUE(HasCheck(oracle::CheckInvariants(r, "j"),
                       "invariant.dsa_entry_census"));
}

TEST(OracleInvariants, RejectsTakeoversWithoutClassifiedLoops) {
  RunResult r = DsaResult();
  ASSERT_GT(r.dsa->takeovers, 0u);
  r.dsa->loops_by_class.clear();
  EXPECT_TRUE(HasCheck(oracle::CheckInvariants(r, "j"),
                       "invariant.dsa_loop_census"));
}

TEST(OracleInvariants, RejectsTakeoversWithoutCoverage) {
  RunResult r = DsaResult();
  ASSERT_GT(r.dsa->takeovers, 0u);
  r.dsa->vectorized_iterations = 0;
  EXPECT_TRUE(HasCheck(oracle::CheckInvariants(r, "j"),
                       "invariant.dsa_coverage"));
}

TEST(OracleInvariants, RejectsClassificationsWithoutDetections) {
  RunResult r = DsaResult();
  r.dsa->stage_activations[static_cast<int>(engine::Stage::kLoopDetection)] =
      0;
  EXPECT_TRUE(HasCheck(oracle::CheckInvariants(r, "j"),
                       "invariant.dsa_stage_census"));
}

TEST(OracleInvariants, RejectsAnalysisLongerThanObservation) {
  RunResult r = DsaResult();
  r.dsa->analysis_cycles = r.dsa->observed_instructions + 1;
  EXPECT_TRUE(HasCheck(oracle::CheckInvariants(r, "j"),
                       "invariant.dsa_analysis"));
}

TEST(OracleDeterminism, FlagsEveryDivergingCounter) {
  const RunResult a = DsaResult();
  RunResult b = a;
  b.cycles += 1;
  b.output_digest ^= 0xDEAD;
  b.cpu.retired_total += 1;
  b.energy.core_dynamic += 0.5;
  b.dsa->takeovers += 1;
  const auto v = oracle::CheckDeterminism(a, b, "j");
  EXPECT_TRUE(HasCheck(v, "determinism.cycles"));
  EXPECT_TRUE(HasCheck(v, "determinism.output_digest"));
  EXPECT_TRUE(HasCheck(v, "determinism.retired"));
  EXPECT_TRUE(HasCheck(v, "determinism.energy"));
  EXPECT_TRUE(HasCheck(v, "determinism.takeovers"));
}

TEST(OracleEquivalence, FlagsDivergentOutputBuffers) {
  const RunResult scalar = dsa::sim::Run(workloads::MakeVecAdd(512),
                                         RunMode::kScalar, SystemConfig{});
  RunResult vec = DsaResult();
  EXPECT_TRUE(oracle::CheckEquivalence(scalar, vec, "j").empty());
  vec.output_digest ^= 1;
  EXPECT_TRUE(HasCheck(oracle::CheckEquivalence(scalar, vec, "j"),
                       "equivalence.output_digest"));
}

TEST(OracleEquivalence, FlagsCrossWorkloadComparison) {
  const RunResult a = dsa::sim::Run(workloads::MakeVecAdd(512),
                                    RunMode::kScalar, SystemConfig{});
  const RunResult b = dsa::sim::Run(workloads::MakeBitCount(),
                                    RunMode::kScalar, SystemConfig{});
  EXPECT_TRUE(HasCheck(oracle::CheckEquivalence(a, b, "j"),
                       "equivalence.workload"));
}

TEST(OracleFormat, OneLinePerViolation) {
  std::vector<oracle::Violation> v = {
      {"job1", "invariant.cycles", "cycle count is zero"},
      {"job2", "determinism.cycles", "run 1: 5, run 2: 6"},
  };
  const std::string s = oracle::FormatViolations(v);
  EXPECT_NE(s.find("ORACLE VIOLATION [invariant.cycles] job1"),
            std::string::npos);
  EXPECT_NE(s.find("ORACLE VIOLATION [determinism.cycles] job2"),
            std::string::npos);
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2);
}

}  // namespace
}  // namespace dsa::sim
