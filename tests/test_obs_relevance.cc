// Observation-relevance classes (docs/DISPATCH.md): the engine classifies
// every pc at lowering time — inert / exit-and-observe / execute-inline —
// so the threaded core batches provably-inert retires even while cooldowns
// exist, and the way-predicted cache path batches same-line hit runs.
// These tests pin the contract that makes that legal: every simulated
// counter, not just the digest, is bit-identical to the pre-optimization
// reference path and to the decode-switch twin, and the Q Sort
// loop-detection activation count — the statistic most sensitive to a
// latch observation being wrongly skipped — stays at its long-standing
// value.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/config.h"
#include "engine/stats.h"
#include "sim/system.h"
#include "workloads/workloads.h"

namespace dsa::sim {
namespace {

// Field-by-field equality of everything a run simulates. FormatReport
// comparisons (test_reference_path.cc) cover the surfaced subset; this
// sweep also pins counters no report prints (array-map/VC/DSA-cache
// accesses, per-class entry censuses, reject reasons), which is exactly
// where a silently skipped observation would hide.
void ExpectCountersIdentical(const std::string& tag, const RunResult& a,
                             const RunResult& b) {
  EXPECT_EQ(a.output_digest, b.output_digest) << tag;
  EXPECT_EQ(a.output_ok, b.output_ok) << tag;
  EXPECT_EQ(a.cycles, b.cycles) << tag;

  EXPECT_EQ(a.cpu.retired_total, b.cpu.retired_total) << tag;
  EXPECT_EQ(a.cpu.retired_scalar, b.cpu.retired_scalar) << tag;
  EXPECT_EQ(a.cpu.retired_vector, b.cpu.retired_vector) << tag;
  EXPECT_EQ(a.cpu.mem_reads, b.cpu.mem_reads) << tag;
  EXPECT_EQ(a.cpu.mem_writes, b.cpu.mem_writes) << tag;
  EXPECT_EQ(a.cpu.branches, b.cpu.branches) << tag;
  EXPECT_EQ(a.cpu.mispredicts, b.cpu.mispredicts) << tag;
  EXPECT_EQ(a.cpu.issue_slots, b.cpu.issue_slots) << tag;
  EXPECT_EQ(a.cpu.mem_stall_cycles, b.cpu.mem_stall_cycles) << tag;
  EXPECT_EQ(a.cpu.other_stall_cycles, b.cpu.other_stall_cycles) << tag;
  EXPECT_EQ(a.cpu.neon_busy_cycles, b.cpu.neon_busy_cycles) << tag;
  EXPECT_EQ(a.cpu.dsa_overhead_cycles, b.cpu.dsa_overhead_cycles) << tag;

  EXPECT_EQ(a.l1.hits, b.l1.hits) << tag;
  EXPECT_EQ(a.l1.misses, b.l1.misses) << tag;
  EXPECT_EQ(a.l2.hits, b.l2.hits) << tag;
  EXPECT_EQ(a.l2.misses, b.l2.misses) << tag;
  EXPECT_EQ(a.dram_accesses, b.dram_accesses) << tag;

  ASSERT_EQ(a.dsa.has_value(), b.dsa.has_value()) << tag;
  if (!a.dsa.has_value()) return;
  const engine::DsaStats& x = *a.dsa;
  const engine::DsaStats& y = *b.dsa;
  EXPECT_EQ(x.loops_by_class, y.loops_by_class) << tag;
  EXPECT_EQ(x.entries_by_class, y.entries_by_class) << tag;
  EXPECT_EQ(x.rejects_by_reason, y.rejects_by_reason) << tag;
  EXPECT_EQ(x.stage_activations, y.stage_activations) << tag;
  EXPECT_EQ(x.analysis_cycles, y.analysis_cycles) << tag;
  EXPECT_EQ(x.observed_instructions, y.observed_instructions) << tag;
  EXPECT_EQ(x.takeovers, y.takeovers) << tag;
  EXPECT_EQ(x.cache_hit_takeovers, y.cache_hit_takeovers) << tag;
  EXPECT_EQ(x.fusions_formed, y.fusions_formed) << tag;
  EXPECT_EQ(x.fusion_demotions, y.fusion_demotions) << tag;
  EXPECT_EQ(x.sentinel_respeculations, y.sentinel_respeculations) << tag;
  EXPECT_EQ(x.vectorized_iterations, y.vectorized_iterations) << tag;
  EXPECT_EQ(x.scalar_covered_instrs, y.scalar_covered_instrs) << tag;
  EXPECT_EQ(x.vector_instrs_issued, y.vector_instrs_issued) << tag;
  EXPECT_EQ(x.array_map_accesses, y.array_map_accesses) << tag;
  EXPECT_EQ(x.vc_accesses, y.vc_accesses) << tag;
  EXPECT_EQ(x.dsa_cache_accesses, y.dsa_cache_accesses) << tag;
  EXPECT_EQ(x.rollbacks, y.rollbacks) << tag;
  EXPECT_EQ(x.blacklisted_loops, y.blacklisted_loops) << tag;
  EXPECT_EQ(x.cache_corruptions_detected, y.cache_corruptions_detected)
      << tag;
}

TEST(ObsRelevance, QSortLoopDetectionActivationsPinned) {
  // Q Sort is the stress case for latch relevance: thousands of cooled,
  // non-vectorizable backward branches that the fast path may batch as
  // inert but must still count exactly once per fresh-latch encounter.
  // The pin is the same on the fast threaded path, the switch twin and
  // the reference path; 2021 is the value every PR since the detector
  // landed has reproduced.
  const Workload wl = workloads::MakeQSort();
  for (const cpu::DispatchMode d :
       {cpu::DispatchMode::kThreaded, cpu::DispatchMode::kSwitch}) {
    for (const bool ref : {false, true}) {
      SystemConfig cfg;
      cfg.dispatch = d;
      cfg.reference_path = ref;
      const RunResult r = sim::Run(wl, RunMode::kDsa, cfg);
      ASSERT_TRUE(r.dsa.has_value());
      EXPECT_EQ(r.dsa->stage_activations[static_cast<int>(
                    engine::Stage::kLoopDetection)],
                2021u)
          << "dispatch=" << std::string(cpu::ToString(d)) << " ref=" << ref;
    }
  }
}

TEST(ObsRelevance, EqualitySweepFastVsReferenceAllWorkloadsAllModes) {
  SystemConfig ref_cfg;
  ref_cfg.reference_path = true;
  for (const Workload& wl : workloads::AllNamedWorkloads()) {
    for (const RunMode m : {RunMode::kScalar, RunMode::kAutoVec,
                            RunMode::kHandVec, RunMode::kDsa}) {
      const std::string tag = wl.name + "@" + std::string(ToString(m));
      ExpectCountersIdentical(tag, sim::Run(wl, m, {}), sim::Run(wl, m, ref_cfg));
    }
  }
}

TEST(ObsRelevance, EqualitySweepThreadedVsSwitchWithGatingOn) {
  // The switch twin has no slot stream, so it runs the pc-window filter
  // while the threaded core runs the relevance classes — the two gating
  // schemes must be observationally indistinguishable.
  SystemConfig sw_cfg;
  sw_cfg.dispatch = cpu::DispatchMode::kSwitch;
  for (const Workload& wl :
       {workloads::MakeQSort(), workloads::MakeRgbGray(),
        workloads::MakeStrCopy(), workloads::MakeDijkstra(),
        workloads::MakeDispatchMicro(20000)}) {
    const std::string tag = wl.name + " threaded-vs-switch";
    ExpectCountersIdentical(tag, sim::Run(wl, RunMode::kDsa, {}),
                            sim::Run(wl, RunMode::kDsa, sw_cfg));
  }
}

TEST(ObsRelevance, OriginalDsaConfigStaysIdentical) {
  // The Article-2 parameterization cools down and re-speculates on
  // different schedules, exercising different epoch-bump sequences.
  SystemConfig cfg;
  cfg.dsa = engine::DsaConfig::Original();
  SystemConfig ref_cfg = cfg;
  ref_cfg.reference_path = true;
  for (const Workload& wl :
       {workloads::MakeQSort(), workloads::MakeBitCount(),
        workloads::MakeStrCopy()}) {
    ExpectCountersIdentical(wl.name + " (Original DSA)",
                            sim::Run(wl, RunMode::kDsa, cfg),
                            sim::Run(wl, RunMode::kDsa, ref_cfg));
  }
}

TEST(ObsRelevance, HostPhasesArePlausibleAndBounded) {
  // host.phases is host metadata, so only its invariants are testable:
  // non-negative buckets whose sum never exceeds the wall time (they are
  // disjoint tsc spans of the run), and a non-empty dispatch bucket for a
  // run of this size.
  const RunResult r = sim::Run(workloads::MakeQSort(), RunMode::kDsa, {});
  const RunResult::HostPhases& p = r.host_phases;
  EXPECT_GE(p.dispatch_ms, 0.0);
  EXPECT_GE(p.observe_ms, 0.0);
  EXPECT_GE(p.mem_ms, 0.0);
  EXPECT_GE(p.neon_ms, 0.0);
  EXPECT_GT(p.dispatch_ms, 0.0);
  EXPECT_LE(p.dispatch_ms + p.observe_ms + p.mem_ms + p.neon_ms,
            r.host_wall_ms * 1.0001 + 1e-9);
}

}  // namespace
}  // namespace dsa::sim
