#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "mem/cache.h"

namespace dsa::mem {
namespace {

CacheConfig TinyCache() {
  // 4 sets x 2 ways x 16-byte lines = 128 bytes.
  return CacheConfig{128, 16, 2, 1};
}

TEST(Cache, ColdMissThenHit) {
  Cache c(TinyCache());
  EXPECT_FALSE(c.Access(0x40));
  EXPECT_TRUE(c.Access(0x40));
  EXPECT_TRUE(c.Access(0x4F));  // same line
  EXPECT_EQ(c.stats().hits, 2u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, SetIndexingSeparatesLines) {
  Cache c(TinyCache());
  // Lines 0x00 and 0x10 map to different sets: both fit simultaneously.
  c.Access(0x00);
  c.Access(0x10);
  EXPECT_TRUE(c.Probe(0x00));
  EXPECT_TRUE(c.Probe(0x10));
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  Cache c(TinyCache());
  // Set 0 lines: stride = 4 sets * 16B = 64.
  c.Access(0x000);  // A
  c.Access(0x040);  // B  (set 0 now full)
  c.Access(0x000);  // touch A -> B is LRU
  c.Access(0x080);  // C evicts B
  EXPECT_TRUE(c.Probe(0x000));
  EXPECT_FALSE(c.Probe(0x040));
  EXPECT_TRUE(c.Probe(0x080));
}

TEST(Cache, LruStackProperty) {
  // With W ways, accessing W distinct lines in a set keeps them all; the
  // (W+1)-th unique line evicts exactly the least recently used.
  for (std::uint32_t ways : {2u, 4u, 8u}) {
    Cache c(CacheConfig{ways * 16, 16, ways, 1});  // one set
    for (std::uint32_t i = 0; i < ways; ++i) c.Access(i * 16);
    for (std::uint32_t i = 0; i < ways; ++i) {
      EXPECT_TRUE(c.Probe(i * 16)) << "ways=" << ways << " line " << i;
    }
    c.Access(ways * 16);  // one beyond capacity
    EXPECT_FALSE(c.Probe(0));
    for (std::uint32_t i = 1; i <= ways; ++i) EXPECT_TRUE(c.Probe(i * 16));
  }
}

TEST(Cache, FlushInvalidatesEverything) {
  Cache c(TinyCache());
  c.Access(0x00);
  c.Flush();
  EXPECT_FALSE(c.Probe(0x00));
}

TEST(Cache, FillsInvalidWaysInOrderBeforeEvicting) {
  // A set must consume every invalid way before recycling a valid line,
  // and the scan is strictly first-invalid-wins: cold fills land in way
  // 0, 1, 2, 3 in access order.
  Cache c(CacheConfig{256, 16, 4, 1});  // 4 sets x 4 ways
  // All four lines map to set 0 (stride = 4 sets * 16B = 64).
  c.Access(0x000);
  c.Access(0x040);
  c.Access(0x080);
  c.Access(0x0C0);
  EXPECT_EQ(c.WayOf(0x000), 0);
  EXPECT_EQ(c.WayOf(0x040), 1);
  EXPECT_EQ(c.WayOf(0x080), 2);
  EXPECT_EQ(c.WayOf(0x0C0), 3);
  // Touch way 1 so it is MRU, then fill a fifth line: the victim must be
  // the LRU valid line (way 0), never an already-valid MRU way.
  c.Access(0x040);
  c.Access(0x100);
  EXPECT_EQ(c.WayOf(0x100), 0);
  EXPECT_EQ(c.WayOf(0x040), 1);
  EXPECT_EQ(c.WayOf(0x000), -1);  // evicted
}

TEST(Cache, FastPathMatchesReferenceWalkOnRandomStream) {
  // The way-predicted fast path must be invisible in every observable:
  // same hit/miss verdict per access, same stats, same final way layout as
  // the pre-optimization full set walk. The address stream churns a
  // footprint several times the cache so evictions (and therefore
  // residency-map invalidations) happen constantly.
  Cache fast(TinyCache());
  Cache ref(TinyCache());
  ref.set_reference_path(true);
  std::uint32_t s = 0x12345678u;
  for (int i = 0; i < 20000; ++i) {
    s ^= s << 13;
    s ^= s >> 17;
    s ^= s << 5;
    const std::uint32_t addr = s % 1024;
    EXPECT_EQ(fast.Access(addr), ref.Access(addr)) << "access " << i;
  }
  EXPECT_EQ(fast.stats().hits, ref.stats().hits);
  EXPECT_EQ(fast.stats().misses, ref.stats().misses);
  for (std::uint32_t a = 0; a < 1024; a += 16) {
    EXPECT_EQ(fast.WayOf(a), ref.WayOf(a)) << "addr " << a;
  }
}

TEST(Cache, EvictionInvalidatesResidencyMapping) {
  Cache c(TinyCache());  // 4 sets x 2 ways; set-0 lines are 0x40 apart
  c.Access(0x000);
  EXPECT_NE(c.ResidentWay(0x000u >> c.line_shift()), nullptr);
  c.Access(0x040);
  c.Access(0x080);  // set 0 overflows: 0x000 is the LRU victim
  EXPECT_EQ(c.ResidentWay(0x000u >> c.line_shift()), nullptr);
  EXPECT_FALSE(c.Probe(0x000));
  // A stale mapping would short-circuit this into a phantom hit.
  const std::uint64_t misses = c.stats().misses;
  EXPECT_FALSE(c.Access(0x000));
  EXPECT_EQ(c.stats().misses, misses + 1);
}

TEST(Cache, CreditRunMatchesRepeatedAccessHits) {
  // One CreditRun(way, n) must leave stats, LRU order and future victim
  // choice exactly where n consecutive Access() hits would.
  Cache a(TinyCache());
  Cache b(TinyCache());
  a.Access(0x040);
  b.Access(0x040);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(a.Access(0x040));
  Cache::Way* w = b.ResidentWay(0x040u >> b.line_shift());
  ASSERT_NE(w, nullptr);
  b.CreditRun(w, 5);
  a.Access(0x000);
  b.Access(0x000);
  a.Access(0x080);  // evicts the LRU of set 0 — must agree on the victim
  b.Access(0x080);
  EXPECT_EQ(a.stats().hits, b.stats().hits);
  EXPECT_EQ(a.stats().misses, b.stats().misses);
  for (const std::uint32_t addr : {0x000u, 0x040u, 0x080u}) {
    EXPECT_EQ(a.WayOf(addr), b.WayOf(addr)) << "addr " << addr;
  }
}

TEST(Cache, ReferencePathNeverOpensRuns) {
  Cache c(TinyCache());
  c.set_reference_path(true);
  c.Access(0x040);
  EXPECT_EQ(c.ResidentWay(0x040u >> c.line_shift()), nullptr);
}

TEST(Cache, ResidencySlotCollisionFallsBackToWalk) {
  // Two lines 8192 lines apart share a residency slot (the map is 8192
  // entries, direct-mapped). The loser of the slot must still hit through
  // the set walk — a collision costs speed, never correctness.
  Cache c(TinyCache());
  const std::uint32_t a = 0x000;
  const std::uint32_t b = a + (8192u << 4);  // same slot, same set, 2 ways
  c.Access(a);
  c.Access(b);
  EXPECT_TRUE(c.Access(a));
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, BadConfigThrows) {
  EXPECT_THROW(Cache(CacheConfig{100, 24, 2, 1}), std::invalid_argument);
  EXPECT_THROW(Cache(CacheConfig{128, 16, 0, 1}), std::invalid_argument);
  EXPECT_THROW(Cache(CacheConfig{0, 16, 2, 1}), std::invalid_argument);
}

TEST(Cache, DefaultTable4Geometry) {
  Cache l1(CacheConfig{64 * 1024, 64, 4, 1});
  EXPECT_EQ(l1.num_sets(), 256u);
  Cache l2(CacheConfig{512 * 1024, 64, 8, 8});
  EXPECT_EQ(l2.num_sets(), 1024u);
}

class HierarchyTest : public ::testing::Test {
 protected:
  Hierarchy::Config NoPrefetch() {
    Hierarchy::Config c;
    c.next_line_prefetch = false;
    return c;
  }
};

TEST_F(HierarchyTest, LatencyTiers) {
  Hierarchy h(NoPrefetch());
  const auto cfg = NoPrefetch();
  // Cold: L1 miss + L2 miss -> DRAM.
  EXPECT_EQ(h.Access(0x1000),
            cfg.l1.hit_latency + cfg.l2.hit_latency + cfg.dram_latency);
  // Warm: L1 hit.
  EXPECT_EQ(h.Access(0x1000), cfg.l1.hit_latency);
  EXPECT_EQ(h.dram_accesses(), 1u);
}

TEST_F(HierarchyTest, L2HitAfterL1Eviction) {
  Hierarchy::Config cfg = NoPrefetch();
  cfg.l1 = CacheConfig{128, 64, 1, 1};  // 2 sets, direct-mapped: tiny L1
  Hierarchy h(cfg);
  h.Access(0x0000);
  h.Access(0x0080);  // evicts 0x0000 from L1 (same set), stays in L2
  EXPECT_EQ(h.Access(0x0000), cfg.l1.hit_latency + cfg.l2.hit_latency);
}

TEST_F(HierarchyTest, RangeStraddlingTwoLines) {
  Hierarchy h(NoPrefetch());
  const std::uint32_t lat = h.AccessRange(60, 8);  // crosses 64B boundary
  // Two cold accesses.
  const auto cfg = NoPrefetch();
  EXPECT_EQ(lat, 2 * (cfg.l1.hit_latency + cfg.l2.hit_latency +
                      cfg.dram_latency));
}

TEST_F(HierarchyTest, PrefetchMakesNextLineHit) {
  Hierarchy::Config cfg;
  cfg.next_line_prefetch = true;
  Hierarchy h(cfg);
  h.Access(0x0000);                                // miss, prefetches 0x40
  EXPECT_EQ(h.Access(0x0040), cfg.l1.hit_latency);  // prefetched
}

TEST_F(HierarchyTest, SequentialStreamMostlyHitsWithPrefetch) {
  Hierarchy::Config cfg;
  cfg.next_line_prefetch = true;
  Hierarchy h(cfg);
  std::uint64_t total = 0;
  for (std::uint32_t a = 0; a < 64 * 64; a += 4) total += h.Access(a);
  // 64 lines; at most half should miss all the way to DRAM.
  EXPECT_LT(h.l1().stats().miss_rate(), 0.1);
}

}  // namespace
}  // namespace dsa::mem
