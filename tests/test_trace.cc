// Tracer tests: schema stability (the trace library's stage table must
// mirror the engine's Stage enum), zero-cost-off guarantees, the ring
// overflow policy, event ordering on a real traced run, the Chrome
// exporter round-trip, the oracle's trace-vs-counters cross-check, and
// tracing's observer property (identical cycles/outputs on and off).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/stats.h"
#include "sim/oracle.h"
#include "sim/report.h"
#include "sim/system.h"
#include "trace/chrome_export.h"
#include "trace/trace.h"
#include "workloads/workloads.h"

namespace dsa {
namespace {

using sim::RunMode;
using sim::RunResult;
using sim::SystemConfig;
using trace::Event;
using trace::EventKind;
using trace::TraceDump;
using trace::Tracer;

RunResult TracedDsaRun(const sim::Workload& wl, std::uint32_t capacity =
                                                    trace::TraceConfig{}.capacity) {
  SystemConfig cfg;
  cfg.trace.enabled = true;
  cfg.trace.capacity = capacity;
  return Run(wl, RunMode::kDsa, cfg);
}

bool HasCheck(const std::vector<sim::oracle::Violation>& v,
              const char* check) {
  return std::any_of(v.begin(), v.end(),
                     [check](const sim::oracle::Violation& x) {
                       return x.check == check;
                     });
}

// --- schema stability -------------------------------------------------------

TEST(TraceSchema, StageTableMirrorsEngineEnum) {
  ASSERT_EQ(trace::kNumStages, engine::kNumStages);
  for (int s = 0; s < engine::kNumStages; ++s) {
    EXPECT_EQ(trace::kStageNames[s],
              engine::ToString(static_cast<engine::Stage>(s)))
        << "stage table drifted at index " << s;
  }
}

TEST(TraceSchema, EventKindNamesAreStable) {
  for (int k = 0; k < trace::kNumEventKinds; ++k) {
    EXPECT_NE(ToString(static_cast<EventKind>(k)), "?")
        << "unnamed event kind " << k;
  }
}

// --- zero-cost when disabled ------------------------------------------------

TEST(Tracer, DisabledTracerNeverAllocates) {
  Tracer off;
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(off.ring_capacity(), 0u);

  trace::TraceConfig cfg;  // enabled defaults to false
  cfg.capacity = 1u << 20;
  Tracer still_off(cfg);
  EXPECT_EQ(still_off.ring_capacity(), 0u);

  off.Emit(EventKind::kLoopDetected, 0x10);
  EXPECT_EQ(off.emitted(), 0u);
  EXPECT_EQ(off.Dump().events.size(), 0u);
}

TEST(Tracer, DisabledConfigDisablesTheWholeRun) {
  const sim::Workload wl = workloads::MakeVecAdd(256);
  const RunResult r = sim::Run(wl, RunMode::kDsa, SystemConfig{});
  EXPECT_EQ(r.trace, nullptr);
}

// --- ring overflow policy ---------------------------------------------------

TEST(Tracer, RingOverwritesOldestAndKeepsAggregatesExact) {
  trace::TraceConfig cfg;
  cfg.enabled = true;
  cfg.capacity = 4;
  Tracer t(cfg);
  for (std::uint64_t i = 0; i < 10; ++i) {
    t.SetNow(i);
    t.Emit(EventKind::kStageActivation, /*loop_id=*/0x10, /*stage=*/0, i);
  }
  const TraceDump d = t.Dump();
  EXPECT_EQ(d.emitted, 10u);
  EXPECT_EQ(d.dropped, 6u);
  ASSERT_EQ(d.events.size(), 4u);
  // Retained events are the newest four, oldest first.
  for (std::size_t i = 0; i < d.events.size(); ++i) {
    EXPECT_EQ(d.events[i].ts, 6 + i);
  }
  // The aggregate stage counter saw all ten emissions, not just the ring.
  EXPECT_EQ(d.stage_counts[0], 10u);
  EXPECT_EQ(d.kind_counts[static_cast<int>(EventKind::kStageActivation)],
            10u);
}

TEST(Tracer, ZeroCapacityDropsEverythingButCounts) {
  trace::TraceConfig cfg;
  cfg.enabled = true;
  cfg.capacity = 0;
  Tracer t(cfg);
  t.Emit(EventKind::kCacheHit, 0x20);
  const TraceDump d = t.Dump();
  EXPECT_EQ(d.emitted, 1u);
  EXPECT_EQ(d.dropped, 1u);
  EXPECT_TRUE(d.events.empty());
  EXPECT_EQ(d.kind_counts[static_cast<int>(EventKind::kCacheHit)], 1u);
}

// --- event ordering on a real run -------------------------------------------

TEST(TraceRun, EventsAreTimeOrderedAndLifecycleIsWellFormed) {
  const sim::Workload wl = workloads::MakeVecAdd(512);
  const RunResult r = TracedDsaRun(wl);
  ASSERT_NE(r.trace, nullptr);
  const TraceDump& t = *r.trace;
  ASSERT_EQ(t.dropped, 0u);
  ASSERT_GT(t.events.size(), 0u);

  std::uint64_t last_ts = 0;
  std::map<std::uint32_t, bool> detected;
  std::map<std::uint32_t, bool> classified;
  for (const Event& e : t.events) {
    EXPECT_GE(e.ts, last_ts) << "events must be emitted in time order";
    last_ts = e.ts;
    switch (e.kind) {
      case EventKind::kLoopDetected:
        detected[e.loop_id] = true;
        break;
      case EventKind::kLoopClassified:
        // A classification always follows this loop's detection — except
        // for outer-loop records, which are minted wholesale by a takeover
        // that interrupted the outer tracker (still a detected loop).
        EXPECT_TRUE(detected.count(e.loop_id))
            << "loop 0x" << std::hex << e.loop_id
            << " classified but never detected";
        classified[e.loop_id] = true;
        break;
      case EventKind::kTakeoverBegin:
        EXPECT_TRUE(classified.count(e.loop_id))
            << "takeover of an unclassified loop 0x" << std::hex << e.loop_id;
        break;
      case EventKind::kStageActivation:
        EXPECT_LT(e.arg0, static_cast<std::uint64_t>(trace::kNumStages));
        break;
      default:
        break;
    }
  }
  // The run vectorized something: takeover begin/end pairs balance.
  const auto begins =
      t.kind_counts[static_cast<int>(EventKind::kTakeoverBegin)];
  const auto ends = t.kind_counts[static_cast<int>(EventKind::kTakeoverEnd)];
  EXPECT_GT(begins, 0u);
  EXPECT_EQ(begins, ends);
}

// --- exporter round-trip ----------------------------------------------------

TEST(ChromeExport, RoundTripRederivesStageCounts) {
  const sim::Workload wl = workloads::MakeVecAdd(512);
  const RunResult r = TracedDsaRun(wl);
  ASSERT_NE(r.trace, nullptr);
  ASSERT_EQ(r.trace->dropped, 0u);

  const std::string path = ::testing::TempDir() + "trace_roundtrip.json";
  ASSERT_TRUE(trace::WriteChromeTrace(
      path, {trace::ChromeProcess{"vec_add@dsa", r.trace.get()}}));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();

  auto count = [&json](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + needle.size())) {
      ++n;
    }
    return n;
  };

  // Re-derive the per-stage activation counts from the emitted events and
  // compare against the aggregates the tracer kept — and against the
  // engine's own counters, closing the loop.
  ASSERT_TRUE(r.dsa.has_value());
  for (int s = 0; s < trace::kNumStages; ++s) {
    const std::string name =
        "\"stage:" + std::string(trace::kStageNames[s]) + "\"";
    EXPECT_EQ(count(name), r.trace->stage_counts[s]) << "stage " << s;
    EXPECT_EQ(count(name), r.dsa->stage_activations[s]) << "stage " << s;
  }
  // Structural sanity without a JSON parser: takeover B/E balance and the
  // schema marker.
  EXPECT_NE(json.find("\"schema\": \"dsa-trace/1\""), std::string::npos);
  EXPECT_EQ(count("\"ph\": \"B\""), count("\"ph\": \"E\""));
  std::remove(path.c_str());
}

// --- oracle cross-check -----------------------------------------------------

TEST(TraceOracle, CleanTracedRunPasses) {
  const sim::Workload wl = workloads::MakeVecAdd(512);
  const RunResult r = TracedDsaRun(wl);
  const auto v = sim::oracle::CheckInvariants(r, "vec_add@dsa");
  EXPECT_TRUE(v.empty()) << sim::oracle::FormatViolations(v);
}

TEST(TraceOracle, CorruptedAggregateIsCaught) {
  const sim::Workload wl = workloads::MakeVecAdd(512);
  RunResult r = TracedDsaRun(wl);
  ASSERT_NE(r.trace, nullptr);
  TraceDump bad = *r.trace;
  ++bad.stage_counts[0];
  r.trace = std::make_shared<const TraceDump>(std::move(bad));
  const auto v = sim::oracle::CheckInvariants(r, "vec_add@dsa");
  EXPECT_TRUE(HasCheck(v, "invariant.trace_stage_aggregate"))
      << sim::oracle::FormatViolations(v);
}

TEST(TraceOracle, CorruptedEventStreamIsCaught) {
  const sim::Workload wl = workloads::MakeVecAdd(512);
  RunResult r = TracedDsaRun(wl);
  ASSERT_NE(r.trace, nullptr);
  ASSERT_EQ(r.trace->dropped, 0u);
  TraceDump bad = *r.trace;
  // Drop one stage-activation event while keeping the aggregates: the
  // event-reconstruction check must notice the stream no longer matches.
  const auto it = std::find_if(bad.events.begin(), bad.events.end(),
                               [](const Event& e) {
                                 return e.kind == EventKind::kStageActivation;
                               });
  ASSERT_NE(it, bad.events.end());
  bad.events.erase(it);
  r.trace = std::make_shared<const TraceDump>(std::move(bad));
  const auto v = sim::oracle::CheckInvariants(r, "vec_add@dsa");
  EXPECT_TRUE(HasCheck(v, "invariant.trace_stage_events"))
      << sim::oracle::FormatViolations(v);
}

TEST(TraceOracle, OverflowedRingStillChecksAggregates) {
  const sim::Workload wl = workloads::MakeVecAdd(512);
  const RunResult r = TracedDsaRun(wl, /*capacity=*/8);
  ASSERT_NE(r.trace, nullptr);
  EXPECT_GT(r.trace->dropped, 0u);
  // Event reconstruction is skipped (the ring is lossy), but the exact
  // aggregates still gate the run.
  const auto v = sim::oracle::CheckInvariants(r, "vec_add@dsa@tiny-ring");
  EXPECT_TRUE(v.empty()) << sim::oracle::FormatViolations(v);
}

// --- tracing is an observer -------------------------------------------------

TEST(TraceRun, TracingDoesNotPerturbTheSimulation) {
  for (const sim::Workload& wl :
       {workloads::MakeVecAdd(512), workloads::MakeDijkstra()}) {
    const RunResult off = sim::Run(wl, RunMode::kDsa, SystemConfig{});
    const RunResult on = TracedDsaRun(wl);
    EXPECT_EQ(off.cycles, on.cycles) << wl.name;
    EXPECT_EQ(off.output_digest, on.output_digest) << wl.name;
    EXPECT_EQ(off.cpu.retired_total, on.cpu.retired_total) << wl.name;
    ASSERT_TRUE(off.dsa.has_value());
    ASSERT_TRUE(on.dsa.has_value());
    for (int s = 0; s < engine::kNumStages; ++s) {
      EXPECT_EQ(off.dsa->stage_activations[s], on.dsa->stage_activations[s])
          << wl.name << " stage " << s;
    }
  }
}

// --- per-loop text profile --------------------------------------------------

TEST(TraceProfile, MentionsEveryTakenOverLoop) {
  const sim::Workload wl = workloads::MakeVecAdd(512);
  const RunResult r = TracedDsaRun(wl);
  const std::string profile = sim::FormatTraceProfile(r);
  ASSERT_FALSE(profile.empty());
  EXPECT_NE(profile.find("takeovers="), std::string::npos);
  EXPECT_NE(profile.find("loop-detection="), std::string::npos);
  EXPECT_NE(profile.find("dropped=0"), std::string::npos);
  // Untraced results produce no profile.
  EXPECT_TRUE(
      sim::FormatTraceProfile(sim::Run(wl, RunMode::kDsa, SystemConfig{})).empty());
}

}  // namespace
}  // namespace dsa
