// Cross-Iteration Dependency Prediction tests, including the paper's own
// worked example (Fig. 13) and brute-force property sweeps on affine
// streams.
#include <gtest/gtest.h>

#include <tuple>

#include "engine/cidp.h"

namespace dsa::engine {
namespace {

TEST(Cidp, PaperFig13Example) {
  // MRead[2]=0x100, MRead[3]=0x104 -> MGap=4; MWrite[2]=0x108; 10
  // iterations -> MRead[last]=0x120. 0x108 in [0x104,0x120] -> CID.
  const CidpResult r = PredictPair(0x100, 4, 0x108, 10);
  EXPECT_TRUE(r.has_dependency);
  EXPECT_EQ(r.dependent_iteration, 4);  // read at iter 4 hits 0x108
  EXPECT_EQ(r.distance, 2);
}

TEST(Cidp, WriteBeforeWindowIsInPlaceUpdate) {
  // w2 == r2: classic c[i] = c[i] + x. Outside [r3, rlast] -> NCID.
  const CidpResult r = PredictPair(0x100, 4, 0x100, 100);
  EXPECT_FALSE(r.has_dependency);
}

TEST(Cidp, WriteBeyondLastIterationIsSafe) {
  const CidpResult r = PredictPair(0x100, 4, 0x100 + 4 * 200, 100);
  EXPECT_FALSE(r.has_dependency);
}

TEST(Cidp, DisjointArraysAreSafe) {
  const CidpResult r = PredictPair(0x1000, 4, 0x9000, 1000);
  EXPECT_FALSE(r.has_dependency);
}

TEST(Cidp, DistanceMatchesOffset) {
  for (int d = 1; d <= 32; ++d) {
    const CidpResult r = PredictPair(0x100, 4, 0x100 + 4 * d, 1000);
    ASSERT_TRUE(r.has_dependency) << d;
    EXPECT_EQ(r.distance, d);
    EXPECT_EQ(r.dependent_iteration, 2 + d);
  }
}

TEST(Cidp, InvariantReadHitByWrite) {
  // stride 0 read of an address the loop writes -> immediate dependency.
  const CidpResult r = PredictPair(0x500, 0, 0x500, 50);
  EXPECT_TRUE(r.has_dependency);
  EXPECT_EQ(r.dependent_iteration, 3);
}

TEST(Cidp, InvariantReadOfOtherAddressSafe) {
  const CidpResult r = PredictPair(0x500, 0, 0x504, 50);
  EXPECT_FALSE(r.has_dependency);
}

TEST(Cidp, DescendingStreamWindowNormalized) {
  // Read walks down from 0x200; write at 0x1F0 is inside the window.
  const CidpResult r = PredictPair(0x200, -4, 0x1F0, 20);
  EXPECT_TRUE(r.has_dependency);
  EXPECT_EQ(r.distance, 4);
}

TEST(Cidp, ShortLoopsHaveNoWindow) {
  EXPECT_FALSE(PredictPair(0x100, 4, 0x104, 2).has_dependency);
  EXPECT_FALSE(PredictPair(0x100, 4, 0x104, 0).has_dependency);
}

TEST(Cidp, ByteGranularityPartialOverlap) {
  // Write lands between element addresses (e.g. misaligned alias):
  // flagged conservatively.
  const CidpResult r = PredictPair(0x100, 4, 0x106, 100);
  EXPECT_TRUE(r.has_dependency);
}

// Property: PredictPair agrees with a brute-force simulation of the affine
// streams over the analyzed window.
class CidpBruteForce
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CidpBruteForce, MatchesEnumeration) {
  const auto [stride, write_off, last] = GetParam();
  const std::uint32_t r2 = 0x8000;
  const std::uint32_t w2 = r2 + write_off;
  bool brute = false;
  for (int k = 3; k <= last; ++k) {
    const std::int64_t addr = static_cast<std::int64_t>(r2) +
                              static_cast<std::int64_t>(stride) * (k - 2);
    if (addr == static_cast<std::int64_t>(w2)) brute = true;
  }
  const CidpResult r = PredictPair(r2, stride, w2, last);
  if (stride != 0 && write_off % stride == 0) {
    EXPECT_EQ(r.has_dependency, brute)
        << "stride=" << stride << " off=" << write_off << " last=" << last;
  } else if (r.has_dependency) {
    // Conservative flag allowed for partial overlaps; never miss a real one.
    SUCCEED();
  } else {
    EXPECT_FALSE(brute);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CidpBruteForce,
    ::testing::Combine(::testing::Values(-8, -4, -1, 1, 2, 4, 8),
                       ::testing::Values(-64, -8, -4, 0, 4, 8, 12, 40, 400),
                       ::testing::Values(3, 5, 17, 100)));

TEST(CidpBody, ReportsEarliestDependency) {
  BodySummary body;
  MemStream load_a{/*pc=*/1, false, 4, 0x100, 4, false, -1, 0};
  MemStream load_b{/*pc=*/2, false, 4, 0x1000, 4, false, -1, 0};
  MemStream store{/*pc=*/3, true, 4, 0x100 + 4 * 6, 4, false, -1, 0};
  body.loads = {load_a, load_b};
  body.stores = {store};
  const CidpResult r = PredictBody(body, 100);
  EXPECT_TRUE(r.has_dependency);
  EXPECT_EQ(r.distance, 6);
}

TEST(CidpBody, NoStoresNoDependency) {
  BodySummary body;
  body.loads = {MemStream{1, false, 4, 0x100, 4, false, -1, 0}};
  EXPECT_FALSE(PredictBody(body, 100).has_dependency);
}

TEST(CidpBody, WriteWriteConflictDetected) {
  BodySummary body;
  MemStream s1{/*pc=*/1, true, 4, 0x100, 4, false, -1, 0};
  MemStream s2{/*pc=*/2, true, 4, 0x100 + 4 * 3, 4, false, -1, 0};
  body.stores = {s1, s2};
  EXPECT_TRUE(PredictBody(body, 100).has_dependency);
}

}  // namespace
}  // namespace dsa::engine
