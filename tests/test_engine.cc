// Engine behavior tests: mini-programs exercising each loop class of
// Chapter 4 through the full System harness, asserting the DSA's runtime
// classification, takeover behavior and functional transparency.
#include <gtest/gtest.h>

#include "prog/assembler.h"
#include "sim/system.h"

namespace dsa::engine {
namespace {

using isa::Cond;
using isa::Opcode;
using prog::Assembler;
using sim::RunMode;
using sim::RunResult;

sim::Workload Mini(prog::Program p,
                   std::function<void(mem::Memory&)> init = nullptr,
                   std::function<bool(const mem::Memory&)> check = nullptr) {
  sim::Workload wl;
  wl.name = "mini";
  wl.mem_bytes = 1 << 18;
  wl.scalar = std::move(p);
  wl.init = std::move(init);
  wl.check = std::move(check);
  return wl;
}

RunResult RunDsa(const sim::Workload& wl, DsaConfig cfg = {}) {
  sim::SystemConfig sc;
  sc.dsa = cfg;
  return sim::Run(wl, RunMode::kDsa, sc);
}

// v[i] = a[i] + b[i], the canonical count loop (Fig. 15).
prog::Program CountLoopProgram(int n) {
  Assembler as;
  as.Movi(0, 0x1000);
  as.Movi(1, 0x8000);
  as.Movi(2, 0x10000);
  as.Movi(3, n);
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Ldr(4, 0, 4);
  as.Ldr(5, 1, 4);
  as.Alu(Opcode::kAdd, 6, 4, 5);
  as.Str(6, 2, 4);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, loop);
  as.Halt();
  return as.Finish();
}

TEST(EngineCountLoop, VectorizedAfterThreeAnalysisIterations) {
  const RunResult r = RunDsa(Mini(CountLoopProgram(100)));
  ASSERT_TRUE(r.dsa.has_value());
  EXPECT_EQ(r.dsa->takeovers, 1u);
  EXPECT_EQ(r.dsa->loops_by_class.at(LoopClass::kCount), 1u);
  // Iterations 1-3 analyze; 4..100 execute on NEON.
  EXPECT_EQ(r.dsa->vectorized_iterations, 97u);
  EXPECT_GT(r.dsa->vector_instrs_issued, 0u);
}

TEST(EngineCountLoop, FunctionallyTransparent) {
  auto init = [](mem::Memory& m) {
    for (int i = 0; i < 100; ++i) {
      m.Write32(0x1000 + 4 * i, i);
      m.Write32(0x8000 + 4 * i, 1000 + i);
    }
  };
  auto check = [](const mem::Memory& m) {
    for (int i = 0; i < 100; ++i) {
      if (m.Read32(0x10000 + 4 * i) != static_cast<std::uint32_t>(1000 + 2 * i))
        return false;
    }
    return true;
  };
  const RunResult r = RunDsa(Mini(CountLoopProgram(100), init, check));
  EXPECT_TRUE(r.output_ok);
}

TEST(EngineCountLoop, FasterThanScalar) {
  const sim::Workload wl = Mini(CountLoopProgram(4000));
  const RunResult scalar = sim::Run(wl, RunMode::kScalar, {});
  const RunResult dsa = RunDsa(wl);
  EXPECT_LT(dsa.cycles, scalar.cycles);
}

TEST(EngineCountLoop, TooFewIterationsNeverVectorized) {
  const RunResult r = RunDsa(Mini(CountLoopProgram(3)));
  EXPECT_EQ(r.dsa->takeovers, 0u);
}

TEST(EngineCountLoop, FourIterationsIsTheMinimum) {
  const RunResult r = RunDsa(Mini(CountLoopProgram(4)));
  EXPECT_EQ(r.dsa->takeovers, 1u);
  EXPECT_EQ(r.dsa->vectorized_iterations, 1u);
}

TEST(EngineCache, SecondEntryHitsAndCoversMore) {
  // The same loop executed twice (outer wrapper with 2 iterations around
  // a fresh pointer setup).
  Assembler as;
  as.Movi(10, 2);  // outer count
  const auto outer = as.NewLabel();
  as.Bind(outer);
  as.Movi(0, 0x1000);
  as.Movi(1, 0x8000);
  as.Movi(2, 0x10000);
  as.Movi(3, 64);
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Ldr(4, 0, 4);
  as.Str(4, 2, 4);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, loop);
  as.AluImm(Opcode::kSubi, 10, 10, 1);
  as.Cmpi(10, 0);
  as.B(Cond::kGt, outer);
  as.Halt();
  const RunResult r = RunDsa(Mini(as.Finish()));
  ASSERT_TRUE(r.dsa.has_value());
  // Entry 1: full analysis, 61 covered. Entry 2: cache hit at the first
  // latch, 63 covered.
  EXPECT_EQ(r.dsa->takeovers, 2u);
  EXPECT_EQ(r.dsa->cache_hit_takeovers, 1u);
  EXPECT_EQ(r.dsa->vectorized_iterations, 61u + 63u);
}

// Carry-around scalar (Table 1 line 5): sum += a[i].
TEST(EngineReject, CarryAroundScalar) {
  // Prefix sum: out[i] = out[i-1] + a[i] through a carried register.
  Assembler as;
  as.Movi(0, 0x1000);
  as.Movi(1, 0x10000);
  as.Movi(3, 50);
  as.Movi(6, 0);
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Ldr(4, 0, 4);
  as.Alu(Opcode::kAdd, 6, 6, 4);  // accumulator carried across iterations
  as.Str(6, 1, 4);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, loop);
  as.Halt();
  const RunResult r = RunDsa(Mini(as.Finish()));
  EXPECT_EQ(r.dsa->takeovers, 0u);
  EXPECT_EQ(r.dsa->rejects_by_reason.count(RejectReason::kCarryAroundScalar),
            1u);
}

// Non-unit stride (Table 1 line 7): a[2*i].
TEST(EngineReject, NonUnitStride) {
  Assembler as;
  as.Movi(0, 0x1000);
  as.Movi(2, 0x10000);
  as.Movi(3, 50);
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Ldr(4, 0, 8);  // stride 8 on word loads
  as.Str(4, 2, 4);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, loop);
  as.Halt();
  const RunResult r = RunDsa(Mini(as.Finish()));
  EXPECT_EQ(r.dsa->takeovers, 0u);
  EXPECT_EQ(r.dsa->rejects_by_reason.count(RejectReason::kNonUnitStride), 1u);
}

// Mixed element sizes (Table 1 line 9).
TEST(EngineReject, MixedElementSizes) {
  Assembler as;
  as.Movi(0, 0x1000);
  as.Movi(1, 0x8000);
  as.Movi(2, 0x10000);
  as.Movi(3, 50);
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Ldr(4, 0, 4);
  as.Ldrh(5, 1, 2);
  as.Alu(Opcode::kAdd, 6, 4, 5);
  as.Str(6, 2, 4);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, loop);
  as.Halt();
  const RunResult r = RunDsa(Mini(as.Finish()));
  EXPECT_EQ(r.dsa->takeovers, 0u);
  EXPECT_EQ(r.dsa->rejects_by_reason.count(RejectReason::kMixedElementSizes),
            1u);
}

// Unsupported operation: integer division has no NEON equivalent.
TEST(EngineReject, UnsupportedDivision) {
  Assembler as;
  as.Movi(0, 0x1000);
  as.Movi(2, 0x10000);
  as.Movi(3, 50);
  as.Movi(7, 3);
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Ldr(4, 0, 4);
  as.Alu(Opcode::kSdiv, 6, 4, 7);
  as.Str(6, 2, 4);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, loop);
  as.Halt();
  const RunResult r = RunDsa(Mini(as.Finish()));
  EXPECT_EQ(r.dsa->takeovers, 0u);
  EXPECT_EQ(r.dsa->rejects_by_reason.count(RejectReason::kUnsupportedOp), 1u);
}

// True cross-iteration dependency at distance 1: a[i+1] = a[i] + 1.
TEST(EngineReject, AdjacentDependencyNotVectorized) {
  Assembler as;
  as.Movi(0, 0x1000);
  as.Movi(2, 0x1004);
  as.Movi(3, 50);
  as.Movi(7, 1);
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Ldr(4, 0, 4);
  as.Alu(Opcode::kAdd, 6, 4, 7);
  as.Str(6, 2, 4);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, loop);
  as.Halt();
  auto check = [](const mem::Memory& m) {
    // Sequential semantics: a[i] = i (a[0]=0 seeds the chain).
    for (int i = 1; i <= 50; ++i) {
      if (m.Read32(0x1000 + 4 * i) != static_cast<std::uint32_t>(i)) {
        return false;
      }
    }
    return true;
  };
  const RunResult r = RunDsa(Mini(as.Finish(), nullptr, check));
  EXPECT_EQ(r.dsa->takeovers, 0u);
  EXPECT_TRUE(r.output_ok);
  EXPECT_EQ(r.dsa->rejects_by_reason.count(RejectReason::kCrossIterationDep),
            1u);
}

// Partial vectorization (Fig. 14): dependency distance 8.
TEST(EnginePartial, WindowedVectorization) {
  Assembler as;
  as.Movi(0, 0x1000);
  as.Movi(2, 0x1000 + 8 * 4);
  as.Movi(3, 200);
  as.Movi(7, 1);
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Ldr(4, 0, 4);
  as.Alu(Opcode::kAdd, 6, 4, 7);
  as.Str(6, 2, 4);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, loop);
  as.Halt();
  const RunResult r = RunDsa(Mini(as.Finish()));
  ASSERT_TRUE(r.dsa.has_value());
  EXPECT_EQ(r.dsa->loops_by_class.count(LoopClass::kPartial), 1u);
  EXPECT_EQ(r.dsa->takeovers, 1u);
}

TEST(EnginePartial, DisabledFallsBackToScalar) {
  Assembler as;
  as.Movi(0, 0x1000);
  as.Movi(2, 0x1000 + 8 * 4);
  as.Movi(3, 200);
  as.Movi(7, 1);
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Ldr(4, 0, 4);
  as.Alu(Opcode::kAdd, 6, 4, 7);
  as.Str(6, 2, 4);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, loop);
  as.Halt();
  DsaConfig cfg;
  cfg.enable_partial_vectorization = false;
  const RunResult r = RunDsa(Mini(as.Finish()), cfg);
  EXPECT_EQ(r.dsa->takeovers, 0u);
}

// Conditional loop (Fig. 19): if/else storing different values.
prog::Program ConditionalProgram(int n) {
  Assembler as;
  as.Movi(0, 0x1000);
  as.Movi(1, 0x10000);
  as.Movi(10, 100);
  as.Movi(11, 255);
  as.Movi(12, 7);
  as.Movi(3, n);
  const auto loop = as.NewLabel();
  const auto els = as.NewLabel();
  const auto nxt = as.NewLabel();
  as.Bind(loop);
  as.Ldr(4, 0, 4);
  as.Cmp(4, 10);
  as.B(Cond::kLe, els);
  as.Str(11, 1, 4);
  as.B(Cond::kAl, nxt);
  as.Bind(els);
  as.Str(12, 1, 4);
  as.Bind(nxt);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, loop);
  as.Halt();
  return as.Finish();
}

void InitAlternating(mem::Memory& m) {
  for (int i = 0; i < 512; ++i) {
    m.Write32(0x1000 + 4 * i, (i % 3 == 0) ? 200 : 50);
  }
}

TEST(EngineConditional, MappedVerifiedAndVectorized) {
  auto check = [](const mem::Memory& m) {
    for (int i = 0; i < 512; ++i) {
      const std::uint32_t want = (i % 3 == 0) ? 255 : 7;
      if (m.Read32(0x10000 + 4 * i) != want) return false;
    }
    return true;
  };
  const RunResult r = RunDsa(Mini(ConditionalProgram(512), InitAlternating,
                                  check));
  ASSERT_TRUE(r.dsa.has_value());
  EXPECT_TRUE(r.output_ok);
  EXPECT_EQ(r.dsa->loops_by_class.at(LoopClass::kConditional), 1u);
  EXPECT_EQ(r.dsa->takeovers, 1u);
  EXPECT_GT(r.dsa->array_map_accesses, 0u);
  EXPECT_GT(r.dsa->stage_activations[static_cast<int>(Stage::kMapping)], 0u);
}

TEST(EngineConditional, FeatureFlagDisablesIt) {
  DsaConfig cfg = DsaConfig::Original();
  const RunResult r =
      RunDsa(Mini(ConditionalProgram(512), InitAlternating), cfg);
  EXPECT_EQ(r.dsa->takeovers, 0u);
  EXPECT_EQ(r.dsa->rejects_by_reason.count(RejectReason::kFeatureDisabled),
            1u);
}

TEST(EngineConditional, SinglePathLoopNeverCompletesMapping) {
  // Condition never fires: the else region's pcs stay pending, so the DSA
  // must not vectorize (no takeover) but execution stays correct.
  auto init = [](mem::Memory& m) {
    for (int i = 0; i < 512; ++i) m.Write32(0x1000 + 4 * i, 200);
  };
  const RunResult r = RunDsa(Mini(ConditionalProgram(512), init));
  EXPECT_EQ(r.dsa->takeovers, 0u);
}

// Sentinel loop: copy until zero byte.
prog::Program SentinelProgram() {
  Assembler as;
  as.Movi(0, 0x1000);
  as.Movi(1, 0x10000);
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Ldrb(4, 0, 1);
  as.Strb(4, 1, 1);
  as.Cmpi(4, 0);
  as.B(Cond::kNe, loop);
  as.Halt();
  return as.Finish();
}

TEST(EngineSentinel, SpeculativeRangeVectorization) {
  auto init = [](mem::Memory& m) {
    for (int i = 0; i < 300; ++i) m.Write8(0x1000 + i, 0x41);
    m.Write8(0x1000 + 300, 0);
  };
  auto check = [](const mem::Memory& m) {
    for (int i = 0; i < 300; ++i) {
      if (m.Read8(0x10000 + i) != 0x41) return false;
    }
    return m.Read8(0x10000 + 300) == 0;
  };
  const RunResult r = RunDsa(Mini(SentinelProgram(), init, check));
  ASSERT_TRUE(r.dsa.has_value());
  EXPECT_TRUE(r.output_ok);
  EXPECT_EQ(r.dsa->loops_by_class.at(LoopClass::kSentinel), 1u);
  EXPECT_GE(r.dsa->takeovers, 1u);
  EXPECT_GT(r.dsa->stage_activations[static_cast<int>(
                Stage::kSpeculativeExecution)],
            0u);
}

TEST(EngineSentinel, DisabledByOriginalConfig) {
  auto init = [](mem::Memory& m) {
    for (int i = 0; i < 300; ++i) m.Write8(0x1000 + i, 0x41);
  };
  const RunResult r =
      RunDsa(Mini(SentinelProgram(), init), DsaConfig::Original());
  EXPECT_EQ(r.dsa->takeovers, 0u);
}

// Dynamic Range Loop type A: limit register loaded at runtime.
prog::Program DrlProgram() {
  Assembler as;
  as.Movi(0, 0x1000);
  as.Movi(2, 0x10000);
  as.Movi(3, 0xF00);
  as.Ldr(3, 3);  // runtime limit
  as.Movi(6, 0);
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Ldr(4, 0, 4);
  as.Str(4, 2, 4);
  as.AluImm(Opcode::kAddi, 6, 6, 1);
  as.Cmp(6, 3);
  as.B(Cond::kLt, loop);
  as.Halt();
  return as.Finish();
}

TEST(EngineDrl, VectorizedByExtendedDsa) {
  auto init = [](mem::Memory& m) { m.Write32(0xF00, 120); };
  const RunResult r = RunDsa(Mini(DrlProgram(), init));
  ASSERT_TRUE(r.dsa.has_value());
  EXPECT_EQ(r.dsa->loops_by_class.at(LoopClass::kDynamicRange), 1u);
  EXPECT_EQ(r.dsa->takeovers, 1u);
  EXPECT_EQ(r.dsa->vectorized_iterations, 117u);
}

TEST(EngineDrl, RejectedByOriginalDsa) {
  auto init = [](mem::Memory& m) { m.Write32(0xF00, 120); };
  const RunResult r = RunDsa(Mini(DrlProgram(), init), DsaConfig::Original());
  EXPECT_EQ(r.dsa->takeovers, 0u);
  EXPECT_EQ(r.dsa->rejects_by_reason.count(RejectReason::kFeatureDisabled),
            1u);
}

// Nested loops: the inner loop vectorizes; the outer is fused (Fig. 17).
TEST(EngineNest, InnerVectorizedOuterFused) {
  Assembler as;
  as.Movi(10, 8);  // outer
  const auto outer = as.NewLabel();
  as.Bind(outer);
  as.Movi(0, 0x1000);
  as.Movi(2, 0x10000);
  as.Movi(3, 64);
  const auto inner = as.NewLabel();
  as.Bind(inner);
  as.Ldr(4, 0, 4);
  as.Str(4, 2, 4);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, inner);
  as.AluImm(Opcode::kSubi, 10, 10, 1);
  as.Cmpi(10, 0);
  as.B(Cond::kGt, outer);
  as.Halt();
  const RunResult r = RunDsa(Mini(as.Finish()));
  ASSERT_TRUE(r.dsa.has_value());
  EXPECT_EQ(r.dsa->loops_by_class.at(LoopClass::kCount), 1u);
  EXPECT_EQ(r.dsa->loops_by_class.at(LoopClass::kOuter), 1u);
  // After fusion, far fewer takeovers than outer iterations.
  EXPECT_LT(r.dsa->takeovers, 8u);
  // All inner iterations after warmup are covered.
  EXPECT_GT(r.dsa->vectorized_iterations, 6u * 64u);
}

TEST(EngineNest, OuterWithStoresInGlueNotFused) {
  Assembler as;
  as.Movi(10, 8);
  as.Movi(11, 0x20000);
  const auto outer = as.NewLabel();
  as.Bind(outer);
  as.Movi(0, 0x1000);
  as.Movi(2, 0x10000);
  as.Movi(3, 64);
  const auto inner = as.NewLabel();
  as.Bind(inner);
  as.Ldr(4, 0, 4);
  as.Str(4, 2, 4);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, inner);
  as.Str(10, 11, 4);  // store in the glue: fusion forbidden
  as.AluImm(Opcode::kSubi, 10, 10, 1);
  as.Cmpi(10, 0);
  as.B(Cond::kGt, outer);
  as.Halt();
  const RunResult r = RunDsa(Mini(as.Finish()));
  ASSERT_TRUE(r.dsa.has_value());
  // One takeover per outer entry (cache-hit path), not one fused takeover.
  EXPECT_EQ(r.dsa->takeovers, 8u);
  EXPECT_TRUE(r.output_ok);
}

// Function loop (Fig. 16): call inside the body.
TEST(EngineFunction, LoopWithCallVectorized) {
  Assembler as;
  as.Movi(0, 0x1000);
  as.Movi(2, 0x10000);
  as.Movi(3, 100);
  const auto loop = as.NewLabel();
  const auto fn = as.NewLabel();
  as.Bind(loop);
  as.Ldr(4, 0, 4);
  as.Bl(fn);
  as.Str(6, 2, 4);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, loop);
  as.Halt();
  as.Bind(fn);
  as.AluImm(Opcode::kAddi, 6, 4, 5);  // r6 = r4 + 5
  as.Ret();
  const RunResult r = RunDsa(Mini(as.Finish()));
  ASSERT_TRUE(r.dsa.has_value());
  EXPECT_EQ(r.dsa->loops_by_class.count(LoopClass::kFunction), 1u);
  EXPECT_EQ(r.dsa->takeovers, 1u);
}

TEST(EngineSafety, DsaNeverChangesResults) {
  // Same program with and without the DSA must leave identical memory.
  const sim::Workload wl = Mini(ConditionalProgram(512), InitAlternating);
  sim::SystemConfig sc;
  // Re-run both modes and compare through a capturing check.
  std::vector<std::uint32_t> scalar_out(512);
  std::vector<std::uint32_t> dsa_out(512);
  auto capture = [](std::vector<std::uint32_t>* out) {
    return [out](const mem::Memory& m) {
      for (int i = 0; i < 512; ++i) (*out)[i] = m.Read32(0x10000 + 4 * i);
      return true;
    };
  };
  sim::Workload a = wl;
  a.check = capture(&scalar_out);
  (void)sim::Run(a, RunMode::kScalar, sc);
  sim::Workload b = wl;
  b.check = capture(&dsa_out);
  (void)sim::Run(b, RunMode::kDsa, sc);
  EXPECT_EQ(scalar_out, dsa_out);
}

TEST(EngineLatency, AnalysisRunsInParallelWithCore) {
  // A loop-free program: the DSA observes but never activates; cycle count
  // must match the plain scalar run exactly (no monitor-task penalty).
  Assembler as;
  for (int i = 0; i < 200; ++i) as.AluImm(Opcode::kAddi, 1, 1, 1);
  as.Halt();
  const sim::Workload wl = Mini(as.Finish());
  const RunResult scalar = sim::Run(wl, RunMode::kScalar, {});
  const RunResult dsa = RunDsa(wl);
  EXPECT_EQ(scalar.cycles, dsa.cycles);
}

}  // namespace
}  // namespace dsa::engine
