#include <gtest/gtest.h>

#include "engine/dsa_cache.h"

namespace dsa::engine {
namespace {

LoopRecord Rec(std::uint32_t id) {
  LoopRecord r;
  r.loop_id = id;
  r.cls = LoopClass::kCount;
  return r;
}

TEST(DsaCache, MissThenHit) {
  DsaCache c(4);
  EXPECT_EQ(c.Lookup(10), nullptr);
  c.Insert(Rec(10));
  const LoopRecord* r = c.Lookup(10);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->loop_id, 10u);
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(DsaCache, InsertReplacesExisting) {
  DsaCache c(4);
  c.Insert(Rec(10));
  LoopRecord r2 = Rec(10);
  r2.cls = LoopClass::kSentinel;
  c.Insert(r2);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.Lookup(10)->cls, LoopClass::kSentinel);
}

TEST(DsaCache, LruEviction) {
  DsaCache c(2);
  c.Insert(Rec(1));
  c.Insert(Rec(2));
  (void)c.Lookup(1);  // 2 becomes LRU
  c.Insert(Rec(3));  // evicts 2
  EXPECT_NE(c.Lookup(1), nullptr);
  EXPECT_EQ(c.Lookup(2), nullptr);
  EXPECT_NE(c.Lookup(3), nullptr);
  EXPECT_EQ(c.evictions(), 1u);
}

TEST(DsaCache, CapacityFromConfig) {
  DsaConfig cfg;
  EXPECT_EQ(cfg.dsa_cache_entries(), 8u * 1024 / 32);
  EXPECT_EQ(cfg.verification_cache_entries(), 256u);
}

TEST(DsaCache, MutableLookupAllowsInPlaceUpdate) {
  DsaCache c(4);
  c.Insert(Rec(5));
  LoopRecord* r = c.LookupMutable(5);
  ASSERT_NE(r, nullptr);
  r->speculative_range = 64;
  EXPECT_EQ(c.Lookup(5)->speculative_range, 64u);
}

TEST(VerificationCache, StoresUntilFull) {
  VerificationCache vc(3);
  EXPECT_TRUE(vc.Store(0x100));
  EXPECT_TRUE(vc.Store(0x104));
  EXPECT_TRUE(vc.Store(0x108));
  EXPECT_FALSE(vc.Store(0x10C));
  EXPECT_TRUE(vc.overflowed());
  EXPECT_EQ(vc.size(), 3u);
}

TEST(VerificationCache, ContainsFindsStoredAddresses) {
  VerificationCache vc(8);
  vc.Store(0x100);
  vc.Store(0x200);
  EXPECT_TRUE(vc.Contains(0x100));
  EXPECT_TRUE(vc.Contains(0x200));
  EXPECT_FALSE(vc.Contains(0x300));
}

TEST(VerificationCache, ClearResetsOverflow) {
  VerificationCache vc(1);
  vc.Store(1);
  vc.Store(2);
  EXPECT_TRUE(vc.overflowed());
  vc.Clear();
  EXPECT_FALSE(vc.overflowed());
  EXPECT_EQ(vc.size(), 0u);
  EXPECT_TRUE(vc.Store(3));
}

}  // namespace
}  // namespace dsa::engine
