#include <gtest/gtest.h>

#include "energy/energy_model.h"
#include "engine/config.h"

namespace dsa::energy {
namespace {

cpu::CpuStats SomeCpuStats() {
  cpu::CpuStats s;
  s.retired_scalar = 1000;
  s.retired_vector = 50;
  s.retired_total = 1050;
  s.mem_reads = 300;
  s.mem_writes = 100;
  s.branches = 120;
  s.mispredicts = 10;
  return s;
}

TEST(Energy, BreakdownSumsToTotal) {
  EnergyBreakdown e;
  e.core_dynamic = 1;
  e.core_static = 2;
  e.neon_dynamic = 3;
  e.neon_static = 4;
  e.cache_dram = 5;
  e.dsa_dynamic = 6;
  e.dsa_static = 7;
  EXPECT_DOUBLE_EQ(e.total(), 28.0);
}

TEST(Energy, ScalesWithInstructionCount) {
  EnergyParams p;
  mem::Hierarchy h{mem::Hierarchy::Config{}};
  cpu::CpuStats a = SomeCpuStats();
  cpu::CpuStats b = a;
  b.retired_scalar *= 2;
  const EnergyBreakdown ea = ComputeEnergy(p, a, h, 1000, nullptr, false);
  const EnergyBreakdown eb = ComputeEnergy(p, b, h, 1000, nullptr, false);
  EXPECT_GT(eb.core_dynamic, ea.core_dynamic);
  EXPECT_DOUBLE_EQ(eb.core_static, ea.core_static);
}

TEST(Energy, StaticScalesWithCycles) {
  EnergyParams p;
  mem::Hierarchy h{mem::Hierarchy::Config{}};
  const cpu::CpuStats s = SomeCpuStats();
  const EnergyBreakdown e1 = ComputeEnergy(p, s, h, 1000, nullptr, true);
  const EnergyBreakdown e2 = ComputeEnergy(p, s, h, 2000, nullptr, true);
  EXPECT_DOUBLE_EQ(e2.core_static, 2 * e1.core_static);
  EXPECT_DOUBLE_EQ(e2.neon_static, 2 * e1.neon_static);
}

TEST(Energy, NeonLeakageOnlyWhenPresent) {
  EnergyParams p;
  mem::Hierarchy h{mem::Hierarchy::Config{}};
  const cpu::CpuStats s = SomeCpuStats();
  EXPECT_EQ(ComputeEnergy(p, s, h, 1000, nullptr, false).neon_static, 0.0);
  EXPECT_GT(ComputeEnergy(p, s, h, 1000, nullptr, true).neon_static, 0.0);
}

TEST(Energy, DsaEventsCharged) {
  EnergyParams p;
  mem::Hierarchy h{mem::Hierarchy::Config{}};
  const cpu::CpuStats s = SomeCpuStats();
  engine::DsaStats d;
  d.analysis_cycles = 500;
  d.dsa_cache_accesses = 20;
  d.vc_accesses = 40;
  d.array_map_accesses = 10;
  const EnergyBreakdown with = ComputeEnergy(p, s, h, 1000, &d, true);
  const EnergyBreakdown without = ComputeEnergy(p, s, h, 1000, nullptr, true);
  EXPECT_GT(with.dsa_dynamic, 0.0);
  EXPECT_GT(with.dsa_static, 0.0);
  EXPECT_EQ(without.dsa_dynamic, 0.0);
}

TEST(Energy, VectorInstrCheaperThanLanesScalars) {
  // The energy argument of the paper: one 128-bit op replaces `lanes`
  // scalar ops and must cost less than them together.
  EnergyParams p;
  EXPECT_LT(p.vector_instr, 4 * p.scalar_instr);
  EXPECT_GT(p.vector_instr, p.scalar_instr);
}

TEST(Area, MatchesPaperTable3) {
  // Article 1 Table 3: DSA logic 2.18% of the core; 10.37% with caches.
  AreaParams p;
  engine::DsaConfig cfg;
  const AreaReport r = ComputeArea(p, cfg.dsa_cache_bytes,
                                   cfg.verification_cache_bytes,
                                   cfg.array_maps);
  EXPECT_NEAR(r.logic_overhead_pct, 2.18, 0.05);
  EXPECT_NEAR(r.total_overhead_pct, 10.37, 0.5);
}

TEST(Area, BiggerDsaCacheRaisesOverhead) {
  AreaParams p;
  const AreaReport small = ComputeArea(p, 8 * 1024, 1024, 4);
  const AreaReport big = ComputeArea(p, 32 * 1024, 1024, 4);
  EXPECT_GT(big.total_overhead_pct, small.total_overhead_pct);
  EXPECT_DOUBLE_EQ(big.logic_overhead_pct, small.logic_overhead_pct);
}

}  // namespace
}  // namespace dsa::energy
