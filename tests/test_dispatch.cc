// Switch vs threaded dispatch twins: SystemConfig::dispatch selects the
// batched-loop interpreter core — the PR-3 decode-switch or the predecoded
// threaded-code engine (docs/DISPATCH.md). Every simulated stat must be
// bit-identical across the twins; only host wall time may differ. This
// suite is the fine-grained companion to the bench oracle's differential
// gate: full workload x mode matrix, streaming and generated programs,
// faulted and traced runs, plus direct-Cpu superinstruction tests (fused
// pair semantics == the unfused sequence, including budget exhaustion at
// a pair midpoint and branches into a pair's second member).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/cpu.h"
#include "engine/config.h"
#include "fault/fault.h"
#include "prog/assembler.h"
#include "sim/report.h"
#include "sim/system.h"
#include "workloads/gen/generator.h"
#include "workloads/streaming/streaming.h"
#include "workloads/workloads.h"

namespace dsa::sim {
namespace {

using cpu::DispatchMode;
using isa::Cond;
using isa::Opcode;
using prog::Assembler;
using workloads::MakeBitCount;
using workloads::MakeDijkstra;
using workloads::MakeGaussian;
using workloads::MakeMatMul;
using workloads::MakeQSort;
using workloads::MakeRgbGray;
using workloads::MakeShiftAdd;
using workloads::MakeStrCopy;
using workloads::MakeSusanE;
using workloads::MakeVecAdd;

// ---- system-level identity -----------------------------------------------

void ExpectTwinsIdentical(const Workload& wl, RunMode mode,
                          const SystemConfig& base_cfg = {}) {
  SystemConfig sw_cfg = base_cfg;
  sw_cfg.dispatch = DispatchMode::kSwitch;
  SystemConfig th_cfg = base_cfg;
  th_cfg.dispatch = DispatchMode::kThreaded;

  const RunResult sw = Run(wl, mode, sw_cfg);
  const RunResult th = Run(wl, mode, th_cfg);

  const std::string tag = wl.name + " in " + std::string(ToString(mode));
  EXPECT_EQ(sw.output_ok, th.output_ok) << tag;
  EXPECT_EQ(sw.cycles, th.cycles) << tag;
  EXPECT_EQ(sw.output_digest, th.output_digest) << tag;
  // Same instruction stream => same interpreter step count, even though
  // host_steps is host metadata outside the oracle's comparison set.
  EXPECT_EQ(sw.host_steps, th.host_steps) << tag;
  // FormatReport covers every simulated stat the report surfaces (CPU
  // counters, cache hits/misses, DRAM, DSA, energy) in one comparison.
  EXPECT_EQ(FormatReport(sw), FormatReport(th)) << tag;
}

std::vector<Workload> SmallMatrix() {
  // Same small sizes as test_reference_path.cc: cheap doubled runs that
  // still exercise vector leftovers, takeovers and cooldowns.
  std::vector<Workload> wls;
  wls.push_back(MakeVecAdd(257));
  wls.push_back(MakeMatMul(16));
  wls.push_back(MakeRgbGray(1000));
  wls.push_back(MakeGaussian(32, 24));
  wls.push_back(MakeSusanE(2048));
  wls.push_back(MakeQSort(512));
  wls.push_back(MakeDijkstra(24));
  wls.push_back(MakeBitCount(1024));
  wls.push_back(MakeStrCopy(500));
  wls.push_back(MakeShiftAdd(512, 4));
  return wls;
}

TEST(Dispatch, AllWorkloadsAllModesBitIdentical) {
  for (const Workload& wl : SmallMatrix()) {
    for (const RunMode m : {RunMode::kScalar, RunMode::kAutoVec,
                            RunMode::kHandVec, RunMode::kDsa}) {
      ExpectTwinsIdentical(wl, m);
    }
  }
}

TEST(Dispatch, StreamingWorkloadsBitIdentical) {
  for (const Workload& wl : workloads::StreamingSet()) {
    ExpectTwinsIdentical(wl, RunMode::kScalar);
    ExpectTwinsIdentical(wl, RunMode::kDsa);
  }
}

TEST(Dispatch, DsaOriginalConfigBitIdentical) {
  SystemConfig cfg;
  cfg.dsa = engine::DsaConfig::Original();
  for (const Workload& wl :
       {MakeVecAdd(257), MakeMatMul(16), MakeRgbGray(1000)}) {
    ExpectTwinsIdentical(wl, RunMode::kDsa, cfg);
  }
}

TEST(Dispatch, FaultedRunsBitIdentical) {
  // The guard's rollback/blacklist recovery must take the same decisions
  // on both cores: injected divergences are detected at the same retire
  // boundaries either way.
  SystemConfig cfg;
  cfg.faults = fault::ParseFaultPlan("cidp@0+2,mem@1,lane@0;seed=7");
  for (const Workload& wl : {MakeVecAdd(257), MakeMatMul(16)}) {
    ExpectTwinsIdentical(wl, RunMode::kDsa, cfg);
  }
}

TEST(Dispatch, GeneratorSweep64SeedsBitIdentical) {
  // 64-seed sweep over the loop-nest generator's grammar classes, DSA
  // mode: the randomized companion to the hand-written matrix above.
  for (const Workload& wl : workloads::gen::GeneratedSet(9000, 64)) {
    ExpectTwinsIdentical(wl, RunMode::kDsa);
  }
}

TEST(Dispatch, TraceEventStreamsIdentical) {
  // Traced runs execute the per-step switch core regardless of the
  // configured mode (docs/DISPATCH.md carve-outs), so the event streams
  // must match field for field — and both results must report the core
  // that actually ran.
  SystemConfig sw_cfg;
  sw_cfg.trace.enabled = true;
  sw_cfg.dispatch = DispatchMode::kSwitch;
  SystemConfig th_cfg = sw_cfg;
  th_cfg.dispatch = DispatchMode::kThreaded;

  const RunResult sw = sim::Run(MakeVecAdd(257), RunMode::kDsa, sw_cfg);
  const RunResult th = sim::Run(MakeVecAdd(257), RunMode::kDsa, th_cfg);
  EXPECT_EQ(sw.host_dispatch, DispatchMode::kSwitch);
  EXPECT_EQ(th.host_dispatch, DispatchMode::kSwitch);

  ASSERT_NE(sw.trace, nullptr);
  ASSERT_NE(th.trace, nullptr);
  EXPECT_EQ(sw.trace->emitted, th.trace->emitted);
  EXPECT_EQ(sw.trace->dropped, th.trace->dropped);
  EXPECT_EQ(sw.trace->kind_counts, th.trace->kind_counts);
  EXPECT_EQ(sw.trace->stage_counts, th.trace->stage_counts);
  ASSERT_EQ(sw.trace->events.size(), th.trace->events.size());
  for (std::size_t i = 0; i < sw.trace->events.size(); ++i) {
    const trace::Event& a = sw.trace->events[i];
    const trace::Event& b = th.trace->events[i];
    EXPECT_EQ(a.ts, b.ts) << "event " << i;
    EXPECT_EQ(a.dur, b.dur) << "event " << i;
    EXPECT_EQ(a.loop_id, b.loop_id) << "event " << i;
    EXPECT_EQ(a.kind, b.kind) << "event " << i;
    EXPECT_EQ(a.arg0, b.arg0) << "event " << i;
    EXPECT_EQ(a.arg1, b.arg1) << "event " << i;
  }
}

TEST(Dispatch, HostDispatchReportsWhatRan) {
  const Workload wl = MakeVecAdd(257);

  SystemConfig th_cfg;
  th_cfg.dispatch = DispatchMode::kThreaded;
  EXPECT_EQ(sim::Run(wl, RunMode::kDsa, th_cfg).host_dispatch,
            DispatchMode::kThreaded);

  SystemConfig sw_cfg;
  sw_cfg.dispatch = DispatchMode::kSwitch;
  EXPECT_EQ(sim::Run(wl, RunMode::kDsa, sw_cfg).host_dispatch,
            DispatchMode::kSwitch);

  // Reference runs always execute the per-step switch core, whatever the
  // configured dispatch mode says.
  SystemConfig ref_cfg = th_cfg;
  ref_cfg.reference_path = true;
  EXPECT_EQ(sim::Run(wl, RunMode::kDsa, ref_cfg).host_dispatch,
            DispatchMode::kSwitch);
}

// ---- superinstruction fusion, direct Cpu ---------------------------------

// Two CPUs over the same program with separate (identically seeded)
// memories: one per dispatch twin. Comparisons cover architectural state,
// every CpuStats counter, the cycle model, and memory contents.
struct TwinRig {
  explicit TwinRig(prog::Program p, std::size_t mem = 1 << 16)
      : program(std::move(p)),
        mem_sw(mem),
        mem_th(mem),
        hier_sw(mem::Hierarchy::Config{}),
        hier_th(mem::Hierarchy::Config{}),
        sw(program, mem_sw, hier_sw, {}, false, DispatchMode::kSwitch),
        th(program, mem_th, hier_th, {}, false, DispatchMode::kThreaded) {}

  void Seed32(std::uint32_t addr, std::uint32_t v) {
    mem_sw.Write32(addr, v);
    mem_th.Write32(addr, v);
  }

  // Runs both twins through the free-running batch loop with the same
  // budget and asserts bit-identical outcomes.
  void RunFreeBoth(std::uint64_t max_steps, const std::string& tag) {
    std::uint64_t steps_sw = 0;
    std::uint64_t steps_th = 0;
    sw.RunFree(max_steps, steps_sw);
    th.RunFree(max_steps, steps_th);
    EXPECT_EQ(steps_sw, steps_th) << tag;
    ExpectEqual(tag);
  }

  void ExpectEqual(const std::string& tag) {
    EXPECT_EQ(sw.state().halted, th.state().halted) << tag;
    EXPECT_EQ(sw.state().pc, th.state().pc) << tag;
    EXPECT_EQ(sw.state().cmp_diff, th.state().cmp_diff) << tag;
    for (int r = 0; r < isa::kNumScalarRegs; ++r) {
      EXPECT_EQ(sw.state().regs[r], th.state().regs[r])
          << tag << ": r" << r;
    }
    const cpu::CpuStats& a = sw.stats();
    const cpu::CpuStats& b = th.stats();
    EXPECT_EQ(a.retired_total, b.retired_total) << tag;
    EXPECT_EQ(a.retired_scalar, b.retired_scalar) << tag;
    EXPECT_EQ(a.retired_vector, b.retired_vector) << tag;
    EXPECT_EQ(a.mem_reads, b.mem_reads) << tag;
    EXPECT_EQ(a.mem_writes, b.mem_writes) << tag;
    EXPECT_EQ(a.branches, b.branches) << tag;
    EXPECT_EQ(a.mispredicts, b.mispredicts) << tag;
    EXPECT_EQ(a.issue_slots, b.issue_slots) << tag;
    EXPECT_EQ(a.mem_stall_cycles, b.mem_stall_cycles) << tag;
    EXPECT_EQ(a.other_stall_cycles, b.other_stall_cycles) << tag;
    EXPECT_EQ(a.neon_busy_cycles, b.neon_busy_cycles) << tag;
    EXPECT_EQ(a.dsa_overhead_cycles, b.dsa_overhead_cycles) << tag;
    EXPECT_EQ(sw.Cycles(), th.Cycles()) << tag;
    ASSERT_EQ(mem_sw.size(), mem_th.size());
    for (std::uint32_t addr = 0; addr < mem_sw.size(); ++addr) {
      if (mem_sw.Read8(addr) != mem_th.Read8(addr)) {
        ADD_FAILURE() << tag << ": memory differs at " << addr;
        break;
      }
    }
  }

  prog::Program program;
  mem::Memory mem_sw;
  mem::Memory mem_th;
  mem::Hierarchy hier_sw;
  mem::Hierarchy hier_th;
  cpu::Cpu sw;
  cpu::Cpu th;
};

// Straight-line program hitting the five ALU body-pair rules
// (lsr+and, and+add, eor+and, lsl+add, add+subi).
prog::Program AluPairProgram() {
  Assembler as;
  as.Movi(1, 0x1234);
  as.Movi(2, 3);
  as.Alu(Opcode::kLsr, 3, 1, 2);
  as.Alu(Opcode::kAnd, 3, 3, 1);
  as.Alu(Opcode::kAnd, 4, 1, 2);
  as.Alu(Opcode::kAdd, 4, 4, 1);
  as.Alu(Opcode::kEor, 5, 1, 2);
  as.Alu(Opcode::kAnd, 5, 5, 1);
  as.Alu(Opcode::kLsl, 6, 1, 2);
  as.Alu(Opcode::kAdd, 6, 6, 2);
  as.Alu(Opcode::kAdd, 7, 1, 2);
  as.AluImm(Opcode::kSubi, 7, 7, 5);
  as.Halt();
  return as.Finish();
}

TEST(DispatchFusion, AluPairsFuseAndMatchUnfusedSemantics) {
  TwinRig rig(AluPairProgram());
  EXPECT_EQ(rig.sw.fused_pairs(), 0u);
  EXPECT_EQ(rig.th.fused_pairs(), 5u);
  rig.RunFreeBoth(10000, "alu pairs");
  EXPECT_TRUE(rig.th.state().halted);
}

TEST(DispatchFusion, MemoryPairsFuseAndMatchUnfusedSemantics) {
  // ldr+ldr, ldrb+ldrb, ldrb+strb, ldrb+add, mla+str, fadd+str,
  // fmul+fadd, add+str.
  Assembler as;
  as.Movi(1, 0x100);  // src
  as.Movi(2, 0x200);  // dst
  as.Ldr(3, 1, 4);
  as.Ldr(4, 1, 4);
  as.Ldrb(5, 1, 1);
  as.Ldrb(6, 1, 1);
  as.Ldrb(7, 1, 1);
  as.Strb(7, 2, 1);
  as.Ldrb(8, 1, 1);
  as.Alu(Opcode::kAdd, 8, 8, 3);
  as.Mla(9, 3, 4, 8);
  as.Str(9, 2, 4);
  as.Alu(Opcode::kFadd, 10, 3, 4);
  as.Str(10, 2, 4);
  as.Alu(Opcode::kFmul, 11, 3, 4);
  as.Alu(Opcode::kFadd, 11, 11, 3);
  as.Alu(Opcode::kAdd, 12, 3, 4);
  as.Str(12, 2, 4);
  as.Halt();

  TwinRig rig(as.Finish());
  rig.Seed32(0x100, 0x3f800000);  // 1.0f; also nonzero byte lanes
  rig.Seed32(0x104, 0x40490fdb);  // pi
  rig.Seed32(0x108, 0xdeadbeef);
  EXPECT_EQ(rig.th.fused_pairs(), 8u);
  rig.RunFreeBoth(10000, "memory pairs");
  EXPECT_TRUE(rig.th.state().halted);
}

prog::Program LatchLoopProgram() {
  Assembler as;
  as.Movi(1, 6);
  as.Movi(2, 0);
  const Assembler::Label l0 = as.NewLabel();
  as.Bind(l0);
  as.AluImm(Opcode::kAddi, 2, 2, 3);
  as.AluImm(Opcode::kSubi, 1, 1, 1);
  as.Cmpi(1, 0);
  as.B(Cond::kNe, l0);  // latch pair: cmpi+b
  as.Movi(3, 4);
  as.Movi(4, 0);
  const Assembler::Label l1 = as.NewLabel();
  as.Bind(l1);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmp(3, 4);
  as.B(Cond::kNe, l1);  // latch pair: cmp+b
  as.Halt();
  return as.Finish();
}

TEST(DispatchFusion, LatchPairsFuseAndLoopsMatch) {
  TwinRig rig(LatchLoopProgram());
  EXPECT_EQ(rig.th.fused_pairs(), 2u);
  rig.RunFreeBoth(10000, "latch loops");
  EXPECT_TRUE(rig.th.state().halted);
  EXPECT_EQ(rig.th.state().regs[2], 18u);  // 6 iterations of +3
  EXPECT_EQ(rig.th.state().regs[3], 0u);
}

TEST(DispatchFusion, LatchTriplesFuseAndLoopsMatch) {
  // Both induction-latch triples: subi+cmpi+b and addi+cmpi+b each fuse
  // into one three-wide superinstruction group.
  Assembler as;
  as.Movi(1, 5);
  as.Movi(2, 0);
  const Assembler::Label l0 = as.NewLabel();
  as.Bind(l0);
  as.AluImm(Opcode::kSubi, 1, 1, 1);
  as.Cmpi(1, 0);
  as.B(Cond::kNe, l0);  // triple: subi+cmpi+b
  const Assembler::Label l1 = as.NewLabel();
  as.Bind(l1);
  as.AluImm(Opcode::kAddi, 2, 2, 7);
  as.Cmpi(2, 21);
  as.B(Cond::kNe, l1);  // triple: addi+cmpi+b
  as.Halt();

  TwinRig rig(as.Finish());
  EXPECT_EQ(rig.th.fused_pairs(), 2u);
  rig.RunFreeBoth(10000, "latch triples");
  EXPECT_TRUE(rig.th.state().halted);
  EXPECT_EQ(rig.th.state().regs[1], 0u);
  EXPECT_EQ(rig.th.state().regs[2], 21u);
}

TEST(DispatchFusion, BranchIntoTripleMiddleExecutesPlainMembers) {
  // The outer latch targets the cmpi that is the *second* member of the
  // fused subi+cmpi+b triple. Only the head slot's handler id is
  // rewritten, so the jump lands on the plain cmpi handler and the twins
  // stay in lockstep.
  Assembler as;
  as.Movi(1, 4);  // inner counter
  as.Movi(2, 0);  // outer counter
  const Assembler::Label top = as.NewLabel();
  as.Bind(top);                      // pc 2: triple head
  as.AluImm(Opcode::kSubi, 1, 1, 1);
  const Assembler::Label mid = as.NewLabel();
  as.Bind(mid);                      // pc 3: triple middle
  as.Cmpi(1, 0);
  as.B(Cond::kNe, top);
  as.AluImm(Opcode::kAddi, 2, 2, 1);
  as.Cmpi(2, 3);
  as.B(Cond::kNe, mid);              // outer latch into the triple middle
  as.Halt();

  TwinRig rig(as.Finish());
  // subi+cmpi+b triple plus the outer cmpi+b latch pair.
  EXPECT_EQ(rig.th.fused_pairs(), 2u);
  rig.RunFreeBoth(10000, "branch into triple middle");
  EXPECT_TRUE(rig.th.state().halted);
  EXPECT_EQ(rig.th.state().regs[1], 0u);
  EXPECT_EQ(rig.th.state().regs[2], 3u);
}

TEST(DispatchFusion, BudgetExhaustionSweepStopsAtSamePoint) {
  // Walking the step budget across every prefix length forces budget
  // exhaustion at every position of the stream, including between the
  // members of a fused pair or triple (the leading members retire,
  // control rests on the next member's plain slot). pc, registers, stats
  // and cycles must agree with the switch core at every cut point.
  for (std::uint64_t budget = 0; budget <= 40; ++budget) {
    TwinRig rig(LatchLoopProgram());
    rig.RunFreeBoth(budget, "budget=" + std::to_string(budget));
  }
  for (std::uint64_t budget = 0; budget <= 20; ++budget) {
    TwinRig rig(AluPairProgram());
    rig.RunFreeBoth(budget, "alu budget=" + std::to_string(budget));
  }
}

TEST(DispatchFusion, BranchIntoPairMiddleExecutesPlainSecondMember) {
  // The backward latch targets the str that is the second member of the
  // fused add+str pair at (4,5): only the head slot's handler id is
  // rewritten by fusion, so a branch into the middle lands on the plain
  // handler and the twins stay in lockstep.
  Assembler as;
  as.Movi(1, 0x100);  // store base
  as.Movi(2, 0);      // value
  as.Movi(3, 4);      // iteration counter
  as.Movi(4, 1);
  as.Alu(Opcode::kAdd, 2, 2, 4);  // pc 4: fused head (add+str)
  const Assembler::Label mid = as.NewLabel();
  as.Bind(mid);                   // pc 5: pair middle
  as.Str(2, 1, 4);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kNe, mid);           // latch pair branching into (4,5)'s middle
  as.Halt();

  TwinRig rig(as.Finish());
  // add+str body pair and cmpi+b latch pair.
  EXPECT_EQ(rig.th.fused_pairs(), 2u);
  rig.RunFreeBoth(10000, "branch into pair middle");
  EXPECT_TRUE(rig.th.state().halted);
  // Four stores of r2 == 1 at 0x100..0x10c.
  for (std::uint32_t a = 0x100; a < 0x110; a += 4) {
    EXPECT_EQ(rig.mem_th.Read32(a), 1u) << a;
  }
}

TEST(DispatchFusion, SwitchAndReferenceModesNeverLower) {
  prog::Program p = AluPairProgram();
  mem::Memory m(1 << 16);
  mem::Hierarchy h(mem::Hierarchy::Config{});
  const cpu::Cpu sw(p, m, h, {}, false, DispatchMode::kSwitch);
  EXPECT_EQ(sw.fused_pairs(), 0u);
  const cpu::Cpu ref(p, m, h, {}, true, DispatchMode::kThreaded);
  EXPECT_EQ(ref.fused_pairs(), 0u);
}

}  // namespace
}  // namespace dsa::sim
