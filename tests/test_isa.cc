#include <gtest/gtest.h>

#include "isa/instruction.h"
#include "isa/opcode.h"

namespace dsa::isa {
namespace {

TEST(LaneCount, MatchesNeonWidths) {
  EXPECT_EQ(LaneCount(VecType::kI8), 16);
  EXPECT_EQ(LaneCount(VecType::kI16), 8);
  EXPECT_EQ(LaneCount(VecType::kI32), 4);
  EXPECT_EQ(LaneCount(VecType::kF32), 4);
}

TEST(LaneBytes, TimesLanesIs16Bytes) {
  for (const VecType t :
       {VecType::kI8, VecType::kI16, VecType::kI32, VecType::kF32}) {
    EXPECT_EQ(LaneBytes(t) * LaneCount(t), 16) << ToString(t);
  }
}

TEST(ClassOf, MemoryOpcodes) {
  EXPECT_EQ(ClassOf(Opcode::kLdr), InstrClass::kMemRead);
  EXPECT_EQ(ClassOf(Opcode::kLdrh), InstrClass::kMemRead);
  EXPECT_EQ(ClassOf(Opcode::kLdrb), InstrClass::kMemRead);
  EXPECT_EQ(ClassOf(Opcode::kStr), InstrClass::kMemWrite);
  EXPECT_EQ(ClassOf(Opcode::kStrh), InstrClass::kMemWrite);
  EXPECT_EQ(ClassOf(Opcode::kStrb), InstrClass::kMemWrite);
}

TEST(ClassOf, ControlFlow) {
  EXPECT_EQ(ClassOf(Opcode::kB), InstrClass::kBranch);
  EXPECT_EQ(ClassOf(Opcode::kBl), InstrClass::kCall);
  EXPECT_EQ(ClassOf(Opcode::kRet), InstrClass::kRet);
  EXPECT_EQ(ClassOf(Opcode::kCmp), InstrClass::kCompare);
  EXPECT_EQ(ClassOf(Opcode::kCmpi), InstrClass::kCompare);
}

TEST(ClassOf, FloatOpsAreFpAlu) {
  for (const Opcode op :
       {Opcode::kFadd, Opcode::kFsub, Opcode::kFmul, Opcode::kFdiv}) {
    EXPECT_EQ(ClassOf(op), InstrClass::kFpAlu);
  }
}

class AllOpcodes : public ::testing::TestWithParam<Opcode> {};

TEST_P(AllOpcodes, HasNonEmptyMnemonic) {
  EXPECT_FALSE(ToString(GetParam()).empty());
  EXPECT_NE(ToString(GetParam()), "?");
}

TEST_P(AllOpcodes, VectorFlagConsistentWithClass) {
  const Opcode op = GetParam();
  const InstrClass c = ClassOf(op);
  const bool vec_class =
      c == InstrClass::kVecMem || c == InstrClass::kVecAlu;
  EXPECT_EQ(IsVector(op), vec_class) << ToString(op);
}

TEST_P(AllOpcodes, MemAccessFlagConsistentWithClass) {
  const Opcode op = GetParam();
  const InstrClass c = ClassOf(op);
  const bool mem_class = c == InstrClass::kMemRead ||
                         c == InstrClass::kMemWrite ||
                         c == InstrClass::kVecMem;
  EXPECT_EQ(IsMemAccess(op), mem_class) << ToString(op);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllOpcodes,
    ::testing::Values(
        Opcode::kLdr, Opcode::kLdrh, Opcode::kLdrb, Opcode::kStr,
        Opcode::kStrh, Opcode::kStrb, Opcode::kMov, Opcode::kMovi,
        Opcode::kAdd, Opcode::kAddi, Opcode::kSub, Opcode::kSubi,
        Opcode::kRsb, Opcode::kMul, Opcode::kMla, Opcode::kSdiv,
        Opcode::kAnd, Opcode::kAndi, Opcode::kOrr, Opcode::kEor,
        Opcode::kBic, Opcode::kLsl, Opcode::kLsr, Opcode::kAsr,
        Opcode::kMin, Opcode::kMax, Opcode::kFadd, Opcode::kFsub,
        Opcode::kFmul, Opcode::kFdiv, Opcode::kCmp, Opcode::kCmpi,
        Opcode::kB, Opcode::kBl, Opcode::kRet, Opcode::kNop, Opcode::kHalt,
        Opcode::kVld1, Opcode::kVst1, Opcode::kVldLane, Opcode::kVstLane,
        Opcode::kVdup, Opcode::kVadd, Opcode::kVsub, Opcode::kVmul,
        Opcode::kVmla, Opcode::kVmin, Opcode::kVmax, Opcode::kVand,
        Opcode::kVorr, Opcode::kVeor, Opcode::kVshl, Opcode::kVshr,
        Opcode::kVcge, Opcode::kVcgt, Opcode::kVceq, Opcode::kVbsl,
        Opcode::kVmovToScalar, Opcode::kVmovFromScalar));

TEST(Disasm, LoadWithPostIncrement) {
  const Instruction i = MakeLoad(Opcode::kLdr, 3, 5, 4);
  EXPECT_EQ(i.ToAsm(), "ldr r3, [r5], #4");
}

TEST(Disasm, BranchShowsCondition) {
  const Instruction i = MakeBranch(Cond::kGt, 7);
  EXPECT_EQ(i.ToAsm(), "bgt #7");
}

TEST(Disasm, VectorOpShowsType) {
  Instruction i;
  i.op = Opcode::kVadd;
  i.vt = VecType::kI16;
  i.rd = 8;
  i.rn = 1;
  i.rm = 2;
  EXPECT_EQ(i.ToAsm(), "vadd.i16 q8, q1, q2");
}

TEST(Helpers, MakeCmpStoresOperands) {
  const Instruction i = MakeCmpi(3, 42);
  EXPECT_EQ(i.op, Opcode::kCmpi);
  EXPECT_EQ(i.rn, 3);
  EXPECT_EQ(i.imm, 42);
}

TEST(Helpers, MakeHaltIsMisc) {
  EXPECT_EQ(MakeHalt().cls(), InstrClass::kMisc);
}

}  // namespace
}  // namespace dsa::isa
