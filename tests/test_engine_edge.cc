// Edge-case engine tests: structure-capacity limits, repeated executions
// (sentinel range learning, Fig. 24 dynamic-range re-validation), cache
// eviction pressure and unusual loop shapes.
#include <gtest/gtest.h>

#include "prog/assembler.h"
#include "sim/system.h"

namespace dsa::engine {
namespace {

using isa::Cond;
using isa::Opcode;
using prog::Assembler;
using sim::RunMode;
using sim::RunResult;

sim::Workload Mini(prog::Program p,
                   std::function<void(mem::Memory&)> init = nullptr,
                   std::function<bool(const mem::Memory&)> check = nullptr) {
  sim::Workload wl;
  wl.name = "mini";
  wl.mem_bytes = 1 << 19;
  wl.scalar = std::move(p);
  wl.init = std::move(init);
  wl.check = std::move(check);
  return wl;
}

RunResult RunDsa(const sim::Workload& wl, DsaConfig cfg = {}) {
  sim::SystemConfig sc;
  sc.dsa = cfg;
  return sim::Run(wl, RunMode::kDsa, sc);
}

TEST(EngineEdge, VerificationCacheOverflowRejects) {
  // A body with more memory accesses per iteration than the VC holds.
  DsaConfig cfg;
  cfg.verification_cache_bytes = 16;  // 4 entries
  Assembler as;
  as.Movi(0, 0x1000);
  as.Movi(1, 0x8000);
  as.Movi(3, 50);
  const auto loop = as.NewLabel();
  as.Bind(loop);
  for (int i = 0; i < 6; ++i) {
    as.Ldr(4, 0, 0, 4 * i);
    as.Str(4, 1, 0, 4 * i);
  }
  as.AluImm(Opcode::kAddi, 0, 0, 4);
  as.AluImm(Opcode::kAddi, 1, 1, 4);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, loop);
  as.Halt();
  const RunResult r = RunDsa(Mini(as.Finish()), cfg);
  EXPECT_EQ(r.dsa->takeovers, 0u);
  EXPECT_EQ(
      r.dsa->rejects_by_reason.count(RejectReason::kVerificationCacheFull),
      1u);
}

TEST(EngineEdge, TraceOverflowRejects) {
  DsaConfig cfg;
  cfg.trace_capacity = 8;
  Assembler as;
  as.Movi(0, 0x1000);
  as.Movi(2, 0x8000);
  as.Movi(3, 50);
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Ldr(4, 0, 4);
  for (int i = 0; i < 10; ++i) as.AluImm(Opcode::kAddi, 5, 4, i);
  as.Str(5, 2, 4);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, loop);
  as.Halt();
  const RunResult r = RunDsa(Mini(as.Finish()), cfg);
  EXPECT_EQ(r.dsa->takeovers, 0u);
  EXPECT_EQ(r.dsa->rejects_by_reason.count(RejectReason::kTraceOverflow), 1u);
}

// Fig. 23: the sentinel loop's second execution speculates with the
// learned range instead of one vector.
TEST(EngineEdge, SentinelLearnsRangeAcrossExecutions) {
  Assembler as;
  as.Movi(10, 2);  // run the string copy twice
  const auto outer = as.NewLabel();
  as.Bind(outer);
  as.Movi(0, 0x1000);
  as.Movi(1, 0x10000);
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Ldrb(4, 0, 1);
  as.Strb(4, 1, 1);
  as.Cmpi(4, 0);
  as.B(Cond::kNe, loop);
  as.AluImm(Opcode::kSubi, 10, 10, 1);
  as.Cmpi(10, 0);
  as.B(Cond::kGt, outer);
  as.Halt();
  auto init = [](mem::Memory& m) {
    for (int i = 0; i < 200; ++i) m.Write8(0x1000 + i, 7);
    m.Write8(0x1000 + 200, 0);
  };
  const RunResult r = RunDsa(Mini(as.Finish(), init));
  ASSERT_TRUE(r.dsa.has_value());
  // First execution: analysis + doubling windows. Second execution: one
  // cache-hit takeover sized by the learned range covers nearly all of it.
  EXPECT_GT(r.dsa->cache_hit_takeovers, 0u);
  EXPECT_GT(r.dsa->vectorized_iterations, 250u);
  EXPECT_TRUE(r.output_ok);
}

// Fig. 24: the same loop body, executed twice with different ranges; the
// longer range brings a cross-iteration dependency into the window, so the
// re-entry CIDP must catch it (partial vectorization instead of full).
TEST(EngineEdge, DynamicRangeRevalidationCatchesNewDependency) {
  // a[i+16] = a[i] + 1 over n elements; n=8 first (no dep inside range),
  // n=64 second (dependency at distance 16).
  Assembler as;
  as.Movi(10, 0);  // pass index
  as.Movi(9, 0xF00);
  const auto outer = as.NewLabel();
  as.Bind(outer);
  as.Movi(0, 0x1000);
  as.Movi(2, 0x1000 + 16 * 4);
  as.Movi(3, 0xF00);
  as.Ldr(3, 3, 0, 0);  // runtime range for this pass
  as.Movi(7, 1);
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Ldr(4, 0, 4);
  as.Alu(Opcode::kAdd, 6, 4, 7);
  as.Str(6, 2, 4);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, loop);
  // second pass uses a bigger range
  as.Movi(8, 64);
  as.Str(8, 9, 0, 0);
  as.AluImm(Opcode::kAddi, 10, 10, 1);
  as.Cmpi(10, 2);
  as.B(Cond::kLt, outer);
  as.Halt();
  auto init = [](mem::Memory& m) {
    m.Write32(0xF00, 8);
    for (int i = 0; i < 128; ++i) m.Write32(0x1000 + 4 * i, i);
  };
  // Golden: sequential semantics of both passes.
  auto check = [](const mem::Memory& m) {
    std::vector<std::uint32_t> a(128);
    for (int i = 0; i < 128; ++i) a[i] = i;
    for (const int n : {8, 64}) {
      for (int i = 0; i < n; ++i) a[i + 16] = a[i] + 1;
    }
    for (int i = 0; i < 128; ++i) {
      if (m.Read32(0x1000 + 4 * i) != a[i]) return false;
    }
    return true;
  };
  const RunResult r = RunDsa(Mini(as.Finish(), init, check));
  EXPECT_TRUE(r.output_ok);
  ASSERT_TRUE(r.dsa.has_value());
  // Second entry re-runs CIDP with the new range: the dependency at
  // distance 16 demotes the count loop to partial vectorization.
  EXPECT_EQ(r.dsa->entries_by_class.count(LoopClass::kPartial), 1u);
}

TEST(EngineEdge, DsaCacheEvictionStillCorrect) {
  // Three distinct loops under a 2-entry DSA cache, executed twice each.
  DsaConfig cfg;
  cfg.dsa_cache_bytes = 64;
  cfg.dsa_cache_entry_bytes = 32;  // 2 entries
  Assembler as;
  as.Movi(10, 2);
  const auto outer = as.NewLabel();
  as.Bind(outer);
  for (int l = 0; l < 3; ++l) {
    as.Movi(0, 0x1000 + l * 0x2000);
    as.Movi(2, 0x10000 + l * 0x2000);
    as.Movi(3, 40);
    const auto loop = as.NewLabel();
    as.Bind(loop);
    as.Ldr(4, 0, 4);
    as.Str(4, 2, 4);
    as.AluImm(Opcode::kSubi, 3, 3, 1);
    as.Cmpi(3, 0);
    as.B(Cond::kGt, loop);
  }
  as.AluImm(Opcode::kSubi, 10, 10, 1);
  as.Cmpi(10, 0);
  as.B(Cond::kGt, outer);
  as.Halt();
  const RunResult r = RunDsa(Mini(as.Finish()), cfg);
  ASSERT_TRUE(r.dsa.has_value());
  EXPECT_GE(r.dsa->takeovers, 6u);
  EXPECT_TRUE(r.output_ok);
}

TEST(EngineEdge, MemsetLoopVectorized) {
  // No loads: an invariant register streamed to memory.
  Assembler as;
  as.Movi(2, 0x10000);
  as.Movi(4, 0xAB);
  as.Movi(3, 100);
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Strb(4, 2, 1);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, loop);
  as.Halt();
  auto check = [](const mem::Memory& m) {
    for (int i = 0; i < 100; ++i) {
      if (m.Read8(0x10000 + i) != 0xAB) return false;
    }
    return true;
  };
  const RunResult r = RunDsa(Mini(as.Finish(), nullptr, check));
  EXPECT_TRUE(r.output_ok);
  EXPECT_EQ(r.dsa->takeovers, 1u);
}

TEST(EngineEdge, NeLatchCountLoopVectorized) {
  // while (i != n): an exact-hit latch the estimator can solve.
  Assembler as;
  as.Movi(0, 0x1000);
  as.Movi(2, 0x10000);
  as.Movi(6, 0);
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Ldr(4, 0, 4);
  as.Str(4, 2, 4);
  as.AluImm(Opcode::kAddi, 6, 6, 1);
  as.Cmpi(6, 48);
  as.B(Cond::kNe, loop);
  as.Halt();
  const RunResult r = RunDsa(Mini(as.Finish()));
  EXPECT_EQ(r.dsa->takeovers, 1u);
  EXPECT_EQ(r.dsa->vectorized_iterations, 45u);
}

TEST(EngineEdge, DescendingStreamRejected) {
  // Pointers walking downward: |stride| == elem but negative.
  Assembler as;
  as.Movi(0, 0x1000 + 50 * 4);
  as.Movi(2, 0x10000 + 50 * 4);
  as.Movi(3, 50);
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Ldr(4, 0, -4);
  as.Str(4, 2, -4);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, loop);
  as.Halt();
  const RunResult r = RunDsa(Mini(as.Finish()));
  EXPECT_EQ(r.dsa->takeovers, 0u);
  EXPECT_EQ(r.dsa->rejects_by_reason.count(RejectReason::kNonUnitStride), 1u);
  EXPECT_TRUE(r.output_ok);
}

TEST(EngineEdge, RejectedLoopAnalyzedOnlyOnce) {
  // A non-vectorizable loop re-entered many times: the DSA cache record
  // must suppress re-analysis after the first rejection.
  Assembler as;
  as.Movi(10, 20);  // entries
  const auto outer = as.NewLabel();
  as.Bind(outer);
  as.Movi(0, 0x1000);
  as.Movi(3, 30);
  as.Movi(6, 0);
  as.Movi(1, 0x10000);
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Ldr(4, 0, 4);
  as.Alu(Opcode::kAdd, 6, 6, 4);  // carry-around
  as.Str(6, 1, 4);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, loop);
  as.AluImm(Opcode::kSubi, 10, 10, 1);
  as.Cmpi(10, 0);
  as.B(Cond::kGt, outer);
  as.Halt();
  const RunResult r = RunDsa(Mini(as.Finish()));
  // One rejection recorded, not twenty.
  EXPECT_EQ(r.dsa->rejects_by_reason.at(RejectReason::kCarryAroundScalar), 1u);
}

// Fig. 17's fusion assumption can be wrong: the fusability check looks at
// the glue instructions *observed during analysis*, so a store that only
// executes on a late outer iteration is invisible when the nest fuses.
// The fused coverage must catch the store mid-run, end the takeover and
// demote the fusion record; per-inner cache-hit takeovers resume after.
TEST(EngineEdge, FusedNestDemotedAfterGlueStore) {
  Assembler as;
  as.Movi(10, 16);  // outer counter, counts down 16..1
  as.Movi(11, 0x40000);
  const auto outer = as.NewLabel();
  as.Bind(outer);
  as.Movi(0, 0x1000);
  as.Movi(2, 0x10000);
  as.Movi(3, 64);
  const auto inner = as.NewLabel();
  as.Bind(inner);
  as.Ldr(4, 0, 4);
  as.Str(4, 2, 4);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, inner);
  // Glue: a progress marker stored only when the counter hits 4 — never
  // during the analysis iterations, so the nest looks fusable.
  const auto skip = as.NewLabel();
  as.Cmpi(10, 4);
  as.B(Cond::kNe, skip);
  as.Str(10, 11);
  as.Bind(skip);
  as.AluImm(Opcode::kSubi, 10, 10, 1);
  as.Cmpi(10, 0);
  as.B(Cond::kGt, outer);
  as.Halt();
  auto init = [](mem::Memory& m) {
    for (int i = 0; i < 64; ++i) m.Write32(0x1000 + 4 * i, 0x100 + i);
  };
  auto check = [](const mem::Memory& m) {
    for (int i = 0; i < 64; ++i) {
      if (m.Read32(0x10000 + 4 * i) != static_cast<std::uint32_t>(0x100 + i))
        return false;
    }
    return m.Read32(0x40000) == 4u;  // the marker store really executed
  };
  const RunResult r = RunDsa(Mini(as.Finish(), init, check));
  ASSERT_TRUE(r.dsa.has_value());
  EXPECT_TRUE(r.output_ok);
  EXPECT_GE(r.dsa->fusions_formed, 1u);
  EXPECT_EQ(r.dsa->fusion_demotions, 1u);
  // After demotion the inner loop keeps vectorizing from its cache record:
  // one cache-hit takeover per remaining outer entry.
  EXPECT_GE(r.dsa->cache_hit_takeovers, 3u);
  EXPECT_GE(r.dsa->takeovers, 4u);
}

// Section 4.6.5's continued-execution case within ONE execution: a string
// long enough to outlive the first speculated range forces the cooldown's
// sentinel watch to re-speculate repeatedly with a doubled window.
TEST(EngineEdge, SentinelRespeculatesWithDoublingWindowMidRun) {
  Assembler as;
  as.Movi(0, 0x1000);
  as.Movi(1, 0x10000);
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Ldrb(4, 0, 1);
  as.Strb(4, 1, 1);
  as.Cmpi(4, 0);
  as.B(Cond::kNe, loop);
  as.Halt();
  auto init = [](mem::Memory& m) {
    for (int i = 0; i < 500; ++i) m.Write8(0x1000 + i, 0x33);
    m.Write8(0x1000 + 500, 0);
  };
  auto check = [](const mem::Memory& m) {
    for (int i = 0; i < 500; ++i) {
      if (m.Read8(0x10000 + i) != 0x33) return false;
    }
    return m.Read8(0x10000 + 500) == 0;
  };
  const RunResult r = RunDsa(Mini(as.Finish(), init, check));
  ASSERT_TRUE(r.dsa.has_value());
  EXPECT_TRUE(r.output_ok);
  EXPECT_EQ(r.dsa->loops_by_class.at(LoopClass::kSentinel), 1u);
  // Initial speculation plus at least two doubled windows.
  EXPECT_GE(r.dsa->sentinel_respeculations, 2u);
  EXPECT_GE(r.dsa->takeovers, 3u);
}

TEST(EngineEdge, OriginalConfigFactoryDisablesDynamicFeatures) {
  const DsaConfig o = DsaConfig::Original();
  EXPECT_FALSE(o.enable_conditional_loops);
  EXPECT_FALSE(o.enable_sentinel_loops);
  EXPECT_FALSE(o.enable_dynamic_range_loops);
  EXPECT_FALSE(o.enable_partial_vectorization);
  const DsaConfig e = DsaConfig::Extended();
  EXPECT_TRUE(e.enable_conditional_loops);
  EXPECT_TRUE(e.enable_sentinel_loops);
}

}  // namespace
}  // namespace dsa::engine
