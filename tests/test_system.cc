// Integration tests: every workload, every system of Table 4, functional
// equivalence against the golden C++ references, plus cross-system
// performance invariants.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "sim/system.h"
#include "workloads/workloads.h"

namespace dsa::sim {
namespace {

// One (workload index, mode) pair per test so failures localize.
using Case = std::tuple<int, RunMode>;

const std::vector<Workload>& AllWorkloads() {
  static const std::vector<Workload> wls = workloads::Article3Set();
  return wls;
}

class EveryWorkloadEveryMode : public ::testing::TestWithParam<Case> {};

TEST_P(EveryWorkloadEveryMode, OutputMatchesGolden) {
  const auto [idx, mode] = GetParam();
  const Workload& wl = AllWorkloads().at(idx);
  const RunResult r = ::dsa::sim::Run(wl, mode, {});
  EXPECT_TRUE(r.output_ok) << wl.name << " in " << std::string(ToString(mode));
  EXPECT_GT(r.cycles, 0u);
  EXPECT_GT(r.cpu.retired_total, 0u);
  EXPECT_GT(r.energy.total(), 0.0);
}

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  const auto [idx, mode] = info.param;
  std::string n = AllWorkloads().at(idx).name + "_" +
                  std::string(ToString(mode));
  for (char& c : n) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return n;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, EveryWorkloadEveryMode,
    ::testing::Combine(::testing::Range(0, 9),
                       ::testing::Values(RunMode::kScalar, RunMode::kAutoVec,
                                         RunMode::kHandVec, RunMode::kDsa)),
    CaseName);

TEST(SystemInvariants, DsaNeverSlowerOnDlpFreeCode) {
  // Q Sort has no vectorizable loops: the DSA must not cost cycles
  // (detection runs on its own hardware, Section 4.1).
  const Workload wl = workloads::MakeQSort(512);
  const RunResult scalar = ::dsa::sim::Run(wl, RunMode::kScalar, {});
  const RunResult dsa = ::dsa::sim::Run(wl, RunMode::kDsa, {});
  EXPECT_LE(dsa.cycles, scalar.cycles + scalar.cycles / 100);
}

TEST(SystemInvariants, AutoVecGuardCostsOnFailedLoops) {
  // The paper reports small autovec *slowdowns* on Dijkstra and QSort.
  const Workload q = workloads::MakeQSort(512);
  const RunResult scalar = ::dsa::sim::Run(q, RunMode::kScalar, {});
  const RunResult av = ::dsa::sim::Run(q, RunMode::kAutoVec, {});
  EXPECT_GE(av.cycles, scalar.cycles);
}

TEST(SystemInvariants, DsaBeatsAutoVecOnDynamicLoops) {
  for (const Workload& wl :
       {workloads::MakeBitCount(2048), workloads::MakeSusanE(4096, 48)}) {
    const RunResult av = ::dsa::sim::Run(wl, RunMode::kAutoVec, {});
    const RunResult ds = ::dsa::sim::Run(wl, RunMode::kDsa, {});
    EXPECT_LT(ds.cycles, av.cycles) << wl.name;
  }
}

TEST(SystemInvariants, AutoVecWinsOrTiesOnPureStaticLoops) {
  // RGB-Gray: a static count loop the compiler vectorizes fully; the DSA
  // pays analysis and leftover costs, so it cannot be meaningfully faster.
  const Workload wl = workloads::MakeRgbGray(8192);
  const RunResult av = ::dsa::sim::Run(wl, RunMode::kAutoVec, {});
  const RunResult ds = ::dsa::sim::Run(wl, RunMode::kDsa, {});
  EXPECT_LE(av.cycles, ds.cycles + ds.cycles / 20);
}

TEST(SystemInvariants, EverySimdSystemBeatsScalarOnVecAdd) {
  const Workload wl = workloads::MakeVecAdd(4096);
  const RunResult scalar = ::dsa::sim::Run(wl, RunMode::kScalar, {});
  for (const RunMode m :
       {RunMode::kAutoVec, RunMode::kHandVec, RunMode::kDsa}) {
    EXPECT_LT(::dsa::sim::Run(wl, m, {}).cycles, scalar.cycles)
        << std::string(ToString(m));
  }
}

TEST(SystemInvariants, DsaEnergyBelowScalarOnDlpKernels) {
  for (const Workload& wl :
       {workloads::MakeRgbGray(8192), workloads::MakeMatMul(32)}) {
    const RunResult scalar = ::dsa::sim::Run(wl, RunMode::kScalar, {});
    const RunResult ds = ::dsa::sim::Run(wl, RunMode::kDsa, {});
    EXPECT_LT(ds.energy.total(), scalar.energy.total()) << wl.name;
  }
}

TEST(SystemInvariants, DetectionLatencySmall) {
  // Article 2 Table 3: detection latency is a few percent of runtime.
  for (const Workload& wl : AllWorkloads()) {
    const RunResult ds = ::dsa::sim::Run(wl, RunMode::kDsa, {});
    EXPECT_LT(ds.detection_latency_pct(), 12.0) << wl.name;
  }
}

TEST(SystemInvariants, OriginalDsaNeverBeatsExtended) {
  SystemConfig orig;
  orig.dsa = engine::DsaConfig::Original();
  for (const Workload& wl : AllWorkloads()) {
    const RunResult o = ::dsa::sim::Run(wl, RunMode::kDsa, orig);
    const RunResult e = ::dsa::sim::Run(wl, RunMode::kDsa, {});
    EXPECT_GE(o.cycles + o.cycles / 50, e.cycles) << wl.name;
    EXPECT_TRUE(o.output_ok) << wl.name;
  }
}

TEST(SystemInvariants, MissingVariantThrows) {
  Workload wl;
  wl.name = "empty";
  EXPECT_THROW(::dsa::sim::Run(wl, RunMode::kAutoVec, {}), std::invalid_argument);
}

TEST(SystemConfigKnobs, SlowerMemoryRaisesCycles) {
  const Workload wl = workloads::MakeVecAdd(4096);
  SystemConfig fast;
  SystemConfig slow;
  slow.memory.dram_latency = 200;
  slow.memory.next_line_prefetch = false;
  EXPECT_LT(::dsa::sim::Run(wl, RunMode::kScalar, fast).cycles,
            ::dsa::sim::Run(wl, RunMode::kScalar, slow).cycles);
}

TEST(SystemConfigKnobs, WiderIssueLowersCycles) {
  const Workload wl = workloads::MakeBitCount(2048);
  SystemConfig narrow;
  narrow.timing.superscalar_width = 1;
  SystemConfig wide;
  wide.timing.superscalar_width = 4;
  EXPECT_GT(::dsa::sim::Run(wl, RunMode::kScalar, narrow).cycles,
            ::dsa::sim::Run(wl, RunMode::kScalar, wide).cycles);
}

TEST(LoopCensus, FractionsRoughlyNormalized) {
  for (const Workload& wl : AllWorkloads()) {
    double sum = 0;
    for (const auto& [k, v] : wl.loop_type_fractions) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-6) << wl.name;
  }
}

}  // namespace
}  // namespace dsa::sim
