// Inspects the DSA's runtime decisions for each benchmark: loop census by
// class, rejection reasons, stage activations, takeover and coverage
// counters — the observability tour of the engine.
//
//   $ ./examples/dsa_inspect [benchmark-substring]
#include <cstdio>
#include <string>

#include "sim/system.h"
#include "workloads/workloads.h"

int main(int argc, char** argv) {
  const std::string filter = argc > 1 ? argv[1] : "";
  const dsa::sim::SystemConfig cfg;
  for (const dsa::sim::Workload& wl : dsa::workloads::Article3Set()) {
    if (!filter.empty() && wl.name.find(filter) == std::string::npos) continue;
    const auto r = dsa::sim::Run(wl, dsa::sim::RunMode::kDsa, cfg);
    const dsa::engine::DsaStats& s = *r.dsa;
    std::printf("=== %s ===  cycles=%llu output=%s\n", wl.name.c_str(),
                static_cast<unsigned long long>(r.cycles),
                r.output_ok ? "OK" : "MISMATCH");
    std::printf("  takeovers=%llu (cache-hit %llu)  vectorized-iters=%llu  "
                "covered-instrs=%llu  vector-instrs=%llu\n",
                (unsigned long long)s.takeovers,
                (unsigned long long)s.cache_hit_takeovers,
                (unsigned long long)s.vectorized_iterations,
                (unsigned long long)s.scalar_covered_instrs,
                (unsigned long long)s.vector_instrs_issued);
    std::printf("  loops by class:");
    for (const auto& [cls, n] : s.loops_by_class) {
      std::printf(" %s=%llu", std::string(ToString(cls)).c_str(),
                  (unsigned long long)n);
    }
    std::printf("\n  entries by class:");
    for (const auto& [cls, n] : s.entries_by_class) {
      std::printf(" %s=%llu", std::string(ToString(cls)).c_str(),
                  (unsigned long long)n);
    }
    std::printf("\n  rejects:");
    for (const auto& [why, n] : s.rejects_by_reason) {
      std::printf(" %s=%llu", std::string(ToString(why)).c_str(),
                  (unsigned long long)n);
    }
    std::printf("\n  stages:");
    for (int i = 0; i < dsa::engine::kNumStages; ++i) {
      std::printf(" %s=%llu",
                  std::string(ToString(static_cast<dsa::engine::Stage>(i)))
                      .c_str(),
                  (unsigned long long)s.stage_activations[i]);
    }
    std::printf("\n  detection latency: %.2f%%  analysis cycles=%llu\n\n",
                r.detection_latency_pct(),
                (unsigned long long)s.analysis_cycles);
  }
  return 0;
}
