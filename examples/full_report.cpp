// Dumps the full gem5-style statistics report for one benchmark on one
// system — every counter the simulator tracks, diffable across runs. The
// run goes through the BatchRunner with a scalar baseline riding along,
// so the report is oracle-gated: a divergent or non-deterministic run
// fails loudly instead of printing bogus numbers.
//
//   $ ./examples/full_report [benchmark-substring] [scalar|autovec|handvec|dsa]
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "sim/report.h"
#include "workloads/workloads.h"

int main(int argc, char** argv) {
  const std::string filter = argc > 1 ? argv[1] : "RGB";
  const std::string mode_s = argc > 2 ? argv[2] : "dsa";
  dsa::sim::RunMode mode = dsa::sim::RunMode::kDsa;
  if (mode_s == "scalar") mode = dsa::sim::RunMode::kScalar;
  if (mode_s == "autovec") mode = dsa::sim::RunMode::kAutoVec;
  if (mode_s == "handvec") mode = dsa::sim::RunMode::kHandVec;

  for (const dsa::sim::Workload& wl : dsa::workloads::Article3Set()) {
    if (wl.name.find(filter) == std::string::npos) continue;
    dsa::sim::BatchRunner runner;
    runner.Submit(wl, dsa::sim::RunMode::kScalar);
    const std::string key = runner.Submit(wl, mode);
    std::fputs(dsa::sim::FormatReport(runner.Result(key)).c_str(), stdout);
    const dsa::sim::BatchReport report = runner.Finish();
    if (!report.ok()) {
      std::fputs(
          dsa::sim::oracle::FormatViolations(report.violations).c_str(),
          stderr);
      return 1;
    }
    return 0;
  }
  std::printf("no benchmark matches '%s'\n", filter.c_str());
  return 1;
}
