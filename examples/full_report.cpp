// Dumps the full gem5-style statistics report for one benchmark on one
// system — every counter the simulator tracks, diffable across runs.
//
//   $ ./examples/full_report [benchmark-substring] [scalar|autovec|handvec|dsa]
#include <cstdio>
#include <string>

#include "sim/report.h"
#include "sim/system.h"
#include "workloads/workloads.h"

int main(int argc, char** argv) {
  const std::string filter = argc > 1 ? argv[1] : "RGB";
  const std::string mode_s = argc > 2 ? argv[2] : "dsa";
  dsa::sim::RunMode mode = dsa::sim::RunMode::kDsa;
  if (mode_s == "scalar") mode = dsa::sim::RunMode::kScalar;
  if (mode_s == "autovec") mode = dsa::sim::RunMode::kAutoVec;
  if (mode_s == "handvec") mode = dsa::sim::RunMode::kHandVec;

  for (const dsa::sim::Workload& wl : dsa::workloads::Article3Set()) {
    if (wl.name.find(filter) == std::string::npos) continue;
    const dsa::sim::RunResult r = Run(wl, mode, {});
    std::fputs(dsa::sim::FormatReport(r).c_str(), stdout);
    return 0;
  }
  std::printf("no benchmark matches '%s'\n", filter.c_str());
  return 1;
}
