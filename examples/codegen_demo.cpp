// Fig. 25 walkthrough: runs the dissertation's running example (a vector
// sum) under the DSA, captures the takeover, and prints the NEON code the
// SIMD generator emits for it — setup (vdup of invariants / constants)
// plus the per-chunk load/op/store sequence.
//
//   $ ./examples/codegen_demo
#include <cstdio>

#include "cpu/cpu.h"
#include "engine/engine.h"
#include "engine/simd_gen.h"
#include "prog/assembler.h"

int main() {
  using dsa::isa::Cond;
  using dsa::isa::Opcode;

  // float v[400]: v[i] = a[i] + b[i]  (Fig. 15's example loop)
  dsa::prog::Assembler as;
  as.Movi(0, 0x1000);
  as.Movi(1, 0x3000);
  as.Movi(2, 0x10000);
  as.Movi(3, 400);
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Ldr(4, 0, 4);
  as.Ldr(5, 1, 4);
  as.Alu(Opcode::kFadd, 6, 4, 5);
  as.Str(6, 2, 4);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, loop);
  as.Halt();
  const dsa::prog::Program program = as.Finish();

  std::printf("scalar loop (what the binary contains):\n%s\n",
              program.Disassemble().c_str());

  dsa::mem::Memory memory(1 << 17);
  dsa::mem::Hierarchy h{dsa::mem::Hierarchy::Config{}};
  dsa::cpu::Cpu cpu(program, memory, h);
  dsa::engine::DsaEngine engine{dsa::engine::DsaConfig{},
                                dsa::cpu::TimingConfig{}};

  while (!cpu.halted()) {
    const dsa::cpu::Retired r = cpu.Step();
    if (r.instr == nullptr) break;
    const auto plan = engine.Observe(r, cpu.state());
    if (plan.has_value()) {
      std::printf("DSA verdict after 3 analysis iterations: %s loop, "
                  "vectorize as %s x%d lanes\n\n",
                  std::string(ToString(plan->record.cls)).c_str(),
                  std::string(ToString(plan->record.body.vec_type)).c_str(),
                  plan->record.body.lanes());
      dsa::engine::SimdGenError err;
      const auto gen = dsa::engine::GenerateSimd(
          plan->record.body, cpu.state().regs, {11, 12}, &err);
      if (!gen.has_value()) {
        std::printf("generation failed: %s\n", err.reason.c_str());
        return 1;
      }
      std::printf("generated NEON code (Fig. 25):\n");
      if (!gen->setup.empty()) {
        std::printf("  ; setup, once per activation\n");
        for (const auto& i : gen->setup) {
          std::printf("  %s\n", i.ToAsm().c_str());
        }
      }
      std::printf("  ; per 128-bit chunk (%d iterations)\n", gen->lanes());
      for (const auto& i : gen->chunk) {
        std::printf("  %s\n", i.ToAsm().c_str());
      }
      return 0;
    }
  }
  std::printf("no takeover happened\n");
  return 1;
}
