// Quickstart: run one kernel (float vector sum, the dissertation's running
// example) on all four systems of Table 4 and print the paper-style
// comparison: cycles, speedup over the ARM original execution, energy.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "sim/system.h"
#include "workloads/workloads.h"

int main() {
  using dsa::sim::RunMode;
  const dsa::sim::Workload wl = dsa::workloads::MakeVecAdd(4096);
  const dsa::sim::SystemConfig cfg;

  const dsa::sim::RunResult base = dsa::sim::Run(wl, RunMode::kScalar, cfg);
  std::printf("%-14s %12s %9s %9s %10s %8s\n", "system", "cycles", "speedup",
              "instrs", "energy", "output");
  for (const RunMode mode : {RunMode::kScalar, RunMode::kAutoVec,
                             RunMode::kHandVec, RunMode::kDsa}) {
    const dsa::sim::RunResult r = dsa::sim::Run(wl, mode, cfg);
    std::printf("%-14s %12llu %8.2fx %9llu %10.1f %8s\n",
                std::string(ToString(mode)).c_str(),
                static_cast<unsigned long long>(r.cycles),
                dsa::sim::SpeedupOver(base, r),
                static_cast<unsigned long long>(r.cpu.retired_total),
                r.energy.total(), r.output_ok ? "OK" : "MISMATCH");
    if (r.dsa.has_value()) {
      std::printf("  DSA: %llu takeovers (%llu cache hits), %llu vectorized "
                  "iterations, detection latency %.2f%% of runtime\n",
                  static_cast<unsigned long long>(r.dsa->takeovers),
                  static_cast<unsigned long long>(r.dsa->cache_hit_takeovers),
                  static_cast<unsigned long long>(r.dsa->vectorized_iterations),
                  r.detection_latency_pct());
    }
  }
  return 0;
}
