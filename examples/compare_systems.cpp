// Runs the full DATE benchmark set on all four systems (Table 4) and prints
// the Fig. 8-style comparison plus functional verification — the "does the
// whole reproduction hang together" tour. The matrix goes through the
// parallel BatchRunner, so on top of the per-run golden checks the
// differential oracle cross-checks every mode's output buffers against the
// scalar execution and every run for determinism.
//
//   $ ./examples/compare_systems [--jobs N] [--json PATH] [--filter SUBSTR]
#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "workloads/workloads.h"

int main(int argc, char** argv) {
  const dsa::bench::BenchOptions opts = dsa::bench::ParseBenchArgs(argc, argv);
  const dsa::sim::SystemConfig cfg;

  dsa::sim::BatchRunner runner(opts.runner);
  struct Row {
    std::string name;
    std::array<std::string, 4> keys;  // scalar, autovec, handvec, dsa
  };
  std::vector<Row> rows;
  for (const dsa::sim::Workload& wl : dsa::workloads::Article3Set()) {
    if (!dsa::bench::KeepWorkload(opts, wl.name)) continue;
    rows.push_back(Row{wl.name, runner.SubmitMatrix(wl, cfg)});
  }

  bool all_ok = true;
  std::printf("%-12s | %12s | %8s %8s %8s | %s\n", "benchmark",
              "scalar cyc", "autovec", "handvec", "dsa", "outputs");
  for (const Row& row : rows) {
    const auto& base = runner.Result(row.keys[0]);
    const auto& av = runner.Result(row.keys[1]);
    const auto& hv = runner.Result(row.keys[2]);
    const auto& ds = runner.Result(row.keys[3]);
    const bool ok =
        base.output_ok && av.output_ok && hv.output_ok && ds.output_ok;
    all_ok = all_ok && ok;
    std::printf("%-12s | %12llu | %7.2fx %7.2fx %7.2fx | %s\n",
                row.name.c_str(),
                static_cast<unsigned long long>(base.cycles),
                SpeedupOver(base, av), SpeedupOver(base, hv),
                SpeedupOver(base, ds), ok ? "all OK" : "MISMATCH");
  }
  std::printf("\n%s\n", all_ok ? "All outputs verified against golden "
                                 "references."
                               : "FUNCTIONAL MISMATCH DETECTED");
  const int rc = dsa::bench::FinishBench(runner, opts, "compare_systems");
  return all_ok ? rc : 1;
}
