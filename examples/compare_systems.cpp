// Runs the full DATE benchmark set on all four systems (Table 4) and prints
// the Fig. 8-style comparison plus functional verification — the "does the
// whole reproduction hang together" tour.
//
//   $ ./examples/compare_systems
#include <cstdio>
#include <string>
#include <vector>

#include "sim/system.h"
#include "workloads/workloads.h"

int main() {
  using dsa::sim::RunMode;
  const dsa::sim::SystemConfig cfg;
  bool all_ok = true;

  std::printf("%-12s | %12s | %8s %8s %8s | %s\n", "benchmark",
              "scalar cyc", "autovec", "handvec", "dsa", "outputs");
  for (const dsa::sim::Workload& wl : dsa::workloads::Article3Set()) {
    const auto base = dsa::sim::Run(wl, RunMode::kScalar, cfg);
    const auto av = dsa::sim::Run(wl, RunMode::kAutoVec, cfg);
    const auto hv = dsa::sim::Run(wl, RunMode::kHandVec, cfg);
    const auto ds = dsa::sim::Run(wl, RunMode::kDsa, cfg);
    const bool ok =
        base.output_ok && av.output_ok && hv.output_ok && ds.output_ok;
    all_ok = all_ok && ok;
    std::printf("%-12s | %12llu | %7.2fx %7.2fx %7.2fx | %s\n",
                wl.name.c_str(), static_cast<unsigned long long>(base.cycles),
                SpeedupOver(base, av), SpeedupOver(base, hv),
                SpeedupOver(base, ds), ok ? "all OK" : "MISMATCH");
  }
  std::printf("\n%s\n", all_ok ? "All outputs verified against golden "
                                 "references."
                               : "FUNCTIONAL MISMATCH DETECTED");
  return all_ok ? 0 : 1;
}
