#include "neon/vector_unit.h"

#include <algorithm>

namespace dsa::neon {

using isa::Opcode;
using isa::VecType;

std::uint32_t QReg::Lane(VecType t, int lane) const {
  switch (t) {
    case VecType::kI8: return Lane8(lane);
    case VecType::kI16: return Lane16(lane);
    default: return Lane32(lane);
  }
}

void QReg::SetLane(VecType t, int lane, std::uint32_t v) {
  switch (t) {
    case VecType::kI8:
      SetLane8(lane, static_cast<std::uint8_t>(v));
      break;
    case VecType::kI16:
      SetLane16(lane, static_cast<std::uint16_t>(v));
      break;
    default:
      SetLane32(lane, v);
      break;
  }
}

namespace {

float AsFloat(std::uint32_t v) {
  float f;
  std::memcpy(&f, &v, 4);
  return f;
}

std::uint32_t AsBits(float f) {
  std::uint32_t v;
  std::memcpy(&v, &f, 4);
  return v;
}

std::uint32_t FloatLaneOp(Opcode op, std::uint32_t a, std::uint32_t b,
                          std::uint32_t acc) {
  const float fa = AsFloat(a);
  const float fb = AsFloat(b);
  switch (op) {
    case Opcode::kVadd: return AsBits(fa + fb);
    case Opcode::kVsub: return AsBits(fa - fb);
    case Opcode::kVmul: return AsBits(fa * fb);
    case Opcode::kVmla: return AsBits(AsFloat(acc) + fa * fb);
    case Opcode::kVmin: return AsBits(std::min(fa, fb));
    case Opcode::kVmax: return AsBits(std::max(fa, fb));
    case Opcode::kVcge: return fa >= fb ? 0xFFFFFFFFu : 0u;
    case Opcode::kVcgt: return fa > fb ? 0xFFFFFFFFu : 0u;
    case Opcode::kVceq: return fa == fb ? 0xFFFFFFFFu : 0u;
    case Opcode::kVand: return a & b;
    case Opcode::kVorr: return a | b;
    case Opcode::kVeor: return a ^ b;
    default: return 0;
  }
}

}  // namespace

namespace {

// Lane loops with the (op, type) dispatch hoisted out of the loop: each
// case body is a flat fixed-trip loop over typed lanes that the host
// compiler turns into a few SIMD instructions. Integer semantics are
// bit-identical to IntLaneOp's widen-compute-mask form (unsigned
// wraparound at lane width; signed compares via sign extension).
template <typename U, typename S>
QReg IntLanes(Opcode op, const QReg& qa, const QReg& qb, const QReg& qacc) {
  constexpr int kN = static_cast<int>(16 / sizeof(U));
  U a[kN], b[kN], c[kN], o[kN];
  std::memcpy(a, qa.bytes.data(), 16);
  std::memcpy(b, qb.bytes.data(), 16);
  std::memcpy(c, qacc.bytes.data(), 16);
  switch (op) {
    case Opcode::kVadd:
      for (int l = 0; l < kN; ++l) o[l] = static_cast<U>(a[l] + b[l]);
      break;
    case Opcode::kVsub:
      for (int l = 0; l < kN; ++l) o[l] = static_cast<U>(a[l] - b[l]);
      break;
    case Opcode::kVmul:
      for (int l = 0; l < kN; ++l) o[l] = static_cast<U>(a[l] * b[l]);
      break;
    case Opcode::kVmla:
      for (int l = 0; l < kN; ++l) o[l] = static_cast<U>(c[l] + a[l] * b[l]);
      break;
    case Opcode::kVmin:
      for (int l = 0; l < kN; ++l) {
        o[l] = static_cast<U>(
            std::min(static_cast<S>(a[l]), static_cast<S>(b[l])));
      }
      break;
    case Opcode::kVmax:
      for (int l = 0; l < kN; ++l) {
        o[l] = static_cast<U>(
            std::max(static_cast<S>(a[l]), static_cast<S>(b[l])));
      }
      break;
    case Opcode::kVand:
      for (int l = 0; l < kN; ++l) o[l] = a[l] & b[l];
      break;
    case Opcode::kVorr:
      for (int l = 0; l < kN; ++l) o[l] = a[l] | b[l];
      break;
    case Opcode::kVeor:
      for (int l = 0; l < kN; ++l) o[l] = a[l] ^ b[l];
      break;
    case Opcode::kVcge:
      for (int l = 0; l < kN; ++l) {
        o[l] = static_cast<S>(a[l]) >= static_cast<S>(b[l])
                   ? static_cast<U>(~U{0})
                   : U{0};
      }
      break;
    case Opcode::kVcgt:
      for (int l = 0; l < kN; ++l) {
        o[l] = static_cast<S>(a[l]) > static_cast<S>(b[l])
                   ? static_cast<U>(~U{0})
                   : U{0};
      }
      break;
    case Opcode::kVceq:
      for (int l = 0; l < kN; ++l) {
        o[l] = a[l] == b[l] ? static_cast<U>(~U{0}) : U{0};
      }
      break;
    default:
      for (int l = 0; l < kN; ++l) o[l] = 0;
      break;
  }
  QReg out;
  std::memcpy(out.bytes.data(), o, 16);
  return out;
}

// Float lanes keep the exact per-lane expressions of FloatLaneOp so the
// generated rounding/contraction behavior matches the reference path.
QReg FloatLanes(Opcode op, const QReg& qa, const QReg& qb, const QReg& qacc) {
  std::uint32_t a[4], b[4], c[4], o[4];
  std::memcpy(a, qa.bytes.data(), 16);
  std::memcpy(b, qb.bytes.data(), 16);
  std::memcpy(c, qacc.bytes.data(), 16);
  for (int l = 0; l < 4; ++l) o[l] = FloatLaneOp(op, a[l], b[l], c[l]);
  QReg out;
  std::memcpy(out.bytes.data(), o, 16);
  return out;
}

}  // namespace

QReg ExecuteLaneOp(Opcode op, VecType t, const QReg& a, const QReg& b,
                   const QReg& acc) {
  switch (t) {
    case VecType::kI8:
      return IntLanes<std::uint8_t, std::int8_t>(op, a, b, acc);
    case VecType::kI16:
      return IntLanes<std::uint16_t, std::int16_t>(op, a, b, acc);
    case VecType::kF32:
      return FloatLanes(op, a, b, acc);
    default:
      return IntLanes<std::uint32_t, std::int32_t>(op, a, b, acc);
  }
}

namespace {

// Same typed-loop shape as IntLanes; the narrowing cast reproduces the
// lane-mask truncation of the reference per-lane form.
template <typename U>
QReg ShiftLanes(Opcode op, const QReg& qa, std::int32_t amount) {
  constexpr int kN = static_cast<int>(16 / sizeof(U));
  U a[kN], o[kN];
  std::memcpy(a, qa.bytes.data(), 16);
  if (op == Opcode::kVshl) {
    for (int l = 0; l < kN; ++l) o[l] = static_cast<U>(a[l] << amount);
  } else {
    for (int l = 0; l < kN; ++l) o[l] = static_cast<U>(a[l] >> amount);
  }
  QReg out;
  std::memcpy(out.bytes.data(), o, 16);
  return out;
}

template <typename U>
QReg Splat(std::uint32_t v) {
  constexpr int kN = static_cast<int>(16 / sizeof(U));
  U o[kN];
  const U x = static_cast<U>(v);
  for (int l = 0; l < kN; ++l) o[l] = x;
  QReg out;
  std::memcpy(out.bytes.data(), o, 16);
  return out;
}

}  // namespace

QReg ExecuteShift(Opcode op, VecType t, const QReg& a, std::int32_t amount) {
  switch (t) {
    case VecType::kI8: return ShiftLanes<std::uint8_t>(op, a, amount);
    case VecType::kI16: return ShiftLanes<std::uint16_t>(op, a, amount);
    default: return ShiftLanes<std::uint32_t>(op, a, amount);
  }
}

QReg ExecuteBsl(const QReg& mask, const QReg& a, const QReg& b) {
  QReg out;
  for (int i = 0; i < 16; ++i) {
    out.bytes[i] = (mask.bytes[i] & a.bytes[i]) |
                   (static_cast<std::uint8_t>(~mask.bytes[i]) & b.bytes[i]);
  }
  return out;
}

QReg Broadcast(VecType t, std::uint32_t v) {
  switch (t) {
    case VecType::kI8: return Splat<std::uint8_t>(v);
    case VecType::kI16: return Splat<std::uint16_t>(v);
    default: return Splat<std::uint32_t>(v);
  }
}

std::optional<IssueBurst> BurstAggregator::Observe(Opcode op,
                                                   std::uint64_t cycle) {
  if (!isa::IsVector(op)) return Flush();
  if (!open_) {
    cur_ = IssueBurst{};
    open_ = true;
  }
  cur_.end_cycle = cycle;
  ++cur_.instrs;
  cur_.busy_cycles += timing_.LatencyOf(op);
  return std::nullopt;
}

std::optional<IssueBurst> BurstAggregator::Flush() {
  if (!open_) return std::nullopt;
  open_ = false;
  return cur_;
}

std::uint32_t NeonTiming::LatencyOf(Opcode op) const {
  switch (op) {
    case Opcode::kVmul:
    case Opcode::kVmla:
      return mul_latency;
    case Opcode::kVld1:
    case Opcode::kVst1:
    case Opcode::kVldLane:
    case Opcode::kVstLane:
      return mem_latency;
    case Opcode::kVmovToScalar:
    case Opcode::kVmovFromScalar:
      return lane_move;
    default:
      return alu_latency;
  }
}

}  // namespace dsa::neon
