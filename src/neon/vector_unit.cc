#include "neon/vector_unit.h"

#include <algorithm>

namespace dsa::neon {

using isa::Opcode;
using isa::VecType;

std::uint32_t QReg::Lane(VecType t, int lane) const {
  switch (t) {
    case VecType::kI8: return Lane8(lane);
    case VecType::kI16: return Lane16(lane);
    default: return Lane32(lane);
  }
}

void QReg::SetLane(VecType t, int lane, std::uint32_t v) {
  switch (t) {
    case VecType::kI8:
      SetLane8(lane, static_cast<std::uint8_t>(v));
      break;
    case VecType::kI16:
      SetLane16(lane, static_cast<std::uint16_t>(v));
      break;
    default:
      SetLane32(lane, v);
      break;
  }
}

namespace {

float AsFloat(std::uint32_t v) {
  float f;
  std::memcpy(&f, &v, 4);
  return f;
}

std::uint32_t AsBits(float f) {
  std::uint32_t v;
  std::memcpy(&v, &f, 4);
  return v;
}

// Sign-extends a lane value for signed comparisons / min / max.
std::int32_t SignExtend(VecType t, std::uint32_t v) {
  switch (t) {
    case VecType::kI8: return static_cast<std::int8_t>(v);
    case VecType::kI16: return static_cast<std::int16_t>(v);
    default: return static_cast<std::int32_t>(v);
  }
}

std::uint32_t LaneMask(VecType t) {
  switch (t) {
    case VecType::kI8: return 0xFFu;
    case VecType::kI16: return 0xFFFFu;
    default: return 0xFFFFFFFFu;
  }
}

std::uint32_t IntLaneOp(Opcode op, VecType t, std::uint32_t a, std::uint32_t b,
                        std::uint32_t acc) {
  const std::uint32_t mask = LaneMask(t);
  switch (op) {
    case Opcode::kVadd: return (a + b) & mask;
    case Opcode::kVsub: return (a - b) & mask;
    case Opcode::kVmul: return (a * b) & mask;
    case Opcode::kVmla: return (acc + a * b) & mask;
    case Opcode::kVmin:
      return static_cast<std::uint32_t>(
                 std::min(SignExtend(t, a), SignExtend(t, b))) &
             mask;
    case Opcode::kVmax:
      return static_cast<std::uint32_t>(
                 std::max(SignExtend(t, a), SignExtend(t, b))) &
             mask;
    case Opcode::kVand: return a & b;
    case Opcode::kVorr: return a | b;
    case Opcode::kVeor: return a ^ b;
    case Opcode::kVcge:
      return SignExtend(t, a) >= SignExtend(t, b) ? mask : 0u;
    case Opcode::kVcgt:
      return SignExtend(t, a) > SignExtend(t, b) ? mask : 0u;
    case Opcode::kVceq: return a == b ? mask : 0u;
    default: return 0;
  }
}

std::uint32_t FloatLaneOp(Opcode op, std::uint32_t a, std::uint32_t b,
                          std::uint32_t acc) {
  const float fa = AsFloat(a);
  const float fb = AsFloat(b);
  switch (op) {
    case Opcode::kVadd: return AsBits(fa + fb);
    case Opcode::kVsub: return AsBits(fa - fb);
    case Opcode::kVmul: return AsBits(fa * fb);
    case Opcode::kVmla: return AsBits(AsFloat(acc) + fa * fb);
    case Opcode::kVmin: return AsBits(std::min(fa, fb));
    case Opcode::kVmax: return AsBits(std::max(fa, fb));
    case Opcode::kVcge: return fa >= fb ? 0xFFFFFFFFu : 0u;
    case Opcode::kVcgt: return fa > fb ? 0xFFFFFFFFu : 0u;
    case Opcode::kVceq: return fa == fb ? 0xFFFFFFFFu : 0u;
    case Opcode::kVand: return a & b;
    case Opcode::kVorr: return a | b;
    case Opcode::kVeor: return a ^ b;
    default: return 0;
  }
}

}  // namespace

QReg ExecuteLaneOp(Opcode op, VecType t, const QReg& a, const QReg& b,
                   const QReg& acc) {
  QReg out;
  const int lanes = isa::LaneCount(t);
  for (int l = 0; l < lanes; ++l) {
    const std::uint32_t va = a.Lane(t, l);
    const std::uint32_t vb = b.Lane(t, l);
    const std::uint32_t vacc = acc.Lane(t, l);
    const std::uint32_t r = (t == VecType::kF32)
                                ? FloatLaneOp(op, va, vb, vacc)
                                : IntLaneOp(op, t, va, vb, vacc);
    out.SetLane(t, l, r);
  }
  return out;
}

QReg ExecuteShift(Opcode op, VecType t, const QReg& a, std::int32_t amount) {
  QReg out;
  const int lanes = isa::LaneCount(t);
  const std::uint32_t mask = LaneMask(t);
  for (int l = 0; l < lanes; ++l) {
    const std::uint32_t v = a.Lane(t, l);
    const std::uint32_t r =
        op == Opcode::kVshl ? (v << amount) & mask : (v & mask) >> amount;
    out.SetLane(t, l, r);
  }
  return out;
}

QReg ExecuteBsl(const QReg& mask, const QReg& a, const QReg& b) {
  QReg out;
  for (int i = 0; i < 16; ++i) {
    out.bytes[i] = (mask.bytes[i] & a.bytes[i]) |
                   (static_cast<std::uint8_t>(~mask.bytes[i]) & b.bytes[i]);
  }
  return out;
}

QReg Broadcast(VecType t, std::uint32_t v) {
  QReg out;
  const int lanes = isa::LaneCount(t);
  for (int l = 0; l < lanes; ++l) out.SetLane(t, l, v);
  return out;
}

std::optional<IssueBurst> BurstAggregator::Observe(Opcode op,
                                                   std::uint64_t cycle) {
  if (!isa::IsVector(op)) return Flush();
  if (!open_) {
    cur_ = IssueBurst{};
    open_ = true;
  }
  cur_.end_cycle = cycle;
  ++cur_.instrs;
  cur_.busy_cycles += timing_.LatencyOf(op);
  return std::nullopt;
}

std::optional<IssueBurst> BurstAggregator::Flush() {
  if (!open_) return std::nullopt;
  open_ = false;
  return cur_;
}

std::uint32_t NeonTiming::LatencyOf(Opcode op) const {
  switch (op) {
    case Opcode::kVmul:
    case Opcode::kVmla:
      return mul_latency;
    case Opcode::kVld1:
    case Opcode::kVst1:
    case Opcode::kVldLane:
    case Opcode::kVstLane:
      return mem_latency;
    case Opcode::kVmovToScalar:
    case Opcode::kVmovFromScalar:
      return lane_move;
    default:
      return alu_latency;
  }
}

}  // namespace dsa::neon
