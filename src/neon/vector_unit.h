// NEON-like 128-bit vector engine model: Q register file and typed lane
// arithmetic. Functionally exact (bit-level); timing is provided by
// NeonTiming and charged by the CPU timing model, mirroring the paper's
// separate 10-stage NEON pipeline with its own instruction/data queues.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <optional>

#include "isa/instruction.h"
#include "isa/opcode.h"

namespace dsa::neon {

// One 128-bit vector register.
struct QReg {
  std::array<std::uint8_t, 16> bytes{};

  [[nodiscard]] std::uint32_t Lane32(int lane) const {
    std::uint32_t v;
    std::memcpy(&v, &bytes[lane * 4], 4);
    return v;
  }
  void SetLane32(int lane, std::uint32_t v) {
    std::memcpy(&bytes[lane * 4], &v, 4);
  }
  [[nodiscard]] std::uint16_t Lane16(int lane) const {
    std::uint16_t v;
    std::memcpy(&v, &bytes[lane * 2], 2);
    return v;
  }
  void SetLane16(int lane, std::uint16_t v) {
    std::memcpy(&bytes[lane * 2], &v, 2);
  }
  [[nodiscard]] std::uint8_t Lane8(int lane) const { return bytes[lane]; }
  void SetLane8(int lane, std::uint8_t v) { bytes[lane] = v; }

  // Generic lane accessors dispatching on the lane type. Values are
  // exchanged as uint32 (narrow lanes are zero-extended / truncated).
  [[nodiscard]] std::uint32_t Lane(isa::VecType t, int lane) const;
  void SetLane(isa::VecType t, int lane, std::uint32_t v);

  bool operator==(const QReg&) const = default;
};

class VectorRegFile {
 public:
  [[nodiscard]] const QReg& q(int i) const { return regs_.at(i); }
  [[nodiscard]] QReg& q(int i) { return regs_.at(i); }
  void Reset() { regs_ = {}; }

 private:
  std::array<QReg, isa::kNumVecRegs> regs_{};
};

// Executes a register-to-register lane operation. `acc` is the accumulator
// input for kVmla (normally the old value of the destination).
[[nodiscard]] QReg ExecuteLaneOp(isa::Opcode op, isa::VecType t, const QReg& a,
                                 const QReg& b, const QReg& acc);

// Lane shift by immediate (kVshl / kVshr).
[[nodiscard]] QReg ExecuteShift(isa::Opcode op, isa::VecType t, const QReg& a,
                                std::int32_t amount);

// Bitwise select: (mask & a) | (~mask & b). Matches ARM VBSL with the mask
// pre-loaded in the destination register.
[[nodiscard]] QReg ExecuteBsl(const QReg& mask, const QReg& a, const QReg& b);

// Broadcast a scalar into all lanes.
[[nodiscard]] QReg Broadcast(isa::VecType t, std::uint32_t v);

// Per-operation issue latency of the NEON pipeline, in cycles. The paper's
// Cortex-A8-style engine is fully pipelined, so these are occupancy values;
// deep-pipeline fill is charged once per vectorized region by the CPU model.
struct NeonTiming {
  std::uint32_t alu_latency = 1;
  std::uint32_t mul_latency = 2;
  std::uint32_t mem_latency = 1;   // plus cache hierarchy latency
  std::uint32_t lane_move = 1;     // vmov to/from scalar, per lane
  std::uint32_t pipeline_fill = 10;  // charged when the engine is activated

  [[nodiscard]] std::uint32_t LatencyOf(isa::Opcode op) const;
};

// A maximal run of vector instructions uninterrupted by scalar work, as
// observed at retire. Feeds the tracer's NEON-burst track: explicit-SIMD
// binaries (autovec/handvec) surface their bursts from the retire stream,
// while DSA takeovers report theirs wholesale from the region cost model.
struct IssueBurst {
  std::uint64_t end_cycle = 0;    // cycle of the last issue in the burst
  std::uint64_t instrs = 0;
  std::uint64_t busy_cycles = 0;  // summed NeonTiming occupancy
};

class BurstAggregator {
 public:
  explicit BurstAggregator(const NeonTiming& timing) : timing_(timing) {}

  // Feeds one retired opcode at `cycle`. Vector opcodes extend the open
  // burst; a scalar opcode closes it and returns the completed burst.
  std::optional<IssueBurst> Observe(isa::Opcode op, std::uint64_t cycle);

  // Closes and returns the open burst, if any (end of run).
  std::optional<IssueBurst> Flush();

 private:
  NeonTiming timing_;  // by value: bursts outlive any timing-config scope
  IssueBurst cur_;
  bool open_ = false;
};

}  // namespace dsa::neon
