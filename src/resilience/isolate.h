// Process isolation for batch cells: executes one simulation in a forked
// child and ships the RunResult back over a CRC-checked, length-prefixed
// pipe, so a hard crash (SIGSEGV/SIGABRT), a runaway loop or an
// out-of-memory condition in one cell is classified into the DsaError
// taxonomy instead of killing the whole batch. Opt-in via --isolate
// (docs/RESILIENCE.md); on platforms without fork the supervisor falls
// back to in-process execution.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/system.h"

namespace dsa::resilience {

struct IsolateOptions {
  // Wall-clock deadline for the child; 0 = none. On expiry the child is
  // SIGKILLed and the cell throws DsaError{kDeadline} ("timeout" status).
  std::uint64_t deadline_ms = 0;
  // Address-space cap (RLIMIT_AS) applied inside the child; 0 = none.
  // Allocation failure beyond the cap surfaces as DsaError{kOutOfMemory}.
  // Do not combine with ASan/TSan builds — the sanitizers reserve huge
  // shadow mappings that an address-space cap would break.
  std::uint64_t mem_limit_mb = 0;
};

// True when fork-based isolation is available on this platform.
[[nodiscard]] bool IsolationAvailable();

// Runs `fn` in a forked child and returns its result. `label` names the
// cell in error messages. Throws sim::DsaError with code:
//   kCrash       — child died on a signal or exited without a result
//   kDeadline    — deadline_ms exceeded (child SIGKILLed)
//   kOutOfMemory — child reported allocation failure under its cap
// or rethrows the child's own DsaError (code + message preserved) when
// the simulation itself failed deterministically.
//
// Note: the child's structured trace (RunResult::trace) is not carried
// across the pipe — isolated runs report trace aggregates as absent.
[[nodiscard]] sim::RunResult RunIsolated(
    const std::function<sim::RunResult()>& fn, const IsolateOptions& opts,
    const std::string& label);

}  // namespace dsa::resilience
