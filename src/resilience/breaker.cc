#include "resilience/breaker.h"

namespace dsa::resilience {

bool CircuitBreaker::Allow(const std::string& workload) {
  if (threshold_ <= 0) return true;
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[workload];
  switch (e.state) {
    case State::kClosed:
      return true;
    case State::kHalfOpen:
      // Exactly one probe at a time; concurrent siblings skip until the
      // probe's verdict arrives.
      if (e.probe_in_flight) {
        ++e.skipped;
        return false;
      }
      e.probe_in_flight = true;
      return true;
    case State::kOpen:
      ++e.skipped;
      if (++e.open_skips >= probe_after_) {
        e.state = State::kHalfOpen;
        e.open_skips = 0;
      }
      return false;
  }
  return true;
}

void CircuitBreaker::Record(const std::string& workload, bool success) {
  if (threshold_ <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[workload];
  const bool was_probe = e.state == State::kHalfOpen && e.probe_in_flight;
  e.probe_in_flight = false;
  if (success) {
    e.state = State::kClosed;
    e.consecutive_failures = 0;
    return;
  }
  if (was_probe) {
    // The probe failed: straight back to open, another trip.
    e.state = State::kOpen;
    e.open_skips = 0;
    ++e.trips;
    return;
  }
  if (++e.consecutive_failures >= threshold_ && e.state == State::kClosed) {
    e.state = State::kOpen;
    e.open_skips = 0;
    ++e.trips;
  }
}

std::vector<sim::BreakerCensusEntry> CircuitBreaker::Census() const {
  std::vector<sim::BreakerCensusEntry> census;
  std::lock_guard<std::mutex> lock(mu_);
  census.reserve(entries_.size());
  for (const auto& [workload, e] : entries_) {
    sim::BreakerCensusEntry out;
    out.workload = workload;
    out.state = std::string(ToString(e.state));
    out.failures = static_cast<std::uint64_t>(e.consecutive_failures);
    out.trips = e.trips;
    out.skipped = e.skipped;
    census.push_back(std::move(out));
  }
  return census;
}

}  // namespace dsa::resilience
