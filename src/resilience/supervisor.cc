#include "resilience/supervisor.h"

#include <csignal>
#include <cstdlib>
#include <utility>

#include "sim/error.h"
#include "sim/system.h"

namespace dsa::resilience {

namespace {

std::atomic<bool> g_drain{false};

#if defined(__unix__) || defined(__APPLE__)
extern "C" void DrainSignalHandler(int /*sig*/) {
  // Async-signal-safe: an atomic store plus fsync of registered fds.
  g_drain.store(true, std::memory_order_relaxed);
  FlushAllJournals();
}
#endif

void InstallAbnormalExitFlush() {
  static bool installed = false;
  if (installed) return;
  installed = true;
  // quick_exit skips destructors, so the journal's own Close() never
  // runs — flush from the quick-exit path too.
  (void)std::at_quick_exit(&FlushAllJournals);
}

}  // namespace

void InstallDrainHandler() {
#if defined(__unix__) || defined(__APPLE__)
  static bool installed = false;
  if (installed) return;
  installed = true;
  struct sigaction sa = {};
  sa.sa_handler = &DrainSignalHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  (void)::sigaction(SIGINT, &sa, nullptr);
  (void)::sigaction(SIGTERM, &sa, nullptr);
#endif
}

Supervisor::Supervisor(SupervisorOptions opts)
    : opts_(std::move(opts)),
      breaker_(opts_.breaker_threshold, opts_.breaker_probe_after) {}

bool Supervisor::Init(std::string* error) {
  if (!opts_.resume_path.empty()) {
    if (!ReplayJournal(opts_.resume_path, replay_, error)) return false;
  }
  if (!opts_.journal_path.empty()) {
    if (!journal_.Open(opts_.journal_path, opts_.journal, error)) return false;
  }
  return true;
}

void Supervisor::Attach(sim::RunnerOptions& ro) {
  InstallAbnormalExitFlush();
  if (opts_.install_signal_drain) InstallDrainHandler();
  ro.drain = &g_drain;

  // Wrap whatever run function the driver installed (sim::Run when none)
  // with the breaker gate and, when requested, the forked-child sandbox.
  auto inner = ro.run_fn;
  if (!inner) {
    inner = [](const sim::Workload& wl, sim::RunMode mode,
               const sim::SystemConfig& cfg) { return sim::Run(wl, mode, cfg); };
  }
  const bool isolate = opts_.isolate && IsolationAvailable();
  IsolateOptions iso;
  iso.deadline_ms = opts_.deadline_ms;
  iso.mem_limit_mb = opts_.mem_limit_mb;
  ro.run_fn = [this, inner, isolate, iso](const sim::Workload& wl,
                                          sim::RunMode mode,
                                          const sim::SystemConfig& cfg) {
    if (breaker_.enabled() && !breaker_.Allow(wl.name)) {
      throw sim::DsaError(sim::DsaErrorCode::kBreakerOpen,
                          "circuit breaker open for workload '" + wl.name +
                              "'");
    }
    try {
      sim::RunResult r =
          isolate ? RunIsolated([&] { return inner(wl, mode, cfg); }, iso,
                                wl.name + "@" + std::string(ToString(mode)))
                  : inner(wl, mode, cfg);
      breaker_.Record(wl.name, /*success=*/true);
      return r;
    } catch (...) {
      // Every failure reaches the breaker, not just sim::DsaError: an
      // exception escaping the cell any other way (bad_alloc in-process,
      // a test seam throwing std::runtime_error) used to skip Record —
      // and when the failed cell was a half-open probe, that wedged
      // probe_in_flight forever: the breaker never re-opened and every
      // sibling was skipped with no path back to closed.
      breaker_.Record(wl.name, /*success=*/false);
      throw;
    }
  };

  if (!replay_.cells.empty()) {
    ro.restore_fn = [this](const std::string& key, sim::JobOutcome& out) {
      const auto it = replay_.cells.find(key);
      if (it == replay_.cells.end()) return false;
      out = it->second;
      return true;
    };
  }
  if (journal_.open()) {
    ro.on_outcome = [this](const sim::JobOutcome& out) {
      // Only completed cells are worth replaying; failed cells should
      // re-execute on resume (the fault may have been environmental).
      if (out.cell_status == "ok" && !out.restored) journal_.Append(out);
    };
  }
}

sim::BenchJsonExtras Supervisor::Extras(const sim::BatchReport& report) const {
  sim::BenchJsonExtras extras;
  extras.run_status =
      (report.interrupted || DrainRequested()) ? "interrupted" : "complete";
  extras.breaker_enabled = breaker_.enabled();
  if (breaker_.enabled()) extras.breaker = breaker_.Census();
  if (journal_.open() || !opts_.journal_path.empty() ||
      !opts_.resume_path.empty()) {
    // A resume-only run (--resume without --journal) still reports the
    // journal it restored from, so restored_cells always has provenance.
    extras.journal_path = !opts_.journal_path.empty() ? opts_.journal_path
                                                      : opts_.resume_path;
    extras.journal_restored = report.restored_cells;
    extras.journal_appended = journal_.appended();
    extras.journal_write_failures = journal_.write_failures();
    extras.journal_fsync_failures = journal_.fsync_failures();
  }
  return extras;
}

std::atomic<bool>& Supervisor::DrainFlag() { return g_drain; }

bool Supervisor::DrainRequested() {
  return g_drain.load(std::memory_order_relaxed);
}

}  // namespace dsa::resilience
