// Crash-safe run journal: an append-only, CRC-framed JSONL file recording
// every completed cell of a batch (key, output digest, full deterministic
// stats). A killed run resumes by replaying the journal — completed cells
// are restored into the BatchRunner without re-executing, and the merged
// bench report is bit-identical (per-cell digests and stats) to an
// uninterrupted run. Format, fsync policy and the torn-tail truncation
// rules are documented in docs/RESILIENCE.md.
//
// Framing: each line is `CCCCCCCC <json>\n` where CCCCCCCC is the
// lowercase CRC-32 (IEEE, zlib polynomial) of the JSON payload bytes in
// hex. A record is valid only if its line is complete (trailing newline
// present), its CRC matches and its payload parses; replay stops at the
// first invalid record and reports everything after it as the torn tail.
// Opening a journal for append truncates the torn tail first, so a crash
// mid-append can never corrupt records written after resume.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "sim/runner.h"

namespace dsa::resilience {

// When to fsync the journal fd. kInterval is the default: durable enough
// for a soak run (at most interval-1 cells replay after a power cut)
// without paying a disk sync per cell.
enum class FsyncPolicy { kNone, kInterval, kAlways };

[[nodiscard]] bool ParseFsyncPolicy(const std::string& name, FsyncPolicy& out);
[[nodiscard]] std::string_view ToString(FsyncPolicy p);

struct JournalOptions {
  FsyncPolicy fsync = FsyncPolicy::kInterval;
  int fsync_interval = 8;  // records between fsyncs under kInterval
};

// CRC-32 (IEEE 802.3, reflected 0xEDB88320) over `len` bytes.
[[nodiscard]] std::uint32_t Crc32(const void* data, std::size_t len);

// One journaled cell, fully round-trippable: SerializeOutcome emits the
// JSON payload, ParseOutcomeRecord rebuilds an equivalent JobOutcome
// (the canonical run replicated `runs` times so the determinism oracle
// sees the recorded sample count).
[[nodiscard]] std::string SerializeOutcome(const sim::JobOutcome& out);
[[nodiscard]] bool ParseOutcomePayload(const std::string& payload,
                                       std::string& key,
                                       sim::JobOutcome& out);

// One RunResult as compact JSON — the deterministic fields only (the
// trace pointer is not carried; host wall time is carried but marked
// volatile everywhere it is consumed). Shared by the journal records and
// the isolation pipe protocol (isolate.h).
[[nodiscard]] std::string SerializeRunResult(const sim::RunResult& r);
[[nodiscard]] bool ParseRunResult(const std::string& payload,
                                  sim::RunResult& r);

struct ReplayResult {
  // Completed cells by job key (last record wins on duplicates).
  std::map<std::string, sim::JobOutcome> cells;
  std::uint64_t records = 0;     // valid records, including the header
  std::uint64_t duplicates = 0;  // keys journaled more than once
  std::uint64_t valid_bytes = 0; // length of the valid prefix
  std::uint64_t torn_bytes = 0;  // bytes dropped after the valid prefix
};

// Replays `path`. A missing file is not an error (empty ReplayResult);
// an unreadable file or a bad header returns false with `error` filled.
[[nodiscard]] bool ReplayJournal(const std::string& path, ReplayResult& out,
                                 std::string* error = nullptr);

class Journal {
 public:
  Journal() = default;
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  // Opens `path` for appending: scans any existing content, truncates a
  // torn tail, and writes the header record if the file is empty. The fd
  // is registered for the signal-safe flush path (FlushAllJournals).
  [[nodiscard]] bool Open(const std::string& path, const JournalOptions& opts,
                          std::string* error = nullptr);

  // Serializes and appends one completed cell (thread-safe; the runner's
  // on_outcome hook calls this from worker threads). Only call for cells
  // worth replaying — the supervisor journals cell_status == "ok" only.
  void Append(const sim::JobOutcome& out);

  void Flush();  // fsync now, regardless of policy
  void Close();

  [[nodiscard]] bool open() const { return fd_ >= 0; }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t appended() const;
  // Host-I/O failures observed while appending (write(2) could not land
  // a record; fsync(2) refused durability). Non-zero means the journal
  // may be missing records or lagging the disk — surfaced as a typed
  // [io-fault] warning in the bench JSON journal census instead of being
  // silently swallowed.
  [[nodiscard]] std::uint64_t write_failures() const;
  [[nodiscard]] std::uint64_t fsync_failures() const;

 private:
  void AppendLine(const std::string& payload);  // caller holds mu_

  mutable std::mutex mu_;
  std::string path_;
  JournalOptions opts_;
  int fd_ = -1;
  std::uint64_t appended_ = 0;
  std::uint64_t write_failures_ = 0;
  std::uint64_t fsync_failures_ = 0;
  int since_fsync_ = 0;
};

// fsyncs every open journal in the process. Async-signal-safe (fsync on a
// registered fd table, no locks, no allocation) — the graceful-drain
// signal handler and std::at_quick_exit both route through this so an
// abnormal exit never loses buffered records (satellite: flush on
// abnormal exit paths).
void FlushAllJournals();

}  // namespace dsa::resilience
