// Deterministic host-I/O fault layer (docs/FAULTS.md): an injectable
// shim over write/fsync/rename/open with the same seeded plan grammar as
// the microarchitectural injector (src/fault/fault.h). A plan arms
// faults by kind + per-kind opportunity index, every fire decision is a
// pure function of {plan, opportunity index}, and the same (seed, plan)
// reproduces the same injected fault sequence byte-for-byte — which is
// what lets the serve soak gate assert that a daemon degrades *typed*
// under disk-full/flaky-filesystem conditions instead of silently
// claiming durability.
//
// Unlike the per-run FaultInjector, this injector is process-global and
// thread-safe: the journal appends from worker threads and the result
// cache stores concurrently, and all of them must draw opportunities
// from one deterministic sequence. When no plan is installed the shims
// are a single relaxed atomic load away from the raw syscall.
//
// Injection sites (one opportunity per shim call, per kind):
//   IoWrite  -> enospc (ENOSPC), eio (EIO), short-write (partial write)
//   IoFsync  -> fsync-fail (EIO)
//   IoRename -> rename-fail (EIO)
//   IoOpen   -> open-fail (EMFILE)
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include <sys/types.h>

namespace dsa::resilience {

// Stable io-fault kind IDs (census arrays are indexed by value; append
// only).
enum class IoFaultKind : std::uint8_t {
  kEnospc = 0,      // write(2) fails with ENOSPC — disk full
  kEio = 1,         // write(2) fails with EIO — flaky medium
  kShortWrite = 2,  // write(2) makes partial progress (1..n-1 bytes)
  kFsyncFail = 3,   // fsync(2) fails with EIO — durability lost
  kRenameFail = 4,  // rename(2) fails with EIO — atomic publish lost
  kOpenFail = 5,    // open(2) fails with EMFILE — fd exhaustion
};
inline constexpr int kNumIoFaultKinds = 6;

[[nodiscard]] std::string_view ToString(IoFaultKind k);
// Parses a kind token ("enospc", "eio", "short-write", "fsync-fail",
// "rename-fail", "open-fail"); returns false on an unknown token.
[[nodiscard]] bool ParseIoFaultKind(std::string_view token, IoFaultKind& out);

// One armed fault: fire on opportunities [trigger, trigger + count) of
// its kind. Opportunities are counted per kind, starting at 0.
struct IoFaultSpec {
  IoFaultKind kind = IoFaultKind::kEnospc;
  std::uint64_t trigger = 0;
  std::uint64_t count = 1;  // UINT64_MAX ("+" in the grammar) = every one
};

struct IoFaultPlan {
  std::vector<IoFaultSpec> specs;
  std::uint64_t seed = 0;
  bool seed_explicit = false;  // ";seed=N" was present in the spec string

  [[nodiscard]] bool enabled() const { return !specs.empty(); }
};

// Parses the --io-faults grammar (docs/FAULTS.md) — the same shape as
// --faults:
//   plan  := entry ("," entry)* (";seed=" uint)?
//   entry := kind "@" trigger ["+" [count]]
// e.g. "enospc@0", "fsync-fail@0+", "short-write@2+3;seed=42".
// Throws std::invalid_argument with a pointed message on bad input.
[[nodiscard]] IoFaultPlan ParseIoFaultPlan(const std::string& spec);

// Inverse of ParseIoFaultPlan (canonical form; round-trips).
[[nodiscard]] std::string FormatIoFaultPlan(const IoFaultPlan& plan);

// Per-kind opportunity/fired census of the installed injector since the
// last InstallIoFaultPlan.
struct IoFaultCensus {
  std::array<std::uint64_t, kNumIoFaultKinds> opportunities{};
  std::array<std::uint64_t, kNumIoFaultKinds> fired{};

  [[nodiscard]] std::uint64_t total_fired() const {
    std::uint64_t n = 0;
    for (const std::uint64_t f : fired) n += f;
    return n;
  }
};

// Installs `plan` as the process-global injector and resets the census.
// An empty plan deactivates injection (same as ClearIoFaultPlan).
void InstallIoFaultPlan(const IoFaultPlan& plan);
void ClearIoFaultPlan();
[[nodiscard]] bool IoFaultsActive();
[[nodiscard]] IoFaultPlan CurrentIoFaultPlan();
[[nodiscard]] IoFaultCensus GetIoFaultCensus();

// The shims. Passthrough to the raw syscall when no plan is active; with
// a plan installed, each call registers one opportunity per kind wired
// to its site and fails (or shortens) deterministically when armed.
// Errno is set exactly as the real syscall would set it.
[[nodiscard]] ssize_t IoWrite(int fd, const void* buf, std::size_t count);
[[nodiscard]] int IoFsync(int fd);
[[nodiscard]] int IoRename(const char* from, const char* to);
[[nodiscard]] int IoOpen(const char* path, int flags, unsigned mode);

}  // namespace dsa::resilience
