// Per-workload circuit breaker for the batch runner: after `threshold`
// consecutive cell failures of one workload the breaker opens and
// fails-fast that workload's remaining cells (cell_status "skipped"),
// protecting a long sweep's wall clock from a workload that crashes or
// times out on every attempt. After `probe_after` skipped cells the
// breaker goes half-open and lets exactly one probe through: success
// closes it again, failure re-opens it. Counting is deterministic (no
// wall-clock cooldowns) so a resumed sweep behaves identically to an
// uninterrupted one. Complements the per-cell step-budget watchdog and
// wall-clock deadline (docs/RESILIENCE.md).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sim/runner.h"

namespace dsa::resilience {

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  // threshold <= 0 disables the breaker entirely (Allow always passes).
  CircuitBreaker(int threshold, int probe_after)
      : threshold_(threshold), probe_after_(probe_after) {}

  // Returns true when a cell of `workload` may execute. When it returns
  // false the cell must be failed fast with DsaError{kBreakerOpen}.
  // A true return from the open->half-open transition admits the probe.
  [[nodiscard]] bool Allow(const std::string& workload);

  // Reports the outcome of an executed (admitted) cell.
  void Record(const std::string& workload, bool success);

  [[nodiscard]] bool enabled() const { return threshold_ > 0; }

  // Census for the bench JSON `breaker` block (one entry per workload
  // that executed at least one cell).
  [[nodiscard]] std::vector<sim::BreakerCensusEntry> Census() const;

  [[nodiscard]] static std::string_view ToString(State s) {
    switch (s) {
      case State::kClosed: return "closed";
      case State::kOpen: return "open";
      case State::kHalfOpen: return "half-open";
    }
    return "?";
  }

 private:
  struct Entry {
    State state = State::kClosed;
    int consecutive_failures = 0;
    std::uint64_t trips = 0;    // closed/half-open -> open transitions
    std::uint64_t skipped = 0;  // cells refused while open
    int open_skips = 0;         // skips since the breaker last opened
    bool probe_in_flight = false;
  };

  int threshold_;
  int probe_after_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace dsa::resilience
