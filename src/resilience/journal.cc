#include "resilience/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "resilience/iofault.h"
#include "resilience/mini_json.h"

namespace dsa::resilience {

namespace {

constexpr const char kJournalSchema[] = "dsa-journal/1";

// ---------------------------------------------------------------------------
// Signal-safe fd registry: a fixed table of open journal fds so a signal
// handler can fsync them without locks or allocation.

constexpr int kMaxJournals = 16;
std::atomic<int> g_journal_fds[kMaxJournals];
std::atomic<bool> g_registry_init{false};

void InitRegistryOnce() {
  bool expected = false;
  if (g_registry_init.compare_exchange_strong(expected, true)) {
    for (auto& slot : g_journal_fds) slot.store(-1, std::memory_order_relaxed);
  }
}

void RegisterFd(int fd) {
  InitRegistryOnce();
  for (auto& slot : g_journal_fds) {
    int expected = -1;
    if (slot.compare_exchange_strong(expected, fd)) return;
  }
}

void DeregisterFd(int fd) {
  if (!g_registry_init.load()) return;
  for (auto& slot : g_journal_fds) {
    int expected = fd;
    if (slot.compare_exchange_strong(expected, -1)) return;
  }
}

// ---------------------------------------------------------------------------
// Serialization helpers (append-to-string writers; the reader side is
// mini_json).

void PutU64(std::string& s, const char* key, std::uint64_t v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64 ",", key, v);
  s += buf;
}

void PutDbl(std::string& s, const char* key, double v) {
  // %.17g round-trips an IEEE double exactly through strtod.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.17g,", key, v);
  s += buf;
}

void PutStr(std::string& s, const char* key, const std::string& v) {
  s += '"';
  s += key;
  s += "\":\"";
  s += JsonEscape(v);
  s += "\",";
}

void PutBool(std::string& s, const char* key, bool v) {
  s += '"';
  s += key;
  s += v ? "\":true," : "\":false,";
}

void CloseObj(std::string& s) {
  if (!s.empty() && s.back() == ',') s.back() = '}';
  else s += '}';
}

template <typename Array>
void PutU64Array(std::string& s, const char* key, const Array& a) {
  s += '"';
  s += key;
  s += "\":[";
  bool first = true;
  for (const std::uint64_t v : a) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%s%" PRIu64, first ? "" : ",", v);
    s += buf;
    first = false;
  }
  s += "],";
}

template <typename Map>
void PutEnumMap(std::string& s, const char* key, const Map& m) {
  // Enum-keyed counters as [[numeric_key, count], ...] so the reader
  // never needs per-enum string parsers.
  s += '"';
  s += key;
  s += "\":[";
  bool first = true;
  for (const auto& [k, v] : m) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%s[%d,%" PRIu64 "]", first ? "" : ",",
                  static_cast<int>(k), v);
    s += buf;
    first = false;
  }
  s += "],";
}

void SerializeResult(std::string& s, const sim::RunResult& r) {
  s += '{';
  PutStr(s, "workload", r.workload);
  PutU64(s, "mode", static_cast<std::uint64_t>(r.mode));
  PutBool(s, "output_ok", r.output_ok);
  PutU64(s, "cycles", r.cycles);
  const std::uint64_t cpu[] = {
      r.cpu.retired_total,    r.cpu.retired_scalar, r.cpu.retired_vector,
      r.cpu.mem_reads,        r.cpu.mem_writes,     r.cpu.branches,
      r.cpu.mispredicts,      r.cpu.issue_slots,    r.cpu.mem_stall_cycles,
      r.cpu.other_stall_cycles, r.cpu.neon_busy_cycles,
      r.cpu.dsa_overhead_cycles};
  PutU64Array(s, "cpu", cpu);
  const std::uint64_t l1[] = {r.l1.hits, r.l1.misses};
  const std::uint64_t l2[] = {r.l2.hits, r.l2.misses};
  PutU64Array(s, "l1", l1);
  PutU64Array(s, "l2", l2);
  PutU64(s, "dram", r.dram_accesses);
  const double energy[] = {r.energy.core_dynamic, r.energy.core_static,
                           r.energy.neon_dynamic, r.energy.neon_static,
                           r.energy.cache_dram,   r.energy.dsa_dynamic,
                           r.energy.dsa_static};
  s += "\"energy\":[";
  for (int i = 0; i < 7; ++i) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%s%.17g", i == 0 ? "" : ",", energy[i]);
    s += buf;
  }
  s += "],";
  {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "\"digest\":\"0x%016" PRIx64 "\",",
                  r.output_digest);
    s += buf;
  }
  PutU64(s, "host_steps", r.host_steps);
  PutDbl(s, "host_wall_ms", r.host_wall_ms);
  if (r.dsa.has_value()) {
    const engine::DsaStats& d = *r.dsa;
    s += "\"dsa\":{";
    const std::uint64_t counters[] = {
        d.analysis_cycles,        d.observed_instructions,
        d.takeovers,              d.cache_hit_takeovers,
        d.fusions_formed,         d.fusion_demotions,
        d.sentinel_respeculations, d.vectorized_iterations,
        d.scalar_covered_instrs,  d.vector_instrs_issued,
        d.array_map_accesses,     d.vc_accesses,
        d.dsa_cache_accesses,     d.rollbacks,
        d.blacklisted_loops,      d.cache_corruptions_detected};
    PutU64Array(s, "counters", counters);
    PutU64Array(s, "stages", d.stage_activations);
    PutEnumMap(s, "loops", d.loops_by_class);
    PutEnumMap(s, "entries", d.entries_by_class);
    PutEnumMap(s, "rejects", d.rejects_by_reason);
    CloseObj(s);
    s += ',';
  }
  if (r.faults.has_value()) {
    const fault::FaultReport& fr = *r.faults;
    s += "\"faults\":{";
    PutStr(s, "plan", fault::FormatFaultPlan(fr.plan));
    PutU64Array(s, "opportunities", fr.opportunities);
    PutU64Array(s, "fired", fr.fired);
    CloseObj(s);
    s += ',';
  }
  CloseObj(s);
}

template <typename Array>
bool ReadU64Array(const JsonValue* v, Array& out, std::size_t expect) {
  if (v == nullptr || !v->is_array() || v->array.size() != expect) {
    return false;
  }
  for (std::size_t i = 0; i < expect; ++i) out[i] = v->array[i].AsU64();
  return true;
}

template <typename Map>
bool ReadEnumMap(const JsonValue* v, Map& out) {
  if (v == nullptr || !v->is_array()) return false;
  for (const JsonValue& pair : v->array) {
    if (!pair.is_array() || pair.array.size() != 2) return false;
    using Key = typename Map::key_type;
    out[static_cast<Key>(pair.array[0].AsI64())] = pair.array[1].AsU64();
  }
  return true;
}

bool ParseResult(const JsonValue& j, sim::RunResult& r) {
  if (!j.is_object()) return false;
  const JsonValue* wl = j.Find("workload");
  if (wl == nullptr || !wl->is_string()) return false;
  r.workload = wl->AsString();
  const JsonValue* mode = j.Find("mode");
  if (mode == nullptr) return false;
  r.mode = static_cast<sim::RunMode>(mode->AsU64());
  const JsonValue* ok = j.Find("output_ok");
  if (ok == nullptr) return false;
  r.output_ok = ok->AsBool();
  const JsonValue* cycles = j.Find("cycles");
  if (cycles == nullptr) return false;
  r.cycles = cycles->AsU64();

  std::uint64_t cpu[12];
  if (!ReadU64Array(j.Find("cpu"), cpu, 12)) return false;
  r.cpu.retired_total = cpu[0];
  r.cpu.retired_scalar = cpu[1];
  r.cpu.retired_vector = cpu[2];
  r.cpu.mem_reads = cpu[3];
  r.cpu.mem_writes = cpu[4];
  r.cpu.branches = cpu[5];
  r.cpu.mispredicts = cpu[6];
  r.cpu.issue_slots = cpu[7];
  r.cpu.mem_stall_cycles = cpu[8];
  r.cpu.other_stall_cycles = cpu[9];
  r.cpu.neon_busy_cycles = cpu[10];
  r.cpu.dsa_overhead_cycles = cpu[11];

  std::uint64_t l1[2];
  std::uint64_t l2[2];
  if (!ReadU64Array(j.Find("l1"), l1, 2)) return false;
  if (!ReadU64Array(j.Find("l2"), l2, 2)) return false;
  r.l1.hits = l1[0];
  r.l1.misses = l1[1];
  r.l2.hits = l2[0];
  r.l2.misses = l2[1];
  const JsonValue* dram = j.Find("dram");
  if (dram == nullptr) return false;
  r.dram_accesses = dram->AsU64();

  const JsonValue* energy = j.Find("energy");
  if (energy == nullptr || !energy->is_array() || energy->array.size() != 7) {
    return false;
  }
  r.energy.core_dynamic = energy->array[0].AsDouble();
  r.energy.core_static = energy->array[1].AsDouble();
  r.energy.neon_dynamic = energy->array[2].AsDouble();
  r.energy.neon_static = energy->array[3].AsDouble();
  r.energy.cache_dram = energy->array[4].AsDouble();
  r.energy.dsa_dynamic = energy->array[5].AsDouble();
  r.energy.dsa_static = energy->array[6].AsDouble();

  const JsonValue* digest = j.Find("digest");
  if (digest == nullptr || !digest->is_string()) return false;
  r.output_digest =
      std::strtoull(digest->AsString().c_str(), nullptr, 16);
  const JsonValue* steps = j.Find("host_steps");
  if (steps != nullptr) r.host_steps = steps->AsU64();
  const JsonValue* hw = j.Find("host_wall_ms");
  if (hw != nullptr) r.host_wall_ms = hw->AsDouble();

  if (const JsonValue* dsa = j.Find("dsa"); dsa != nullptr) {
    engine::DsaStats d;
    std::uint64_t counters[16];
    if (!ReadU64Array(dsa->Find("counters"), counters, 16)) return false;
    d.analysis_cycles = counters[0];
    d.observed_instructions = counters[1];
    d.takeovers = counters[2];
    d.cache_hit_takeovers = counters[3];
    d.fusions_formed = counters[4];
    d.fusion_demotions = counters[5];
    d.sentinel_respeculations = counters[6];
    d.vectorized_iterations = counters[7];
    d.scalar_covered_instrs = counters[8];
    d.vector_instrs_issued = counters[9];
    d.array_map_accesses = counters[10];
    d.vc_accesses = counters[11];
    d.dsa_cache_accesses = counters[12];
    d.rollbacks = counters[13];
    d.blacklisted_loops = counters[14];
    d.cache_corruptions_detected = counters[15];
    if (!ReadU64Array(dsa->Find("stages"), d.stage_activations,
                      engine::kNumStages)) {
      return false;
    }
    if (!ReadEnumMap(dsa->Find("loops"), d.loops_by_class)) return false;
    if (!ReadEnumMap(dsa->Find("entries"), d.entries_by_class)) return false;
    if (!ReadEnumMap(dsa->Find("rejects"), d.rejects_by_reason)) return false;
    r.dsa = d;
  }
  if (const JsonValue* faults = j.Find("faults"); faults != nullptr) {
    fault::FaultReport fr;
    const JsonValue* plan = faults->Find("plan");
    if (plan == nullptr || !plan->is_string()) return false;
    try {
      fr.plan = fault::ParseFaultPlan(plan->AsString());
    } catch (const std::invalid_argument&) {
      return false;
    }
    if (!ReadU64Array(faults->Find("opportunities"), fr.opportunities,
                      fault::kNumFaultKinds)) {
      return false;
    }
    if (!ReadU64Array(faults->Find("fired"), fr.fired,
                      fault::kNumFaultKinds)) {
      return false;
    }
    r.faults = fr;
  }
  return true;
}

// Validates one framed line (without its trailing newline). Returns true
// and fills `payload` when the CRC matches.
bool CheckFrame(std::string_view line, std::string& payload) {
  if (line.size() < 10 || line[8] != ' ') return false;
  std::uint32_t crc = 0;
  for (int i = 0; i < 8; ++i) {
    const char c = line[i];
    crc <<= 4;
    if (c >= '0' && c <= '9') crc |= static_cast<std::uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f') crc |= static_cast<std::uint32_t>(c - 'a' + 10);
    else return false;
  }
  const std::string_view body = line.substr(9);
  if (Crc32(body.data(), body.size()) != crc) return false;
  payload.assign(body);
  return true;
}

}  // namespace

bool ParseFsyncPolicy(const std::string& name, FsyncPolicy& out) {
  if (name == "none") out = FsyncPolicy::kNone;
  else if (name == "interval") out = FsyncPolicy::kInterval;
  else if (name == "always") out = FsyncPolicy::kAlways;
  else return false;
  return true;
}

std::string_view ToString(FsyncPolicy p) {
  switch (p) {
    case FsyncPolicy::kNone: return "none";
    case FsyncPolicy::kInterval: return "interval";
    case FsyncPolicy::kAlways: return "always";
  }
  return "?";
}

std::uint32_t Crc32(const void* data, std::size_t len) {
  // Table-free bitwise CRC-32; the journal appends are one small line per
  // simulated cell, so throughput is irrelevant next to the sim itself.
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    crc ^= p[i];
    for (int b = 0; b < 8; ++b) {
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string SerializeRunResult(const sim::RunResult& r) {
  std::string s;
  SerializeResult(s, r);
  return s;
}

bool ParseRunResult(const std::string& payload, sim::RunResult& r) {
  JsonValue j;
  if (!ParseJson(payload, j)) return false;
  r = sim::RunResult{};
  return ParseResult(j, r);
}

std::string SerializeOutcome(const sim::JobOutcome& out) {
  std::string s = "{";
  PutStr(s, "kind", "cell");
  PutStr(s, "key", out.key);
  PutStr(s, "status", out.cell_status);
  PutU64(s, "attempts", out.attempts);
  PutDbl(s, "wall_ms", out.wall_ms);
  PutU64(s, "runs", out.runs.size());
  if (!out.runs.empty()) {
    s += "\"result\":";
    SerializeResult(s, out.result());
    s += ',';
  }
  CloseObj(s);
  return s;
}

bool ParseOutcomePayload(const std::string& payload, std::string& key,
                         sim::JobOutcome& out) {
  JsonValue j;
  if (!ParseJson(payload, j) || !j.is_object()) return false;
  const JsonValue* kind = j.Find("kind");
  if (kind == nullptr || kind->AsString() != "cell") return false;
  const JsonValue* k = j.Find("key");
  if (k == nullptr || !k->is_string() || k->AsString().empty()) return false;
  key = k->AsString();
  out = sim::JobOutcome{};
  out.key = key;
  const JsonValue* status = j.Find("status");
  if (status == nullptr || !status->is_string()) return false;
  out.cell_status = status->AsString();
  const JsonValue* attempts = j.Find("attempts");
  if (attempts == nullptr) return false;
  out.attempts = attempts->AsU64();
  if (const JsonValue* wall = j.Find("wall_ms"); wall != nullptr) {
    out.wall_ms = wall->AsDouble();
  }
  const JsonValue* nruns = j.Find("runs");
  if (nruns == nullptr) return false;
  const std::uint64_t n = nruns->AsU64();
  if (n > 0) {
    const JsonValue* result = j.Find("result");
    if (result == nullptr) return false;
    sim::RunResult r;
    if (!ParseResult(*result, r)) return false;
    // The journal stores the canonical run once; the recorded sample
    // count is restored by replication (all repeats of a journaled cell
    // already passed the determinism oracle before being appended).
    out.runs.assign(static_cast<std::size_t>(n), r);
  }
  return true;
}

bool ReplayJournal(const std::string& path, ReplayResult& out,
                   std::string* error) {
  out = ReplayResult{};
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return true;  // no journal yet: empty replay
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string data = ss.str();

  std::size_t pos = 0;
  bool saw_header = false;
  while (pos < data.size()) {
    const std::size_t nl = data.find('\n', pos);
    if (nl == std::string::npos) break;  // incomplete final line: torn
    const std::string_view line(data.data() + pos, nl - pos);
    std::string payload;
    if (!CheckFrame(line, payload)) break;
    if (!saw_header) {
      // First record must be the header carrying the journal schema.
      JsonValue j;
      if (!ParseJson(payload, j) || !j.is_object()) break;
      const JsonValue* kind = j.Find("kind");
      const JsonValue* schema = j.Find("schema");
      if (kind == nullptr || kind->AsString() != "meta" || schema == nullptr) {
        break;
      }
      if (schema->AsString() != kJournalSchema) {
        if (error != nullptr) {
          *error = "journal schema " + schema->AsString() +
                   " is not " + kJournalSchema;
        }
        return false;
      }
      saw_header = true;
    } else {
      std::string key;
      sim::JobOutcome cell;
      if (!ParseOutcomePayload(payload, key, cell)) break;
      if (out.cells.count(key) != 0) ++out.duplicates;
      out.cells[key] = std::move(cell);
    }
    ++out.records;
    pos = nl + 1;
  }
  out.valid_bytes = pos;
  out.torn_bytes = data.size() - pos;
  return true;
}

Journal::~Journal() { Close(); }

bool Journal::Open(const std::string& path, const JournalOptions& opts,
                   std::string* error) {
  Close();
  ReplayResult scan;
  if (!ReplayJournal(path, scan, error)) return false;
  const int fd = IoOpen(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "cannot open " + path + ": " + std::strerror(errno);
    }
    return false;
  }
  if (scan.torn_bytes > 0) {
    // Drop the torn tail before appending, so resumed records start on a
    // clean frame boundary.
    if (::ftruncate(fd, static_cast<off_t>(scan.valid_bytes)) != 0) {
      if (error != nullptr) {
        *error = "cannot truncate torn tail of " + path + ": " +
                 std::strerror(errno);
      }
      ::close(fd);
      return false;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  path_ = path;
  opts_ = opts;
  fd_ = fd;
  appended_ = 0;
  since_fsync_ = 0;
  write_failures_ = 0;
  fsync_failures_ = 0;
  RegisterFd(fd_);
  if (scan.records == 0) {
    std::string header = "{";
    PutStr(header, "kind", "meta");
    PutStr(header, "schema", kJournalSchema);
    CloseObj(header);
    AppendLine(header);
  }
  return true;
}

void Journal::AppendLine(const std::string& payload) {
  char frame[10];
  std::snprintf(frame, sizeof(frame), "%08x ",
                Crc32(payload.data(), payload.size()));
  std::string line;
  line.reserve(payload.size() + 10);
  line.append(frame, 9);
  line += payload;
  line += '\n';
  // One write() per record: with O_APPEND the line lands contiguously, so
  // a crash can tear at most the final record — exactly what the replay
  // truncation handles.
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = IoWrite(fd_, line.data() + off, line.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      // Disk full / IO error: the next replay truncates the tear. The
      // failure is counted, not swallowed — the bench JSON surfaces it
      // as a typed [io-fault] durability warning.
      ++write_failures_;
      return;
    }
    off += static_cast<std::size_t>(n);
  }
  if (opts_.fsync == FsyncPolicy::kAlways) {
    if (IoFsync(fd_) != 0) ++fsync_failures_;
  } else if (opts_.fsync == FsyncPolicy::kInterval) {
    if (++since_fsync_ >= opts_.fsync_interval) {
      if (IoFsync(fd_) != 0) ++fsync_failures_;
      since_fsync_ = 0;
    }
  }
}

void Journal::Append(const sim::JobOutcome& out) {
  const std::string payload = SerializeOutcome(out);
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return;
  AppendLine(payload);
  ++appended_;  // cell records only; the header does not count
}

void Journal::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    if (IoFsync(fd_) != 0) ++fsync_failures_;
    since_fsync_ = 0;
  }
}

void Journal::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return;
  if (IoFsync(fd_) != 0) ++fsync_failures_;
  DeregisterFd(fd_);
  ::close(fd_);
  fd_ = -1;
}

std::uint64_t Journal::appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_;
}

std::uint64_t Journal::write_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_failures_;
}

std::uint64_t Journal::fsync_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fsync_failures_;
}

void FlushAllJournals() {
  if (!g_registry_init.load()) return;
  for (const auto& slot : g_journal_fds) {
    const int fd = slot.load(std::memory_order_relaxed);
    if (fd >= 0) ::fsync(fd);
  }
}

}  // namespace dsa::resilience
