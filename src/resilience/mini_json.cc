#include "resilience/mini_json.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace dsa::resilience {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue& out, std::string* error) {
    SkipWs();
    if (!ParseValue(out)) {
      Fail("value");
      if (error != nullptr) *error = error_;
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      Fail("end of input");
      if (error != nullptr) *error = error_;
      return false;
    }
    return true;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  void Fail(const char* expected) {
    if (!error_.empty()) return;  // keep the innermost failure
    char buf[96];
    std::snprintf(buf, sizeof(buf), "expected %s at offset %zu", expected,
                  pos_);
    error_ = buf;
  }

  [[nodiscard]] bool Eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue& out) {  // NOLINT(misc-no-recursion)
    SkipWs();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"':
        out.type = JsonValue::Type::kString;
        return ParseString(out.raw);
      case 't':
        if (text_.compare(pos_, 4, "true") == 0) {
          out.type = JsonValue::Type::kBool;
          out.boolean = true;
          pos_ += 4;
          return true;
        }
        return false;
      case 'f':
        if (text_.compare(pos_, 5, "false") == 0) {
          out.type = JsonValue::Type::kBool;
          out.boolean = false;
          pos_ += 5;
          return true;
        }
        return false;
      case 'n':
        if (text_.compare(pos_, 4, "null") == 0) {
          out.type = JsonValue::Type::kNull;
          pos_ += 4;
          return true;
        }
        return false;
      default: return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue& out) {  // NOLINT(misc-no-recursion)
    if (!Eat('{')) return false;
    out.type = JsonValue::Type::kObject;
    SkipWs();
    if (Eat('}')) return true;
    for (;;) {
      SkipWs();
      std::string key;
      if (!ParseString(key)) {
        Fail("object key");
        return false;
      }
      SkipWs();
      if (!Eat(':')) {
        Fail("':'");
        return false;
      }
      JsonValue value;
      if (!ParseValue(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Eat(',')) continue;
      if (Eat('}')) return true;
      Fail("',' or '}'");
      return false;
    }
  }

  bool ParseArray(JsonValue& out) {  // NOLINT(misc-no-recursion)
    if (!Eat('[')) return false;
    out.type = JsonValue::Type::kArray;
    SkipWs();
    if (Eat(']')) return true;
    for (;;) {
      JsonValue value;
      if (!ParseValue(value)) return false;
      out.array.push_back(std::move(value));
      SkipWs();
      if (Eat(',')) continue;
      if (Eat(']')) return true;
      Fail("',' or ']'");
      return false;
    }
  }

  bool ParseString(std::string& out) {
    if (!Eat('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // Our writers (JsonEscape) \u00XX-escape control characters and
          // any byte that is not part of a well-formed UTF-8 sequence.
          // Decode everything below 0x100 back to the single original
          // byte so escape -> parse is a byte-exact round trip even for
          // binary strings; larger code points decode as UTF-8.
          if (code < 0x100) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool digits = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        digits = true;
      }
      ++pos_;
    }
    if (!digits) {
      pos_ = start;
      return false;
    }
    out.type = JsonValue::Type::kNumber;
    out.raw.assign(text_.substr(start, pos_ - start));
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

void DumpTo(const JsonValue& v, std::string& out) {  // NOLINT(misc-no-recursion)
  switch (v.type) {
    case JsonValue::Type::kNull: out += "null"; break;
    case JsonValue::Type::kBool: out += v.boolean ? "true" : "false"; break;
    case JsonValue::Type::kNumber: out += v.raw; break;
    case JsonValue::Type::kString:
      out.push_back('"');
      out += JsonEscape(v.raw);
      out.push_back('"');
      break;
    case JsonValue::Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const JsonValue& e : v.array) {
        if (!first) out.push_back(',');
        first = false;
        DumpTo(e, out);
      }
      out.push_back(']');
      break;
    }
    case JsonValue::Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : v.object) {
        if (!first) out.push_back(',');
        first = false;
        out.push_back('"');
        out += JsonEscape(key);
        out += "\":";
        DumpTo(value, out);
      }
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::uint64_t JsonValue::AsU64(std::uint64_t fallback) const {
  if (type != Type::kNumber) return fallback;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw.c_str(), &end, 10);
  if (errno != 0 || end == raw.c_str()) return fallback;
  return static_cast<std::uint64_t>(v);
}

std::int64_t JsonValue::AsI64(std::int64_t fallback) const {
  if (type != Type::kNumber) return fallback;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(raw.c_str(), &end, 10);
  if (errno != 0 || end == raw.c_str()) return fallback;
  return static_cast<std::int64_t>(v);
}

double JsonValue::AsDouble(double fallback) const {
  if (type != Type::kNumber) return fallback;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(raw.c_str(), &end);
  if (end == raw.c_str()) return fallback;
  return v;
}

bool ParseJson(std::string_view text, JsonValue& out, std::string* error) {
  return Parser(text).Parse(out, error);
}

std::string DumpJson(const JsonValue& v) {
  std::string out;
  DumpTo(v, out);
  return out;
}

namespace {

// Length (2..4) of the well-formed UTF-8 sequence starting at s[i], or 0
// when the bytes do not form one. Strict per RFC 3629: no overlong
// encodings, no surrogate code points, nothing above U+10FFFF — exactly
// the sequences a JSON consumer must accept as text.
std::size_t Utf8SequenceLength(std::string_view s, std::size_t i) {
  const auto byte = [&](std::size_t k) -> unsigned {
    return k < s.size() ? static_cast<unsigned char>(s[k]) : 0u;
  };
  const auto cont = [](unsigned c) { return c >= 0x80 && c <= 0xBF; };
  const unsigned c0 = byte(i), c1 = byte(i + 1), c2 = byte(i + 2),
                 c3 = byte(i + 3);
  if (c0 >= 0xC2 && c0 <= 0xDF) return cont(c1) ? 2 : 0;
  if (c0 == 0xE0) return (c1 >= 0xA0 && c1 <= 0xBF && cont(c2)) ? 3 : 0;
  if (c0 >= 0xE1 && c0 <= 0xEC) return (cont(c1) && cont(c2)) ? 3 : 0;
  if (c0 == 0xED) return (c1 >= 0x80 && c1 <= 0x9F && cont(c2)) ? 3 : 0;
  if (c0 >= 0xEE && c0 <= 0xEF) return (cont(c1) && cont(c2)) ? 3 : 0;
  if (c0 == 0xF0) {
    return (c1 >= 0x90 && c1 <= 0xBF && cont(c2) && cont(c3)) ? 4 : 0;
  }
  if (c0 >= 0xF1 && c0 <= 0xF3) {
    return (cont(c1) && cont(c2) && cont(c3)) ? 4 : 0;
  }
  if (c0 == 0xF4) {
    return (c1 >= 0x80 && c1 <= 0x8F && cont(c2) && cont(c3)) ? 4 : 0;
  }
  return 0;  // 0x80-0xC1 and 0xF5-0xFF are never lead bytes
}

}  // namespace

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  const auto escape_byte = [&out](unsigned char b) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "\\u%04x", b);
    out += buf;
  };
  std::size_t i = 0;
  while (i < s.size()) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(static_cast<char>(c));
      ++i;
    } else if (c < 0x20) {
      escape_byte(c);
      ++i;
    } else if (c < 0x80) {
      out.push_back(static_cast<char>(c));
      ++i;
    } else if (const std::size_t len = Utf8SequenceLength(s, i); len > 0) {
      // A complete, well-formed UTF-8 sequence passes through verbatim.
      out.append(s.substr(i, len));
      i += len;
    } else {
      // Stray continuation byte, overlong form, surrogate, truncated
      // tail: escape the byte as \u00XX so the emitted document is
      // always valid JSON text, whatever bytes land in an error string
      // (the parser decodes \u00XX back to the identical byte).
      escape_byte(c);
      ++i;
    }
  }
  return out;
}

}  // namespace dsa::resilience
