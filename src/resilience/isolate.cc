#include "resilience/isolate.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <new>

#include "resilience/journal.h"
#include "resilience/mini_json.h"
#include "sim/error.h"

#if defined(__unix__) || defined(__APPLE__)
#define DSA_HAVE_FORK 1
#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>
#else
#define DSA_HAVE_FORK 0
#endif

namespace dsa::resilience {

namespace {

#if DSA_HAVE_FORK

// Pipe frame: "DSAI" magic, u32 payload length, u32 CRC-32, payload.
// The payload is one byte of record type ('R' result / 'E' error)
// followed by JSON. A torn or corrupted frame (child died mid-write)
// is classified as a crash.
constexpr char kMagic[4] = {'D', 'S', 'A', 'I'};

void PutU32(std::string& s, std::uint32_t v) {
  s.push_back(static_cast<char>(v & 0xFF));
  s.push_back(static_cast<char>((v >> 8) & 0xFF));
  s.push_back(static_cast<char>((v >> 16) & 0xFF));
  s.push_back(static_cast<char>((v >> 24) & 0xFF));
}

std::uint32_t GetU32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void WriteAll(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // parent vanished; nothing sane left to do in the child
    }
    off += static_cast<std::size_t>(n);
  }
}

void SendFrame(int fd, char type, const std::string& json) {
  std::string payload;
  payload.reserve(json.size() + 1);
  payload.push_back(type);
  payload += json;
  std::string frame;
  frame.reserve(payload.size() + 12);
  frame.append(kMagic, 4);
  PutU32(frame, static_cast<std::uint32_t>(payload.size()));
  PutU32(frame, Crc32(payload.data(), payload.size()));
  frame += payload;
  WriteAll(fd, frame);
}

std::string ErrorJson(sim::DsaErrorCode code, const std::string& what) {
  std::string s = "{\"code\":";
  s += std::to_string(static_cast<int>(code));
  s += ",\"what\":\"";
  s += JsonEscape(what);
  s += "\"}";
  return s;
}

// Child side: run the cell, ship one frame, _exit without running any
// atexit machinery inherited from the parent.
[[noreturn]] void ChildMain(int write_fd,
                            const std::function<sim::RunResult()>& fn,
                            const IsolateOptions& opts) {
  if (opts.mem_limit_mb > 0) {
    struct rlimit lim;
    lim.rlim_cur = lim.rlim_max =
        static_cast<rlim_t>(opts.mem_limit_mb) * 1024 * 1024;
    (void)::setrlimit(RLIMIT_AS, &lim);
  }
  try {
    const sim::RunResult r = fn();
    SendFrame(write_fd, 'R', SerializeRunResult(r));
  } catch (const std::bad_alloc&) {
    SendFrame(write_fd, 'E',
              ErrorJson(sim::DsaErrorCode::kOutOfMemory,
                        "allocation failed under the child memory cap"));
  } catch (const sim::DsaError& e) {
    SendFrame(write_fd, 'E', ErrorJson(e.code(), e.what()));
  } catch (const std::exception& e) {
    SendFrame(write_fd, 'E',
              ErrorJson(sim::DsaErrorCode::kInternal, e.what()));
  } catch (...) {
    SendFrame(write_fd, 'E',
              ErrorJson(sim::DsaErrorCode::kInternal, "unknown exception"));
  }
  ::close(write_fd);
  ::_exit(0);
}

struct ChildStatus {
  bool exited = false;
  int wait_status = 0;
  bool deadline_hit = false;
};

// Parent side: drain the pipe while waiting, enforcing the deadline.
// Reading concurrently with waiting matters — a result bigger than the
// pipe buffer would otherwise deadlock the child against a parent that
// only waitpids.
ChildStatus SuperviseChild(pid_t pid, int read_fd, std::string& buffer,
                           std::uint64_t deadline_ms) {
  const auto start = std::chrono::steady_clock::now();
  ChildStatus st;
  char chunk[4096];
  bool eof = false;
  for (;;) {
    struct pollfd pfd = {read_fd, POLLIN, 0};
    const int pr = eof ? 0 : ::poll(&pfd, 1, 10);
    if (pr > 0) {
      for (;;) {
        const ssize_t n = ::read(read_fd, chunk, sizeof(chunk));
        if (n > 0) {
          buffer.append(chunk, static_cast<std::size_t>(n));
          continue;
        }
        if (n == 0) eof = true;
        if (n < 0 && errno == EINTR) continue;
        break;
      }
    }
    int status = 0;
    const pid_t w = ::waitpid(pid, &status, WNOHANG);
    if (w == pid) {
      st.exited = true;
      st.wait_status = status;
      // Drain whatever is still buffered in the pipe.
      for (;;) {
        const ssize_t n = ::read(read_fd, chunk, sizeof(chunk));
        if (n > 0) {
          buffer.append(chunk, static_cast<std::size_t>(n));
          continue;
        }
        if (n < 0 && errno == EINTR) continue;
        break;
      }
      return st;
    }
    if (deadline_ms > 0) {
      const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start);
      if (static_cast<std::uint64_t>(elapsed.count()) >= deadline_ms) {
        st.deadline_hit = true;
        ::kill(pid, SIGKILL);
        ::waitpid(pid, &st.wait_status, 0);
        st.exited = true;
        return st;
      }
    }
  }
}

// Extracts the single frame from the child's byte stream. Returns false
// on a missing, torn, or corrupted frame.
bool DecodeFrame(const std::string& buffer, char& type, std::string& json) {
  if (buffer.size() < 12 || std::memcmp(buffer.data(), kMagic, 4) != 0) {
    return false;
  }
  const auto* p = reinterpret_cast<const unsigned char*>(buffer.data());
  const std::uint32_t len = GetU32(p + 4);
  const std::uint32_t crc = GetU32(p + 8);
  if (buffer.size() < 12 + static_cast<std::size_t>(len) || len == 0) {
    return false;
  }
  if (Crc32(buffer.data() + 12, len) != crc) return false;
  type = buffer[12];
  json.assign(buffer, 13, len - 1);
  return true;
}

#endif  // DSA_HAVE_FORK

}  // namespace

bool IsolationAvailable() { return DSA_HAVE_FORK != 0; }

sim::RunResult RunIsolated(const std::function<sim::RunResult()>& fn,
                           const IsolateOptions& opts,
                           const std::string& label) {
#if DSA_HAVE_FORK
  int fds[2];
  if (::pipe(fds) != 0) {
    throw sim::DsaError(sim::DsaErrorCode::kTransient,
                        "pipe() failed for " + label + ": " +
                            std::strerror(errno));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    throw sim::DsaError(sim::DsaErrorCode::kTransient,
                        "fork() failed for " + label + ": " +
                            std::strerror(errno));
  }
  if (pid == 0) {
    ::close(fds[0]);
    ChildMain(fds[1], fn, opts);  // never returns
  }
  ::close(fds[1]);
  std::string buffer;
  const ChildStatus st = SuperviseChild(pid, fds[0], buffer, opts.deadline_ms);
  ::close(fds[0]);

  if (st.deadline_hit) {
    throw sim::DsaError(sim::DsaErrorCode::kDeadline,
                        label + " exceeded its " +
                            std::to_string(opts.deadline_ms) +
                            " ms deadline and was killed");
  }
  char type = 0;
  std::string json;
  if (DecodeFrame(buffer, type, json)) {
    if (type == 'R') {
      sim::RunResult r;
      if (ParseRunResult(json, r)) return r;
      throw sim::DsaError(sim::DsaErrorCode::kCrash,
                          label + ": child result failed to parse");
    }
    if (type == 'E') {
      JsonValue j;
      if (ParseJson(json, j) && j.is_object()) {
        const auto code = static_cast<sim::DsaErrorCode>(
            j.Find("code") != nullptr ? j.Find("code")->AsU64() : 0);
        const JsonValue* what = j.Find("what");
        // Re-throw the child's own failure with its code intact, so the
        // runner's status mapping and retry policy behave exactly as if
        // the cell had run in-process.
        throw sim::DsaError(code, what != nullptr ? what->AsString()
                                                  : "child error");
      }
    }
    throw sim::DsaError(sim::DsaErrorCode::kCrash,
                        label + ": child sent an unintelligible frame");
  }
  // No (valid) frame: the child died before reporting.
  if (WIFSIGNALED(st.wait_status)) {
    const int sig = WTERMSIG(st.wait_status);
    throw sim::DsaError(sim::DsaErrorCode::kCrash,
                        label + ": child killed by signal " +
                            std::to_string(sig) + " (" + strsignal(sig) +
                            ")");
  }
  const int code = WIFEXITED(st.wait_status) ? WEXITSTATUS(st.wait_status) : -1;
  throw sim::DsaError(sim::DsaErrorCode::kCrash,
                      label + ": child exited with status " +
                          std::to_string(code) + " without a result");
#else
  (void)opts;
  (void)label;
  // No fork on this platform: clean in-process fallback, documented in
  // docs/RESILIENCE.md (a crash then takes the batch down, as before).
  return fn();
#endif
}

}  // namespace dsa::resilience
