// Minimal recursive-descent JSON reader for the resilience layer: parses
// the journal records and bench reports that this repository itself
// writes (sim::WriteBenchJson, resilience::Journal). It is a strict
// subset of JSON — objects, arrays, strings (with \uXXXX escapes),
// numbers, booleans, null — with one deliberate twist: numbers keep their
// raw source text, so 64-bit counters and %.17g doubles round-trip
// exactly instead of being squeezed through a double. No dependency on
// any external JSON library, per the repo's no-new-deps rule.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace dsa::resilience {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  std::string raw;     // numbers: exact source text; strings: decoded text
  std::vector<JsonValue> array;
  // Insertion order preserved separately so canonical re-emission is
  // stable regardless of key content.
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_object() const { return type == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type == Type::kArray; }
  [[nodiscard]] bool is_string() const { return type == Type::kString; }
  [[nodiscard]] bool is_number() const { return type == Type::kNumber; }

  // Object lookup; returns nullptr when missing or not an object.
  [[nodiscard]] const JsonValue* Find(std::string_view key) const;

  // Typed accessors with defaults (never throw).
  [[nodiscard]] std::uint64_t AsU64(std::uint64_t fallback = 0) const;
  [[nodiscard]] std::int64_t AsI64(std::int64_t fallback = 0) const;
  [[nodiscard]] double AsDouble(double fallback = 0.0) const;
  [[nodiscard]] const std::string& AsString() const { return raw; }
  [[nodiscard]] bool AsBool(bool fallback = false) const {
    return type == Type::kBool ? boolean : fallback;
  }
};

// Parses `text` into `out`. Returns false (and fills `error` with
// position + reason when non-null) on malformed input or trailing junk.
[[nodiscard]] bool ParseJson(std::string_view text, JsonValue& out,
                             std::string* error = nullptr);

// Serializes a JsonValue back to compact JSON (objects keep insertion
// order). Numbers are re-emitted verbatim from their raw text, so a
// parse -> filter -> dump round trip never perturbs a value — that is
// what makes the canonical bench-report comparison in bench_soak exact.
[[nodiscard]] std::string DumpJson(const JsonValue& v);

// Escapes `s` as the contents of a JSON string literal (no quotes).
// Arbitrary byte strings are safe: control characters and any byte that
// is not part of a well-formed UTF-8 sequence are emitted as \u00XX, so
// the output is always valid JSON text, and ParseJson decodes \u00XX
// back to the identical byte (escape -> parse is byte-exact even for
// binary input — the serving daemon's responses rely on this).
[[nodiscard]] std::string JsonEscape(std::string_view s);

}  // namespace dsa::resilience
