#include "resilience/iofault.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <mutex>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define DSA_HAVE_IOFAULT_FS 1
#else
#define DSA_HAVE_IOFAULT_FS 0
#endif

namespace dsa::resilience {

namespace {

constexpr std::string_view kIoKindNames[kNumIoFaultKinds] = {
    "enospc", "eio", "short-write", "fsync-fail", "rename-fail", "open-fail",
};

[[noreturn]] void BadIoSpec(const std::string& spec, const std::string& why) {
  throw std::invalid_argument("bad --io-faults spec \"" + spec + "\": " +
                              why);
}

// Parses a base-10 uint64 and requires the whole token to be numeric.
bool ParseU64(std::string_view tok, std::uint64_t& out) {
  if (tok.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : tok) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = v;
  return true;
}

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// The process-global injector. `active` is the hot-path gate: with no
// plan installed every shim is one relaxed load plus the raw syscall.
// Everything else lives behind `mu`, because the journal, the cache and
// the wire protocol draw opportunities from worker threads concurrently
// and the sequence must stay deterministic.
struct GlobalInjector {
  std::mutex mu;
  IoFaultPlan plan;
  std::array<std::uint64_t, kNumIoFaultKinds> opportunities{};
  std::array<std::uint64_t, kNumIoFaultKinds> fired{};
  std::array<std::uint64_t, kNumIoFaultKinds> rng{};
};

std::atomic<bool> g_active{false};

GlobalInjector& Injector() {
  static GlobalInjector g;
  return g;
}

// Registers one opportunity for `k` and decides whether an armed spec
// fires on it (caller holds mu). Same semantics as FaultInjector::Fire.
bool FireLocked(GlobalInjector& g, IoFaultKind k) {
  const int i = static_cast<int>(k);
  const std::uint64_t opportunity = g.opportunities[i]++;
  for (const IoFaultSpec& fs : g.plan.specs) {
    if (fs.kind != k || opportunity < fs.trigger) continue;
    const std::uint64_t since = opportunity - fs.trigger;
    if (fs.count == UINT64_MAX || since < fs.count) {
      ++g.fired[i];
      return true;
    }
  }
  return false;
}

std::uint64_t RandLocked(GlobalInjector& g, IoFaultKind k) {
  std::uint64_t v = SplitMix64(g.rng[static_cast<int>(k)]);
  if (v == 0) v = 1;
  return v;
}

}  // namespace

std::string_view ToString(IoFaultKind k) {
  const int i = static_cast<int>(k);
  if (i < 0 || i >= kNumIoFaultKinds) return "?";
  return kIoKindNames[i];
}

bool ParseIoFaultKind(std::string_view token, IoFaultKind& out) {
  for (int i = 0; i < kNumIoFaultKinds; ++i) {
    if (token == kIoKindNames[i]) {
      out = static_cast<IoFaultKind>(i);
      return true;
    }
  }
  return false;
}

IoFaultPlan ParseIoFaultPlan(const std::string& spec) {
  IoFaultPlan plan;
  if (spec.empty()) return plan;

  std::string entries = spec;
  const std::size_t semi = spec.find(';');
  if (semi != std::string::npos) {
    entries = spec.substr(0, semi);
    const std::string tail = spec.substr(semi + 1);
    constexpr std::string_view kSeedKey = "seed=";
    if (tail.rfind(kSeedKey, 0) != 0 ||
        !ParseU64(tail.substr(kSeedKey.size()), plan.seed)) {
      BadIoSpec(spec, "expected \";seed=<uint>\" after the entries, got \";" +
                          tail + "\"");
    }
    plan.seed_explicit = true;
  }

  std::size_t pos = 0;
  while (pos <= entries.size()) {
    std::size_t comma = entries.find(',', pos);
    if (comma == std::string::npos) comma = entries.size();
    const std::string entry = entries.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) BadIoSpec(spec, "empty entry");

    const std::size_t at = entry.find('@');
    if (at == std::string::npos) {
      BadIoSpec(spec, "entry \"" + entry + "\" misses \"@<trigger>\"");
    }
    IoFaultSpec fs;
    if (!ParseIoFaultKind(entry.substr(0, at), fs.kind)) {
      BadIoSpec(spec, "unknown io-fault kind \"" + entry.substr(0, at) +
                          "\" (want enospc|eio|short-write|fsync-fail|"
                          "rename-fail|open-fail)");
    }
    std::string rest = entry.substr(at + 1);
    const std::size_t plus = rest.find('+');
    if (plus != std::string::npos) {
      const std::string count = rest.substr(plus + 1);
      if (count.empty()) {
        fs.count = UINT64_MAX;
      } else if (!ParseU64(count, fs.count) || fs.count == 0) {
        BadIoSpec(spec, "bad repeat count \"" + count + "\" in \"" + entry +
                            "\"");
      }
      rest = rest.substr(0, plus);
    }
    if (!ParseU64(rest, fs.trigger)) {
      BadIoSpec(spec, "bad trigger \"" + rest + "\" in \"" + entry + "\"");
    }
    plan.specs.push_back(fs);
    if (comma == entries.size()) break;
  }
  return plan;
}

std::string FormatIoFaultPlan(const IoFaultPlan& plan) {
  std::string out;
  for (const IoFaultSpec& fs : plan.specs) {
    if (!out.empty()) out += ",";
    out += std::string(ToString(fs.kind)) + "@" + std::to_string(fs.trigger);
    if (fs.count == UINT64_MAX) {
      out += "+";
    } else if (fs.count != 1) {
      out += "+";
      out += std::to_string(fs.count);
    }
  }
  if (plan.seed_explicit) out += ";seed=" + std::to_string(plan.seed);
  return out;
}

void InstallIoFaultPlan(const IoFaultPlan& plan) {
  GlobalInjector& g = Injector();
  std::lock_guard<std::mutex> lock(g.mu);
  g.plan = plan;
  g.opportunities.fill(0);
  g.fired.fill(0);
  for (int k = 0; k < kNumIoFaultKinds; ++k) {
    g.rng[k] = plan.seed * 0x9e3779b97f4a7c15ull +
               0xd1b54a32d192ed03ull * static_cast<std::uint64_t>(k + 1);
  }
  g_active.store(plan.enabled(), std::memory_order_release);
}

void ClearIoFaultPlan() { InstallIoFaultPlan(IoFaultPlan{}); }

bool IoFaultsActive() {
  return g_active.load(std::memory_order_acquire);
}

IoFaultPlan CurrentIoFaultPlan() {
  GlobalInjector& g = Injector();
  std::lock_guard<std::mutex> lock(g.mu);
  return g.plan;
}

IoFaultCensus GetIoFaultCensus() {
  GlobalInjector& g = Injector();
  std::lock_guard<std::mutex> lock(g.mu);
  IoFaultCensus c;
  c.opportunities = g.opportunities;
  c.fired = g.fired;
  return c;
}

ssize_t IoWrite(int fd, const void* buf, std::size_t count) {
#if DSA_HAVE_IOFAULT_FS
  if (IoFaultsActive()) {
    // Decide under the lock, act outside it: the injected decision must
    // be a deterministic function of the opportunity sequence, but the
    // physical write must not serialize every thread in the process.
    int fail_errno = 0;
    std::size_t shortened = count;
    {
      GlobalInjector& g = Injector();
      std::lock_guard<std::mutex> lock(g.mu);
      // One opportunity per kind per write, in fixed priority order, so
      // a plan arming several write kinds stays reproducible.
      const bool enospc = FireLocked(g, IoFaultKind::kEnospc);
      const bool eio = FireLocked(g, IoFaultKind::kEio);
      const bool shortw = FireLocked(g, IoFaultKind::kShortWrite);
      if (enospc) {
        fail_errno = ENOSPC;
      } else if (eio) {
        fail_errno = EIO;
      } else if (shortw && count >= 2) {
        // A short write always makes progress (1..count-1 bytes): the
        // caller's retry loop must cope, and each retry draws the next
        // opportunity — exactly how a nearly-full disk behaves.
        shortened = 1 + static_cast<std::size_t>(
                            RandLocked(g, IoFaultKind::kShortWrite) %
                            (count - 1));
      }
    }
    if (fail_errno != 0) {
      errno = fail_errno;
      return -1;
    }
    count = shortened;
  }
  return ::write(fd, buf, count);
#else
  (void)fd;
  (void)buf;
  (void)count;
  errno = ENOSYS;
  return -1;
#endif
}

int IoFsync(int fd) {
#if DSA_HAVE_IOFAULT_FS
  if (IoFaultsActive()) {
    GlobalInjector& g = Injector();
    bool fail = false;
    {
      std::lock_guard<std::mutex> lock(g.mu);
      fail = FireLocked(g, IoFaultKind::kFsyncFail);
    }
    if (fail) {
      errno = EIO;
      return -1;
    }
  }
  return ::fsync(fd);
#else
  (void)fd;
  errno = ENOSYS;
  return -1;
#endif
}

int IoRename(const char* from, const char* to) {
#if DSA_HAVE_IOFAULT_FS
  if (IoFaultsActive()) {
    GlobalInjector& g = Injector();
    bool fail = false;
    {
      std::lock_guard<std::mutex> lock(g.mu);
      fail = FireLocked(g, IoFaultKind::kRenameFail);
    }
    if (fail) {
      errno = EIO;
      return -1;
    }
  }
  return ::rename(from, to);
#else
  (void)from;
  (void)to;
  errno = ENOSYS;
  return -1;
#endif
}

int IoOpen(const char* path, int flags, unsigned mode) {
#if DSA_HAVE_IOFAULT_FS
  if (IoFaultsActive()) {
    GlobalInjector& g = Injector();
    bool fail = false;
    {
      std::lock_guard<std::mutex> lock(g.mu);
      fail = FireLocked(g, IoFaultKind::kOpenFail);
    }
    if (fail) {
      errno = EMFILE;
      return -1;
    }
  }
  return ::open(path, flags, static_cast<mode_t>(mode));
#else
  (void)path;
  (void)flags;
  (void)mode;
  errno = ENOSYS;
  return -1;
#endif
}

}  // namespace dsa::resilience
