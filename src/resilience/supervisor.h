// Supervisor: the one object a bench driver instantiates to make its
// BatchRunner resilient. It composes the four resilience pieces
// (docs/RESILIENCE.md) behind the runner's existing seams:
//   - process isolation  -> wraps RunnerOptions::run_fn (isolate.h)
//   - crash-safe journal -> restore_fn (resume replay) + on_outcome
//     (append each completed cell)                      (journal.h)
//   - circuit breaker    -> fail-fast inside the wrapped run_fn
//                                                       (breaker.h)
//   - graceful drain     -> SIGINT/SIGTERM set a process-wide flag the
//     runner polls; in-flight cells finish, the journal is fsynced from
//     the (async-signal-safe) handler, queued cells become "cancelled"
//     and the JSON reports run_status "interrupted".
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "resilience/breaker.h"
#include "resilience/isolate.h"
#include "resilience/journal.h"
#include "sim/runner.h"

namespace dsa::resilience {

// Installs the SIGINT/SIGTERM graceful-drain handler (idempotent): the
// handler sets Supervisor::DrainFlag() and fsyncs every open journal,
// both async-signal-safe. Supervisor::Attach calls this; it is exposed
// for long-lived drivers that drain without a Supervisor (the serving
// daemon, src/serve/daemon.cc).
void InstallDrainHandler();

struct SupervisorOptions {
  // Process isolation (--isolate): run each cell in a forked child.
  bool isolate = false;
  // Per-cell wall-clock deadline / child memory cap; require isolate.
  std::uint64_t deadline_ms = 0;
  std::uint64_t mem_limit_mb = 0;
  // Crash-safe journal (--journal): append each completed cell.
  std::string journal_path;
  // Resume (--resume): replay this journal and skip completed cells.
  std::string resume_path;
  JournalOptions journal;
  // Circuit breaker (--breaker N): open after N consecutive failures of
  // one workload; 0 disables.
  int breaker_threshold = 0;
  int breaker_probe_after = 2;
  // SIGINT/SIGTERM graceful drain (on by default when a supervisor is
  // constructed; tests can opt out to keep gtest's signal handling).
  bool install_signal_drain = true;

  [[nodiscard]] bool any() const {
    return isolate || !journal_path.empty() || !resume_path.empty() ||
           breaker_threshold > 0 || deadline_ms > 0 || mem_limit_mb > 0;
  }
};

class Supervisor {
 public:
  explicit Supervisor(SupervisorOptions opts);

  // Replays the resume journal and opens the append journal. Returns
  // false with `error` filled on an unreadable/incompatible journal.
  [[nodiscard]] bool Init(std::string* error = nullptr);

  // Installs the resilience seams into the runner options. Call after
  // Init() and before constructing the BatchRunner. The existing run_fn
  // (test seam / fault injection) keeps working — it becomes the inner
  // function the isolation wrapper executes.
  void Attach(sim::RunnerOptions& ro);

  // Census for WriteBenchJson, after runner.Finish().
  [[nodiscard]] sim::BenchJsonExtras Extras(
      const sim::BatchReport& report) const;

  [[nodiscard]] const ReplayResult& replay() const { return replay_; }
  [[nodiscard]] Journal& journal() { return journal_; }
  [[nodiscard]] CircuitBreaker& breaker() { return breaker_; }
  [[nodiscard]] const SupervisorOptions& options() const { return opts_; }

  // The process-wide drain flag (set by SIGINT/SIGTERM once a supervisor
  // with install_signal_drain has attached, or manually by tests).
  [[nodiscard]] static std::atomic<bool>& DrainFlag();
  [[nodiscard]] static bool DrainRequested();

 private:
  SupervisorOptions opts_;
  ReplayResult replay_;
  Journal journal_;
  CircuitBreaker breaker_;
};

}  // namespace dsa::resilience
