#include "serve/cache.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "mem/memory.h"
#include "resilience/iofault.h"
#include "resilience/journal.h"
#include "resilience/mini_json.h"

#if defined(__unix__) || defined(__APPLE__)
#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#define DSA_HAVE_CACHE_FS 1
#else
#define DSA_HAVE_CACHE_FS 0
#endif

namespace dsa::serve {

namespace {

// FNV-1a, 64-bit: the repo's digest primitive (the output-digest oracle
// uses the same construction), here accumulated field-by-field so the
// hash is a pure function of declared content, never of padding.
struct Fnv1a {
  std::uint64_t h = 1469598103934665603ull;

  void Bytes(const void* data, std::size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  }
  void U64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 1099511628211ull;
    }
  }
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  void F64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Str(std::string_view s) {
    U64(s.size());
    Bytes(s.data(), s.size());
  }
};

void HashProgram(Fnv1a& f, const prog::Program& p) {
  f.U64(p.size());
  for (const isa::Instruction& ins : p.code()) {
    f.I64(static_cast<std::int64_t>(ins.op));
    f.I64(static_cast<std::int64_t>(ins.cond));
    f.I64(static_cast<std::int64_t>(ins.vt));
    f.I64(ins.rd);
    f.I64(ins.rn);
    f.I64(ins.rm);
    f.I64(ins.ra);
    f.I64(ins.imm);
    f.I64(ins.post_inc);
  }
}

std::string Hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string Hex0x(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool ParseHexU64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 16);
  if (errno != 0 || end == s.c_str() || *end != '\0') return false;
  out = v;
  return true;
}

std::string Slurp(const std::string& path, bool& ok) {
  std::ifstream in(path, std::ios::binary);
  ok = in.good();
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Structural validity of one cache-entry file: complete `CCCCCCCC json\n`
// frame, matching CRC, entry-schema label, parseable hex digests and a
// round-trippable cell payload. The boot-time scrub keeps any entry that
// passes (Load still re-verifies and compares the key on every hit);
// anything that fails would be quarantined at serving time anyway, so the
// scrub moves it aside before the daemon starts answering requests.
bool EntryStructurallyValid(const std::string& data) {
  std::uint64_t crc = 0;
  if (data.size() < 10 || data.back() != '\n' || data[8] != ' ' ||
      !ParseHexU64(data.substr(0, 8), crc)) {
    return false;
  }
  const std::string payload = data.substr(9, data.size() - 10);
  if (resilience::Crc32(payload.data(), payload.size()) != crc) return false;
  resilience::JsonValue entry;
  if (!resilience::ParseJson(payload, entry) || !entry.is_object())
    return false;
  const auto field = [&entry](std::string_view name) -> std::string {
    const resilience::JsonValue* v = entry.Find(name);
    return v != nullptr ? v->AsString() : std::string();
  };
  std::uint64_t digest = 0;
  const auto hex_field = [&](std::string_view name) {
    std::string s = field(name);
    if (s.rfind("0x", 0) == 0) s = s.substr(2);
    return ParseHexU64(s, digest);
  };
  if (field("schema") != kCacheEntrySchema || field("key").empty() ||
      field("engine").empty() || field("bench_schema").empty() ||
      !hex_field("workload_digest") || !hex_field("config_digest")) {
    return false;
  }
  const resilience::JsonValue* cell = entry.Find("cell");
  if (cell == nullptr || !cell->is_object()) return false;
  std::string parsed_key;
  sim::JobOutcome parsed;
  return resilience::ParseOutcomePayload(resilience::DumpJson(*cell),
                                         parsed_key, parsed) &&
         parsed_key == field("key");
}

}  // namespace

std::uint64_t WorkloadDigest(const sim::Workload& wl) {
  Fnv1a f;
  f.Str(wl.name);
  f.U64(wl.mem_bytes);
  HashProgram(f, wl.scalar);
  HashProgram(f, wl.autovec);
  HashProgram(f, wl.handvec);
  f.U64(wl.outputs.size());
  for (const sim::OutputRegion& r : wl.outputs) {
    f.U64(r.addr);
    f.U64(r.bytes);
  }
  f.U64(wl.loop_type_fractions.size());
  for (const auto& [type, fraction] : wl.loop_type_fractions) {
    f.Str(type);
    f.F64(fraction);
  }
  f.U64(wl.stream_bytes);
  f.U64(wl.gen.has_value() ? 1 : 0);
  if (wl.gen.has_value()) {
    f.U64(wl.gen->seed);
    f.Str(wl.gen->loop_class);
    f.U64(wl.gen->count);
  }
  // The input data set: run the init hook against a fresh memory image
  // and fold the whole image in, so two workloads that differ only in
  // their data (a different seed, a different constant table) never
  // share a cache entry.
  mem::Memory m(wl.mem_bytes);
  if (wl.init) wl.init(m);
  f.Bytes(m.data(), m.size());
  return f.h;
}

std::uint64_t ConfigDigest(const sim::SystemConfig& cfg) {
  Fnv1a f;
  // cpu::TimingConfig
  f.U64(cfg.timing.superscalar_width);
  f.U64(cfg.timing.branch_mispredict_penalty);
  f.U64(cfg.timing.int_mul_extra);
  f.U64(cfg.timing.int_div_extra);
  f.U64(cfg.timing.fp_extra);
  f.U64(cfg.timing.fp_div_extra);
  f.U64(cfg.timing.neon.alu_latency);
  f.U64(cfg.timing.neon.mul_latency);
  f.U64(cfg.timing.neon.mem_latency);
  f.U64(cfg.timing.neon.lane_move);
  f.U64(cfg.timing.neon.pipeline_fill);
  // mem::Hierarchy::Config
  for (const auto& c : {cfg.memory.l1, cfg.memory.l2}) {
    f.U64(c.size_bytes);
    f.U64(c.line_bytes);
    f.U64(c.ways);
    f.U64(c.hit_latency);
  }
  f.U64(cfg.memory.dram_latency);
  f.U64(cfg.memory.next_line_prefetch ? 1 : 0);
  // engine::DsaConfig
  f.U64(cfg.dsa.dsa_cache_bytes);
  f.U64(cfg.dsa.dsa_cache_entry_bytes);
  f.U64(cfg.dsa.verification_cache_bytes);
  f.U64(cfg.dsa.verification_entry_bytes);
  f.U64(cfg.dsa.array_maps);
  f.U64(cfg.dsa.neon_regs);
  f.U64(cfg.dsa.trace_capacity);
  f.U64(cfg.dsa.enable_conditional_loops ? 1 : 0);
  f.U64(cfg.dsa.enable_sentinel_loops ? 1 : 0);
  f.U64(cfg.dsa.enable_dynamic_range_loops ? 1 : 0);
  f.U64(cfg.dsa.enable_partial_vectorization ? 1 : 0);
  f.U64(cfg.dsa.enable_loop_fusion ? 1 : 0);
  f.U64(cfg.dsa.enable_cidp ? 1 : 0);
  f.U64(cfg.dsa.pipeline_flush_latency);
  f.U64(cfg.dsa.dsa_cache_access_latency);
  f.U64(cfg.dsa.verification_cache_access_latency);
  f.U64(cfg.dsa.array_map_access_latency);
  f.U64(cfg.dsa.partial_window_resync_latency);
  f.U64(cfg.dsa.speculative_select_latency);
  f.U64(cfg.dsa.blacklist_strikes);
  f.U64(cfg.dsa.rollback_penalty);
  f.U64(cfg.dsa.guard_margin_iterations);
  // energy::EnergyParams
  f.F64(cfg.energy.scalar_instr);
  f.F64(cfg.energy.mem_instr_extra);
  f.F64(cfg.energy.branch_extra);
  f.F64(cfg.energy.mispredict_flush);
  f.F64(cfg.energy.vector_instr);
  f.F64(cfg.energy.l1_access);
  f.F64(cfg.energy.l2_access);
  f.F64(cfg.energy.dram_access);
  f.F64(cfg.energy.core_static);
  f.F64(cfg.energy.neon_static);
  f.F64(cfg.energy.dsa_static);
  f.F64(cfg.energy.dsa_analysis_per_instr);
  f.F64(cfg.energy.dsa_cache_access);
  f.F64(cfg.energy.vc_access);
  f.F64(cfg.energy.array_map_access);
  // trace::TraceConfig — enabled changes the RunResult payload (trace
  // aggregates), so traced and untraced cells never alias.
  f.U64(cfg.trace.enabled ? 1 : 0);
  f.U64(cfg.trace.capacity);
  // fault::FaultPlan
  f.U64(cfg.faults.specs.size());
  for (const auto& spec : cfg.faults.specs) {
    f.I64(static_cast<std::int64_t>(spec.kind));
    f.U64(spec.trigger);
    f.U64(spec.count);
  }
  f.U64(cfg.faults.seed);
  f.U64(cfg.faults.seed_explicit ? 1 : 0);
  // harness knobs
  f.U64(cfg.max_steps);
  f.U64(cfg.reference_path ? 1 : 0);
  f.I64(static_cast<std::int64_t>(cfg.dispatch));
  return f.h;
}

std::string CacheKey::FileName() const {
  Fnv1a f;
  f.Str(job_key);
  f.U64(workload_digest);
  f.U64(config_digest);
  f.Str(engine_version);
  f.Str(bench_schema);
  return Hex64(f.h) + ".cell";
}

CacheKey KeyFor(const sim::BatchJob& job) {
  CacheKey key;
  key.job_key = sim::JobKey(job);
  key.workload_digest = WorkloadDigest(job.workload);
  key.config_digest = ConfigDigest(job.config);
  return key;
}

bool ResultCache::Open(const std::string& dir, std::string* error) {
#if DSA_HAVE_CACHE_FS
  if (dir.empty()) {
    if (error != nullptr) *error = "cache: empty directory path";
    return false;
  }
  if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
    if (error != nullptr) {
      *error = "cache: cannot create " + dir + ": " + std::strerror(errno);
    }
    return false;
  }
  struct stat st = {};
  if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    if (error != nullptr) *error = "cache: " + dir + " is not a directory";
    return false;
  }
  dir_ = dir;
  return true;
#else
  (void)dir;
  if (error != nullptr) *error = "cache: filesystem API unavailable";
  return false;
#endif
}

bool ResultCache::Load(const CacheKey& key, sim::JobOutcome& out) {
  if (!open()) return false;
  const std::string path = dir_ + "/" + key.FileName();
  bool readable = false;
  const std::string data = Slurp(path, readable);
  if (!readable) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    return false;
  }
  // Entry line: `CCCCCCCC <json>\n` — complete, CRC-matching, parseable,
  // and carrying the exact key it claims to answer for. Anything less is
  // quarantined and recomputed, never trusted.
  const auto quarantine = [&] {
#if DSA_HAVE_CACHE_FS
    const std::string aside = path + ".quarantine";
    if (::rename(path.c_str(), aside.c_str()) != 0) (void)::unlink(path.c_str());
#endif
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.quarantined;
    ++stats_.misses;
  };
  std::uint64_t crc = 0;
  if (data.size() < 10 || data.back() != '\n' || data[8] != ' ' ||
      !ParseHexU64(data.substr(0, 8), crc)) {
    quarantine();
    return false;
  }
  const std::string payload = data.substr(9, data.size() - 10);
  if (resilience::Crc32(payload.data(), payload.size()) != crc) {
    quarantine();
    return false;
  }
  resilience::JsonValue entry;
  if (!resilience::ParseJson(payload, entry) || !entry.is_object()) {
    quarantine();
    return false;
  }
  const auto field = [&entry](std::string_view name) -> std::string {
    const resilience::JsonValue* v = entry.Find(name);
    return v != nullptr ? v->AsString() : std::string();
  };
  std::uint64_t wl_digest = 0;
  std::uint64_t cfg_digest = 0;
  const bool digests_ok =
      ParseHexU64(field("workload_digest").substr(
                      field("workload_digest").rfind("0x") == 0 ? 2 : 0),
                  wl_digest) &&
      ParseHexU64(field("config_digest").substr(
                      field("config_digest").rfind("0x") == 0 ? 2 : 0),
                  cfg_digest);
  const resilience::JsonValue* cell = entry.Find("cell");
  if (field("schema") != kCacheEntrySchema || !digests_ok ||
      cell == nullptr || !cell->is_object()) {
    quarantine();
    return false;
  }
  // A well-formed entry for a different key (hash collision, copied
  // file) is a miss, not corruption — leave it in place.
  if (field("key") != key.job_key || wl_digest != key.workload_digest ||
      cfg_digest != key.config_digest ||
      field("engine") != key.engine_version ||
      field("bench_schema") != key.bench_schema) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    return false;
  }
  std::string parsed_key;
  sim::JobOutcome parsed;
  if (!resilience::ParseOutcomePayload(resilience::DumpJson(*cell),
                                       parsed_key, parsed) ||
      parsed_key != key.job_key) {
    quarantine();
    return false;
  }
  out = std::move(parsed);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.hits;
  return true;
}

bool ResultCache::Store(const CacheKey& key, const sim::JobOutcome& out) {
#if DSA_HAVE_CACHE_FS
  if (!open()) return false;
  std::string payload = "{\"schema\":\"";
  payload += kCacheEntrySchema;
  payload += "\",\"key\":\"";
  payload += resilience::JsonEscape(key.job_key);
  payload += "\",\"workload_digest\":\"";
  payload += Hex0x(key.workload_digest);
  payload += "\",\"config_digest\":\"";
  payload += Hex0x(key.config_digest);
  payload += "\",\"engine\":\"";
  payload += resilience::JsonEscape(key.engine_version);
  payload += "\",\"bench_schema\":\"";
  payload += resilience::JsonEscape(key.bench_schema);
  payload += "\",\"cell\":";
  payload += resilience::SerializeOutcome(out);
  payload += "}";
  char crc[12];
  std::snprintf(crc, sizeof(crc), "%08x",
                resilience::Crc32(payload.data(), payload.size()));
  std::string line = crc;
  line += ' ';
  line += payload;
  line += '\n';

  const std::string name = key.FileName();
  // Per-process sequence in the tmp name: two ResultCache instances in
  // one process (two daemons sharing a cache dir in tests) storing the
  // same key must not stomp each other's half-written tmp file.
  static std::atomic<std::uint64_t> g_tmp_seq{0};
  const std::uint64_t seq = g_tmp_seq.fetch_add(1, std::memory_order_relaxed);
  const std::string tmp = dir_ + "/.tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(seq) + "." + name;
  const std::string path = dir_ + "/" + name;
  const auto fail = [&](bool fsync_refused) {
    (void)::unlink(tmp.c_str());
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.store_failures;
    if (fsync_refused) ++stats_.fsync_failures;
    return false;
  };
  // All host I/O below goes through the injectable shims
  // (resilience/iofault.h) so ENOSPC/EIO/short-write/fsync-fail/
  // rename-fail each have a deterministic rehearsal path.
  const int fd = resilience::IoOpen(tmp.c_str(),
                                    O_CREAT | O_TRUNC | O_WRONLY, 0666);
  if (fd < 0) return fail(false);
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n =
        resilience::IoWrite(fd, line.data() + off, line.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      ::close(fd);
      return fail(false);
    }
    off += static_cast<std::size_t>(n);
  }
  // fsync before the rename: once the entry is visible under its final
  // name it must be complete even across a kill -9 or power cut. A
  // refused fsync means the entry is NOT durable — never publish it.
  if (resilience::IoFsync(fd) != 0) {
    ::close(fd);
    return fail(true);
  }
  ::close(fd);
  if (resilience::IoRename(tmp.c_str(), path.c_str()) != 0)
    return fail(false);
  // Persist the directory entry too, so the rename itself survives. The
  // entry is already published and valid at this point, so a refused
  // directory fsync degrades the durability claim (counted) without
  // failing the store.
  bool dir_fsync_failed = false;
  const int dfd = ::open(dir_.c_str(), O_RDONLY);
  if (dfd >= 0) {
    if (resilience::IoFsync(dfd) != 0) dir_fsync_failed = true;
    ::close(dfd);
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.stores;
  if (dir_fsync_failed) ++stats_.fsync_failures;
  return true;
#else
  (void)key;
  (void)out;
  return false;
#endif
}

ScrubStats ResultCache::Scrub() {
  ScrubStats s;
#if DSA_HAVE_CACHE_FS
  if (!open()) return s;
  std::vector<std::string> entries;
  if (DIR* d = ::opendir(dir_.c_str())) {
    while (const dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      // Only published entries: tmp files and prior quarantines are not
      // servable state and stay untouched.
      if (name.size() > 5 && name.compare(name.size() - 5, 5, ".cell") == 0)
        entries.push_back(name);
    }
    ::closedir(d);
  }
  for (const std::string& name : entries) {
    const std::string path = dir_ + "/" + name;
    bool readable = false;
    const std::string data = Slurp(path, readable);
    ++s.checked;
    if (readable && EntryStructurallyValid(data)) {
      ++s.ok;
      continue;
    }
    // Deliberately a direct ::rename, not the injectable shim: the scrub
    // is the repair path, and an armed rename-fail plan must target the
    // Store publish rename, not the cleanup.
    const std::string aside = path + ".quarantine";
    if (::rename(path.c_str(), aside.c_str()) != 0)
      (void)::unlink(path.c_str());
    ++s.quarantined;
  }
#endif
  std::lock_guard<std::mutex> lock(mu_);
  scrub_stats_ = s;
  return s;
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

ScrubStats ResultCache::scrub_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return scrub_stats_;
}

}  // namespace dsa::serve
