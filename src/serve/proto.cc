#include "serve/proto.h"

#include <cerrno>
#include <cstring>

#include "resilience/iofault.h"
#include "resilience/journal.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define DSA_HAVE_SOCKETS 1
#else
#define DSA_HAVE_SOCKETS 0
#endif

namespace dsa::serve {

namespace {

void PutU32(std::string& s, std::uint32_t v) {
  s.push_back(static_cast<char>(v & 0xFF));
  s.push_back(static_cast<char>((v >> 8) & 0xFF));
  s.push_back(static_cast<char>((v >> 16) & 0xFF));
  s.push_back(static_cast<char>((v >> 24) & 0xFF));
}

std::uint32_t GetU32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

#if DSA_HAVE_SOCKETS

// Frame writes route through the injectable host-I/O shim
// (resilience/iofault.h): an armed write-kind plan (enospc/eio/
// short-write) perturbs DSAS frames exactly like any other host write,
// which is how the chaos drill rehearses a daemon whose responses fail
// mid-frame. Short writes from the shim just continue the loop.
bool WriteAll(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = resilience::IoWrite(fd, data + off, len - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

// Reads exactly `len` bytes. 1 = done, 0 = EOF (bytes_read reports how
// far it got), -1 = read error.
int ReadExact(int fd, char* data, std::size_t len, std::size_t& bytes_read) {
  bytes_read = 0;
  while (bytes_read < len) {
    const ssize_t n = ::read(fd, data + bytes_read, len - bytes_read);
    if (n == 0) return 0;
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    bytes_read += static_cast<std::size_t>(n);
  }
  return 1;
}

#endif  // DSA_HAVE_SOCKETS

}  // namespace

std::string_view ToString(RecvStatus s) {
  switch (s) {
    case RecvStatus::kOk: return "ok";
    case RecvStatus::kClosed: return "closed";
    case RecvStatus::kCorrupt: return "corrupt";
    case RecvStatus::kError: return "error";
  }
  return "?";
}

bool SendFrame(int fd, char type, const std::string& json) {
#if DSA_HAVE_SOCKETS
  if (json.size() + 1 > kMaxFrameBytes) return false;
  std::string payload;
  payload.reserve(json.size() + 1);
  payload.push_back(type);
  payload += json;
  std::string frame;
  frame.reserve(payload.size() + 12);
  frame.append(kProtoMagic, 4);
  PutU32(frame, static_cast<std::uint32_t>(payload.size()));
  PutU32(frame, resilience::Crc32(payload.data(), payload.size()));
  frame += payload;
  return WriteAll(fd, frame.data(), frame.size());
#else
  (void)fd;
  (void)type;
  (void)json;
  return false;
#endif
}

RecvStatus RecvFrame(int fd, char& type, std::string& json) {
#if DSA_HAVE_SOCKETS
  char header[12];
  std::size_t got = 0;
  const int hr = ReadExact(fd, header, sizeof(header), got);
  if (hr < 0) return RecvStatus::kError;
  if (hr == 0) return got == 0 ? RecvStatus::kClosed : RecvStatus::kCorrupt;
  if (std::memcmp(header, kProtoMagic, 4) != 0) return RecvStatus::kCorrupt;
  const auto* p = reinterpret_cast<const unsigned char*>(header);
  const std::uint32_t len = GetU32(p + 4);
  const std::uint32_t crc = GetU32(p + 8);
  if (len == 0 || len > kMaxFrameBytes) return RecvStatus::kCorrupt;
  std::string payload(len, '\0');
  const int pr = ReadExact(fd, payload.data(), len, got);
  if (pr < 0) return RecvStatus::kError;
  if (pr == 0) return RecvStatus::kCorrupt;  // peer died mid-frame
  if (resilience::Crc32(payload.data(), payload.size()) != crc) {
    return RecvStatus::kCorrupt;
  }
  type = payload[0];
  json.assign(payload, 1, payload.size() - 1);
  return RecvStatus::kOk;
#else
  (void)fd;
  (void)type;
  (void)json;
  return RecvStatus::kError;
#endif
}

}  // namespace dsa::serve
