// Strict flag-value parsing for the serving daemon and its client —
// the same grammar as bench/bench_util.h's ParseCountArg/ParseU64Arg
// (whole token must parse, no wrap-around, no silent fallback), but
// returning bool + error text instead of exiting, so the negative paths
// are unit-testable (tests/test_serve.cc) and the mains stay in charge
// of the usage message + exit code 2.
#pragma once

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <string>

namespace dsa::serve {

// Whole-token strict signed decimal. False (with `error` filled) on an
// empty/partial token or out-of-range value.
[[nodiscard]] inline bool ParseCountText(const char* text, long& out,
                                         std::string* error = nullptr) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') {
    if (error != nullptr) {
      *error = "expects a decimal number, got \"" + std::string(text) + "\"";
    }
    return false;
  }
  if (errno == ERANGE) {
    if (error != nullptr) {
      *error = "value \"" + std::string(text) + "\" is out of range";
    }
    return false;
  }
  out = v;
  return true;
}

// Whole-token strict unsigned decimal: a leading sign or an overflowing
// token is refused instead of letting strtoull wrap it into a different
// (silently valid) value.
[[nodiscard]] inline bool ParseU64Text(const char* text, std::uint64_t& out,
                                       std::string* error = nullptr) {
  const char* p = text;
  while (std::isspace(static_cast<unsigned char>(*p))) ++p;
  if (*p == '-' || *p == '+') {
    if (error != nullptr) {
      *error = "expects an unsigned decimal number, got \"" +
               std::string(text) + "\"";
    }
    return false;
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    if (error != nullptr) {
      *error = "expects an unsigned decimal number, got \"" +
               std::string(text) + "\"";
    }
    return false;
  }
  if (errno == ERANGE) {
    if (error != nullptr) {
      *error = "value \"" + std::string(text) +
               "\" overflows 64 bits; refusing to wrap it";
    }
    return false;
  }
  out = static_cast<std::uint64_t>(v);
  return true;
}

}  // namespace dsa::serve
