#include "serve/client.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>

#include "resilience/mini_json.h"
#include "serve/proto.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define DSA_HAVE_SERVE 1
#else
#define DSA_HAVE_SERVE 0
#endif

namespace dsa::serve {

namespace {

std::string BuildRequest(const ClientOptions& opts) {
  using resilience::JsonEscape;
  std::string req = "{\"schema\":\"dsa-serve/1\",\"kind\":\"";
  req += opts.health ? "health" : (opts.ping ? "ping" : "sweep");
  req += "\",\"client\":\"";
  req += JsonEscape(opts.client_name);
  req += "\"";
  if (!opts.filter.empty()) {
    req += ",\"filter\":\"";
    req += JsonEscape(opts.filter);
    req += "\"";
  }
  if (opts.deadline_ms > 0) {
    req += ",\"deadline_ms\":";
    req += std::to_string(opts.deadline_ms);
  }
  req += "}";
  return req;
}

std::string Field(const resilience::JsonValue& obj, std::string_view name) {
  const resilience::JsonValue* v = obj.Find(name);
  return v != nullptr ? v->AsString() : std::string();
}

#if DSA_HAVE_SERVE

// One request/response exchange. Returns the exit code; sets
// `transient` when a code-5 failure is a transport transient (daemon
// not up, torn frame, connection lost) that a bounded retry may heal.
int Attempt(const ClientOptions& opts, std::string& json, bool& got_response,
            bool& transient) {
  got_response = false;
  transient = false;
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  if (opts.socket_path.empty() ||
      opts.socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "[dsa_submit] bad socket path \"%s\"\n",
                 opts.socket_path.c_str());
    return 5;
  }
  std::memcpy(addr.sun_path, opts.socket_path.c_str(),
              opts.socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "[dsa_submit] socket: %s\n", std::strerror(errno));
    return 5;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    std::fprintf(stderr, "[dsa_submit] connect %s: %s\n",
                 opts.socket_path.c_str(), std::strerror(errno));
    ::close(fd);
    transient = true;  // daemon restarting (ECONNREFUSED/ENOENT)
    return 5;
  }
  if (opts.recv_timeout_ms > 0) {
    timeval tv = {};
    tv.tv_sec = static_cast<time_t>(opts.recv_timeout_ms / 1000);
    tv.tv_usec =
        static_cast<suseconds_t>((opts.recv_timeout_ms % 1000) * 1000);
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  if (!SendFrame(fd, kFrameRequest, BuildRequest(opts))) {
    std::fprintf(stderr, "[dsa_submit] send failed (daemon gone?)\n");
    ::close(fd);
    transient = true;
    return 5;
  }
  char type = 0;
  const RecvStatus rs = RecvFrame(fd, type, json);
  ::close(fd);
  if (rs != RecvStatus::kOk || type != kFrameResponse) {
    std::fprintf(stderr, "[dsa_submit] response: %s\n",
                 std::string(ToString(rs)).c_str());
    transient = true;  // torn frame / daemon died mid-response
    return 5;
  }
  got_response = true;
  return 0;
}

#endif  // DSA_HAVE_SERVE

}  // namespace

int Submit(const ClientOptions& opts) {
#if DSA_HAVE_SERVE
  std::string json;
  bool got_response = false;
  bool transient = false;
  int rc = Attempt(opts, json, got_response, transient);
  for (int attempt = 0; !got_response && transient && attempt < opts.retries;
       ++attempt) {
    // Deterministic exponential backoff: 50, 100, 200, ... ms. Bounded
    // by --retries; a daemon that never comes back still fails typed
    // with exit 5.
    const auto backoff = std::chrono::milliseconds(50LL << attempt);
    std::fprintf(stderr,
                 "[dsa_submit] transient transport failure, retry %d/%d in %lld ms\n",
                 attempt + 1, opts.retries,
                 static_cast<long long>(backoff.count()));
    std::this_thread::sleep_for(backoff);
    rc = Attempt(opts, json, got_response, transient);
  }
  if (!got_response) return rc;

  if (!opts.json_path.empty()) {
    std::ofstream out(opts.json_path, std::ios::binary | std::ios::trunc);
    out << json << "\n";
    if (!out.good()) {
      std::fprintf(stderr, "[dsa_submit] cannot write %s\n",
                   opts.json_path.c_str());
      return 5;
    }
  }

  resilience::JsonValue resp;
  if (!resilience::ParseJson(json, resp) || !resp.is_object()) {
    std::fprintf(stderr, "[dsa_submit] response is not valid JSON\n");
    return 5;
  }
  const std::string status = Field(resp, "status");
  const std::string error = Field(resp, "error");
  const std::string ok_n = Field(resp, "cells_ok");
  const std::string failed_n = Field(resp, "cells_failed");
  const std::string cached_n = Field(resp, "cells_cached");
  std::printf("[dsa_submit] status=%s ok=%s failed=%s cached=%s%s%s\n",
              status.c_str(), ok_n.empty() ? "0" : ok_n.c_str(),
              failed_n.empty() ? "0" : failed_n.c_str(),
              cached_n.empty() ? "0" : cached_n.c_str(),
              error.empty() ? "" : " error=", error.c_str());
  const resilience::JsonValue* cells = resp.Find("cells");
  if (!opts.quiet && cells != nullptr && cells->is_array()) {
    for (const resilience::JsonValue& cell : cells->array) {
      if (!cell.is_object()) continue;
      const std::string cell_status = Field(cell, "cell_status");
      if (cell_status == "ok") continue;
      std::printf("[dsa_submit]   %-40s %-10s %s\n",
                  Field(cell, "job").c_str(), cell_status.c_str(),
                  Field(cell, "error").c_str());
    }
  }

  if (status == "ok") {
    return (failed_n.empty() || failed_n == "0") ? 0 : 1;
  }
  if (status == "interrupted") return 1;
  // overload / deadline / bad-request: the request was refused before or
  // instead of simulation — an admission verdict, not a cell failure.
  return 4;
#else
  (void)opts;
  std::fprintf(stderr, "[dsa_submit] unix sockets unavailable\n");
  return 5;
#endif
}

}  // namespace dsa::serve
