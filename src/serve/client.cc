#include "serve/client.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "resilience/mini_json.h"
#include "serve/proto.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define DSA_HAVE_SERVE 1
#else
#define DSA_HAVE_SERVE 0
#endif

namespace dsa::serve {

namespace {

std::string BuildRequest(const ClientOptions& opts) {
  using resilience::JsonEscape;
  std::string req = "{\"schema\":\"dsa-serve/1\",\"kind\":\"";
  req += opts.ping ? "ping" : "sweep";
  req += "\",\"client\":\"";
  req += JsonEscape(opts.client_name);
  req += "\"";
  if (!opts.filter.empty()) {
    req += ",\"filter\":\"";
    req += JsonEscape(opts.filter);
    req += "\"";
  }
  if (opts.deadline_ms > 0) {
    req += ",\"deadline_ms\":";
    req += std::to_string(opts.deadline_ms);
  }
  req += "}";
  return req;
}

std::string Field(const resilience::JsonValue& obj, std::string_view name) {
  const resilience::JsonValue* v = obj.Find(name);
  return v != nullptr ? v->AsString() : std::string();
}

}  // namespace

int Submit(const ClientOptions& opts) {
#if DSA_HAVE_SERVE
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  if (opts.socket_path.empty() ||
      opts.socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "[dsa_submit] bad socket path \"%s\"\n",
                 opts.socket_path.c_str());
    return 5;
  }
  std::memcpy(addr.sun_path, opts.socket_path.c_str(),
              opts.socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "[dsa_submit] socket: %s\n", std::strerror(errno));
    return 5;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    std::fprintf(stderr, "[dsa_submit] connect %s: %s\n",
                 opts.socket_path.c_str(), std::strerror(errno));
    ::close(fd);
    return 5;
  }
  if (!SendFrame(fd, kFrameRequest, BuildRequest(opts))) {
    std::fprintf(stderr, "[dsa_submit] send failed (daemon gone?)\n");
    ::close(fd);
    return 5;
  }
  char type = 0;
  std::string json;
  const RecvStatus rs = RecvFrame(fd, type, json);
  ::close(fd);
  if (rs != RecvStatus::kOk || type != kFrameResponse) {
    std::fprintf(stderr, "[dsa_submit] response: %s\n",
                 std::string(ToString(rs)).c_str());
    return 5;
  }

  if (!opts.json_path.empty()) {
    std::ofstream out(opts.json_path, std::ios::binary | std::ios::trunc);
    out << json << "\n";
    if (!out.good()) {
      std::fprintf(stderr, "[dsa_submit] cannot write %s\n",
                   opts.json_path.c_str());
      return 5;
    }
  }

  resilience::JsonValue resp;
  if (!resilience::ParseJson(json, resp) || !resp.is_object()) {
    std::fprintf(stderr, "[dsa_submit] response is not valid JSON\n");
    return 5;
  }
  const std::string status = Field(resp, "status");
  const std::string error = Field(resp, "error");
  const std::string ok_n = Field(resp, "cells_ok");
  const std::string failed_n = Field(resp, "cells_failed");
  const std::string cached_n = Field(resp, "cells_cached");
  std::printf("[dsa_submit] status=%s ok=%s failed=%s cached=%s%s%s\n",
              status.c_str(), ok_n.empty() ? "0" : ok_n.c_str(),
              failed_n.empty() ? "0" : failed_n.c_str(),
              cached_n.empty() ? "0" : cached_n.c_str(),
              error.empty() ? "" : " error=", error.c_str());
  const resilience::JsonValue* cells = resp.Find("cells");
  if (!opts.quiet && cells != nullptr && cells->is_array()) {
    for (const resilience::JsonValue& cell : cells->array) {
      if (!cell.is_object()) continue;
      const std::string cell_status = Field(cell, "cell_status");
      if (cell_status == "ok") continue;
      std::printf("[dsa_submit]   %-40s %-10s %s\n",
                  Field(cell, "job").c_str(), cell_status.c_str(),
                  Field(cell, "error").c_str());
    }
  }

  if (status == "ok") {
    return (failed_n.empty() || failed_n == "0") ? 0 : 1;
  }
  if (status == "interrupted") return 1;
  // overload / deadline / bad-request: the request was refused before or
  // instead of simulation — an admission verdict, not a cell failure.
  return 4;
#else
  (void)opts;
  std::fprintf(stderr, "[dsa_submit] unix sockets unavailable\n");
  return 5;
#endif
}

}  // namespace dsa::serve
