// Client side of the serving protocol (docs/SERVING.md): connects to a
// running dsa_serve, submits one request frame, renders the response and
// maps it to a process exit code the scripts can branch on:
//   0 — status "ok" and every cell completed ("ok", cached or fresh)
//   1 — the sweep ran but cells failed, or the daemon drained mid-sweep
//   4 — admission refused the request (overload / deadline / bad-request)
//   5 — transport failure: no daemon, torn frame, protocol violation
// (2 is reserved for usage errors, matching every bench driver; 3 is the
// daemon's own drained-exit code.)
#pragma once

#include <cstdint>
#include <string>

namespace dsa::serve {

struct ClientOptions {
  std::string socket_path;
  std::string client_name = "dsa_submit";  // admission-quota identity
  std::string filter;                      // JobKey substring; "" = all
  std::uint64_t deadline_ms = 0;           // request deadline; 0 = none
  bool ping = false;                       // liveness probe, no cells
  std::string json_path;  // dump the raw response JSON here ("" = don't)
  bool quiet = false;     // suppress the per-cell table
};

// Runs one request against the daemon and returns the exit code above.
[[nodiscard]] int Submit(const ClientOptions& opts);

}  // namespace dsa::serve
