// Client side of the serving protocol (docs/SERVING.md): connects to a
// running dsa_serve, submits one request frame, renders the response and
// maps it to a process exit code the scripts can branch on:
//   0 — status "ok" and every cell completed ("ok", cached or fresh)
//   1 — the sweep ran but cells failed, or the daemon drained mid-sweep
//   4 — admission refused the request (overload / deadline / bad-request)
//   5 — transport failure: no daemon, torn frame, protocol violation
// (2 is reserved for usage errors, matching every bench driver; 3 is the
// daemon's own drained-exit code.)
#pragma once

#include <cstdint>
#include <string>

namespace dsa::serve {

struct ClientOptions {
  std::string socket_path;
  std::string client_name = "dsa_submit";  // admission-quota identity
  std::string filter;                      // JobKey substring; "" = all
  std::uint64_t deadline_ms = 0;           // request deadline; 0 = none
  bool ping = false;                       // liveness probe, no cells
  bool health = false;  // health census probe (kind "health"), no cells
  std::string json_path;  // dump the raw response JSON here ("" = don't)
  bool quiet = false;     // suppress the per-cell table
  // Bounded deterministic retry on *transport* transients only — the
  // daemon not up yet (ECONNREFUSED), a torn/corrupt response frame, a
  // connection closed mid-exchange. Admission refusals and cell
  // failures are verdicts, never retried. Backoff doubles from 50 ms
  // per attempt (50, 100, 200, ...). Default 0 keeps the historical
  // fail-fast behaviour.
  int retries = 0;
  // Per-read deadline on the response socket (SO_RCVTIMEO); guards the
  // client against a wedged daemon. 0 = block indefinitely.
  std::uint64_t recv_timeout_ms = 0;
};

// Runs one request against the daemon and returns the exit code above.
[[nodiscard]] int Submit(const ClientOptions& opts);

}  // namespace dsa::serve
