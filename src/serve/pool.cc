#include "serve/pool.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace dsa::serve {

WorkerPool::WorkerPool(const PoolOptions& opts) : opts_(opts) {
  opts_.workers = std::max(1, opts_.workers);
  opts_.backoff_base_ms = std::max(1, opts_.backoff_base_ms);
  opts_.backoff_cap_ms = std::max(opts_.backoff_base_ms, opts_.backoff_cap_ms);
  opts_.max_strikes = std::max(1, opts_.max_strikes);
  slots_.resize(static_cast<std::size_t>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i) {
    slots_[static_cast<std::size_t>(i)].thread =
        std::thread(&WorkerPool::WorkerMain, this, i);
  }
  supervisor_ = std::thread(&WorkerPool::SupervisorMain, this);
}

WorkerPool::~WorkerPool() { Shutdown(); }

int WorkerPool::live_workers_locked() const {
  int live = 0;
  for (const Slot& s : slots_) {
    if (!s.dead && !s.retired) ++live;
  }
  return live;
}

bool WorkerPool::Submit(std::function<void()> task) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) return false;
  bool any_usable = false;
  for (const Slot& s : slots_) any_usable = any_usable || !s.retired;
  if (!any_usable) return false;
  queue_.push_back(std::move(task));
  work_cv_.notify_one();
  return true;
}

void WorkerPool::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void WorkerPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shut_down_) return;
    shut_down_ = true;
    stopping_ = true;
    work_cv_.notify_all();
    reap_cv_.notify_all();
    idle_cv_.notify_all();
  }
  if (supervisor_.joinable()) supervisor_.join();
  for (Slot& s : slots_) {
    if (s.thread.joinable()) s.thread.join();
  }
}

PoolStats WorkerPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PoolStats out = stats_;
  out.live_workers = live_workers_locked();
  return out;
}

void WorkerPool::WorkerMain(int slot) {
  Slot& self = slots_[static_cast<std::size_t>(slot)];
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    bool escaped = false;
    try {
      task();
    } catch (...) {
      // The task poisoned this worker. Die visibly: the supervisor
      // joins the corpse and respawns the slot with backoff, so one bad
      // task never silently shrinks the pool.
      escaped = true;
    }
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
    if (escaped) {
      ++stats_.escaped;
      self.dead = true;
      ++self.strikes;
      reap_cv_.notify_all();
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
      return;
    }
    ++stats_.executed;
    self.strikes = 0;  // strikes count *consecutive* escapes
    if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
  }
}

void WorkerPool::SupervisorMain() {
  for (;;) {
    int dead_slot = -1;
    int strikes = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      reap_cv_.wait(lock, [this, &dead_slot] {
        dead_slot = -1;
        for (std::size_t i = 0; i < slots_.size(); ++i) {
          if (slots_[i].dead && !slots_[i].retired) {
            dead_slot = static_cast<int>(i);
            break;
          }
        }
        return stopping_ || dead_slot >= 0;
      });
      if (dead_slot < 0) return;  // stopping, nothing to reap
      strikes = slots_[static_cast<std::size_t>(dead_slot)].strikes;
    }
    Slot& slot = slots_[static_cast<std::size_t>(dead_slot)];
    if (slot.thread.joinable()) slot.thread.join();

    if (strikes >= opts_.max_strikes) {
      std::lock_guard<std::mutex> lock(mu_);
      slot.retired = true;
      slot.dead = false;
      if (live_workers_locked() == 0) {
        // Every slot is gone: nobody will ever run the queue. Discard
        // it so Drain()/Shutdown() terminate instead of hanging.
        stats_.discarded += queue_.size();
        queue_.clear();
        idle_cv_.notify_all();
      }
      continue;
    }

    // Bounded exponential backoff before the respawn, woken early by
    // Shutdown so a stopping pool never waits out the delay.
    const int shift = std::min(strikes - 1, 20);
    const int delay_ms = std::min(opts_.backoff_cap_ms,
                                  opts_.backoff_base_ms << shift);
    {
      std::unique_lock<std::mutex> lock(mu_);
      reap_cv_.wait_for(lock, std::chrono::milliseconds(delay_ms),
                        [this] { return stopping_; });
      if (stopping_) {
        slot.dead = false;  // stopping: no respawn, and don't re-reap
        continue;
      }
      slot.dead = false;
      ++stats_.respawns;
      slot.thread = std::thread(&WorkerPool::WorkerMain, this, dead_slot);
    }
  }
}

}  // namespace dsa::serve
