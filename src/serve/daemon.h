// The crash-tolerant simulation daemon (dsa_serve, docs/SERVING.md): a
// long-lived process on a Unix-domain socket that answers sweep requests
// from the persistent result cache when it can and simulates the misses
// on a respawning worker pool, with every failure classified through the
// DsaError taxonomy into a per-cell status — exactly the statuses a CLI
// sweep reports, because both paths execute through sim::ExecuteCell.
//
// Crash tolerance story, layer by layer:
//   - a cell that SIGSEGVs/OOMs/overruns its deadline is contained by
//     the fork isolate (--isolate) and poisons only its own cell;
//   - a task whose exception escapes in-process kills one pool worker,
//     which is respawned with bounded exponential backoff (pool.h);
//   - a workload that fails repeatedly trips its circuit breaker and is
//     failed fast instead of re-simulated (resilience/breaker.h);
//   - the daemon itself dying (kill -9) loses at most the in-flight
//     cells: completed cells were promoted to the persistent cache with
//     fsync + atomic rename, so a restarted daemon serves them
//     bit-identically (cache.h);
//   - SIGINT/SIGTERM drain gracefully: in-flight cells finish, queued
//     work is rejected with the typed "overload" status, exit code 3.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "resilience/breaker.h"
#include "serve/cache.h"
#include "serve/pool.h"
#include "sim/runner.h"

namespace dsa::serve {

// Admission control for the request queue: a bounded total queue depth
// plus a per-client in-flight quota, so one greedy client cannot starve
// the socket for everyone else. Refusals are typed ("overload: ...")
// and become the response's `status` — the client exits 4, distinct
// from simulation failures.
class AdmissionControl {
 public:
  AdmissionControl(int queue_limit, int client_quota)
      : queue_limit_(queue_limit), client_quota_(client_quota) {}

  // Empty string = admitted (caller must pair with Done); otherwise the
  // typed refusal reason, starting with "overload:".
  [[nodiscard]] std::string Admit(const std::string& client);
  void Done(const std::string& client);
  [[nodiscard]] int depth() const;

 private:
  int queue_limit_;
  int client_quota_;
  mutable std::mutex mu_;
  int depth_ = 0;
  std::map<std::string, int> per_client_;
};

struct DaemonOptions {
  std::string socket_path;
  // Persistent result cache directory; empty disables the cache (every
  // request re-simulates).
  std::string cache_dir;
  int workers = 2;       // simulation worker threads
  int queue_limit = 8;   // admission: max requests queued + in flight
  int client_quota = 4;  // admission: max per client name
  // Deadline applied to requests that do not carry their own; 0 = none.
  std::uint64_t default_deadline_ms = 0;
  // Per-cell containment (resilience/isolate.h): fork isolation, cell
  // wall-clock deadline, child address-space cap.
  bool isolate = false;
  std::uint64_t cell_deadline_ms = 0;
  std::uint64_t mem_limit_mb = 0;
  // Per-workload circuit breaker; 0 disables.
  int breaker_threshold = 0;
  int breaker_probe_after = 2;
  // Executions per cell (>= 2 feeds the determinism oracle's data; the
  // daemon default is 1 — cache hits make repeats pointless).
  int repeats = 1;
  // Injectable host-I/O fault plan (resilience/iofault.h grammar, e.g.
  // "fsync-fail@0+;seed=7"), installed process-wide at Init. Empty = no
  // injection. Parse errors fail Init with a typed message.
  std::string io_fault_plan;
  // Per-read deadline on client connections (SO_RCVTIMEO): a slow-loris
  // client dripping header bytes is cut off instead of pinning a reader.
  // 0 = no deadline.
  std::uint64_t read_deadline_ms = 5000;
  // Boot-time cache scrub (cache.h Scrub): verify every entry before
  // serving, quarantining corruption up front. On by default; the flag
  // exists so tests can observe first-Load quarantine behaviour.
  bool scrub = true;
  // --- crash-drill hooks (tests/check.sh only) -----------------------
  // SIGKILL the daemon after this many executed (non-cached) cells, so
  // the kill-and-restart soak can die mid-sweep deterministically.
  std::uint64_t kill_after = 0;
  // abort() inside the isolated child of every cell whose JobKey
  // contains this substring (requires isolate) — exercises the
  // "crashed" classification end to end.
  std::string crash_cell;
};

// The daemon's sweep space — bench_matrix's batch (same sets, same
// modes, same config tags, default configs) deduplicated by JobKey and
// optionally narrowed by a case-insensitive substring filter. Exposed so
// the chaos soak (bench/bench_soak_serve.cc) can compute its reference
// truth from exactly the cells the daemon will serve.
[[nodiscard]] std::vector<sim::BatchJob> SweepJobs(const std::string& filter);

class Daemon {
 public:
  explicit Daemon(DaemonOptions opts);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  // Opens the cache, binds the socket, installs the drain handler.
  [[nodiscard]] bool Init(std::string* error = nullptr);

  // Accept loop; returns the process exit code (3 after a graceful
  // SIGINT/SIGTERM drain — the only way Serve returns).
  [[nodiscard]] int Serve();

  [[nodiscard]] const DaemonOptions& options() const { return opts_; }

 private:
  struct Request {
    int fd = -1;
    std::string client;
    std::string kind;    // "sweep" | "ping" | "health"
    std::string filter;  // case-insensitive JobKey substring; "" = all
    std::uint64_t deadline_ms = 0;  // 0 = none
    std::chrono::steady_clock::time_point received;
  };

  void AcceptOne();
  // Runs on a short-lived reader thread, one per accepted connection:
  // bounded frame read (SO_RCVTIMEO per read), parse, admission,
  // enqueue. Keeping the read off the accept loop is what stops one
  // slow-loris client from stalling every other connection.
  void HandleConnection(int fd);
  void DispatcherMain();
  void ProcessRequest(Request& req);
  void RespondError(int fd, const std::string& status,
                    const std::string& error);
  [[nodiscard]] std::string BuildResponse(
      const std::string& status, const std::string& error,
      const std::vector<sim::JobOutcome>& cells,
      const std::vector<bool>& cached, bool health = false);
  // One cell, end to end: cache probe -> breaker -> ExecuteCell under
  // the isolate -> breaker record -> cache store -> kill_after drill.
  void RunCell(const sim::BatchJob& job,
               std::chrono::steady_clock::time_point deadline,
               sim::JobOutcome& out, bool& cached);

  DaemonOptions opts_;
  ResultCache cache_;
  resilience::CircuitBreaker breaker_;
  AdmissionControl admission_;
  std::unique_ptr<WorkerPool> pool_;
  int listen_fd_ = -1;

  std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<Request> queue_;
  bool stopping_ = false;
  std::thread dispatcher_;

  // Detached reader threads in flight. Serve() refuses to tear the
  // daemon down until this drains to zero — a reader dereferences
  // `this`, so destruction must wait for it. Readers are capped
  // (kMaxReaders); connections over the cap are closed and counted.
  int readers_ = 0;                  // guarded by mu_
  std::condition_variable readers_cv_;
  static constexpr int kMaxReaders = 64;

  std::atomic<std::uint64_t> executed_cells_{0};  // kill_after counter
  std::atomic<std::uint64_t> requests_served_{0};
  // Hostile-client census, reported by the `health` request kind.
  std::atomic<std::uint64_t> corrupt_frames_{0};
  std::atomic<std::uint64_t> read_timeouts_{0};
  std::atomic<std::uint64_t> refused_connections_{0};
};

}  // namespace dsa::serve
