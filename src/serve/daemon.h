// The crash-tolerant simulation daemon (dsa_serve, docs/SERVING.md): a
// long-lived process on a Unix-domain socket that answers sweep requests
// from the persistent result cache when it can and simulates the misses
// on a respawning worker pool, with every failure classified through the
// DsaError taxonomy into a per-cell status — exactly the statuses a CLI
// sweep reports, because both paths execute through sim::ExecuteCell.
//
// Crash tolerance story, layer by layer:
//   - a cell that SIGSEGVs/OOMs/overruns its deadline is contained by
//     the fork isolate (--isolate) and poisons only its own cell;
//   - a task whose exception escapes in-process kills one pool worker,
//     which is respawned with bounded exponential backoff (pool.h);
//   - a workload that fails repeatedly trips its circuit breaker and is
//     failed fast instead of re-simulated (resilience/breaker.h);
//   - the daemon itself dying (kill -9) loses at most the in-flight
//     cells: completed cells were promoted to the persistent cache with
//     fsync + atomic rename, so a restarted daemon serves them
//     bit-identically (cache.h);
//   - SIGINT/SIGTERM drain gracefully: in-flight cells finish, queued
//     work is rejected with the typed "overload" status, exit code 3.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "resilience/breaker.h"
#include "serve/cache.h"
#include "serve/pool.h"
#include "sim/runner.h"

namespace dsa::serve {

// Admission control for the request queue: a bounded total queue depth
// plus a per-client in-flight quota, so one greedy client cannot starve
// the socket for everyone else. Refusals are typed ("overload: ...")
// and become the response's `status` — the client exits 4, distinct
// from simulation failures.
class AdmissionControl {
 public:
  AdmissionControl(int queue_limit, int client_quota)
      : queue_limit_(queue_limit), client_quota_(client_quota) {}

  // Empty string = admitted (caller must pair with Done); otherwise the
  // typed refusal reason, starting with "overload:".
  [[nodiscard]] std::string Admit(const std::string& client);
  void Done(const std::string& client);
  [[nodiscard]] int depth() const;

 private:
  int queue_limit_;
  int client_quota_;
  mutable std::mutex mu_;
  int depth_ = 0;
  std::map<std::string, int> per_client_;
};

struct DaemonOptions {
  std::string socket_path;
  // Persistent result cache directory; empty disables the cache (every
  // request re-simulates).
  std::string cache_dir;
  int workers = 2;       // simulation worker threads
  int queue_limit = 8;   // admission: max requests queued + in flight
  int client_quota = 4;  // admission: max per client name
  // Deadline applied to requests that do not carry their own; 0 = none.
  std::uint64_t default_deadline_ms = 0;
  // Per-cell containment (resilience/isolate.h): fork isolation, cell
  // wall-clock deadline, child address-space cap.
  bool isolate = false;
  std::uint64_t cell_deadline_ms = 0;
  std::uint64_t mem_limit_mb = 0;
  // Per-workload circuit breaker; 0 disables.
  int breaker_threshold = 0;
  int breaker_probe_after = 2;
  // Executions per cell (>= 2 feeds the determinism oracle's data; the
  // daemon default is 1 — cache hits make repeats pointless).
  int repeats = 1;
  // --- crash-drill hooks (tests/check.sh only) -----------------------
  // SIGKILL the daemon after this many executed (non-cached) cells, so
  // the kill-and-restart soak can die mid-sweep deterministically.
  std::uint64_t kill_after = 0;
  // abort() inside the isolated child of every cell whose JobKey
  // contains this substring (requires isolate) — exercises the
  // "crashed" classification end to end.
  std::string crash_cell;
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions opts);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  // Opens the cache, binds the socket, installs the drain handler.
  [[nodiscard]] bool Init(std::string* error = nullptr);

  // Accept loop; returns the process exit code (3 after a graceful
  // SIGINT/SIGTERM drain — the only way Serve returns).
  [[nodiscard]] int Serve();

  [[nodiscard]] const DaemonOptions& options() const { return opts_; }

 private:
  struct Request {
    int fd = -1;
    std::string client;
    std::string kind;    // "sweep" | "ping"
    std::string filter;  // case-insensitive JobKey substring; "" = all
    std::uint64_t deadline_ms = 0;  // 0 = none
    std::chrono::steady_clock::time_point received;
  };

  void AcceptOne();
  void DispatcherMain();
  void ProcessRequest(Request& req);
  void RespondError(int fd, const std::string& status,
                    const std::string& error);
  [[nodiscard]] std::string BuildResponse(
      const std::string& status, const std::string& error,
      const std::vector<sim::JobOutcome>& cells,
      const std::vector<bool>& cached);
  // One cell, end to end: cache probe -> breaker -> ExecuteCell under
  // the isolate -> breaker record -> cache store -> kill_after drill.
  void RunCell(const sim::BatchJob& job,
               std::chrono::steady_clock::time_point deadline,
               sim::JobOutcome& out, bool& cached);

  DaemonOptions opts_;
  ResultCache cache_;
  resilience::CircuitBreaker breaker_;
  AdmissionControl admission_;
  std::unique_ptr<WorkerPool> pool_;
  int listen_fd_ = -1;

  std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<Request> queue_;
  bool stopping_ = false;
  std::thread dispatcher_;

  std::atomic<std::uint64_t> executed_cells_{0};  // kill_after counter
  std::atomic<std::uint64_t> requests_served_{0};
};

}  // namespace dsa::serve
