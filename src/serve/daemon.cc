#include "serve/daemon.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <stdexcept>
#include <utility>

#include "resilience/iofault.h"
#include "resilience/isolate.h"
#include "resilience/journal.h"
#include "resilience/mini_json.h"
#include "resilience/supervisor.h"
#include "serve/flags.h"
#include "serve/proto.h"
#include "sim/error.h"
#include "workloads/workloads.h"

#if defined(__unix__) || defined(__APPLE__)
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>
#define DSA_HAVE_SERVE 1
#else
#define DSA_HAVE_SERVE 0
#endif

namespace dsa::serve {

namespace {

std::string Lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

// The daemon's sweep space IS bench_matrix's batch (same sets, same
// modes, same config tags, default configs), deduplicated by JobKey —
// that is what makes the kill-and-restart soak's bit-identity check
// against a direct `bench_matrix --json` run meaningful
// (scripts/validate_serve.py).
std::vector<sim::BatchJob> SweepJobs(const std::string& filter) {
  const sim::SystemConfig cfg;
  sim::SystemConfig orig_cfg;
  orig_cfg.dsa = engine::DsaConfig::Original();
  const std::string needle = Lower(filter);

  std::vector<sim::BatchJob> jobs;
  std::set<std::string> seen;
  const auto add = [&](const sim::Workload& wl, sim::RunMode mode,
                       const sim::SystemConfig& c, const std::string& ctag) {
    sim::BatchJob job{wl, mode, c, ctag, ""};
    const std::string key = sim::JobKey(job);
    if (!seen.insert(key).second) return;
    if (!needle.empty() && Lower(key).find(needle) == std::string::npos) {
      return;
    }
    jobs.push_back(std::move(job));
  };

  using sim::RunMode;
  for (const sim::Workload& wl : workloads::Article3Set()) {
    for (RunMode mode : {RunMode::kScalar, RunMode::kAutoVec,
                         RunMode::kHandVec, RunMode::kDsa}) {
      add(wl, mode, cfg, "");
    }
  }
  for (const sim::Workload& wl : workloads::Article2Set()) {
    add(wl, RunMode::kDsa, orig_cfg, "orig");
  }
  for (const sim::Workload& wl : workloads::StreamingSet()) {
    add(wl, RunMode::kScalar, cfg, "");
    add(wl, RunMode::kDsa, cfg, "");
  }
  return jobs;
}

std::string AdmissionControl::Admit(const std::string& client) {
  std::lock_guard<std::mutex> lock(mu_);
  if (depth_ >= queue_limit_) {
    return "overload: request queue full (" + std::to_string(queue_limit_) +
           " in flight)";
  }
  const int mine = per_client_[client];
  if (mine >= client_quota_) {
    return "overload: client \"" + client + "\" over quota (" +
           std::to_string(client_quota_) + " in flight)";
  }
  ++depth_;
  ++per_client_[client];
  return "";
}

void AdmissionControl::Done(const std::string& client) {
  std::lock_guard<std::mutex> lock(mu_);
  if (depth_ > 0) --depth_;
  auto it = per_client_.find(client);
  if (it != per_client_.end() && --it->second <= 0) per_client_.erase(it);
}

int AdmissionControl::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return depth_;
}

Daemon::Daemon(DaemonOptions opts)
    : opts_(std::move(opts)),
      breaker_(opts_.breaker_threshold, opts_.breaker_probe_after),
      admission_(opts_.queue_limit, opts_.client_quota) {}

Daemon::~Daemon() {
#if DSA_HAVE_SERVE
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(opts_.socket_path.c_str());
  }
#endif
}

bool Daemon::Init(std::string* error) {
#if DSA_HAVE_SERVE
  if (opts_.socket_path.empty()) {
    if (error != nullptr) *error = "--socket is required";
    return false;
  }
  if (!opts_.crash_cell.empty() && !opts_.isolate) {
    if (error != nullptr) *error = "--crash-cell requires --isolate";
    return false;
  }
  if ((opts_.cell_deadline_ms > 0 || opts_.mem_limit_mb > 0) &&
      !opts_.isolate) {
    if (error != nullptr) {
      *error = "--cell-deadline-ms/--mem-limit-mb require --isolate";
    }
    return false;
  }
  if (opts_.isolate && !resilience::IsolationAvailable()) {
    if (error != nullptr) *error = "--isolate: fork unavailable here";
    return false;
  }
  if (!opts_.cache_dir.empty() && !cache_.Open(opts_.cache_dir, error)) {
    return false;
  }
  // Install the host-I/O fault plan before anything touches the disk, so
  // the very first store/journal write already draws from the plan's
  // deterministic opportunity sequence.
  if (!opts_.io_fault_plan.empty()) {
    try {
      resilience::InstallIoFaultPlan(
          resilience::ParseIoFaultPlan(opts_.io_fault_plan));
    } catch (const std::invalid_argument& e) {
      if (error != nullptr) *error = e.what();
      return false;
    }
  }
  // Scrub before serving: a torn or bit-rotted entry is quarantined on
  // boot, not discovered (and silently recomputed) on first Load.
  if (cache_.open() && opts_.scrub) {
    const ScrubStats s = cache_.Scrub();
    if (s.quarantined > 0) {
      std::fprintf(stderr,
                   "[dsa_serve] cache scrub: quarantined %" PRIu64
                   " of %" PRIu64 " entries\n",
                   s.quarantined, s.checked);
    }
  }

  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  if (opts_.socket_path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) {
      *error = "socket path too long (max " +
               std::to_string(sizeof(addr.sun_path) - 1) + " bytes): " +
               opts_.socket_path;
    }
    return false;
  }
  std::memcpy(addr.sun_path, opts_.socket_path.c_str(),
              opts_.socket_path.size() + 1);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  // A previous daemon instance (cleanly drained or kill -9'd) leaves its
  // socket file behind; binding over it is the restart path.
  (void)::unlink(opts_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    if (error != nullptr) {
      *error = "bind/listen " + opts_.socket_path + ": " +
               std::strerror(errno);
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  // SIGPIPE would kill the daemon when a client hangs up mid-response;
  // write() returning EPIPE is handled instead.
  std::signal(SIGPIPE, SIG_IGN);
  resilience::InstallDrainHandler();
  pool_ = std::make_unique<WorkerPool>(
      PoolOptions{.workers = opts_.workers});
  return true;
#else
  (void)error;
  if (error != nullptr) *error = "serving requires unix sockets";
  return false;
#endif
}

int Daemon::Serve() {
#if DSA_HAVE_SERVE
  dispatcher_ = std::thread(&Daemon::DispatcherMain, this);
  std::printf("[dsa_serve] listening on %s (workers=%d cache=%s)\n",
              opts_.socket_path.c_str(), opts_.workers,
              cache_.open() ? cache_.dir().c_str() : "off");
  std::fflush(stdout);
  while (!resilience::Supervisor::DrainRequested()) {
    pollfd pfd = {listen_fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 200);
    if (pr < 0 && errno != EINTR) break;
    if (pr > 0 && (pfd.revents & POLLIN) != 0) AcceptOne();
  }
  // Graceful drain: stop accepting, let the in-flight request finish,
  // reject everything still queued with the typed overload status.
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
    queue_cv_.notify_all();
    // Reader threads are detached and dereference `this`; teardown must
    // outwait every one of them. Post-stopping_ readers refuse inline
    // and exit quickly (reads are already deadline-bounded).
    readers_cv_.wait(lock, [this] { return readers_ == 0; });
  }
  if (dispatcher_.joinable()) dispatcher_.join();
  pool_->Shutdown();
  ::close(listen_fd_);
  listen_fd_ = -1;
  (void)::unlink(opts_.socket_path.c_str());
  std::printf("[dsa_serve] drained after %" PRIu64 " requests, exiting 3\n",
              requests_served_.load());
  return 3;
#else
  return 1;
#endif
}

void Daemon::AcceptOne() {
#if DSA_HAVE_SERVE
  const int fd = ::accept(listen_fd_, nullptr, nullptr);
  if (fd < 0) return;
  // The frame read happens on a short-lived reader thread, not here: a
  // slow-loris client dripping header bytes must never stall the accept
  // loop for well-behaved clients. Readers are capped so a connection
  // flood degrades to typed refusals instead of unbounded threads.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || readers_ >= kMaxReaders) {
      refused_connections_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      return;
    }
    ++readers_;
  }
  try {
    std::thread(&Daemon::HandleConnection, this, fd).detach();
  } catch (const std::system_error&) {
    refused_connections_.fetch_add(1, std::memory_order_relaxed);
    ::close(fd);
    std::lock_guard<std::mutex> lock(mu_);
    --readers_;
    readers_cv_.notify_all();
  }
#endif
}

void Daemon::HandleConnection(int fd) {
#if DSA_HAVE_SERVE
  // Decrement-and-notify runs under mu_ on every exit path so Serve()'s
  // teardown wait cannot miss the last reader.
  const auto reader_done = [this] {
    std::lock_guard<std::mutex> lock(mu_);
    --readers_;
    readers_cv_.notify_all();
  };
  // Bound each read(2): a peer that stops sending mid-frame times the
  // read out (classified kError with EAGAIN) instead of pinning the
  // reader forever.
  if (opts_.read_deadline_ms > 0) {
    timeval tv = {};
    tv.tv_sec = static_cast<time_t>(opts_.read_deadline_ms / 1000);
    tv.tv_usec =
        static_cast<suseconds_t>((opts_.read_deadline_ms % 1000) * 1000);
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }

  char type = 0;
  std::string json;
  const RecvStatus rs = RecvFrame(fd, type, json);
  if (rs != RecvStatus::kOk) {
    // A torn or corrupt frame is not a request — there is nothing
    // trustworthy to answer, and the CRC already classified it. Census
    // the hostile traffic so `health` can report it.
    if (rs == RecvStatus::kCorrupt) {
      corrupt_frames_.fetch_add(1, std::memory_order_relaxed);
    } else if (rs == RecvStatus::kError &&
               (errno == EAGAIN || errno == EWOULDBLOCK)) {
      read_timeouts_.fetch_add(1, std::memory_order_relaxed);
    }
    ::close(fd);
    reader_done();
    return;
  }
  if (type != kFrameRequest) {
    RespondError(fd, "bad-request", "expected a 'Q' frame");
    reader_done();
    return;
  }
  resilience::JsonValue req;
  if (!resilience::ParseJson(json, req) || !req.is_object()) {
    RespondError(fd, "bad-request", "request is not a JSON object");
    reader_done();
    return;
  }
  const auto field = [&req](std::string_view name) -> std::string {
    const resilience::JsonValue* v = req.Find(name);
    return v != nullptr ? v->AsString() : std::string();
  };
  if (field("schema") != "dsa-serve/1") {
    RespondError(fd, "bad-request",
                 "unknown request schema \"" + field("schema") + "\"");
    reader_done();
    return;
  }
  Request r;
  r.fd = fd;
  r.kind = field("kind").empty() ? "sweep" : field("kind");
  r.client = field("client").empty() ? "anon" : field("client");
  r.filter = field("filter");
  r.received = std::chrono::steady_clock::now();
  r.deadline_ms = opts_.default_deadline_ms;
  if (const resilience::JsonValue* v = req.Find("deadline_ms")) {
    if (!ParseU64Text(v->AsString().c_str(), r.deadline_ms)) {
      RespondError(fd, "bad-request",
                   "deadline_ms " + v->AsString() + " is not a u64");
      reader_done();
      return;
    }
  }
  if (r.kind != "sweep" && r.kind != "ping" && r.kind != "health") {
    RespondError(fd, "bad-request", "unknown kind \"" + r.kind + "\"");
    reader_done();
    return;
  }
  const std::string refused = admission_.Admit(r.client);
  if (!refused.empty()) {
    RespondError(fd, "overload", refused);
    reader_done();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_) {
      queue_.push_back(std::move(r));
      queue_cv_.notify_one();
      // Inline reader_done: mu_ is already held here.
      --readers_;
      readers_cv_.notify_all();
      return;
    }
  }
  // The dispatcher may already have drained its queue; enqueueing now
  // would leak the fd. Refuse inline instead.
  RespondError(fd, "overload", "overload: daemon draining");
  admission_.Done(r.client);
  reader_done();
#endif
}

void Daemon::DispatcherMain() {
#if DSA_HAVE_SERVE
  for (;;) {
    Request req;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and nothing queued
      req = std::move(queue_.front());
      queue_.pop_front();
      if (stopping_) {
        // Drain in progress: everything still queued is refused with the
        // typed overload status instead of silently dropped.
        lock.unlock();
        RespondError(req.fd, "overload", "overload: daemon draining");
        admission_.Done(req.client);
        continue;
      }
    }
    ProcessRequest(req);
    admission_.Done(req.client);
    ++requests_served_;
  }
#endif
}

void Daemon::ProcessRequest(Request& req) {
#if DSA_HAVE_SERVE
  const auto now = std::chrono::steady_clock::now();
  const auto deadline =
      req.deadline_ms > 0
          ? req.received + std::chrono::milliseconds(req.deadline_ms)
          : std::chrono::steady_clock::time_point::max();
  if (now >= deadline) {
    // Expired while queued: refuse without burning simulation time.
    RespondError(req.fd, "deadline",
                 "deadline: request spent its " +
                     std::to_string(req.deadline_ms) + " ms in the queue");
    return;
  }
  if (req.kind == "ping" || req.kind == "health") {
    const std::string body =
        BuildResponse("ok", "", {}, {}, /*health=*/req.kind == "health");
    (void)SendFrame(req.fd, kFrameResponse, body);
    ::close(req.fd);
    return;
  }

  const std::vector<sim::BatchJob> jobs = SweepJobs(req.filter);
  if (jobs.empty()) {
    RespondError(req.fd, "bad-request",
                 "filter \"" + req.filter + "\" matches no cells");
    return;
  }

  std::vector<sim::JobOutcome> cells(jobs.size());
  std::vector<bool> cached(jobs.size(), false);
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::size_t remaining = jobs.size();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    bool queued = pool_->Submit([this, &jobs, &cells, &cached, &done_mu,
                                 &done_cv, &remaining, deadline, i] {
      bool was_cached = false;
      RunCell(jobs[i], deadline, cells[i], was_cached);
      std::lock_guard<std::mutex> lock(done_mu);
      cached[i] = was_cached;
      if (--remaining == 0) done_cv.notify_all();
    });
    if (!queued) {
      // Pool refused (shutdown or every worker retired): classify the
      // cell instead of losing it.
      cells[i].key = sim::JobKey(jobs[i]);
      cells[i].workload_key = sim::WorkloadKey(jobs[i]);
      cells[i].mode = jobs[i].mode;
      cells[i].config_tag = jobs[i].config_tag;
      cells[i].cell_status = "skipped";
      cells[i].error = "overload: worker pool unavailable";
      std::lock_guard<std::mutex> lock(done_mu);
      if (--remaining == 0) done_cv.notify_all();
    }
  }
  {
    std::unique_lock<std::mutex> lock(done_mu);
    while (remaining != 0) {
      if (done_cv.wait_for(lock, std::chrono::milliseconds(500),
                           [&remaining] { return remaining == 0; })) {
        break;
      }
      // Backstop against a hang: if every pool worker has been retired,
      // queued tasks were discarded and will never report back — claim
      // the cells that never started (their key is still empty; every
      // RunCell path fills it first) as refused.
      if (pool_->stats().live_workers == 0) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
          if (!cells[i].key.empty()) continue;
          cells[i].key = sim::JobKey(jobs[i]);
          cells[i].workload_key = sim::WorkloadKey(jobs[i]);
          cells[i].mode = jobs[i].mode;
          cells[i].config_tag = jobs[i].config_tag;
          cells[i].cell_status = "skipped";
          cells[i].error = "overload: worker pool retired";
          --remaining;
        }
      }
    }
  }

  std::string status = "ok";
  if (resilience::Supervisor::DrainRequested()) {
    status = "interrupted";
  } else if (std::chrono::steady_clock::now() >= deadline) {
    status = "deadline";
  }
  const std::string body = BuildResponse(status, "", cells, cached);
  (void)SendFrame(req.fd, kFrameResponse, body);
  ::close(req.fd);
#endif
}

void Daemon::RunCell(const sim::BatchJob& job,
                     std::chrono::steady_clock::time_point deadline,
                     sim::JobOutcome& out, bool& cached) {
  const std::string key = sim::JobKey(job);
  const auto refuse = [&](const char* status, std::string why) {
    out.key = key;
    out.workload_key = sim::WorkloadKey(job);
    out.mode = job.mode;
    out.config_tag = job.config_tag;
    out.cell_status = status;
    out.error = std::move(why);
  };

  // 1. Persistent cache: a completed cell survives any number of daemon
  // restarts and is served bit-identically without re-simulation.
  CacheKey cache_key;
  if (cache_.open()) {
    cache_key = KeyFor(job);
    if (cache_.Load(cache_key, out)) {
      out.restored = true;
      cached = true;
      return;
    }
  }

  // 2. Drain / request deadline: unstarted cells are abandoned, typed.
  if (resilience::Supervisor::DrainRequested()) {
    refuse("cancelled", "cancelled: daemon draining");
    return;
  }
  if (std::chrono::steady_clock::now() >= deadline) {
    refuse("cancelled", "cancelled: request deadline expired");
    return;
  }

  // 3. Circuit breaker: a workload that keeps dying is failed fast.
  if (breaker_.enabled() && !breaker_.Allow(job.workload.name)) {
    refuse("skipped",
           sim::DsaError(sim::DsaErrorCode::kBreakerOpen,
                         "circuit breaker open for " + job.workload.name)
               .what());
    return;
  }

  // 4. Execute through the same classification path as a CLI sweep.
  sim::RunnerOptions ro;
  ro.repeats = opts_.repeats;
  const bool crash_this = !opts_.crash_cell.empty() &&
                          key.find(opts_.crash_cell) != std::string::npos;
  ro.run_fn = [this, crash_this, &key](const sim::Workload& wl,
                                       sim::RunMode mode,
                                       const sim::SystemConfig& cfg) {
    if (opts_.isolate) {
      const resilience::IsolateOptions io{opts_.cell_deadline_ms,
                                          opts_.mem_limit_mb};
      return resilience::RunIsolated(
          [&] {
            if (crash_this) std::abort();  // crash drill, child only
            return sim::Run(wl, mode, cfg);
          },
          io, key);
    }
    return sim::Run(wl, mode, cfg);
  };
  sim::ExecuteCell(job, ro, out);
  if (breaker_.enabled()) {
    breaker_.Record(job.workload.name, out.cell_status == "ok");
  }

  // 5. Promote to the cache, then the kill drill (in that order: the
  // soak test relies on every *completed* cell being durable before the
  // daemon dies).
  if (out.cell_status == "ok" && cache_.open()) {
    (void)cache_.Store(cache_key, out);
  }
  const std::uint64_t done = ++executed_cells_;
  if (opts_.kill_after > 0 && done >= opts_.kill_after) {
    std::fprintf(stderr, "[dsa_serve] kill drill: SIGKILL after %" PRIu64
                         " executed cells\n",
                 done);
    std::fflush(stderr);
    (void)::raise(SIGKILL);
  }
}

void Daemon::RespondError(int fd, const std::string& status,
                          const std::string& error) {
#if DSA_HAVE_SERVE
  (void)SendFrame(fd, kFrameResponse, BuildResponse(status, error, {}, {}));
  ::close(fd);
#endif
}

std::string Daemon::BuildResponse(const std::string& status,
                                  const std::string& error,
                                  const std::vector<sim::JobOutcome>& cells,
                                  const std::vector<bool>& cached,
                                  bool health) {
  using resilience::JsonEscape;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  std::uint64_t from_cache = 0;
  std::string body = "{\"schema\":\"dsa-serve/1\",\"status\":\"";
  body += JsonEscape(status);
  body += "\",\"error\":\"";
  body += JsonEscape(error);
  body += "\",\"engine\":\"";
  body += kEngineVersion;
  body += "\",\"cells\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const sim::JobOutcome& c = cells[i];
    const bool hit = i < cached.size() && cached[i];
    if (c.cell_status == "ok") {
      ++ok;
    } else {
      ++failed;
    }
    if (hit) ++from_cache;
    if (i > 0) body += ',';
    body += "{\"job\":\"";
    body += JsonEscape(c.key);
    body += "\",\"workload\":\"";
    body += JsonEscape(c.workload_key);
    body += "\",\"mode\":\"";
    body += ToString(c.mode);
    body += "\",\"config_tag\":\"";
    body += JsonEscape(c.config_tag);
    body += "\",\"cell_status\":\"";
    body += JsonEscape(c.cell_status);
    body += "\",\"cached\":";
    body += hit ? "true" : "false";
    body += ",\"attempts\":";
    body += std::to_string(c.attempts);
    body += ",\"error\":\"";
    body += JsonEscape(c.error);
    body += "\"";
    if (c.cell_status == "ok" && !c.runs.empty()) {
      char digest[32];
      std::snprintf(digest, sizeof(digest), "0x%016" PRIx64,
                    c.result().output_digest);
      body += ",\"cycles\":";
      body += std::to_string(c.result().cycles);
      body += ",\"output_digest\":\"";
      body += digest;
      body += "\"";
    }
    body += "}";
  }
  body += "],\"cells_ok\":";
  body += std::to_string(ok);
  body += ",\"cells_failed\":";
  body += std::to_string(failed);
  body += ",\"cells_cached\":";
  body += std::to_string(from_cache);

  const CacheStats cs = cache_.stats();
  body += ",\"cache\":{\"enabled\":";
  body += cache_.open() ? "true" : "false";
  body += ",\"hits\":";
  body += std::to_string(cs.hits);
  body += ",\"misses\":";
  body += std::to_string(cs.misses);
  body += ",\"stores\":";
  body += std::to_string(cs.stores);
  body += ",\"quarantined\":";
  body += std::to_string(cs.quarantined);
  body += ",\"store_failures\":";
  body += std::to_string(cs.store_failures);
  body += ",\"fsync_failures\":";
  body += std::to_string(cs.fsync_failures);
  body += "}";

  if (pool_ != nullptr) {
    const PoolStats ps = pool_->stats();
    body += ",\"pool\":{\"executed\":";
    body += std::to_string(ps.executed);
    body += ",\"escaped\":";
    body += std::to_string(ps.escaped);
    body += ",\"respawns\":";
    body += std::to_string(ps.respawns);
    body += ",\"discarded\":";
    body += std::to_string(ps.discarded);
    body += ",\"live_workers\":";
    body += std::to_string(ps.live_workers);
    body += "}";
  }

  body += ",\"breaker\":[";
  bool first = true;
  for (const sim::BreakerCensusEntry& e : breaker_.Census()) {
    if (!first) body += ',';
    first = false;
    body += "{\"workload\":\"";
    body += JsonEscape(e.workload);
    body += "\",\"state\":\"";
    body += JsonEscape(e.state);
    body += "\",\"failures\":";
    body += std::to_string(e.failures);
    body += ",\"trips\":";
    body += std::to_string(e.trips);
    body += ",\"skipped\":";
    body += std::to_string(e.skipped);
    body += "}";
  }
  body += "]";

  if (health) {
    // kHealth census (docs/SERVING.md): hostile-client counters, the
    // boot scrub verdict and the installed io-fault plan with its
    // per-kind opportunity/fired tallies.
    const ScrubStats ss = cache_.scrub_stats();
    body += ",\"health\":{\"requests_served\":";
    body += std::to_string(requests_served_.load(std::memory_order_relaxed));
    body += ",\"corrupt_frames\":";
    body += std::to_string(corrupt_frames_.load(std::memory_order_relaxed));
    body += ",\"read_timeouts\":";
    body += std::to_string(read_timeouts_.load(std::memory_order_relaxed));
    body += ",\"refused_connections\":";
    body +=
        std::to_string(refused_connections_.load(std::memory_order_relaxed));
    body += ",\"scrub\":{\"checked\":";
    body += std::to_string(ss.checked);
    body += ",\"ok\":";
    body += std::to_string(ss.ok);
    body += ",\"quarantined\":";
    body += std::to_string(ss.quarantined);
    body += "},\"io_faults\":{\"active\":";
    body += resilience::IoFaultsActive() ? "true" : "false";
    body += ",\"plan\":\"";
    body += JsonEscape(resilience::FormatIoFaultPlan(
        resilience::CurrentIoFaultPlan()));
    body += "\",\"census\":{";
    const resilience::IoFaultCensus census = resilience::GetIoFaultCensus();
    for (int k = 0; k < resilience::kNumIoFaultKinds; ++k) {
      if (k > 0) body += ',';
      body += "\"";
      body += resilience::ToString(static_cast<resilience::IoFaultKind>(k));
      body += "\":{\"opportunities\":";
      body += std::to_string(census.opportunities[static_cast<std::size_t>(k)]);
      body += ",\"fired\":";
      body += std::to_string(census.fired[static_cast<std::size_t>(k)]);
      body += "}";
    }
    body += "}}}";
  }

  body += "}";
  return body;
}

}  // namespace dsa::serve
