// Persistent content-addressed result cache of the serving daemon
// (docs/SERVING.md): one file per completed cell, keyed by the workload
// digest, the config digest, the engine version and the bench-schema
// version, so a daemon restart — including a kill -9 mid-sweep — serves
// every previously completed cell bit-identically without re-simulating,
// and any engine or schema change invalidates the whole cache by
// construction (the version labels are part of the key hash, so stale
// entries are simply never addressed again).
//
// Entry format: one journal-style CRC-framed line, `CCCCCCCC <json>\n`
// (the same framing as the crash-safe journal, docs/RESILIENCE.md),
// where the JSON carries the full key for verification plus the cell's
// serialized JobOutcome. Writes go to a temporary sibling, fsync, then
// an atomic rename — a torn write can never be observed under the final
// name. A corrupt or mismatched entry is quarantined (renamed to
// `<name>.quarantine`) and recomputed instead of trusted.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "sim/runner.h"

namespace dsa::serve {

// Version labels baked into every cache key. Bump kEngineVersion on any
// change that can alter simulated results (timing, energy, engine
// behaviour); kBenchSchema tracks the serialized-outcome contract
// (docs/BENCH_SCHEMA.md) and must match the schema WriteBenchJson emits.
inline constexpr std::string_view kEngineVersion = "dsa-engine/9";
inline constexpr std::string_view kBenchSchema = "dsa-bench-json/6";
inline constexpr std::string_view kCacheEntrySchema = "dsa-serve-cache/1";

// FNV-1a 64-bit digest of the workload's complete definition: name,
// memory size, all three program variants instruction by instruction,
// declared output regions, streaming payload size, generator provenance,
// and the initial memory image the init hook writes. Two workloads with
// equal digests run the same simulation.
[[nodiscard]] std::uint64_t WorkloadDigest(const sim::Workload& wl);

// FNV-1a 64-bit digest over every SystemConfig field the simulation
// reads (timing, memory hierarchy, DSA structures/features/latencies,
// energy parameters, fault plan, step budget, reference path, dispatch
// engine, trace enablement).
[[nodiscard]] std::uint64_t ConfigDigest(const sim::SystemConfig& cfg);

struct CacheKey {
  std::string job_key;  // "name[#wtag]@mode[/ctag]" (sim::JobKey)
  std::uint64_t workload_digest = 0;
  std::uint64_t config_digest = 0;
  std::string engine_version{kEngineVersion};
  std::string bench_schema{kBenchSchema};

  // Content address: 16 lowercase hex digits of the combined key hash,
  // plus the ".cell" suffix.
  [[nodiscard]] std::string FileName() const;
};

// The full key for one batch job (digests computed here).
[[nodiscard]] CacheKey KeyFor(const sim::BatchJob& job);

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;        // absent or version-mismatched entries
  std::uint64_t stores = 0;        // entries promoted to disk
  std::uint64_t quarantined = 0;   // corrupt entries moved aside
  std::uint64_t store_failures = 0;
  // fsync(2) refused durability during a store: the tmp-file fsync (also
  // counted as a store_failure — the entry is never published) or the
  // directory fsync after the rename (the entry IS published and valid,
  // but the rename itself may not survive a power cut). Either way the
  // daemon degrades to recompute-without-promote instead of pretending
  // the disk accepted the entry.
  std::uint64_t fsync_failures = 0;
};

// Startup cache scrub census (docs/SERVING.md): every `*.cell` entry is
// structurally verified before the daemon serves from the directory.
struct ScrubStats {
  std::uint64_t checked = 0;      // entries examined
  std::uint64_t ok = 0;           // structurally valid entries kept
  std::uint64_t quarantined = 0;  // corrupt entries moved aside on boot
};

class ResultCache {
 public:
  ResultCache() = default;

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // Creates `dir` if needed. False with `error` filled when the
  // directory cannot be created or is not writable.
  [[nodiscard]] bool Open(const std::string& dir, std::string* error = nullptr);

  [[nodiscard]] bool open() const { return !dir_.empty(); }
  [[nodiscard]] const std::string& dir() const { return dir_; }

  // Looks the key up. True fills `out` with the recorded outcome
  // (cell_status "ok" by construction — only completed cells are
  // stored). A corrupt entry is quarantined and reported as a miss; an
  // entry whose stored key fields disagree with `key` (hash collision,
  // hand-edited file) is a miss too.
  [[nodiscard]] bool Load(const CacheKey& key, sim::JobOutcome& out);

  // Promotes one completed cell to disk (atomic tmp + rename, fsync'd
  // before the rename so a kill -9 right after Store returns can never
  // lose or tear the entry). Call only for cell_status == "ok". Host I/O
  // routes through the injectable fault shims (resilience/iofault.h), so
  // every failure mode — ENOSPC, EIO, short writes, fsync refusal, a
  // failed rename — has a deterministic rehearsal path.
  [[nodiscard]] bool Store(const CacheKey& key, const sim::JobOutcome& out);

  // Boot-time integrity sweep: verifies the CRC frame, schema label, key
  // fields and cell payload of every `*.cell` entry in the directory and
  // quarantines (renames to `<name>.quarantine`) anything invalid, so a
  // torn or bit-rotted entry is caught before the daemon starts serving
  // rather than on first Load. Returns the census; also retrievable via
  // scrub_stats(). Quarantines here are NOT double-counted into
  // CacheStats::quarantined (that counter tracks serving-time findings).
  ScrubStats Scrub();

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] ScrubStats scrub_stats() const;

 private:
  std::string dir_;
  mutable std::mutex mu_;
  CacheStats stats_;
  ScrubStats scrub_stats_;
};

}  // namespace dsa::serve
