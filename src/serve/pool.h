// Persistent worker pool of the serving daemon (docs/SERVING.md): a
// fixed set of long-lived threads draining one shared task queue. The
// pool is crash-tolerant at the *thread* level the same way the fork
// isolate is at the *process* level: a task whose exception escapes
// kills only its worker, and a supervisor thread respawns the worker
// with bounded exponential backoff. A worker that keeps dying is
// retired after `max_strikes` consecutive escapes so a poisoned queue
// cannot spin the host at full respawn rate forever.
//
// Note the division of labour: simulation cells never rely on this —
// SIGSEGV/OOM/deadline are contained by the fork isolate and surface as
// classified DsaError, which ExecuteCell turns into a cell status. The
// pool's respawn path is the second line of defence, for in-process
// failures (bad_alloc, logic bugs) that would otherwise take down the
// daemon.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dsa::serve {

struct PoolOptions {
  int workers = 2;
  // Respawn backoff: min(backoff_base_ms << strikes, backoff_cap_ms),
  // where `strikes` counts consecutive escapes of that worker slot.
  int backoff_base_ms = 10;
  int backoff_cap_ms = 2000;
  // Consecutive escapes after which a worker slot is retired for good.
  int max_strikes = 5;
};

struct PoolStats {
  std::uint64_t executed = 0;   // tasks that ran to completion
  std::uint64_t escaped = 0;    // tasks whose exception escaped (worker died)
  std::uint64_t respawns = 0;   // workers relaunched after an escape
  std::uint64_t discarded = 0;  // queued tasks dropped (all workers retired)
  int live_workers = 0;
};

class WorkerPool {
 public:
  explicit WorkerPool(const PoolOptions& opts = {});
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Enqueues one task. False once Shutdown began or every worker slot
  // has been retired (the task is not queued).
  bool Submit(std::function<void()> task);

  // Blocks until the queue is empty and no task is in flight. If every
  // worker retires while tasks are still queued, the leftovers are
  // discarded (counted in stats) so Drain can never hang.
  void Drain();

  // Drains, then joins all threads. Idempotent.
  void Shutdown();

  [[nodiscard]] PoolStats stats() const;

 private:
  struct Slot {
    std::thread thread;
    int strikes = 0;
    bool dead = false;     // worker exited after an escape; needs respawn
    bool retired = false;  // exceeded max_strikes; never respawned
  };

  void WorkerMain(int slot);
  void SupervisorMain();
  [[nodiscard]] int live_workers_locked() const;

  PoolOptions opts_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers: queue non-empty or stopping
  std::condition_variable idle_cv_;   // Drain: queue empty and nothing running
  std::condition_variable reap_cv_;   // supervisor: a worker died or stopping
  std::deque<std::function<void()>> queue_;
  std::vector<Slot> slots_;
  std::thread supervisor_;
  PoolStats stats_;
  int in_flight_ = 0;
  bool stopping_ = false;
  bool shut_down_ = false;
};

}  // namespace dsa::serve
