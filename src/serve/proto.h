// Wire protocol of the simulation daemon (docs/SERVING.md): every
// message on the Unix-domain socket is exactly one frame
//
//   "DSAS" | u32 payload length (LE) | u32 CRC-32 of the payload (LE) |
//   payload = one record-type byte + JSON
//
// — the same length-prefixed, CRC-checked shape as the "DSAI" isolation
// pipe (src/resilience/isolate.cc), so a torn or corrupted frame is
// detected and classified instead of being parsed. A connection carries
// one request frame ('Q') and one response frame ('S').
#pragma once

#include <cstdint>
#include <string>

namespace dsa::serve {

inline constexpr char kProtoMagic[4] = {'D', 'S', 'A', 'S'};
inline constexpr char kFrameRequest = 'Q';
inline constexpr char kFrameResponse = 'S';

// A frame claiming a payload larger than this is refused as corrupt
// before any allocation happens — a garbage length prefix must not turn
// into a multi-gigabyte read.
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

enum class RecvStatus {
  kOk,       // one complete frame decoded, CRC verified
  kClosed,   // clean EOF before the first header byte
  kCorrupt,  // bad magic, oversize length, CRC mismatch, or a torn frame
  kError,    // read(2) failed
};

[[nodiscard]] std::string_view ToString(RecvStatus s);

// Sends one frame; retries EINTR/short writes. False when the peer is
// gone or the payload exceeds kMaxFrameBytes.
[[nodiscard]] bool SendFrame(int fd, char type, const std::string& json);

// Receives exactly one frame (blocking).
[[nodiscard]] RecvStatus RecvFrame(int fd, char& type, std::string& json);

}  // namespace dsa::serve
