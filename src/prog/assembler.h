// Label-based macro assembler for the mini ISA. Workloads are written
// against this builder, which resolves forward branch targets via fixups.
// The helpers mirror common ARM idioms (post-increment streaming loads,
// compare-and-branch loop latches) so that emitted code has the shape the
// DSA's loop detector expects from real compiled binaries.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "prog/program.h"

namespace dsa::prog {

class Assembler {
 public:
  using Label = int;

  // Creates a fresh, not-yet-bound label.
  Label NewLabel();
  // Binds a label to the current pc.
  void Bind(Label l);

  // --- raw emission -------------------------------------------------------
  void Emit(const isa::Instruction& ins);

  // --- scalar convenience -------------------------------------------------
  void Movi(int rd, std::int32_t imm);
  void Mov(int rd, int rm);
  void Ldr(int rd, int rn, std::int32_t post_inc = 0, std::int32_t off = 0);
  void Ldrb(int rd, int rn, std::int32_t post_inc = 0, std::int32_t off = 0);
  void Ldrh(int rd, int rn, std::int32_t post_inc = 0, std::int32_t off = 0);
  void Str(int rd, int rn, std::int32_t post_inc = 0, std::int32_t off = 0);
  void Strb(int rd, int rn, std::int32_t post_inc = 0, std::int32_t off = 0);
  void Strh(int rd, int rn, std::int32_t post_inc = 0, std::int32_t off = 0);
  void Alu(isa::Opcode op, int rd, int rn, int rm);
  void AluImm(isa::Opcode op, int rd, int rn, std::int32_t imm);
  void Mla(int rd, int rn, int rm, int ra);
  void Cmp(int rn, int rm);
  void Cmpi(int rn, std::int32_t imm);
  void B(isa::Cond c, Label target);
  void Bl(Label target);
  void Ret();
  void Nop();
  void Halt();

  // --- vector convenience -------------------------------------------------
  void Vld1(isa::VecType t, int qd, int rn, bool writeback = true);
  void Vst1(isa::VecType t, int qd, int rn, bool writeback = true);
  void VldLane(isa::VecType t, int qd, int lane, int rn, bool writeback = true);
  void VstLane(isa::VecType t, int qd, int lane, int rn, bool writeback = true);
  void Vdup(isa::VecType t, int qd, int rn);
  void Vop(isa::Opcode op, isa::VecType t, int qd, int qn, int qm);
  void Vmla(isa::VecType t, int qd, int qn, int qm);
  void VShift(isa::Opcode op, isa::VecType t, int qd, int qn, std::int32_t imm);
  void Vbsl(int qd, int qn, int qm);
  void VmovToScalar(isa::VecType t, int rd, int qn, int lane);
  void VmovFromScalar(isa::VecType t, int qd, int lane, int rn);

  [[nodiscard]] std::size_t pc() const { return code_.size(); }

  // Resolves all fixups and returns the finished program. Throws if a used
  // label was never bound.
  [[nodiscard]] Program Finish();

 private:
  struct Fixup {
    std::size_t pc;
    Label label;
  };

  std::vector<isa::Instruction> code_;
  std::vector<std::int64_t> label_pc_;  // -1 = unbound
  std::vector<Fixup> fixups_;
};

}  // namespace dsa::prog
