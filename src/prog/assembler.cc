#include "prog/assembler.h"

#include <sstream>
#include <stdexcept>

namespace dsa::prog {

using isa::Instruction;
using isa::Opcode;

std::string Program::Disassemble() const {
  std::ostringstream os;
  for (std::size_t pc = 0; pc < code_.size(); ++pc) {
    os << pc << ":\t" << code_[pc].ToAsm() << '\n';
  }
  return os.str();
}

Assembler::Label Assembler::NewLabel() {
  label_pc_.push_back(-1);
  return static_cast<Label>(label_pc_.size() - 1);
}

void Assembler::Bind(Label l) {
  if (l < 0 || static_cast<std::size_t>(l) >= label_pc_.size()) {
    throw std::out_of_range("unknown label");
  }
  if (label_pc_[l] != -1) throw std::logic_error("label bound twice");
  label_pc_[l] = static_cast<std::int64_t>(code_.size());
}

void Assembler::Emit(const Instruction& ins) { code_.push_back(ins); }

void Assembler::Movi(int rd, std::int32_t imm) {
  Emit(isa::MakeMovi(rd, imm));
}

void Assembler::Mov(int rd, int rm) {
  Instruction i;
  i.op = Opcode::kMov;
  i.rd = rd;
  i.rm = rm;
  Emit(i);
}

void Assembler::Ldr(int rd, int rn, std::int32_t post_inc, std::int32_t off) {
  Emit(isa::MakeLoad(Opcode::kLdr, rd, rn, post_inc, off));
}
void Assembler::Ldrb(int rd, int rn, std::int32_t post_inc, std::int32_t off) {
  Emit(isa::MakeLoad(Opcode::kLdrb, rd, rn, post_inc, off));
}
void Assembler::Ldrh(int rd, int rn, std::int32_t post_inc, std::int32_t off) {
  Emit(isa::MakeLoad(Opcode::kLdrh, rd, rn, post_inc, off));
}
void Assembler::Str(int rd, int rn, std::int32_t post_inc, std::int32_t off) {
  Emit(isa::MakeStore(Opcode::kStr, rd, rn, post_inc, off));
}
void Assembler::Strb(int rd, int rn, std::int32_t post_inc, std::int32_t off) {
  Emit(isa::MakeStore(Opcode::kStrb, rd, rn, post_inc, off));
}
void Assembler::Strh(int rd, int rn, std::int32_t post_inc, std::int32_t off) {
  Emit(isa::MakeStore(Opcode::kStrh, rd, rn, post_inc, off));
}

void Assembler::Alu(Opcode op, int rd, int rn, int rm) {
  Emit(isa::MakeAlu(op, rd, rn, rm));
}

void Assembler::AluImm(Opcode op, int rd, int rn, std::int32_t imm) {
  Emit(isa::MakeAluImm(op, rd, rn, imm));
}

void Assembler::Mla(int rd, int rn, int rm, int ra) {
  Instruction i;
  i.op = Opcode::kMla;
  i.rd = rd;
  i.rn = rn;
  i.rm = rm;
  i.ra = ra;
  Emit(i);
}

void Assembler::Cmp(int rn, int rm) { Emit(isa::MakeCmp(rn, rm)); }
void Assembler::Cmpi(int rn, std::int32_t imm) { Emit(isa::MakeCmpi(rn, imm)); }

void Assembler::B(isa::Cond c, Label target) {
  fixups_.push_back({code_.size(), target});
  Emit(isa::MakeBranch(c, 0));
}

void Assembler::Bl(Label target) {
  fixups_.push_back({code_.size(), target});
  Instruction i;
  i.op = Opcode::kBl;
  Emit(i);
}

void Assembler::Ret() {
  Instruction i;
  i.op = Opcode::kRet;
  Emit(i);
}

void Assembler::Nop() { Emit(Instruction{}); }
void Assembler::Halt() { Emit(isa::MakeHalt()); }

void Assembler::Vld1(isa::VecType t, int qd, int rn, bool writeback) {
  Instruction i;
  i.op = Opcode::kVld1;
  i.vt = t;
  i.rd = qd;
  i.rn = rn;
  i.post_inc = writeback ? 16 : 0;
  Emit(i);
}

void Assembler::Vst1(isa::VecType t, int qd, int rn, bool writeback) {
  Instruction i;
  i.op = Opcode::kVst1;
  i.vt = t;
  i.rd = qd;
  i.rn = rn;
  i.post_inc = writeback ? 16 : 0;
  Emit(i);
}

void Assembler::VldLane(isa::VecType t, int qd, int lane, int rn,
                        bool writeback) {
  Instruction i;
  i.op = Opcode::kVldLane;
  i.vt = t;
  i.rd = qd;
  i.rn = rn;
  i.imm = lane;
  i.post_inc = writeback ? isa::LaneBytes(t) : 0;
  Emit(i);
}

void Assembler::VstLane(isa::VecType t, int qd, int lane, int rn,
                        bool writeback) {
  Instruction i;
  i.op = Opcode::kVstLane;
  i.vt = t;
  i.rd = qd;
  i.rn = rn;
  i.imm = lane;
  i.post_inc = writeback ? isa::LaneBytes(t) : 0;
  Emit(i);
}

void Assembler::Vdup(isa::VecType t, int qd, int rn) {
  Instruction i;
  i.op = Opcode::kVdup;
  i.vt = t;
  i.rd = qd;
  i.rn = rn;
  Emit(i);
}

void Assembler::Vop(Opcode op, isa::VecType t, int qd, int qn, int qm) {
  Instruction i;
  i.op = op;
  i.vt = t;
  i.rd = qd;
  i.rn = qn;
  i.rm = qm;
  Emit(i);
}

void Assembler::Vmla(isa::VecType t, int qd, int qn, int qm) {
  Instruction i;
  i.op = Opcode::kVmla;
  i.vt = t;
  i.rd = qd;
  i.rn = qn;
  i.rm = qm;
  i.ra = qd;
  Emit(i);
}

void Assembler::VShift(Opcode op, isa::VecType t, int qd, int qn,
                       std::int32_t imm) {
  Instruction i;
  i.op = op;
  i.vt = t;
  i.rd = qd;
  i.rn = qn;
  i.imm = imm;
  Emit(i);
}

void Assembler::Vbsl(int qd, int qn, int qm) {
  Instruction i;
  i.op = Opcode::kVbsl;
  i.rd = qd;
  i.rn = qn;
  i.rm = qm;
  Emit(i);
}

void Assembler::VmovToScalar(isa::VecType t, int rd, int qn, int lane) {
  Instruction i;
  i.op = Opcode::kVmovToScalar;
  i.vt = t;
  i.rd = rd;
  i.rn = qn;
  i.imm = lane;
  Emit(i);
}

void Assembler::VmovFromScalar(isa::VecType t, int qd, int lane, int rn) {
  Instruction i;
  i.op = Opcode::kVmovFromScalar;
  i.vt = t;
  i.rd = qd;
  i.rn = rn;
  i.imm = lane;
  Emit(i);
}

Program Assembler::Finish() {
  for (const Fixup& f : fixups_) {
    const std::int64_t target = label_pc_.at(f.label);
    if (target < 0) throw std::logic_error("unbound label used in branch");
    code_.at(f.pc).imm = static_cast<std::int32_t>(target);
  }
  fixups_.clear();
  return Program(std::move(code_));
}

}  // namespace dsa::prog
