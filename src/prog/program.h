// Program container: a flat instruction sequence with symbolic metadata.
// Program addresses (PCs) are instruction indices, as in the paper's
// trace-level model where the DSA compares instruction memory addresses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.h"

namespace dsa::prog {

class Program {
 public:
  Program() = default;
  explicit Program(std::vector<isa::Instruction> code)
      : code_(std::move(code)) {}

  [[nodiscard]] std::size_t size() const { return code_.size(); }
  [[nodiscard]] bool empty() const { return code_.empty(); }
  [[nodiscard]] const isa::Instruction& at(std::size_t pc) const {
    return code_.at(pc);
  }
  [[nodiscard]] isa::Instruction& at(std::size_t pc) { return code_.at(pc); }
  [[nodiscard]] const std::vector<isa::Instruction>& code() const {
    return code_;
  }
  [[nodiscard]] std::vector<isa::Instruction>& code() { return code_; }

  void Append(const isa::Instruction& ins) { code_.push_back(ins); }

  // Full disassembly listing, one instruction per line with its pc.
  [[nodiscard]] std::string Disassemble() const;

 private:
  std::vector<isa::Instruction> code_;
};

}  // namespace dsa::prog
