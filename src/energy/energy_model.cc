#include "energy/energy_model.h"

namespace dsa::energy {

EnergyBreakdown ComputeEnergy(const EnergyParams& p, const cpu::CpuStats& cpu,
                              const mem::Hierarchy& mem, std::uint64_t cycles,
                              const engine::DsaStats* dsa, bool neon_present) {
  EnergyBreakdown e;

  const double scalar = static_cast<double>(cpu.retired_scalar);
  const double vec = static_cast<double>(cpu.retired_vector);
  const double mem_ops = static_cast<double>(cpu.mem_reads + cpu.mem_writes);

  e.core_dynamic = scalar * p.scalar_instr + mem_ops * p.mem_instr_extra +
                   static_cast<double>(cpu.branches) * p.branch_extra +
                   static_cast<double>(cpu.mispredicts) * p.mispredict_flush;
  e.neon_dynamic = vec * p.vector_instr;

  e.cache_dram =
      static_cast<double>(mem.l1().stats().accesses()) * p.l1_access +
      static_cast<double>(mem.l2().stats().accesses()) * p.l2_access +
      static_cast<double>(mem.dram_accesses()) * p.dram_access;

  e.core_static = static_cast<double>(cycles) * p.core_static;
  if (neon_present) {
    e.neon_static = static_cast<double>(cycles) * p.neon_static;
  }

  if (dsa != nullptr) {
    e.dsa_static = static_cast<double>(cycles) * p.dsa_static;
    e.dsa_dynamic =
        static_cast<double>(dsa->analysis_cycles) * p.dsa_analysis_per_instr +
        static_cast<double>(dsa->dsa_cache_accesses) * p.dsa_cache_access +
        static_cast<double>(dsa->vc_accesses) * p.vc_access +
        static_cast<double>(dsa->array_map_accesses) * p.array_map_access;
  }
  return e;
}

AreaReport ComputeArea(const AreaParams& p, std::uint32_t dsa_cache_bytes,
                       std::uint32_t vc_bytes, std::uint32_t array_maps) {
  AreaReport r;
  r.arm_core = p.arm_core_um2;
  r.dsa_logic = p.dsa_logic_um2;
  const double dsa_bits =
      (static_cast<double>(dsa_cache_bytes) + vc_bytes + array_maps * 16.0) *
      8.0;
  const double dsa_caches = dsa_bits * p.um2_per_sram_bit;
  r.arm_with_caches = p.arm_core_um2 + p.arm_cache_um2;
  r.dsa_with_caches = p.dsa_logic_um2 + dsa_caches;
  r.logic_overhead_pct = 100.0 * r.dsa_logic / r.arm_core;
  r.total_overhead_pct = 100.0 * r.dsa_with_caches / r.arm_with_caches;
  return r;
}

}  // namespace dsa::energy
