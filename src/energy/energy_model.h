// Event-based energy model (the reproduction's McPAT + RTL stand-in,
// Section 5.2) and the component area model behind Article 1's Table 3.
// Per-event energies are in nanojoules of a of 28nm-class embedded core at
// 1 GHz; only *relative* results are meaningful, matching the paper's
// normalized "energy savings over ARM original execution" reporting.
#pragma once

#include <cstdint>
#include <string>

#include "cpu/cpu.h"
#include "engine/stats.h"
#include "mem/cache.h"

namespace dsa::energy {

struct EnergyParams {
  // Core dynamic energy.
  double scalar_instr = 0.120;    // fetch + decode + int execute
  double mem_instr_extra = 0.060; // AGU + LSQ on top of scalar_instr
  double branch_extra = 0.020;    // predictor + BTB
  double mispredict_flush = 0.500;
  // One NEON instruction moves a 128-bit datapath: costlier than a scalar
  // op, far cheaper than the `lanes` scalar ops it replaces.
  double vector_instr = 0.300;
  // Memory hierarchy per access.
  double l1_access = 0.050;
  double l2_access = 0.350;
  double dram_access = 4.000;
  // Static (leakage) power per cycle.
  double core_static = 0.080;
  double neon_static = 0.025;
  double dsa_static = 0.004;  // the DSA logic is ~2% of the core (Table 3)
  // DSA dynamic events.
  double dsa_analysis_per_instr = 0.008;  // observer datapath switching
  double dsa_cache_access = 0.020;
  double vc_access = 0.010;
  double array_map_access = 0.006;
};

struct EnergyBreakdown {
  double core_dynamic = 0;
  double core_static = 0;
  double neon_dynamic = 0;
  double neon_static = 0;
  double cache_dram = 0;
  double dsa_dynamic = 0;
  double dsa_static = 0;

  [[nodiscard]] double total() const {
    return core_dynamic + core_static + neon_dynamic + neon_static +
           cache_dram + dsa_dynamic + dsa_static;
  }
};

// Computes the energy of one run. `dsa` may be nullptr (no DSA attached);
// `neon_present` charges NEON leakage for systems with the engine wired in.
[[nodiscard]] EnergyBreakdown ComputeEnergy(const EnergyParams& p,
                                            const cpu::CpuStats& cpu,
                                            const mem::Hierarchy& mem,
                                            std::uint64_t cycles,
                                            const engine::DsaStats* dsa,
                                            bool neon_present);

// ---------------------------------------------------------------------------
// Area model (Article 1 Table 3). Logic areas come from the paper's RTL
// synthesis; SRAM area is derived from bit counts so cache sweeps in the
// ablation benches rescale the overhead.
struct AreaParams {
  double arm_core_um2 = 610173.0;     // Cadence RTL Compiler result
  double dsa_logic_um2 = 13274.0;     // DSA detection logic
  double arm_cache_um2 = 182540.0;    // L1 subsystem of the synthesized core
  double um2_per_sram_bit = 0.935;    // calibrated to the paper's DSA caches
};

struct AreaReport {
  double arm_core = 0;
  double dsa_logic = 0;
  double arm_with_caches = 0;
  double dsa_with_caches = 0;
  double logic_overhead_pct = 0;
  double total_overhead_pct = 0;
};

[[nodiscard]] AreaReport ComputeArea(const AreaParams& p,
                                     std::uint32_t dsa_cache_bytes,
                                     std::uint32_t vc_bytes,
                                     std::uint32_t array_maps);

}  // namespace dsa::energy
