// Threaded-code dispatch engine (docs/DISPATCH.md).
//
// BuildThreaded() lowers the program once into one TSlot per pc: a handler
// id plus a packed operand record (POp) holding every field the handler
// reads, with per-op stall costs resolved at lowering time. The three
// batched run loops (free / DSA-idle skip / covered takeover) share one
// computed-goto body, ThreadedBody<TKind>, which dispatches indirectly
// through a per-instantiation label table — no central switch, one
// indirect jump per handler, and the architectural hot state (register
// file, cmp flags, pc, stat accumulators) lives in provably unaliased
// locals for the whole batch.
//
// A superinstruction pass fuses the hottest retire sequences from the
// tracer profiles (induction latch triples subi/addi+cmpi+b first, then
// compare+branch latch pairs, then loop-body pairs) into single
// handlers. Fusion only rewrites the *head* slot's fused handler id: the
// tail slots keep their plain handlers, so branches into the middle of a
// fused group and the per-instruction skip loop (which dispatches
// through TSlot::hp) execute the group unfused.
//
// Bit-identity contract: every simulated stat and architectural effect is
// identical to the decode-switch core (StepBody) — same check order at
// the loop head (free/skip: halted, budget, out-of-range, interest;
// covered: halted, region peek, out-of-range), same budget semantics (a
// pair straddling budget exhaustion retires only its head), same
// predictor update sequence, same exception points with exact state
// published by the BatchScope on unwind. tests/test_dispatch.cc and the
// differential oracle gate this for every workload family.

#include "cpu/cpu.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace dsa::cpu {

using isa::Cond;
using isa::Instruction;
using isa::Opcode;
using isa::VecType;

namespace {

float AsFloat(std::uint32_t v) {
  float f;
  std::memcpy(&f, &v, 4);
  return f;
}

std::uint32_t AsBits(float f) {
  std::uint32_t v;
  std::memcpy(&v, &f, 4);
  return v;
}

// CpuState::CondHolds against a batch-local cmp_diff.
inline bool CondDiff(std::uint8_t c, std::int64_t diff) {
  switch (static_cast<Cond>(c)) {
    case Cond::kAl: return true;
    case Cond::kEq: return diff == 0;
    case Cond::kNe: return diff != 0;
    case Cond::kLt: return diff < 0;
    case Cond::kGe: return diff >= 0;
    case Cond::kGt: return diff > 0;
    case Cond::kLe: return diff <= 0;
  }
  return false;
}

// One X-macro list drives the handler-id enum and every instantiation's
// label table, so the two can never fall out of order. Plain handlers
// first (one per opcode group), then the superinstructions.
#define DSA_HANDLERS(X)                                                   \
  X(Ldr) X(Ldrh) X(Ldrb) X(Str) X(Strh) X(Strb)                           \
  X(Mov) X(Movi) X(Add) X(Addi) X(Sub) X(Subi) X(Rsb)                     \
  X(Mul) X(Mla) X(Sdiv)                                                   \
  X(And) X(Andi) X(Orr) X(Eor) X(Bic) X(Lsl) X(Lsr) X(Asr)                \
  X(Min) X(Max)                                                           \
  X(Fadd) X(Fsub) X(Fmul) X(Fdiv)                                         \
  X(Cmp) X(Cmpi) X(B) X(Bl) X(Ret) X(Nop) X(Halt)                         \
  X(Vld1) X(Vst1) X(VldLane) X(VstLane) X(Vdup) X(Vshift) X(Vbsl)         \
  X(VmovTo) X(VmovFrom) X(VLane) X(Bad)                                   \
  X(FCmpB) X(FCmpiB)                                                      \
  X(FSubiCmpi) X(FAddiCmpi)                                               \
  X(FLdrLdr) X(FLdrbLdrb) X(FLdrbStrb) X(FLdrbAdd)                        \
  X(FMlaStr) X(FFaddStr) X(FAddStr) X(FFmulFadd)                          \
  X(FLsrAnd) X(FAndAdd) X(FEorAnd) X(FLslAdd) X(FAddSubi)                 \
  X(FSubiCmpiB) X(FAddiCmpiB)

enum HId : std::uint8_t {
#define DSA_H_ID(name) kH##name,
  DSA_HANDLERS(DSA_H_ID)
#undef DSA_H_ID
  kHCount
};

std::uint8_t PlainHandler(Opcode op) {
  switch (op) {
    case Opcode::kLdr: return kHLdr;
    case Opcode::kLdrh: return kHLdrh;
    case Opcode::kLdrb: return kHLdrb;
    case Opcode::kStr: return kHStr;
    case Opcode::kStrh: return kHStrh;
    case Opcode::kStrb: return kHStrb;
    case Opcode::kMov: return kHMov;
    case Opcode::kMovi: return kHMovi;
    case Opcode::kAdd: return kHAdd;
    case Opcode::kAddi: return kHAddi;
    case Opcode::kSub: return kHSub;
    case Opcode::kSubi: return kHSubi;
    case Opcode::kRsb: return kHRsb;
    case Opcode::kMul: return kHMul;
    case Opcode::kMla: return kHMla;
    case Opcode::kSdiv: return kHSdiv;
    case Opcode::kAnd: return kHAnd;
    case Opcode::kAndi: return kHAndi;
    case Opcode::kOrr: return kHOrr;
    case Opcode::kEor: return kHEor;
    case Opcode::kBic: return kHBic;
    case Opcode::kLsl: return kHLsl;
    case Opcode::kLsr: return kHLsr;
    case Opcode::kAsr: return kHAsr;
    case Opcode::kMin: return kHMin;
    case Opcode::kMax: return kHMax;
    case Opcode::kFadd: return kHFadd;
    case Opcode::kFsub: return kHFsub;
    case Opcode::kFmul: return kHFmul;
    case Opcode::kFdiv: return kHFdiv;
    case Opcode::kCmp: return kHCmp;
    case Opcode::kCmpi: return kHCmpi;
    case Opcode::kB: return kHB;
    case Opcode::kBl: return kHBl;
    case Opcode::kRet: return kHRet;
    case Opcode::kNop: return kHNop;
    case Opcode::kHalt: return kHHalt;
    case Opcode::kVld1: return kHVld1;
    case Opcode::kVst1: return kHVst1;
    case Opcode::kVldLane: return kHVldLane;
    case Opcode::kVstLane: return kHVstLane;
    case Opcode::kVdup: return kHVdup;
    case Opcode::kVshl:
    case Opcode::kVshr: return kHVshift;
    case Opcode::kVbsl: return kHVbsl;
    case Opcode::kVmovToScalar: return kHVmovTo;
    case Opcode::kVmovFromScalar: return kHVmovFrom;
    default: return isa::IsVector(op) ? kHVLane : kHBad;
  }
}

struct PairRule {
  Opcode head;
  Opcode second;
  std::uint8_t id;
};

// Selection policy (docs/DISPATCH.md): latch patterns are fused first —
// the compare feeding a loop latch is the hottest retire pair in every
// tracer profile, and it must not be claimed as the *second* member of an
// ALU-pair below. Widest first: the full induction latch triple
// (subi/addi + cmpi + b, executed once per iteration of every counted
// loop), then the compare+branch pairs. Heads and middles are always
// unconditional fall-through opcodes, so a fused group never starts at a
// branch and never straddles a covered region's latch.
struct TripleRule {
  Opcode head;
  Opcode second;
  Opcode third;
  std::uint8_t id;
};

constexpr TripleRule kLatchTriples[] = {
    {Opcode::kSubi, Opcode::kCmpi, Opcode::kB, kHFSubiCmpiB},
    {Opcode::kAddi, Opcode::kCmpi, Opcode::kB, kHFAddiCmpiB},
};

constexpr PairRule kLatchPairs[] = {
    {Opcode::kCmp, Opcode::kB, kHFCmpB},
    {Opcode::kCmpi, Opcode::kB, kHFCmpiB},
};

// Remaining pairs, applied greedily left-to-right over the slots both
// passes have not consumed yet: induction/compare chains, paired streaming
// loads, load-store byte copies, multiply/fp-accumulate into store, and
// the shift/mask ALU chains of the bit-twiddling workloads.
constexpr PairRule kBodyPairs[] = {
    {Opcode::kSubi, Opcode::kCmpi, kHFSubiCmpi},
    {Opcode::kAddi, Opcode::kCmpi, kHFAddiCmpi},
    {Opcode::kLdr, Opcode::kLdr, kHFLdrLdr},
    {Opcode::kLdrb, Opcode::kLdrb, kHFLdrbLdrb},
    {Opcode::kLdrb, Opcode::kStrb, kHFLdrbStrb},
    {Opcode::kLdrb, Opcode::kAdd, kHFLdrbAdd},
    {Opcode::kMla, Opcode::kStr, kHFMlaStr},
    {Opcode::kFadd, Opcode::kStr, kHFFaddStr},
    {Opcode::kAdd, Opcode::kStr, kHFAddStr},
    {Opcode::kFmul, Opcode::kFadd, kHFFmulFadd},
    {Opcode::kLsr, Opcode::kAnd, kHFLsrAnd},
    {Opcode::kAnd, Opcode::kAdd, kHFAndAdd},
    {Opcode::kEor, Opcode::kAnd, kHFEorAnd},
    {Opcode::kLsl, Opcode::kAdd, kHFLslAdd},
    {Opcode::kAdd, Opcode::kSubi, kHFAddSubi},
};

}  // namespace

void Cpu::BuildThreaded() {
  const std::size_t n = decoded_.size();
  tslots_.assign(n, TSlot{});
  fused_pairs_ = 0;

  for (std::size_t pc = 0; pc < n; ++pc) {
    const DecodedInstr& d = decoded_[pc];
    const Instruction& ins = d.ins;
    TSlot& s = tslots_[pc];
    s.h = s.hp = PlainHandler(ins.op);
    // Latch candidates default to the observe-exit class: a Cpu whose
    // observation classes are never filled (direct RunToInteresting
    // callers, tests) batches exactly like the pre-relevance skip loop.
    // DsaEngine::FillObserveClasses rewrites the two obs bits at run time.
    if (d.latch_candidate) s.flags |= kSlotLatch | kSlotObsExit;

    POp& p = s.a;
    p.imm = ins.imm;
    p.post_inc = ins.post_inc;
    p.rd = static_cast<std::uint8_t>(ins.rd);
    p.rn = static_cast<std::uint8_t>(ins.rn);
    p.rm = static_cast<std::uint8_t>(ins.rm);
    p.ra = static_cast<std::uint8_t>(ins.ra);
    p.cond = static_cast<std::uint8_t>(ins.cond);
    p.vt = static_cast<std::uint8_t>(ins.vt);
    p.op = static_cast<std::uint8_t>(ins.op);
    if (d.static_taken) p.flags |= kPopStaticTaken;
    // Per-op stall resolved once here so handlers just add `extra`.
    switch (ins.op) {
      case Opcode::kMul:
      case Opcode::kMla: p.extra = cfg_.int_mul_extra; break;
      case Opcode::kSdiv: p.extra = cfg_.int_div_extra; break;
      case Opcode::kFadd:
      case Opcode::kFsub:
      case Opcode::kFmul: p.extra = cfg_.fp_extra; break;
      case Opcode::kFdiv: p.extra = cfg_.fp_div_extra; break;
      case Opcode::kB: p.extra = cfg_.branch_mispredict_penalty; break;
      case Opcode::kVldLane:
      case Opcode::kVstLane:
        // Access width, not a stall (lane moves charge no extra).
        p.extra = static_cast<std::uint32_t>(isa::LaneBytes(ins.vt));
        break;
      default:
        if (d.is_vector) p.extra = d.neon_extra;
        break;
    }
  }

  if (n < 2) return;
  std::vector<std::uint8_t> consumed(n, 0);
  const auto fuse_pass = [&](const PairRule* rules, std::size_t count) {
    for (std::size_t pc = 0; pc + 1 < n; ++pc) {
      if (consumed[pc] || consumed[pc + 1]) continue;
      const Opcode head = decoded_[pc].ins.op;
      const Opcode second = decoded_[pc + 1].ins.op;
      for (std::size_t i = 0; i < count; ++i) {
        if (rules[i].head == head && rules[i].second == second) {
          tslots_[pc].h = rules[i].id;
          tslots_[pc].b = tslots_[pc + 1].a;
          consumed[pc] = consumed[pc + 1] = 1;
          ++fused_pairs_;
          break;
        }
      }
    }
  };
  // Triples first (widest match wins), then pairs. The fused slot keeps
  // only the second member's operands in `b`; a triple's branch operands
  // are read from the third member's own slot (`tab[pc + 2].a`).
  for (std::size_t pc = 0; pc + 2 < n; ++pc) {
    if (consumed[pc] || consumed[pc + 1] || consumed[pc + 2]) continue;
    for (const TripleRule& rule : kLatchTriples) {
      if (decoded_[pc].ins.op == rule.head &&
          decoded_[pc + 1].ins.op == rule.second &&
          decoded_[pc + 2].ins.op == rule.third) {
        tslots_[pc].h = rule.id;
        tslots_[pc].b = tslots_[pc + 1].a;
        consumed[pc] = consumed[pc + 1] = consumed[pc + 2] = 1;
        ++fused_pairs_;
        break;
      }
    }
  }
  fuse_pass(kLatchPairs, std::size(kLatchPairs));
  fuse_pass(kBodyPairs, std::size(kBodyPairs));
}

// ---- handler building blocks ---------------------------------------------
//
// Each DSA_C_* macro is the architectural + accounting effect of one
// opcode, reading its fields from a POp (`s->a` for plain handlers, also
// `s->b` for the second member of a fused pair). They mirror StepBody's
// cases line for line, against the batch-local `lr` / `cmp_diff` / `acc`.

#define DSA_MEMCHECK(addr_, n_)                                           \
  if (static_cast<std::size_t>(addr_) + (n_) > msize) {                   \
    memory_.FailRange((addr_), (n_));                                     \
  }

// Memory latency through the batch-local way-predicted run (MemRun,
// cpu.h): while consecutive accesses stay in the run's resident L1 line,
// each hit is counted locally and stalls 0 cycles — exactly the switch
// core's hit-latency clamp — and the cache is charged once when the run
// closes (MemRunSlow / the writeback lambda). Anything else (line change,
// straddling access, non-resident line) takes the slow path.
#define DSA_MEMLAT(a_, n_)                                                \
  ((static_cast<std::uint64_t>(a_) >> lshift) == mrun.line &&             \
           ((a_) & lmask) + (n_) <= lmask + 1u                            \
       ? (++mrun.hits, 0u)                                                \
       : MemRunSlow((a_), (n_),                                           \
                    static_cast<std::uint64_t>(a_) >> lshift, mrun))

#define DSA_C_LDR(P)                                                      \
  do {                                                                    \
    const POp& p_ = (P);                                                  \
    const std::uint32_t addr_ = lr[p_.rn] + p_.imm;                       \
    DSA_MEMCHECK(addr_, 4)                                                \
    std::uint32_t v_;                                                     \
    std::memcpy(&v_, mbase + addr_, 4);                                   \
    lr[p_.rd] = v_;                                                       \
    lr[p_.rn] += p_.post_inc;                                             \
    acc.mem_stall += DSA_MEMLAT(addr_, 4);                          \
    ++acc.mem_reads;                                                      \
    ++acc.steps;                                                          \
  } while (0)

#define DSA_C_LDRH(P)                                                     \
  do {                                                                    \
    const POp& p_ = (P);                                                  \
    const std::uint32_t addr_ = lr[p_.rn] + p_.imm;                       \
    DSA_MEMCHECK(addr_, 2)                                                \
    std::uint16_t v_;                                                     \
    std::memcpy(&v_, mbase + addr_, 2);                                   \
    lr[p_.rd] = v_;                                                       \
    lr[p_.rn] += p_.post_inc;                                             \
    acc.mem_stall += DSA_MEMLAT(addr_, 2);                          \
    ++acc.mem_reads;                                                      \
    ++acc.steps;                                                          \
  } while (0)

#define DSA_C_LDRB(P)                                                     \
  do {                                                                    \
    const POp& p_ = (P);                                                  \
    const std::uint32_t addr_ = lr[p_.rn] + p_.imm;                       \
    DSA_MEMCHECK(addr_, 1)                                                \
    lr[p_.rd] = mbase[addr_];                                             \
    lr[p_.rn] += p_.post_inc;                                             \
    acc.mem_stall += DSA_MEMLAT(addr_, 1);                          \
    ++acc.mem_reads;                                                      \
    ++acc.steps;                                                          \
  } while (0)

#define DSA_C_STR(P)                                                      \
  do {                                                                    \
    const POp& p_ = (P);                                                  \
    const std::uint32_t addr_ = lr[p_.rn] + p_.imm;                       \
    DSA_MEMCHECK(addr_, 4)                                                \
    const std::uint32_t v_ = lr[p_.rd];                                   \
    std::memcpy(mbase + addr_, &v_, 4);                                   \
    lr[p_.rn] += p_.post_inc;                                             \
    acc.mem_stall += DSA_MEMLAT(addr_, 4);                          \
    ++acc.mem_writes;                                                     \
    ++acc.steps;                                                          \
  } while (0)

#define DSA_C_STRH(P)                                                     \
  do {                                                                    \
    const POp& p_ = (P);                                                  \
    const std::uint32_t addr_ = lr[p_.rn] + p_.imm;                       \
    DSA_MEMCHECK(addr_, 2)                                                \
    const std::uint16_t v_ = static_cast<std::uint16_t>(lr[p_.rd]);       \
    std::memcpy(mbase + addr_, &v_, 2);                                   \
    lr[p_.rn] += p_.post_inc;                                             \
    acc.mem_stall += DSA_MEMLAT(addr_, 2);                          \
    ++acc.mem_writes;                                                     \
    ++acc.steps;                                                          \
  } while (0)

#define DSA_C_STRB(P)                                                     \
  do {                                                                    \
    const POp& p_ = (P);                                                  \
    const std::uint32_t addr_ = lr[p_.rn] + p_.imm;                       \
    DSA_MEMCHECK(addr_, 1)                                                \
    mbase[addr_] = static_cast<std::uint8_t>(lr[p_.rd]);                  \
    lr[p_.rn] += p_.post_inc;                                             \
    acc.mem_stall += DSA_MEMLAT(addr_, 1);                          \
    ++acc.mem_writes;                                                     \
    ++acc.steps;                                                          \
  } while (0)

// Plain ALU write to rd; `expr_` reads its operands through `p_`.
#define DSA_C_BIN(P, expr_)                                               \
  do {                                                                    \
    const POp& p_ = (P);                                                  \
    lr[p_.rd] = (expr_);                                                  \
    ++acc.steps;                                                          \
  } while (0)

// ALU write that also charges the lowered per-op stall (mul/fp).
#define DSA_C_BINX(P, expr_)                                              \
  do {                                                                    \
    const POp& p_ = (P);                                                  \
    lr[p_.rd] = (expr_);                                                  \
    acc.other_stall += p_.extra;                                          \
    ++acc.steps;                                                          \
  } while (0)

#define DSA_C_MLA(P)                                                      \
  do {                                                                    \
    const POp& p_ = (P);                                                  \
    lr[p_.rd] = lr[p_.rn] * lr[p_.rm] + lr[p_.ra];                        \
    acc.other_stall += p_.extra;                                          \
    ++acc.steps;                                                          \
  } while (0)

#define DSA_C_CMP(P)                                                      \
  do {                                                                    \
    const POp& p_ = (P);                                                  \
    cmp_diff = static_cast<std::int64_t>(                                 \
                   static_cast<std::int32_t>(lr[p_.rn])) -                \
               static_cast<std::int32_t>(lr[p_.rm]);                      \
    ++acc.steps;                                                          \
  } while (0)

#define DSA_C_CMPI(P)                                                     \
  do {                                                                    \
    const POp& p_ = (P);                                                  \
    cmp_diff = static_cast<std::int64_t>(                                 \
                   static_cast<std::int32_t>(lr[p_.rn])) -                \
               p_.imm;                                                    \
    ++acc.steps;                                                          \
  } while (0)

// Conditional branch at `bpc_`: predictor read + train with the exact
// first-training quirk of TrainPredictor, mispredict penalty from the
// lowered `extra`. `nextv_` must be initialized to the fall-through pc.
#define DSA_C_B(P, bpc_, nextv_)                                          \
  do {                                                                    \
    const POp& p_ = (P);                                                  \
    const bool taken_ = CondDiff(p_.cond, cmp_diff);                      \
    std::uint8_t ctr_ = ptab[(bpc_)];                                     \
    const bool predicted_ = ctr_ == kUntrained                            \
                                ? (p_.flags & kPopStaticTaken) != 0       \
                                : ctr_ >= 2;                              \
    if (taken_) (nextv_) = static_cast<std::uint32_t>(p_.imm);            \
    if (predicted_ != taken_) {                                           \
      acc.other_stall += p_.extra;                                        \
      ++acc.mispredicts;                                                  \
    }                                                                     \
    if (ctr_ == kUntrained) ctr_ = taken_ ? 2 : 1;                        \
    if (taken_) {                                                         \
      if (ctr_ < 3) ++ctr_;                                               \
    } else if (ctr_ > 0) {                                                \
      --ctr_;                                                             \
    }                                                                     \
    ptab[(bpc_)] = ctr_;                                                  \
    ++acc.branches;                                                       \
    ++acc.steps;                                                          \
  } while (0)

// Covered-mode latch bookkeeping after a branch at `bpc_` resolved to
// `nextv_` (RunCoveredImpl's iteration counting, verbatim).
#define DSA_C_LATCH(bpc_, nextv_)                                         \
  if constexpr (K == TKind::kCovered) {                                   \
    if ((bpc_) == count_latch) {                                          \
      ++iters;                                                            \
      if ((bpc_) == cov_latch && (nextv_) == (bpc_) + 1) {                \
        DSA_EXIT_AT(nextv_); /* latch fell through: loop is done */       \
      }                                                                   \
      if (max_iter != 0 && iters >= max_iter) {                           \
        DSA_EXIT_AT(nextv_); /* speculated range exhausted */             \
      }                                                                   \
    }                                                                     \
  }

// Leave the batch with control at `np_`, halting on fall-off-the-end
// exactly like StepBody's tail does.
#define DSA_EXIT_AT(np_)                                                  \
  do {                                                                    \
    pc = (np_);                                                           \
    if (pc >= psize) state_.halted = true;                                \
    goto done;                                                            \
  } while (0)

// Retire boundary: advance to `np_` and re-enter the dispatch head. The
// out-of-range halt is checked before the next instruction consumes
// budget (matching the switch loops, where StepBody halts on fall-off
// and the `while (!halted)` head exits before `++steps`).
#define DSA_NEXT(np_)                                                     \
  do {                                                                    \
    if constexpr (K == TKind::kSkip) ++lskipped;                          \
    pc = (np_);                                                           \
    if (pc >= psize) {                                                    \
      state_.halted = true;                                               \
      goto done;                                                          \
    }                                                                     \
    goto next_dispatch;                                                   \
  } while (0)

// Budget check between the members of a fused group (free mode only:
// the skip loop never dispatches fused, covered steps are budget-exempt).
// When the budget dies mid-group only the first `off_` members have
// retired, so control rests on the next member's own (plain) slot —
// identical to the switch loop retiring them and stopping.
#define DSA_FUSE_MID(off_)                                                \
  if constexpr (K == TKind::kFree) {                                      \
    if (++bsteps > max_steps) {                                           \
      pc += (off_);                                                       \
      ex = TExit::kBudget;                                                \
      goto done;                                                          \
    }                                                                     \
  }

template <Cpu::TKind K>
Cpu::TExit Cpu::ThreadedBody(BatchScope& b, const StepCtx& ctx, const TRun& p,
                             std::uint64_t& steps, std::uint64_t& skipped,
                             std::uint64_t& iterations, Retired* obs) {
  const TSlot* const tab = tslots_.data();
  std::uint8_t* const ptab = ctx.ptab;
  std::uint8_t* const mbase = ctx.mbase;
  const std::size_t msize = ctx.msize;
  const std::uint32_t psize = ctx.psize;
  // L1 line geometry for the way-predicted memory run, hoisted into
  // unaliased locals like every other member the hot loop reads.
  const std::uint32_t lshift = l1_shift_;
  const std::uint32_t lmask = l1_mask_;

  // Mode parameters copied out of `p`: it lives behind a reference the
  // interpreter's byte stores could alias, locals are load-once.
  [[maybe_unused]] const std::uint64_t max_steps = p.max_steps;
  [[maybe_unused]] const bool watch = p.watch_window;
  [[maybe_unused]] const std::uint32_t wlo = p.window_lo;
  [[maybe_unused]] const std::uint32_t whi = p.window_hi;
  [[maybe_unused]] const std::uint32_t cov_start = p.cov_start;
  [[maybe_unused]] const std::uint32_t cov_latch = p.cov_latch;
  [[maybe_unused]] const std::uint32_t count_latch = p.count_latch;
  [[maybe_unused]] const std::uint64_t max_iter = p.max_iterations;

  // Batch-local architectural state: written back on every exit path,
  // including exceptions (FailRange / kHBad), so the BatchScope publishes
  // exact state wherever control leaves — same guarantee as the switch
  // loops, which mutate state_ in place.
  std::uint32_t lr[isa::kNumScalarRegs];
  std::memcpy(lr, state_.regs.data(), sizeof(lr));
  std::int64_t cmp_diff = state_.cmp_diff;
  std::uint32_t pc = b.pc;
  StepAccum acc = b.a;
  std::uint64_t bsteps = steps;
  std::uint64_t lskipped = skipped;
  std::uint64_t iters = iterations;
  [[maybe_unused]] int depth = 0;  // kBl/kRet nesting inside a covered region
  const TSlot* s = nullptr;
  TExit ex = TExit::kHalt;
  MemRun mrun;  // open way-predicted L1 run, confined to this batch

  const auto writeback = [&]() {
    // Close the memory run first: its deferred hits must reach the cache
    // before any access outside the batch (the observed step, NEON cost
    // walks) can touch L1.
    FlushMemRun(mrun);
    std::memcpy(state_.regs.data(), lr, sizeof(lr));
    state_.cmp_diff = cmp_diff;
    b.pc = pc;
    b.a = acc;
    steps = bsteps;
    skipped = lskipped;
    iterations = iters;
  };

  try {
    // Per-instantiation label table, generated from the same X-macro as
    // the handler-id enum.
    static const void* const htab[] = {
#define DSA_H_ADDR(name) &&L##name,
        DSA_HANDLERS(DSA_H_ADDR)
#undef DSA_H_ADDR
    };
    static_assert(sizeof(htab) / sizeof(htab[0]) == kHCount,
                  "label table out of sync with handler ids");

    // Entry replicates the switch loops' head order exactly: free/skip
    // consume budget before the out-of-range check; covered peeks the
    // region first and is budget-exempt.
    if (state_.halted) goto done;
    if constexpr (K != TKind::kCovered) {
      if (++bsteps > max_steps) {
        ex = TExit::kBudget;
        goto done;
      }
    } else {
      if (pc < cov_start || pc > cov_latch) {
        ex = TExit::kRegion;
        goto done;
      }
    }
    if (pc >= psize) {
      state_.halted = true;
      goto done;
    }
    s = tab + pc;
    if constexpr (K == TKind::kSkip) {
      if ((s->flags & kSlotObsExit) != 0 ||
          (watch && (pc < wlo || pc >= whi))) {
        ex = TExit::kInterest;
        goto done;
      }
      goto *htab[s->hp];
    } else {
      goto *htab[s->h];
    }

  next_dispatch:
    if constexpr (K != TKind::kCovered) {
      if (++bsteps > max_steps) {
        ex = TExit::kBudget;
        goto done;
      }
    } else {
      if (depth == 0 && (pc < cov_start || pc > cov_latch)) {
        ex = TExit::kRegion;
        goto done;
      }
    }
    s = tab + pc;
    if constexpr (K == TKind::kSkip) {
      // Interest filter on the observation-relevance class: kExit pcs end
      // the batch with the instruction NOT executed — the wrapper retires
      // it observed on the shared switch core, with the budget for it
      // already consumed above. (Unfilled classes default every latch
      // candidate to kExit; the window check serves direct callers that
      // never fill.) kLatchExec latches carry kSlotObsExecExit instead and
      // fall through to their own handler, which exits with a materialized
      // record only when the branch is taken. Inert pcs just execute.
      if ((s->flags & kSlotObsExit) != 0 ||
          (watch && (pc < wlo || pc >= whi))) {
        ex = TExit::kInterest;
        goto done;
      }
      goto *htab[s->hp];
    } else {
      goto *htab[s->h];
    }

    // ---- scalar memory -------------------------------------------------
  LLdr:
    DSA_C_LDR(s->a);
    DSA_NEXT(pc + 1);
  LLdrh:
    DSA_C_LDRH(s->a);
    DSA_NEXT(pc + 1);
  LLdrb:
    DSA_C_LDRB(s->a);
    DSA_NEXT(pc + 1);
  LStr:
    DSA_C_STR(s->a);
    DSA_NEXT(pc + 1);
  LStrh:
    DSA_C_STRH(s->a);
    DSA_NEXT(pc + 1);
  LStrb:
    DSA_C_STRB(s->a);
    DSA_NEXT(pc + 1);

    // ---- moves / integer ALU -------------------------------------------
  LMov:
    DSA_C_BIN(s->a, lr[p_.rm]);
    DSA_NEXT(pc + 1);
  LMovi:
    DSA_C_BIN(s->a, static_cast<std::uint32_t>(p_.imm));
    DSA_NEXT(pc + 1);
  LAdd:
    DSA_C_BIN(s->a, lr[p_.rn] + lr[p_.rm]);
    DSA_NEXT(pc + 1);
  LAddi:
    DSA_C_BIN(s->a, lr[p_.rn] + static_cast<std::uint32_t>(p_.imm));
    DSA_NEXT(pc + 1);
  LSub:
    DSA_C_BIN(s->a, lr[p_.rn] - lr[p_.rm]);
    DSA_NEXT(pc + 1);
  LSubi:
    DSA_C_BIN(s->a, lr[p_.rn] - static_cast<std::uint32_t>(p_.imm));
    DSA_NEXT(pc + 1);
  LRsb:
    DSA_C_BIN(s->a, static_cast<std::uint32_t>(p_.imm) - lr[p_.rn]);
    DSA_NEXT(pc + 1);
  LMul:
    DSA_C_BINX(s->a, lr[p_.rn] * lr[p_.rm]);
    DSA_NEXT(pc + 1);
  LMla:
    DSA_C_MLA(s->a);
    DSA_NEXT(pc + 1);
  LSdiv: {
    const POp& A = s->a;
    const std::int32_t div_ = static_cast<std::int32_t>(lr[A.rm]);
    lr[A.rd] = div_ == 0
                   ? 0
                   : static_cast<std::uint32_t>(
                         static_cast<std::int32_t>(lr[A.rn]) / div_);
    acc.other_stall += A.extra;
    ++acc.steps;
    DSA_NEXT(pc + 1);
  }
  LAnd:
    DSA_C_BIN(s->a, lr[p_.rn] & lr[p_.rm]);
    DSA_NEXT(pc + 1);
  LAndi:
    DSA_C_BIN(s->a, lr[p_.rn] & static_cast<std::uint32_t>(p_.imm));
    DSA_NEXT(pc + 1);
  LOrr:
    DSA_C_BIN(s->a, lr[p_.rn] | lr[p_.rm]);
    DSA_NEXT(pc + 1);
  LEor:
    DSA_C_BIN(s->a, lr[p_.rn] ^ lr[p_.rm]);
    DSA_NEXT(pc + 1);
  LBic:
    DSA_C_BIN(s->a, lr[p_.rn] & ~lr[p_.rm]);
    DSA_NEXT(pc + 1);
  LLsl:
    DSA_C_BIN(s->a, lr[p_.rn] << (lr[p_.rm] & 31));
    DSA_NEXT(pc + 1);
  LLsr:
    DSA_C_BIN(s->a, lr[p_.rn] >> (lr[p_.rm] & 31));
    DSA_NEXT(pc + 1);
  LAsr:
    DSA_C_BIN(s->a, static_cast<std::uint32_t>(
                        static_cast<std::int32_t>(lr[p_.rn]) >>
                        (lr[p_.rm] & 31)));
    DSA_NEXT(pc + 1);
  LMin:
    DSA_C_BIN(s->a, static_cast<std::uint32_t>(
                        std::min(static_cast<std::int32_t>(lr[p_.rn]),
                                 static_cast<std::int32_t>(lr[p_.rm]))));
    DSA_NEXT(pc + 1);
  LMax:
    DSA_C_BIN(s->a, static_cast<std::uint32_t>(
                        std::max(static_cast<std::int32_t>(lr[p_.rn]),
                                 static_cast<std::int32_t>(lr[p_.rm]))));
    DSA_NEXT(pc + 1);

    // ---- float ---------------------------------------------------------
  LFadd:
    DSA_C_BINX(s->a, AsBits(AsFloat(lr[p_.rn]) + AsFloat(lr[p_.rm])));
    DSA_NEXT(pc + 1);
  LFsub:
    DSA_C_BINX(s->a, AsBits(AsFloat(lr[p_.rn]) - AsFloat(lr[p_.rm])));
    DSA_NEXT(pc + 1);
  LFmul:
    DSA_C_BINX(s->a, AsBits(AsFloat(lr[p_.rn]) * AsFloat(lr[p_.rm])));
    DSA_NEXT(pc + 1);
  LFdiv:
    DSA_C_BINX(s->a, AsBits(AsFloat(lr[p_.rn]) / AsFloat(lr[p_.rm])));
    DSA_NEXT(pc + 1);

    // ---- compare / control ---------------------------------------------
  LCmp:
    DSA_C_CMP(s->a);
    DSA_NEXT(pc + 1);
  LCmpi:
    DSA_C_CMPI(s->a);
    DSA_NEXT(pc + 1);
  LB: {
    std::uint32_t next_ = pc + 1;
    DSA_C_B(s->a, pc, next_);
    DSA_C_LATCH(pc, next_)
    if constexpr (K == TKind::kSkip) {
      // kLatchExec: the engine only reacts to this latch when it is
      // *taken* (not-taken retires are provably inert — HandleLatch
      // returns before any stage counter). Execute it inline either way;
      // on taken, materialize the exact record StepBody would produce
      // (kB: no mem fields, branch_taken, resolved next_pc) and exit
      // without counting it as skipped — the caller hands it to Observe.
      // next_ != pc + 1 is a valid taken proxy: kSlotObsExecExit is only
      // ever set on backward branches (imm <= pc).
      if ((s->flags & kSlotObsExecExit) != 0 && next_ != pc + 1) {
        obs->pc = pc;
        obs->instr = ctx.dtab[pc].src;
        obs->branch_taken = true;
        obs->next_pc = next_;
        pc = next_;
        ex = TExit::kInterestExec;
        goto done;
      }
    }
    DSA_NEXT(next_);
  }
  LBl: {
    lr[isa::kLr] = pc + 1;
    ++acc.branches;
    ++acc.steps;
    const std::uint32_t next_ = static_cast<std::uint32_t>(s->a.imm);
    if constexpr (K == TKind::kCovered) ++depth;
    DSA_NEXT(next_);
  }
  LRet: {
    const std::uint32_t next_ = lr[isa::kLr];
    ++acc.branches;
    ++acc.steps;
    if constexpr (K == TKind::kCovered) --depth;
    DSA_NEXT(next_);
  }
  LNop:
    ++acc.steps;
    DSA_NEXT(pc + 1);
  LHalt:
    // next_pc = pc, halted: the skip loop still counts the retire as
    // skipped (the switch loop increments after StepBody returns).
    state_.halted = true;
    ++acc.steps;
    if constexpr (K == TKind::kSkip) ++lskipped;
    goto done;

    // ---- vector --------------------------------------------------------
  LVld1: {
    const POp& A = s->a;
    const std::uint32_t addr_ = lr[A.rn];
    DSA_MEMCHECK(addr_, 16)
    std::memcpy(state_.vregs.q(A.rd).bytes.data(), mbase + addr_, 16);
    lr[A.rn] += A.post_inc;
    acc.mem_stall += DSA_MEMLAT(addr_, 16);
    acc.other_stall += A.extra;
    ++acc.mem_reads;
    ++acc.steps;
    ++acc.vec;
    DSA_NEXT(pc + 1);
  }
  LVst1: {
    const POp& A = s->a;
    const std::uint32_t addr_ = lr[A.rn];
    DSA_MEMCHECK(addr_, 16)
    std::memcpy(mbase + addr_, state_.vregs.q(A.rd).bytes.data(), 16);
    lr[A.rn] += A.post_inc;
    acc.mem_stall += DSA_MEMLAT(addr_, 16);
    acc.other_stall += A.extra;
    ++acc.mem_writes;
    ++acc.steps;
    ++acc.vec;
    DSA_NEXT(pc + 1);
  }
  LVldLane: {
    const POp& A = s->a;
    const std::uint32_t addr_ = lr[A.rn];
    const std::uint32_t bytes_ = A.extra;  // LaneBytes(vt), lowered
    DSA_MEMCHECK(addr_, bytes_)
    std::uint32_t v_;
    if (bytes_ == 1) {
      v_ = mbase[addr_];
    } else if (bytes_ == 2) {
      std::uint16_t h_;
      std::memcpy(&h_, mbase + addr_, 2);
      v_ = h_;
    } else {
      std::memcpy(&v_, mbase + addr_, 4);
    }
    state_.vregs.q(A.rd).SetLane(static_cast<VecType>(A.vt), A.imm, v_);
    lr[A.rn] += A.post_inc;
    acc.mem_stall += DSA_MEMLAT(addr_, bytes_);
    ++acc.mem_reads;
    ++acc.steps;
    ++acc.vec;
    DSA_NEXT(pc + 1);
  }
  LVstLane: {
    const POp& A = s->a;
    const std::uint32_t addr_ = lr[A.rn];
    const std::uint32_t bytes_ = A.extra;
    const std::uint32_t v_ =
        state_.vregs.q(A.rd).Lane(static_cast<VecType>(A.vt), A.imm);
    DSA_MEMCHECK(addr_, bytes_)
    if (bytes_ == 1) {
      mbase[addr_] = static_cast<std::uint8_t>(v_);
    } else if (bytes_ == 2) {
      const std::uint16_t h_ = static_cast<std::uint16_t>(v_);
      std::memcpy(mbase + addr_, &h_, 2);
    } else {
      std::memcpy(mbase + addr_, &v_, 4);
    }
    lr[A.rn] += A.post_inc;
    acc.mem_stall += DSA_MEMLAT(addr_, bytes_);
    ++acc.mem_writes;
    ++acc.steps;
    ++acc.vec;
    DSA_NEXT(pc + 1);
  }
  LVdup: {
    const POp& A = s->a;
    state_.vregs.q(A.rd) =
        neon::Broadcast(static_cast<VecType>(A.vt), lr[A.rn]);
    ++acc.steps;
    ++acc.vec;
    DSA_NEXT(pc + 1);
  }
  LVshift: {
    const POp& A = s->a;
    state_.vregs.q(A.rd) = neon::ExecuteShift(
        static_cast<Opcode>(A.op), static_cast<VecType>(A.vt),
        state_.vregs.q(A.rn), A.imm);
    ++acc.steps;
    ++acc.vec;
    DSA_NEXT(pc + 1);
  }
  LVbsl: {
    const POp& A = s->a;
    state_.vregs.q(A.rd) =
        neon::ExecuteBsl(state_.vregs.q(A.rd), state_.vregs.q(A.rn),
                         state_.vregs.q(A.rm));
    ++acc.steps;
    ++acc.vec;
    DSA_NEXT(pc + 1);
  }
  LVmovTo: {
    const POp& A = s->a;
    lr[A.rd] = state_.vregs.q(A.rn).Lane(static_cast<VecType>(A.vt), A.imm);
    ++acc.steps;
    ++acc.vec;
    DSA_NEXT(pc + 1);
  }
  LVmovFrom: {
    const POp& A = s->a;
    state_.vregs.q(A.rd).SetLane(static_cast<VecType>(A.vt), A.imm,
                                 lr[A.rn]);
    ++acc.steps;
    ++acc.vec;
    DSA_NEXT(pc + 1);
  }
  LVLane: {
    const POp& A = s->a;
    state_.vregs.q(A.rd) = neon::ExecuteLaneOp(
        static_cast<Opcode>(A.op), static_cast<VecType>(A.vt),
        state_.vregs.q(A.rn), state_.vregs.q(A.rm), state_.vregs.q(A.ra));
    acc.other_stall += A.extra;
    ++acc.steps;
    ++acc.vec;
    DSA_NEXT(pc + 1);
  }
  LBad:
    // Same exception point as StepBody's default case; the catch below
    // publishes exact pre-instruction state.
    throw std::logic_error("unhandled opcode");

    // ---- superinstructions ---------------------------------------------
  LFCmpB: {
    DSA_C_CMP(s->a);
    DSA_FUSE_MID(1)
    std::uint32_t next_ = pc + 2;
    DSA_C_B(s->b, pc + 1, next_);
    DSA_C_LATCH(pc + 1, next_)
    DSA_NEXT(next_);
  }
  LFCmpiB: {
    DSA_C_CMPI(s->a);
    DSA_FUSE_MID(1)
    std::uint32_t next_ = pc + 2;
    DSA_C_B(s->b, pc + 1, next_);
    DSA_C_LATCH(pc + 1, next_)
    DSA_NEXT(next_);
  }
  LFSubiCmpi:
    DSA_C_BIN(s->a, lr[p_.rn] - static_cast<std::uint32_t>(p_.imm));
    DSA_FUSE_MID(1)
    DSA_C_CMPI(s->b);
    DSA_NEXT(pc + 2);
  LFAddiCmpi:
    DSA_C_BIN(s->a, lr[p_.rn] + static_cast<std::uint32_t>(p_.imm));
    DSA_FUSE_MID(1)
    DSA_C_CMPI(s->b);
    DSA_NEXT(pc + 2);
  LFLdrLdr:
    DSA_C_LDR(s->a);
    DSA_FUSE_MID(1)
    DSA_C_LDR(s->b);
    DSA_NEXT(pc + 2);
  LFLdrbLdrb:
    DSA_C_LDRB(s->a);
    DSA_FUSE_MID(1)
    DSA_C_LDRB(s->b);
    DSA_NEXT(pc + 2);
  LFLdrbStrb:
    DSA_C_LDRB(s->a);
    DSA_FUSE_MID(1)
    DSA_C_STRB(s->b);
    DSA_NEXT(pc + 2);
  LFLdrbAdd:
    DSA_C_LDRB(s->a);
    DSA_FUSE_MID(1)
    DSA_C_BIN(s->b, lr[p_.rn] + lr[p_.rm]);
    DSA_NEXT(pc + 2);
  LFMlaStr:
    DSA_C_MLA(s->a);
    DSA_FUSE_MID(1)
    DSA_C_STR(s->b);
    DSA_NEXT(pc + 2);
  LFFaddStr:
    DSA_C_BINX(s->a, AsBits(AsFloat(lr[p_.rn]) + AsFloat(lr[p_.rm])));
    DSA_FUSE_MID(1)
    DSA_C_STR(s->b);
    DSA_NEXT(pc + 2);
  LFAddStr:
    DSA_C_BIN(s->a, lr[p_.rn] + lr[p_.rm]);
    DSA_FUSE_MID(1)
    DSA_C_STR(s->b);
    DSA_NEXT(pc + 2);
  LFFmulFadd:
    DSA_C_BINX(s->a, AsBits(AsFloat(lr[p_.rn]) * AsFloat(lr[p_.rm])));
    DSA_FUSE_MID(1)
    DSA_C_BINX(s->b, AsBits(AsFloat(lr[p_.rn]) + AsFloat(lr[p_.rm])));
    DSA_NEXT(pc + 2);
  LFLsrAnd:
    DSA_C_BIN(s->a, lr[p_.rn] >> (lr[p_.rm] & 31));
    DSA_FUSE_MID(1)
    DSA_C_BIN(s->b, lr[p_.rn] & lr[p_.rm]);
    DSA_NEXT(pc + 2);
  LFAndAdd:
    DSA_C_BIN(s->a, lr[p_.rn] & lr[p_.rm]);
    DSA_FUSE_MID(1)
    DSA_C_BIN(s->b, lr[p_.rn] + lr[p_.rm]);
    DSA_NEXT(pc + 2);
  LFEorAnd:
    DSA_C_BIN(s->a, lr[p_.rn] ^ lr[p_.rm]);
    DSA_FUSE_MID(1)
    DSA_C_BIN(s->b, lr[p_.rn] & lr[p_.rm]);
    DSA_NEXT(pc + 2);
  LFLslAdd:
    DSA_C_BIN(s->a, lr[p_.rn] << (lr[p_.rm] & 31));
    DSA_FUSE_MID(1)
    DSA_C_BIN(s->b, lr[p_.rn] + lr[p_.rm]);
    DSA_NEXT(pc + 2);
  LFAddSubi:
    DSA_C_BIN(s->a, lr[p_.rn] + lr[p_.rm]);
    DSA_FUSE_MID(1)
    DSA_C_BIN(s->b, lr[p_.rn] - static_cast<std::uint32_t>(p_.imm));
    DSA_NEXT(pc + 2);

    // Induction latch triples: the branch member's operands live in its
    // own slot (`tab[pc + 2].a`), so TSlot stays two POps wide.
  LFSubiCmpiB: {
    DSA_C_BIN(s->a, lr[p_.rn] - static_cast<std::uint32_t>(p_.imm));
    DSA_FUSE_MID(1)
    DSA_C_CMPI(s->b);
    DSA_FUSE_MID(2)
    std::uint32_t next_ = pc + 3;
    DSA_C_B(tab[pc + 2].a, pc + 2, next_);
    DSA_C_LATCH(pc + 2, next_)
    DSA_NEXT(next_);
  }
  LFAddiCmpiB: {
    DSA_C_BIN(s->a, lr[p_.rn] + static_cast<std::uint32_t>(p_.imm));
    DSA_FUSE_MID(1)
    DSA_C_CMPI(s->b);
    DSA_FUSE_MID(2)
    std::uint32_t next_ = pc + 3;
    DSA_C_B(tab[pc + 2].a, pc + 2, next_);
    DSA_C_LATCH(pc + 2, next_)
    DSA_NEXT(next_);
  }

  done:;
  } catch (...) {
    writeback();
    throw;
  }
  writeback();
  return ex;
}

#undef DSA_MEMCHECK
#undef DSA_MEMLAT
#undef DSA_C_LDR
#undef DSA_C_LDRH
#undef DSA_C_LDRB
#undef DSA_C_STR
#undef DSA_C_STRH
#undef DSA_C_STRB
#undef DSA_C_BIN
#undef DSA_C_BINX
#undef DSA_C_MLA
#undef DSA_C_CMP
#undef DSA_C_CMPI
#undef DSA_C_B
#undef DSA_C_LATCH
#undef DSA_EXIT_AT
#undef DSA_NEXT
#undef DSA_FUSE_MID
#undef DSA_HANDLERS

// ---- run-miss slow path of the way-predicted memory fast path ------------

std::uint32_t Cpu::MemRunSlow(std::uint32_t addr, std::uint32_t bytes,
                              std::uint64_t line, MemRun& run) {
  // Close the pending run before anything else can touch the cache: the
  // deferred hits must land in arrival order relative to this access.
  if (run.hits != 0) l1_->CreditRun(run.way, run.hits);
  run.hits = 0;
  const bool single_line = (addr & l1_mask_) + bytes <= l1_mask_ + 1;
  if (single_line) {
    if (mem::Cache::Way* w = l1_->ResidentWay(line)) {
      // Resident single-line access: an L1 hit, which stalls 0 cycles
      // after the hit-latency clamp. Open a run with this hit deferred.
      run.line = line;
      run.way = w;
      run.hits = 1;
      return 0;
    }
  }
  run.line = kNoRunLine;
  const std::uint32_t lat = hierarchy_.AccessRange(addr, bytes);
  if (single_line) {
    // The access just filled (or re-ranked) the line; re-probe so the
    // *next* access to it takes the inline run path.
    if (mem::Cache::Way* w = l1_->ResidentWay(line)) {
      run.line = line;
      run.way = w;
    }
  }
  return lat > l1_hit_ ? lat - l1_hit_ : 0;
}

// ---- batched-loop wrappers -----------------------------------------------

void Cpu::RunFreeThreaded(std::uint64_t max_steps, std::uint64_t& steps) {
  const StepCtx ctx = MakeCtx();
  BatchScope b(*this);
  TRun p;
  p.max_steps = max_steps;
  std::uint64_t skipped = 0;
  std::uint64_t iterations = 0;
  ThreadedBody<TKind::kFree>(b, ctx, p, steps, skipped, iterations, nullptr);
}

Retired Cpu::RunToInterestingThreaded(bool watch_window,
                                      std::uint32_t window_lo,
                                      std::uint32_t window_hi,
                                      std::uint64_t max_steps,
                                      std::uint64_t& steps,
                                      std::uint64_t& skipped) {
  TExit e;
  Retired r{};
  {
    const StepCtx ctx = MakeCtx();
    BatchScope b(*this);
    TRun p;
    p.max_steps = max_steps;
    p.watch_window = watch_window;
    p.window_lo = window_lo;
    p.window_hi = window_hi;
    std::uint64_t iterations = 0;
    e = ThreadedBody<TKind::kSkip>(b, ctx, p, steps, skipped, iterations, &r);
  }  // scope closed: pc and stat deltas published before the observed step
  // kInterestExec: a kLatchExec latch already executed inline and filled
  // `r` with the exact record the switch core produces for a taken kB
  // (its accounting went through the batch accumulator above).
  if (e == TExit::kInterestExec) return r;
  if (e != TExit::kInterest) return Retired{};
  // The interesting instruction retires on the shared per-step switch
  // core with observation on, so the engine sees the exact record the
  // switch twin produces. Its budget was already consumed above.
  StepImpl<true>(r);
  return r;
}

Cpu::CoveredOutcome Cpu::RunCoveredThreaded(std::uint32_t coverage_start,
                                            std::uint32_t coverage_latch,
                                            std::uint32_t count_latch,
                                            std::uint64_t max_iterations) {
  const CpuStats before = stats_;
  CoveredOutcome d;
  {
    const StepCtx ctx = MakeCtx();
    BatchScope b(*this);
    TRun p;
    p.cov_start = coverage_start;
    p.cov_latch = coverage_latch;
    p.count_latch = count_latch;
    p.max_iterations = max_iterations;
    std::uint64_t steps = 0;
    std::uint64_t skipped = 0;
    ThreadedBody<TKind::kCovered>(b, ctx, p, steps, skipped, d.iterations,
                                  nullptr);
  }  // publish pc + stat deltas before the timing replacement below
  RewindCoveredStats(before, d);
  return d;
}

}  // namespace dsa::cpu
