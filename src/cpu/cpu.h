// Scalar CPU model: functional interpreter for the mini ISA plus a
// cycle-approximate timing model shaped after the paper's gem5 O3CPU setup
// (2-wide superscalar, 1 GHz, 64 kB L1 / 512 kB L2 LRU, NEON as a separate
// pipeline). Timing is trace-level: each retired instruction charges issue
// bandwidth and stall cycles; the DSA observes the retired stream exactly as
// in Figure 31 of the dissertation (analysis hooked at fetch/retire).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cpu/dispatch.h"
#include "isa/instruction.h"
#include "mem/cache.h"
#include "mem/memory.h"
#include "neon/vector_unit.h"
#include "prog/program.h"

namespace dsa::cpu {

// Architectural state shared by the scalar core, the NEON engine and the
// DSA's generated-SIMD executor.
struct CpuState {
  std::array<std::uint32_t, isa::kNumScalarRegs> regs{};
  neon::VectorRegFile vregs;
  std::int64_t cmp_diff = 0;  // result of last cmp (lhs - rhs), drives conds
  std::uint32_t pc = 0;
  bool halted = false;

  [[nodiscard]] bool CondHolds(isa::Cond c) const;
};

// What the DSA sees for every retired instruction (the paper's trace).
struct Retired {
  std::uint32_t pc = 0;
  const isa::Instruction* instr = nullptr;
  bool has_mem = false;
  std::uint32_t mem_addr = 0;
  std::uint32_t mem_bytes = 0;
  bool mem_is_write = false;
  bool branch_taken = false;
  std::uint32_t next_pc = 0;
};

struct TimingConfig {
  std::uint32_t superscalar_width = 2;
  std::uint32_t branch_mispredict_penalty = 8;
  std::uint32_t int_mul_extra = 2;
  std::uint32_t int_div_extra = 10;
  std::uint32_t fp_extra = 2;
  std::uint32_t fp_div_extra = 12;
  neon::NeonTiming neon;
};

struct CpuStats {
  std::uint64_t retired_total = 0;
  std::uint64_t retired_scalar = 0;
  std::uint64_t retired_vector = 0;
  std::uint64_t mem_reads = 0;
  std::uint64_t mem_writes = 0;
  std::uint64_t branches = 0;
  std::uint64_t mispredicts = 0;
  std::uint64_t issue_slots = 0;  // consumed issue bandwidth
  // Stalls split by cause: memory stalls persist under DSA covered
  // execution (the same cache lines move either way); other stalls
  // (mul/div/fp latency, branch mispredicts) are replaced by vector cost.
  std::uint64_t mem_stall_cycles = 0;
  std::uint64_t other_stall_cycles = 0;
  std::uint64_t neon_busy_cycles = 0;

  // Cycles charged by DSA activity (pipeline flush on vector takeover etc.).
  std::uint64_t dsa_overhead_cycles = 0;
};

class Cpu {
 public:
  // `reference_path` forces the pre-optimization code paths (per-step
  // opcode re-derivation, unordered_map branch predictor); simulated
  // results are bit-identical either way (tests/test_reference_path.cc).
  // `dispatch` selects the batched-loop interpreter core: the predecoded
  // threaded-code engine (default) or the PR-3 decode-switch twin; both
  // produce bit-identical results (tests/test_dispatch.cc). The reference
  // path always runs on the per-step switch core, so `dispatch` has no
  // effect when `reference_path` is set.
  Cpu(const prog::Program& program, mem::Memory& memory,
      mem::Hierarchy& hierarchy, const TimingConfig& cfg = {},
      bool reference_path = false,
      DispatchMode dispatch = DispatchMode::kThreaded);

  // Executes one instruction; returns the retire record. No-op when halted.
  Retired Step();

  // Batched stepping (the fast-loop interface used by sim::Run when no
  // per-retire consumer is attached): executes instructions back to back
  // without materializing Retired records. State and stats mutations are
  // identical to an equivalent sequence of Step() calls. `steps` counts
  // loop iterations against `max_steps` exactly like the per-step run loop
  // (on budget exhaustion the method returns with steps == max_steps + 1
  // and the instruction NOT executed; the caller throws).
  void RunFree(std::uint64_t max_steps, std::uint64_t& steps);

  // DSA-idle batch: executes instructions without observation until one
  // matches the engine's interest filter — a backward conditional branch
  // (latch candidate), or, when `watch_window`, any pc outside
  // [window_lo, window_hi) (the cooldown-maintenance window). The matching
  // instruction is executed with full observation and its retire record
  // returned; `skipped` counts the unobserved instructions executed before
  // it (the caller credits them via DsaEngine::ObserveSkipped). Returns a
  // null-instr record when the CPU halts or the step budget runs out
  // first.
  Retired RunToInteresting(bool watch_window, std::uint32_t window_lo,
                           std::uint32_t window_hi, std::uint64_t max_steps,
                           std::uint64_t& steps, std::uint64_t& skipped);

  // Outcome of a covered-region run (DSA takeover, Scenario 2).
  struct CoveredOutcome {
    std::uint64_t iterations = 0;
    std::uint64_t retired = 0;
    std::uint64_t glue_instrs = 0;  // fused nests: scalar glue around the
                                    // vectorized inner loop
    bool fused_glue_store = false;  // fusion assumption violated mid-run
  };

  // Executes the covered region of a takeover: the remaining loop
  // iterations run functionally on the interpreter while their issue
  // bandwidth and non-memory stalls are removed from the timing (the
  // engine retro-charges them as vector execution in FinishTakeover).
  // Covered instructions are not counted against the run loop's step
  // budget, matching the per-step reference loop.
  CoveredOutcome RunCovered(std::uint32_t coverage_start,
                            std::uint32_t coverage_latch,
                            std::uint32_t inner_start,
                            std::uint32_t inner_latch,
                            std::uint32_t count_latch,
                            std::uint64_t max_iterations);

  [[nodiscard]] bool halted() const { return state_.halted; }
  [[nodiscard]] CpuState& state() { return state_; }
  [[nodiscard]] const CpuState& state() const { return state_; }
  [[nodiscard]] const CpuStats& stats() const { return stats_; }
  [[nodiscard]] CpuStats& stats() { return stats_; }
  [[nodiscard]] const prog::Program& program() const { return program_; }
  [[nodiscard]] mem::Memory& memory() { return memory_; }
  [[nodiscard]] const mem::Memory& memory() const { return memory_; }
  [[nodiscard]] mem::Hierarchy& hierarchy() { return hierarchy_; }
  [[nodiscard]] const TimingConfig& timing() const { return cfg_; }

  // Total cycle count under the 2-wide issue model:
  // ceil(issue_slots / width) + stalls + NEON busy + DSA overhead.
  [[nodiscard]] std::uint64_t Cycles() const;

  // Charges extra cycles (used by the DSA executor and leftover handling).
  void AddStall(std::uint64_t cycles) { stats_.other_stall_cycles += cycles; }
  void AddNeonBusy(std::uint64_t cycles) { stats_.neon_busy_cycles += cycles; }
  void AddDsaOverhead(std::uint64_t cycles) {
    stats_.dsa_overhead_cycles += cycles;
  }
  void CountVectorRetired(std::uint64_t n) {
    stats_.retired_vector += n;
    stats_.retired_total += n;
  }

  // Interpreter steps actually executed (host-side throughput metric; not
  // a simulated stat and never compared by the oracle).
  [[nodiscard]] std::uint64_t host_steps() const { return host_steps_; }

  // Which interpreter core the batched loops run on (docs/DISPATCH.md).
  [[nodiscard]] DispatchMode dispatch() const { return dispatch_; }
  // Superinstruction pairs the lowering pass fused for this program
  // (0 when the threaded engine is not active). Test/introspection only.
  [[nodiscard]] std::uint32_t fused_pairs() const { return fused_pairs_; }

  // Observation-relevance class of a pc, written by
  // DsaEngine::FillObserveClasses and read by the threaded skip loop
  // (docs/DISPATCH.md): kInert retires run unobserved and are credited via
  // ObserveSkipped; kExit ends the batch *before* executing, so the engine
  // observes the retire per-step; kLatchExec executes the latch inline and
  // materializes the retire for the engine only when the branch is taken.
  // Lowering defaults every latch candidate to kExit, so a Cpu whose
  // classes were never filled behaves exactly like the pre-relevance skip
  // loop. No-op in switch/reference mode (no threaded stream to annotate).
  enum class ObsClass : std::uint8_t { kInert, kExit, kLatchExec };
  void SetObserveClass(std::uint32_t pc, ObsClass c) {
    if (pc >= tslots_.size()) return;
    std::uint8_t f = static_cast<std::uint8_t>(
        tslots_[pc].flags & ~(kSlotObsExit | kSlotObsExecExit));
    if (c == ObsClass::kExit) {
      f |= kSlotObsExit;
    } else if (c == ObsClass::kLatchExec) {
      f |= kSlotObsExecExit;
    }
    tslots_[pc].flags = f;
  }
  // Predecoded latch-candidate bit (kB with a backward target) — the only
  // opcode an idle engine can react to; FillObserveClasses keys on it.
  [[nodiscard]] bool latch_candidate(std::uint32_t pc) const {
    return pc < decoded_.size() && decoded_[pc].latch_candidate;
  }

 private:
  // Per-PC instruction properties precomputed once at construction (the
  // DecodedProgram side table) so Step() never re-derives per-opcode facts.
  struct DecodedInstr {
    // Embedded copy of the instruction word: the interpreter reads every
    // field from the decode-table cache line instead of chasing a pointer
    // into the program (one dependent load per step fewer).
    isa::Instruction ins;
    const isa::Instruction* src = nullptr;  // canonical &program_[pc], the
                                            // stable pointer Retired carries
    std::uint16_t neon_extra = 0;  // NeonTiming::LatencyOf(op) - 1
    bool is_vector = false;
    bool is_store = false;  // opcodes that set Retired::mem_is_write
    bool static_taken = false;  // untrained-branch fallback: backward taken
    bool latch_candidate = false;  // kB with a backward target: the only
                                   // opcode an idle DSA engine reacts to
  };

  // Per-batch stat deltas accumulated in registers by the hot loops and
  // flushed once at scope exit (BatchScope). Keeping these out of stats_
  // while a loop runs matters: interpreter memory writes go through byte
  // pointers, which forces the compiler to re-load and re-store every
  // member counter on each step, while locals are provably unaliased.
  struct StepAccum {
    std::uint64_t steps = 0;  // feeds retired_total/issue_slots/host_steps
    std::uint64_t vec = 0;    // of which vector
    std::uint64_t mem_stall = 0;
    std::uint64_t other_stall = 0;
    std::uint64_t mem_reads = 0;
    std::uint64_t mem_writes = 0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
  };

  // Flush-on-exit guard owning the live pc and the accumulated deltas of
  // a stepping scope. The destructor publishes both, so observable state
  // (state_.pc, stats_) is exact wherever control leaves the loop —
  // including via an exception from an out-of-range memory access.
  struct BatchScope {
    explicit BatchScope(Cpu& c) : cpu(c), pc(c.state_.pc) {}
    BatchScope(const BatchScope&) = delete;
    BatchScope& operator=(const BatchScope&) = delete;
    ~BatchScope() {
      cpu.FlushAccum(a);
      cpu.state_.pc = pc;
    }
    Cpu& cpu;
    StepAccum a;
    std::uint32_t pc;
  };

  void FlushAccum(const StepAccum& a);

  // Loop-invariant table pointers hoisted out of the stepping loops. The
  // interpreter's byte-wise memory writes may alias any object under the
  // strict-aliasing rules, so without the hoist the compiler re-loads the
  // vectors' data pointers on every step — a dependent load in front of
  // the opcode dispatch.
  struct StepCtx {
    const DecodedInstr* dtab;  // decoded_.data()
    std::uint8_t* ptab;        // predict_.data()
    std::uint32_t psize;       // program_.size()
    std::uint8_t* mbase;       // memory_.data()
    std::size_t msize;         // memory_.size()
  };
  [[nodiscard]] StepCtx MakeCtx() {
    return {decoded_.data(), predict_.data(),
            static_cast<std::uint32_t>(program_.size()), memory_.data(),
            memory_.size()};
  }

  // Executes exactly one instruction at `pc` (caller guarantees !halted
  // and pc < ctx.psize) and returns the follow-on pc. Architectural side
  // effects apply immediately; stat deltas go to `a`. Always inlined into
  // the stepping loops so pc and the accumulators stay in registers.
  // kObserve fills the caller's Retired record; !kObserve compiles the
  // record writes out. kRef selects the pre-optimization code paths
  // (per-step opcode re-derivation, map predictor). State, stats and
  // memory effects are identical across all four instantiations.
  template <bool kObserve, bool kRef>
  [[gnu::always_inline]] inline std::uint32_t StepBody(std::uint32_t pc,
                                                       Retired& r,
                                                       StepAccum& a,
                                                       const StepCtx& ctx);

  // One-instruction wrapper around StepBody (the Step() slow path).
  template <bool kObserve>
  void StepImpl(Retired& r);

  template <bool kRef>
  void RunFreeImpl(std::uint64_t max_steps, std::uint64_t& steps);
  template <bool kRef>
  Retired RunToInterestingImpl(bool watch_window, std::uint32_t window_lo,
                               std::uint32_t window_hi,
                               std::uint64_t max_steps, std::uint64_t& steps,
                               std::uint64_t& skipped);
  template <bool kRef>
  CoveredOutcome RunCoveredImpl(std::uint32_t coverage_start,
                                std::uint32_t coverage_latch,
                                std::uint32_t inner_start,
                                std::uint32_t inner_latch,
                                std::uint32_t count_latch,
                                std::uint64_t max_iterations);

  // ---- threaded-code dispatch engine (src/cpu/dispatch.cc) -------------
  //
  // Lowered form of one instruction: every field a handler reads, packed
  // so a slot covers the whole step without touching the Instruction.
  // `extra` is the per-op stall the handler charges (mul/div/fp extras,
  // NEON latency-1 for vector ops, the mispredict penalty for kB, the
  // lane byte width for kVldLane/kVstLane) resolved at lowering time.
  struct POp {
    std::int32_t imm = 0;
    std::int32_t post_inc = 0;
    std::uint32_t extra = 0;
    std::uint8_t rd = 0;
    std::uint8_t rn = 0;
    std::uint8_t rm = 0;
    std::uint8_t ra = 0;
    std::uint8_t cond = 0;   // isa::Cond
    std::uint8_t vt = 0;     // isa::VecType
    std::uint8_t op = 0;     // isa::Opcode (generic lane-op handler)
    std::uint8_t flags = 0;  // kPopStaticTaken
  };
  static constexpr std::uint8_t kPopStaticTaken = 1;

  // One dispatch slot per pc: `h` is the handler id the fused stream
  // dispatches through (a superinstruction id when this pc heads a fused
  // pair), `hp` the always-unfused handler id (the skip loop and branches
  // into the middle of a pair use it), `a` the operands at this pc and
  // `b` the second member's operands when `h` is fused.
  struct TSlot {
    std::uint8_t h = 0;
    std::uint8_t hp = 0;
    std::uint8_t flags = 0;  // kSlot* observation-relevance bits below
    std::uint8_t pad = 0;
    POp a;
    POp b;
  };
  // Slot flags. kSlotLatch is the immutable predecode fact (latch
  // candidate); the two observation bits are the *mutable* relevance class
  // (ObsClass) the skip loop dispatches on, rewritten whenever the engine's
  // cooldown/blacklist state changes (SetObserveClass). Neither bit set
  // means kInert.
  static constexpr std::uint8_t kSlotLatch = 1;
  static constexpr std::uint8_t kSlotObsExit = 2;      // ObsClass::kExit
  static constexpr std::uint8_t kSlotObsExecExit = 4;  // ObsClass::kLatchExec

  // The three batched-loop shapes share one threaded body template.
  enum class TKind { kFree, kSkip, kCovered };
  // kInterestExec: a kLatchExec latch was executed inline and taken — the
  // materialized retire record is already filled; the caller must NOT step.
  enum class TExit { kHalt, kBudget, kInterest, kInterestExec, kRegion };

  // Parameters of one threaded batch; unused fields ignored per TKind.
  struct TRun {
    std::uint64_t max_steps = 0;       // kFree/kSkip budget
    bool watch_window = false;         // kSkip interest filter
    std::uint32_t window_lo = 0;
    std::uint32_t window_hi = 0;
    std::uint32_t cov_start = 0;       // kCovered region + latch logic
    std::uint32_t cov_latch = 0;
    std::uint32_t count_latch = 0;
    std::uint64_t max_iterations = 0;
  };

  void BuildThreaded();  // lowering + superinstruction selection

  template <TKind K>
  TExit ThreadedBody(BatchScope& b, const StepCtx& ctx, const TRun& p,
                     std::uint64_t& steps, std::uint64_t& skipped,
                     std::uint64_t& iterations, Retired* obs);

  void RunFreeThreaded(std::uint64_t max_steps, std::uint64_t& steps);
  Retired RunToInterestingThreaded(bool watch_window, std::uint32_t window_lo,
                                   std::uint32_t window_hi,
                                   std::uint64_t max_steps,
                                   std::uint64_t& steps,
                                   std::uint64_t& skipped);
  CoveredOutcome RunCoveredThreaded(std::uint32_t coverage_start,
                                    std::uint32_t coverage_latch,
                                    std::uint32_t count_latch,
                                    std::uint64_t max_iterations);

  // Removes the scalar cost of a covered run from the stats (issue slots,
  // non-memory stalls, retires, branch counters) — shared by the switch
  // and threaded covered loops.
  void RewindCoveredStats(const CpuStats& before, CoveredOutcome& d);

  // Simple 2-bit saturating-counter branch predictor, indexed by pc.
  bool PredictTaken(std::uint32_t pc);
  void TrainPredictor(std::uint32_t pc, bool taken);

  std::uint32_t MemAccessLatency(std::uint32_t addr, std::uint32_t bytes);

  // ---- way-predicted memory runs (threaded core only) ------------------
  //
  // While consecutive accesses in a batch stay within one resident L1
  // line, the handlers count the hits in this batch-local record and
  // charge the cache once when the run closes (Cache::CreditRun) — the
  // tick/LRU/hit-count transition is identical to the same number of
  // per-access Access() calls, because nothing else touches the cache
  // while a run is open. The writeback lambda closes the run on every
  // batch exit, including exception unwind.
  struct MemRun {
    std::uint64_t line = kNoRunLine;
    mem::Cache::Way* way = nullptr;
    std::uint32_t hits = 0;
  };
  static constexpr std::uint64_t kNoRunLine = ~std::uint64_t{0};

  void FlushMemRun(MemRun& run) {
    if (run.hits != 0) l1_->CreditRun(run.way, run.hits);
    run.line = kNoRunLine;
    run.hits = 0;
  }

  // Run-miss slow path: closes the pending run, then either opens a new
  // run on a resident single-line access (a hit — 0 stall, exactly like
  // the switch core's hit-latency clamp) or falls through to the full
  // hierarchy access and re-probes so the *next* access can open a run.
  std::uint32_t MemRunSlow(std::uint32_t addr, std::uint32_t bytes,
                           std::uint64_t line, MemRun& run);

  const prog::Program& program_;
  mem::Memory& memory_;
  mem::Hierarchy& hierarchy_;
  TimingConfig cfg_;
  CpuState state_;
  CpuStats stats_;
  bool reference_path_;
  DispatchMode dispatch_;
  std::uint64_t host_steps_ = 0;
  // L1 geometry hoisted at construction for the threaded memory fast path
  // (members so MemRunSlow sees them; the hot loop re-hoists into locals).
  mem::Cache* l1_ = nullptr;
  std::uint32_t l1_shift_ = 0;
  std::uint32_t l1_mask_ = 0;
  std::uint32_t l1_hit_ = 0;
  std::vector<DecodedInstr> decoded_;
  // Threaded-code stream: one slot per pc (empty in switch/reference mode).
  std::vector<TSlot> tslots_;
  std::uint32_t fused_pairs_ = 0;
  // Fast-path predictor: one counter per PC, kUntrained until the first
  // branch retires there (preserving the static-fallback semantics of the
  // map-based predictor exactly).
  static constexpr std::uint8_t kUntrained = 0xFF;
  std::vector<std::uint8_t> predict_;
  std::unordered_map<std::uint32_t, std::uint8_t> predictor_;  // reference
};

}  // namespace dsa::cpu
