// Scalar CPU model: functional interpreter for the mini ISA plus a
// cycle-approximate timing model shaped after the paper's gem5 O3CPU setup
// (2-wide superscalar, 1 GHz, 64 kB L1 / 512 kB L2 LRU, NEON as a separate
// pipeline). Timing is trace-level: each retired instruction charges issue
// bandwidth and stall cycles; the DSA observes the retired stream exactly as
// in Figure 31 of the dissertation (analysis hooked at fetch/retire).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>

#include "isa/instruction.h"
#include "mem/cache.h"
#include "mem/memory.h"
#include "neon/vector_unit.h"
#include "prog/program.h"

namespace dsa::cpu {

// Architectural state shared by the scalar core, the NEON engine and the
// DSA's generated-SIMD executor.
struct CpuState {
  std::array<std::uint32_t, isa::kNumScalarRegs> regs{};
  neon::VectorRegFile vregs;
  std::int64_t cmp_diff = 0;  // result of last cmp (lhs - rhs), drives conds
  std::uint32_t pc = 0;
  bool halted = false;

  [[nodiscard]] bool CondHolds(isa::Cond c) const;
};

// What the DSA sees for every retired instruction (the paper's trace).
struct Retired {
  std::uint32_t pc = 0;
  const isa::Instruction* instr = nullptr;
  bool has_mem = false;
  std::uint32_t mem_addr = 0;
  std::uint32_t mem_bytes = 0;
  bool mem_is_write = false;
  bool branch_taken = false;
  std::uint32_t next_pc = 0;
};

struct TimingConfig {
  std::uint32_t superscalar_width = 2;
  std::uint32_t branch_mispredict_penalty = 8;
  std::uint32_t int_mul_extra = 2;
  std::uint32_t int_div_extra = 10;
  std::uint32_t fp_extra = 2;
  std::uint32_t fp_div_extra = 12;
  neon::NeonTiming neon;
};

struct CpuStats {
  std::uint64_t retired_total = 0;
  std::uint64_t retired_scalar = 0;
  std::uint64_t retired_vector = 0;
  std::uint64_t mem_reads = 0;
  std::uint64_t mem_writes = 0;
  std::uint64_t branches = 0;
  std::uint64_t mispredicts = 0;
  std::uint64_t issue_slots = 0;  // consumed issue bandwidth
  // Stalls split by cause: memory stalls persist under DSA covered
  // execution (the same cache lines move either way); other stalls
  // (mul/div/fp latency, branch mispredicts) are replaced by vector cost.
  std::uint64_t mem_stall_cycles = 0;
  std::uint64_t other_stall_cycles = 0;
  std::uint64_t neon_busy_cycles = 0;

  // Cycles charged by DSA activity (pipeline flush on vector takeover etc.).
  std::uint64_t dsa_overhead_cycles = 0;
};

class Cpu {
 public:
  Cpu(const prog::Program& program, mem::Memory& memory,
      mem::Hierarchy& hierarchy, const TimingConfig& cfg = {});

  // Executes one instruction; returns the retire record. No-op when halted.
  Retired Step();

  [[nodiscard]] bool halted() const { return state_.halted; }
  [[nodiscard]] CpuState& state() { return state_; }
  [[nodiscard]] const CpuState& state() const { return state_; }
  [[nodiscard]] const CpuStats& stats() const { return stats_; }
  [[nodiscard]] CpuStats& stats() { return stats_; }
  [[nodiscard]] const prog::Program& program() const { return program_; }
  [[nodiscard]] mem::Memory& memory() { return memory_; }
  [[nodiscard]] mem::Hierarchy& hierarchy() { return hierarchy_; }
  [[nodiscard]] const TimingConfig& timing() const { return cfg_; }

  // Total cycle count under the 2-wide issue model:
  // ceil(issue_slots / width) + stalls + NEON busy + DSA overhead.
  [[nodiscard]] std::uint64_t Cycles() const;

  // Charges extra cycles (used by the DSA executor and leftover handling).
  void AddStall(std::uint64_t cycles) { stats_.other_stall_cycles += cycles; }
  void AddNeonBusy(std::uint64_t cycles) { stats_.neon_busy_cycles += cycles; }
  void AddDsaOverhead(std::uint64_t cycles) {
    stats_.dsa_overhead_cycles += cycles;
  }
  void CountVectorRetired(std::uint64_t n) {
    stats_.retired_vector += n;
    stats_.retired_total += n;
  }

 private:
  // Simple 2-bit saturating-counter branch predictor, indexed by pc.
  bool PredictTaken(std::uint32_t pc);
  void TrainPredictor(std::uint32_t pc, bool taken);

  std::uint32_t MemAccessLatency(std::uint32_t addr, std::uint32_t bytes);

  const prog::Program& program_;
  mem::Memory& memory_;
  mem::Hierarchy& hierarchy_;
  TimingConfig cfg_;
  CpuState state_;
  CpuStats stats_;
  std::unordered_map<std::uint32_t, std::uint8_t> predictor_;
};

}  // namespace dsa::cpu
