// Dispatch-mode selection for the interpreter core (docs/DISPATCH.md).
//
// kThreaded (the default) runs the batched loops on the predecoded
// threaded-code engine: each program is lowered once into a stream of
// handler ids plus packed operand records, executed with computed-goto
// indirect threading and a superinstruction pass that fuses common
// retire pairs. kSwitch keeps the PR-3 decode-switch loops as a
// selectable twin (`--dispatch switch`). Simulated results are
// bit-identical across both modes and the `--reference` twin
// (tests/test_dispatch.cc, tests/test_reference_path.cc).
#pragma once

#include <cstdint>
#include <string_view>

namespace dsa::cpu {

enum class DispatchMode : std::uint8_t {
  kSwitch,    // PR-3 predecode + central decode-dispatch switch
  kThreaded,  // predecoded threaded code + superinstructions (default)
};

[[nodiscard]] inline std::string_view ToString(DispatchMode m) {
  switch (m) {
    case DispatchMode::kSwitch: return "switch";
    case DispatchMode::kThreaded: return "threaded";
  }
  return "?";
}

// Strict parse: only the exact mode names are accepted; returns false on
// anything else so `--dispatch` can refuse unknown values instead of
// silently falling back to a default.
[[nodiscard]] inline bool ParseDispatchMode(std::string_view text,
                                            DispatchMode& out) {
  if (text == "switch") {
    out = DispatchMode::kSwitch;
    return true;
  }
  if (text == "threaded") {
    out = DispatchMode::kThreaded;
    return true;
  }
  return false;
}

}  // namespace dsa::cpu
