#include "cpu/cpu.h"

#include <cstring>
#include <stdexcept>

namespace dsa::cpu {

using isa::Cond;
using isa::Instruction;
using isa::Opcode;
using isa::VecType;

bool CpuState::CondHolds(Cond c) const {
  switch (c) {
    case Cond::kAl: return true;
    case Cond::kEq: return cmp_diff == 0;
    case Cond::kNe: return cmp_diff != 0;
    case Cond::kLt: return cmp_diff < 0;
    case Cond::kGe: return cmp_diff >= 0;
    case Cond::kGt: return cmp_diff > 0;
    case Cond::kLe: return cmp_diff <= 0;
  }
  return false;
}

Cpu::Cpu(const prog::Program& program, mem::Memory& memory,
         mem::Hierarchy& hierarchy, const TimingConfig& cfg)
    : program_(program), memory_(memory), hierarchy_(hierarchy), cfg_(cfg) {}

std::uint64_t Cpu::Cycles() const {
  const std::uint64_t issue =
      (stats_.issue_slots + cfg_.superscalar_width - 1) /
      cfg_.superscalar_width;
  return issue + stats_.mem_stall_cycles + stats_.other_stall_cycles +
         stats_.neon_busy_cycles + stats_.dsa_overhead_cycles;
}

bool Cpu::PredictTaken(std::uint32_t pc) {
  const auto it = predictor_.find(pc);
  // Static fallback: backward taken, forward not-taken.
  if (it == predictor_.end()) {
    const Instruction& ins = program_.at(pc);
    return static_cast<std::uint32_t>(ins.imm) <= pc;
  }
  return it->second >= 2;
}

void Cpu::TrainPredictor(std::uint32_t pc, bool taken) {
  std::uint8_t& ctr = predictor_.try_emplace(pc, taken ? 2 : 1).first->second;
  if (taken && ctr < 3) ++ctr;
  if (!taken && ctr > 0) --ctr;
}

std::uint32_t Cpu::MemAccessLatency(std::uint32_t addr, std::uint32_t bytes) {
  // Hit latency is pipelined away; only charge cycles beyond an L1 hit.
  const std::uint32_t lat = hierarchy_.AccessRange(addr, bytes);
  const std::uint32_t hit = hierarchy_.l1().config().hit_latency;
  return lat > hit ? lat - hit : 0;
}

namespace {

float AsFloat(std::uint32_t v) {
  float f;
  std::memcpy(&f, &v, 4);
  return f;
}

std::uint32_t AsBits(float f) {
  std::uint32_t v;
  std::memcpy(&v, &f, 4);
  return v;
}

}  // namespace

Retired Cpu::Step() {
  Retired r;
  if (state_.halted) return r;
  if (state_.pc >= program_.size()) {
    state_.halted = true;
    return r;
  }

  const std::uint32_t pc = state_.pc;
  const Instruction& ins = program_.at(pc);
  r.pc = pc;
  r.instr = &ins;

  auto& regs = state_.regs;
  std::uint32_t next_pc = pc + 1;
  std::uint64_t mem_stall = 0;
  std::uint64_t stall = 0;  // non-memory stalls

  switch (ins.op) {
    // ---- scalar loads ------------------------------------------------
    case Opcode::kLdr:
    case Opcode::kLdrh:
    case Opcode::kLdrb: {
      const std::uint32_t addr = regs[ins.rn] + ins.imm;
      const std::uint32_t bytes =
          ins.op == Opcode::kLdr ? 4 : (ins.op == Opcode::kLdrh ? 2 : 1);
      if (ins.op == Opcode::kLdr) {
        regs[ins.rd] = memory_.Read32(addr);
      } else if (ins.op == Opcode::kLdrh) {
        regs[ins.rd] = memory_.Read16(addr);
      } else {
        regs[ins.rd] = memory_.Read8(addr);
      }
      regs[ins.rn] += ins.post_inc;
      mem_stall += MemAccessLatency(addr, bytes);
      r.has_mem = true;
      r.mem_addr = addr;
      r.mem_bytes = bytes;
      ++stats_.mem_reads;
      break;
    }
    // ---- scalar stores -----------------------------------------------
    case Opcode::kStr:
    case Opcode::kStrh:
    case Opcode::kStrb: {
      const std::uint32_t addr = regs[ins.rn] + ins.imm;
      const std::uint32_t bytes =
          ins.op == Opcode::kStr ? 4 : (ins.op == Opcode::kStrh ? 2 : 1);
      if (ins.op == Opcode::kStr) {
        memory_.Write32(addr, regs[ins.rd]);
      } else if (ins.op == Opcode::kStrh) {
        memory_.Write16(addr, static_cast<std::uint16_t>(regs[ins.rd]));
      } else {
        memory_.Write8(addr, static_cast<std::uint8_t>(regs[ins.rd]));
      }
      regs[ins.rn] += ins.post_inc;
      mem_stall += MemAccessLatency(addr, bytes);
      r.has_mem = true;
      r.mem_addr = addr;
      r.mem_bytes = bytes;
      r.mem_is_write = true;
      ++stats_.mem_writes;
      break;
    }
    // ---- moves / ALU ---------------------------------------------------
    case Opcode::kMov: regs[ins.rd] = regs[ins.rm]; break;
    case Opcode::kMovi: regs[ins.rd] = static_cast<std::uint32_t>(ins.imm); break;
    case Opcode::kAdd: regs[ins.rd] = regs[ins.rn] + regs[ins.rm]; break;
    case Opcode::kAddi:
      regs[ins.rd] = regs[ins.rn] + static_cast<std::uint32_t>(ins.imm);
      break;
    case Opcode::kSub: regs[ins.rd] = regs[ins.rn] - regs[ins.rm]; break;
    case Opcode::kSubi:
      regs[ins.rd] = regs[ins.rn] - static_cast<std::uint32_t>(ins.imm);
      break;
    case Opcode::kRsb:
      regs[ins.rd] = static_cast<std::uint32_t>(ins.imm) - regs[ins.rn];
      break;
    case Opcode::kMul:
      regs[ins.rd] = regs[ins.rn] * regs[ins.rm];
      stall += cfg_.int_mul_extra;
      break;
    case Opcode::kMla:
      regs[ins.rd] = regs[ins.rn] * regs[ins.rm] + regs[ins.ra];
      stall += cfg_.int_mul_extra;
      break;
    case Opcode::kSdiv: {
      const std::int32_t d = static_cast<std::int32_t>(regs[ins.rm]);
      regs[ins.rd] =
          d == 0 ? 0
                 : static_cast<std::uint32_t>(
                       static_cast<std::int32_t>(regs[ins.rn]) / d);
      stall += cfg_.int_div_extra;
      break;
    }
    case Opcode::kAnd: regs[ins.rd] = regs[ins.rn] & regs[ins.rm]; break;
    case Opcode::kAndi:
      regs[ins.rd] = regs[ins.rn] & static_cast<std::uint32_t>(ins.imm);
      break;
    case Opcode::kOrr: regs[ins.rd] = regs[ins.rn] | regs[ins.rm]; break;
    case Opcode::kEor: regs[ins.rd] = regs[ins.rn] ^ regs[ins.rm]; break;
    case Opcode::kBic: regs[ins.rd] = regs[ins.rn] & ~regs[ins.rm]; break;
    case Opcode::kLsl: regs[ins.rd] = regs[ins.rn] << (regs[ins.rm] & 31); break;
    case Opcode::kLsr: regs[ins.rd] = regs[ins.rn] >> (regs[ins.rm] & 31); break;
    case Opcode::kAsr:
      regs[ins.rd] = static_cast<std::uint32_t>(
          static_cast<std::int32_t>(regs[ins.rn]) >> (regs[ins.rm] & 31));
      break;
    case Opcode::kMin:
      regs[ins.rd] = static_cast<std::uint32_t>(
          std::min(static_cast<std::int32_t>(regs[ins.rn]),
                   static_cast<std::int32_t>(regs[ins.rm])));
      break;
    case Opcode::kMax:
      regs[ins.rd] = static_cast<std::uint32_t>(
          std::max(static_cast<std::int32_t>(regs[ins.rn]),
                   static_cast<std::int32_t>(regs[ins.rm])));
      break;
    // ---- float (VFP-style on scalar regs) ------------------------------
    case Opcode::kFadd:
      regs[ins.rd] = AsBits(AsFloat(regs[ins.rn]) + AsFloat(regs[ins.rm]));
      stall += cfg_.fp_extra;
      break;
    case Opcode::kFsub:
      regs[ins.rd] = AsBits(AsFloat(regs[ins.rn]) - AsFloat(regs[ins.rm]));
      stall += cfg_.fp_extra;
      break;
    case Opcode::kFmul:
      regs[ins.rd] = AsBits(AsFloat(regs[ins.rn]) * AsFloat(regs[ins.rm]));
      stall += cfg_.fp_extra;
      break;
    case Opcode::kFdiv:
      regs[ins.rd] = AsBits(AsFloat(regs[ins.rn]) / AsFloat(regs[ins.rm]));
      stall += cfg_.fp_div_extra;
      break;
    // ---- compare / control ----------------------------------------------
    case Opcode::kCmp:
      state_.cmp_diff = static_cast<std::int64_t>(
                            static_cast<std::int32_t>(regs[ins.rn])) -
                        static_cast<std::int32_t>(regs[ins.rm]);
      break;
    case Opcode::kCmpi:
      state_.cmp_diff = static_cast<std::int64_t>(
                            static_cast<std::int32_t>(regs[ins.rn])) -
                        ins.imm;
      break;
    case Opcode::kB: {
      const bool taken = state_.CondHolds(ins.cond);
      const bool predicted = PredictTaken(pc);
      if (taken) next_pc = static_cast<std::uint32_t>(ins.imm);
      if (predicted != taken) {
        stall += cfg_.branch_mispredict_penalty;
        ++stats_.mispredicts;
      }
      TrainPredictor(pc, taken);
      r.branch_taken = taken;
      ++stats_.branches;
      break;
    }
    case Opcode::kBl:
      regs[isa::kLr] = pc + 1;
      next_pc = static_cast<std::uint32_t>(ins.imm);
      r.branch_taken = true;
      ++stats_.branches;
      break;
    case Opcode::kRet:
      next_pc = regs[isa::kLr];
      r.branch_taken = true;
      ++stats_.branches;
      break;
    case Opcode::kNop: break;
    case Opcode::kHalt:
      state_.halted = true;
      next_pc = pc;
      break;
    // ---- vector (inline NEON instructions from static vectorization) ----
    case Opcode::kVld1: {
      const std::uint32_t addr = regs[ins.rn];
      memory_.ReadBlock(addr, state_.vregs.q(ins.rd).bytes.data(), 16);
      regs[ins.rn] += ins.post_inc;
      mem_stall += MemAccessLatency(addr, 16);
      stall += cfg_.neon.LatencyOf(ins.op) - 1;
      r.has_mem = true;
      r.mem_addr = addr;
      r.mem_bytes = 16;
      ++stats_.mem_reads;
      break;
    }
    case Opcode::kVst1: {
      const std::uint32_t addr = regs[ins.rn];
      memory_.WriteBlock(addr, state_.vregs.q(ins.rd).bytes.data(), 16);
      regs[ins.rn] += ins.post_inc;
      mem_stall += MemAccessLatency(addr, 16);
      stall += cfg_.neon.LatencyOf(ins.op) - 1;
      r.has_mem = true;
      r.mem_addr = addr;
      r.mem_bytes = 16;
      r.mem_is_write = true;
      ++stats_.mem_writes;
      break;
    }
    case Opcode::kVldLane: {
      const std::uint32_t addr = regs[ins.rn];
      const int bytes = isa::LaneBytes(ins.vt);
      std::uint32_t v = 0;
      if (bytes == 1) v = memory_.Read8(addr);
      else if (bytes == 2) v = memory_.Read16(addr);
      else v = memory_.Read32(addr);
      state_.vregs.q(ins.rd).SetLane(ins.vt, ins.imm, v);
      regs[ins.rn] += ins.post_inc;
      mem_stall += MemAccessLatency(addr, bytes);
      r.has_mem = true;
      r.mem_addr = addr;
      r.mem_bytes = bytes;
      ++stats_.mem_reads;
      break;
    }
    case Opcode::kVstLane: {
      const std::uint32_t addr = regs[ins.rn];
      const int bytes = isa::LaneBytes(ins.vt);
      const std::uint32_t v = state_.vregs.q(ins.rd).Lane(ins.vt, ins.imm);
      if (bytes == 1) memory_.Write8(addr, static_cast<std::uint8_t>(v));
      else if (bytes == 2) memory_.Write16(addr, static_cast<std::uint16_t>(v));
      else memory_.Write32(addr, v);
      regs[ins.rn] += ins.post_inc;
      mem_stall += MemAccessLatency(addr, bytes);
      r.has_mem = true;
      r.mem_addr = addr;
      r.mem_bytes = bytes;
      r.mem_is_write = true;
      ++stats_.mem_writes;
      break;
    }
    case Opcode::kVdup:
      state_.vregs.q(ins.rd) = neon::Broadcast(ins.vt, regs[ins.rn]);
      break;
    case Opcode::kVshl:
    case Opcode::kVshr:
      state_.vregs.q(ins.rd) =
          neon::ExecuteShift(ins.op, ins.vt, state_.vregs.q(ins.rn), ins.imm);
      break;
    case Opcode::kVbsl:
      state_.vregs.q(ins.rd) = neon::ExecuteBsl(
          state_.vregs.q(ins.rd), state_.vregs.q(ins.rn),
          state_.vregs.q(ins.rm));
      break;
    case Opcode::kVmovToScalar:
      regs[ins.rd] = state_.vregs.q(ins.rn).Lane(ins.vt, ins.imm);
      break;
    case Opcode::kVmovFromScalar:
      state_.vregs.q(ins.rd).SetLane(ins.vt, ins.imm, regs[ins.rn]);
      break;
    default: {
      // Remaining vector lane ops share one evaluation path.
      if (isa::IsVector(ins.op)) {
        state_.vregs.q(ins.rd) = neon::ExecuteLaneOp(
            ins.op, ins.vt, state_.vregs.q(ins.rn), state_.vregs.q(ins.rm),
            state_.vregs.q(ins.ra));
        stall += cfg_.neon.LatencyOf(ins.op) - 1;
      } else {
        throw std::logic_error("unhandled opcode");
      }
      break;
    }
  }

  ++stats_.retired_total;
  if (isa::IsVector(ins.op)) {
    ++stats_.retired_vector;
  } else {
    ++stats_.retired_scalar;
  }
  ++stats_.issue_slots;
  stats_.mem_stall_cycles += mem_stall;
  stats_.other_stall_cycles += stall;

  state_.pc = next_pc;
  r.next_pc = next_pc;
  if (next_pc >= program_.size() && !state_.halted) state_.halted = true;
  return r;
}

}  // namespace dsa::cpu
