#include "cpu/cpu.h"

#include <cstring>
#include <stdexcept>

namespace dsa::cpu {

using isa::Cond;
using isa::Instruction;
using isa::Opcode;
using isa::VecType;

bool CpuState::CondHolds(Cond c) const {
  switch (c) {
    case Cond::kAl: return true;
    case Cond::kEq: return cmp_diff == 0;
    case Cond::kNe: return cmp_diff != 0;
    case Cond::kLt: return cmp_diff < 0;
    case Cond::kGe: return cmp_diff >= 0;
    case Cond::kGt: return cmp_diff > 0;
    case Cond::kLe: return cmp_diff <= 0;
  }
  return false;
}

Cpu::Cpu(const prog::Program& program, mem::Memory& memory,
         mem::Hierarchy& hierarchy, const TimingConfig& cfg,
         bool reference_path, DispatchMode dispatch)
    : program_(program), memory_(memory), hierarchy_(hierarchy), cfg_(cfg),
      reference_path_(reference_path), dispatch_(dispatch) {
  l1_ = &hierarchy_.l1_runs();
  l1_shift_ = l1_->line_shift();
  l1_mask_ = hierarchy_.l1_line_mask();
  l1_hit_ = hierarchy_.l1_hit_latency();
  decoded_.resize(program.size());
  predict_.assign(program.size(), kUntrained);
  for (std::size_t pc = 0; pc < program.size(); ++pc) {
    const Instruction& ins = program.at(static_cast<std::uint32_t>(pc));
    DecodedInstr& d = decoded_[pc];
    d.ins = ins;
    d.src = &ins;
    d.is_vector = isa::IsVector(ins.op);
    d.is_store = ins.op == Opcode::kStr || ins.op == Opcode::kStrh ||
                 ins.op == Opcode::kStrb || ins.op == Opcode::kVst1 ||
                 ins.op == Opcode::kVstLane;
    d.static_taken = static_cast<std::uint32_t>(ins.imm) <= pc;
    d.latch_candidate = ins.op == Opcode::kB && d.static_taken;
    if (d.is_vector) {
      d.neon_extra =
          static_cast<std::uint16_t>(cfg_.neon.LatencyOf(ins.op) - 1);
    }
  }
  // The reference twin always runs the per-step switch core, so the
  // threaded stream would be dead weight there.
  if (dispatch_ == DispatchMode::kThreaded && !reference_path_) {
    BuildThreaded();
  }
}

std::uint64_t Cpu::Cycles() const {
  const std::uint64_t issue =
      (stats_.issue_slots + cfg_.superscalar_width - 1) /
      cfg_.superscalar_width;
  return issue + stats_.mem_stall_cycles + stats_.other_stall_cycles +
         stats_.neon_busy_cycles + stats_.dsa_overhead_cycles;
}

bool Cpu::PredictTaken(std::uint32_t pc) {
  if (reference_path_) {
    const auto it = predictor_.find(pc);
    // Static fallback: backward taken, forward not-taken.
    if (it == predictor_.end()) {
      const Instruction& ins = program_.at(pc);
      return static_cast<std::uint32_t>(ins.imm) <= pc;
    }
    return it->second >= 2;
  }
  const std::uint8_t ctr = predict_[pc];
  if (ctr == kUntrained) return decoded_[pc].static_taken;
  return ctr >= 2;
}

void Cpu::TrainPredictor(std::uint32_t pc, bool taken) {
  if (reference_path_) {
    std::uint8_t& ctr =
        predictor_.try_emplace(pc, taken ? 2 : 1).first->second;
    if (taken && ctr < 3) ++ctr;
    if (!taken && ctr > 0) --ctr;
    return;
  }
  std::uint8_t& ctr = predict_[pc];
  // First training seeds the weak state (2/1) and then applies the update,
  // matching the map predictor's try_emplace-then-update sequence: the
  // first taken branch lands at 3, the first not-taken at 0.
  if (ctr == kUntrained) ctr = taken ? 2 : 1;
  if (taken) {
    if (ctr < 3) ++ctr;
  } else if (ctr > 0) {
    --ctr;
  }
}

std::uint32_t Cpu::MemAccessLatency(std::uint32_t addr, std::uint32_t bytes) {
  // Hit latency is pipelined away; only charge cycles beyond an L1 hit.
  const std::uint32_t lat = hierarchy_.AccessRange(addr, bytes);
  const std::uint32_t hit = hierarchy_.l1().config().hit_latency;
  return lat > hit ? lat - hit : 0;
}

namespace {

float AsFloat(std::uint32_t v) {
  float f;
  std::memcpy(&f, &v, 4);
  return f;
}

std::uint32_t AsBits(float f) {
  std::uint32_t v;
  std::memcpy(&v, &f, 4);
  return v;
}

}  // namespace

template <bool kObserve, bool kRef>
std::uint32_t Cpu::StepBody(std::uint32_t pc, Retired& r, StepAccum& a,
                            const StepCtx& ctx) {
  const DecodedInstr& dec = ctx.dtab[pc];
  const Instruction& ins = kRef ? program_.at(pc) : dec.ins;
  const bool is_vector = kRef ? isa::IsVector(ins.op) : dec.is_vector;
  if constexpr (kObserve) {
    r.pc = pc;
    r.instr = dec.src;  // == &program_[pc], stable beyond this step
  }

  auto& regs = state_.regs;
  std::uint32_t next_pc = pc + 1;
  std::uint64_t mem_stall = 0;
  std::uint64_t stall = 0;  // non-memory stalls

  switch (ins.op) {
    // ---- scalar loads ------------------------------------------------
    case Opcode::kLdr:
    case Opcode::kLdrh:
    case Opcode::kLdrb: {
      const std::uint32_t addr = regs[ins.rn] + ins.imm;
      const std::uint32_t bytes =
          ins.op == Opcode::kLdr ? 4 : (ins.op == Opcode::kLdrh ? 2 : 1);
      if constexpr (kRef) {
        if (ins.op == Opcode::kLdr) {
          regs[ins.rd] = memory_.Read32(addr);
        } else if (ins.op == Opcode::kLdrh) {
          regs[ins.rd] = memory_.Read16(addr);
        } else {
          regs[ins.rd] = memory_.Read8(addr);
        }
      } else {
        if (static_cast<std::size_t>(addr) + bytes > ctx.msize) {
          memory_.FailRange(addr, bytes);
        }
        if (ins.op == Opcode::kLdr) {
          std::uint32_t v;
          std::memcpy(&v, ctx.mbase + addr, 4);
          regs[ins.rd] = v;
        } else if (ins.op == Opcode::kLdrh) {
          std::uint16_t v;
          std::memcpy(&v, ctx.mbase + addr, 2);
          regs[ins.rd] = v;
        } else {
          regs[ins.rd] = ctx.mbase[addr];
        }
      }
      regs[ins.rn] += ins.post_inc;
      mem_stall += MemAccessLatency(addr, bytes);
      if constexpr (kObserve) {
        r.has_mem = true;
        r.mem_addr = addr;
        r.mem_bytes = bytes;
      }
      ++a.mem_reads;
      break;
    }
    // ---- scalar stores -----------------------------------------------
    case Opcode::kStr:
    case Opcode::kStrh:
    case Opcode::kStrb: {
      const std::uint32_t addr = regs[ins.rn] + ins.imm;
      const std::uint32_t bytes =
          ins.op == Opcode::kStr ? 4 : (ins.op == Opcode::kStrh ? 2 : 1);
      if constexpr (kRef) {
        if (ins.op == Opcode::kStr) {
          memory_.Write32(addr, regs[ins.rd]);
        } else if (ins.op == Opcode::kStrh) {
          memory_.Write16(addr, static_cast<std::uint16_t>(regs[ins.rd]));
        } else {
          memory_.Write8(addr, static_cast<std::uint8_t>(regs[ins.rd]));
        }
      } else {
        if (static_cast<std::size_t>(addr) + bytes > ctx.msize) {
          memory_.FailRange(addr, bytes);
        }
        if (ins.op == Opcode::kStr) {
          const std::uint32_t v = regs[ins.rd];
          std::memcpy(ctx.mbase + addr, &v, 4);
        } else if (ins.op == Opcode::kStrh) {
          const std::uint16_t v = static_cast<std::uint16_t>(regs[ins.rd]);
          std::memcpy(ctx.mbase + addr, &v, 2);
        } else {
          ctx.mbase[addr] = static_cast<std::uint8_t>(regs[ins.rd]);
        }
      }
      regs[ins.rn] += ins.post_inc;
      mem_stall += MemAccessLatency(addr, bytes);
      if constexpr (kObserve) {
        r.has_mem = true;
        r.mem_addr = addr;
        r.mem_bytes = bytes;
        r.mem_is_write = true;
      }
      ++a.mem_writes;
      break;
    }
    // ---- moves / ALU ---------------------------------------------------
    case Opcode::kMov: regs[ins.rd] = regs[ins.rm]; break;
    case Opcode::kMovi: regs[ins.rd] = static_cast<std::uint32_t>(ins.imm); break;
    case Opcode::kAdd: regs[ins.rd] = regs[ins.rn] + regs[ins.rm]; break;
    case Opcode::kAddi:
      regs[ins.rd] = regs[ins.rn] + static_cast<std::uint32_t>(ins.imm);
      break;
    case Opcode::kSub: regs[ins.rd] = regs[ins.rn] - regs[ins.rm]; break;
    case Opcode::kSubi:
      regs[ins.rd] = regs[ins.rn] - static_cast<std::uint32_t>(ins.imm);
      break;
    case Opcode::kRsb:
      regs[ins.rd] = static_cast<std::uint32_t>(ins.imm) - regs[ins.rn];
      break;
    case Opcode::kMul:
      regs[ins.rd] = regs[ins.rn] * regs[ins.rm];
      stall += cfg_.int_mul_extra;
      break;
    case Opcode::kMla:
      regs[ins.rd] = regs[ins.rn] * regs[ins.rm] + regs[ins.ra];
      stall += cfg_.int_mul_extra;
      break;
    case Opcode::kSdiv: {
      const std::int32_t d = static_cast<std::int32_t>(regs[ins.rm]);
      regs[ins.rd] =
          d == 0 ? 0
                 : static_cast<std::uint32_t>(
                       static_cast<std::int32_t>(regs[ins.rn]) / d);
      stall += cfg_.int_div_extra;
      break;
    }
    case Opcode::kAnd: regs[ins.rd] = regs[ins.rn] & regs[ins.rm]; break;
    case Opcode::kAndi:
      regs[ins.rd] = regs[ins.rn] & static_cast<std::uint32_t>(ins.imm);
      break;
    case Opcode::kOrr: regs[ins.rd] = regs[ins.rn] | regs[ins.rm]; break;
    case Opcode::kEor: regs[ins.rd] = regs[ins.rn] ^ regs[ins.rm]; break;
    case Opcode::kBic: regs[ins.rd] = regs[ins.rn] & ~regs[ins.rm]; break;
    case Opcode::kLsl: regs[ins.rd] = regs[ins.rn] << (regs[ins.rm] & 31); break;
    case Opcode::kLsr: regs[ins.rd] = regs[ins.rn] >> (regs[ins.rm] & 31); break;
    case Opcode::kAsr:
      regs[ins.rd] = static_cast<std::uint32_t>(
          static_cast<std::int32_t>(regs[ins.rn]) >> (regs[ins.rm] & 31));
      break;
    case Opcode::kMin:
      regs[ins.rd] = static_cast<std::uint32_t>(
          std::min(static_cast<std::int32_t>(regs[ins.rn]),
                   static_cast<std::int32_t>(regs[ins.rm])));
      break;
    case Opcode::kMax:
      regs[ins.rd] = static_cast<std::uint32_t>(
          std::max(static_cast<std::int32_t>(regs[ins.rn]),
                   static_cast<std::int32_t>(regs[ins.rm])));
      break;
    // ---- float (VFP-style on scalar regs) ------------------------------
    case Opcode::kFadd:
      regs[ins.rd] = AsBits(AsFloat(regs[ins.rn]) + AsFloat(regs[ins.rm]));
      stall += cfg_.fp_extra;
      break;
    case Opcode::kFsub:
      regs[ins.rd] = AsBits(AsFloat(regs[ins.rn]) - AsFloat(regs[ins.rm]));
      stall += cfg_.fp_extra;
      break;
    case Opcode::kFmul:
      regs[ins.rd] = AsBits(AsFloat(regs[ins.rn]) * AsFloat(regs[ins.rm]));
      stall += cfg_.fp_extra;
      break;
    case Opcode::kFdiv:
      regs[ins.rd] = AsBits(AsFloat(regs[ins.rn]) / AsFloat(regs[ins.rm]));
      stall += cfg_.fp_div_extra;
      break;
    // ---- compare / control ----------------------------------------------
    case Opcode::kCmp:
      state_.cmp_diff = static_cast<std::int64_t>(
                            static_cast<std::int32_t>(regs[ins.rn])) -
                        static_cast<std::int32_t>(regs[ins.rm]);
      break;
    case Opcode::kCmpi:
      state_.cmp_diff = static_cast<std::int64_t>(
                            static_cast<std::int32_t>(regs[ins.rn])) -
                        ins.imm;
      break;
    case Opcode::kB: {
      const bool taken = state_.CondHolds(ins.cond);
      bool predicted;
      if constexpr (kRef) {
        predicted = PredictTaken(pc);
      } else {
        const std::uint8_t ctr = ctx.ptab[pc];
        predicted = ctr == kUntrained ? dec.static_taken : ctr >= 2;
      }
      if (taken) next_pc = static_cast<std::uint32_t>(ins.imm);
      if (predicted != taken) {
        stall += cfg_.branch_mispredict_penalty;
        ++a.mispredicts;
      }
      if constexpr (kRef) {
        TrainPredictor(pc, taken);
      } else {
        std::uint8_t& ctr = ctx.ptab[pc];
        // Same first-training quirk as TrainPredictor: seed weak (2/1),
        // then update -- first taken lands at 3, first not-taken at 0.
        if (ctr == kUntrained) ctr = taken ? 2 : 1;
        if (taken) {
          if (ctr < 3) ++ctr;
        } else if (ctr > 0) {
          --ctr;
        }
      }
      if constexpr (kObserve) r.branch_taken = taken;
      ++a.branches;
      break;
    }
    case Opcode::kBl:
      regs[isa::kLr] = pc + 1;
      next_pc = static_cast<std::uint32_t>(ins.imm);
      if constexpr (kObserve) r.branch_taken = true;
      ++a.branches;
      break;
    case Opcode::kRet:
      next_pc = regs[isa::kLr];
      if constexpr (kObserve) r.branch_taken = true;
      ++a.branches;
      break;
    case Opcode::kNop: break;
    case Opcode::kHalt:
      state_.halted = true;
      next_pc = pc;
      break;
    // ---- vector (inline NEON instructions from static vectorization) ----
    case Opcode::kVld1: {
      const std::uint32_t addr = regs[ins.rn];
      if constexpr (kRef) {
        memory_.ReadBlock(addr, state_.vregs.q(ins.rd).bytes.data(), 16);
      } else {
        if (static_cast<std::size_t>(addr) + 16 > ctx.msize) {
          memory_.FailRange(addr, 16);
        }
        std::memcpy(state_.vregs.q(ins.rd).bytes.data(), ctx.mbase + addr,
                    16);
      }
      regs[ins.rn] += ins.post_inc;
      mem_stall += MemAccessLatency(addr, 16);
      stall += kRef ? cfg_.neon.LatencyOf(ins.op) - 1 : dec.neon_extra;
      if constexpr (kObserve) {
        r.has_mem = true;
        r.mem_addr = addr;
        r.mem_bytes = 16;
      }
      ++a.mem_reads;
      break;
    }
    case Opcode::kVst1: {
      const std::uint32_t addr = regs[ins.rn];
      if constexpr (kRef) {
        memory_.WriteBlock(addr, state_.vregs.q(ins.rd).bytes.data(), 16);
      } else {
        if (static_cast<std::size_t>(addr) + 16 > ctx.msize) {
          memory_.FailRange(addr, 16);
        }
        std::memcpy(ctx.mbase + addr, state_.vregs.q(ins.rd).bytes.data(),
                    16);
      }
      regs[ins.rn] += ins.post_inc;
      mem_stall += MemAccessLatency(addr, 16);
      stall += kRef ? cfg_.neon.LatencyOf(ins.op) - 1 : dec.neon_extra;
      if constexpr (kObserve) {
        r.has_mem = true;
        r.mem_addr = addr;
        r.mem_bytes = 16;
        r.mem_is_write = true;
      }
      ++a.mem_writes;
      break;
    }
    case Opcode::kVldLane: {
      const std::uint32_t addr = regs[ins.rn];
      const int bytes = isa::LaneBytes(ins.vt);
      std::uint32_t v = 0;
      if constexpr (kRef) {
        if (bytes == 1) v = memory_.Read8(addr);
        else if (bytes == 2) v = memory_.Read16(addr);
        else v = memory_.Read32(addr);
      } else {
        if (static_cast<std::size_t>(addr) + bytes > ctx.msize) {
          memory_.FailRange(addr, static_cast<std::size_t>(bytes));
        }
        if (bytes == 1) {
          v = ctx.mbase[addr];
        } else if (bytes == 2) {
          std::uint16_t h;
          std::memcpy(&h, ctx.mbase + addr, 2);
          v = h;
        } else {
          std::memcpy(&v, ctx.mbase + addr, 4);
        }
      }
      state_.vregs.q(ins.rd).SetLane(ins.vt, ins.imm, v);
      regs[ins.rn] += ins.post_inc;
      mem_stall += MemAccessLatency(addr, bytes);
      if constexpr (kObserve) {
        r.has_mem = true;
        r.mem_addr = addr;
        r.mem_bytes = bytes;
      }
      ++a.mem_reads;
      break;
    }
    case Opcode::kVstLane: {
      const std::uint32_t addr = regs[ins.rn];
      const int bytes = isa::LaneBytes(ins.vt);
      const std::uint32_t v = state_.vregs.q(ins.rd).Lane(ins.vt, ins.imm);
      if constexpr (kRef) {
        if (bytes == 1) memory_.Write8(addr, static_cast<std::uint8_t>(v));
        else if (bytes == 2) {
          memory_.Write16(addr, static_cast<std::uint16_t>(v));
        } else {
          memory_.Write32(addr, v);
        }
      } else {
        if (static_cast<std::size_t>(addr) + bytes > ctx.msize) {
          memory_.FailRange(addr, static_cast<std::size_t>(bytes));
        }
        if (bytes == 1) {
          ctx.mbase[addr] = static_cast<std::uint8_t>(v);
        } else if (bytes == 2) {
          const std::uint16_t h = static_cast<std::uint16_t>(v);
          std::memcpy(ctx.mbase + addr, &h, 2);
        } else {
          std::memcpy(ctx.mbase + addr, &v, 4);
        }
      }
      regs[ins.rn] += ins.post_inc;
      mem_stall += MemAccessLatency(addr, bytes);
      if constexpr (kObserve) {
        r.has_mem = true;
        r.mem_addr = addr;
        r.mem_bytes = bytes;
        r.mem_is_write = true;
      }
      ++a.mem_writes;
      break;
    }
    case Opcode::kVdup:
      state_.vregs.q(ins.rd) = neon::Broadcast(ins.vt, regs[ins.rn]);
      break;
    case Opcode::kVshl:
    case Opcode::kVshr:
      state_.vregs.q(ins.rd) =
          neon::ExecuteShift(ins.op, ins.vt, state_.vregs.q(ins.rn), ins.imm);
      break;
    case Opcode::kVbsl:
      state_.vregs.q(ins.rd) = neon::ExecuteBsl(
          state_.vregs.q(ins.rd), state_.vregs.q(ins.rn),
          state_.vregs.q(ins.rm));
      break;
    case Opcode::kVmovToScalar:
      regs[ins.rd] = state_.vregs.q(ins.rn).Lane(ins.vt, ins.imm);
      break;
    case Opcode::kVmovFromScalar:
      state_.vregs.q(ins.rd).SetLane(ins.vt, ins.imm, regs[ins.rn]);
      break;
    default: {
      // Remaining vector lane ops share one evaluation path.
      if (is_vector) {
        state_.vregs.q(ins.rd) = neon::ExecuteLaneOp(
            ins.op, ins.vt, state_.vregs.q(ins.rn), state_.vregs.q(ins.rm),
            state_.vregs.q(ins.ra));
        stall += kRef ? cfg_.neon.LatencyOf(ins.op) - 1 : dec.neon_extra;
      } else {
        throw std::logic_error("unhandled opcode");
      }
      break;
    }
  }

  ++a.steps;
  if (is_vector) ++a.vec;
  a.mem_stall += mem_stall;
  a.other_stall += stall;

  if constexpr (kObserve) r.next_pc = next_pc;
  if (next_pc >= ctx.psize && !state_.halted) state_.halted = true;
  return next_pc;
}

void Cpu::FlushAccum(const StepAccum& a) {
  stats_.retired_total += a.steps;
  stats_.retired_vector += a.vec;
  stats_.retired_scalar += a.steps - a.vec;
  stats_.issue_slots += a.steps;
  host_steps_ += a.steps;
  stats_.mem_stall_cycles += a.mem_stall;
  stats_.other_stall_cycles += a.other_stall;
  stats_.mem_reads += a.mem_reads;
  stats_.mem_writes += a.mem_writes;
  stats_.branches += a.branches;
  stats_.mispredicts += a.mispredicts;
}

template <bool kObserve>
void Cpu::StepImpl(Retired& r) {
  if (state_.halted) return;
  if (state_.pc >= program_.size()) {
    state_.halted = true;
    return;
  }
  const StepCtx ctx = MakeCtx();
  BatchScope b(*this);
  if (reference_path_) {
    b.pc = StepBody<kObserve, true>(b.pc, r, b.a, ctx);
  } else {
    b.pc = StepBody<kObserve, false>(b.pc, r, b.a, ctx);
  }
}

Retired Cpu::Step() {
  Retired r;
  StepImpl<true>(r);
  return r;
}

// The threaded engine (dispatch.cc) retires each interesting instruction
// of a skip batch on this shared per-step core; instantiate it here where
// the definition lives.
template void Cpu::StepImpl<true>(Retired& r);

template <bool kRef>
void Cpu::RunFreeImpl(std::uint64_t max_steps, std::uint64_t& steps) {
  Retired r;
  const StepCtx ctx = MakeCtx();
  BatchScope b(*this);
  while (!state_.halted) {
    if (++steps > max_steps) return;
    if (b.pc >= ctx.psize) {
      state_.halted = true;
      return;
    }
    b.pc = StepBody<false, kRef>(b.pc, r, b.a, ctx);
  }
}

void Cpu::RunFree(std::uint64_t max_steps, std::uint64_t& steps) {
  if (reference_path_) {
    RunFreeImpl<true>(max_steps, steps);
  } else if (dispatch_ == DispatchMode::kThreaded) {
    RunFreeThreaded(max_steps, steps);
  } else {
    RunFreeImpl<false>(max_steps, steps);
  }
}

template <bool kRef>
Retired Cpu::RunToInterestingImpl(bool watch_window, std::uint32_t window_lo,
                                  std::uint32_t window_hi,
                                  std::uint64_t max_steps,
                                  std::uint64_t& steps,
                                  std::uint64_t& skipped) {
  Retired r;
  const StepCtx ctx = MakeCtx();
  BatchScope b(*this);
  while (!state_.halted) {
    if (++steps > max_steps) return Retired{};
    const std::uint32_t pc = b.pc;
    if (pc >= ctx.psize) {
      state_.halted = true;
      return Retired{};
    }
    if (ctx.dtab[pc].latch_candidate ||
        (watch_window && (pc < window_lo || pc >= window_hi))) {
      b.pc = StepBody<true, kRef>(b.pc, r, b.a, ctx);
      return r;
    }
    b.pc = StepBody<false, kRef>(b.pc, r, b.a, ctx);
    ++skipped;
  }
  return Retired{};
}

Retired Cpu::RunToInteresting(bool watch_window, std::uint32_t window_lo,
                              std::uint32_t window_hi,
                              std::uint64_t max_steps, std::uint64_t& steps,
                              std::uint64_t& skipped) {
  if (reference_path_) {
    return RunToInterestingImpl<true>(watch_window, window_lo, window_hi,
                                      max_steps, steps, skipped);
  }
  if (dispatch_ == DispatchMode::kThreaded) {
    return RunToInterestingThreaded(watch_window, window_lo, window_hi,
                                    max_steps, steps, skipped);
  }
  return RunToInterestingImpl<false>(watch_window, window_lo, window_hi,
                                     max_steps, steps, skipped);
}

template <bool kRef>
Cpu::CoveredOutcome Cpu::RunCoveredImpl(std::uint32_t coverage_start,
                                        std::uint32_t coverage_latch,
                                        std::uint32_t inner_start,
                                        std::uint32_t inner_latch,
                                        std::uint32_t count_latch,
                                        std::uint64_t max_iterations) {
  const bool fused =
      coverage_start != inner_start || coverage_latch != inner_latch;
  const CpuStats before = stats_;
  CoveredOutcome d;
  {
    const StepCtx ctx = MakeCtx();
    BatchScope b(*this);
    int depth = 0;
    Retired r;  // never written: covered steps run unobserved
    while (!state_.halted) {
      // Peek: stop when control has left the covered region (function
      // calls inside the body keep the coverage alive through `depth`).
      const std::uint32_t pc = b.pc;
      if (depth == 0 && (pc < coverage_start || pc > coverage_latch)) break;
      if (pc >= ctx.psize) {
        state_.halted = true;
        break;
      }

      // Everything the loop needs from a retire is derivable from the
      // decode table and the pc transition, so no Retired record is
      // materialized: opcode and store-ness are static, and a latch kB's
      // taken-ness is `next != pc + 1` (its target is backward, so a
      // taken branch can never land on the fall-through).
      const Opcode op = ctx.dtab[pc].ins.op;
      const bool store = ctx.dtab[pc].is_store;
      b.pc = StepBody<false, kRef>(pc, r, b.a, ctx);
      if (op == Opcode::kBl) ++depth;
      if (op == Opcode::kRet) --depth;

      if (fused && (pc < inner_start || pc > inner_latch)) {
        ++d.glue_instrs;
        if (store) {
          // A store between the loops: the Fig. 17 "nothing but glue"
          // assumption does not hold after all. End the fused coverage
          // and let the engine demote the fusion record.
          d.fused_glue_store = true;
          break;
        }
      }

      if (pc == count_latch && op == Opcode::kB) {
        ++d.iterations;
        if (pc == coverage_latch && b.pc == pc + 1) break;  // fell through
        if (max_iterations != 0 && d.iterations >= max_iterations) {
          break;  // sentinel: speculated range exhausted, back to scalar
        }
      }
    }
  }  // publish pc + stat deltas before the timing replacement below

  RewindCoveredStats(before, d);
  return d;
}

void Cpu::RewindCoveredStats(const CpuStats& before, CoveredOutcome& d) {
  const std::uint64_t d_issue = stats_.issue_slots - before.issue_slots;
  const std::uint64_t d_other =
      stats_.other_stall_cycles - before.other_stall_cycles;
  const std::uint64_t d_retired = stats_.retired_total - before.retired_total;
  const std::uint64_t d_branches = stats_.branches - before.branches;
  const std::uint64_t d_mispred = stats_.mispredicts - before.mispredicts;

  // Remove the scalar cost of the covered instructions; keep memory stalls
  // (the same lines move under vector execution).
  stats_.issue_slots -= d_issue;
  stats_.other_stall_cycles -= d_other;
  stats_.retired_total -= d_retired;
  stats_.retired_scalar -= d_retired;
  stats_.branches -= d_branches;
  stats_.mispredicts -= d_mispred;

  d.retired = d_retired;
}

Cpu::CoveredOutcome Cpu::RunCovered(std::uint32_t coverage_start,
                                    std::uint32_t coverage_latch,
                                    std::uint32_t inner_start,
                                    std::uint32_t inner_latch,
                                    std::uint32_t count_latch,
                                    std::uint64_t max_iterations) {
  if (reference_path_) {
    return RunCoveredImpl<true>(coverage_start, coverage_latch, inner_start,
                                inner_latch, count_latch, max_iterations);
  }
  // Fused-nest takeovers (outer coverage around a vectorized inner loop)
  // need the per-retire glue accounting, which only the switch core
  // implements; both dispatch modes route them there, so the modes stay
  // bit-identical by construction (docs/DISPATCH.md).
  const bool fused_nest =
      coverage_start != inner_start || coverage_latch != inner_latch;
  if (dispatch_ == DispatchMode::kThreaded && !fused_nest) {
    return RunCoveredThreaded(coverage_start, coverage_latch, count_latch,
                              max_iterations);
  }
  return RunCoveredImpl<false>(coverage_start, coverage_latch, inner_start,
                               inner_latch, count_latch, max_iterations);
}

}  // namespace dsa::cpu
