// Structured error taxonomy for the simulation harness. Everything the
// System boundary can throw is a DsaError carrying a machine-readable
// code plus the execution context a caller needs to act on it (workload,
// loop PC when the failure happened inside a takeover, interpreter step
// count) — instead of a bare accessor message escaping from Memory or the
// run loop. The BatchRunner keys its retry/watchdog policy on the code
// (only kTransient is retried; kStepLimit marks a runaway cell).
#pragma once

#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <string_view>

namespace dsa::sim {

enum class DsaErrorCode : std::uint8_t {
  kStepLimit,      // run loop exceeded SystemConfig::max_steps (watchdog)
  kMemOutOfRange,  // memory access outside the workload's address space
  kBadWorkload,    // workload variant missing or malformed
  kTransient,      // retryable harness failure (runner backoff applies)
  kInternal,       // invariant violation inside the simulator itself
  // Process-level failures surfaced by the resilience layer
  // (src/resilience, docs/RESILIENCE.md). Only raised for cells executed
  // under --isolate, where a hard crash is contained in a forked child.
  kCrash,        // child died on a signal (SIGSEGV/SIGABRT/...) or bad exit
  kDeadline,     // cell exceeded its wall-clock deadline and was killed
  kOutOfMemory,  // child hit its memory cap (rlimit -> bad_alloc) or OOM
  kBreakerOpen,  // per-workload circuit breaker refused the cell
  // Admission control of the serving daemon (src/serve, docs/SERVING.md)
  // refused the work: request queue full, client over quota, or a
  // graceful drain in progress. Never raised for CLI sweeps.
  kOverload,
  // Host-I/O failure (src/resilience/iofault.h): a write/fsync/rename/
  // open the durability story depends on failed — disk full, flaky
  // medium, fd exhaustion. The cell result itself is unaffected (the
  // cache degrades to recompute-without-promote; the journal counts the
  // miss), but the failure is typed so nothing claims durability it did
  // not deliver.
  kIoFault,
};

[[nodiscard]] constexpr std::string_view ToString(DsaErrorCode c) {
  switch (c) {
    case DsaErrorCode::kStepLimit: return "step-limit";
    case DsaErrorCode::kMemOutOfRange: return "mem-out-of-range";
    case DsaErrorCode::kBadWorkload: return "bad-workload";
    case DsaErrorCode::kTransient: return "transient";
    case DsaErrorCode::kInternal: return "internal";
    case DsaErrorCode::kCrash: return "crash";
    case DsaErrorCode::kDeadline: return "deadline";
    case DsaErrorCode::kOutOfMemory: return "oom";
    case DsaErrorCode::kBreakerOpen: return "breaker-open";
    case DsaErrorCode::kOverload: return "overload";
    case DsaErrorCode::kIoFault: return "io-fault";
  }
  return "?";
}

// The per-cell status string the bench JSON reports for a cell poisoned by
// this error code (docs/BENCH_SCHEMA.md, schema dsa-bench-json/5).
[[nodiscard]] constexpr std::string_view CellStatusFor(DsaErrorCode c) {
  switch (c) {
    case DsaErrorCode::kCrash: return "crashed";
    case DsaErrorCode::kDeadline: return "timeout";
    case DsaErrorCode::kOutOfMemory: return "oom";
    case DsaErrorCode::kBreakerOpen: return "skipped";
    case DsaErrorCode::kOverload: return "skipped";  // refused, not executed
    case DsaErrorCode::kIoFault: return "faulted";   // host I/O, not the cell
    default: return "faulted";
  }
}

class DsaError : public std::runtime_error {
 public:
  struct Context {
    std::string workload;
    std::uint32_t loop_pc = 0;  // 0 = not inside a covered loop
    std::uint64_t step = 0;     // interpreter steps executed when thrown
  };

  DsaError(DsaErrorCode code, const std::string& detail, Context ctx)
      : std::runtime_error(Format(code, detail, ctx)),
        code_(code),
        ctx_(std::move(ctx)) {}
  DsaError(DsaErrorCode code, const std::string& detail)
      : DsaError(code, detail, Context{}) {}

  [[nodiscard]] DsaErrorCode code() const { return code_; }
  [[nodiscard]] const std::string& workload() const { return ctx_.workload; }
  [[nodiscard]] std::uint32_t loop_pc() const { return ctx_.loop_pc; }
  [[nodiscard]] std::uint64_t step() const { return ctx_.step; }
  // Only transient failures are worth a bounded retry; everything else is
  // deterministic and would fail identically again.
  [[nodiscard]] bool transient() const {
    return code_ == DsaErrorCode::kTransient;
  }

 private:
  static std::string Format(DsaErrorCode code, const std::string& detail,
                            const Context& ctx) {
    std::string msg = "[";
    msg += ToString(code);
    msg += "]";
    if (!ctx.workload.empty()) {
      msg += " workload=";
      msg += ctx.workload;
    }
    if (ctx.loop_pc != 0) {
      char pc[16];
      std::snprintf(pc, sizeof(pc), "0x%x", ctx.loop_pc);
      msg += " loop=";
      msg += pc;
    }
    if (ctx.step != 0) {
      msg += " step=";
      msg += std::to_string(ctx.step);
    }
    msg += ": ";
    msg += detail;
    return msg;
  }

  DsaErrorCode code_;
  Context ctx_;
};

}  // namespace dsa::sim
