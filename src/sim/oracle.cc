#include "sim/oracle.h"

#include <cinttypes>
#include <cstdio>
#include <numeric>
#include <sstream>

namespace dsa::sim::oracle {

namespace {

template <typename... Args>
std::string Format(const char* fmt, Args... args) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  return buf;
}

template <typename Map>
std::uint64_t SumValues(const Map& m) {
  std::uint64_t total = 0;
  for (const auto& [key, n] : m) total += n;
  return total;
}

void Expect(std::vector<Violation>& out, const std::string& job, bool ok,
            const char* check, std::string detail) {
  if (!ok) out.push_back(Violation{job, check, std::move(detail)});
}

}  // namespace

std::vector<Violation> CheckInvariants(const RunResult& r,
                                       const std::string& job) {
  std::vector<Violation> v;
  Expect(v, job, r.output_ok, "invariant.output_ok",
         "golden-reference check failed");
  Expect(v, job, r.cycles > 0, "invariant.cycles", "cycle count is zero");
  Expect(v, job, r.cpu.retired_total > 0, "invariant.retired",
         "no instructions retired");
  Expect(v, job, r.cpu.retired_scalar + r.cpu.retired_vector ==
                     r.cpu.retired_total,
         "invariant.retired_split",
         Format("scalar %" PRIu64 " + vector %" PRIu64 " != total %" PRIu64,
                r.cpu.retired_scalar, r.cpu.retired_vector,
                r.cpu.retired_total));

  const double latency = r.detection_latency_pct();
  Expect(v, job, latency >= 0.0 && latency <= 100.0,
         "invariant.detection_latency",
         Format("detection_latency_pct = %.3f outside [0,100]", latency));

  const double terms[] = {r.energy.core_dynamic, r.energy.core_static,
                          r.energy.neon_dynamic, r.energy.neon_static,
                          r.energy.cache_dram,   r.energy.dsa_dynamic,
                          r.energy.dsa_static};
  for (const double t : terms) {
    Expect(v, job, t >= 0.0, "invariant.energy_term",
           Format("negative energy component %.3f nJ", t));
  }
  Expect(v, job, r.energy.total() > 0.0, "invariant.energy_total",
         "total energy is not positive");

  const bool is_dsa = r.mode == RunMode::kDsa;
  Expect(v, job, r.dsa.has_value() == is_dsa, "invariant.dsa_presence",
         is_dsa ? "DSA run carries no DSA stats"
                : "non-DSA run carries DSA stats");
  if (!r.dsa.has_value()) return v;

  const engine::DsaStats& d = *r.dsa;
  Expect(v, job, d.cache_hit_takeovers <= d.takeovers,
         "invariant.dsa_cache_hits",
         Format("cache-hit takeovers %" PRIu64 " > takeovers %" PRIu64,
                d.cache_hit_takeovers, d.takeovers));
  Expect(v, job, SumValues(d.entries_by_class) == d.takeovers,
         "invariant.dsa_entry_census",
         Format("entries_by_class sums to %" PRIu64 ", takeovers %" PRIu64,
                SumValues(d.entries_by_class), d.takeovers));
  Expect(v, job, d.takeovers == 0 || SumValues(d.loops_by_class) > 0,
         "invariant.dsa_loop_census",
         "takeovers happened but no loop was ever classified");
  Expect(v, job, d.takeovers == 0 || d.vectorized_iterations > 0,
         "invariant.dsa_coverage",
         "takeovers happened but zero iterations were vectorized");
  // Every stored loop classification came from a Loop Detection activation
  // (the tracker is only created after a detected backward branch).
  const std::uint64_t detections =
      d.stage_activations[static_cast<int>(engine::Stage::kLoopDetection)];
  Expect(v, job, SumValues(d.loops_by_class) <= detections,
         "invariant.dsa_stage_census",
         Format("%" PRIu64 " classified loops but only %" PRIu64
                " loop-detection activations",
                SumValues(d.loops_by_class), detections));
  Expect(v, job, d.analysis_cycles <= d.observed_instructions,
         "invariant.dsa_analysis",
         Format("analysis cycles %" PRIu64 " exceed observed instrs %" PRIu64,
                d.analysis_cycles, d.observed_instructions));
  // A loop is blacklisted only after blacklist_strikes rollbacks, so the
  // blacklist census can never outrun the rollback counter.
  Expect(v, job, d.blacklisted_loops <= d.rollbacks,
         "invariant.dsa_blacklist",
         Format("blacklisted loops %" PRIu64 " > rollbacks %" PRIu64,
                d.blacklisted_loops, d.rollbacks));

  // Trace cross-check: a traced run's aggregate stage counters (exact even
  // when the ring overflowed) must mirror the engine's own stage counters;
  // when nothing was dropped, re-deriving the counts from the retained
  // events must give the same answer a third time.
  if (r.trace != nullptr) {
    const trace::TraceDump& t = *r.trace;
    std::array<std::uint64_t, trace::kNumStages> from_events{};
    for (const trace::Event& e : t.events) {
      if (e.kind == trace::EventKind::kStageActivation &&
          e.arg0 < trace::kNumStages) {
        ++from_events[e.arg0];
      }
    }
    for (int s = 0; s < trace::kNumStages; ++s) {
      Expect(v, job, t.stage_counts[s] == d.stage_activations[s],
             "invariant.trace_stage_aggregate",
             Format("trace counted stage %d %" PRIu64
                    " times, engine counted %" PRIu64,
                    s, t.stage_counts[s], d.stage_activations[s]));
      if (t.dropped == 0) {
        Expect(v, job, from_events[s] == d.stage_activations[s],
               "invariant.trace_stage_events",
               Format("trace events carry stage %d %" PRIu64
                      " times, engine counted %" PRIu64,
                      s, from_events[s], d.stage_activations[s]));
      }
    }
    // A rolled-back takeover emits kTakeoverBegin but is squashed before
    // FinishTakeover, so begins balance against takeovers + rollbacks.
    Expect(v, job,
           t.kind_counts[static_cast<int>(trace::EventKind::kTakeoverBegin)] ==
               d.takeovers + d.rollbacks,
           "invariant.trace_takeovers",
           Format("trace saw %" PRIu64 " takeover-begins, engine counted "
                  "%" PRIu64 " takeovers + %" PRIu64 " rollbacks",
                  t.kind_counts[static_cast<int>(
                      trace::EventKind::kTakeoverBegin)],
                  d.takeovers, d.rollbacks));
    Expect(v, job,
           t.kind_counts[static_cast<int>(
               trace::EventKind::kMisspecRollback)] == d.rollbacks,
           "invariant.trace_rollbacks",
           Format("trace saw %" PRIu64 " rollback events, engine counted "
                  "%" PRIu64,
                  t.kind_counts[static_cast<int>(
                      trace::EventKind::kMisspecRollback)],
                  d.rollbacks));
    Expect(v, job,
           t.kind_counts[static_cast<int>(
               trace::EventKind::kLoopBlacklisted)] == d.blacklisted_loops,
           "invariant.trace_blacklist",
           Format("trace saw %" PRIu64 " blacklist events, engine counted "
                  "%" PRIu64,
                  t.kind_counts[static_cast<int>(
                      trace::EventKind::kLoopBlacklisted)],
                  d.blacklisted_loops));
    Expect(v, job, t.dropped <= t.emitted, "invariant.trace_drop_accounting",
           Format("dropped %" PRIu64 " > emitted %" PRIu64, t.dropped,
                  t.emitted));
  }
  return v;
}

std::vector<Violation> CheckDeterminism(const RunResult& a, const RunResult& b,
                                        const std::string& job) {
  std::vector<Violation> v;
  auto same_u64 = [&](const char* check, std::uint64_t x, std::uint64_t y) {
    Expect(v, job, x == y, check,
           Format("run 1: %" PRIu64 ", run 2: %" PRIu64, x, y));
  };
  same_u64("determinism.cycles", a.cycles, b.cycles);
  same_u64("determinism.output_digest", a.output_digest, b.output_digest);
  same_u64("determinism.retired", a.cpu.retired_total, b.cpu.retired_total);
  same_u64("determinism.mispredicts", a.cpu.mispredicts, b.cpu.mispredicts);
  same_u64("determinism.l1_misses", a.l1.misses, b.l1.misses);
  same_u64("determinism.dram", a.dram_accesses, b.dram_accesses);
  Expect(v, job, a.energy.total() == b.energy.total(), "determinism.energy",
         Format("run 1: %.6f nJ, run 2: %.6f nJ", a.energy.total(),
                b.energy.total()));
  Expect(v, job, a.dsa.has_value() == b.dsa.has_value(),
         "determinism.dsa_presence", "DSA stats present in only one run");
  if (a.dsa.has_value() && b.dsa.has_value()) {
    same_u64("determinism.takeovers", a.dsa->takeovers, b.dsa->takeovers);
    same_u64("determinism.vectorized_iterations",
             a.dsa->vectorized_iterations, b.dsa->vectorized_iterations);
    same_u64("determinism.analysis_cycles", a.dsa->analysis_cycles,
             b.dsa->analysis_cycles);
    same_u64("determinism.rollbacks", a.dsa->rollbacks, b.dsa->rollbacks);
    same_u64("determinism.blacklisted_loops", a.dsa->blacklisted_loops,
             b.dsa->blacklisted_loops);
    same_u64("determinism.cache_corruptions", a.dsa->cache_corruptions_detected,
             b.dsa->cache_corruptions_detected);
    for (int s = 0; s < engine::kNumStages; ++s) {
      same_u64("determinism.stage_activations", a.dsa->stage_activations[s],
               b.dsa->stage_activations[s]);
    }
  }
  if (a.trace != nullptr && b.trace != nullptr) {
    same_u64("determinism.trace_emitted", a.trace->emitted, b.trace->emitted);
  }
  return v;
}

std::vector<Violation> CheckEquivalence(const RunResult& ref,
                                        const RunResult& x,
                                        const std::string& job) {
  std::vector<Violation> v;
  Expect(v, job, ref.workload == x.workload, "equivalence.workload",
         "comparing results of different workloads");
  Expect(v, job, ref.output_digest == x.output_digest,
         "equivalence.output_digest",
         Format("%s digest 0x%016" PRIx64 " != %s digest 0x%016" PRIx64,
                std::string(ToString(x.mode)).c_str(), x.output_digest,
                std::string(ToString(ref.mode)).c_str(), ref.output_digest));
  return v;
}

std::string FormatViolations(const std::vector<Violation>& violations) {
  std::ostringstream os;
  for (const Violation& v : violations) {
    os << "ORACLE VIOLATION [" << v.check << "] " << v.job << ": " << v.detail
       << "\n";
  }
  return os.str();
}

}  // namespace dsa::sim::oracle
