// A benchmark in the three binary variants the paper compares (plus golden
// reference): the scalar ARM binary (run by "ARM Original" and by the DSA
// system), the compiler auto-vectorized binary, and the hand-vectorized
// ARM-library binary.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "mem/memory.h"
#include "prog/program.h"

namespace dsa::sim {

// A declared output buffer of a workload. The differential-consistency
// oracle digests exactly these regions, so binary variants are free to
// differ in scratch memory (padded tails, spilled temporaries) while
// their architecturally visible results must stay bit-identical.
struct OutputRegion {
  std::uint32_t addr = 0;
  std::uint32_t bytes = 0;
};

// Provenance of a workload emitted by the seeded loop-nest generator
// (workloads/gen): enough to reproduce the exact program from the CLI
// (`bench_stream --gen-seed`) and to label it in reports. Carried into
// RunResult and the bench JSON's `gen` block.
struct GenInfo {
  std::uint64_t seed = 0;   // exact per-program seed
  std::string loop_class;   // generator grammar class slug, e.g. "sentinel"
  std::uint64_t count = 0;  // elements the generated loop processes
};

struct Workload {
  std::string name;
  std::size_t mem_bytes = 1 << 20;

  prog::Program scalar;
  prog::Program autovec;
  prog::Program handvec;

  // Writes the input data set into memory (all variants share it).
  std::function<void(mem::Memory&)> init;
  // Verifies the outputs against the golden C++ reference.
  std::function<bool(const mem::Memory&)> check;

  // Output buffers for the cross-mode equivalence oracle. When empty, the
  // digest covers the whole memory image (safe for scalar vs. DSA, which
  // execute the same binary, but too strict across binary variants).
  std::vector<OutputRegion> outputs;

  // Static loop-type census of the benchmark (Fig. 7 of Article 3):
  // fraction of loop *executions* by type, annotated by the author of the
  // workload, e.g. {"count", 0.8}, {"conditional", 0.2}.
  std::map<std::string, double> loop_type_fractions;

  // Streaming workloads (workloads/streaming): bytes the kernel moves per
  // execution (reads + writes of its payload buffers), the numerator of
  // the GB/s column in bench_stream. 0 = not a streaming kernel.
  std::uint64_t stream_bytes = 0;

  // Set for programs emitted by the seeded loop-nest generator.
  std::optional<GenInfo> gen;
};

}  // namespace dsa::sim
