// A benchmark in the three binary variants the paper compares (plus golden
// reference): the scalar ARM binary (run by "ARM Original" and by the DSA
// system), the compiler auto-vectorized binary, and the hand-vectorized
// ARM-library binary.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "mem/memory.h"
#include "prog/program.h"

namespace dsa::sim {

// A declared output buffer of a workload. The differential-consistency
// oracle digests exactly these regions, so binary variants are free to
// differ in scratch memory (padded tails, spilled temporaries) while
// their architecturally visible results must stay bit-identical.
struct OutputRegion {
  std::uint32_t addr = 0;
  std::uint32_t bytes = 0;
};

struct Workload {
  std::string name;
  std::size_t mem_bytes = 1 << 20;

  prog::Program scalar;
  prog::Program autovec;
  prog::Program handvec;

  // Writes the input data set into memory (all variants share it).
  std::function<void(mem::Memory&)> init;
  // Verifies the outputs against the golden C++ reference.
  std::function<bool(const mem::Memory&)> check;

  // Output buffers for the cross-mode equivalence oracle. When empty, the
  // digest covers the whole memory image (safe for scalar vs. DSA, which
  // execute the same binary, but too strict across binary variants).
  std::vector<OutputRegion> outputs;

  // Static loop-type census of the benchmark (Fig. 7 of Article 3):
  // fraction of loop *executions* by type, annotated by the author of the
  // workload, e.g. {"count", 0.8}, {"conditional", 0.2}.
  std::map<std::string, double> loop_type_fractions;
};

}  // namespace dsa::sim
