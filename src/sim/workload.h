// A benchmark in the three binary variants the paper compares (plus golden
// reference): the scalar ARM binary (run by "ARM Original" and by the DSA
// system), the compiler auto-vectorized binary, and the hand-vectorized
// ARM-library binary.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "mem/memory.h"
#include "prog/program.h"

namespace dsa::sim {

struct Workload {
  std::string name;
  std::size_t mem_bytes = 1 << 20;

  prog::Program scalar;
  prog::Program autovec;
  prog::Program handvec;

  // Writes the input data set into memory (all variants share it).
  std::function<void(mem::Memory&)> init;
  // Verifies the outputs against the golden C++ reference.
  std::function<bool(const mem::Memory&)> check;

  // Static loop-type census of the benchmark (Fig. 7 of Article 3):
  // fraction of loop *executions* by type, annotated by the author of the
  // workload, e.g. {"count", 0.8}, {"conditional", 0.2}.
  std::map<std::string, double> loop_type_fractions;
};

}  // namespace dsa::sim
