// Parallel experiment runner: executes a batch of {workload, RunMode,
// SystemConfig} jobs on a thread pool (each sim::Run() is a pure function
// of its inputs, so jobs are embarrassingly parallel), memoizes results so
// a scalar baseline — or any cell shared between tables — is executed once
// per batch, and cross-checks every job with the differential-consistency
// oracle (sim/oracle.h). Emits the machine-readable BENCH_*.json next to
// the human-readable tables the bench drivers print.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/oracle.h"
#include "sim/system.h"

namespace dsa::sim {

struct BatchJob {
  Workload workload;
  RunMode mode = RunMode::kScalar;
  SystemConfig config;
  // Memoization trusts tags: two submissions with equal
  // {workload.name, workload_tag, mode, config_tag} are treated as the
  // same experiment and executed once. Drivers that vary the config or
  // the workload parameters must tag them apart.
  std::string config_tag;
  std::string workload_tag;
};

// "name[#wtag]" — groups the modes of one workload for the equivalence
// oracle (outputs must not depend on mode or config).
[[nodiscard]] std::string WorkloadKey(const BatchJob& job);
// "name[#wtag]@mode[/ctag]" — the memoization key.
[[nodiscard]] std::string JobKey(const BatchJob& job);

struct JobOutcome {
  std::string key;
  std::string workload_key;
  RunMode mode = RunMode::kScalar;
  std::string config_tag;
  // `repeats` executions of the same job; runs[0] is the canonical result,
  // the rest exist to feed the determinism oracle.
  std::vector<RunResult> runs;
  double wall_ms = 0;  // wall time of the first execution
  std::string error;   // non-empty if the job threw
  // "ok" once every repeat completed. Failure statuses, keyed on the
  // DsaError code that poisoned the cell (sim::CellStatusFor): "faulted"
  // (watchdog step budget, memory fault, retries exhausted), "crashed"
  // (isolated child died on a signal), "timeout" (wall-clock deadline),
  // "oom" (child memory cap), "skipped" (circuit breaker open) and
  // "cancelled" (graceful drain before execution). A failed cell never
  // aborts the batch — siblings keep running and the JSON records the
  // failure (docs/FAULTS.md, docs/RESILIENCE.md).
  std::string cell_status = "ok";
  // run_fn invocations, including retried attempts (>= runs.size()).
  std::uint64_t attempts = 0;
  // True when the outcome was replayed from a crash-safe journal instead
  // of executed in this process (RunnerOptions::restore_fn).
  bool restored = false;

  [[nodiscard]] const RunResult& result() const { return runs.at(0); }
};

struct RunnerOptions {
  int jobs = 0;      // worker threads; <= 0 uses hardware_concurrency
  int repeats = 2;   // executions per distinct job; >= 2 checks determinism
  bool oracle = true;  // run invariant/determinism/equivalence checks
  // Watchdog: per-cell interpreter step budget. When > 0 it overrides each
  // job's SystemConfig::max_steps, so one runaway cell trips kStepLimit
  // and is marked "faulted" instead of hanging the whole batch.
  std::uint64_t max_cell_steps = 0;
  // Bounded retry with backoff for *transient* failures only
  // (DsaError::transient()); deterministic errors fail the cell at once.
  int max_retries = 2;
  int retry_backoff_ms = 10;  // doubles per attempt
  // Test seam: replaces sim::Run (instrumented or fault-injecting runs).
  // The resilience layer (src/resilience/supervisor.h) also hooks here to
  // wrap execution in a forked child with a deadline and circuit breaker.
  std::function<RunResult(const Workload&, RunMode, const SystemConfig&)>
      run_fn;
  // Resume seam: consulted once per distinct job at Submit time. Returning
  // true marks the cell done with the filled outcome (counted as restored)
  // instead of queueing it — the crash-safe journal replays through this.
  std::function<bool(const std::string& key, JobOutcome& out)> restore_fn;
  // Completion hook: called from the worker thread right after a cell
  // finished executing (not for restored or drained cells). The journal
  // appends through this; it must not call back into the runner.
  std::function<void(const JobOutcome&)> on_outcome;
  // Graceful-drain flag (owned by the caller, typically set from a
  // SIGINT/SIGTERM handler): once true, queued cells are marked
  // "cancelled" instead of executed; in-flight cells finish normally.
  std::atomic<bool>* drain = nullptr;
};

struct BatchReport {
  std::vector<oracle::Violation> violations;
  std::uint64_t distinct_jobs = 0;
  std::uint64_t executed_runs = 0;  // completed runs across all cells
  std::uint64_t faulted_cells = 0;  // cells with cell_status != "ok"
  std::uint64_t memo_hits = 0;      // submissions answered from the memo
  // Cells answered from the resume journal (RunnerOptions::restore_fn)
  // and cells abandoned by a graceful drain, respectively. Restored cells
  // contribute their recorded runs to executed_runs so a resumed batch
  // reconciles exactly like the uninterrupted one.
  std::uint64_t restored_cells = 0;
  std::uint64_t cancelled_cells = 0;
  bool interrupted = false;  // the drain flag fired during the batch
  double wall_ms = 0;        // batch wall time (construction→Finish)
  [[nodiscard]] bool ok() const { return violations.empty(); }
};

// Executes one cell — `opts.repeats` runs of `opts.run_fn` under the
// step-budget watchdog override, the transient-only retry policy and the
// DsaError -> cell_status mapping — filling `out` (keys, runs, status,
// attempts, first-run wall time). The BatchRunner's workers execute
// through this, and so does the serving daemon (src/serve/daemon.cc), so
// a cell failing under dsa_serve is classified exactly like the same
// cell failing in a CLI sweep. `opts.run_fn` must be set.
void ExecuteCell(const BatchJob& job, const RunnerOptions& opts,
                 JobOutcome& out);

class BatchRunner {
 public:
  explicit BatchRunner(RunnerOptions opts = {});
  ~BatchRunner();

  BatchRunner(const BatchRunner&) = delete;
  BatchRunner& operator=(const BatchRunner&) = delete;

  // Enqueues the job (deduplicated by JobKey) and returns its key.
  std::string Submit(BatchJob job);
  std::string Submit(const Workload& wl, RunMode mode,
                     const SystemConfig& cfg = {},
                     const std::string& config_tag = "",
                     const std::string& workload_tag = "") {
    return Submit(BatchJob{wl, mode, cfg, config_tag, workload_tag});
  }

  // Submits the full four-system matrix (Table 4) for one workload under
  // one config; returns the keys in RunMode declaration order.
  std::array<std::string, 4> SubmitMatrix(const Workload& wl,
                                          const SystemConfig& cfg = {},
                                          const std::string& config_tag = "",
                                          const std::string& workload_tag = "");

  // Blocks until the job has run. Throws if the job threw.
  const JobOutcome& Get(const std::string& key);
  const RunResult& Result(const std::string& key) { return Get(key).result(); }
  // Blocks until the job has run and returns its outcome without
  // throwing, failed cells included — callers check cell_status. The
  // resilient rendering path (bench::ResultOrEmpty) uses this so one
  // crashed or cancelled cell cannot abort a whole table.
  const JobOutcome& Outcome(const std::string& key);

  // Barrier: waits for every submitted job, then runs the oracle sweep.
  [[nodiscard]] BatchReport Finish();

  // All outcomes, keyed by JobKey. Call after Finish().
  [[nodiscard]] const std::map<std::string, JobOutcome>& outcomes() const {
    return outcomes_;
  }

  [[nodiscard]] const RunnerOptions& options() const { return opts_; }

 private:
  struct Pending {
    BatchJob job;
    std::string key;
    bool done = false;
    JobOutcome outcome;
  };

  void WorkerLoop();
  void Execute(Pending& p);

  RunnerOptions opts_;
  std::chrono::steady_clock::time_point start_;

  std::mutex mu_;
  std::condition_variable queue_cv_;
  std::condition_variable done_cv_;
  std::map<std::string, std::unique_ptr<Pending>> jobs_;
  std::deque<Pending*> queue_;
  std::uint64_t in_flight_ = 0;
  std::uint64_t memo_hits_ = 0;
  std::uint64_t restored_cells_ = 0;
  bool interrupted_ = false;  // a worker observed the drain flag
  bool stop_ = false;

  std::vector<std::thread> workers_;
  std::map<std::string, JobOutcome> outcomes_;  // filled by Finish()
};

// Resilience census for the bench JSON, filled by the resilience layer
// (src/resilience/supervisor.h) — plain data here so sim does not depend
// on the resilience module.
struct BreakerCensusEntry {
  std::string workload;
  std::string state;  // "closed" | "open" | "half-open"
  std::uint64_t failures = 0;  // consecutive failures seen
  std::uint64_t trips = 0;     // closed->open transitions
  std::uint64_t skipped = 0;   // cells refused while open
};

struct BenchJsonExtras {
  // "complete" for a run that drained its whole queue, "interrupted" when
  // a graceful drain (SIGINT/SIGTERM) abandoned queued cells.
  std::string run_status = "complete";
  bool breaker_enabled = false;
  std::vector<BreakerCensusEntry> breaker;
  std::string journal_path;  // empty = no journal attached
  std::uint64_t journal_restored = 0;  // cells replayed on --resume
  std::uint64_t journal_appended = 0;  // cells appended this run
  // Host-I/O failures while appending (resilience/journal.h): non-zero
  // means durability was NOT delivered and the journal block carries a
  // typed "[io-fault]" warning instead of silently claiming it.
  std::uint64_t journal_write_failures = 0;
  std::uint64_t journal_fsync_failures = 0;
};

// Writes the batch as machine-readable JSON (schema "dsa-bench-json/5"):
// per-job cycles, speedup over the workload's scalar baseline when one is
// in the batch, DSA stats (including the speculation guard's rollback and
// blacklist counters), energy breakdown, wall time, host simulation
// throughput (the `host` block), fault-injection report (`faults` block,
// armed runs only), per-cell status/attempts, the run_status/journal/
// breaker resilience census (docs/RESILIENCE.md), the `stream`/`gen`
// blocks of streaming and generated workloads, plus the oracle
// verdict. Failed cells appear with a minimal payload so a poisoned cell
// is visible, not silently dropped. The file is written to a temporary
// sibling and atomically renamed into place so an interrupted run never
// leaves a truncated report. Returns false if the file could not be
// written.
bool WriteBenchJson(const std::string& path, const std::string& bench_name,
                    const BatchRunner& runner, const BatchReport& report,
                    const BenchJsonExtras* extras = nullptr);

}  // namespace dsa::sim
