// gem5-style plain-text statistics dump for one run: cycles, instruction
// mix, cache behaviour, DSA activity and the energy breakdown. Used by the
// examples and by downstream scripts that diff runs.
#pragma once

#include <string>

#include "sim/system.h"

namespace dsa::sim {

// Formats every counter of a RunResult, one `name value` pair per line,
// stable order, prefixed by the workload/system identity.
[[nodiscard]] std::string FormatReport(const RunResult& r);

// Compact per-loop text profile of a run's event trace: for every loop ID
// seen, its classification, stage activations, takeovers, covered
// iterations, CIDP verdicts, cache hits and respeculations, followed by
// NEON burst totals and ring-buffer health. Empty string when the run
// carries no trace.
[[nodiscard]] std::string FormatTraceProfile(const RunResult& r);

}  // namespace dsa::sim
