// System harness: wires memory, cache hierarchy, the scalar CPU, the NEON
// engine and (in DSA mode) the Dynamic SIMD Assembler; runs one workload
// variant to completion and reports cycles, instruction mix, cache stats,
// DSA stats, and energy (Table 4 system setups).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "cpu/cpu.h"
#include "energy/energy_model.h"
#include "engine/config.h"
#include "engine/engine.h"
#include "fault/fault.h"
#include "mem/cache.h"
#include "sim/error.h"
#include "sim/workload.h"
#include "trace/trace.h"

namespace dsa::sim {

// The four systems of the evaluation (Table 4).
enum class RunMode {
  kScalar,   // ARM Original Execution (no DLP)
  kAutoVec,  // ARM NEON compiler auto-vectorization
  kHandVec,  // ARM NEON hand-vectorized library code
  kDsa,      // ARM + NEON + Dynamic SIMD Assembler (scalar binary)
};

[[nodiscard]] std::string_view ToString(RunMode m);

struct RunResult {
  std::string workload;
  RunMode mode = RunMode::kScalar;
  bool output_ok = false;
  std::uint64_t cycles = 0;
  cpu::CpuStats cpu;
  mem::CacheStats l1;
  mem::CacheStats l2;
  std::uint64_t dram_accesses = 0;
  std::optional<engine::DsaStats> dsa;
  energy::EnergyBreakdown energy;

  // What the fault injector actually did (kDsa runs with
  // SystemConfig::faults armed only): the plan plus per-kind
  // opportunity/fired counters. The speculation guard's recovery counters
  // live in `dsa` (rollbacks, blacklisted_loops, ...).
  std::optional<fault::FaultReport> faults;

  // FNV-1a digest of the workload's declared output regions (whole memory
  // image if none declared) after the run; the oracle's equivalence unit.
  std::uint64_t output_digest = 0;

  // Structured event trace of the run (DSA mode with cfg.trace.enabled
  // only; null otherwise). Shared so copies of the result stay cheap.
  std::shared_ptr<const trace::TraceDump> trace;

  // Host-side throughput of the run loop: interpreter steps executed and
  // the wall time they took. Host-dependent, so never compared by the
  // determinism oracle and never part of FormatReport.
  std::uint64_t host_steps = 0;
  double host_wall_ms = 0.0;
  // Interpreter core the batched loops actually ran on ("threaded" or
  // "switch"; reference runs always report "switch"). Host metadata like
  // host_steps: surfaced in the bench JSON host block, never compared.
  cpu::DispatchMode host_dispatch = cpu::DispatchMode::kSwitch;
  // Millions of simulated instructions per host second.
  [[nodiscard]] double host_mips() const;

  // Host-side phase attribution of the run loop (the `host.phases` block
  // of dsa-bench-json/6): where the host milliseconds went. dispatch =
  // batched interpreter loops; observe = engine observation (Observe
  // calls, relevance-class fills, per-step spans while a tracker is in
  // flight); mem = cache set walks at either level; neon = covered
  // takeover execution + timing replacement. Buckets are disjoint tsc
  // spans of the run, so their sum never exceeds host_wall_ms. Per-step
  // runs (reference/traced) attribute the whole loop to dispatch (mem
  // stays 0 on the reference path, whose walks are untimed). Host
  // metadata: never compared by the oracle, absent from FormatReport.
  struct HostPhases {
    double dispatch_ms = 0.0;
    double observe_ms = 0.0;
    double mem_ms = 0.0;
    double neon_ms = 0.0;
  };
  HostPhases host_phases;

  // Copied from the workload: payload bytes of a streaming kernel (0 for
  // non-streaming workloads) and generator provenance. Deterministic
  // metadata, surfaced as the `stream`/`gen` blocks of the bench JSON.
  std::uint64_t stream_bytes = 0;
  std::optional<GenInfo> gen;
  // Simulated streaming throughput in GB/s at the modeled 1 GHz clock
  // (one byte per cycle == 1 GB/s). Zero for non-streaming workloads.
  [[nodiscard]] double stream_gbps() const;

  // Share of the retired instruction stream the DSA spent analyzing
  // (detection latency, Article 2/3 latency tables). Both numerator and
  // denominator count retired instructions — analysis_cycles ticks once
  // per retire with a tracker in flight — so the ratio is bounded by 100%
  // even when the superscalar core retires more instructions than it
  // spends cycles. Zero for non-DSA modes.
  [[nodiscard]] double detection_latency_pct() const;
};

struct SystemConfig {
  cpu::TimingConfig timing;
  mem::Hierarchy::Config memory;
  engine::DsaConfig dsa;  // used in kDsa mode
  energy::EnergyParams energy;
  trace::TraceConfig trace;  // structured event tracing (kDsa mode)
  // Deterministic fault injection (kDsa mode): when the plan has entries,
  // the run arms a FaultInjector plus the SpeculationGuard, which detects
  // every injected divergence, rolls the takeover back and re-executes the
  // loop scalar — so the final output digest stays bit-identical to the
  // fault-free run (tests/test_fault.cc, docs/FAULTS.md).
  fault::FaultPlan faults;
  std::uint64_t max_steps = 400'000'000;
  // Forces the pre-optimization code paths throughout the stack (CPU
  // predecode/predictor, cache MRU + range fast paths, engine observation
  // gating). Every simulated stat is bit-identical to the default fast
  // path; tests/test_reference_path.cc asserts it on every workload.
  bool reference_path = false;
  // Interpreter core for the batched run loops: the predecoded
  // threaded-code engine (default) or the PR-3 decode-switch twin.
  // Simulated results are bit-identical either way (docs/DISPATCH.md,
  // tests/test_dispatch.cc); ignored when reference_path is set.
  cpu::DispatchMode dispatch = cpu::DispatchMode::kThreaded;
};

// Runs one workload variant end to end.
[[nodiscard]] RunResult Run(const Workload& wl, RunMode mode,
                            const SystemConfig& cfg = {});

// Convenience: speedup of `x` over baseline `base` (cycles ratio).
[[nodiscard]] double SpeedupOver(const RunResult& base, const RunResult& x);

}  // namespace dsa::sim
