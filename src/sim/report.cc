#include "sim/report.h"

#include <iomanip>
#include <map>
#include <sstream>

namespace dsa::sim {

std::string FormatReport(const RunResult& r) {
  std::ostringstream os;
  auto put = [&os](const char* name, auto value) {
    os << name << " " << value << "\n";
  };
  os << "---------- " << r.workload << " @ " << std::string(ToString(r.mode))
     << " ----------\n";
  put("sim.cycles", r.cycles);
  put("sim.output_ok", r.output_ok ? 1 : 0);
  put("cpu.retired_total", r.cpu.retired_total);
  put("cpu.retired_scalar", r.cpu.retired_scalar);
  put("cpu.retired_vector", r.cpu.retired_vector);
  put("cpu.mem_reads", r.cpu.mem_reads);
  put("cpu.mem_writes", r.cpu.mem_writes);
  put("cpu.branches", r.cpu.branches);
  put("cpu.mispredicts", r.cpu.mispredicts);
  put("cpu.issue_slots", r.cpu.issue_slots);
  put("cpu.mem_stall_cycles", r.cpu.mem_stall_cycles);
  put("cpu.other_stall_cycles", r.cpu.other_stall_cycles);
  put("cpu.neon_busy_cycles", r.cpu.neon_busy_cycles);
  put("cpu.dsa_overhead_cycles", r.cpu.dsa_overhead_cycles);
  put("l1.hits", r.l1.hits);
  put("l1.misses", r.l1.misses);
  put("l2.hits", r.l2.hits);
  put("l2.misses", r.l2.misses);
  put("dram.accesses", r.dram_accesses);
  if (r.dsa.has_value()) {
    const engine::DsaStats& d = *r.dsa;
    put("dsa.takeovers", d.takeovers);
    put("dsa.cache_hit_takeovers", d.cache_hit_takeovers);
    put("dsa.fusions_formed", d.fusions_formed);
    put("dsa.fusion_demotions", d.fusion_demotions);
    put("dsa.sentinel_respeculations", d.sentinel_respeculations);
    put("dsa.vectorized_iterations", d.vectorized_iterations);
    put("dsa.scalar_covered_instrs", d.scalar_covered_instrs);
    put("dsa.vector_instrs_issued", d.vector_instrs_issued);
    put("dsa.analysis_cycles", d.analysis_cycles);
    put("dsa.observed_instructions", d.observed_instructions);
    put("dsa.vc_accesses", d.vc_accesses);
    put("dsa.dsa_cache_accesses", d.dsa_cache_accesses);
    put("dsa.array_map_accesses", d.array_map_accesses);
    for (int s = 0; s < engine::kNumStages; ++s) {
      os << "dsa.stage." << ToString(static_cast<engine::Stage>(s)) << " "
         << d.stage_activations[s] << "\n";
    }
    for (const auto& [cls, n] : d.loops_by_class) {
      os << "dsa.loops." << ToString(cls) << " " << n << "\n";
    }
    for (const auto& [why, n] : d.rejects_by_reason) {
      os << "dsa.rejects." << ToString(why) << " " << n << "\n";
    }
  }
  put("energy.core_dynamic", r.energy.core_dynamic);
  put("energy.core_static", r.energy.core_static);
  put("energy.neon_dynamic", r.energy.neon_dynamic);
  put("energy.neon_static", r.energy.neon_static);
  put("energy.cache_dram", r.energy.cache_dram);
  put("energy.dsa_dynamic", r.energy.dsa_dynamic);
  put("energy.dsa_static", r.energy.dsa_static);
  put("energy.total", r.energy.total());
  return os.str();
}

namespace {

// Everything the profile says about one loop ID, accumulated from events.
struct LoopProfile {
  bool detected = false;
  bool classified = false;
  std::uint64_t cls = 0;
  std::uint64_t reject = 0;
  std::array<std::uint64_t, trace::kNumStages> stages{};
  std::uint64_t takeovers = 0;
  std::uint64_t covered_iterations = 0;
  std::uint64_t cidp_checks = 0;
  std::uint64_t cidp_dependencies = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t respeculations = 0;
  std::uint64_t spec_window = 0;  // latest speculative window
  std::uint64_t neon_instrs = 0;
  std::uint64_t neon_busy = 0;
};

}  // namespace

std::string FormatTraceProfile(const RunResult& r) {
  if (r.trace == nullptr) return "";
  const trace::TraceDump& t = *r.trace;

  std::map<std::uint32_t, LoopProfile> loops;
  std::uint64_t bursts = 0, burst_instrs = 0, burst_busy = 0;
  for (const trace::Event& e : t.events) {
    using trace::EventKind;
    if (e.kind == EventKind::kNeonBurst) {
      ++bursts;
      burst_instrs += e.arg0;
      burst_busy += e.arg1;
      if (e.loop_id == 0) continue;  // retire-stream burst, not loop-scoped
    }
    LoopProfile& p = loops[e.loop_id];
    switch (e.kind) {
      case EventKind::kStageActivation:
        if (e.arg0 < trace::kNumStages) ++p.stages[e.arg0];
        break;
      case EventKind::kLoopDetected: p.detected = true; break;
      case EventKind::kLoopClassified:
        p.classified = true;
        p.cls = e.arg0;
        p.reject = e.arg1;
        break;
      case EventKind::kCacheHit: ++p.cache_hits; break;
      case EventKind::kCidpVerdict:
        ++p.cidp_checks;
        p.cidp_dependencies += e.arg0;
        break;
      case EventKind::kTakeoverBegin: ++p.takeovers; break;
      case EventKind::kTakeoverEnd: p.covered_iterations += e.arg0; break;
      case EventKind::kSpecWindow: p.spec_window = e.arg0; break;
      case EventKind::kRespeculation: ++p.respeculations; break;
      case EventKind::kNeonBurst:
        p.neon_instrs += e.arg0;
        p.neon_busy += e.arg1;
        break;
      default: break;
    }
  }

  std::ostringstream os;
  os << "=== trace profile: " << r.workload << " @ "
     << std::string(ToString(r.mode)) << " ===\n";
  for (const auto& [loop, p] : loops) {
    os << "loop 0x" << std::hex << loop << std::dec;
    if (p.classified) {
      os << " [" << ToString(static_cast<engine::LoopClass>(p.cls));
      if (p.reject != 0) {
        os << "/" << ToString(static_cast<engine::RejectReason>(p.reject));
      }
      os << "]";
    } else if (p.detected) {
      os << " [analyzing]";
    }
    os << "\n";
    os << "  stages:";
    for (int s = 0; s < trace::kNumStages; ++s) {
      if (p.stages[s] != 0) {
        os << " " << trace::kStageNames[s] << "=" << p.stages[s];
      }
    }
    os << "\n";
    if (p.takeovers != 0 || p.covered_iterations != 0) {
      os << "  takeovers=" << p.takeovers
         << " covered_iterations=" << p.covered_iterations << "\n";
    }
    if (p.cidp_checks != 0) {
      os << "  cidp_checks=" << p.cidp_checks
         << " cidp_dependencies=" << p.cidp_dependencies << "\n";
    }
    if (p.cache_hits != 0) os << "  cache_hits=" << p.cache_hits << "\n";
    if (p.spec_window != 0 || p.respeculations != 0) {
      os << "  spec_window=" << p.spec_window
         << " respeculations=" << p.respeculations << "\n";
    }
    if (p.neon_instrs != 0) {
      os << "  neon_instrs=" << p.neon_instrs << " neon_busy=" << p.neon_busy
         << "\n";
    }
  }
  os << "neon bursts: " << bursts << " (instrs=" << burst_instrs
     << ", busy_cycles=" << burst_busy << ")\n";
  os << "trace: emitted=" << t.emitted << " dropped=" << t.dropped
     << " ring_capacity=" << t.config.capacity << "\n";
  return os.str();
}

}  // namespace dsa::sim
