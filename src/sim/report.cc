#include "sim/report.h"

#include <sstream>

namespace dsa::sim {

std::string FormatReport(const RunResult& r) {
  std::ostringstream os;
  auto put = [&os](const char* name, auto value) {
    os << name << " " << value << "\n";
  };
  os << "---------- " << r.workload << " @ " << std::string(ToString(r.mode))
     << " ----------\n";
  put("sim.cycles", r.cycles);
  put("sim.output_ok", r.output_ok ? 1 : 0);
  put("cpu.retired_total", r.cpu.retired_total);
  put("cpu.retired_scalar", r.cpu.retired_scalar);
  put("cpu.retired_vector", r.cpu.retired_vector);
  put("cpu.mem_reads", r.cpu.mem_reads);
  put("cpu.mem_writes", r.cpu.mem_writes);
  put("cpu.branches", r.cpu.branches);
  put("cpu.mispredicts", r.cpu.mispredicts);
  put("cpu.issue_slots", r.cpu.issue_slots);
  put("cpu.mem_stall_cycles", r.cpu.mem_stall_cycles);
  put("cpu.other_stall_cycles", r.cpu.other_stall_cycles);
  put("cpu.neon_busy_cycles", r.cpu.neon_busy_cycles);
  put("cpu.dsa_overhead_cycles", r.cpu.dsa_overhead_cycles);
  put("l1.hits", r.l1.hits);
  put("l1.misses", r.l1.misses);
  put("l2.hits", r.l2.hits);
  put("l2.misses", r.l2.misses);
  put("dram.accesses", r.dram_accesses);
  if (r.dsa.has_value()) {
    const engine::DsaStats& d = *r.dsa;
    put("dsa.takeovers", d.takeovers);
    put("dsa.cache_hit_takeovers", d.cache_hit_takeovers);
    put("dsa.fusions_formed", d.fusions_formed);
    put("dsa.fusion_demotions", d.fusion_demotions);
    put("dsa.sentinel_respeculations", d.sentinel_respeculations);
    put("dsa.vectorized_iterations", d.vectorized_iterations);
    put("dsa.scalar_covered_instrs", d.scalar_covered_instrs);
    put("dsa.vector_instrs_issued", d.vector_instrs_issued);
    put("dsa.analysis_cycles", d.analysis_cycles);
    put("dsa.observed_instructions", d.observed_instructions);
    put("dsa.vc_accesses", d.vc_accesses);
    put("dsa.dsa_cache_accesses", d.dsa_cache_accesses);
    put("dsa.array_map_accesses", d.array_map_accesses);
    for (int s = 0; s < engine::kNumStages; ++s) {
      os << "dsa.stage." << ToString(static_cast<engine::Stage>(s)) << " "
         << d.stage_activations[s] << "\n";
    }
    for (const auto& [cls, n] : d.loops_by_class) {
      os << "dsa.loops." << ToString(cls) << " " << n << "\n";
    }
    for (const auto& [why, n] : d.rejects_by_reason) {
      os << "dsa.rejects." << ToString(why) << " " << n << "\n";
    }
  }
  put("energy.core_dynamic", r.energy.core_dynamic);
  put("energy.core_static", r.energy.core_static);
  put("energy.neon_dynamic", r.energy.neon_dynamic);
  put("energy.neon_static", r.energy.neon_static);
  put("energy.cache_dram", r.energy.cache_dram);
  put("energy.dsa_dynamic", r.energy.dsa_dynamic);
  put("energy.dsa_static", r.energy.dsa_static);
  put("energy.total", r.energy.total());
  return os.str();
}

}  // namespace dsa::sim
