// Differential-consistency oracle for the experiment runner: every job of
// a benchmark matrix is cross-checked instead of trusting `output_ok`
// alone. Three layers of checks, each returning a list of violations:
//   - per-run statistical invariants (non-zero cycles, latency percentage
//     in range, non-negative energy terms, DSA counters consistent with
//     the loop census),
//   - cycle-determinism between repeated runs of the same job (the
//     simulator must be a pure function of {workload, mode, config}),
//   - output equivalence across modes: AutoVec/HandVec/DSA output buffers
//     must be bit-identical to the scalar run (the paper's trace-level
//     methodology replaces timing, never results).
#pragma once

#include <string>
#include <vector>

#include "sim/system.h"

namespace dsa::sim::oracle {

struct Violation {
  std::string job;    // which job (workload@mode[/config]) misbehaved
  std::string check;  // short check identifier, e.g. "determinism.cycles"
  std::string detail; // human-readable explanation with the values seen
};

// Per-run statistical invariants. `job` labels the violations.
[[nodiscard]] std::vector<Violation> CheckInvariants(const RunResult& r,
                                                     const std::string& job);

// Two executions of the same job must agree on every architectural and
// timing counter the runner reports.
[[nodiscard]] std::vector<Violation> CheckDeterminism(const RunResult& a,
                                                      const RunResult& b,
                                                      const std::string& job);

// Output buffers of `x` must be bit-identical to the reference (scalar)
// run of the same workload.
[[nodiscard]] std::vector<Violation> CheckEquivalence(const RunResult& ref,
                                                      const RunResult& x,
                                                      const std::string& job);

// One line per violation, for driver stderr output.
[[nodiscard]] std::string FormatViolations(const std::vector<Violation>& v);

}  // namespace dsa::sim::oracle
