#include "sim/system.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "engine/speculation_guard.h"
#include "neon/vector_unit.h"

namespace dsa::sim {

using engine::TakeoverPlan;

std::string_view ToString(RunMode m) {
  switch (m) {
    case RunMode::kScalar: return "arm-original";
    case RunMode::kAutoVec: return "neon-autovec";
    case RunMode::kHandVec: return "neon-handvec";
    case RunMode::kDsa: return "neon-dsa";
  }
  return "?";
}

double RunResult::host_mips() const {
  if (host_steps == 0) return 0.0;
  // Clamp the wall time so a run faster than the clock tick still reports
  // a positive throughput instead of a division blow-up.
  const double ms = host_wall_ms > 1e-9 ? host_wall_ms : 1e-9;
  return static_cast<double>(host_steps) / (1000.0 * ms);
}

double RunResult::stream_gbps() const {
  if (stream_bytes == 0 || cycles == 0) return 0.0;
  // The modeled core runs at 1 GHz, so seconds = cycles * 1e-9 and
  // GB/s (1e9 bytes/s) reduces to bytes per cycle.
  return static_cast<double>(stream_bytes) / static_cast<double>(cycles);
}

double RunResult::detection_latency_pct() const {
  if (!dsa.has_value() || cpu.retired_total == 0) return 0.0;
  return 100.0 * static_cast<double>(dsa->analysis_cycles) /
         static_cast<double>(cpu.retired_total);
}

namespace {

std::uint64_t Fnv1a(const std::uint8_t* data, std::size_t n,
                    std::uint64_t h = 14695981039346656037ull) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t DigestOutputs(const Workload& wl, const mem::Memory& memory) {
  const std::vector<std::uint8_t>& bytes = memory.raw();
  if (wl.outputs.empty()) return Fnv1a(bytes.data(), bytes.size());
  std::uint64_t h = 14695981039346656037ull;
  for (const OutputRegion& region : wl.outputs) {
    const std::size_t end =
        std::min<std::size_t>(bytes.size(),
                              std::size_t{region.addr} + region.bytes);
    if (region.addr >= end) continue;
    h = Fnv1a(bytes.data() + region.addr, end - region.addr, h);
  }
  return h;
}

// Executes the covered region of a takeover: the remaining loop iterations
// run functionally on the scalar interpreter while their issue bandwidth
// and non-memory stalls are retro-charged as vector execution by
// DsaEngine::FinishTakeover (the paper's timing-model replacement).
// Reference-path twin of cpu::Cpu::RunCovered (which the fast DSA loop
// uses); kept verbatim so --reference exercises the pre-optimization code.
struct CoveredDelta {
  std::uint64_t iterations = 0;
  std::uint64_t retired = 0;
  std::uint64_t glue_instrs = 0;  // fused nests: scalar glue around the
                                  // vectorized inner loop
  bool fused_glue_store = false;  // fusion assumption violated mid-run
};

CoveredDelta RunCovered(cpu::Cpu& cpu, const TakeoverPlan& plan) {
  const std::uint32_t start = plan.coverage_start;
  const std::uint32_t latch = plan.coverage_latch;
  const std::uint32_t inner_start = plan.record.body.start_pc;
  const std::uint32_t inner_latch = plan.record.body.latch_pc;

  const bool fused = start != inner_start || latch != inner_latch;
  const cpu::CpuStats before = cpu.stats();
  CoveredDelta d;
  int depth = 0;
  while (!cpu.halted()) {
    // Peek: stop when control has left the covered region (function calls
    // inside the body keep the coverage alive through `depth`).
    const std::uint32_t pc = cpu.state().pc;
    if (depth == 0 && (pc < start || pc > latch)) break;

    const cpu::Retired r = cpu.Step();
    if (r.instr == nullptr) break;
    if (r.instr->op == isa::Opcode::kBl) ++depth;
    if (r.instr->op == isa::Opcode::kRet) --depth;

    if (fused && (r.pc < inner_start || r.pc > inner_latch)) {
      ++d.glue_instrs;
      if (r.mem_is_write) {
        // A store between the loops: the Fig. 17 "nothing but glue"
        // assumption does not hold after all. End the fused coverage and
        // let the engine demote the fusion record.
        d.fused_glue_store = true;
        break;
      }
    }

    if (r.pc == plan.count_latch && r.instr->op == isa::Opcode::kB) {
      ++d.iterations;
      if (r.pc == latch && !r.branch_taken) break;
      if (plan.max_iterations != 0 && d.iterations >= plan.max_iterations) {
        break;  // sentinel: speculated range exhausted, back to scalar
      }
    }
  }

  cpu::CpuStats& s = cpu.stats();
  const std::uint64_t d_issue = s.issue_slots - before.issue_slots;
  const std::uint64_t d_other =
      s.other_stall_cycles - before.other_stall_cycles;
  const std::uint64_t d_retired = s.retired_total - before.retired_total;
  const std::uint64_t d_branches = s.branches - before.branches;
  const std::uint64_t d_mispred = s.mispredicts - before.mispredicts;

  // Remove the scalar cost of the covered instructions; keep memory stalls
  // (the same lines move under vector execution).
  s.issue_slots -= d_issue;
  s.other_stall_cycles -= d_other;
  s.retired_total -= d_retired;
  s.retired_scalar -= d_retired;
  s.branches -= d_branches;
  s.mispredicts -= d_mispred;

  d.retired = d_retired;
  return d;
}

// Phase stopwatch (RunResult::HostPhases): charges the tsc span [t0, now)
// minus the cache-walk tsc accrued inside it — the walks are owned by the
// mem bucket — to `bucket`. Clamped defensively: a core migration can skew
// rdtsc, and a negative span must not wrap the unsigned accumulator.
void ChargePhase(std::uint64_t& bucket, std::uint64_t t0, std::uint64_t walk0,
                 const mem::Hierarchy& hierarchy) {
  const std::uint64_t span = mem::HostTsc() - t0;
  const std::uint64_t walks = hierarchy.walk_tsc() - walk0;
  if (span > walks) bucket += span - walks;
}

[[noreturn]] void ThrowStepLimit(const Workload& wl, const cpu::Cpu& cpu,
                                 std::uint64_t steps) {
  throw DsaError(DsaErrorCode::kStepLimit,
                 "step limit exceeded on " + wl.name,
                 DsaError::Context{wl.name, cpu.state().pc, steps});
}

// Scalar re-execution after a speculation-guard rollback: the checkpoint
// put the PC back at the loop entry, so plain interpreter steps run the
// whole loop (and, for a fused nest, the whole covered region) to its real
// exit — the documented degradation semantics of a misspeculated takeover.
// The DSA observes nothing during the squash-and-replay, but the retires
// are credited via ObserveSkipped by the caller so observed_instructions
// stays exact. Returns the number of re-executed instructions.
std::uint64_t ReexecuteScalar(cpu::Cpu& cpu, const TakeoverPlan& plan,
                              const Workload& wl, std::uint64_t max_steps,
                              std::uint64_t& steps) {
  const std::uint32_t start = plan.coverage_start;
  const std::uint32_t latch = plan.coverage_latch;
  std::uint64_t redone = 0;
  int depth = 0;
  while (!cpu.halted()) {
    const std::uint32_t pc = cpu.state().pc;
    if (depth == 0 && (pc < start || pc > latch)) break;
    if (++steps > max_steps) ThrowStepLimit(wl, cpu, steps);
    const cpu::Retired r = cpu.Step();
    if (r.instr == nullptr) break;
    if (r.instr->op == isa::Opcode::kBl) ++depth;
    if (r.instr->op == isa::Opcode::kRet) --depth;
    ++redone;
  }
  return redone;
}

}  // namespace

RunResult Run(const Workload& wl, RunMode mode, const SystemConfig& cfg) {
  const prog::Program* program = nullptr;
  switch (mode) {
    case RunMode::kScalar:
    case RunMode::kDsa:
      program = &wl.scalar;
      break;
    case RunMode::kAutoVec:
      program = &wl.autovec;
      break;
    case RunMode::kHandVec:
      program = &wl.handvec;
      break;
  }
  if (program == nullptr || program->empty()) {
    throw std::invalid_argument("workload variant not provided: " + wl.name);
  }

  mem::Memory memory(wl.mem_bytes);
  if (wl.init) wl.init(memory);
  mem::Hierarchy hierarchy(cfg.memory);
  hierarchy.set_reference_path(cfg.reference_path);
  // Time the cache set walks for host.phases attribution. Off on the
  // reference path: its per-access walks would pay one tsc read each,
  // and reference runs report their whole loop under dispatch anyway.
  hierarchy.set_time_walks(!cfg.reference_path);
  cpu::Cpu cpu(*program, memory, hierarchy, cfg.timing, cfg.reference_path,
               cfg.dispatch);

  std::optional<engine::DsaEngine> engine;
  std::optional<fault::FaultInjector> injector;
  if (mode == RunMode::kDsa) {
    engine.emplace(cfg.dsa, cfg.timing);
    engine->set_reference_path(cfg.reference_path);
    if (cfg.faults.enabled()) {
      injector.emplace(cfg.faults);
      engine->set_fault_injector(&*injector);
    }
  }

  // The tracer outlives the engine's raw pointer into it; disabled configs
  // never allocate. Explicit-SIMD modes trace their NEON bursts from the
  // retire stream; DSA mode additionally traces the whole engine pipeline.
  std::optional<trace::Tracer> tracer;
  neon::BurstAggregator bursts(cfg.timing.neon);
  if (cfg.trace.enabled) {
    tracer.emplace(cfg.trace);
    if (engine.has_value()) engine->set_tracer(&*tracer);
  }
  const auto emit_burst = [&](const neon::IssueBurst& b) {
    tracer->EmitAt(b.end_cycle, trace::EventKind::kNeonBurst, /*loop_id=*/0,
                   b.instrs, b.busy_cycles, b.busy_cycles);
  };

  // Checkpoint/rollback protection around every takeover of a
  // fault-injected run (docs/FAULTS.md).
  std::optional<engine::SpeculationGuard> guard;
  if (injector.has_value()) {
    guard.emplace(cfg.dsa, *injector,
                  tracer.has_value() ? &*tracer : nullptr);
  }

  std::uint64_t steps = 0;
  // Host phase buckets (RunResult::HostPhases), in raw tsc ticks; converted
  // to ms at the end against the run's own tsc/wall ratio. The spans are
  // disjoint and the walk tsc they contain is subtracted out, so the four
  // buckets can never sum past the wall time.
  std::uint64_t tsc_dispatch = 0;
  std::uint64_t tsc_observe = 0;
  std::uint64_t tsc_neon = 0;
  const auto host_t0 = std::chrono::steady_clock::now();
  const std::uint64_t host_tsc0 = mem::HostTsc();
  try {
    // Fast loops: without a per-retire consumer the interpreter batches
    // instructions inside the Cpu (no Retired materialization, no per-step
    // call). The reference path and traced runs keep the original per-step
    // loop; every path produces bit-identical simulated results
    // (tests/test_reference_path.cc and the differential oracle).
    const bool per_step = cfg.reference_path || tracer.has_value();
    if (!per_step && !engine.has_value()) {
      const std::uint64_t w0 = hierarchy.walk_tsc();
      const std::uint64_t t0 = mem::HostTsc();
      cpu.RunFree(cfg.max_steps, steps);
      ChargePhase(tsc_dispatch, t0, w0, hierarchy);
      if (steps > cfg.max_steps) ThrowStepLimit(wl, cpu, steps);
    } else if (!per_step) {
      // DSA fast loop: while the engine is idle, run unobserved up to the
      // next retire its filter cares about; per-step only while a tracker
      // is analyzing a loop body.
      //
      // On the threaded core the engine's observation-relevance classes —
      // re-filled lazily whenever its epoch moves — replace the coarse
      // pc-window watch entirely (watch=false): the per-slot classes are
      // strictly finer, and the window would force an exit at every cooled
      // latch the classes prove inert. The switch core has no slot stream
      // to hold classes, so it keeps the window filter.
      const bool threaded_fast =
          cpu.dispatch() == cpu::DispatchMode::kThreaded;
      std::uint64_t obs_epoch = 0;  // engine epochs start at 1: always fill
      while (!cpu.halted()) {
        cpu::Retired r;
        if (engine->idle()) {
          if (threaded_fast && engine->observe_epoch() != obs_epoch) {
            const std::uint64_t t0 = mem::HostTsc();
            engine->FillObserveClasses(cpu);
            obs_epoch = engine->observe_epoch();
            tsc_observe += mem::HostTsc() - t0;
          }
          std::uint64_t skipped = 0;
          const std::uint64_t w0 = hierarchy.walk_tsc();
          const std::uint64_t t0 = mem::HostTsc();
          r = cpu.RunToInteresting(!threaded_fast && engine->has_cooldowns(),
                                   engine->cooldown_window_lo(),
                                   engine->cooldown_window_hi(), cfg.max_steps,
                                   steps, skipped);
          ChargePhase(tsc_dispatch, t0, w0, hierarchy);
          if (skipped != 0) engine->ObserveSkipped(skipped);
          if (steps > cfg.max_steps) ThrowStepLimit(wl, cpu, steps);
          if (r.instr == nullptr) break;  // halted before anything interesting
        } else {
          if (++steps > cfg.max_steps) ThrowStepLimit(wl, cpu, steps);
          const std::uint64_t w0 = hierarchy.walk_tsc();
          const std::uint64_t t0 = mem::HostTsc();
          r = cpu.Step();
          // Tracker-window retires: the per-step structure exists to feed
          // the trackers, so the whole span is observation time.
          ChargePhase(tsc_observe, t0, w0, hierarchy);
          if (r.instr == nullptr) break;
        }
        const std::uint64_t obs_t0 = mem::HostTsc();
        std::optional<TakeoverPlan> plan = engine->Observe(r, cpu.state());
        tsc_observe += mem::HostTsc() - obs_t0;
        if (plan.has_value()) {
          const std::uint64_t w0 = hierarchy.walk_tsc();
          const std::uint64_t t0 = mem::HostTsc();
          if (guard.has_value()) guard->Arm(*plan, cpu);
          const cpu::Cpu::CoveredOutcome d = cpu.RunCovered(
              plan->coverage_start, plan->coverage_latch,
              plan->record.body.start_pc, plan->record.body.latch_pc,
              plan->count_latch, plan->max_iterations);
          if (guard.has_value() &&
              guard->CheckAfterCovered(*plan, cpu, d.iterations)) {
            guard->Rollback(cpu);
            engine->RecordRollback(*plan, cpu);
            engine->ObserveSkipped(
                ReexecuteScalar(cpu, *plan, wl, cfg.max_steps, steps));
          } else {
            engine->FinishTakeover(*plan, d.iterations, d.retired, cpu,
                                   d.glue_instrs);
            if (d.fused_glue_store) engine->DemoteFusion(plan->coverage_latch);
          }
          ChargePhase(tsc_neon, t0, w0, hierarchy);
        }
      }
    } else {
      // Reference / traced per-step loop: one Step() and one observation per
      // retired instruction, exactly the pre-optimization structure. Phase
      // attribution stays coarse here — the whole loop is one dispatch span
      // (minus timed walks on traced runs) — because wrapping every Step()
      // of the slow twin in tsc reads would only distort the comparison.
      const std::uint64_t loop_w0 = hierarchy.walk_tsc();
      const std::uint64_t loop_t0 = mem::HostTsc();
      while (!cpu.halted()) {
        if (++steps > cfg.max_steps) ThrowStepLimit(wl, cpu, steps);
        const cpu::Retired r = cpu.Step();
        if (r.instr == nullptr) break;
        if (tracer.has_value()) {
          const std::uint64_t now = cpu.Cycles();
          tracer->SetNow(now);
          if (const auto b = bursts.Observe(r.instr->op, now)) {
            emit_burst(*b);
          }
        }
        if (engine.has_value()) {
          std::optional<TakeoverPlan> plan = engine->Observe(r, cpu.state());
          if (plan.has_value()) {
            if (tracer.has_value()) {
              tracer->Emit(trace::EventKind::kTakeoverBegin,
                           plan->record.loop_id, plan->from_cache ? 1 : 0,
                           plan->max_iterations);
            }
            if (guard.has_value()) guard->Arm(*plan, cpu);
            const CoveredDelta d = RunCovered(cpu, *plan);
            if (tracer.has_value()) tracer->SetNow(cpu.Cycles());
            if (guard.has_value() &&
                guard->CheckAfterCovered(*plan, cpu, d.iterations)) {
              guard->Rollback(cpu);
              engine->RecordRollback(*plan, cpu);
              engine->ObserveSkipped(
                  ReexecuteScalar(cpu, *plan, wl, cfg.max_steps, steps));
              // No kTakeoverEnd: the takeover was squashed, and the oracle
              // balances kTakeoverBegin against takeovers + rollbacks.
            } else {
              engine->FinishTakeover(*plan, d.iterations, d.retired, cpu,
                                     d.glue_instrs);
              if (tracer.has_value()) {
                // Re-stamp: FinishTakeover charged the NEON/overhead cycles,
                // so the end marker sits after the replaced region.
                tracer->SetNow(cpu.Cycles());
                tracer->Emit(trace::EventKind::kTakeoverEnd,
                             plan->record.loop_id, d.iterations, d.retired);
              }
              if (d.fused_glue_store) engine->DemoteFusion(plan->coverage_latch);
            }
          }
        }
      }
      ChargePhase(tsc_dispatch, loop_t0, loop_w0, hierarchy);
    }

  } catch (const DsaError&) {
    throw;
  } catch (const std::out_of_range& e) {
    // A raw range failure escaping the Memory accessors carries no
    // execution context; re-throw with the workload, the faulting PC
    // and the interpreter step count attached (docs/FAULTS.md).
    throw DsaError(DsaErrorCode::kMemOutOfRange, e.what(),
                   DsaError::Context{wl.name, cpu.state().pc, steps});
  }
  RunResult res;
  res.workload = wl.name;
  res.mode = mode;
  res.stream_bytes = wl.stream_bytes;
  res.gen = wl.gen;
  res.host_wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - host_t0)
                         .count();
  // tsc -> ms against this run's own ratio, so frequency scaling (or the
  // steady_clock fallback of HostTsc) cancels out of the attribution.
  const std::uint64_t host_tsc_span = mem::HostTsc() - host_tsc0;
  if (host_tsc_span > 0) {
    const double ms_per_tick =
        res.host_wall_ms / static_cast<double>(host_tsc_span);
    res.host_phases.dispatch_ms =
        static_cast<double>(tsc_dispatch) * ms_per_tick;
    res.host_phases.observe_ms = static_cast<double>(tsc_observe) * ms_per_tick;
    res.host_phases.neon_ms = static_cast<double>(tsc_neon) * ms_per_tick;
    res.host_phases.mem_ms =
        static_cast<double>(hierarchy.walk_tsc()) * ms_per_tick;
  }
  res.host_steps = cpu.host_steps();
  // Report what actually ran: reference and traced runs execute the
  // per-step switch core regardless of the configured dispatch mode.
  res.host_dispatch = (!cfg.reference_path && !tracer.has_value() &&
                       cpu.dispatch() == cpu::DispatchMode::kThreaded)
                          ? cpu::DispatchMode::kThreaded
                          : cpu::DispatchMode::kSwitch;
  res.cycles = cpu.Cycles();
  res.cpu = cpu.stats();
  res.l1 = hierarchy.l1().stats();
  res.l2 = hierarchy.l2().stats();
  res.dram_accesses = hierarchy.dram_accesses();
  if (engine.has_value()) res.dsa = engine->stats();
  if (injector.has_value()) {
    fault::FaultReport rep;
    rep.plan = injector->plan();
    rep.opportunities = injector->opportunities();
    rep.fired = injector->fired();
    res.faults = rep;
  }
  if (tracer.has_value()) {
    tracer->SetNow(cpu.Cycles());
    if (const auto b = bursts.Flush()) emit_burst(*b);
    res.trace = std::make_shared<const trace::TraceDump>(tracer->Dump());
    if (engine.has_value()) engine->set_tracer(nullptr);
  }
  res.output_ok = wl.check ? wl.check(memory) : true;
  res.output_digest = DigestOutputs(wl, memory);

  const bool neon_present = mode != RunMode::kScalar;
  res.energy = energy::ComputeEnergy(
      cfg.energy, res.cpu, hierarchy, res.cycles,
      res.dsa.has_value() ? &*res.dsa : nullptr, neon_present);
  return res;
}

double SpeedupOver(const RunResult& base, const RunResult& x) {
  if (x.cycles == 0) return 0.0;
  return static_cast<double>(base.cycles) / static_cast<double>(x.cycles);
}

}  // namespace dsa::sim
