#include "sim/runner.h"

#include <cinttypes>
#include <cstdio>
#include <exception>
#include <stdexcept>
#include <utility>

#include "sim/error.h"

namespace dsa::sim {

namespace {

std::string ModeSlug(RunMode m) { return std::string(ToString(m)); }

double ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

std::string WorkloadKey(const BatchJob& job) {
  std::string key = job.workload.name;
  if (!job.workload_tag.empty()) key += "#" + job.workload_tag;
  return key;
}

std::string JobKey(const BatchJob& job) {
  std::string key = WorkloadKey(job) + "@" + ModeSlug(job.mode);
  if (!job.config_tag.empty()) key += "/" + job.config_tag;
  return key;
}

BatchRunner::BatchRunner(RunnerOptions opts)
    : opts_(std::move(opts)), start_(std::chrono::steady_clock::now()) {
  if (opts_.jobs <= 0) {
    opts_.jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (opts_.jobs <= 0) opts_.jobs = 1;
  }
  if (opts_.repeats < 1) opts_.repeats = 1;
  if (!opts_.run_fn) {
    opts_.run_fn = [](const Workload& wl, RunMode mode,
                      const SystemConfig& cfg) { return Run(wl, mode, cfg); };
  }
  workers_.reserve(static_cast<std::size_t>(opts_.jobs));
  for (int i = 0; i < opts_.jobs; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

BatchRunner::~BatchRunner() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::string BatchRunner::Submit(BatchJob job) {
  std::string key = JobKey(job);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(key);
    if (it != jobs_.end()) {
      ++memo_hits_;
      return key;
    }
    auto pending = std::make_unique<Pending>();
    pending->job = std::move(job);
    pending->key = key;
    // Resume seam: a journaled cell is answered without executing. The
    // restore callback fills the full outcome (runs, stats, status), so
    // downstream consumers cannot tell it apart from a fresh execution.
    if (opts_.restore_fn) {
      JobOutcome& out = pending->outcome;
      if (opts_.restore_fn(key, out)) {
        out.key = key;
        out.workload_key = WorkloadKey(pending->job);
        out.mode = pending->job.mode;
        out.config_tag = pending->job.config_tag;
        out.restored = true;
        pending->done = true;
        ++restored_cells_;
        jobs_.emplace(key, std::move(pending));
        return key;
      }
    }
    queue_.push_back(pending.get());
    ++in_flight_;
    jobs_.emplace(key, std::move(pending));
  }
  queue_cv_.notify_one();
  return key;
}

std::array<std::string, 4> BatchRunner::SubmitMatrix(
    const Workload& wl, const SystemConfig& cfg, const std::string& config_tag,
    const std::string& workload_tag) {
  std::array<std::string, 4> keys;
  const RunMode modes[] = {RunMode::kScalar, RunMode::kAutoVec,
                           RunMode::kHandVec, RunMode::kDsa};
  for (int i = 0; i < 4; ++i) {
    keys[i] = Submit(BatchJob{wl, modes[i], cfg, config_tag, workload_tag});
  }
  return keys;
}

void BatchRunner::WorkerLoop() {
  for (;;) {
    Pending* p = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      p = queue_.front();
      queue_.pop_front();
    }
    const bool drained = opts_.drain != nullptr &&
                         opts_.drain->load(std::memory_order_relaxed);
    if (drained) {
      // Graceful drain: never start new work, but let in-flight cells
      // finish so the journal and the partial report stay consistent.
      JobOutcome& out = p->outcome;
      out.key = p->key;
      out.workload_key = WorkloadKey(p->job);
      out.mode = p->job.mode;
      out.config_tag = p->job.config_tag;
      out.cell_status = "cancelled";
      out.error = "drained: batch interrupted before this cell executed";
    } else {
      Execute(*p);
      if (opts_.on_outcome) opts_.on_outcome(p->outcome);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (drained) interrupted_ = true;
      p->done = true;
      --in_flight_;
    }
    done_cv_.notify_all();
  }
}

void ExecuteCell(const BatchJob& job, const RunnerOptions& opts,
                 JobOutcome& out) {
  out.key = JobKey(job);
  out.workload_key = WorkloadKey(job);
  out.mode = job.mode;
  out.config_tag = job.config_tag;

  // Watchdog: cap the cell's interpreter step budget so a runaway loop
  // trips DsaError{kStepLimit} instead of wedging the worker thread.
  SystemConfig cfg = job.config;
  if (opts.max_cell_steps > 0 &&
      (cfg.max_steps == 0 || cfg.max_steps > opts.max_cell_steps)) {
    cfg.max_steps = opts.max_cell_steps;
  }

  const int repeats = opts.repeats < 1 ? 1 : opts.repeats;
  for (int rep = 0; rep < repeats; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int attempt = 0;; ++attempt) {
      ++out.attempts;
      try {
        out.runs.push_back(opts.run_fn(job.workload, job.mode, cfg));
        break;
      } catch (const DsaError& e) {
        out.error = e.what();
        // Only transient harness failures earn a bounded retry with
        // exponential backoff; deterministic errors (step limit, OOB,
        // bad workload) would fail identically again. Process-level
        // failures map to their own statuses ("crashed"/"timeout"/"oom"/
        // "skipped") so the JSON census can tell them apart.
        if (!e.transient() || attempt >= opts.max_retries) {
          out.cell_status = std::string(CellStatusFor(e.code()));
          return;
        }
        if (opts.retry_backoff_ms > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(
              static_cast<std::int64_t>(opts.retry_backoff_ms) << attempt));
        }
        out.error.clear();
      } catch (const std::exception& e) {
        out.error = e.what();
        out.cell_status = "faulted";
        return;
      }
    }
    if (rep == 0) out.wall_ms = ElapsedMs(t0);
  }
  out.cell_status = "ok";
}

void BatchRunner::Execute(Pending& p) {
  ExecuteCell(p.job, opts_, p.outcome);
  p.outcome.key = p.key;  // the memo key (== JobKey(p.job) by Submit)
}

const JobOutcome& BatchRunner::Get(const std::string& key) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = jobs_.find(key);
  if (it == jobs_.end()) {
    throw std::invalid_argument("BatchRunner::Get: unknown job " + key);
  }
  Pending* p = it->second.get();
  done_cv_.wait(lock, [p] { return p->done; });
  if (!p->outcome.error.empty()) {
    throw std::runtime_error("job " + key + " failed: " + p->outcome.error);
  }
  return p->outcome;
}

const JobOutcome& BatchRunner::Outcome(const std::string& key) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = jobs_.find(key);
  if (it == jobs_.end()) {
    throw std::invalid_argument("BatchRunner::Outcome: unknown job " + key);
  }
  Pending* p = it->second.get();
  done_cv_.wait(lock, [p] { return p->done; });
  return p->outcome;
}

BatchReport BatchRunner::Finish() {
  BatchReport report;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return in_flight_ == 0; });
    outcomes_.clear();
    for (const auto& [key, pending] : jobs_) {
      outcomes_.emplace(key, pending->outcome);
    }
    report.memo_hits = memo_hits_;
    report.restored_cells = restored_cells_;
    report.interrupted = interrupted_;
  }

  report.distinct_jobs = outcomes_.size();
  for (const auto& [key, out] : outcomes_) {
    report.executed_runs += out.runs.size();
    if (out.cell_status != "ok") ++report.faulted_cells;
    if (out.cell_status == "cancelled") {
      // A graceful drain abandoned this cell before it executed; that is
      // an interruption (BatchReport::interrupted, run_status in the
      // JSON), not a correctness violation of anything that ran.
      ++report.cancelled_cells;
      continue;
    }
    if (!out.error.empty()) {
      report.violations.push_back(
          oracle::Violation{key, "run.exception", out.error});
    }
  }

  if (opts_.oracle) {
    // Per-run invariants + determinism between repeated executions.
    for (const auto& [key, out] : outcomes_) {
      if (out.runs.empty()) continue;
      auto v = oracle::CheckInvariants(out.result(), key);
      report.violations.insert(report.violations.end(), v.begin(), v.end());
      for (std::size_t i = 1; i < out.runs.size(); ++i) {
        auto d = oracle::CheckDeterminism(out.runs[0], out.runs[i], key);
        report.violations.insert(report.violations.end(), d.begin(), d.end());
      }
    }
    // Output equivalence across modes of the same workload. The reference
    // is a scalar run when the batch contains one (the paper's baseline);
    // otherwise any member, which still enforces within-group agreement.
    std::map<std::string, std::vector<const JobOutcome*>> groups;
    for (const auto& [key, out] : outcomes_) {
      if (!out.runs.empty()) groups[out.workload_key].push_back(&out);
    }
    for (const auto& [wkey, members] : groups) {
      const JobOutcome* ref = members.front();
      for (const JobOutcome* m : members) {
        if (m->mode == RunMode::kScalar) {
          ref = m;
          break;
        }
      }
      for (const JobOutcome* m : members) {
        if (m == ref) continue;
        auto v = oracle::CheckEquivalence(ref->result(), m->result(), m->key);
        report.violations.insert(report.violations.end(), v.begin(), v.end());
      }
    }
  }

  report.wall_ms = ElapsedMs(start_);
  return report;
}

// ---------------------------------------------------------------------------
// JSON emission.

namespace {

class JsonWriter {
 public:
  explicit JsonWriter(std::FILE* f) : f_(f) {}

  void Raw(const char* s) { std::fputs(s, f_); }
  void Key(const char* name) {
    Comma();
    std::fprintf(f_, "\"%s\": ", name);
    fresh_ = true;
  }
  void Str(const char* name, const std::string& value) {
    Key(name);
    std::fputc('"', f_);
    for (const char c : value) {
      if (c == '"' || c == '\\') std::fputc('\\', f_);
      if (static_cast<unsigned char>(c) < 0x20) {
        std::fprintf(f_, "\\u%04x", c);
      } else {
        std::fputc(c, f_);
      }
    }
    std::fputc('"', f_);
    fresh_ = false;
  }
  void U64(const char* name, std::uint64_t v) {
    Key(name);
    std::fprintf(f_, "%" PRIu64, v);
    fresh_ = false;
  }
  void Dbl(const char* name, double v) {
    Key(name);
    std::fprintf(f_, "%.6g", v);
    fresh_ = false;
  }
  void Bool(const char* name, bool v) {
    Key(name);
    std::fputs(v ? "true" : "false", f_);
    fresh_ = false;
  }
  void Open(const char* name, char bracket) {
    if (name != nullptr) {
      Key(name);
    } else {
      Comma();
    }
    std::fputc(bracket, f_);
    fresh_ = true;
  }
  void Close(char bracket) {
    std::fputc(bracket, f_);
    fresh_ = false;
  }

 private:
  void Comma() {
    if (!fresh_) std::fputs(", ", f_);
    fresh_ = false;
  }

  std::FILE* f_;
  bool fresh_ = true;
};

}  // namespace

bool WriteBenchJson(const std::string& path, const std::string& bench_name,
                    const BatchRunner& runner, const BatchReport& report,
                    const BenchJsonExtras* extras) {
  // Write-then-rename so a reader (or a kill signal) can never observe a
  // half-written report at `path`.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  JsonWriter w(f);

  // Scalar baseline cycles per workload group, for the speedup column.
  std::map<std::string, std::uint64_t> baseline;
  for (const auto& [key, out] : runner.outcomes()) {
    if (out.mode == RunMode::kScalar && !out.runs.empty()) {
      baseline.emplace(out.workload_key, out.result().cycles);
    }
  }

  w.Open(nullptr, '{');
  w.Str("schema", "dsa-bench-json/6");
  w.Str("bench", bench_name);
  w.U64("jobs", static_cast<std::uint64_t>(runner.options().jobs));
  w.U64("repeats", static_cast<std::uint64_t>(runner.options().repeats));
  w.Dbl("wall_ms", report.wall_ms);
  w.U64("distinct_jobs", report.distinct_jobs);
  w.U64("executed_runs", report.executed_runs);
  w.U64("faulted_cells", report.faulted_cells);
  w.U64("memo_hits", report.memo_hits);
  w.U64("restored_cells", report.restored_cells);
  w.U64("cancelled_cells", report.cancelled_cells);
  w.Str("run_status", extras != nullptr ? extras->run_status
                                        : (report.interrupted ? "interrupted"
                                                              : "complete"));
  if (extras != nullptr && !extras->journal_path.empty()) {
    w.Open("journal", '{');
    w.Str("path", extras->journal_path);
    w.U64("restored", extras->journal_restored);
    w.U64("appended", extras->journal_appended);
    w.U64("write_failures", extras->journal_write_failures);
    w.U64("fsync_failures", extras->journal_fsync_failures);
    if (extras->journal_write_failures > 0 ||
        extras->journal_fsync_failures > 0) {
      // Typed degradation instead of silent success: the journal hit the
      // host's disk limits and some records may not be durable.
      w.Str("warning",
            "[io-fault] " +
                std::to_string(extras->journal_write_failures) +
                " write failure(s), " +
                std::to_string(extras->journal_fsync_failures) +
                " fsync failure(s): journal durability not guaranteed");
    }
    w.Close('}');
  }
  if (extras != nullptr && extras->breaker_enabled) {
    w.Open("breaker", '{');
    w.Bool("enabled", true);
    w.Open("workloads", '[');
    for (const BreakerCensusEntry& b : extras->breaker) {
      w.Open(nullptr, '{');
      w.Str("workload", b.workload);
      w.Str("state", b.state);
      w.U64("failures", b.failures);
      w.U64("trips", b.trips);
      w.U64("skipped", b.skipped);
      w.Close('}');
    }
    w.Close(']');
    w.Close('}');
  }

  w.Open("oracle", '{');
  w.Bool("enabled", runner.options().oracle);
  w.Bool("ok", report.ok());
  w.Open("violations", '[');
  for (const oracle::Violation& v : report.violations) {
    w.Open(nullptr, '{');
    w.Str("job", v.job);
    w.Str("check", v.check);
    w.Str("detail", v.detail);
    w.Close('}');
  }
  w.Close(']');
  w.Close('}');

  w.Open("results", '[');
  for (const auto& [key, out] : runner.outcomes()) {
    if (out.runs.empty()) {
      // A poisoned cell still shows up — minimal payload, no stats.
      w.Raw("\n  ");
      w.Open(nullptr, '{');
      w.Str("job", key);
      w.Str("workload", out.workload_key);
      w.Str("mode", ModeSlug(out.mode));
      w.Str("config", out.config_tag);
      w.Str("cell_status", out.cell_status);
      w.U64("attempts", out.attempts);
      w.U64("runs", 0);
      if (!out.error.empty()) w.Str("error", out.error);
      w.Close('}');
      continue;
    }
    const RunResult& r = out.result();
    w.Raw("\n  ");
    w.Open(nullptr, '{');
    w.Str("job", key);
    w.Str("workload", r.workload);
    w.Str("mode", ModeSlug(out.mode));
    w.Str("config", out.config_tag);
    w.Str("cell_status", out.cell_status);
    w.U64("attempts", out.attempts);
    if (out.restored) w.Bool("restored", true);
    if (!out.error.empty()) w.Str("error", out.error);
    w.U64("cycles", r.cycles);
    const auto base = baseline.find(out.workload_key);
    if (base != baseline.end() && r.cycles > 0) {
      w.Dbl("speedup_vs_scalar",
            static_cast<double>(base->second) / static_cast<double>(r.cycles));
    }
    w.Bool("output_ok", r.output_ok);
    char digest[32];
    std::snprintf(digest, sizeof(digest), "0x%016" PRIx64, r.output_digest);
    w.Str("output_digest", digest);
    w.Dbl("wall_ms", out.wall_ms);
    w.U64("runs", static_cast<std::uint64_t>(out.runs.size()));

    // Host simulation throughput of the canonical run (schema /2;
    // `dispatch` — the interpreter core that actually ran — added in /5;
    // `phases` — where the host milliseconds went — added in /6).
    w.Open("host", '{');
    w.Dbl("mips", r.host_mips());
    w.Dbl("wall_ms", r.host_wall_ms);
    w.U64("steps", r.host_steps);
    w.Str("dispatch", std::string(cpu::ToString(r.host_dispatch)));
    w.Open("phases", '{');
    w.Dbl("dispatch_ms", r.host_phases.dispatch_ms);
    w.Dbl("observe_ms", r.host_phases.observe_ms);
    w.Dbl("mem_ms", r.host_phases.mem_ms);
    w.Dbl("neon_ms", r.host_phases.neon_ms);
    w.Close('}');
    w.Close('}');

    // Streaming throughput and generator provenance (schema /5), present
    // only on workloads that declare them.
    if (r.stream_bytes > 0) {
      w.Open("stream", '{');
      w.U64("bytes", r.stream_bytes);
      w.Dbl("gbps", r.stream_gbps());
      w.Close('}');
    }
    if (r.gen.has_value()) {
      w.Open("gen", '{');
      w.U64("seed", r.gen->seed);
      w.Str("class", r.gen->loop_class);
      w.U64("count", r.gen->count);
      w.Close('}');
    }

    w.Open("cpu", '{');
    w.U64("retired_total", r.cpu.retired_total);
    w.U64("retired_scalar", r.cpu.retired_scalar);
    w.U64("retired_vector", r.cpu.retired_vector);
    w.U64("branches", r.cpu.branches);
    w.U64("mispredicts", r.cpu.mispredicts);
    w.U64("mem_stall_cycles", r.cpu.mem_stall_cycles);
    w.U64("other_stall_cycles", r.cpu.other_stall_cycles);
    w.U64("neon_busy_cycles", r.cpu.neon_busy_cycles);
    w.U64("dsa_overhead_cycles", r.cpu.dsa_overhead_cycles);
    w.Close('}');

    w.Open("l1", '{');
    w.U64("hits", r.l1.hits);
    w.U64("misses", r.l1.misses);
    w.Close('}');
    w.Open("l2", '{');
    w.U64("hits", r.l2.hits);
    w.U64("misses", r.l2.misses);
    w.Close('}');
    w.U64("dram_accesses", r.dram_accesses);

    w.Open("energy", '{');
    w.Dbl("core_dynamic", r.energy.core_dynamic);
    w.Dbl("core_static", r.energy.core_static);
    w.Dbl("neon_dynamic", r.energy.neon_dynamic);
    w.Dbl("neon_static", r.energy.neon_static);
    w.Dbl("cache_dram", r.energy.cache_dram);
    w.Dbl("dsa_dynamic", r.energy.dsa_dynamic);
    w.Dbl("dsa_static", r.energy.dsa_static);
    w.Dbl("total", r.energy.total());
    w.Close('}');

    if (r.trace != nullptr) {
      w.Open("trace", '{');
      w.U64("emitted", r.trace->emitted);
      w.U64("dropped", r.trace->dropped);
      w.Close('}');
    }

    if (r.faults.has_value()) {
      const fault::FaultReport& fr = *r.faults;
      w.Open("faults", '{');
      w.Str("plan", fault::FormatFaultPlan(fr.plan));
      w.U64("seed", fr.plan.seed);
      w.U64("total_fired", fr.total_fired());
      w.Open("opportunities", '{');
      for (int k = 0; k < fault::kNumFaultKinds; ++k) {
        w.U64(std::string(ToString(static_cast<fault::FaultKind>(k))).c_str(),
              fr.opportunities[k]);
      }
      w.Close('}');
      w.Open("fired", '{');
      for (int k = 0; k < fault::kNumFaultKinds; ++k) {
        w.U64(std::string(ToString(static_cast<fault::FaultKind>(k))).c_str(),
              fr.fired[k]);
      }
      w.Close('}');
      w.Close('}');
    }

    if (r.dsa.has_value()) {
      const engine::DsaStats& d = *r.dsa;
      w.Dbl("detection_latency_pct", r.detection_latency_pct());
      w.Open("dsa", '{');
      w.U64("takeovers", d.takeovers);
      w.U64("cache_hit_takeovers", d.cache_hit_takeovers);
      w.U64("vectorized_iterations", d.vectorized_iterations);
      w.U64("scalar_covered_instrs", d.scalar_covered_instrs);
      w.U64("vector_instrs_issued", d.vector_instrs_issued);
      w.U64("analysis_cycles", d.analysis_cycles);
      w.U64("fusions_formed", d.fusions_formed);
      w.U64("fusion_demotions", d.fusion_demotions);
      w.U64("sentinel_respeculations", d.sentinel_respeculations);
      w.U64("rollbacks", d.rollbacks);
      w.U64("blacklisted_loops", d.blacklisted_loops);
      w.U64("cache_corruptions_detected", d.cache_corruptions_detected);
      w.Open("stage_activations", '{');
      for (int s = 0; s < engine::kNumStages; ++s) {
        w.U64(std::string(ToString(static_cast<engine::Stage>(s))).c_str(),
              d.stage_activations[s]);
      }
      w.Close('}');
      w.Open("loops_by_class", '{');
      for (const auto& [cls, n] : d.loops_by_class) {
        w.U64(std::string(engine::ToString(cls)).c_str(), n);
      }
      w.Close('}');
      w.Close('}');
    }
    w.Close('}');
  }
  w.Raw("\n");
  w.Close(']');
  w.Close('}');
  w.Raw("\n");
  if (std::fclose(f) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace dsa::sim
