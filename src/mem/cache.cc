#include "mem/cache.h"

#include <stdexcept>

namespace dsa::mem {

namespace {
bool IsPow2(std::uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
  if (!IsPow2(cfg.line_bytes) || cfg.ways == 0 || cfg.size_bytes == 0) {
    throw std::invalid_argument("bad cache config");
  }
  if (cfg.size_bytes % (cfg.line_bytes * cfg.ways) != 0) {
    throw std::invalid_argument("cache size not divisible by way size");
  }
  num_sets_ = cfg.size_bytes / (cfg.line_bytes * cfg.ways);
  if (!IsPow2(num_sets_)) {
    throw std::invalid_argument("number of sets must be a power of two");
  }
  ways_.resize(static_cast<std::size_t>(num_sets_) * cfg.ways);
}

std::uint32_t Cache::SetIndex(std::uint32_t addr) const {
  return (addr / cfg_.line_bytes) & (num_sets_ - 1);
}

std::uint32_t Cache::Tag(std::uint32_t addr) const {
  return (addr / cfg_.line_bytes) / num_sets_;
}

bool Cache::Access(std::uint32_t addr) {
  ++tick_;
  const std::uint32_t set = SetIndex(addr);
  const std::uint32_t tag = Tag(addr);
  Way* base = &ways_[static_cast<std::size_t>(set) * cfg_.ways];
  Way* lru = base;
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.last_use = tick_;
      ++stats_.hits;
      return true;
    }
    if (!way.valid) {
      lru = &way;  // prefer invalid ways for fill
    } else if (lru->valid && way.last_use < lru->last_use) {
      lru = &way;
    }
  }
  lru->valid = true;
  lru->tag = tag;
  lru->last_use = tick_;
  ++stats_.misses;
  return false;
}

bool Cache::Probe(std::uint32_t addr) const {
  const std::uint32_t set = SetIndex(addr);
  const std::uint32_t tag = Tag(addr);
  const Way* base = &ways_[static_cast<std::size_t>(set) * cfg_.ways];
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

void Cache::Flush() {
  for (Way& w : ways_) w = Way{};
  tick_ = 0;
}

std::uint32_t Hierarchy::Access(std::uint32_t addr) {
  std::uint32_t latency = cfg_.l1.hit_latency;
  if (l1_.Access(addr)) return latency;
  if (cfg_.next_line_prefetch) {
    // Pull the next line toward the core in the shadow of this miss; the
    // prefetch itself is off the critical path (stats still count it).
    const std::uint32_t next = addr + cfg_.l1.line_bytes;
    if (!l1_.Access(next) && !l2_.Access(next)) ++dram_accesses_;
  }
  latency += cfg_.l2.hit_latency;
  if (l2_.Access(addr)) return latency;
  ++dram_accesses_;
  return latency + cfg_.dram_latency;
}

std::uint32_t Hierarchy::AccessRange(std::uint32_t addr, std::uint32_t bytes) {
  const std::uint32_t line = cfg_.l1.line_bytes;
  const std::uint32_t first = addr / line;
  const std::uint32_t last = (addr + bytes - 1) / line;
  std::uint32_t latency = 0;
  for (std::uint32_t l = first; l <= last; ++l) {
    latency += Access(l * line);
  }
  return latency;
}

}  // namespace dsa::mem
