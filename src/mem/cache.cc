#include "mem/cache.h"

#include <stdexcept>

namespace dsa::mem {

namespace {
bool IsPow2(std::uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
  if (!IsPow2(cfg.line_bytes) || cfg.ways == 0 || cfg.size_bytes == 0) {
    throw std::invalid_argument("bad cache config");
  }
  if (cfg.size_bytes % (cfg.line_bytes * cfg.ways) != 0) {
    throw std::invalid_argument("cache size not divisible by way size");
  }
  num_sets_ = cfg.size_bytes / (cfg.line_bytes * cfg.ways);
  if (!IsPow2(num_sets_)) {
    throw std::invalid_argument("number of sets must be a power of two");
  }
  ways_.resize(static_cast<std::size_t>(num_sets_) * cfg.ways);
  while ((1u << line_shift_) < cfg.line_bytes) ++line_shift_;
  while ((1u << set_shift_) < num_sets_) ++set_shift_;
  res_.resize(kResidencyEntries);
}

bool Cache::AccessWalk(std::uint32_t addr) {
  if (!time_walks_) return AccessWalkImpl(addr);
  const std::uint64_t t0 = HostTsc();
  const bool hit = AccessWalkImpl(addr);
  walk_tsc_ += HostTsc() - t0;
  return hit;
}

bool Cache::AccessWalkImpl(std::uint32_t addr) {
  ++tick_;
  const std::uint32_t set = SetIndex(addr);
  const std::uint32_t tag = Tag(addr);
  Way* base = &ways_[static_cast<std::size_t>(set) * cfg_.ways];
  // Victim choice: the first invalid way wins outright; only when the set
  // is full does true LRU among the valid ways decide.
  Way* victim = nullptr;
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.last_use = tick_;
      ++stats_.hits;
      const std::uint64_t line = addr >> line_shift_;
      res_[line & (kResidencyEntries - 1)] = {line, &way};
      return true;
    }
    if (!way.valid) {
      if (victim == nullptr || victim->valid) victim = &way;
    } else if (victim == nullptr ||
               (victim->valid && way.last_use < victim->last_use)) {
      victim = &way;
    }
  }
  // The fill evicts whatever line the victim way held: drop the residency
  // entry still pointing at it before it could serve a stale hit. The old
  // line reconstructs from the victim's tag+set, and at most one entry can
  // map it (a way holds one line at a time), so this is O(1) — no scan.
  if (victim->valid) {
    const std::uint64_t old_line =
        (static_cast<std::uint64_t>(victim->tag) << set_shift_) | set;
    Resident& old = res_[old_line & (kResidencyEntries - 1)];
    if (old.line == old_line) old.line = kNoLine;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->last_use = tick_;
  ++stats_.misses;
  const std::uint64_t line = addr >> line_shift_;
  res_[line & (kResidencyEntries - 1)] = {line, victim};
  return false;
}

bool Cache::Probe(std::uint32_t addr) const {
  const std::uint32_t set = SetIndex(addr);
  const std::uint32_t tag = Tag(addr);
  const Way* base = &ways_[static_cast<std::size_t>(set) * cfg_.ways];
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

int Cache::WayOf(std::uint32_t addr) const {
  const std::uint32_t set = SetIndex(addr);
  const std::uint32_t tag = Tag(addr);
  const Way* base = &ways_[static_cast<std::size_t>(set) * cfg_.ways];
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) return static_cast<int>(w);
  }
  return -1;
}

void Cache::Flush() {
  for (Way& w : ways_) w = Way{};
  tick_ = 0;
  for (Resident& r : res_) r = Resident{};
}

std::uint32_t Hierarchy::AccessMiss(std::uint32_t addr) {
  std::uint32_t latency = cfg_.l1.hit_latency;
  if (cfg_.next_line_prefetch) {
    // Pull the next line toward the core in the shadow of this miss; the
    // prefetch itself is off the critical path (stats still count it).
    const std::uint32_t next = addr + cfg_.l1.line_bytes;
    if (!l1_.Access(next) && !l2_.Access(next)) ++dram_accesses_;
  }
  latency += cfg_.l2.hit_latency;
  if (l2_.Access(addr)) return latency;
  ++dram_accesses_;
  return latency + cfg_.dram_latency;
}

std::uint32_t Hierarchy::AccessRangeWalk(std::uint32_t addr,
                                         std::uint32_t bytes) {
  const std::uint32_t line = cfg_.l1.line_bytes;
  const std::uint32_t first = addr / line;
  const std::uint32_t last = (addr + bytes - 1) / line;
  std::uint32_t latency = 0;
  for (std::uint32_t l = first; l <= last; ++l) {
    latency += Access(l * line);
  }
  return latency;
}

}  // namespace dsa::mem
