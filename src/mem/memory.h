// Flat byte-addressable main memory used by the functional simulator.
// Little-endian accessors for 8/16/32-bit integers and float32.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace dsa::mem {

class Memory {
 public:
  explicit Memory(std::size_t size_bytes) : bytes_(size_bytes, 0) {}

  [[nodiscard]] std::size_t size() const { return bytes_.size(); }

  [[nodiscard]] std::uint8_t Read8(std::uint32_t addr) const {
    CheckRange(addr, 1);
    return bytes_[addr];
  }
  [[nodiscard]] std::uint16_t Read16(std::uint32_t addr) const {
    CheckRange(addr, 2);
    std::uint16_t v;
    std::memcpy(&v, &bytes_[addr], 2);
    return v;
  }
  [[nodiscard]] std::uint32_t Read32(std::uint32_t addr) const {
    CheckRange(addr, 4);
    std::uint32_t v;
    std::memcpy(&v, &bytes_[addr], 4);
    return v;
  }
  [[nodiscard]] float ReadF32(std::uint32_t addr) const {
    const std::uint32_t raw = Read32(addr);
    float f;
    std::memcpy(&f, &raw, 4);
    return f;
  }

  void Write8(std::uint32_t addr, std::uint8_t v) {
    CheckRange(addr, 1);
    bytes_[addr] = v;
  }
  void Write16(std::uint32_t addr, std::uint16_t v) {
    CheckRange(addr, 2);
    std::memcpy(&bytes_[addr], &v, 2);
  }
  void Write32(std::uint32_t addr, std::uint32_t v) {
    CheckRange(addr, 4);
    std::memcpy(&bytes_[addr], &v, 4);
  }
  void WriteF32(std::uint32_t addr, float f) {
    std::uint32_t raw;
    std::memcpy(&raw, &f, 4);
    Write32(addr, raw);
  }

  void ReadBlock(std::uint32_t addr, void* dst, std::size_t n) const {
    if (n == 0) return;  // empty buffers may pass a null pointer
    CheckRange(addr, n);
    std::memcpy(dst, &bytes_[addr], n);
  }
  void WriteBlock(std::uint32_t addr, const void* src, std::size_t n) {
    if (n == 0) return;  // empty buffers may pass a null pointer
    CheckRange(addr, n);
    std::memcpy(&bytes_[addr], src, n);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& raw() const { return bytes_; }

  // Direct byte-store access for the interpreter's hoisted fast path (the
  // base pointer is loop-invariant; accessor calls re-load it every time
  // because interpreter stores may alias the vector's bookkeeping).
  [[nodiscard]] std::uint8_t* data() { return bytes_.data(); }

  // Out-of-line range failure for callers that do their own bounds check
  // against a hoisted size; throws exactly what the accessors throw.
  [[noreturn]] void FailRange(std::uint32_t addr, std::size_t n) const {
    ThrowOutOfRange(addr, n);
  }

 private:
  // Hot path is the single size_t comparison; the `addr + n - 1` probe the
  // old idiom used would compute its address in 32 bits on an ILP32 target
  // and wrap before widening. The throw lives out of line so accessors
  // inline to a compare-and-branch.
  void CheckRange(std::uint32_t addr, std::size_t n) const {
    if (static_cast<std::size_t>(addr) + n > bytes_.size()) {
      ThrowOutOfRange(addr, n);
    }
  }

  [[noreturn]] void ThrowOutOfRange(std::uint32_t addr, std::size_t n) const {
    char msg[96];
    std::snprintf(msg, sizeof(msg),
                  "memory access out of range: addr=0x%08x size=%zu "
                  "(memory is %zu bytes)",
                  addr, n, bytes_.size());
    throw std::out_of_range(msg);
  }

  std::vector<std::uint8_t> bytes_;
};

}  // namespace dsa::mem
