// Flat byte-addressable main memory used by the functional simulator.
// Little-endian accessors for 8/16/32-bit integers and float32.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

namespace dsa::mem {

class Memory {
 public:
  explicit Memory(std::size_t size_bytes) : bytes_(size_bytes, 0) {}

  [[nodiscard]] std::size_t size() const { return bytes_.size(); }

  [[nodiscard]] std::uint8_t Read8(std::uint32_t addr) const {
    return bytes_.at(addr);
  }
  [[nodiscard]] std::uint16_t Read16(std::uint32_t addr) const {
    CheckRange(addr, 2);
    std::uint16_t v;
    std::memcpy(&v, &bytes_[addr], 2);
    return v;
  }
  [[nodiscard]] std::uint32_t Read32(std::uint32_t addr) const {
    CheckRange(addr, 4);
    std::uint32_t v;
    std::memcpy(&v, &bytes_[addr], 4);
    return v;
  }
  [[nodiscard]] float ReadF32(std::uint32_t addr) const {
    const std::uint32_t raw = Read32(addr);
    float f;
    std::memcpy(&f, &raw, 4);
    return f;
  }

  void Write8(std::uint32_t addr, std::uint8_t v) { bytes_.at(addr) = v; }
  void Write16(std::uint32_t addr, std::uint16_t v) {
    CheckRange(addr, 2);
    std::memcpy(&bytes_[addr], &v, 2);
  }
  void Write32(std::uint32_t addr, std::uint32_t v) {
    CheckRange(addr, 4);
    std::memcpy(&bytes_[addr], &v, 4);
  }
  void WriteF32(std::uint32_t addr, float f) {
    std::uint32_t raw;
    std::memcpy(&raw, &f, 4);
    Write32(addr, raw);
  }

  void ReadBlock(std::uint32_t addr, void* dst, std::size_t n) const {
    CheckRange(addr, n);
    std::memcpy(dst, &bytes_[addr], n);
  }
  void WriteBlock(std::uint32_t addr, const void* src, std::size_t n) {
    CheckRange(addr, n);
    std::memcpy(&bytes_[addr], src, n);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& raw() const { return bytes_; }

 private:
  void CheckRange(std::uint32_t addr, std::size_t n) const {
    if (static_cast<std::size_t>(addr) + n > bytes_.size()) {
      bytes_.at(addr + n - 1);  // throws std::out_of_range
    }
  }

  std::vector<std::uint8_t> bytes_;
};

}  // namespace dsa::mem
