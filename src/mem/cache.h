// Set-associative cache timing model with true-LRU replacement, matching the
// paper's Table 4 setup (64 kB L1, 512 kB L2, LRU). The model is
// timing-only: data always lives in the flat Memory; the cache tracks which
// lines would be resident and charges hit/miss latencies.
#pragma once

#include <cstdint>
#include <vector>

namespace dsa::mem {

struct CacheConfig {
  std::uint32_t size_bytes = 64 * 1024;
  std::uint32_t line_bytes = 64;
  std::uint32_t ways = 4;
  std::uint32_t hit_latency = 1;  // cycles
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  [[nodiscard]] std::uint64_t accesses() const { return hits + misses; }
  [[nodiscard]] double miss_rate() const {
    return accesses() == 0 ? 0.0
                           : static_cast<double>(misses) / accesses();
  }
};

class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  // Touches the line containing addr. Returns true on hit. On miss the line
  // is filled, evicting the LRU way of its set.
  bool Access(std::uint32_t addr);

  // True if the line containing addr is currently resident (no LRU update).
  [[nodiscard]] bool Probe(std::uint32_t addr) const;

  void Flush();

  [[nodiscard]] const CacheConfig& config() const { return cfg_; }
  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] std::uint32_t num_sets() const { return num_sets_; }

 private:
  struct Way {
    std::uint32_t tag = 0;
    bool valid = false;
    std::uint64_t last_use = 0;  // for true LRU
  };

  [[nodiscard]] std::uint32_t SetIndex(std::uint32_t addr) const;
  [[nodiscard]] std::uint32_t Tag(std::uint32_t addr) const;

  CacheConfig cfg_;
  std::uint32_t num_sets_;
  std::vector<Way> ways_;  // num_sets_ * cfg_.ways, row-major by set
  CacheStats stats_;
  std::uint64_t tick_ = 0;
};

// Two-level hierarchy: L1 -> L2 -> DRAM. Access() returns the latency in
// cycles for an access at addr and updates both levels.
class Hierarchy {
 public:
  struct Config {
    CacheConfig l1{64 * 1024, 64, 4, 1};
    CacheConfig l2{512 * 1024, 64, 8, 8};
    std::uint32_t dram_latency = 60;
    // Next-line stream prefetch into L1 on a miss (embedded cores commonly
    // ship one); keeps streaming kernels from being purely DRAM-bound.
    bool next_line_prefetch = true;
  };

  explicit Hierarchy(const Config& cfg)
      : cfg_(cfg), l1_(cfg.l1), l2_(cfg.l2) {}

  std::uint32_t Access(std::uint32_t addr);

  // A 16-byte vector access may straddle two lines; charge both.
  std::uint32_t AccessRange(std::uint32_t addr, std::uint32_t bytes);

  void Flush() {
    l1_.Flush();
    l2_.Flush();
  }

  [[nodiscard]] const Cache& l1() const { return l1_; }
  [[nodiscard]] const Cache& l2() const { return l2_; }
  [[nodiscard]] std::uint64_t dram_accesses() const { return dram_accesses_; }

 private:
  Config cfg_;
  Cache l1_;
  Cache l2_;
  std::uint64_t dram_accesses_ = 0;
};

}  // namespace dsa::mem
