// Set-associative cache timing model with true-LRU replacement, matching the
// paper's Table 4 setup (64 kB L1, 512 kB L2, LRU). The model is
// timing-only: data always lives in the flat Memory; the cache tracks which
// lines would be resident and charges hit/miss latencies.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dsa::mem {

struct CacheConfig {
  std::uint32_t size_bytes = 64 * 1024;
  std::uint32_t line_bytes = 64;
  std::uint32_t ways = 4;
  std::uint32_t hit_latency = 1;  // cycles
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  [[nodiscard]] std::uint64_t accesses() const { return hits + misses; }
  [[nodiscard]] double miss_rate() const {
    return accesses() == 0 ? 0.0
                           : static_cast<double>(misses) / accesses();
  }
};

class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  // Touches the line containing addr. Returns true on hit. On miss the line
  // is filled, evicting the first invalid way of its set, else the LRU way.
  //
  // A repeated access to a recently used line takes the inline line-buffer
  // shortcut instead of the set-associative walk; the side effects (tick
  // advance, LRU stamp, hit count) are identical, so stats and residency
  // cannot diverge. The buffer is direct-mapped on the low line bits so
  // alternating streams (load A[i] / store B[i]) keep hitting it.
  // set_reference_path(true) disables the shortcut.
  bool Access(std::uint32_t addr) {
    if (fast_path_) {
      const std::uint64_t line = addr >> line_shift_;
      const std::size_t slot = line & (kLineBuf - 1);
      if (buf_line_[slot] == line) {
        ++tick_;
        buf_way_[slot]->last_use = tick_;
        ++stats_.hits;
        return true;
      }
    }
    return AccessWalk(addr);
  }

  // True if the line containing addr is currently resident (no LRU update).
  [[nodiscard]] bool Probe(std::uint32_t addr) const;

  // Physical way currently holding addr's line, -1 if not resident. Test
  // introspection for fill-order/victim-choice checks; no LRU update.
  [[nodiscard]] int WayOf(std::uint32_t addr) const;

  void Flush();

  // Forces the pre-optimization full set walk on every access.
  void set_reference_path(bool ref) { fast_path_ = !ref; }

  [[nodiscard]] const CacheConfig& config() const { return cfg_; }
  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] std::uint32_t num_sets() const { return num_sets_; }

 private:
  struct Way {
    std::uint32_t tag = 0;
    bool valid = false;
    std::uint64_t last_use = 0;  // for true LRU
  };

  bool AccessWalk(std::uint32_t addr);

  // line_bytes and num_sets_ are validated powers of two, so index/tag
  // extraction is shift/mask work instead of two divisions.
  [[nodiscard]] std::uint32_t SetIndex(std::uint32_t addr) const {
    return (addr >> line_shift_) & (num_sets_ - 1);
  }
  [[nodiscard]] std::uint32_t Tag(std::uint32_t addr) const {
    return (addr >> line_shift_) >> set_shift_;
  }

  CacheConfig cfg_;
  std::uint32_t num_sets_;
  std::uint32_t line_shift_ = 0;  // log2(line_bytes)
  std::uint32_t set_shift_ = 0;   // log2(num_sets_)
  std::vector<Way> ways_;  // num_sets_ * cfg_.ways, row-major by set
  CacheStats stats_;
  std::uint64_t tick_ = 0;
  // Line-buffer shortcut state: buf_line_[slot] == line implies buf_way_
  // holds that resident line (ways_ never reallocates, so the pointer stays
  // valid until the line is evicted, which invalidates the slot). Empty
  // slots hold kNoLine, which no 32-bit address can shift into.
  static constexpr std::size_t kLineBuf = 8;
  static constexpr std::uint64_t kNoLine = ~std::uint64_t{0};
  std::array<std::uint64_t, kLineBuf> buf_line_;
  std::array<Way*, kLineBuf> buf_way_{};
  bool fast_path_ = true;
};

// Two-level hierarchy: L1 -> L2 -> DRAM. Access() returns the latency in
// cycles for an access at addr and updates both levels.
class Hierarchy {
 public:
  struct Config {
    CacheConfig l1{64 * 1024, 64, 4, 1};
    CacheConfig l2{512 * 1024, 64, 8, 8};
    std::uint32_t dram_latency = 60;
    // Next-line stream prefetch into L1 on a miss (embedded cores commonly
    // ship one); keeps streaming kernels from being purely DRAM-bound.
    bool next_line_prefetch = true;
  };

  explicit Hierarchy(const Config& cfg)
      : cfg_(cfg), l1_(cfg.l1), l2_(cfg.l2),
        line_mask_(cfg.l1.line_bytes - 1) {}

  std::uint32_t Access(std::uint32_t addr) {
    if (l1_.Access(addr)) return cfg_.l1.hit_latency;
    return AccessMiss(addr);
  }

  // A 16-byte vector access may straddle two lines; charge both. Accesses
  // contained in one L1 line (the overwhelmingly common case) skip the
  // line-walking loop.
  std::uint32_t AccessRange(std::uint32_t addr, std::uint32_t bytes) {
    if (fast_path_ && (addr & line_mask_) + bytes <= line_mask_ + 1) {
      return Access(addr & ~line_mask_);
    }
    return AccessRangeWalk(addr, bytes);
  }

  void Flush() {
    l1_.Flush();
    l2_.Flush();
  }

  // Forces the pre-optimization paths in both cache levels and in
  // AccessRange; simulated latencies and stats are identical either way.
  void set_reference_path(bool ref) {
    fast_path_ = !ref;
    l1_.set_reference_path(ref);
    l2_.set_reference_path(ref);
  }

  [[nodiscard]] const Cache& l1() const { return l1_; }
  [[nodiscard]] const Cache& l2() const { return l2_; }
  [[nodiscard]] std::uint64_t dram_accesses() const { return dram_accesses_; }

 private:
  std::uint32_t AccessMiss(std::uint32_t addr);
  std::uint32_t AccessRangeWalk(std::uint32_t addr, std::uint32_t bytes);

  Config cfg_;
  Cache l1_;
  Cache l2_;
  std::uint32_t line_mask_;
  bool fast_path_ = true;
  std::uint64_t dram_accesses_ = 0;
};

}  // namespace dsa::mem
