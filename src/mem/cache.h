// Set-associative cache timing model with true-LRU replacement, matching the
// paper's Table 4 setup (64 kB L1, 512 kB L2, LRU). The model is
// timing-only: data always lives in the flat Memory; the cache tracks which
// lines would be resident and charges hit/miss latencies.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dsa::mem {

// Host-side cycle stamp for the phase stopwatch (docs/PERF.md): raw rdtsc
// on x86 (a couple of ns, monotonic enough for deltas), steady_clock ticks
// elsewhere. Units are arbitrary — the sim layer converts accumulated
// deltas to milliseconds by calibrating one tsc span against the run's
// wall clock, so no frequency query is needed.
inline std::uint64_t HostTsc() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_ia32_rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

struct CacheConfig {
  std::uint32_t size_bytes = 64 * 1024;
  std::uint32_t line_bytes = 64;
  std::uint32_t ways = 4;
  std::uint32_t hit_latency = 1;  // cycles
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  [[nodiscard]] std::uint64_t accesses() const { return hits + misses; }
  [[nodiscard]] double miss_rate() const {
    return accesses() == 0 ? 0.0
                           : static_cast<double>(misses) / accesses();
  }
};

class Cache {
 public:
  struct Way {
    std::uint32_t tag = 0;
    bool valid = false;
    std::uint64_t last_use = 0;  // for true LRU
  };

  explicit Cache(const CacheConfig& cfg);

  // Touches the line containing addr. Returns true on hit. On miss the line
  // is filled, evicting the first invalid way of its set, else the LRU way.
  //
  // A repeated access to a resident line takes the inline way-predicted
  // shortcut through the residency map instead of the set-associative
  // walk; the side effects (tick advance, LRU stamp, hit count) are
  // identical, so stats and residency cannot diverge.
  // set_reference_path(true) disables the shortcut.
  bool Access(std::uint32_t addr) {
    if (fast_path_) {
      const std::uint64_t line = addr >> line_shift_;
      const Resident& r = res_[line & (kResidencyEntries - 1)];
      if (r.line == line) {
        ++tick_;
        r.way->last_use = tick_;
        ++stats_.hits;
        return true;
      }
    }
    return AccessWalk(addr);
  }

  // Way-predicted run interface (the threaded core's batched memory fast
  // path, docs/PERF.md). ResidentWay is a pure residency probe — no stats,
  // no LRU stamp — returning the way holding `line` (addr >> line_shift())
  // when the residency map knows it, else nullptr (which also covers the
  // reference path, where runs must never form). CreditRun applies `n`
  // batched same-line hits with exactly the state transition of n
  // consecutive Access() hits; the caller guarantees no other access to
  // this cache happened since the run opened.
  [[nodiscard]] Way* ResidentWay(std::uint64_t line) {
    if (!fast_path_) return nullptr;
    const Resident& r = res_[line & (kResidencyEntries - 1)];
    return r.line == line ? r.way : nullptr;
  }
  void CreditRun(Way* way, std::uint64_t n) {
    tick_ += n;
    way->last_use = tick_;
    stats_.hits += n;
  }
  [[nodiscard]] std::uint32_t line_shift() const { return line_shift_; }

  // True if the line containing addr is currently resident (no LRU update).
  [[nodiscard]] bool Probe(std::uint32_t addr) const;

  // Physical way currently holding addr's line, -1 if not resident. Test
  // introspection for fill-order/victim-choice checks; no LRU update.
  [[nodiscard]] int WayOf(std::uint32_t addr) const;

  void Flush();

  // Forces the pre-optimization full set walk on every access.
  void set_reference_path(bool ref) { fast_path_ = !ref; }

  // Host attribution of set-walk time (the `mem` phase of host.phases):
  // off by default so reference runs and tests pay nothing.
  void set_time_walks(bool on) { time_walks_ = on; }
  [[nodiscard]] std::uint64_t walk_tsc() const { return walk_tsc_; }

  [[nodiscard]] const CacheConfig& config() const { return cfg_; }
  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] std::uint32_t num_sets() const { return num_sets_; }

 private:
  bool AccessWalk(std::uint32_t addr);
  bool AccessWalkImpl(std::uint32_t addr);

  // line_bytes and num_sets_ are validated powers of two, so index/tag
  // extraction is shift/mask work instead of two divisions.
  [[nodiscard]] std::uint32_t SetIndex(std::uint32_t addr) const {
    return (addr >> line_shift_) & (num_sets_ - 1);
  }
  [[nodiscard]] std::uint32_t Tag(std::uint32_t addr) const {
    return (addr >> line_shift_) >> set_shift_;
  }

  CacheConfig cfg_;
  std::uint32_t num_sets_;
  std::uint32_t line_shift_ = 0;  // log2(line_bytes)
  std::uint32_t set_shift_ = 0;   // log2(num_sets_)
  std::vector<Way> ways_;  // num_sets_ * cfg_.ways, row-major by set
  CacheStats stats_;
  std::uint64_t tick_ = 0;
  // Residency map: a direct-mapped line -> way table in front of the set
  // walk. res_[line & mask].line == line implies that way holds the line
  // (ways_ never reallocates, so the pointer stays valid until the line is
  // evicted, which invalidates the entry in O(1): a way holds one line at
  // a time, so at most one map entry ever points at it). Sized to cover a
  // 512 kB footprint at 64 B lines so streaming kernels rarely collide;
  // empty entries hold kNoLine, which no 32-bit address can shift into.
  struct Resident {
    std::uint64_t line = kNoLine;
    Way* way = nullptr;
  };
  static constexpr std::size_t kResidencyEntries = 8192;  // power of two
  static constexpr std::uint64_t kNoLine = ~std::uint64_t{0};
  std::vector<Resident> res_;
  bool fast_path_ = true;
  bool time_walks_ = false;
  std::uint64_t walk_tsc_ = 0;
};

// Two-level hierarchy: L1 -> L2 -> DRAM. Access() returns the latency in
// cycles for an access at addr and updates both levels.
class Hierarchy {
 public:
  struct Config {
    CacheConfig l1{64 * 1024, 64, 4, 1};
    CacheConfig l2{512 * 1024, 64, 8, 8};
    std::uint32_t dram_latency = 60;
    // Next-line stream prefetch into L1 on a miss (embedded cores commonly
    // ship one); keeps streaming kernels from being purely DRAM-bound.
    bool next_line_prefetch = true;
  };

  explicit Hierarchy(const Config& cfg)
      : cfg_(cfg), l1_(cfg.l1), l2_(cfg.l2),
        line_mask_(cfg.l1.line_bytes - 1) {}

  std::uint32_t Access(std::uint32_t addr) {
    if (l1_.Access(addr)) return cfg_.l1.hit_latency;
    return AccessMiss(addr);
  }

  // A 16-byte vector access may straddle two lines; charge both. Accesses
  // contained in one L1 line (the overwhelmingly common case) skip the
  // line-walking loop.
  std::uint32_t AccessRange(std::uint32_t addr, std::uint32_t bytes) {
    if (fast_path_ && (addr & line_mask_) + bytes <= line_mask_ + 1) {
      return Access(addr & ~line_mask_);
    }
    return AccessRangeWalk(addr, bytes);
  }

  void Flush() {
    l1_.Flush();
    l2_.Flush();
  }

  // Forces the pre-optimization paths in both cache levels and in
  // AccessRange; simulated latencies and stats are identical either way.
  void set_reference_path(bool ref) {
    fast_path_ = !ref;
    l1_.set_reference_path(ref);
    l2_.set_reference_path(ref);
  }

  // L1 geometry + the run interface for the threaded core's batched
  // memory fast path (cpu.h). Everything the core may do to the cache is
  // expressed through Cache's own invariant-preserving API.
  [[nodiscard]] Cache& l1_runs() { return l1_; }
  [[nodiscard]] std::uint32_t l1_line_mask() const { return line_mask_; }
  [[nodiscard]] std::uint32_t l1_hit_latency() const {
    return cfg_.l1.hit_latency;
  }

  // Phase stopwatch: accumulated host-tsc spent inside set walks at either
  // level (the `mem` bucket of host.phases; sim/system.cc).
  void set_time_walks(bool on) {
    l1_.set_time_walks(on);
    l2_.set_time_walks(on);
  }
  [[nodiscard]] std::uint64_t walk_tsc() const {
    return l1_.walk_tsc() + l2_.walk_tsc();
  }

  [[nodiscard]] const Cache& l1() const { return l1_; }
  [[nodiscard]] const Cache& l2() const { return l2_; }
  [[nodiscard]] std::uint64_t dram_accesses() const { return dram_accesses_; }

 private:
  std::uint32_t AccessMiss(std::uint32_t addr);
  std::uint32_t AccessRangeWalk(std::uint32_t addr, std::uint32_t bytes);

  Config cfg_;
  Cache l1_;
  Cache l2_;
  std::uint32_t line_mask_;
  bool fast_path_ = true;
  std::uint64_t dram_accesses_ = 0;
};

}  // namespace dsa::mem
