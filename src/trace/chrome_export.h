// Chrome trace-event JSON exporter (open the file in chrome://tracing or
// https://ui.perfetto.dev). Each traced run becomes one process (pid);
// within a process, stage activations, takeovers, NEON bursts and instant
// lifecycle events land on separate tracks (tid) so a DSA takeover reads
// top-to-bottom like the paper's Fig. 5 stage diagram. Timestamps are
// cycles at the 1 GHz core clock, exported as microseconds (1 cycle =
// 1 ns = 0.001 us). Top-level `metadata` carries the exact per-process
// aggregates so tooling (scripts/validate_trace.py, the oracle round-trip
// test) can re-derive stage counts from the events and cross-check.
#pragma once

#include <string>
#include <vector>

#include "trace/trace.h"

namespace dsa::trace {

struct ChromeProcess {
  std::string name;  // shown as the process label, e.g. "dijkstra@neon-dsa"
  const TraceDump* trace = nullptr;
};

// Writes schema "dsa-trace/1". Returns false if the file could not be
// written. Processes with a null trace are skipped.
bool WriteChromeTrace(const std::string& path,
                      const std::vector<ChromeProcess>& processes);

}  // namespace dsa::trace
