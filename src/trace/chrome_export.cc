#include "trace/chrome_export.h"

#include <cinttypes>
#include <cstdio>

namespace dsa::trace {

namespace {

// Track (tid) layout inside each traced process.
constexpr int kTidStages = 1;
constexpr int kTidTakeovers = 2;
constexpr int kTidNeon = 3;
constexpr int kTidLifecycle = 4;

void PutEscaped(std::FILE* f, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') std::fputc('\\', f);
    if (static_cast<unsigned char>(c) < 0x20) {
      std::fprintf(f, "\\u%04x", c);
    } else {
      std::fputc(c, f);
    }
  }
}

// Cycles (1 GHz -> ns) to Chrome microseconds.
double Us(std::uint64_t cycles) { return static_cast<double>(cycles) / 1000.0; }

void MetaEvent(std::FILE* f, bool& first, int pid, int tid, const char* key,
               std::string_view value) {
  std::fprintf(f, "%s\n  {\"name\": \"%s\", \"ph\": \"M\", \"pid\": %d, ",
               first ? "" : ",", key, pid);
  first = false;
  if (tid >= 0) std::fprintf(f, "\"tid\": %d, ", tid);
  std::fputs("\"args\": {\"name\": \"", f);
  PutEscaped(f, value);
  std::fputs("\"}}", f);
}

void BeginEvent(std::FILE* f, bool& first, int pid, int tid, const char* ph,
                double ts, std::string_view name) {
  std::fprintf(f, "%s\n  {\"name\": \"", first ? "" : ",");
  first = false;
  PutEscaped(f, name);
  std::fprintf(f, "\", \"ph\": \"%s\", \"ts\": %.3f, \"pid\": %d, \"tid\": %d",
               ph, ts, pid, tid);
}

void WriteEvent(std::FILE* f, bool& first, int pid, bool& takeover_open,
                const Event& e) {
  char name[64];
  switch (e.kind) {
    case EventKind::kStageActivation: {
      const std::string_view stage =
          e.arg0 < kNumStages ? kStageNames[e.arg0] : "?";
      std::snprintf(name, sizeof(name), "stage:%.*s",
                    static_cast<int>(stage.size()), stage.data());
      const std::uint64_t begin = e.dur <= e.ts ? e.ts - e.dur : 0;
      BeginEvent(f, first, pid, kTidStages, "X", Us(begin), name);
      std::fprintf(f,
                   ", \"dur\": %.3f, \"args\": {\"loop\": \"0x%x\", "
                   "\"stage\": %" PRIu64 ", \"iteration\": %" PRIu64 "}}",
                   Us(e.dur), e.loop_id, e.arg0, e.arg1);
      return;
    }
    case EventKind::kTakeoverBegin:
      BeginEvent(f, first, pid, kTidTakeovers, "B", Us(e.ts), "takeover");
      std::fprintf(f,
                   ", \"args\": {\"loop\": \"0x%x\", \"from_cache\": %" PRIu64
                   ", \"max_iterations\": %" PRIu64 "}}",
                   e.loop_id, e.arg0, e.arg1);
      takeover_open = true;
      return;
    case EventKind::kTakeoverEnd:
      BeginEvent(f, first, pid, kTidTakeovers, "E", Us(e.ts), "takeover");
      std::fprintf(f,
                   ", \"args\": {\"loop\": \"0x%x\", \"iterations\": %" PRIu64
                   ", \"covered_instrs\": %" PRIu64 "}}",
                   e.loop_id, e.arg0, e.arg1);
      takeover_open = false;
      return;
    case EventKind::kMisspecRollback:
      // A rolled-back takeover never reaches FinishTakeover, so no
      // kTakeoverEnd follows its kTakeoverBegin; close the Chrome span
      // here so B/E stay balanced. Guard on takeover_open: a ring
      // overflow may have dropped the matching begin.
      if (takeover_open) {
        BeginEvent(f, first, pid, kTidTakeovers, "E", Us(e.ts), "takeover");
        std::fprintf(f,
                     ", \"args\": {\"loop\": \"0x%x\", \"rolled_back\": 1, "
                     "\"strikes\": %" PRIu64 "}}",
                     e.loop_id, e.arg0);
        takeover_open = false;
      }
      break;  // fall through to the lifecycle instant below
    case EventKind::kNeonBurst: {
      const std::uint64_t begin = e.dur <= e.ts ? e.ts - e.dur : 0;
      BeginEvent(f, first, pid, kTidNeon, "X", Us(begin), "neon-burst");
      std::fprintf(f,
                   ", \"dur\": %.3f, \"args\": {\"loop\": \"0x%x\", "
                   "\"instrs\": %" PRIu64 ", \"busy_cycles\": %" PRIu64 "}}",
                   Us(e.dur), e.loop_id, e.arg0, e.arg1);
      return;
    }
    default:
      break;
  }
  const std::string_view kind = ToString(e.kind);
  BeginEvent(f, first, pid, kTidLifecycle, "i", Us(e.ts), kind);
  std::fprintf(f,
               ", \"s\": \"t\", \"args\": {\"loop\": \"0x%x\", "
               "\"arg0\": %" PRIu64 ", \"arg1\": %" PRIu64 "}}",
               e.loop_id, e.arg0, e.arg1);
}

}  // namespace

bool WriteChromeTrace(const std::string& path,
                      const std::vector<ChromeProcess>& processes) {
  // Write-then-rename: an interrupted run either leaves the previous trace
  // intact or the complete new one, never a truncated JSON that
  // chrome://tracing rejects (docs/RESILIENCE.md).
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;

  std::fputs("{\n\"schema\": \"dsa-trace/1\",\n\"displayTimeUnit\": \"ns\",\n"
             "\"traceEvents\": [", f);
  bool first = true;
  int pid = 0;
  for (const ChromeProcess& p : processes) {
    if (p.trace == nullptr) continue;
    ++pid;
    MetaEvent(f, first, pid, -1, "process_name", p.name);
    MetaEvent(f, first, pid, kTidStages, "thread_name", "DSA stages");
    MetaEvent(f, first, pid, kTidTakeovers, "thread_name", "NEON takeovers");
    MetaEvent(f, first, pid, kTidNeon, "thread_name", "NEON issue bursts");
    MetaEvent(f, first, pid, kTidLifecycle, "thread_name", "loop lifecycle");
    bool takeover_open = false;
    for (const Event& e : p.trace->events)
      WriteEvent(f, first, pid, takeover_open, e);
  }
  std::fputs("\n],\n\"metadata\": {\"processes\": [", f);

  pid = 0;
  bool first_proc = true;
  for (const ChromeProcess& p : processes) {
    if (p.trace == nullptr) continue;
    ++pid;
    std::fprintf(f, "%s\n  {\"pid\": %d, \"name\": \"", first_proc ? "" : ",",
                 pid);
    first_proc = false;
    PutEscaped(f, p.name);
    std::fprintf(f,
                 "\", \"emitted\": %" PRIu64 ", \"dropped\": %" PRIu64
                 ", \"ring_capacity\": %zu, \"stage_activations\": {",
                 p.trace->emitted, p.trace->dropped,
                 static_cast<std::size_t>(p.trace->config.capacity));
    for (int s = 0; s < kNumStages; ++s) {
      std::fprintf(f, "%s\"%.*s\": %" PRIu64, s == 0 ? "" : ", ",
                   static_cast<int>(kStageNames[s].size()),
                   kStageNames[s].data(), p.trace->stage_counts[s]);
    }
    std::fputs("}}", f);
  }
  std::fputs("\n]}\n}\n", f);
  if (std::fclose(f) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace dsa::trace
