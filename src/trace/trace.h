// Structured execution tracer for the DSA pipeline: a ring-buffered,
// thread-safe event log fed by the engine (loop lifecycle, per-stage
// activations, CIDP verdicts, speculation windows), the DSA caches and the
// NEON issue path. Zero-cost when disabled: every emit site holds a
// `Tracer*` that is nullptr for untraced runs, and a disabled Tracer never
// allocates its ring. Aggregate counters (per event kind, per DSA stage)
// are exact even when the ring overflows, so the oracle can cross-check a
// trace against the engine's DsaStats regardless of buffer size.
//
// The event schema (kinds, argument meanings, stable IDs) is documented in
// docs/TRACING.md; exporters live in trace/chrome_export.h (Chrome
// trace-event JSON) and sim/report.h (per-loop text profile).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

namespace dsa::trace {

// Stable event-kind IDs (schema "dsa-trace/1"). Append only; never
// renumber — downstream tooling (validate_trace.py, saved traces) keys on
// the numeric value.
enum class EventKind : std::uint8_t {
  kStageActivation = 0,  // arg0 = stage index (kStageNames), arg1 = iter
  kLoopDetected = 1,     // arg0 = body start pc
  kLoopClassified = 2,   // arg0 = LoopClass, arg1 = RejectReason
  kCacheInsert = 3,      // arg0 = LoopClass
  kCacheEvict = 4,       // loop_id = evicted loop
  kCacheHit = 5,         // DSA cache lookup hit
  kCacheMiss = 6,        // DSA cache lookup miss
  kCidpVerdict = 7,      // arg0 = has_dependency, arg1 = distance
  kTakeoverBegin = 8,    // arg0 = from_cache, arg1 = max_iterations
  kTakeoverEnd = 9,      // arg0 = covered iterations, arg1 = covered instrs
  kFusionFormed = 10,    // loop_id = outer latch, arg0 = inner latch
  kFusionDemoted = 11,   // loop_id = outer latch
  kSpecWindow = 12,      // arg0 = speculative window (iterations)
  kRespeculation = 13,   // arg0 = doubled window
  kNeonBurst = 14,       // arg0 = vector instrs, arg1/dur = busy cycles
  kFaultInjected = 15,   // arg0 = fault::FaultKind, arg1 = fire index
  kMisspecRollback = 16, // arg0 = strike count, arg1 = covered iterations
  kLoopBlacklisted = 17, // arg0 = strikes when blacklisted
  kCacheCorruption = 18, // loop_id = record dropped on checksum mismatch
};
inline constexpr int kNumEventKinds = 19;

[[nodiscard]] constexpr std::string_view ToString(EventKind k) {
  switch (k) {
    case EventKind::kStageActivation: return "stage-activation";
    case EventKind::kLoopDetected: return "loop-detected";
    case EventKind::kLoopClassified: return "loop-classified";
    case EventKind::kCacheInsert: return "cache-insert";
    case EventKind::kCacheEvict: return "cache-evict";
    case EventKind::kCacheHit: return "cache-hit";
    case EventKind::kCacheMiss: return "cache-miss";
    case EventKind::kCidpVerdict: return "cidp-verdict";
    case EventKind::kTakeoverBegin: return "takeover-begin";
    case EventKind::kTakeoverEnd: return "takeover-end";
    case EventKind::kFusionFormed: return "fusion-formed";
    case EventKind::kFusionDemoted: return "fusion-demoted";
    case EventKind::kSpecWindow: return "speculation-window";
    case EventKind::kRespeculation: return "respeculation";
    case EventKind::kNeonBurst: return "neon-burst";
    case EventKind::kFaultInjected: return "fault-injected";
    case EventKind::kMisspecRollback: return "misspec-rollback";
    case EventKind::kLoopBlacklisted: return "loop-blacklisted";
    case EventKind::kCacheCorruption: return "cache-corruption";
  }
  return "?";
}

// The six DSA stages, in the numeric order of engine::Stage (asserted by
// tests/test_trace.cc so the two tables can never drift apart). The trace
// library owns the schema and must not depend on the engine.
inline constexpr int kNumStages = 6;
inline constexpr std::array<std::string_view, kNumStages> kStageNames = {
    "loop-detection",     "data-collection", "dependency-analysis",
    "store-id/execution", "mapping",         "speculative-execution",
};

// One trace record: 40 bytes, POD, no ownership.
struct Event {
  std::uint64_t ts = 0;   // cycle of emission (core clock == DSA clock)
  std::uint64_t dur = 0;  // cycle span; 0 = instant event
  std::uint32_t loop_id = 0;  // latch pc of the loop; 0 = not loop-scoped
  EventKind kind = EventKind::kStageActivation;
  std::uint64_t arg0 = 0;  // kind-specific, see EventKind comments
  std::uint64_t arg1 = 0;
};

struct TraceConfig {
  bool enabled = false;
  // Ring slots allocated when enabled. Once full, the oldest events are
  // overwritten (`dropped` counts them); aggregates stay exact.
  std::uint32_t capacity = 1u << 18;
};

// Immutable snapshot of a finished trace, carried by sim::RunResult.
struct TraceDump {
  TraceConfig config;
  std::vector<Event> events;  // ring contents, oldest -> newest
  std::array<std::uint64_t, kNumEventKinds> kind_counts{};
  std::array<std::uint64_t, kNumStages> stage_counts{};
  std::uint64_t emitted = 0;  // total Emit() calls, including overwritten
  std::uint64_t dropped = 0;  // events overwritten by ring wrap-around
};

class Tracer {
 public:
  // A default-constructed Tracer is disabled and never allocates.
  Tracer() = default;
  explicit Tracer(const TraceConfig& cfg) : cfg_(cfg) {
    if (cfg_.enabled && cfg_.capacity > 0) ring_.resize(cfg_.capacity);
  }

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  [[nodiscard]] bool enabled() const { return cfg_.enabled; }
  [[nodiscard]] std::size_t ring_capacity() const { return ring_.size(); }

  // Timestamp source for emitters that don't see the CPU (caches, CIDP,
  // trackers): the run loop stamps the current cycle once per retire.
  void SetNow(std::uint64_t cycle) {
    now_.store(cycle, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t now() const {
    return now_.load(std::memory_order_relaxed);
  }

  void Emit(EventKind kind, std::uint32_t loop_id, std::uint64_t arg0 = 0,
            std::uint64_t arg1 = 0, std::uint64_t dur = 0) {
    EmitAt(now(), kind, loop_id, arg0, arg1, dur);
  }

  void EmitAt(std::uint64_t ts, EventKind kind, std::uint32_t loop_id,
              std::uint64_t arg0 = 0, std::uint64_t arg1 = 0,
              std::uint64_t dur = 0) {
    if (!cfg_.enabled) return;
    std::lock_guard<std::mutex> lock(mu_);
    ++kind_counts_[static_cast<int>(kind)];
    if (kind == EventKind::kStageActivation && arg0 < kNumStages) {
      ++stage_counts_[arg0];
    }
    if (!ring_.empty()) {
      if (emitted_ >= ring_.size()) ++dropped_;
      Event& e = ring_[emitted_ % ring_.size()];
      e.ts = ts;
      e.dur = dur;
      e.loop_id = loop_id;
      e.kind = kind;
      e.arg0 = arg0;
      e.arg1 = arg1;
    } else {
      ++dropped_;
    }
    ++emitted_;
  }

  [[nodiscard]] std::uint64_t emitted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return emitted_;
  }
  [[nodiscard]] std::uint64_t dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
  }
  [[nodiscard]] std::array<std::uint64_t, kNumStages> stage_counts() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stage_counts_;
  }

  // Snapshot of the retained events in emission order, plus the exact
  // aggregates. Safe to call while other threads emit.
  [[nodiscard]] TraceDump Dump() const;

 private:
  TraceConfig cfg_;
  std::atomic<std::uint64_t> now_{0};

  mutable std::mutex mu_;
  std::vector<Event> ring_;
  std::array<std::uint64_t, kNumEventKinds> kind_counts_{};
  std::array<std::uint64_t, kNumStages> stage_counts_{};
  std::uint64_t emitted_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace dsa::trace
