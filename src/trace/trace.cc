#include "trace/trace.h"

namespace dsa::trace {

TraceDump Tracer::Dump() const {
  std::lock_guard<std::mutex> lock(mu_);
  TraceDump d;
  d.config = cfg_;
  d.kind_counts = kind_counts_;
  d.stage_counts = stage_counts_;
  d.emitted = emitted_;
  d.dropped = dropped_;
  if (!ring_.empty() && emitted_ > 0) {
    const std::uint64_t retained =
        emitted_ < ring_.size() ? emitted_ : ring_.size();
    d.events.reserve(retained);
    // Oldest retained event first: the ring index the next write would
    // overwrite is the oldest slot once the buffer has wrapped.
    const std::uint64_t first = emitted_ - retained;
    for (std::uint64_t i = 0; i < retained; ++i) {
      d.events.push_back(ring_[(first + i) % ring_.size()]);
    }
  }
  return d;
}

}  // namespace dsa::trace
