// Shared helpers for the benchmark builders: deterministic data generation,
// memory-region initialization and golden-output comparison.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/memory.h"
#include "sim/workload.h"

namespace dsa::workloads {

// Deterministic xorshift32 so every variant sees identical inputs.
inline std::uint32_t XorShift(std::uint32_t& s) {
  s ^= s << 13;
  s ^= s >> 17;
  s ^= s << 5;
  return s;
}

template <typename T>
void WriteVec(mem::Memory& m, std::uint32_t addr, const std::vector<T>& v) {
  m.WriteBlock(addr, v.data(), v.size() * sizeof(T));
}

template <typename T>
bool RegionEquals(const mem::Memory& m, std::uint32_t addr,
                  const std::vector<T>& expect) {
  std::vector<T> got(expect.size());
  m.ReadBlock(addr, got.data(), got.size() * sizeof(T));
  return got == expect;
}

// Builds a `check` lambda comparing one region against a golden vector.
template <typename T>
std::function<bool(const mem::Memory&)> MakeCheck(std::uint32_t addr,
                                                  std::vector<T> expect) {
  auto golden = std::make_shared<std::vector<T>>(std::move(expect));
  return [addr, golden](const mem::Memory& m) {
    return RegionEquals(m, addr, *golden);
  };
}

// Registers `expect` at `addr` as a golden output buffer: extends the
// workload's `check` with a MakeCheck over the region AND declares the
// region for the oracle's cross-mode output digest (sim/oracle.h).
template <typename T>
void AddGoldenOutput(sim::Workload& wl, std::uint32_t addr,
                     std::vector<T> expect) {
  wl.outputs.push_back(sim::OutputRegion{
      addr, static_cast<std::uint32_t>(expect.size() * sizeof(T))});
  auto next = MakeCheck(addr, std::move(expect));
  if (wl.check) {
    auto prev = std::move(wl.check);
    wl.check = [prev, next](const mem::Memory& m) {
      return prev(m) && next(m);
    };
  } else {
    wl.check = std::move(next);
  }
}

}  // namespace dsa::workloads
