// Partial vectorization kernel (Fig. 14): a[i+dist] = a[i] + b[i] carries a
// true cross-iteration dependency with distance `dist`. A static
// vectorizer must reject it outright (Table 1 line 2); the DSA's CIDP
// measures the distance and vectorizes windows of `dist` iterations.
#include "prog/assembler.h"
#include "vectorizer/static_vectorizer.h"
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace dsa::workloads {

using isa::Cond;
using isa::Opcode;
using prog::Assembler;

namespace {

constexpr std::uint32_t kA = 0x10000;
constexpr std::uint32_t kB = 0x50000;

prog::Program BuildScalar(int n, int dist, bool with_guard) {
  Assembler as;
  as.Movi(0, kA);
  as.Movi(1, kB);
  as.Movi(2, kA + dist * 4);
  as.Movi(3, n);
  if (with_guard) vectorizer::EmitAutoVecGuard(as, 0, 2, 6);
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Ldr(4, 0, 4);
  as.Ldr(5, 1, 4);
  as.Alu(Opcode::kAdd, 6, 4, 5);
  as.Str(6, 2, 4);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, loop);
  as.Halt();
  return as.Finish();
}

}  // namespace

sim::Workload MakeShiftAdd(int n, int dist) {
  sim::Workload wl;
  wl.name = "ShiftAdd";
  wl.mem_bytes = 1 << 20;
  wl.scalar = BuildScalar(n, dist, /*with_guard=*/false);
  wl.autovec = BuildScalar(n, dist, /*with_guard=*/true);
  wl.handvec = BuildScalar(n, dist, /*with_guard=*/false);
  wl.loop_type_fractions = {{"partial", 1.0}};

  std::vector<std::int32_t> a(n + dist);
  std::vector<std::int32_t> b(n);
  std::uint32_t seed = 0x5111F7ADu;
  for (int i = 0; i < n + dist; ++i) {
    a[i] = static_cast<std::int32_t>(XorShift(seed) % 1000);
  }
  for (int i = 0; i < n; ++i) {
    b[i] = static_cast<std::int32_t>(XorShift(seed) % 1000);
  }
  std::vector<std::int32_t> expect = a;
  for (int i = 0; i < n; ++i) {
    expect[i + dist] = expect[i] + b[i];  // sequential semantics
  }
  auto a0 = a;
  wl.init = [a0, b](mem::Memory& m) {
    WriteVec(m, kA, a0);
    WriteVec(m, kB, b);
  };
  AddGoldenOutput(wl, kA, expect);
  return wl;
}

}  // namespace dsa::workloads
