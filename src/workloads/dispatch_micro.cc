// DispatchMicro: a long pure-ALU counted loop (two accumulators, a
// decrement, a compare, a backward branch — no loads or stores until the
// final result spill). Nothing here vectorizes, misses the cache or
// mispredicts in steady state, so host wall time is interpreter dispatch
// plus engine observation and almost nothing else. That makes it the
// measurement substrate for the load-immune fast-vs-reference perf gate
// (bench_throughput --interleave, scripts/check.sh): the ratio moves only
// when the hot dispatch/observation paths regress, not when the host is
// busy. The per-cell iteration count is far above every other workload so
// the pair ratios are stable at small --interleave counts.
#include <vector>

#include "prog/assembler.h"
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace dsa::workloads {

using isa::Cond;
using isa::Opcode;
using prog::Assembler;

namespace {

constexpr std::uint32_t kOut = 0x10000;

prog::Program BuildLoop(int n) {
  Assembler as;
  as.Movi(0, kOut);
  as.Movi(3, n);  // iteration counter
  as.Movi(5, 1);  // accumulator a
  as.Movi(6, 2);  // accumulator b
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Alu(Opcode::kAdd, 5, 5, 6);
  as.AluImm(Opcode::kAddi, 6, 6, 1);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, loop);
  as.Str(5, 0, 4);  // spill both accumulators for the output digest
  as.Str(6, 0, 4);
  as.Halt();
  return as.Finish();
}

}  // namespace

sim::Workload MakeDispatchMicro(int n) {
  sim::Workload wl;
  wl.name = "DispatchMicro";
  wl.mem_bytes = 1 << 17;
  // The same scalar binary in every mode: the explicit-SIMD variants have
  // nothing to vectorize, and the point is comparing host execution of one
  // instruction stream across simulator paths.
  wl.scalar = BuildLoop(n);
  wl.autovec = wl.scalar;
  wl.handvec = wl.scalar;
  wl.loop_type_fractions = {{"count", 1.0}};

  std::uint32_t a = 1;
  std::uint32_t b = 2;
  for (int i = 0; i < n; ++i) {
    a += b;
    b += 1;
  }
  const std::vector<std::uint32_t> out = {a, b};
  wl.init = [](mem::Memory& m) { m.Write32(kOut, 0); };
  AddGoldenOutput(wl, kOut, out);
  return wl;
}

}  // namespace dsa::workloads
