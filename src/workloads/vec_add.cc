// v[i] = a[i] + b[i] over float32 — the dissertation's running example
// (Fig. 15): a count loop every system can vectorize.
#include <cstring>

#include "prog/assembler.h"
#include "vectorizer/static_vectorizer.h"
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace dsa::workloads {

using isa::Cond;
using isa::Opcode;
using isa::VecType;
using prog::Assembler;

namespace {

constexpr std::uint32_t kA = 0x10000;
constexpr std::uint32_t kB = 0x40000;
constexpr std::uint32_t kV = 0x70000;

prog::Program BuildScalar(int n) {
  Assembler as;
  as.Movi(0, kA);
  as.Movi(1, kB);
  as.Movi(2, kV);
  as.Movi(3, n);
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Ldr(4, 0, 4);
  as.Ldr(5, 1, 4);
  as.Alu(Opcode::kFadd, 6, 4, 5);
  as.Str(6, 2, 4);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, loop);
  as.Halt();
  return as.Finish();
}

prog::Program BuildVectorized(int n, int per_chunk_overhead) {
  Assembler as;
  as.Movi(0, kA);
  as.Movi(1, kB);
  as.Movi(2, kV);
  as.Movi(3, n);
  vectorizer::ElementwiseLoopSpec spec;
  spec.type = VecType::kF32;
  spec.load_regs = {0, 1};
  spec.store_regs = {2};
  spec.count_reg = 3;
  spec.per_chunk_overhead_instrs = per_chunk_overhead;
  spec.vector_ops = [](Assembler& a) {
    a.Vop(Opcode::kVadd, VecType::kF32, 8, 1, 2);
  };
  spec.scalar_ops = [](Assembler& a) {
    a.Alu(Opcode::kFadd, 8, 4, 5);
  };
  vectorizer::EmitElementwiseLoop(as, spec);
  as.Halt();
  return as.Finish();
}

}  // namespace

sim::Workload MakeVecAdd(int n) {
  sim::Workload wl;
  wl.name = "VecAdd";
  wl.mem_bytes = 1 << 20;
  wl.scalar = BuildScalar(n);
  wl.autovec = BuildVectorized(n, /*per_chunk_overhead=*/0);
  wl.handvec = BuildVectorized(n, /*per_chunk_overhead=*/8);
  wl.loop_type_fractions = {{"count", 1.0}};

  std::vector<float> a(n);
  std::vector<float> b(n);
  std::vector<float> v(n);
  std::uint32_t seed = 0xC0FFEE01u;
  for (int i = 0; i < n; ++i) {
    a[i] = static_cast<float>(XorShift(seed) % 1000) * 0.25f;
    b[i] = static_cast<float>(XorShift(seed) % 1000) * 0.5f;
    v[i] = a[i] + b[i];
  }
  wl.init = [a, b](mem::Memory& m) {
    WriteVec(m, kA, a);
    WriteVec(m, kB, b);
  };
  AddGoldenOutput(wl, kV, v);
  return wl;
}

}  // namespace dsa::workloads
