// Extended kernel suite beyond the paper's benchmark list: a 4-tap FIR
// filter (multi-stream offsets), a byte memcpy (maximum lane count), an
// alpha blend with runtime coefficients, and a histogram whose indirect
// addressing must be rejected (Table 1 line 7). Used by the extended-suite
// bench and the test matrix.
#include "prog/assembler.h"
#include "vectorizer/static_vectorizer.h"
#include "workloads/common.h"
#include "workloads/extended.h"

namespace dsa::workloads {

using isa::Cond;
using isa::Opcode;
using isa::VecType;
using prog::Assembler;

namespace {
constexpr std::uint32_t kIn = 0x10000;
constexpr std::uint32_t kIn2 = 0x40000;
constexpr std::uint32_t kOut = 0x70000;
constexpr std::uint32_t kParams = 0x0F00;
}  // namespace

// ---------------------------------------------------------------------------
// FIR: y[i] = sum_{t<4} x[i+t] * h[t], int32; taps live in registers.
sim::Workload MakeFir(int n) {
  constexpr int kTaps[4] = {3, -1, 4, 2};
  auto emit_taps = [&](Assembler& as) {
    as.Movi(8, kTaps[0]);
    as.Movi(10, kTaps[1]);
    as.Movi(11, kTaps[2]);
    as.Movi(12, kTaps[3]);
  };

  sim::Workload wl;
  wl.name = "FIR";
  wl.mem_bytes = 1 << 20;
  {
    Assembler as;
    emit_taps(as);
    as.Movi(0, kIn);
    as.Movi(1, kOut);
    as.Movi(3, n);
    const auto loop = as.NewLabel();
    as.Bind(loop);
    as.Ldr(4, 0, 0, 0);
    as.Ldr(5, 0, 0, 4);
    as.Ldr(6, 0, 0, 8);
    as.Ldr(7, 0, 0, 12);
    as.Alu(Opcode::kMul, 4, 4, 8);
    as.Mla(4, 5, 10, 4);
    as.Mla(4, 6, 11, 4);
    as.Mla(4, 7, 12, 4);
    as.Str(4, 1, 4);
    as.AluImm(Opcode::kAddi, 0, 0, 4);
    as.AluImm(Opcode::kSubi, 3, 3, 1);
    as.Cmpi(3, 0);
    as.B(Cond::kGt, loop);
    as.Halt();
    wl.scalar = as.Finish();
  }
  auto build_vec = [&](int overhead) {
    Assembler as;
    emit_taps(as);
    as.Movi(0, kIn);
    as.Movi(1, kOut);
    as.Movi(3, n);
    as.Vdup(VecType::kI32, 10, 8);
    as.Vdup(VecType::kI32, 11, 10);
    as.Vdup(VecType::kI32, 12, 11);
    as.Vdup(VecType::kI32, 13, 12);
    // Shifted stream pointers for the taps.
    as.AluImm(Opcode::kAddi, 5, 0, 4);
    as.AluImm(Opcode::kAddi, 6, 0, 8);
    as.AluImm(Opcode::kAddi, 7, 0, 12);
    const auto top = as.NewLabel();
    const auto tail = as.NewLabel();
    const auto done = as.NewLabel();
    as.Bind(top);
    as.Cmpi(3, 4);
    as.B(Cond::kLt, tail);
    as.Vld1(VecType::kI32, 1, 0);
    as.Vld1(VecType::kI32, 2, 5);
    as.Vld1(VecType::kI32, 3, 6);
    as.Vld1(VecType::kI32, 4, 7);
    as.Vop(Opcode::kVmul, VecType::kI32, 8, 1, 10);
    as.Vmla(VecType::kI32, 8, 2, 11);
    as.Vmla(VecType::kI32, 8, 3, 12);
    as.Vmla(VecType::kI32, 8, 4, 13);
    as.Vst1(VecType::kI32, 8, 1 /*r1*/);
    for (int i = 0; i < overhead; ++i) as.Nop();
    as.AluImm(Opcode::kSubi, 3, 3, 4);
    as.B(Cond::kAl, top);
    as.Bind(tail);
    as.Cmpi(3, 0);
    as.B(Cond::kLe, done);
    as.Ldr(4, 0, 0, 0);
    as.Ldr(9, 0, 0, 4);
    as.Alu(Opcode::kMul, 4, 4, 8);
    as.Mla(4, 9, 10, 4);
    as.Ldr(9, 0, 0, 8);
    as.Mla(4, 9, 11, 4);
    as.Ldr(9, 0, 0, 12);
    as.Mla(4, 9, 12, 4);
    as.Str(4, 1, 4);
    as.AluImm(Opcode::kAddi, 0, 0, 4);
    as.AluImm(Opcode::kSubi, 3, 3, 1);
    as.B(Cond::kAl, tail);
    as.Bind(done);
    as.Halt();
    return as.Finish();
  };
  wl.autovec = build_vec(0);
  wl.handvec = build_vec(8);
  wl.loop_type_fractions = {{"count", 1.0}};

  std::vector<std::int32_t> x(n + 4);
  std::vector<std::int32_t> y(n);
  std::uint32_t seed = 0xF112BEA7u;
  for (int i = 0; i < n + 4; ++i) {
    x[i] = static_cast<std::int32_t>(XorShift(seed) % 500) - 250;
  }
  for (int i = 0; i < n; ++i) {
    y[i] = x[i] * kTaps[0] + x[i + 1] * kTaps[1] + x[i + 2] * kTaps[2] +
           x[i + 3] * kTaps[3];
  }
  wl.init = [x](mem::Memory& m) { WriteVec(m, kIn, x); };
  AddGoldenOutput(wl, kOut, y);
  return wl;
}

// ---------------------------------------------------------------------------
// MemCopy: byte copy, the maximum-lane (16x) kernel.
sim::Workload MakeMemCopy(int n) {
  sim::Workload wl;
  wl.name = "MemCopy";
  wl.mem_bytes = 1 << 20;
  {
    Assembler as;
    as.Movi(0, kIn);
    as.Movi(1, kOut);
    as.Movi(3, n);
    const auto loop = as.NewLabel();
    as.Bind(loop);
    as.Ldrb(4, 0, 1);
    as.Strb(4, 1, 1);
    as.AluImm(Opcode::kSubi, 3, 3, 1);
    as.Cmpi(3, 0);
    as.B(Cond::kGt, loop);
    as.Halt();
    wl.scalar = as.Finish();
  }
  auto build_vec = [&](int overhead) {
    Assembler as;
    as.Movi(0, kIn);
    as.Movi(1, kOut);
    as.Movi(3, n);
    vectorizer::ElementwiseLoopSpec spec;
    spec.type = VecType::kI8;
    spec.load_regs = {0};
    spec.store_regs = {1};
    spec.count_reg = 3;
    spec.per_chunk_overhead_instrs = overhead;
    spec.vector_ops = [](Assembler& a) {
      a.Vop(Opcode::kVorr, VecType::kI8, 8, 1, 1);  // q8 = q1
    };
    spec.scalar_ops = [](Assembler& a) { a.Mov(8, 4); };
    vectorizer::EmitElementwiseLoop(as, spec);
    as.Halt();
    return as.Finish();
  };
  wl.autovec = build_vec(0);
  wl.handvec = build_vec(8);
  wl.loop_type_fractions = {{"count", 1.0}};
  wl.stream_bytes = 2u * static_cast<std::uint32_t>(n);  // read + write

  std::vector<std::uint8_t> src(n);
  std::uint32_t seed = 0x3E3C09EEu;
  for (int i = 0; i < n; ++i) src[i] = static_cast<std::uint8_t>(XorShift(seed));
  wl.init = [src](mem::Memory& m) { WriteVec(m, kIn, src); };
  AddGoldenOutput(wl, kOut, src);
  return wl;
}

// ---------------------------------------------------------------------------
// AlphaBlend: out = (a*alpha + b*(256-alpha)) >> 8 over u16, alpha read
// from memory at runtime (a runtime-invariant operand, not a DRL).
sim::Workload MakeAlphaBlend(int n, int alpha) {
  sim::Workload wl;
  wl.name = "AlphaBlend";
  wl.mem_bytes = 1 << 20;
  auto build = [&](bool vector, int overhead) {
    Assembler as;
    as.Movi(0, kIn);
    as.Movi(1, kIn2);
    as.Movi(2, kOut);
    as.Movi(10, kParams);
    as.Ldr(10, 10);                       // alpha (runtime)
    as.Emit(isa::MakeAluImm(Opcode::kRsb, 11, 10, 256));  // 256 - alpha
    as.Movi(12, 8);                       // shift
    as.Movi(3, n);
    if (!vector) {
      const auto loop = as.NewLabel();
      as.Bind(loop);
      as.Ldrh(4, 0, 2);
      as.Ldrh(5, 1, 2);
      as.Alu(Opcode::kMul, 4, 4, 10);
      as.Mla(4, 5, 11, 4);
      as.Alu(Opcode::kLsr, 4, 4, 12);
      as.Strh(4, 2, 2);
      as.AluImm(Opcode::kSubi, 3, 3, 1);
      as.Cmpi(3, 0);
      as.B(Cond::kGt, loop);
    } else {
      as.Vdup(VecType::kI16, 10, 10);
      as.Vdup(VecType::kI16, 11, 11);
      vectorizer::ElementwiseLoopSpec spec;
      spec.type = VecType::kI16;
      spec.load_regs = {0, 1};
      spec.store_regs = {2};
      spec.count_reg = 3;
      spec.per_chunk_overhead_instrs = overhead;
      spec.vector_ops = [](Assembler& a) {
        a.Vop(Opcode::kVmul, VecType::kI16, 8, 1, 10);
        a.Vmla(VecType::kI16, 8, 2, 11);
        a.VShift(Opcode::kVshr, VecType::kI16, 8, 8, 8);
      };
      spec.scalar_ops = [](Assembler& a) {
        a.Alu(Opcode::kMul, 8, 4, 10);
        a.Mla(8, 5, 11, 8);
        a.Alu(Opcode::kLsr, 8, 8, 12);
      };
      vectorizer::EmitElementwiseLoop(as, spec);
    }
    as.Halt();
    return as.Finish();
  };
  wl.scalar = build(false, 0);
  wl.autovec = build(true, 0);
  wl.handvec = build(true, 8);
  wl.loop_type_fractions = {{"count", 1.0}};

  std::vector<std::uint16_t> a(n);
  std::vector<std::uint16_t> b(n);
  std::vector<std::uint16_t> out(n);
  std::uint32_t seed = 0xA1FAB1EDu;
  for (int i = 0; i < n; ++i) {
    a[i] = static_cast<std::uint16_t>(XorShift(seed) % 256);
    b[i] = static_cast<std::uint16_t>(XorShift(seed) % 256);
    out[i] = static_cast<std::uint16_t>(
        static_cast<std::uint16_t>(a[i] * alpha + b[i] * (256 - alpha)) >> 8);
  }
  wl.init = [a, b, alpha](mem::Memory& m) {
    m.Write32(kParams, static_cast<std::uint32_t>(alpha));
    WriteVec(m, kIn, a);
    WriteVec(m, kIn2, b);
  };
  AddGoldenOutput(wl, kOut, out);
  return wl;
}

// ---------------------------------------------------------------------------
// Histogram: hist[v[i]]++ — indirect addressing, unvectorizable everywhere
// (NEON has no scatter; Table 1 lines 6/7).
sim::Workload MakeHistogram(int n, int buckets) {
  sim::Workload wl;
  wl.name = "Histogram";
  wl.mem_bytes = 1 << 20;
  auto build = [&](bool guard) {
    Assembler as;
    as.Movi(0, kIn);
    as.Movi(3, n);
    as.Movi(12, 2);  // shift for *4
    if (guard) vectorizer::EmitAutoVecGuard(as, 0, 3, 9);
    const auto loop = as.NewLabel();
    as.Bind(loop);
    as.Ldrb(4, 0, 1);              // bucket index
    as.Alu(Opcode::kLsl, 5, 4, 12);
    as.AluImm(Opcode::kAddi, 5, 5, kOut);
    as.Ldr(6, 5);
    as.AluImm(Opcode::kAddi, 6, 6, 1);
    as.Str(6, 5);
    as.AluImm(Opcode::kSubi, 3, 3, 1);
    as.Cmpi(3, 0);
    as.B(Cond::kGt, loop);
    as.Halt();
    return as.Finish();
  };
  wl.scalar = build(false);
  wl.autovec = build(true);
  wl.handvec = build(false);
  wl.loop_type_fractions = {{"non-vectorizable", 1.0}};

  std::vector<std::uint8_t> v(n);
  std::vector<std::uint32_t> hist(buckets, 0);
  std::uint32_t seed = 0x81570612u;
  for (int i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(XorShift(seed) % buckets);
    ++hist[v[i]];
  }
  wl.init = [v](mem::Memory& m) { WriteVec(m, kIn, v); };
  AddGoldenOutput(wl, kOut, hist);
  return wl;
}

std::vector<sim::Workload> ExtendedSet() {
  std::vector<sim::Workload> v;
  v.push_back(MakeFir());
  v.push_back(MakeMemCopy());
  v.push_back(MakeAlphaBlend());
  v.push_back(MakeHistogram());
  return v;
}

}  // namespace dsa::workloads
