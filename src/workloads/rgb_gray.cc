// Planar RGB -> grayscale: gray = (77*r + 151*g + 28*b) >> 8 over 16-bit
// channels (the OpenCV conversion the dissertation benchmarks). Eight
// lanes per NEON vector: the highest-DLP kernel of the set.
#include "prog/assembler.h"
#include "vectorizer/static_vectorizer.h"
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace dsa::workloads {

using isa::Cond;
using isa::Opcode;
using isa::VecType;
using prog::Assembler;

namespace {

constexpr std::uint32_t kR = 0x10000;
constexpr std::uint32_t kG = 0x30000;
constexpr std::uint32_t kB = 0x50000;
constexpr std::uint32_t kGray = 0x70000;

prog::Program BuildScalar(int n) {
  Assembler as;
  as.Movi(0, kR);
  as.Movi(1, kG);
  as.Movi(2, kB);
  as.Movi(9, kGray);
  as.Movi(10, 77);
  as.Movi(11, 151);
  as.Movi(12, 28);
  as.Movi(8, 8);  // shift amount
  as.Movi(3, n);
  const auto loop = as.NewLabel();
  as.Bind(loop);
  as.Ldrh(4, 0, 2);
  as.Ldrh(5, 1, 2);
  as.Ldrh(6, 2, 2);
  as.Alu(Opcode::kMul, 4, 4, 10);
  as.Mla(4, 5, 11, 4);
  as.Mla(4, 6, 12, 4);
  as.Alu(Opcode::kLsr, 4, 4, 8);
  as.Strh(4, 9, 2);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, loop);
  as.Halt();
  return as.Finish();
}

prog::Program BuildVectorized(int n, int per_chunk_overhead) {
  Assembler as;
  as.Movi(0, kR);
  as.Movi(1, kG);
  as.Movi(2, kB);
  as.Movi(9, kGray);
  as.Movi(10, 77);
  as.Movi(11, 151);
  as.Movi(12, 28);
  as.Movi(8, 8);
  as.Movi(3, n);
  as.Vdup(VecType::kI16, 10, 10);  // q10 = 77
  as.Vdup(VecType::kI16, 11, 11);  // q11 = 151
  as.Vdup(VecType::kI16, 12, 12);  // q12 = 28
  vectorizer::ElementwiseLoopSpec spec;
  spec.type = VecType::kI16;
  spec.load_regs = {0, 1, 2};  // q1=r, q2=g, q3=b
  spec.store_regs = {9};
  spec.count_reg = 3;
  spec.per_chunk_overhead_instrs = per_chunk_overhead;
  spec.vector_ops = [](Assembler& a) {
    a.Vop(Opcode::kVmul, VecType::kI16, 8, 1, 10);
    a.Vmla(VecType::kI16, 8, 2, 11);
    a.Vmla(VecType::kI16, 8, 3, 12);
    a.VShift(Opcode::kVshr, VecType::kI16, 8, 8, 8);
  };
  spec.scalar_ops = [](Assembler& a) {
    a.Alu(Opcode::kMul, 8, 4, 10);
    a.Mla(8, 5, 11, 8);
    a.Mla(8, 6, 12, 8);
    const int shift_reg = 7;
    a.Movi(shift_reg, 8);
    a.Alu(Opcode::kLsr, 8, 8, shift_reg);
  };
  vectorizer::EmitElementwiseLoop(as, spec);
  as.Halt();
  return as.Finish();
}

}  // namespace

sim::Workload MakeRgbGray(int n) {
  sim::Workload wl;
  wl.name = "RGB-Gray";
  wl.mem_bytes = 1 << 20;
  wl.scalar = BuildScalar(n);
  wl.autovec = BuildVectorized(n, 0);
  wl.handvec = BuildVectorized(n, 8);
  wl.loop_type_fractions = {{"count", 1.0}};

  std::vector<std::uint16_t> r(n);
  std::vector<std::uint16_t> g(n);
  std::vector<std::uint16_t> b(n);
  std::vector<std::uint16_t> gray(n);
  std::uint32_t seed = 0xFEED5EEDu;
  for (int i = 0; i < n; ++i) {
    r[i] = static_cast<std::uint16_t>(XorShift(seed) % 256);
    g[i] = static_cast<std::uint16_t>(XorShift(seed) % 256);
    b[i] = static_cast<std::uint16_t>(XorShift(seed) % 256);
    gray[i] = static_cast<std::uint16_t>((77 * r[i] + 151 * g[i] + 28 * b[i]) >> 8);
  }
  wl.init = [r, g, b](mem::Memory& m) {
    WriteVec(m, kR, r);
    WriteVec(m, kG, g);
    WriteVec(m, kB, b);
  };
  AddGoldenOutput(wl, kGray, gray);
  return wl;
}

}  // namespace dsa::workloads
