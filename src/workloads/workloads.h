// Benchmark factory functions. The set mirrors the dissertation's MiBench /
// OpenCV selection (Table 2 of Article 1, Fig. 16 of Article 2, Figs. 7-9
// of Article 3) plus two kernels that exercise DSA-specific machinery:
// a sentinel-loop string copy and a partial-vectorization shift-add.
#pragma once

#include <vector>

#include "sim/workload.h"
#include "workloads/gen/generator.h"
#include "workloads/streaming/streaming.h"

namespace dsa::workloads {

// Simple float vector sum: the paper's running example (Fig. 15).
[[nodiscard]] sim::Workload MakeVecAdd(int n = 4096);

// 64x64 integer matrix multiply (MiBench-style MM), i-k-j order so the
// innermost loop streams over rows of B and C.
[[nodiscard]] sim::Workload MakeMatMul(int dim = 64);

// Planar RGB to grayscale over 16-bit channels (OpenCV RGB-Gray).
[[nodiscard]] sim::Workload MakeRgbGray(int n = 32768);

// 2-D image smoothing: per row, a 3-tap [1 2 1]/4 kernel (OpenCV Gaussian
// reduced to its separable horizontal pass); rows form an outer loop.
[[nodiscard]] sim::Workload MakeGaussian(int width = 128, int height = 96);

// Susan edges, reduced to its two characteristic passes: absolute
// difference (count loop) + thresholding (conditional loop).
[[nodiscard]] sim::Workload MakeSusanE(int n = 16384, int threshold = 48);

// Iterative quicksort (MiBench QSort): data-dependent control, no DLP.
[[nodiscard]] sim::Workload MakeQSort(int n = 2048);

// Dijkstra on a dense graph (MiBench): min-scan (carry-around, scalar) +
// relaxation (conditional loop, vectorizable only at runtime).
[[nodiscard]] sim::Workload MakeDijkstra(int nodes = 64);

// SWAR population count over an array whose length is read from memory at
// runtime (MiBench BitCount as a dynamic-range loop).
[[nodiscard]] sim::Workload MakeBitCount(int n = 8192);

// Sentinel loop: copy-and-scale a NUL-terminated byte string.
[[nodiscard]] sim::Workload MakeStrCopy(int length = 6000);

// Partial vectorization: a[i+dist] = a[i] + b[i], a true cross-iteration
// dependency with distance `dist` (Fig. 14).
[[nodiscard]] sim::Workload MakeShiftAdd(int n = 4096, int dist = 8);

// Pure-ALU counted loop with no steady-state memory traffic: the
// dispatch-bound measurement substrate of the interleaved fast-vs-
// reference perf gate (bench_throughput --interleave, scripts/check.sh).
// Same scalar binary in every mode; nothing vectorizes.
[[nodiscard]] sim::Workload MakeDispatchMicro(int n = 300000);

// The benchmark sets used by each article's evaluation.
[[nodiscard]] std::vector<sim::Workload> Article1Set();  // Fig. 12
[[nodiscard]] std::vector<sim::Workload> Article2Set();  // Fig. 16
[[nodiscard]] std::vector<sim::Workload> Article3Set();  // Figs. 7-9

// Registry of every named (non-generated) workload the repo ships: the
// article sets, the extended kernels (workloads/extended.h) and the
// streaming suite (workloads/streaming/streaming.h). bench_matrix and the
// golden-digest tests iterate this. Generated programs (workloads/gen)
// are unbounded and addressed by (seed, class) instead.
[[nodiscard]] std::vector<sim::Workload> AllNamedWorkloads();

}  // namespace dsa::workloads
