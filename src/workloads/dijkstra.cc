// Dijkstra over a dense graph (MiBench): the min-scan loop carries the
// running minimum around iterations (never vectorizable); the relaxation
// loop is a conditional loop that only the Extended DSA vectorizes at
// runtime — hand-coded NEON can blend it with masks, the auto-vectorizer
// gives up (Table 1 line 12).
#include "prog/assembler.h"
#include "vectorizer/static_vectorizer.h"
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace dsa::workloads {

using isa::Cond;
using isa::Opcode;
using isa::VecType;
using prog::Assembler;

namespace {

constexpr std::uint32_t kW = 0x10000;     // V*V u32 weights
constexpr std::uint32_t kDist = 0x40000;  // V u32
constexpr std::uint32_t kVis = 0x42000;   // V u32
constexpr std::uint32_t kInf = 0x0FFFFFFF;

// Emits the min-scan (shared by all variants; inherently scalar) leaving
// r5 = &dist[u], r4 = dist[u], r6 = 4*u.
void EmitMinScan(Assembler& as, int v) {
  const auto lmin = as.NewLabel();
  const auto lskip = as.NewLabel();
  as.Movi(1, kDist);
  as.Movi(2, kVis);
  as.Movi(4, kInf + 1);
  as.Movi(5, kDist);
  as.Movi(6, 0);
  as.Bind(lmin);
  as.Ldr(7, 2, 4);  // visited[j]
  as.Ldr(8, 1, 4);  // dist[j]
  as.Cmpi(7, 0);
  as.B(Cond::kNe, lskip);
  as.Cmp(8, 4);
  as.B(Cond::kGe, lskip);
  as.Mov(4, 8);                      // min = dist[j]
  as.AluImm(Opcode::kSubi, 5, 1, 4); // best = &dist[j]
  as.Bind(lskip);
  as.AluImm(Opcode::kAddi, 6, 6, 1);
  as.Cmpi(6, v);
  as.B(Cond::kLt, lmin);
  // u as byte offset, mark visited, du
  as.AluImm(Opcode::kSubi, 6, 5, kDist);
  as.Movi(7, 1);
  as.AluImm(Opcode::kAddi, 8, 6, kVis);
  as.Str(7, 8);
  as.Ldr(4, 5);
}

void EmitOuterHeader(Assembler& as, prog::Assembler::Label& louter) {
  as.Movi(10, 0);
  louter = as.NewLabel();
  as.Bind(louter);
}

void EmitOuterLatch(Assembler& as, prog::Assembler::Label louter, int v) {
  as.AluImm(Opcode::kAddi, 10, 10, 1);
  as.Cmpi(10, v);
  as.B(Cond::kLt, louter);
  as.Halt();
}

// r0 = &W[u][0], r1 = &dist[0], r3 = V before the relax loop.
void EmitRelaxSetup(Assembler& as, int v) {
  as.Movi(8, v);
  as.Alu(Opcode::kMul, 7, 6, 8);
  as.AluImm(Opcode::kAddi, 0, 7, kW);
  as.Movi(1, kDist);
  as.Movi(3, v);
}

prog::Program BuildScalar(int v, bool with_guard) {
  Assembler as;
  prog::Assembler::Label louter;
  EmitOuterHeader(as, louter);
  EmitMinScan(as, v);
  EmitRelaxSetup(as, v);
  if (with_guard) vectorizer::EmitAutoVecGuard(as, 0, 1, 9);
  const auto lrelax = as.NewLabel();
  const auto lrskip = as.NewLabel();
  as.Bind(lrelax);
  as.Ldr(7, 0, 4);   // w[u][j]
  as.Ldr(8, 1);      // dist[j]
  as.Alu(Opcode::kAdd, 9, 4, 7);
  as.Cmp(9, 8);
  as.B(Cond::kGe, lrskip);
  as.Str(9, 1);
  as.Bind(lrskip);
  as.AluImm(Opcode::kAddi, 1, 1, 4);
  as.AluImm(Opcode::kSubi, 3, 3, 1);
  as.Cmpi(3, 0);
  as.B(Cond::kGt, lrelax);
  EmitOuterLatch(as, louter, v);
  return as.Finish();
}

// Hand-vectorized relaxation: nd = du + w; dist = min(dist, nd) per lane.
prog::Program BuildHandVec(int v) {
  Assembler as;
  prog::Assembler::Label louter;
  EmitOuterHeader(as, louter);
  EmitMinScan(as, v);
  EmitRelaxSetup(as, v);
  as.Vdup(VecType::kI32, 7, 4);  // q7 = du
  const auto top = as.NewLabel();
  const auto done = as.NewLabel();
  as.Bind(top);
  as.Cmpi(3, 4);
  as.B(Cond::kLt, done);  // V is a multiple of 4: no tail needed
  as.Vld1(VecType::kI32, 1, 0);                    // weights
  as.Vld1(VecType::kI32, 2, 1, /*writeback=*/false);  // dist
  as.Vop(Opcode::kVadd, VecType::kI32, 8, 1, 7);   // nd
  as.Vop(Opcode::kVmin, VecType::kI32, 8, 8, 2);
  as.Vst1(VecType::kI32, 8, 1);
  for (int i = 0; i < 8; ++i) as.Nop();  // library wrapper overhead
  as.AluImm(Opcode::kSubi, 3, 3, 4);
  as.B(Cond::kAl, top);
  as.Bind(done);
  EmitOuterLatch(as, louter, v);
  return as.Finish();
}

}  // namespace

sim::Workload MakeDijkstra(int nodes) {
  sim::Workload wl;
  wl.name = "Dijkstra";
  wl.mem_bytes = 1 << 20;
  wl.scalar = BuildScalar(nodes, /*with_guard=*/false);
  wl.autovec = BuildScalar(nodes, /*with_guard=*/true);
  wl.handvec = BuildHandVec(nodes);
  wl.loop_type_fractions = {{"conditional", 0.5}, {"non-vectorizable", 0.3},
                            {"outer", 0.2}};

  const int v = nodes;
  std::vector<std::uint32_t> w(v * v);
  std::uint32_t seed = 0xD1125712u;
  for (int i = 0; i < v; ++i) {
    for (int j = 0; j < v; ++j) {
      w[i * v + j] = (i == j) ? 0 : 1 + XorShift(seed) % 99;
    }
  }
  // Golden: same algorithm in C++.
  std::vector<std::uint32_t> dist(v, kInf);
  std::vector<std::uint32_t> vis(v, 0);
  dist[0] = 0;
  for (int it = 0; it < v; ++it) {
    std::uint32_t best = kInf + 1;
    int u = 0;
    for (int j = 0; j < v; ++j) {
      if (vis[j] == 0 && dist[j] < best) {
        best = dist[j];
        u = j;
      }
    }
    vis[u] = 1;
    const std::uint32_t du = dist[u];
    for (int j = 0; j < v; ++j) {
      const std::uint32_t nd = du + w[u * v + j];
      if (nd < dist[j]) dist[j] = nd;
    }
  }
  wl.init = [w, v](mem::Memory& m) {
    WriteVec(m, kW, w);
    std::vector<std::uint32_t> d(v, kInf);
    d[0] = 0;
    WriteVec(m, kDist, d);
    WriteVec(m, kVis, std::vector<std::uint32_t>(v, 0));
  };
  AddGoldenOutput(wl, kDist, dist);
  return wl;
}

}  // namespace dsa::workloads
